// Package model implements the paper's analytical cost model (§4):
// Equations 1–2 (per-level computation and communication of the
// synchronous phase), Equations 3–4 (moving and load-balancing cost of a
// partition split), the splitting criterion they imply, the total-runtime
// composition of Equations 5–9, and the §4.3 isoefficiency function
// N = θ(P log P).
//
// The model predicts modeled runtimes for the same (t_s, t_w, t_c)
// machine the simulator uses, so the two can be compared directly: the
// tests check that the analytic prediction tracks the simulated
// synchronous and hybrid runtimes within a small factor (the model
// ignores load imbalance and buffer-flush latency, so it is a lower
// bound-ish estimate, as in the paper).
package model

import (
	"math"

	"partree/internal/mp"
)

// Params describes a workload in the paper's symbols (Table 4).
type Params struct {
	N  int     // training cases
	P  int     // processors
	C  int     // classes
	Ad int     // attributes whose histograms are exchanged
	M  float64 // mean distinct values per attribute
	// LevelNodes[L] is the number of tree nodes expanded at depth L. The
	// paper's closed forms assume a full binary tree (2^L); passing the
	// real profile (tree.LevelWidths) makes the prediction workload-exact.
	LevelNodes []int
	// LevelRecords[L] is the number of training cases still at frontier
	// nodes of depth L (tree.LevelRecords). When nil, every level scans
	// all N records — the paper's idealization; the real profile shrinks
	// as records settle into leaves.
	LevelRecords []int
	// RecordBytes is the wire size of one training record (moving phase).
	RecordBytes int
	// SyncEveryNodes is the reduction buffer size (default 100).
	SyncEveryNodes int
	Machine        mp.Machine
}

func (p Params) withDefaults() Params {
	if p.SyncEveryNodes == 0 {
		p.SyncEveryNodes = 100
	}
	return p
}

// histBytes returns the byte size of one node's flattened statistics
// (C·Ad·M int64 counts plus the C-wide class distribution).
func (p Params) histBytes() float64 {
	return 8 * (float64(p.C) + float64(p.C)*float64(p.Ad)*p.M)
}

// ComputePerLevel is Equation 1: the local computation of one level —
// the data scan θ(Ad·N/P) plus the histogram-table upkeep C·Ad·M per
// node, in seconds.
func (p Params) ComputePerLevel(level int) float64 {
	p = p.withDefaults()
	nodes := p.nodesAt(level)
	records := p.N
	if p.LevelRecords != nil {
		if level < len(p.LevelRecords) {
			records = p.LevelRecords[level]
		} else {
			records = 0
		}
	}
	scan := float64(p.Ad+1) * float64(records) / float64(p.P)
	tables := float64(nodes) * p.histBytes() / 8
	return (scan + tables) * p.Machine.TC
}

// CommPerLevel is Equation 2: the reduction cost of one level,
// (t_s + t_w·histogram bytes)·⌈log₂P⌉ per buffer flush.
func (p Params) CommPerLevel(level int) float64 {
	p = p.withDefaults()
	if p.P == 1 {
		return 0
	}
	nodes := p.nodesAt(level)
	logP := math.Ceil(math.Log2(float64(p.P)))
	cost := 0.0
	for start := 0; start < nodes; start += p.SyncEveryNodes {
		chunk := nodes - start
		if chunk > p.SyncEveryNodes {
			chunk = p.SyncEveryNodes
		}
		cost += (p.Machine.TS + p.Machine.TW*float64(chunk)*p.histBytes()) * logP
	}
	return cost
}

// MovingCost is Equation 3: the pairwise record exchange of one
// partition split, ≤ 2·(N/P)·t_w per record byte.
func (p Params) MovingCost(records int) float64 {
	return 2 * float64(records) / float64(p.P) * p.Machine.TW * float64(p.RecordBytes)
}

// LoadBalanceCost is Equation 4 (same bound as the moving phase).
func (p Params) LoadBalanceCost(records int) float64 { return p.MovingCost(records) }

// SyncTime composes Equations 1 and 2 over all levels: the predicted
// runtime of the synchronous formulation.
func (p Params) SyncTime() float64 {
	p = p.withDefaults()
	t := 0.0
	for level := range p.LevelNodes {
		t += p.ComputePerLevel(level) + p.CommPerLevel(level)
	}
	return t
}

// SerialTime is the P=1 instance of SyncTime (Equation "Serial time =
// θ(N)·L₁").
func (p Params) SerialTime() float64 {
	q := p
	q.P = 1
	return q.SyncTime()
}

// HybridTime predicts the hybrid's runtime: run the synchronous model
// level by level, accumulate Equation 2, and when the §3.3 criterion
// fires (with the given ratio), split the partition — halving P, halving
// the frontier and the records — and continue. Equations 5–9 in
// recursive form. The prediction assumes perfect balance (the model's
// stated idealization).
func (p Params) HybridTime(ratio float64) float64 {
	p = p.withDefaults()
	return hybridRec(p, 0, ratio)
}

// hybridRec models one partition working on levels [level, ...) of its
// profile with p.N records on p.P processors. On a split it pays the
// movement (Equations 3–4), halves the partition, records and remaining
// level widths, and recurses — balanced halves finish together, so the
// larger half's time is the partition's time.
func hybridRec(p Params, level int, ratio float64) float64 {
	t, accum := 0.0, 0.0
	for l := level; l < len(p.LevelNodes); l++ {
		comm := p.CommPerLevel(l)
		t += p.ComputePerLevel(l) + comm
		accum += comm
		if p.P > 1 && p.nodesAt(l) >= 2 {
			move := p.MovingCost(p.N) + p.LoadBalanceCost(p.N)
			if accum >= ratio*move {
				t += move
				sub := p
				sub.P = (p.P + 1) / 2
				sub.N = p.N / 2
				rest := append([]int(nil), p.LevelNodes...)
				for j := l + 1; j < len(rest); j++ {
					rest[j] = (rest[j] + 1) / 2
				}
				sub.LevelNodes = rest
				if p.LevelRecords != nil {
					recs := append([]int(nil), p.LevelRecords...)
					for j := l + 1; j < len(recs); j++ {
						recs[j] = (recs[j] + 1) / 2
					}
					sub.LevelRecords = recs
				}
				return t + hybridRec(sub, l+1, ratio)
			}
		}
	}
	return t
}

// nodesAt returns the level width, defaulting to the full-binary-tree
// 2^L when no profile is supplied (the paper's closed-form assumption).
func (p Params) nodesAt(level int) int {
	if len(p.LevelNodes) > 0 {
		if level < len(p.LevelNodes) {
			return p.LevelNodes[level]
		}
		return 0
	}
	if level > 30 {
		return 1 << 30
	}
	return 1 << uint(level)
}

// Efficiency is T₁ / (P·T_P) under the synchronous model.
func (p Params) Efficiency() float64 {
	return p.SerialTime() / (float64(p.P) * p.SyncTime())
}

// IsoefficiencyN numerically finds the N that keeps the hybrid model's
// efficiency at the target for the given P — the paper's §4.3 states it
// grows as θ(P log P). The search doubles N until the efficiency is met
// (monotone in N: more records amortize the fixed per-level costs).
func IsoefficiencyN(base Params, target float64, ratio float64) int {
	n := 256
	for iter := 0; iter < 200; iter++ {
		q := base
		q.N = n
		q.LevelRecords = nil // the paper's fixed-tree idealization
		t1 := q
		t1.P = 1
		if t1.SyncTime()/(float64(base.P)*q.HybridTime(ratio)) >= target {
			return n
		}
		n += n / 4
	}
	return n
}
