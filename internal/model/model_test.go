package model

import (
	"testing"

	"partree/internal/core"
	"partree/internal/discretize"
	"partree/internal/experiments"
	"partree/internal/mp"
	"partree/internal/quest"
	"partree/internal/tree"
)

// paramsFor derives model parameters from an actual workload: the real
// tree's level widths, the real schema constants, the real machine.
func paramsFor(t *testing.T, n, p int) Params {
	t.Helper()
	raw, err := quest.Generate(quest.Config{Function: 2, Seed: 1998}, n)
	if err != nil {
		t.Fatal(err)
	}
	d := discretize.UniformPaper(raw, quest.PaperBins(), quest.Ranges())
	o := core.Options{Tree: tree.Options{Binary: true}}
	ref := tree.BuildBFS(d, o.SerialOptions(d))
	return Params{
		N:            n,
		P:            p,
		C:            d.Schema.NumClasses(),
		Ad:           d.Schema.NumAttrs(),
		M:            d.Schema.MeanCardinality(),
		LevelNodes:   ref.LevelWidths(),
		LevelRecords: ref.LevelRecords(),
		RecordBytes:  d.Schema.RecordBytes(),
		Machine:      mp.SP2(),
	}
}

// within asserts predicted/measured stays inside a tolerance band; the
// model ignores imbalance and waiting, so it systematically predicts low.
func within(t *testing.T, name string, predicted, measured, lo, hi float64) {
	t.Helper()
	ratio := predicted / measured
	if ratio < lo || ratio > hi {
		t.Errorf("%s: predicted %.4fs vs measured %.4fs (ratio %.2f outside [%.2f, %.2f])",
			name, predicted, measured, ratio, lo, hi)
	}
}

// TestModelTracksSimulation: Equations 1–2 composed over the real level
// profile must track the simulator's synchronous runtime within a small
// factor, for the serial case and for several processor counts.
func TestModelTracksSimulation(t *testing.T) {
	const n = 20000
	for _, p := range []int{1, 4, 16} {
		params := paramsFor(t, n, p)
		measured := experiments.Run(experiments.Spec{
			Formulation: experiments.Sync, Records: n, Procs: p,
		}).ModeledSeconds
		predicted := params.SyncTime()
		within(t, "sync", predicted, measured, 0.4, 1.6)
	}
}

// TestModelHybridOrdering: the model must reproduce the qualitative
// structure of Figure 7 — a late split (large ratio) costs more than
// ratio 1, and the hybrid beats pure synchronous at scale.
func TestModelHybridOrdering(t *testing.T) {
	params := paramsFor(t, 20000, 16)
	h1 := params.HybridTime(1)
	h8 := params.HybridTime(8)
	sync := params.SyncTime()
	if h1 >= sync {
		t.Errorf("model: hybrid(1) %.4f not below sync %.4f at P=16", h1, sync)
	}
	if h8 < h1 {
		t.Errorf("model: late splitting %.4f cheaper than ratio 1 %.4f", h8, h1)
	}
}

// TestModelHybridTracksSimulation: the hybrid prediction should stay in a
// loose band of the simulated hybrid (the model has no imbalance, so it
// under-predicts).
func TestModelHybridTracksSimulation(t *testing.T) {
	const n = 20000
	params := paramsFor(t, n, 16)
	measured := experiments.Run(experiments.Spec{
		Formulation: experiments.Hybrid, Records: n, Procs: 16,
	}).ModeledSeconds
	predicted := params.HybridTime(1)
	within(t, "hybrid", predicted, measured, 0.25, 1.5)
}

// TestIsoefficiencyGrowth: §4.3 in its operational form — growing N as
// P·log₂P holds the modeled hybrid efficiency steady, while growing N
// only linearly in P lets it decay. (The model uses the paper's fixed-
// tree idealization: the level profile does not change with N.)
func TestIsoefficiencyGrowth(t *testing.T) {
	base := paramsFor(t, 4000, 4)
	eff := func(n, p int) float64 {
		q := base
		q.N, q.P = n, p
		q.LevelRecords = nil
		t1 := q
		t1.P = 1
		return t1.SyncTime() / (float64(p) * q.HybridTime(1))
	}
	const c = 500
	var pl, lin []float64
	for _, p := range []int{4, 8, 16, 32} {
		log2 := 2
		for q := p; q > 4; q >>= 1 {
			log2++
		}
		pl = append(pl, eff(c*p*log2, p))
		lin = append(lin, eff(c*p*2, p))
	}
	minPl, maxPl := pl[0], pl[0]
	for _, e := range pl {
		if e < minPl {
			minPl = e
		}
		if e > maxPl {
			maxPl = e
		}
	}
	if maxPl-minPl > 0.12 {
		t.Errorf("efficiency drifts %.3f..%.3f under N=θ(P log P) growth: %v", minPl, maxPl, pl)
	}
	if lin[len(lin)-1] >= lin[0]-0.03 {
		t.Errorf("efficiency did not decay under linear N growth: %v", lin)
	}
	// And the isoefficiency solver itself must demand superlinear N.
	n4 := IsoefficiencyN(withP(base, 4), 0.8, 1)
	n32 := IsoefficiencyN(withP(base, 32), 0.8, 1)
	if n32 < n4*8 {
		t.Errorf("IsoefficiencyN grew sublinearly: N(4)=%d, N(32)=%d", n4, n32)
	}
}

func withP(p Params, procs int) Params {
	p.P = procs
	return p
}

// TestEfficiencyMonotoneInN: more records amortize the fixed per-level
// costs, so modeled efficiency must not decrease with N.
func TestEfficiencyMonotoneInN(t *testing.T) {
	small := paramsFor(t, 5000, 8)
	large := paramsFor(t, 20000, 8)
	if large.Efficiency() < small.Efficiency()-0.02 {
		t.Errorf("efficiency fell with N: %.3f (5k) -> %.3f (20k)",
			small.Efficiency(), large.Efficiency())
	}
}
