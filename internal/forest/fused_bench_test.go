package forest

import (
	"testing"

	"partree/internal/quest"
	"partree/internal/tree"
)

// The shape mirrors the committed BENCH_serve.json row: function 9
// grows full, balanced trees, so the fused walk's fixed step count per
// member matches the depth almost every row actually needs.
func benchFused(b *testing.B, trees int) {
	train, err := quest.Generate(quest.Config{Function: 9, Seed: 9}, 50000)
	if err != nil {
		b.Fatal(err)
	}
	test, err := quest.Generate(quest.Config{Function: 9, Seed: 10}, 100000)
	if err != nil {
		b.Fatal(err)
	}
	fr, err := Train(train, Config{Trees: trees, Builder: "hunt", Seed: 4, Bootstrap: true, Tree: tree.Options{Binary: true, MaxDepth: 6}, Workers: 1})
	if err != nil {
		b.Fatal(err)
	}
	fz, err := Compile(fr)
	if err != nil {
		b.Fatal(err)
	}
	out := make([]int32, test.Len())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fz.PredictInto(test, out, 0, test.Len())
	}
	b.ReportMetric(float64(test.Len()), "rows/op")
}

func BenchmarkFused100(b *testing.B) { benchFused(b, 100) }
func BenchmarkFused10(b *testing.B)  { benchFused(b, 10) }
