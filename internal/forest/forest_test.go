package forest

import (
	"strings"
	"testing"

	"partree/internal/dataset"
	"partree/internal/flat"
	"partree/internal/quest"
	"partree/internal/tree"
)

func testData(t *testing.T, n int) *dataset.Dataset {
	t.Helper()
	d, err := quest.Generate(quest.Config{Function: 2, Seed: 77}, n)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	return d
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		cfg  Config
		want string
	}{
		{Config{Trees: 0}, "Trees"},
		{Config{Trees: 3, Builder: "cart"}, "unknown builder"},
		{Config{Trees: 3, FeatureFraction: 1.5}, "FeatureFraction"},
		{Config{Trees: 3, FeatureFraction: -0.1}, "FeatureFraction"},
	}
	for _, c := range cases {
		err := c.cfg.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Validate(%+v) = %v, want error containing %q", c.cfg, err, c.want)
		}
	}
	if err := (Config{Trees: 1}).Validate(); err != nil {
		t.Errorf("minimal config rejected: %v", err)
	}
}

func TestBootstrapIndicesDeterministic(t *testing.T) {
	a := BootstrapIndices(9, 3, 500)
	b := BootstrapIndices(9, 3, 500)
	if len(a) != 500 {
		t.Fatalf("got %d draws, want 500", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs between identical calls: %d vs %d", i, a[i], b[i])
		}
		if a[i] < 0 || a[i] >= 500 {
			t.Fatalf("draw %d = %d out of range", i, a[i])
		}
	}
	c := BootstrapIndices(9, 4, 500)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("members 3 and 4 drew identical bootstrap samples")
	}
}

func TestSubspace(t *testing.T) {
	if got := subspace(1, 0, 10, 0); got != nil {
		t.Fatalf("frac 0 => full schema, got %v", got)
	}
	if got := subspace(1, 0, 10, 1); got != nil {
		t.Fatalf("frac 1 => full schema, got %v", got)
	}
	a := subspace(1, 2, 10, 0.5)
	b := subspace(1, 2, 10, 0.5)
	if len(a) != 5 {
		t.Fatalf("frac 0.5 of 10 attrs => 5, got %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("subspace is not deterministic")
		}
		if i > 0 && a[i] <= a[i-1] {
			t.Fatalf("subspace not sorted/unique: %v", a)
		}
	}
	if got := subspace(1, 0, 10, 0.01); len(got) != 1 {
		t.Fatalf("tiny fraction must keep one attribute, got %v", got)
	}
}

// TestTrainWorkerCountInvariance: the forest is bit-identical however many
// trainer goroutines schedule the member builds — the determinism contract
// of the package doc.
func TestTrainWorkerCountInvariance(t *testing.T) {
	d := testData(t, 1200)
	cfg := Config{
		Trees:           8,
		Builder:         "hunt",
		Seed:            42,
		Bootstrap:       true,
		FeatureFraction: 0.6,
		Tree:            tree.Options{Binary: true},
	}
	cfg.Workers = 1
	one, err := Train(d, cfg)
	if err != nil {
		t.Fatalf("train workers=1: %v", err)
	}
	cfg.Workers = 5
	many, err := Train(d, cfg)
	if err != nil {
		t.Fatalf("train workers=5: %v", err)
	}
	for m := range one.Trees {
		if diff := tree.Diff(one.Trees[m], many.Trees[m]); diff != "" {
			t.Fatalf("member %d differs between worker counts: %s", m, diff)
		}
	}
}

// TestTrainSeedSensitivity: a different master seed grows a different
// forest (bootstrap samples actually vary).
func TestTrainSeedSensitivity(t *testing.T) {
	d := testData(t, 800)
	cfg := Config{Trees: 4, Seed: 1, Bootstrap: true, Tree: tree.Options{Binary: true}}
	a, err := Train(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 2
	b, err := Train(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for m := range a.Trees {
		if tree.Diff(a.Trees[m], b.Trees[m]) != "" {
			return // at least one member differs: seeds matter
		}
	}
	t.Fatal("forests under different seeds are identical")
}

// TestTrainLeavesInputUntouched: training with bootstrap + subspace must
// not mutate the caller's dataset (projection views share columns).
func TestTrainLeavesInputUntouched(t *testing.T) {
	d := testData(t, 600)
	class := append([]int32(nil), d.Class...)
	rid := append([]int64(nil), d.RID...)
	col := append([]float64(nil), d.Cont[0]...)
	if _, err := Train(d, Config{Trees: 5, Seed: 7, Bootstrap: true, FeatureFraction: 0.5, Tree: tree.Options{Binary: true}}); err != nil {
		t.Fatal(err)
	}
	for i := range class {
		if d.Class[i] != class[i] || d.RID[i] != rid[i] || d.Cont[0][i] != col[i] {
			t.Fatalf("row %d of the training set was mutated", i)
		}
	}
}

// TestFusedMatchesNaive: the fused interleaved walk votes bit-identically
// to member-by-member aggregation over the per-tree flat models, under
// both vote modes.
func TestFusedMatchesNaive(t *testing.T) {
	train := testData(t, 1500)
	test := testData(t, 2000)
	f, err := Train(train, Config{
		Trees:           12,
		Seed:            5,
		Bootstrap:       true,
		FeatureFraction: 0.7,
		Tree:            tree.Options{Binary: true, MaxDepth: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []VoteMode{Majority, Weighted} {
		f.Vote = mode
		f.Weights = nil
		if mode == Weighted {
			f.Weights = make([]float64, len(f.Trees))
			for i := range f.Weights {
				// Distinct irrational-ish weights so float-sum order matters.
				f.Weights[i] = 0.31 + 0.173*float64(i)
			}
		}
		fz, err := Compile(f)
		if err != nil {
			t.Fatal(err)
		}
		fused := make([]int32, test.Len())
		naive := make([]int32, test.Len())
		fz.PredictInto(test, fused, 0, test.Len())
		fz.PredictNaiveInto(test, naive, 0, test.Len())
		for r := range fused {
			if fused[r] != naive[r] {
				t.Fatalf("%v: row %d fused=%d naive=%d", mode, r, fused[r], naive[r])
			}
		}
		// Single-row path agrees with the batch paths.
		for _, r := range []int{0, 1, 255, 256, 257, test.Len() - 1} {
			if got := fz.Predict(test, r); got != fused[r] {
				t.Fatalf("%v: row %d Predict=%d batch=%d", mode, r, got, fused[r])
			}
		}
	}
}

// TestSingleMemberFusedMatchesFlat: a 1-tree forest predicts exactly its
// member flat model (the root identity test extends this to all nine
// builders).
func TestSingleMemberFusedMatchesFlat(t *testing.T) {
	d := testData(t, 1000)
	f, err := Train(d, Config{Trees: 1, Seed: 3, Tree: tree.Options{Binary: true}})
	if err != nil {
		t.Fatal(err)
	}
	m, err := flat.Compile(f.Trees[0])
	if err != nil {
		t.Fatal(err)
	}
	fz, err := Compile(f)
	if err != nil {
		t.Fatal(err)
	}
	if fz.Trees() != 1 || fz.Nodes() != m.Len() {
		t.Fatalf("fused has %d trees / %d nodes, member model has %d nodes", fz.Trees(), fz.Nodes(), m.Len())
	}
	out := make([]int32, d.Len())
	fz.PredictInto(d, out, 0, d.Len())
	for r := 0; r < d.Len(); r++ {
		if want := m.Predict(d, r); out[r] != want {
			t.Fatalf("row %d: fused=%d flat=%d", r, out[r], want)
		}
	}
}

// TestFusedLayout: roots sit at indexes 0..T-1, children are contiguous
// with absolute bases, and leaves carry ChildBase -1.
func TestFusedLayout(t *testing.T) {
	d := testData(t, 900)
	f, err := Train(d, Config{Trees: 5, Seed: 11, Bootstrap: true, Tree: tree.Options{Binary: true, MaxDepth: 6}})
	if err != nil {
		t.Fatal(err)
	}
	fz, err := Compile(f)
	if err != nil {
		t.Fatal(err)
	}
	for tr, root := range fz.Roots {
		if root != int32(tr) {
			t.Fatalf("member %d root at fused index %d", tr, root)
		}
	}
	total := 0
	for _, m := range fz.Members {
		total += m.Len()
	}
	if fz.Nodes() != total {
		t.Fatalf("fused %d nodes, members total %d", fz.Nodes(), total)
	}
	for i := range fz.Kind {
		if fz.Kind[i] == tree.Leaf {
			if fz.ChildBase[i] != -1 {
				t.Fatalf("leaf %d has child base %d", i, fz.ChildBase[i])
			}
			continue
		}
		cb, nc := fz.ChildBase[i], fz.NumChild[i]
		if cb <= int32(i) || int(cb+nc) > fz.Nodes() {
			t.Fatalf("node %d children [%d, %d) out of range", i, cb, cb+nc)
		}
	}
}
