package forest

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"partree/internal/tree"
)

func trainSmall(t *testing.T, trees int, vote VoteMode) *Forest {
	t.Helper()
	d := testData(t, 700)
	f, err := Train(d, Config{
		Trees:     trees,
		Seed:      21,
		Bootstrap: true,
		Vote:      vote,
		Tree:      tree.Options{Binary: true, MaxDepth: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	if vote == Weighted {
		for i := range f.Weights {
			f.Weights[i] = 1 + 0.25*float64(i)
		}
	}
	return f
}

func TestForestJSONRoundTrip(t *testing.T) {
	for _, vote := range []VoteMode{Majority, Weighted} {
		f := trainSmall(t, 4, vote)
		var buf bytes.Buffer
		if err := WriteJSON(&buf, f); err != nil {
			t.Fatalf("%v: write: %v", vote, err)
		}
		got, err := ReadJSON(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%v: read: %v", vote, err)
		}
		if got.Vote != vote || got.Len() != f.Len() {
			t.Fatalf("%v: round trip changed shape: vote=%v len=%d", vote, got.Vote, got.Len())
		}
		for m := range f.Trees {
			if diff := tree.Diff(f.Trees[m], got.Trees[m]); diff != "" {
				t.Fatalf("%v: member %d drifted through JSON: %s", vote, m, diff)
			}
		}
		if vote == Weighted {
			for i, w := range got.Weights {
				if w != f.Weights[i] {
					t.Fatalf("weight %d drifted: %v != %v", i, w, f.Weights[i])
				}
			}
		}
		// The round-tripped forest serves identically.
		d := testData(t, 800)
		a, err := Compile(f)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Compile(got)
		if err != nil {
			t.Fatal(err)
		}
		oa := make([]int32, d.Len())
		ob := make([]int32, d.Len())
		a.PredictInto(d, oa, 0, d.Len())
		b.PredictInto(d, ob, 0, d.Len())
		for r := range oa {
			if oa[r] != ob[r] {
				t.Fatalf("%v: row %d diverged after round trip", vote, r)
			}
		}
	}
}

// mutateForestFile decodes a valid forest file, applies f, re-encodes.
func mutateForestFile(t *testing.T, valid []byte, mutate func(*forestFile)) []byte {
	t.Helper()
	var ff forestFile
	if err := json.Unmarshal(valid, &ff); err != nil {
		t.Fatal(err)
	}
	mutate(&ff)
	out, err := json.Marshal(ff)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestReadForestJSONRejectsHostileFiles(t *testing.T) {
	f := trainSmall(t, 3, Weighted)
	var buf bytes.Buffer
	if err := WriteJSON(&buf, f); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	cases := []struct {
		name   string
		mutate func(*forestFile)
		want   string
	}{
		{"wrong format", func(ff *forestFile) { ff.Format = "partree-decision-tree" }, "not a decision-forest"},
		{"bad version", func(ff *forestFile) { ff.Version = 2 }, "version"},
		{"no members", func(ff *forestFile) { ff.Members = nil; ff.Weights = nil }, "no members"},
		{"weight count", func(ff *forestFile) { ff.Weights = ff.Weights[:2] }, "weights for"},
		{"negative weight", func(ff *forestFile) { ff.Weights[0] = -1 }, "finite"},
		{"zero weights", func(ff *forestFile) {
			for i := range ff.Weights {
				ff.Weights[i] = 0
			}
		}, "sum"},
		{"unknown vote", func(ff *forestFile) { ff.Vote = "plurality" }, "vote mode"},
		{"majority with weights", func(ff *forestFile) { ff.Vote = "majority" }, "carries"},
		{"garbage member", func(ff *forestFile) { ff.Members[1] = json.RawMessage(`{"format":"nope"}`) }, "member 1"},
		{"member count bomb", func(ff *forestFile) {
			m := ff.Members[0]
			ff.Members = nil
			ff.Weights = nil
			ff.Vote = "majority"
			for i := 0; i <= MaxMembers; i++ {
				ff.Members = append(ff.Members, m)
			}
		}, "exceed"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			data := mutateForestFile(t, valid, c.mutate)
			_, err := ReadJSON(bytes.NewReader(data))
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("got %v, want error containing %q", err, c.want)
			}
		})
	}

	t.Run("schema mismatch", func(t *testing.T) {
		// Member 1 rewritten with a renamed class label: members must share
		// one schema exactly.
		data := mutateForestFile(t, valid, func(ff *forestFile) {
			s := string(ff.Members[1])
			s = strings.Replace(s, `"Group A"`, `"Group X"`, 1)
			if !strings.Contains(s, `"Group X"`) {
				t.Skip("class label not found in member document")
			}
			ff.Members[1] = json.RawMessage(s)
		})
		_, err := ReadJSON(bytes.NewReader(data))
		if err == nil || !strings.Contains(err.Error(), "member 1") {
			t.Fatalf("got %v, want member-1 schema error", err)
		}
	})

	t.Run("truncated", func(t *testing.T) {
		if _, err := ReadJSON(bytes.NewReader(valid[:len(valid)/2])); err == nil {
			t.Fatal("truncated file accepted")
		}
	})
}

func TestWriteJSONRejectsEmptyForest(t *testing.T) {
	if err := WriteJSON(&bytes.Buffer{}, &Forest{}); err == nil {
		t.Fatal("empty forest written")
	}
}
