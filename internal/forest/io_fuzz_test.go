package forest

import (
	"bytes"
	"testing"

	"partree/internal/dataset"
	"partree/internal/quest"
	"partree/internal/tree"
)

// FuzzReadForestJSON: whatever bytes arrive, the forest reader either
// rejects them with an error or returns a forest that compiles and serves
// without panicking — the serving registry feeds uploaded model files
// straight into this path.
func FuzzReadForestJSON(f *testing.F) {
	// Seed with a real forest file, a single-member file, and envelope
	// fragments so the fuzzer starts inside the format.
	d, err := quest.Generate(quest.Config{Function: 2, Seed: 13}, 300)
	if err != nil {
		f.Fatal(err)
	}
	for _, trees := range []int{1, 3} {
		fr, err := Train(d, Config{Trees: trees, Seed: 8, Bootstrap: true, Tree: tree.Options{Binary: true, MaxDepth: 6}})
		if err != nil {
			f.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteJSON(&buf, fr); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte(`{"format":"partree-decision-forest","version":1,"vote":"majority","members":[]}`))
	f.Add([]byte(`{"format":"partree-decision-forest","version":1,"vote":"weighted","weights":[1e308,1e308],"members":[{},{}]}`))
	f.Add([]byte(`{"format":"partree-decision-tree"}`))
	f.Add([]byte(`null`))

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := ReadJSON(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Anything accepted must compile and classify a synthetic row
		// without panicking. Zero values exercise the out-of-range
		// fallbacks (a categorical code 0 may exceed a hostile schema's
		// cardinality; the walk must still terminate).
		fz, err := Compile(fr)
		if err != nil {
			return
		}
		row := dataset.New(fr.Schema, 1)
		row.Append(dataset.NewRecord(fr.Schema))
		out := make([]int32, 1)
		fz.PredictInto(row, out, 0, 1)
		fz.PredictNaiveInto(row, out, 0, 1)
		if c := fz.Predict(row, 0); c < 0 || int(c) >= fr.Schema.NumClasses() {
			t.Fatalf("prediction %d outside class range", c)
		}
	})
}
