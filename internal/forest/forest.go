// Package forest grows bagged / random-subspace ensembles of decision
// trees over the existing builders and compiles them into a fused
// flat-forest serving layout. Training schedules many member builds in
// parallel (tree-level parallelism) while each member build keeps its own
// intra-build parallelism — the parallel formulations run their modeled
// multi-rank worlds, and every builder's hot loops go through the shared
// statistics kernel, so the ensemble trainer composes tree-level ×
// node-level parallelism the way the parlaylib-style schedulers do.
//
// Determinism is a contract, not an accident: every member's bootstrap
// sample and feature subspace derive from (Config.Seed, member index)
// alone, so the same configuration grows a bit-identical forest
// regardless of how many trainer goroutines run or in which order members
// finish. The differential tests pin this, along with the serving-side
// invariant that the fused layout votes bit-identically to per-tree
// aggregation.
package forest

import (
	"fmt"
	"math"
	"math/rand/v2"
	"runtime"
	"sort"
	"sync"

	"partree/internal/core"
	"partree/internal/dataset"
	"partree/internal/mp"
	"partree/internal/scalparc"
	"partree/internal/sliq"
	"partree/internal/sprint"
	"partree/internal/tree"
	"partree/internal/vertical"
)

// VoteMode selects how member predictions combine into the forest's.
type VoteMode uint8

const (
	// Majority counts one vote per member; ties break to the smallest
	// class index, the deterministic tie-break used everywhere.
	Majority VoteMode = iota
	// Weighted accumulates each member's weight on its predicted class.
	// Accumulation order is ascending member index in every path, so the
	// float sums — and therefore the argmax — are bit-reproducible.
	Weighted
)

// String names the vote mode (the forest JSON format stores it).
func (v VoteMode) String() string {
	switch v {
	case Majority:
		return "majority"
	case Weighted:
		return "weighted"
	default:
		return fmt.Sprintf("VoteMode(%d)", uint8(v))
	}
}

// Builders lists the supported member builders: every formulation in the
// repository can grow forest members.
var Builders = []string{"hunt", "bfs", "sliq", "sprint", "sync", "partitioned", "hybrid", "scalparc", "vertical"}

// Config parameterizes ensemble training.
type Config struct {
	// Trees is the ensemble size (required, >= 1).
	Trees int
	// Builder names the member builder, one of Builders. Default "hunt".
	Builder string
	// Procs is the modeled rank count for the multi-rank builders
	// (sync/partitioned/hybrid/scalparc/vertical). Default 4.
	Procs int
	// Seed is the master seed every per-member bootstrap and subspace
	// seed derives from.
	Seed uint64
	// Bootstrap draws each member's training set as an N-of-N
	// with-replacement sample (bagging). False trains every member on the
	// full data (only useful together with FeatureFraction < 1).
	Bootstrap bool
	// FeatureFraction is the fraction of attributes each member may split
	// on (random subspace); members always keep at least one attribute.
	// 0 or 1 keeps the full schema.
	FeatureFraction float64
	// Vote is the aggregation mode the trained forest carries.
	Vote VoteMode
	// Tree holds the per-member induction parameters.
	Tree tree.Options
	// SyncEveryNodes, MicroBins, NodeBins mirror core.Options for the
	// multi-rank builders; zero keeps their defaults.
	SyncEveryNodes int
	MicroBins      int
	NodeBins       int
	// Workers bounds concurrent member builds; <= 0 means GOMAXPROCS.
	// The forest is identical for every worker count.
	Workers int
}

func (c Config) withDefaults() Config {
	if c.Builder == "" {
		c.Builder = "hunt"
	}
	if c.Procs <= 0 {
		c.Procs = 4
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Trees < 1 {
		return fmt.Errorf("forest: Trees must be >= 1, got %d", c.Trees)
	}
	if c.FeatureFraction < 0 || c.FeatureFraction > 1 {
		return fmt.Errorf("forest: FeatureFraction %g out of [0, 1]", c.FeatureFraction)
	}
	b := c.withDefaults().Builder
	for _, known := range Builders {
		if b == known {
			return nil
		}
	}
	return fmt.Errorf("forest: unknown builder %q (want one of %v)", b, Builders)
}

// Forest is a trained ensemble: member trees sharing one schema, plus the
// vote semantics. Weights is nil under majority voting and per-member
// under weighted voting.
type Forest struct {
	Schema  *dataset.Schema
	Trees   []*tree.Tree
	Weights []float64
	Vote    VoteMode
}

// Len returns the member count.
func (f *Forest) Len() int { return len(f.Trees) }

// memberStream returns the deterministic random stream for one member and
// purpose. Streams are keyed (master seed, member, purpose) so bootstrap
// and subspace draws never interact, and adding members never shifts
// existing ones.
func memberStream(seed uint64, member int, purpose uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, uint64(member)<<2|purpose))
}

const (
	streamBootstrap = 1
	streamSubspace  = 2
)

// BootstrapIndices returns the n with-replacement row draws of member
// `member` under the master seed — the deterministic bagging sample.
// cmd/dtgen reuses it (member 0) so CLI-generated bagging inputs match
// in-process training exactly.
func BootstrapIndices(seed uint64, member, n int) []int32 {
	r := memberStream(seed, member, streamBootstrap)
	idx := make([]int32, n)
	for i := range idx {
		idx[i] = int32(r.IntN(n))
	}
	return idx
}

// subspace returns the sorted attribute subset of one member: k =
// max(1, round(frac·A)) attributes drawn without replacement. A nil
// return means the full schema (frac 0 or 1).
func subspace(seed uint64, member int, numAttrs int, frac float64) []int {
	if frac == 0 || frac == 1 {
		return nil
	}
	k := int(math.Round(frac * float64(numAttrs)))
	if k < 1 {
		k = 1
	}
	if k >= numAttrs {
		return nil
	}
	r := memberStream(seed, member, streamSubspace)
	perm := r.Perm(numAttrs)[:k]
	sort.Ints(perm)
	return perm
}

// Train grows the configured ensemble from d. Member builds are scheduled
// across Config.Workers goroutines; the result is bit-identical for every
// worker count because each member depends only on (d, Config, its
// index). Weighted forests start with uniform weights of 1; callers
// re-weight afterwards (cmd/dtree uses training accuracy).
func Train(d *dataset.Dataset, cfg Config) (*Forest, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	if d.Len() == 0 {
		return nil, fmt.Errorf("forest: empty training set")
	}
	f := &Forest{Schema: d.Schema, Trees: make([]*tree.Tree, cfg.Trees), Vote: cfg.Vote}
	if cfg.Vote == Weighted {
		f.Weights = make([]float64, cfg.Trees)
		for i := range f.Weights {
			f.Weights[i] = 1
		}
	}

	workers := cfg.Workers
	if workers > cfg.Trees {
		workers = cfg.Trees
	}
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		first error
	)
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for m := range next {
				t, err := trainMember(d, cfg, m)
				if err != nil {
					mu.Lock()
					if first == nil {
						first = fmt.Errorf("forest: member %d: %w", m, err)
					}
					mu.Unlock()
					continue
				}
				f.Trees[m] = t
			}
		}()
	}
	for m := 0; m < cfg.Trees; m++ {
		next <- m
	}
	close(next)
	wg.Wait()
	if first != nil {
		return nil, first
	}
	return f, nil
}

// trainMember grows member m: draw its bootstrap sample and feature
// subspace, build through the configured builder on the (possibly
// projected) view, and remap the finished tree back onto the full schema.
func trainMember(d *dataset.Dataset, cfg Config, m int) (*tree.Tree, error) {
	sample := d
	if cfg.Bootstrap {
		sample = d.Select(BootstrapIndices(cfg.Seed, m, d.Len()))
		// The bagged sample is a training set in its own right: fresh,
		// unique record ids keep the shuffle-conservation invariants of
		// the partitioned builders meaningful despite duplicated rows.
		sample.AssignRIDs(0)
	}
	attrs := subspace(cfg.Seed, m, d.Schema.NumAttrs(), cfg.FeatureFraction)
	build := sample
	if attrs != nil {
		build = sample.Project(attrs)
	}
	t, err := buildOne(cfg, build)
	if err != nil {
		return nil, err
	}
	if attrs != nil {
		if err := t.RemapAttrs(attrs, d.Schema); err != nil {
			return nil, err
		}
	}
	// Members trained on a shared (non-bootstrap) full-schema view keep
	// d's schema pointer; normalize so every member serves under the
	// forest schema.
	t.Schema = d.Schema
	return t, nil
}

// buildOne dispatches a single build to the named builder. The multi-rank
// formulations run on a fresh modeled world per member.
func buildOne(cfg Config, d *dataset.Dataset) (t *tree.Tree, err error) {
	topts := cfg.Tree
	topts.Binner = nil // per-member data means per-member binners
	coreOpts := core.Options{
		Tree:           topts,
		SyncEveryNodes: cfg.SyncEveryNodes,
		MicroBins:      cfg.MicroBins,
		NodeBins:       cfg.NodeBins,
	}
	switch cfg.Builder {
	case "hunt":
		return tree.BuildHunt(d, topts), nil
	case "bfs":
		return tree.BuildBFS(d, coreOpts.SerialOptions(d)), nil
	case "sliq":
		return sliq.Build(d, topts), nil
	case "sprint":
		return sprint.Build(d, topts), nil
	case "sync", "partitioned", "hybrid", "scalparc", "vertical":
		return buildRanks(cfg, d, coreOpts)
	default:
		return nil, fmt.Errorf("forest: unknown builder %q", cfg.Builder)
	}
}

// buildRanks runs one member build on a modeled multi-rank world and
// returns the (identical-on-every-rank) tree of the lowest rank.
func buildRanks(cfg Config, d *dataset.Dataset, o core.Options) (*tree.Tree, error) {
	p := cfg.Procs
	w := mp.NewWorld(p, mp.SP2())
	trees := make([]*tree.Tree, p)
	blocks := d.BlockPartition(p)
	w.Run(func(c *mp.Comm) {
		switch cfg.Builder {
		case "sync":
			trees[c.Rank()] = core.BuildSync(c, blocks[c.Rank()], o)
		case "partitioned":
			trees[c.Rank()] = core.BuildPartitioned(c, blocks[c.Rank()], o)
		case "hybrid":
			trees[c.Rank()] = core.BuildHybrid(c, blocks[c.Rank()], o)
		case "scalparc":
			trees[c.Rank()] = scalparc.Build(c, blocks[c.Rank()], scalparc.Options{Tree: o.Tree, Mode: scalparc.DistributedHash}).Tree
		case "vertical":
			// Vertical partitioning divides columns: every rank holds the
			// full member sample.
			trees[c.Rank()] = vertical.Build(c, d, o.Tree)
		}
	})
	for _, t := range trees {
		if t != nil {
			return t, nil
		}
	}
	return nil, fmt.Errorf("forest: no rank produced a tree")
}

// Accuracy returns the fraction of rows the forest classifies correctly
// through per-tree vote aggregation (the reference path; serving goes
// through the fused layout, which is differentially pinned to agree).
func (f *Forest) Accuracy(d *dataset.Dataset) float64 {
	if d.Len() == 0 {
		return 0
	}
	fz, err := Compile(f)
	if err != nil {
		return 0
	}
	out := make([]int32, d.Len())
	fz.PredictNaiveInto(d, out, 0, d.Len())
	ok := 0
	for i, c := range out {
		if c == d.Class[i] {
			ok++
		}
	}
	return float64(ok) / float64(d.Len())
}
