package forest

import (
	"fmt"
	"math"
	"unsafe"

	"partree/internal/criteria"
	"partree/internal/dataset"
	"partree/internal/flat"
	"partree/internal/tree"
)

// Fused is the compiled serving form of a forest: every member's flat
// node table merged into one set of struct-of-arrays slices, laid out
// level-major ACROSS trees — all roots first (member t's root is node t),
// then every member's depth-1 nodes, and so on. The interleaving matters:
// batched prediction walks all trees for a tile of rows, so the active
// working set at any moment is one cross-tree level band plus the tile's
// column segments, not T disjoint tables. Child indexes are absolute
// (ChildBase[i] already includes the member's offset) and leaves carry
// ChildBase -1, so the walk needs no per-tree base register and leaf
// detection is one sign test instead of a kind switch.
//
// Votes accumulate per row in ascending member order in every path —
// fused, naive, integer or weighted — so fused prediction is
// bit-identical to per-tree aggregation (the differential tests'
// contract), including float-sum order for weighted forests.
type Fused struct {
	Schema *dataset.Schema
	// Members keeps the per-tree compiled models; PredictNaiveInto — the
	// reference (and baseline) path — routes through them.
	Members []*flat.Model
	// Weights is nil for majority voting, per-member for weighted.
	Weights []float64

	Roots []int32 // fused index of member t's root (== t by layout)

	Kind      []tree.SplitKind
	Attr      []int32
	Thresh    []float64
	Mask      []uint64
	ChildBase []int32 // absolute first-child index; -1 for leaves
	NumChild  []int32
	Class     []int32
	EdgeBase  []int32
	EdgeLen   []int32
	Edges     []float64

	// fast is true when stepWalkable verified the table: only leaves and
	// binary tests (ContBinary/CatBinary), every child and attribute
	// index in range — the shape of forests grown by the binary-split
	// builders — enabling the level-synchronous step walk below.
	fast bool

	// Depths[t] is member t's maximum leaf depth: the number of step-walk
	// iterations that provably land every row of that member on a leaf.
	Depths []int32

	// steps is the fast walk's self-looping reencoding of the node
	// table; see stepNode for the encoding. This removes the kind
	// switch, the mask range test and the leaf-exit branch from the
	// inner loop: a tile of rows advances one level per pass, every
	// row's chain independent of its neighbors', so the walk runs at
	// load-throughput instead of load-latency speed.
	steps []stepNode
}

// stepNode packs one fast-walk node into 16 bytes under a single
// branchless child formula covering all three binary-walk kinds,
// engineered for the walk's real limits — load-port pressure and
// instruction count — rather than readability: both addresses the
// walk computes are byte offsets, both compares are integer ops.
//
// The tile stores each attribute as an adjacent pair of uint64 lanes:
// an order-preserving integer key of the continuous value (floatKey;
// zero for categorical slots, whose kinds never carry continuous
// tests), then a one-hot category selector 1<<code. ca packs the two
// address fields in one load — low 32 bits the child's BYTE offset
// into the step table (index*16), high 32 bits the attribute's BYTE
// offset into a tile row (lane pair 2*attr, prescaled by 8) — and
// payload is the threshold key AND the category mask, one word
// interpreted both ways:
//
//	next = child + 16*(tile[aoff] > payload) + 16*(payload & tile[aoff+8] == 0)
//
// with both comparisons unsigned. The two increments are mutually
// exclusive by encoding, each kind neutralizing the term it does not
// use through the lane values, not extra fields:
//
//   - ContBinary: payload = floatKey(thresh), NaN thresholds rejected
//     by stepWalkable, so payload is the key of a real number and
//     never zero. The selector lane of a continuous slot is ^0, so
//     payload & sel equals payload ≠ 0 and only the compare can
//     advance; the key compare decides exactly like > on the floats.
//   - CatBinary: payload = mask. The key lane of a categorical slot
//     is zero — the minimal key, exceeded by nothing — so the compare
//     contributes nothing regardless of how the mask reads as a key;
//     a clear mask bit, or a selector zeroed by an out-of-range code
//     (Go shifts past 63 vanish exactly like the guarded test in
//     classOf), routes right.
//   - Leaf: self-loop — child = own byte offset, payload = ^0, aoff =
//     the tile's spare pair, whose key lane is zero (0 > ^0 is false
//     unsigned) and selector lane ^0 (^0 & ^0 ≠ 0), so neither term
//     ever fires.
type stepNode struct {
	ca      uint64
	payload uint64
}

// voteTile is the row-tile width of the fused batch walk. Small enough
// that the per-tile vote block and the tile's column segments stay
// cache-resident while every member walks the tile; large enough to
// amortize re-touching the upper level bands of the node table once per
// member per tile.
const voteTile = 256

// Trees returns the member count.
func (f *Fused) Trees() int { return len(f.Roots) }

// Nodes returns the total fused node count across members.
func (f *Fused) Nodes() int { return len(f.Kind) }

// Leaves returns the total leaf count across members.
func (f *Fused) Leaves() int {
	n := 0
	for _, k := range f.Kind {
		if k == tree.Leaf {
			n++
		}
	}
	return n
}

// Compile flattens a trained forest: each member through flat.Compile,
// then the members through CompileFlat.
func Compile(f *Forest) (*Fused, error) {
	if f == nil || len(f.Trees) == 0 {
		return nil, fmt.Errorf("forest: compiling an empty forest")
	}
	models := make([]*flat.Model, len(f.Trees))
	for i, t := range f.Trees {
		m, err := flat.Compile(t)
		if err != nil {
			return nil, fmt.Errorf("forest: member %d: %w", i, err)
		}
		models[i] = m
	}
	return CompileFlat(models, f.Weights)
}

// CompileFlat fuses already-compiled member models into the interleaved
// layout. weights nil selects majority voting; otherwise len(weights)
// must equal len(models). Every member must be compiled under a
// compatible schema (same attribute count and kinds, same class count);
// the forest reader guarantees full schema equality.
func CompileFlat(models []*flat.Model, weights []float64) (*Fused, error) {
	if len(models) == 0 {
		return nil, fmt.Errorf("forest: fusing zero models")
	}
	if weights != nil && len(weights) != len(models) {
		return nil, fmt.Errorf("forest: %d weights for %d members", len(weights), len(models))
	}
	s := models[0].Schema
	total := 0
	for i, m := range models {
		if err := compatibleSchemas(s, m.Schema); err != nil {
			return nil, fmt.Errorf("forest: member %d: %w", i, err)
		}
		total += m.Len()
	}
	f := &Fused{
		Schema:    s,
		Members:   models,
		Weights:   weights,
		Roots:     make([]int32, len(models)),
		Kind:      make([]tree.SplitKind, 0, total),
		Attr:      make([]int32, 0, total),
		Thresh:    make([]float64, 0, total),
		Mask:      make([]uint64, 0, total),
		ChildBase: make([]int32, 0, total),
		NumChild:  make([]int32, 0, total),
		Class:     make([]int32, 0, total),
		EdgeBase:  make([]int32, 0, total),
		EdgeLen:   make([]int32, 0, total),
	}

	// Breadth-first emission over ALL trees at once: the queue starts
	// with every root, so fused order is level-major across members and
	// children of one node stay contiguous. Emission order equals queue
	// order, so the node being expanded at queue position q sits at fused
	// index q.
	type ref struct {
		t int
		i int32
	}
	queue := make([]ref, 0, total)
	depths := make([]int32, 0, total)
	emit := func(r ref) {
		m := models[r.t]
		i := r.i
		f.Kind = append(f.Kind, m.Kind[i])
		f.Attr = append(f.Attr, m.Attr[i])
		f.Thresh = append(f.Thresh, m.Thresh[i])
		f.Mask = append(f.Mask, m.Mask[i])
		f.ChildBase = append(f.ChildBase, -1)
		f.NumChild = append(f.NumChild, m.NumChild[i])
		f.Class = append(f.Class, m.Class[i])
		f.EdgeBase = append(f.EdgeBase, int32(len(f.Edges)))
		f.EdgeLen = append(f.EdgeLen, m.EdgeLen[i])
		if n := m.EdgeLen[i]; n > 0 {
			f.Edges = append(f.Edges, m.Edges[m.EdgeBase[i]:m.EdgeBase[i]+n]...)
		}
		queue = append(queue, r)
	}
	for t := range models {
		f.Roots[t] = int32(len(f.Kind))
		emit(ref{t: t, i: 0})
		depths = append(depths, 0)
	}
	for q := 0; q < len(queue); q++ {
		if f.Kind[q] == tree.Leaf {
			continue
		}
		r := queue[q]
		m := models[r.t]
		f.ChildBase[q] = int32(len(f.Kind))
		cb := m.ChildBase[r.i]
		for c := int32(0); c < m.NumChild[r.i]; c++ {
			emit(ref{t: r.t, i: cb + c})
			depths = append(depths, depths[q]+1)
		}
	}

	f.Depths = make([]int32, len(models))
	for q := range queue {
		if t := queue[q].t; depths[q] > f.Depths[t] {
			f.Depths[t] = depths[q]
		}
	}

	f.fast = stepWalkable(f)
	if f.fast {
		f.buildStepArrays()
	}
	return f, nil
}

// stepWalkable reports whether the fused table qualifies for the
// unchecked step walk: only binary-walk node kinds, and — verified
// here rather than assumed — every child index and attribute in
// range, no NaN continuous threshold (the key encoding reserves key 0
// for NaN data), and the table small enough that byte offsets fit
// int32. The walk's pointer arithmetic therefore cannot leave its
// arrays no matter what model file produced the table; tables that
// fail take the generic bounds-checked walk instead.
func stepWalkable(f *Fused) bool {
	n := int32(len(f.Kind))
	if len(f.Kind) >= 1<<27 { // node byte offsets must fit int32
		return false
	}
	attrs := int32(f.Schema.NumAttrs())
	for i, k := range f.Kind {
		switch k {
		case tree.Leaf:
		case tree.ContBinary:
			if math.IsNaN(f.Thresh[i]) {
				return false
			}
			cb := f.ChildBase[i]
			if cb < 0 || cb+1 >= n || f.Attr[i] < 0 || f.Attr[i] >= attrs {
				return false
			}
		case tree.CatBinary:
			cb := f.ChildBase[i]
			if cb < 0 || cb+1 >= n || f.Attr[i] < 0 || f.Attr[i] >= attrs {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// floatKey maps a float64 to a uint64 whose unsigned order matches the
// float order: sign-magnitude bits become two's-complement-style by
// flipping all bits of negatives and the sign bit of non-negatives.
// Both zeros map to one key (they compare equal as floats) and NaN
// maps to key 0, below every real key, so key(x) > key(t) reproduces
// x > t exactly — including "NaN exceeds nothing" — for every real
// threshold t. No real number maps to key 0 (that preimage is a NaN
// pattern), which the leaf and mask encodings rely on.
func floatKey(v float64) uint64 {
	if v != v {
		return 0
	}
	if v == 0 {
		return 1 << 63
	}
	b := math.Float64bits(v)
	return b ^ (uint64(int64(b)>>63) | 1<<63)
}

// buildStepArrays reencodes the node table for the level-synchronous
// walk under the stepNode neutral-element encoding: each kind
// neutralizes the term it does not use, leaves become absorbing
// self-loops parked on the tile's spare always-zero slot.
func (f *Fused) buildStepArrays() {
	f.steps = make([]stepNode, len(f.Kind))
	// ca byte-offset packing: child index*16 (stepNode size) in the low
	// word, lane pair 2*attr*8 in the high word.
	pack := func(child, attr int32) uint64 {
		return uint64(uint32(16*attr))<<32 | uint64(uint32(16*child))
	}
	spareAttr := int32(f.Schema.NumAttrs())
	for i, k := range f.Kind {
		switch k {
		case tree.Leaf:
			f.steps[i] = stepNode{ca: pack(int32(i), spareAttr), payload: ^uint64(0)}
		case tree.ContBinary:
			f.steps[i] = stepNode{ca: pack(f.ChildBase[i], f.Attr[i]), payload: floatKey(f.Thresh[i])}
		default: // CatBinary
			f.steps[i] = stepNode{ca: pack(f.ChildBase[i], f.Attr[i]), payload: f.Mask[i]}
		}
	}
}

// compatibleSchemas checks the structural compatibility fusing requires.
func compatibleSchemas(want, got *dataset.Schema) error {
	if got == nil {
		return fmt.Errorf("model has no schema")
	}
	if want.NumAttrs() != got.NumAttrs() {
		return fmt.Errorf("schema has %d attributes, forest expects %d", got.NumAttrs(), want.NumAttrs())
	}
	if want.NumClasses() != got.NumClasses() {
		return fmt.Errorf("schema has %d classes, forest expects %d", got.NumClasses(), want.NumClasses())
	}
	for i := range want.Attrs {
		if want.Attrs[i].Kind != got.Attrs[i].Kind {
			return fmt.Errorf("attribute %d is %v, forest expects %v", i, got.Attrs[i].Kind, want.Attrs[i].Kind)
		}
	}
	return nil
}

// classOf walks row r from the fused node root to its vote, mirroring
// flat.Model.Predict decision for decision (including the CatMultiway
// out-of-range fallback to the current node's resolved class).
func (f *Fused) classOf(d *dataset.Dataset, r int, i int32) int32 {
	for {
		switch f.Kind[i] {
		case tree.Leaf:
			return f.Class[i]
		case tree.ContBinary:
			var c int32
			if d.Cont[f.Attr[i]][r] > f.Thresh[i] {
				c = 1
			}
			i = f.ChildBase[i] + c
		case tree.CatBinary:
			v := d.Cat[f.Attr[i]][r]
			c := int32(1)
			if uint32(v) < 64 && f.Mask[i]&(1<<uint32(v)) != 0 {
				c = 0
			}
			i = f.ChildBase[i] + c
		case tree.CatMultiway:
			c := d.Cat[f.Attr[i]][r]
			if uint32(c) >= uint32(f.NumChild[i]) {
				return f.Class[i]
			}
			i = f.ChildBase[i] + c
		default: // ContBinned
			edges := f.Edges[f.EdgeBase[i] : f.EdgeBase[i]+f.EdgeLen[i]]
			b := criteria.BinOf(edges, d.Cont[f.Attr[i]][r])
			if mask := f.Mask[i]; mask != 0 {
				c := int32(1)
				if b < 64 && mask&(1<<uint(b)) != 0 {
					c = 0
				}
				i = f.ChildBase[i] + c
			} else {
				i = f.ChildBase[i] + int32(b)
			}
		}
	}
}

// PredictInto classifies rows [lo, hi) of d into out[lo:hi] through the
// fused layout — the shard unit of the forest batch engine. Rows are
// processed in voteTile-sized tiles: all members vote on the tile, then
// the tile's rows resolve to classes, so the vote block never leaves
// cache and the output is written once per row.
func (f *Fused) PredictInto(d *dataset.Dataset, out []int32, lo, hi int) {
	if f.Weights == nil {
		f.predictMajority(d, out, lo, hi)
	} else {
		f.predictWeighted(d, out, lo, hi)
	}
}

// fillTile transposes rows [blo, bhi) into the row-major pair-lane
// tile: per row, attribute a occupies lanes 2a (floatKey of the
// continuous value) and 2a+1 (one-hot category selector), so a node's
// two reads land on one 16-byte pair and the walk chases no
// per-attribute slice headers. Selector lanes of continuous slots and
// of the spare pair that leaves park on are set to ^0; key lanes of
// categorical slots and of the spare pair keep the tile's zero
// initialization, the minimal key — the neutral elements of the
// stepNode formula's two terms.
func fillTile(tile []uint64, d *dataset.Dataset, blo, bhi, stride2 int) {
	for a, col := range d.Cont {
		if col == nil {
			continue
		}
		for k, v := range col[blo:bhi] {
			tile[k*stride2+2*a] = floatKey(v)
			tile[k*stride2+2*a+1] = ^uint64(0)
		}
	}
	for a, col := range d.Cat {
		if col == nil {
			continue
		}
		for k, v := range col[blo:bhi] {
			tile[k*stride2+2*a+1] = 1 << uint32(v)
		}
	}
	for k := 0; k < bhi-blo; k++ {
		tile[k*stride2+stride2-1] = ^uint64(0)
	}
}

// stepWalk advances every row of walk through `steps` levels of the
// self-looping step table — the fused fast path's hot loop, kept as a
// standalone function so the register allocator works on just these
// six values. walk holds node BYTE offsets (index*16), matching the ca
// packing. One pass moves all rows down one level: the chains are
// independent, so the loads pipeline across rows instead of
// serializing down one row's path, and both the key compare and the
// mask test lower to flag arithmetic (no data-dependent branch to
// mispredict). A row that reaches its leaf early self-loops until the
// pass count runs out; steps must be the member's maximum leaf depth,
// after which every row provably sits on a leaf.
// The walk reads nodes and tile through raw pointers: the loop is
// load-port- and instruction-throughput-bound, and the bounds checks
// Go cannot elide (node and tile offsets are data-dependent) would be
// a quarter of its body. Safety is established once per table, not
// per step: stepWalkable verified every child index and attribute of
// this table in range, buildStepArrays keeps leaves self-looping and
// both increments mutually exclusive, so the node offset stays within
// nodes and koff+(ca>>32)+8 stays within one tile row for every
// reachable input.
func stepWalk(walk []int32, nodes []stepNode, tile []uint64, stride2, steps int) {
	if len(walk) == 0 || len(nodes) == 0 || len(tile) == 0 {
		return
	}
	np := unsafe.Pointer(&nodes[0])
	tp := unsafe.Pointer(&tile[0])
	rowBytes := uintptr(stride2) * 8
	for s := 0; s < steps; s++ {
		koff := uintptr(0)
		for k, i := range walk {
			nd := (*stepNode)(unsafe.Add(np, uintptr(uint32(i))))
			ca := nd.ca
			p := nd.payload
			a := koff + uintptr(ca>>32)
			b := int32(uint32(ca))
			if *(*uint64)(unsafe.Add(tp, a)) > p {
				b += 16
			}
			if p&*(*uint64)(unsafe.Add(tp, a+8)) == 0 {
				b += 16
			}
			walk[k] = b
			koff += rowBytes
		}
	}
}

func (f *Fused) predictMajority(d *dataset.Dataset, out []int32, lo, hi int) {
	classes := f.Schema.NumClasses()
	stride2 := 2 * (f.Schema.NumAttrs() + 1)
	votes := make([]int64, voteTile*classes)
	var tile []uint64
	var idx [voteTile]int32
	if f.fast {
		tile = make([]uint64, voteTile*stride2)
	}
	for blo := lo; blo < hi; blo += voteTile {
		bhi := blo + voteTile
		if bhi > hi {
			bhi = hi
		}
		clear(votes[:(bhi-blo)*classes])
		if f.fast {
			fillTile(tile, d, blo, bhi, stride2)
			nodes, class := f.steps, f.Class
			walk := idx[:bhi-blo]
			for t := range f.Roots {
				root, steps := f.Roots[t]*16, int(f.Depths[t])
				for k := range walk {
					walk[k] = root
				}
				stepWalk(walk, nodes, tile, stride2, steps)
				for k, i := range walk {
					votes[k*classes+int(class[i>>4])]++
				}
			}
		} else {
			for t := range f.Roots {
				root := f.Roots[t]
				for r := blo; r < bhi; r++ {
					votes[(r-blo)*classes+int(f.classOf(d, r, root))]++
				}
			}
		}
		for r := blo; r < bhi; r++ {
			out[r] = argmaxInt(votes[(r-blo)*classes : (r-blo+1)*classes])
		}
	}
}

func (f *Fused) predictWeighted(d *dataset.Dataset, out []int32, lo, hi int) {
	classes := f.Schema.NumClasses()
	stride2 := 2 * (f.Schema.NumAttrs() + 1)
	votes := make([]float64, voteTile*classes)
	var tile []uint64
	var idx [voteTile]int32
	if f.fast {
		tile = make([]uint64, voteTile*stride2)
	}
	for blo := lo; blo < hi; blo += voteTile {
		bhi := blo + voteTile
		if bhi > hi {
			bhi = hi
		}
		clear(votes[:(bhi-blo)*classes])
		if f.fast {
			// Same step walk as the majority path; per-row weight sums
			// still accumulate in ascending member order, so weighted
			// fused prediction stays bit-identical to per-tree
			// aggregation (float addition order included).
			fillTile(tile, d, blo, bhi, stride2)
			nodes, class := f.steps, f.Class
			walk := idx[:bhi-blo]
			for t := range f.Roots {
				root, steps, w := f.Roots[t]*16, int(f.Depths[t]), f.Weights[t]
				for k := range walk {
					walk[k] = root
				}
				stepWalk(walk, nodes, tile, stride2, steps)
				for k, i := range walk {
					votes[k*classes+int(class[i>>4])] += w
				}
			}
		} else {
			for t := range f.Roots {
				root, w := f.Roots[t], f.Weights[t]
				for r := blo; r < bhi; r++ {
					votes[(r-blo)*classes+int(f.classOf(d, r, root))] += w
				}
			}
		}
		for r := blo; r < bhi; r++ {
			out[r] = argmaxFloat(votes[(r-blo)*classes : (r-blo+1)*classes])
		}
	}
}

// PredictNaiveInto classifies rows [lo, hi) the way a forest without the
// fused layout would: member by member over the whole batch through the
// per-tree flat models, votes accumulated in a full row×class block. It
// is both the differential reference (bit-identical votes by
// construction) and the baseline the fused layout is benchmarked against
// in BENCH_serve.json.
func (f *Fused) PredictNaiveInto(d *dataset.Dataset, out []int32, lo, hi int) {
	classes := f.Schema.NumClasses()
	n := hi - lo
	if n <= 0 {
		return
	}
	if f.Weights == nil {
		votes := make([]int64, n*classes)
		for _, m := range f.Members {
			for r := lo; r < hi; r++ {
				votes[(r-lo)*classes+int(m.Predict(d, r))]++
			}
		}
		for r := lo; r < hi; r++ {
			out[r] = argmaxInt(votes[(r-lo)*classes : (r-lo+1)*classes])
		}
		return
	}
	votes := make([]float64, n*classes)
	for t, m := range f.Members {
		w := f.Weights[t]
		for r := lo; r < hi; r++ {
			votes[(r-lo)*classes+int(m.Predict(d, r))] += w
		}
	}
	for r := lo; r < hi; r++ {
		out[r] = argmaxFloat(votes[(r-lo)*classes : (r-lo+1)*classes])
	}
}

// Predict classifies a single row (convenience; batches go through
// PredictInto).
func (f *Fused) Predict(d *dataset.Dataset, row int) int32 {
	var out [1]int32
	sub := out[:]
	// Reuse the batch path on a one-row window so single-row and batch
	// predictions cannot diverge.
	f.predictRange(d, sub, row)
	return sub[0]
}

// predictRange adapts PredictInto to a caller-local one-row buffer.
func (f *Fused) predictRange(d *dataset.Dataset, out []int32, row int) {
	classes := f.Schema.NumClasses()
	if f.Weights == nil {
		votes := make([]int64, classes)
		for t := range f.Roots {
			votes[f.classOf(d, row, f.Roots[t])]++
		}
		out[0] = argmaxInt(votes)
		return
	}
	votes := make([]float64, classes)
	for t := range f.Roots {
		votes[f.classOf(d, row, f.Roots[t])] += f.Weights[t]
	}
	out[0] = argmaxFloat(votes)
}

// Accuracy returns the fraction of rows of d the fused forest classifies
// correctly.
func (f *Fused) Accuracy(d *dataset.Dataset) float64 {
	if d.Len() == 0 {
		return 0
	}
	out := make([]int32, d.Len())
	f.PredictInto(d, out, 0, d.Len())
	ok := 0
	for i, c := range out {
		if c == d.Class[i] {
			ok++
		}
	}
	return float64(ok) / float64(d.Len())
}

// argmaxInt returns the smallest index holding the maximum count — the
// deterministic tie-break shared with tree.MajorityClass.
func argmaxInt(votes []int64) int32 {
	best, bestN := 0, int64(-1)
	for c, n := range votes {
		if n > bestN {
			best, bestN = c, n
		}
	}
	return int32(best)
}

// argmaxFloat is argmaxInt over float weights (ties to smallest index).
func argmaxFloat(votes []float64) int32 {
	best := 0
	bestW := votes[0]
	for c := 1; c < len(votes); c++ {
		if votes[c] > bestW {
			best, bestW = c, votes[c]
		}
	}
	return int32(best)
}
