package forest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"

	"partree/internal/dataset"
	"partree/internal/tree"
)

// The forest JSON format wraps an array of complete tree-JSON model
// documents (each self-validating through tree.ReadJSON) in a versioned
// envelope carrying the vote semantics. Keeping each member a full tree
// model file means the member decoder — depth caps, mask/child/class
// validation, the fuzz surface hardened in earlier PRs — is reused
// verbatim, and a single-member forest file is convertible to a tree file
// by extraction.

// ModelFormat identifies forest model files; the serving registry sniffs
// it to route a loaded body to the forest reader.
const ModelFormat = "partree-decision-forest"

const modelVersion = 1

// MaxMembers bounds the member count ReadJSON accepts. No legitimate
// ensemble approaches it, and the cap keeps a hostile file from driving
// the loader into unbounded allocation and compile work.
const MaxMembers = 4096

// forestFile is the on-disk envelope.
type forestFile struct {
	Format  string            `json:"format"`
	Version int               `json:"version"`
	Vote    string            `json:"vote"`
	Weights []float64         `json:"weights,omitempty"`
	Members []json.RawMessage `json:"members"`
}

// WriteJSON serializes the forest to w.
func WriteJSON(w io.Writer, f *Forest) error {
	if f == nil || len(f.Trees) == 0 {
		return fmt.Errorf("forest: writing an empty forest")
	}
	ff := forestFile{
		Format:  ModelFormat,
		Version: modelVersion,
		Vote:    f.Vote.String(),
		Weights: f.Weights,
		Members: make([]json.RawMessage, len(f.Trees)),
	}
	for i, t := range f.Trees {
		var buf bytes.Buffer
		if err := tree.WriteJSON(&buf, t); err != nil {
			return fmt.Errorf("forest: member %d: %w", i, err)
		}
		ff.Members[i] = json.RawMessage(buf.Bytes())
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(ff)
}

// ReadJSON loads a forest written by WriteJSON, validating the envelope
// (format, version, vote mode, member count, weight dimensions and
// values) and every member through the hardened tree decoder, then
// checking that all members share one schema. A file that fails any check
// returns a descriptive error; nothing ReadJSON accepts can panic the
// compiler or the serving walk (the fuzz test pins this).
func ReadJSON(r io.Reader) (*Forest, error) {
	var ff forestFile
	if err := json.NewDecoder(r).Decode(&ff); err != nil {
		return nil, fmt.Errorf("forest: decoding model: %w", err)
	}
	if ff.Format != ModelFormat {
		return nil, fmt.Errorf("forest: not a decision-forest model (format %q)", ff.Format)
	}
	if ff.Version != modelVersion {
		return nil, fmt.Errorf("forest: unsupported model version %d", ff.Version)
	}
	if len(ff.Members) == 0 {
		return nil, fmt.Errorf("forest: model has no members")
	}
	if len(ff.Members) > MaxMembers {
		return nil, fmt.Errorf("forest: %d members exceed the limit of %d", len(ff.Members), MaxMembers)
	}
	f := &Forest{Trees: make([]*tree.Tree, len(ff.Members))}
	switch ff.Vote {
	case Majority.String():
		f.Vote = Majority
		if len(ff.Weights) != 0 {
			return nil, fmt.Errorf("forest: majority-vote model carries %d weights", len(ff.Weights))
		}
	case Weighted.String():
		f.Vote = Weighted
		if len(ff.Weights) != len(ff.Members) {
			return nil, fmt.Errorf("forest: %d weights for %d members", len(ff.Weights), len(ff.Members))
		}
		sum := 0.0
		for i, w := range ff.Weights {
			if math.IsNaN(w) || math.IsInf(w, 0) || w < 0 {
				return nil, fmt.Errorf("forest: weight %d is %v (want finite and >= 0)", i, w)
			}
			sum += w
		}
		if sum <= 0 {
			return nil, fmt.Errorf("forest: weights sum to %v (want > 0)", sum)
		}
		f.Weights = ff.Weights
	default:
		return nil, fmt.Errorf("forest: unknown vote mode %q", ff.Vote)
	}
	for i, raw := range ff.Members {
		t, err := tree.ReadJSON(bytes.NewReader(raw))
		if err != nil {
			return nil, fmt.Errorf("forest: member %d: %w", i, err)
		}
		if i == 0 {
			f.Schema = t.Schema
		} else if err := schemasEqual(f.Schema, t.Schema); err != nil {
			return nil, fmt.Errorf("forest: member %d: %w", i, err)
		}
		// Every member serves under the forest's one schema object.
		t.Schema = f.Schema
		f.Trees[i] = t
	}
	return f, nil
}

// schemasEqual requires full equality — names, kinds, value tables and
// class labels — because the members of one forest were trained on one
// dataset and the server re-encodes requests through a single schema.
func schemasEqual(want, got *dataset.Schema) error {
	if len(want.Attrs) != len(got.Attrs) {
		return fmt.Errorf("schema has %d attributes, member 0 has %d", len(got.Attrs), len(want.Attrs))
	}
	if len(want.Classes) != len(got.Classes) {
		return fmt.Errorf("schema has %d classes, member 0 has %d", len(got.Classes), len(want.Classes))
	}
	for i := range want.Classes {
		if want.Classes[i] != got.Classes[i] {
			return fmt.Errorf("class %d is %q, member 0 has %q", i, got.Classes[i], want.Classes[i])
		}
	}
	for i := range want.Attrs {
		w, g := want.Attrs[i], got.Attrs[i]
		if w.Name != g.Name || w.Kind != g.Kind {
			return fmt.Errorf("attribute %d is %s %q, member 0 has %s %q", i, g.Kind, g.Name, w.Kind, w.Name)
		}
		if len(w.Values) != len(g.Values) {
			return fmt.Errorf("attribute %q has %d values, member 0 has %d", g.Name, len(g.Values), len(w.Values))
		}
		for v := range w.Values {
			if w.Values[v] != g.Values[v] {
				return fmt.Errorf("attribute %q value %d is %q, member 0 has %q", g.Name, v, g.Values[v], w.Values[v])
			}
		}
	}
	return nil
}
