// Package eval provides the model-assessment utilities a classifier
// library needs around the paper's algorithms: confusion matrices,
// per-class precision/recall, holdout splits and k-fold cross-validation.
// The paper's motivating domains (target marketing, fraud detection) care
// about exactly these quantities, not just raw accuracy.
package eval

import (
	"fmt"
	"strings"

	"partree/internal/dataset"
	"partree/internal/tree"
)

// Confusion is a square matrix: Counts[actual][predicted].
type Confusion struct {
	Classes []string
	Counts  [][]int64
}

// Confuse classifies every row of d and tabulates actual vs. predicted.
func Confuse(t *tree.Tree, d *dataset.Dataset) Confusion {
	c := d.Schema.NumClasses()
	m := Confusion{Classes: d.Schema.Classes, Counts: make([][]int64, c)}
	for i := range m.Counts {
		m.Counts[i] = make([]int64, c)
	}
	for i := 0; i < d.Len(); i++ {
		m.Counts[d.Class[i]][t.ClassifyRow(d, i)]++
	}
	return m
}

// Total returns the number of classified cases.
func (m Confusion) Total() int64 {
	var t int64
	for _, row := range m.Counts {
		for _, v := range row {
			t += v
		}
	}
	return t
}

// Accuracy is the trace over the total.
func (m Confusion) Accuracy() float64 {
	total := m.Total()
	if total == 0 {
		return 0
	}
	var diag int64
	for i := range m.Counts {
		diag += m.Counts[i][i]
	}
	return float64(diag) / float64(total)
}

// Precision returns TP/(TP+FP) for a class (0 when never predicted).
func (m Confusion) Precision(class int) float64 {
	var tp, predicted int64
	for a := range m.Counts {
		predicted += m.Counts[a][class]
	}
	tp = m.Counts[class][class]
	if predicted == 0 {
		return 0
	}
	return float64(tp) / float64(predicted)
}

// Recall returns TP/(TP+FN) for a class (0 when absent).
func (m Confusion) Recall(class int) float64 {
	var actual int64
	for p := range m.Counts[class] {
		actual += m.Counts[class][p]
	}
	if actual == 0 {
		return 0
	}
	return float64(m.Counts[class][class]) / float64(actual)
}

// F1 returns the harmonic mean of precision and recall for a class.
func (m Confusion) F1(class int) float64 {
	p, r := m.Precision(class), m.Recall(class)
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// String renders the matrix with per-class precision/recall.
func (m Confusion) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s", "actual\\pred")
	for _, c := range m.Classes {
		fmt.Fprintf(&b, " %12s", c)
	}
	fmt.Fprintf(&b, " %10s %10s\n", "recall", "precision")
	for a, row := range m.Counts {
		fmt.Fprintf(&b, "%-14s", m.Classes[a])
		for _, v := range row {
			fmt.Fprintf(&b, " %12d", v)
		}
		fmt.Fprintf(&b, " %10.3f %10.3f\n", m.Recall(a), m.Precision(a))
	}
	return b.String()
}

// Builder trains a tree on a dataset — the pluggable unit of
// cross-validation (any serial builder or a closure running a parallel
// formulation fits).
type Builder func(train *dataset.Dataset) *tree.Tree

// CrossValidate runs k-fold cross-validation: fold i holds out rows
// i, i+k, i+2k, ... (the generator's rows are i.i.d., so striding is an
// unbiased split) and returns the per-fold test accuracies.
func CrossValidate(d *dataset.Dataset, k int, build Builder) ([]float64, error) {
	if k < 2 {
		return nil, fmt.Errorf("eval: k-fold needs k ≥ 2, got %d", k)
	}
	if d.Len() < k {
		return nil, fmt.Errorf("eval: %d rows cannot fill %d folds", d.Len(), k)
	}
	accs := make([]float64, k)
	for fold := 0; fold < k; fold++ {
		var trainIdx, testIdx []int32
		for i := 0; i < d.Len(); i++ {
			if i%k == fold {
				testIdx = append(testIdx, int32(i))
			} else {
				trainIdx = append(trainIdx, int32(i))
			}
		}
		t := build(d.Select(trainIdx))
		accs[fold] = t.Accuracy(d.Select(testIdx))
	}
	return accs, nil
}

// Mean returns the average of xs (0 for empty).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
