package eval

import (
	"math"
	"strings"
	"testing"

	"partree/internal/dataset"
	"partree/internal/quest"
	"partree/internal/sliq"
	"partree/internal/tree"
)

func TestConfusionWeather(t *testing.T) {
	w := dataset.Weather()
	tr := tree.BuildHunt(w, tree.Options{})
	m := Confuse(tr, w)
	if m.Total() != 14 {
		t.Fatalf("total %d", m.Total())
	}
	if m.Accuracy() != 1.0 {
		t.Fatalf("accuracy %v on training data of a pure tree", m.Accuracy())
	}
	if m.Counts[0][0] != 9 || m.Counts[1][1] != 5 {
		t.Fatalf("diagonal wrong: %v", m.Counts)
	}
	for c := 0; c < 2; c++ {
		if m.Precision(c) != 1 || m.Recall(c) != 1 || m.F1(c) != 1 {
			t.Fatalf("class %d metrics not perfect on perfect predictions", c)
		}
	}
	out := m.String()
	if !strings.Contains(out, "Play") || !strings.Contains(out, "recall") {
		t.Fatalf("rendering incomplete:\n%s", out)
	}
}

func TestConfusionMetricsKnownMatrix(t *testing.T) {
	m := Confusion{
		Classes: []string{"a", "b"},
		Counts:  [][]int64{{8, 2}, {4, 6}},
	}
	if got := m.Accuracy(); math.Abs(got-0.7) > 1e-12 {
		t.Fatalf("accuracy %v", got)
	}
	if got := m.Recall(0); math.Abs(got-0.8) > 1e-12 {
		t.Fatalf("recall(a) %v", got)
	}
	if got := m.Precision(0); math.Abs(got-8.0/12) > 1e-12 {
		t.Fatalf("precision(a) %v", got)
	}
	if got := m.F1(0); math.Abs(got-2*0.8*(8.0/12)/(0.8+8.0/12)) > 1e-12 {
		t.Fatalf("f1(a) %v", got)
	}
}

func TestConfusionDegenerate(t *testing.T) {
	m := Confusion{Classes: []string{"a", "b"}, Counts: [][]int64{{0, 0}, {0, 0}}}
	if m.Accuracy() != 0 || m.Precision(0) != 0 || m.Recall(1) != 0 || m.F1(0) != 0 {
		t.Fatal("degenerate matrix must score 0 everywhere")
	}
}

func TestCrossValidate(t *testing.T) {
	d, err := quest.Generate(quest.Config{Function: 2, Seed: 77}, 3000)
	if err != nil {
		t.Fatal(err)
	}
	accs, err := CrossValidate(d, 5, func(train *dataset.Dataset) *tree.Tree {
		return sliq.Build(train, tree.Options{Binary: true})
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(accs) != 5 {
		t.Fatalf("%d folds", len(accs))
	}
	for i, a := range accs {
		if a < 0.9 {
			t.Fatalf("fold %d accuracy %v — function 2 is learnable", i, a)
		}
	}
	if m := Mean(accs); m < 0.9 || m > 1 {
		t.Fatalf("mean %v", m)
	}
}

func TestCrossValidateErrors(t *testing.T) {
	d, _ := quest.Generate(quest.Config{Function: 1, Seed: 1}, 10)
	if _, err := CrossValidate(d, 1, nil); err == nil {
		t.Error("k=1 accepted")
	}
	if _, err := CrossValidate(d, 50, nil); err == nil {
		t.Error("more folds than rows accepted")
	}
}
