// Package dataset provides the training-data model shared by every other
// module: attribute schemas mixing categorical and continuous attributes,
// a columnar Dataset with cheap row subsetting, a binary record codec used
// by the message-passing shuffle phases for byte-accurate cost accounting,
// CSV import/export, and the classic Quinlan "weather" table reproduced in
// Table 1 of the paper.
package dataset

import (
	"fmt"
	"strings"
)

// Kind distinguishes the two attribute families of the paper: categorical
// (unordered, finite value set) and continuous (ordered real values).
type Kind int

const (
	// Categorical attributes take one of a fixed, unordered set of values.
	Categorical Kind = iota
	// Continuous attributes take ordered real values and are split by
	// binary threshold tests (or discretized into categorical bins).
	Continuous
)

// String returns "categorical" or "continuous".
func (k Kind) String() string {
	switch k {
	case Categorical:
		return "categorical"
	case Continuous:
		return "continuous"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Attribute describes a single data attribute. For categorical attributes
// Values holds the external names of the category codes; the code stored in
// a Dataset is the index into Values. For continuous attributes Values is
// nil.
type Attribute struct {
	Name   string
	Kind   Kind
	Values []string
}

// Cardinality returns the number of distinct values of a categorical
// attribute and 0 for a continuous one.
func (a Attribute) Cardinality() int {
	if a.Kind != Categorical {
		return 0
	}
	return len(a.Values)
}

// ValueIndex returns the code of the named categorical value, or -1 if the
// value is unknown.
func (a Attribute) ValueIndex(name string) int {
	for i, v := range a.Values {
		if v == name {
			return i
		}
	}
	return -1
}

// Schema describes a training set: its data attributes and the class
// labels. One designated categorical attribute — the class — is stored
// separately from the data attributes, as in the paper.
type Schema struct {
	Attrs   []Attribute
	Classes []string
}

// NumAttrs returns the number of data attributes.
func (s *Schema) NumAttrs() int { return len(s.Attrs) }

// NumClasses returns the number of class labels.
func (s *Schema) NumClasses() int { return len(s.Classes) }

// NumCategorical returns how many attributes are categorical (A_d in the
// paper's analysis).
func (s *Schema) NumCategorical() int {
	n := 0
	for _, a := range s.Attrs {
		if a.Kind == Categorical {
			n++
		}
	}
	return n
}

// NumContinuous returns how many attributes are continuous.
func (s *Schema) NumContinuous() int { return s.NumAttrs() - s.NumCategorical() }

// MeanCardinality returns M, the average number of distinct values over the
// categorical attributes (0 if there are none).
func (s *Schema) MeanCardinality() float64 {
	sum, n := 0, 0
	for _, a := range s.Attrs {
		if a.Kind == Categorical {
			sum += a.Cardinality()
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return float64(sum) / float64(n)
}

// ClassIndex returns the code of the named class, or -1.
func (s *Schema) ClassIndex(name string) int {
	for i, c := range s.Classes {
		if c == name {
			return i
		}
	}
	return -1
}

// AttrIndex returns the index of the named attribute, or -1.
func (s *Schema) AttrIndex(name string) int {
	for i, a := range s.Attrs {
		if a.Name == name {
			return i
		}
	}
	return -1
}

// Validate checks the schema for internal consistency: non-empty class
// list, unique attribute names, categorical attributes with at least one
// value and unique value names.
func (s *Schema) Validate() error {
	if len(s.Classes) == 0 {
		return fmt.Errorf("dataset: schema has no classes")
	}
	seen := make(map[string]bool, len(s.Attrs))
	for i, a := range s.Attrs {
		if a.Name == "" {
			return fmt.Errorf("dataset: attribute %d has empty name", i)
		}
		if seen[a.Name] {
			return fmt.Errorf("dataset: duplicate attribute name %q", a.Name)
		}
		seen[a.Name] = true
		switch a.Kind {
		case Categorical:
			if len(a.Values) == 0 {
				return fmt.Errorf("dataset: categorical attribute %q has no values", a.Name)
			}
			vs := make(map[string]bool, len(a.Values))
			for _, v := range a.Values {
				if vs[v] {
					return fmt.Errorf("dataset: attribute %q has duplicate value %q", a.Name, v)
				}
				vs[v] = true
			}
		case Continuous:
			if len(a.Values) != 0 {
				return fmt.Errorf("dataset: continuous attribute %q must not list values", a.Name)
			}
		default:
			return fmt.Errorf("dataset: attribute %q has invalid kind %d", a.Name, a.Kind)
		}
	}
	return nil
}

// String renders a compact, human-readable schema description.
func (s *Schema) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "schema(%d attrs, classes=%v)", len(s.Attrs), s.Classes)
	return b.String()
}

// Project returns a schema containing only the attributes at the given
// positions, in the given order, with the same class labels. Attribute
// entries are deep-copied so later mutation of either schema cannot alias
// the other. Projection is the schema half of random-subspace training:
// a forest member grown on a projected view splits only on the selected
// attributes, and its tests are remapped back afterwards
// (tree.RemapAttrs).
func (s *Schema) Project(attrs []int) *Schema {
	out := &Schema{
		Attrs:   make([]Attribute, len(attrs)),
		Classes: append([]string(nil), s.Classes...),
	}
	for i, a := range attrs {
		src := s.Attrs[a]
		out.Attrs[i] = Attribute{Name: src.Name, Kind: src.Kind, Values: append([]string(nil), src.Values...)}
	}
	return out
}

// RecordBytes returns the wire size in bytes of one record under this
// schema, as produced by the binary codec: 4 bytes per categorical value,
// 8 per continuous value, 4 for the class code and 8 for the record id.
// The message-passing cost model charges t_w per byte of this size when
// records are shuffled between processors.
func (s *Schema) RecordBytes() int {
	n := 4 + 8
	for _, a := range s.Attrs {
		if a.Kind == Categorical {
			n += 4
		} else {
			n += 8
		}
	}
	return n
}

// Clone returns a deep copy of the schema. Discretization rewrites schemas
// and must not alias the original's value tables.
func (s *Schema) Clone() *Schema {
	out := &Schema{
		Attrs:   make([]Attribute, len(s.Attrs)),
		Classes: append([]string(nil), s.Classes...),
	}
	for i, a := range s.Attrs {
		out.Attrs[i] = Attribute{Name: a.Name, Kind: a.Kind, Values: append([]string(nil), a.Values...)}
	}
	return out
}
