package dataset

import (
	"fmt"
)

// Dataset is a columnar training set. Categorical attribute a is stored in
// Cat[a] as int32 value codes; continuous attribute a in Cont[a] as
// float64. Exactly one of Cat[a] / Cont[a] is non-nil per attribute. Class
// holds the class code of every record and RID a globally unique record
// id, assigned at generation/load time, that survives shuffles between
// processors (the conservation invariant of the partitioned and hybrid
// formulations is checked on RIDs).
type Dataset struct {
	Schema *Schema
	Cat    [][]int32
	Cont   [][]float64
	Class  []int32
	RID    []int64

	// catIdx/contIdx are the attribute positions of each kind, computed
	// once per dataset so the row-materialization hot path (RowInto)
	// doesn't re-test Cat[a] != nil for every attribute of every row.
	catIdx, contIdx []int32
}

// New returns an empty dataset with the given schema and row capacity.
func New(s *Schema, capacity int) *Dataset {
	d := &Dataset{
		Schema: s,
		Cat:    make([][]int32, len(s.Attrs)),
		Cont:   make([][]float64, len(s.Attrs)),
		Class:  make([]int32, 0, capacity),
		RID:    make([]int64, 0, capacity),
	}
	for i, a := range s.Attrs {
		if a.Kind == Categorical {
			d.Cat[i] = make([]int32, 0, capacity)
		} else {
			d.Cont[i] = make([]float64, 0, capacity)
		}
	}
	d.initDispatch()
	return d
}

// initDispatch fills the attribute-kind dispatch lists from the schema.
func (d *Dataset) initDispatch() {
	d.catIdx, d.contIdx = d.catIdx[:0], d.contIdx[:0]
	for a, attr := range d.Schema.Attrs {
		if attr.Kind == Categorical {
			d.catIdx = append(d.catIdx, int32(a))
		} else {
			d.contIdx = append(d.contIdx, int32(a))
		}
	}
}

// Len returns the number of records.
func (d *Dataset) Len() int { return len(d.Class) }

// Record is a row view of a dataset. Cat and Cont are indexed by attribute
// position; entries for the other kind are zero and ignored.
type Record struct {
	Cat   []int32
	Cont  []float64
	Class int32
	RID   int64
}

// NewRecord returns a Record with correctly sized buffers for the schema.
func NewRecord(s *Schema) Record {
	return Record{Cat: make([]int32, len(s.Attrs)), Cont: make([]float64, len(s.Attrs))}
}

// Row copies row i into a freshly allocated Record.
func (d *Dataset) Row(i int) Record {
	r := NewRecord(d.Schema)
	d.RowInto(i, &r)
	return r
}

// RowInto copies row i into r, reusing r's buffers. It walks the
// per-kind dispatch lists instead of branching on column kind per
// attribute.
func (d *Dataset) RowInto(i int, r *Record) {
	if d.catIdx == nil && d.contIdx == nil && len(d.Schema.Attrs) > 0 {
		// Dataset assembled by hand rather than through New/Project.
		d.initDispatch()
	}
	for _, a := range d.catIdx {
		r.Cat[a] = d.Cat[a][i]
	}
	for _, a := range d.contIdx {
		r.Cont[a] = d.Cont[a][i]
	}
	r.Class = d.Class[i]
	r.RID = d.RID[i]
}

// Append adds one record.
func (d *Dataset) Append(r Record) {
	for a := range d.Schema.Attrs {
		if d.Cat[a] != nil {
			d.Cat[a] = append(d.Cat[a], r.Cat[a])
		} else {
			d.Cont[a] = append(d.Cont[a], r.Cont[a])
		}
	}
	d.Class = append(d.Class, r.Class)
	d.RID = append(d.RID, r.RID)
}

// AppendFrom appends row i of src (which must share the schema layout).
func (d *Dataset) AppendFrom(src *Dataset, i int) {
	for a := range d.Schema.Attrs {
		if d.Cat[a] != nil {
			d.Cat[a] = append(d.Cat[a], src.Cat[a][i])
		} else {
			d.Cont[a] = append(d.Cont[a], src.Cont[a][i])
		}
	}
	d.Class = append(d.Class, src.Class[i])
	d.RID = append(d.RID, src.RID[i])
}

// AppendAll appends every row of src.
func (d *Dataset) AppendAll(src *Dataset) {
	for a := range d.Schema.Attrs {
		if d.Cat[a] != nil {
			d.Cat[a] = append(d.Cat[a], src.Cat[a]...)
		} else {
			d.Cont[a] = append(d.Cont[a], src.Cont[a]...)
		}
	}
	d.Class = append(d.Class, src.Class...)
	d.RID = append(d.RID, src.RID...)
}

// Select returns a new dataset containing the rows at the given indices,
// in order.
func (d *Dataset) Select(idx []int32) *Dataset {
	out := New(d.Schema, len(idx))
	for a := range d.Schema.Attrs {
		if d.Cat[a] != nil {
			col := d.Cat[a]
			dst := out.Cat[a]
			for _, i := range idx {
				dst = append(dst, col[i])
			}
			out.Cat[a] = dst
		} else {
			col := d.Cont[a]
			dst := out.Cont[a]
			for _, i := range idx {
				dst = append(dst, col[i])
			}
			out.Cont[a] = dst
		}
	}
	for _, i := range idx {
		out.Class = append(out.Class, d.Class[i])
		out.RID = append(out.RID, d.RID[i])
	}
	return out
}

// Slice returns a new dataset with rows [lo, hi).
func (d *Dataset) Slice(lo, hi int) *Dataset {
	if lo < 0 || hi > d.Len() || lo > hi {
		panic(fmt.Sprintf("dataset: Slice[%d:%d] out of range 0..%d", lo, hi, d.Len()))
	}
	out := New(d.Schema, hi-lo)
	for a := range d.Schema.Attrs {
		if d.Cat[a] != nil {
			out.Cat[a] = append(out.Cat[a], d.Cat[a][lo:hi]...)
		} else {
			out.Cont[a] = append(out.Cont[a], d.Cont[a][lo:hi]...)
		}
	}
	out.Class = append(out.Class, d.Class[lo:hi]...)
	out.RID = append(out.RID, d.RID[lo:hi]...)
	return out
}

// BlockPartition splits d into p contiguous blocks whose sizes differ by at
// most one record (block i gets the i-th slice in row order). This is the
// "N training cases randomly distributed to P processors, N/P each"
// initial distribution of the paper; the generator already produces rows in
// random order, so contiguous blocks are a random partition.
func (d *Dataset) BlockPartition(p int) []*Dataset {
	if p <= 0 {
		panic("dataset: BlockPartition requires p > 0")
	}
	n := d.Len()
	out := make([]*Dataset, p)
	for i := 0; i < p; i++ {
		lo := i * n / p
		hi := (i + 1) * n / p
		out[i] = d.Slice(lo, hi)
	}
	return out
}

// Project returns a column view of d restricted to the attributes at the
// given positions (in the given order) under the correspondingly projected
// schema. Column, class and record-id slices are shared with d — no data
// is copied — so the view must be treated as read-only. attrs indexes must
// be valid for d's schema.
func (d *Dataset) Project(attrs []int) *Dataset {
	out := &Dataset{
		Schema: d.Schema.Project(attrs),
		Cat:    make([][]int32, len(attrs)),
		Cont:   make([][]float64, len(attrs)),
		Class:  d.Class,
		RID:    d.RID,
	}
	for i, a := range attrs {
		out.Cat[i] = d.Cat[a]
		out.Cont[i] = d.Cont[a]
	}
	out.initDispatch()
	return out
}

// ClassCounts returns the class distribution of the whole dataset.
func (d *Dataset) ClassCounts() []int64 {
	counts := make([]int64, d.Schema.NumClasses())
	for _, c := range d.Class {
		counts[c]++
	}
	return counts
}

// AllIndex returns the identity index vector [0, 1, ..., Len-1], the row
// set of the root node.
func (d *Dataset) AllIndex() []int32 {
	idx := make([]int32, d.Len())
	for i := range idx {
		idx[i] = int32(i)
	}
	return idx
}

// AssignRIDs numbers the records start, start+1, ... and returns the next
// unused id. Generators call this once per block so ids are globally
// unique across processors.
func (d *Dataset) AssignRIDs(start int64) int64 {
	for i := range d.RID {
		d.RID[i] = start
		start++
	}
	return start
}
