package dataset

import (
	"math/rand/v2"
	"testing"
)

// buildColumnFile encodes a synthetic column file (frames + footer) of
// the given encoding, for fuzz seeding.
func buildColumnFile(enc byte, chunks, rows int, seed uint64) []byte {
	rng := rand.New(rand.NewPCG(seed, 7))
	var buf []byte
	var scratch []byte
	offsets := make([]int64, 0, chunks)
	for k := 0; k < chunks; k++ {
		offsets = append(offsets, int64(len(buf)))
		switch enc {
		case encRawI32, encPackI32:
			vals := make([]int32, rows)
			for i := range vals {
				vals[i] = int32(rng.IntN(200))
			}
			card := 0
			if enc == encPackI32 {
				card = 200
			}
			buf = appendFrameI32(buf, scratch, vals, card)
		case encRawF64:
			vals := make([]float64, rows)
			for i := range vals {
				vals[i] = rng.NormFloat64()
			}
			buf = appendFrameF64(buf, scratch, vals)
		default:
			vals := make([]int64, rows)
			for i := range vals {
				vals[i] = rng.Int64N(1<<40) - (1 << 39)
			}
			buf = appendFrameI64(buf, scratch, vals)
		}
	}
	return appendFooter(buf, offsets, int64(chunks*rows))
}

// FuzzReadColumnFile drives the column-file decode path (footer tail,
// frame parse, payload decode) over arbitrary bytes: any input may be
// rejected with an error, but must never panic, never over-read, and
// never decode values outside the declared domain — torn tails and bit
// flips truncate or error, they do not mis-decode.
func FuzzReadColumnFile(f *testing.F) {
	f.Add(buildColumnFile(encRawI32, 3, 50, 1))
	f.Add(buildColumnFile(encPackI32, 4, 33, 2))
	f.Add(buildColumnFile(encRawF64, 2, 64, 3))
	f.Add(buildColumnFile(encDeltaI64, 3, 17, 4))
	f.Add(buildColumnFile(encPackI32, 1, 1, 5))
	f.Add([]byte{})
	f.Add([]byte("PTCLPTCFPTCE"))
	f.Fuzz(func(t *testing.T, data []byte) {
		offsets, rows, footStart, err := parseFooterTail(data, int64(len(data)))
		if err != nil {
			return
		}
		if rows < 0 || footStart < 0 || footStart > int64(len(data)) {
			t.Fatalf("footer accepted out-of-range geometry: rows=%d footStart=%d len=%d", rows, footStart, len(data))
		}
		var decoded int64
		for k, off := range offsets {
			end := footStart
			if k+1 < len(offsets) {
				end = offsets[k+1]
			}
			if off < 0 || off > end || end > int64(len(data)) {
				t.Fatalf("footer accepted non-monotonic offsets: %v footStart=%d", offsets, footStart)
			}
			enc, n, payload, total, err := parseFrame(data[off:end])
			if err != nil {
				return
			}
			if int64(total) > end-off {
				t.Fatalf("frame total %d overruns slot %d", total, end-off)
			}
			const card = 200
			switch enc {
			case encRawI32, encPackI32:
				dst := make([]int32, n)
				if err := decodeI32(enc, n, payload, card, dst); err != nil {
					return
				}
				for _, v := range dst {
					if v < 0 || v >= card {
						t.Fatalf("decoded code %d outside card %d", v, card)
					}
				}
			case encRawF64:
				dst := make([]float64, n)
				if err := decodeF64(enc, n, payload, dst); err != nil {
					return
				}
			case encDeltaI64:
				dst := make([]int64, n)
				if err := decodeI64(enc, n, payload, dst); err != nil {
					return
				}
			default:
				t.Fatalf("parseFrame accepted unknown encoding %d", enc)
			}
			decoded += int64(n)
		}
		if decoded != rows {
			// Footer-declared rows must match the sum of frame rows when
			// every frame decodes — the open path checks this against the
			// manifest; here it only has to be consistent to be accepted.
			// Inconsistency is allowed to surface as an error at open, so
			// nothing to assert beyond no panic.
			_ = decoded
		}
	})
}
