package dataset

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
)

// Store is the out-of-core Table backend: an opened column-file
// directory. Chunks are decoded on demand from per-column CRC frames;
// nothing row-sized is held resident beyond the chunks callers are
// currently reading. ReadChunk is safe for concurrent use with distinct
// Chunk buffers (the column files are read with ReadAt), so the modeled
// ranks of a parallel build share one Store.
type Store struct {
	dir       string
	schema    *Schema
	rows      int
	chunkRows int

	files   []*os.File // attrs..., class, rid
	offsets [][]int64  // per file: frame start offsets
	ends    [][]int64  // per file: frame end offsets (next frame or footer)

	readBytes atomic.Int64
}

// IsStoreDir reports whether path looks like a store directory (has a
// manifest). Used by loaders to dispatch between CSV files and stores.
func IsStoreDir(path string) bool {
	st, err := os.Stat(filepath.Join(path, ManifestName))
	return err == nil && st.Mode().IsRegular()
}

// OpenStore opens a store directory written by StoreWriter, validating
// the manifest, schema and every column footer. The data frames
// themselves are validated lazily, per ReadChunk.
func OpenStore(dir string) (*Store, error) {
	blob, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, err
	}
	var m storeManifest
	if err := json.Unmarshal(blob, &m); err != nil {
		return nil, fmt.Errorf("store %s: manifest: %w", dir, err)
	}
	if m.Format != StoreFormat {
		return nil, fmt.Errorf("store %s: format %q, want %q", dir, m.Format, StoreFormat)
	}
	if m.Version != StoreVersion {
		return nil, fmt.Errorf("store %s: version %d, want %d", dir, m.Version, StoreVersion)
	}
	if m.Rows < 0 || m.Rows > int64(int(^uint(0)>>1)) || m.ChunkRows <= 0 {
		return nil, fmt.Errorf("store %s: implausible rows=%d chunk_rows=%d", dir, m.Rows, m.ChunkRows)
	}
	s := &Schema{Classes: m.Classes}
	for _, ma := range m.Attrs {
		switch ma.Kind {
		case Categorical.String():
			s.Attrs = append(s.Attrs, Attribute{Name: ma.Name, Kind: Categorical, Values: ma.Values})
		case Continuous.String():
			s.Attrs = append(s.Attrs, Attribute{Name: ma.Name, Kind: Continuous})
		default:
			return nil, fmt.Errorf("store %s: attribute %q has unknown kind %q", dir, ma.Name, ma.Kind)
		}
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("store %s: %w", dir, err)
	}

	st := &Store{dir: dir, schema: s, rows: int(m.Rows), chunkRows: m.ChunkRows}
	nf := s.NumAttrs() + 2
	st.files = make([]*os.File, nf)
	st.offsets = make([][]int64, nf)
	st.ends = make([][]int64, nf)
	names := make([]string, 0, nf)
	for a := range s.Attrs {
		names = append(names, attrFile(a))
	}
	names = append(names, classFile, ridFile)
	wantChunks := numChunks(st.rows, st.chunkRows)
	for fi, name := range names {
		f, offs, footStart, err := openColumnFile(filepath.Join(dir, name), m.Rows)
		if err != nil {
			st.Close()
			return nil, fmt.Errorf("store %s: %s: %w", dir, name, err)
		}
		if len(offs) != wantChunks {
			f.Close()
			st.Close()
			return nil, fmt.Errorf("store %s: %s: %d chunks, want %d: %w", dir, name, len(offs), wantChunks, ErrColSize)
		}
		st.files[fi] = f
		st.offsets[fi] = offs
		ends := make([]int64, len(offs))
		for k := range offs {
			if k+1 < len(offs) {
				ends[k] = offs[k+1]
			} else {
				ends[k] = footStart
			}
		}
		st.ends[fi] = ends
	}
	return st, nil
}

// openColumnFile opens one column file and parses its footer, checking
// the row total against the manifest.
func openColumnFile(path string, wantRows int64) (*os.File, []int64, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, 0, err
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, nil, 0, err
	}
	size := info.Size()
	// Two-step tail read: the trailing 8 bytes give the footer length,
	// then the full footer is read and CRC-checked.
	var tail8 [8]byte
	if size < int64(len(tail8)) {
		f.Close()
		return nil, nil, 0, ErrColTruncated
	}
	if _, err := f.ReadAt(tail8[:], size-8); err != nil {
		f.Close()
		return nil, nil, 0, err
	}
	footLen := int64(tail8[0]) | int64(tail8[1])<<8 | int64(tail8[2])<<16 | int64(tail8[3])<<24
	if footLen < 20 || footLen > size-8 {
		f.Close()
		return nil, nil, 0, ErrColSize
	}
	buf := make([]byte, footLen+8)
	if _, err := f.ReadAt(buf, size-int64(len(buf))); err != nil {
		f.Close()
		return nil, nil, 0, err
	}
	offs, rows, footStart, err := parseFooterTail(buf, size)
	if err != nil {
		f.Close()
		return nil, nil, 0, err
	}
	if rows != wantRows {
		f.Close()
		return nil, nil, 0, fmt.Errorf("footer rows %d, manifest rows %d: %w", rows, wantRows, ErrColSize)
	}
	return f, offs, footStart, nil
}

// Close releases the column file handles.
func (st *Store) Close() error {
	var first error
	for i, f := range st.files {
		if f == nil {
			continue
		}
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
		st.files[i] = nil
	}
	return first
}

// Dir returns the store directory path.
func (st *Store) Dir() string { return st.dir }

func (st *Store) Schema() *Schema { return st.schema }
func (st *Store) Len() int        { return st.rows }
func (st *Store) ChunkRows() int  { return st.chunkRows }
func (st *Store) NumChunks() int  { return numChunks(st.rows, st.chunkRows) }
func (st *Store) ChunkBounds(k int) (int, int) {
	return chunkBounds(k, st.rows, st.chunkRows)
}

// ReadBytes returns the cumulative encoded bytes read by ReadChunk.
func (st *Store) ReadBytes() int64 { return st.readBytes.Load() }

// ReadChunk reads and CRC-verifies chunk k of every column into ch.
func (st *Store) ReadChunk(k int, ch *Chunk) (int64, error) {
	lo, hi := st.ChunkBounds(k)
	if k < 0 || k >= st.NumChunks() {
		return 0, fmt.Errorf("store %s: chunk %d out of range (%d chunks)", st.dir, k, st.NumChunks())
	}
	n := hi - lo
	ch.ensure(st.schema, n)
	ch.Lo, ch.Hi = lo, hi
	var nb int64
	for fi := range st.files {
		enc, rows, payload, err := st.readFrame(fi, k, ch)
		if err != nil {
			return nb, fmt.Errorf("store %s: %s chunk %d: %w", st.dir, st.fileName(fi), k, err)
		}
		nb += st.ends[fi][k] - st.offsets[fi][k]
		if rows != n {
			return nb, fmt.Errorf("store %s: %s chunk %d: %d rows, want %d: %w", st.dir, st.fileName(fi), k, rows, n, ErrColSize)
		}
		switch {
		case fi < st.schema.NumAttrs():
			a := fi
			if attr := st.schema.Attrs[a]; attr.Kind == Categorical {
				err = decodeI32(enc, rows, payload, attr.Cardinality(), ch.Cat[a])
			} else {
				err = decodeF64(enc, rows, payload, ch.Cont[a])
			}
		case fi == st.schema.NumAttrs():
			err = decodeI32(enc, rows, payload, st.schema.NumClasses(), ch.Class)
		default:
			err = decodeI64(enc, rows, payload, ch.RID)
		}
		if err != nil {
			return nb, fmt.Errorf("store %s: %s chunk %d: %w", st.dir, st.fileName(fi), k, err)
		}
	}
	st.readBytes.Add(nb)
	return nb, nil
}

// readFrame reads the raw frame of chunk k of file fi into ch's scratch
// buffer and validates the envelope.
func (st *Store) readFrame(fi, k int, ch *Chunk) (enc byte, rows int, payload []byte, err error) {
	sz := st.ends[fi][k] - st.offsets[fi][k]
	if sz <= 0 || sz > colFrameHdr+maxColFramePay+4 {
		return 0, 0, nil, ErrColSize
	}
	if int64(cap(ch.raw)) < sz {
		ch.raw = make([]byte, sz)
	}
	buf := ch.raw[:sz]
	if _, err := st.files[fi].ReadAt(buf, st.offsets[fi][k]); err != nil {
		return 0, 0, nil, err
	}
	enc, rows, payload, total, err := parseFrame(buf)
	if err != nil {
		return 0, 0, nil, err
	}
	if int64(total) != sz {
		return 0, 0, nil, fmt.Errorf("frame spans %d bytes, slot is %d: %w", total, sz, ErrColSize)
	}
	return enc, rows, payload, nil
}

func (st *Store) fileName(fi int) string {
	if fi < st.schema.NumAttrs() {
		return attrFile(fi)
	}
	if fi == st.schema.NumAttrs() {
		return classFile
	}
	return ridFile
}
