package dataset

import (
	"bytes"
	"math/rand/v2"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func testSchema() *Schema {
	return &Schema{
		Attrs: []Attribute{
			{Name: "color", Kind: Categorical, Values: []string{"red", "green", "blue"}},
			{Name: "size", Kind: Continuous},
			{Name: "shape", Kind: Categorical, Values: []string{"round", "square"}},
			{Name: "weight", Kind: Continuous},
		},
		Classes: []string{"yes", "no"},
	}
}

func randomDataset(rng *rand.Rand, s *Schema, n int) *Dataset {
	d := New(s, n)
	rec := NewRecord(s)
	for i := 0; i < n; i++ {
		for a, attr := range s.Attrs {
			if attr.Kind == Categorical {
				rec.Cat[a] = int32(rng.IntN(attr.Cardinality()))
			} else {
				rec.Cont[a] = rng.NormFloat64() * 100
			}
		}
		rec.Class = int32(rng.IntN(s.NumClasses()))
		rec.RID = int64(i)
		d.Append(rec)
	}
	return d
}

func TestSchemaValidate(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*Schema)
		wantErr bool
	}{
		{"valid", func(s *Schema) {}, false},
		{"no classes", func(s *Schema) { s.Classes = nil }, true},
		{"empty attr name", func(s *Schema) { s.Attrs[0].Name = "" }, true},
		{"dup attr name", func(s *Schema) { s.Attrs[1].Name = s.Attrs[0].Name }, true},
		{"categorical no values", func(s *Schema) { s.Attrs[0].Values = nil }, true},
		{"dup value", func(s *Schema) { s.Attrs[0].Values = []string{"a", "a"} }, true},
		{"continuous with values", func(s *Schema) { s.Attrs[1].Values = []string{"x"} }, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := testSchema()
			tc.mutate(s)
			err := s.Validate()
			if (err != nil) != tc.wantErr {
				t.Fatalf("Validate() = %v, wantErr=%v", err, tc.wantErr)
			}
		})
	}
}

func TestSchemaDerived(t *testing.T) {
	s := testSchema()
	if got := s.NumCategorical(); got != 2 {
		t.Errorf("NumCategorical = %d", got)
	}
	if got := s.NumContinuous(); got != 2 {
		t.Errorf("NumContinuous = %d", got)
	}
	if got := s.MeanCardinality(); got != 2.5 {
		t.Errorf("MeanCardinality = %g", got)
	}
	// 2 categorical × 4 + 2 continuous × 8 + class 4 + rid 8.
	if got := s.RecordBytes(); got != 2*4+2*8+4+8 {
		t.Errorf("RecordBytes = %d", got)
	}
	if s.AttrIndex("shape") != 2 || s.AttrIndex("nope") != -1 {
		t.Error("AttrIndex broken")
	}
	if s.ClassIndex("no") != 1 || s.ClassIndex("maybe") != -1 {
		t.Error("ClassIndex broken")
	}
}

func TestSchemaCloneIndependence(t *testing.T) {
	s := testSchema()
	c := s.Clone()
	c.Attrs[0].Values[0] = "mutated"
	c.Classes[0] = "mutated"
	if s.Attrs[0].Values[0] != "red" || s.Classes[0] != "yes" {
		t.Fatal("Clone aliases the original schema")
	}
}

func TestRowRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	d := randomDataset(rng, testSchema(), 50)
	d2 := New(d.Schema, 0)
	for i := 0; i < d.Len(); i++ {
		d2.Append(d.Row(i))
	}
	if !datasetEqual(d, d2) {
		t.Fatal("row-wise copy differs from original")
	}
}

func TestSelectAndSlice(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 1))
	d := randomDataset(rng, testSchema(), 20)
	sel := d.Select([]int32{3, 1, 7})
	if sel.Len() != 3 {
		t.Fatalf("Select length %d", sel.Len())
	}
	if sel.RID[0] != 3 || sel.RID[1] != 1 || sel.RID[2] != 7 {
		t.Fatalf("Select order wrong: %v", sel.RID)
	}
	sl := d.Slice(5, 9)
	if sl.Len() != 4 || sl.RID[0] != 5 {
		t.Fatalf("Slice wrong: len=%d first=%d", sl.Len(), sl.RID[0])
	}
}

func TestBlockPartitionCoversAll(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 1))
	for _, n := range []int{0, 1, 7, 100} {
		for _, p := range []int{1, 2, 3, 7, 16} {
			d := randomDataset(rng, testSchema(), n)
			blocks := d.BlockPartition(p)
			if len(blocks) != p {
				t.Fatalf("n=%d p=%d: %d blocks", n, p, len(blocks))
			}
			joined := New(d.Schema, n)
			sizeMin, sizeMax := n, 0
			for _, b := range blocks {
				joined.AppendAll(b)
				if b.Len() < sizeMin {
					sizeMin = b.Len()
				}
				if b.Len() > sizeMax {
					sizeMax = b.Len()
				}
			}
			if !datasetEqual(d, joined) {
				t.Fatalf("n=%d p=%d: concatenated blocks differ from original", n, p)
			}
			if sizeMax-sizeMin > 1 {
				t.Fatalf("n=%d p=%d: block sizes differ by %d", n, p, sizeMax-sizeMin)
			}
		}
	}
}

func TestCodecRoundtripProperty(t *testing.T) {
	s := testSchema()
	rng := rand.New(rand.NewPCG(4, 1))
	f := func(seed uint64, n uint8) bool {
		local := rand.New(rand.NewPCG(seed, 9))
		d := randomDataset(local, s, int(n)%64)
		buf := EncodeAll(nil, d)
		if len(buf) != d.Len()*s.RecordBytes() {
			return false
		}
		out := New(s, 0)
		if err := Decode(out, s, buf); err != nil {
			return false
		}
		return datasetEqual(d, out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: nil}); err != nil {
		t.Fatal(err)
	}
	_ = rng
}

func TestCodecRejectsCorrupt(t *testing.T) {
	s := testSchema()
	rng := rand.New(rand.NewPCG(5, 1))
	d := randomDataset(rng, s, 3)
	buf := EncodeAll(nil, d)
	if err := Decode(New(s, 0), s, buf[:len(buf)-1]); err == nil {
		t.Error("truncated buffer accepted")
	}
	// Corrupt a class code beyond range.
	bad := append([]byte(nil), buf...)
	bad[8] = 0xFF
	if err := Decode(New(s, 0), s, bad); err == nil {
		t.Error("corrupt class code accepted")
	}
}

func TestCSVRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(6, 1))
	d := randomDataset(rng, testSchema(), 30)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, d); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf, d.Schema)
	if err != nil {
		t.Fatal(err)
	}
	if !datasetEqual(d, got) {
		t.Fatal("CSV roundtrip changed the data")
	}
}

func TestCSVErrors(t *testing.T) {
	s := testSchema()
	if _, err := ReadCSV(strings.NewReader("bogus,header,x,y,z\n"), s); err == nil {
		t.Error("bad header accepted")
	}
	good := "color,size,shape,weight,class\n"
	if _, err := ReadCSV(strings.NewReader(good+"purple,1,round,2,yes\n"), s); err == nil {
		t.Error("unknown categorical value accepted")
	}
	if _, err := ReadCSV(strings.NewReader(good+"red,xx,round,2,yes\n"), s); err == nil {
		t.Error("non-numeric continuous accepted")
	}
	if _, err := ReadCSV(strings.NewReader(good+"red,1,round,2,maybe\n"), s); err == nil {
		t.Error("unknown class accepted")
	}
}

func TestWeatherGolden(t *testing.T) {
	w := Weather()
	if w.Len() != 14 {
		t.Fatalf("weather has %d cases, want 14", w.Len())
	}
	counts := w.ClassCounts()
	if counts[0] != 9 || counts[1] != 5 {
		t.Fatalf("class distribution %v, want [9 5]", counts)
	}
	// Table 2: Outlook {sunny: 2/3, overcast: 4/0, rain: 3/2}.
	want := map[string][2]int64{"sunny": {2, 3}, "overcast": {4, 0}, "rain": {3, 2}}
	got := map[string][2]int64{}
	for i := 0; i < w.Len(); i++ {
		name := w.Schema.Attrs[0].Values[w.Cat[0][i]]
		e := got[name]
		e[w.Class[i]]++
		got[name] = e
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Table 2 mismatch: got %v, want %v", got, want)
	}
}

func TestAssignRIDs(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 1))
	d := randomDataset(rng, testSchema(), 5)
	next := d.AssignRIDs(100)
	if next != 105 {
		t.Fatalf("next rid %d", next)
	}
	for i, r := range d.RID {
		if r != int64(100+i) {
			t.Fatalf("rid[%d] = %d", i, r)
		}
	}
}

func datasetEqual(a, b *Dataset) bool {
	if a.Len() != b.Len() {
		return false
	}
	if !reflect.DeepEqual(a.Class, b.Class) && !(len(a.Class) == 0 && len(b.Class) == 0) {
		return false
	}
	if !reflect.DeepEqual(a.RID, b.RID) && !(len(a.RID) == 0 && len(b.RID) == 0) {
		return false
	}
	for i := range a.Schema.Attrs {
		if a.Cat[i] != nil {
			if !reflect.DeepEqual(a.Cat[i], b.Cat[i]) && len(a.Cat[i])+len(b.Cat[i]) > 0 {
				return false
			}
		} else {
			if !reflect.DeepEqual(a.Cont[i], b.Cont[i]) && len(a.Cont[i])+len(b.Cont[i]) > 0 {
				return false
			}
		}
	}
	return true
}
