package dataset

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// An out-of-core store is a directory of per-column files plus a JSON
// manifest:
//
//	MANIFEST.json   schema, row count, chunk size (written last, atomically)
//	attr_NN.col     one file per data attribute, frames per colfile.go
//	class.col       class codes (dictionary-packed against the class list)
//	rid.col         record ids (delta-varint)
//
// The manifest is the commit point: it is written to a temp file, fsynced
// and renamed into place only after every column file is complete and
// synced, so a crashed or interrupted writer leaves no openable store.
const (
	// StoreFormat identifies the manifest format.
	StoreFormat = "partree-colstore"
	// StoreVersion is the current on-disk format version.
	StoreVersion = 1
	// ManifestName is the manifest file name inside a store directory.
	ManifestName = "MANIFEST.json"

	classFile = "class.col"
	ridFile   = "rid.col"
)

func attrFile(a int) string { return fmt.Sprintf("attr_%02d.col", a) }

type storeManifest struct {
	Format    string         `json:"format"`
	Version   int            `json:"version"`
	Rows      int64          `json:"rows"`
	ChunkRows int            `json:"chunk_rows"`
	Classes   []string       `json:"classes"`
	Attrs     []manifestAttr `json:"attrs"`
}

type manifestAttr struct {
	Name   string   `json:"name"`
	Kind   string   `json:"kind"`
	Values []string `json:"values,omitempty"`
	File   string   `json:"file"`
}

// StoreWriter streams rows into an out-of-core store with bounded memory:
// it buffers exactly one chunk of every column, flushing a frame per
// column whenever the buffer fills. It satisfies RowSink, so any loader
// or generator that writes through a sink can target disk directly.
type StoreWriter struct {
	dir       string
	s         *Schema
	chunkRows int

	files   []*os.File      // attrs..., class, rid
	w       []*bufio.Writer // parallel to files
	offsets [][]int64       // per file: start offset of every flushed frame
	sizes   []int64         // per file: current write offset

	cat   [][]int32
	cont  [][]float64
	class []int32
	rid   []int64
	n     int   // rows buffered
	rows  int64 // rows flushed + buffered

	frame   []byte
	scratch []byte
	closed  bool
}

// NewStoreWriter creates (or truncates) a store directory for the schema.
// chunkRows <= 0 selects DefaultChunkRows.
func NewStoreWriter(dir string, s *Schema, chunkRows int) (*StoreWriter, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if chunkRows <= 0 {
		chunkRows = DefaultChunkRows
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	// Drop any manifest from a previous store at this path first: until a
	// new one is committed the directory must not look openable.
	if err := os.Remove(filepath.Join(dir, ManifestName)); err != nil && !os.IsNotExist(err) {
		return nil, err
	}
	nf := s.NumAttrs() + 2
	sw := &StoreWriter{
		dir:       dir,
		s:         s,
		chunkRows: chunkRows,
		files:     make([]*os.File, nf),
		w:         make([]*bufio.Writer, nf),
		offsets:   make([][]int64, nf),
		sizes:     make([]int64, nf),
		cat:       make([][]int32, s.NumAttrs()),
		cont:      make([][]float64, s.NumAttrs()),
		class:     make([]int32, 0, chunkRows),
		rid:       make([]int64, 0, chunkRows),
	}
	for a, attr := range s.Attrs {
		if attr.Kind == Categorical {
			sw.cat[a] = make([]int32, 0, chunkRows)
		} else {
			sw.cont[a] = make([]float64, 0, chunkRows)
		}
	}
	names := sw.fileNames()
	for i, name := range names {
		f, err := os.OpenFile(filepath.Join(dir, name), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
		if err != nil {
			sw.closeFiles()
			return nil, err
		}
		sw.files[i] = f
		sw.w[i] = bufio.NewWriterSize(f, 1<<16)
	}
	return sw, nil
}

// fileNames returns the column file names in file-index order
// (attributes, then class, then rid).
func (sw *StoreWriter) fileNames() []string {
	names := make([]string, 0, len(sw.files))
	for a := range sw.s.Attrs {
		names = append(names, attrFile(a))
	}
	return append(names, classFile, ridFile)
}

func (sw *StoreWriter) closeFiles() {
	for _, f := range sw.files {
		if f != nil {
			f.Close()
		}
	}
}

// AppendRow buffers one record, flushing a chunk when full.
func (sw *StoreWriter) AppendRow(r Record) error {
	if sw.closed {
		return fmt.Errorf("dataset: AppendRow on closed StoreWriter")
	}
	for a := range sw.s.Attrs {
		if sw.cat[a] != nil {
			sw.cat[a] = append(sw.cat[a], r.Cat[a])
		} else {
			sw.cont[a] = append(sw.cont[a], r.Cont[a])
		}
	}
	sw.class = append(sw.class, r.Class)
	sw.rid = append(sw.rid, r.RID)
	sw.n++
	sw.rows++
	if sw.n == sw.chunkRows {
		return sw.flush()
	}
	return nil
}

// flush encodes the buffered chunk as one frame per column file.
func (sw *StoreWriter) flush() error {
	if sw.n == 0 {
		return nil
	}
	for fi := range sw.files {
		sw.frame = sw.frame[:0]
		switch {
		case fi < sw.s.NumAttrs():
			a := fi
			if sw.cat[a] != nil {
				sw.frame = appendFrameI32(sw.frame, sw.scratch, sw.cat[a], sw.s.Attrs[a].Cardinality())
			} else {
				sw.frame = appendFrameF64(sw.frame, sw.scratch, sw.cont[a])
			}
		case fi == sw.s.NumAttrs():
			sw.frame = appendFrameI32(sw.frame, sw.scratch, sw.class, sw.s.NumClasses())
		default:
			sw.frame = appendFrameI64(sw.frame, sw.scratch, sw.rid)
		}
		if _, err := sw.w[fi].Write(sw.frame); err != nil {
			return err
		}
		sw.offsets[fi] = append(sw.offsets[fi], sw.sizes[fi])
		sw.sizes[fi] += int64(len(sw.frame))
	}
	for a := range sw.s.Attrs {
		if sw.cat[a] != nil {
			sw.cat[a] = sw.cat[a][:0]
		} else {
			sw.cont[a] = sw.cont[a][:0]
		}
	}
	sw.class = sw.class[:0]
	sw.rid = sw.rid[:0]
	sw.n = 0
	return nil
}

// Rows returns how many rows have been appended so far.
func (sw *StoreWriter) Rows() int64 { return sw.rows }

// Close flushes the final partial chunk, writes every column footer,
// syncs the column files and atomically commits the manifest. The store
// is openable only after Close returns nil.
func (sw *StoreWriter) Close() error {
	if sw.closed {
		return nil
	}
	sw.closed = true
	defer sw.closeFiles()
	if err := sw.flush(); err != nil {
		return err
	}
	for fi, f := range sw.files {
		foot := appendFooter(sw.frame[:0], sw.offsets[fi], sw.rows)
		if _, err := sw.w[fi].Write(foot); err != nil {
			return err
		}
		if err := sw.w[fi].Flush(); err != nil {
			return err
		}
		if err := f.Sync(); err != nil {
			return err
		}
	}
	return sw.writeManifest()
}

func (sw *StoreWriter) writeManifest() error {
	m := storeManifest{
		Format:    StoreFormat,
		Version:   StoreVersion,
		Rows:      sw.rows,
		ChunkRows: sw.chunkRows,
		Classes:   sw.s.Classes,
	}
	for a, attr := range sw.s.Attrs {
		ma := manifestAttr{Name: attr.Name, Kind: attr.Kind.String(), File: attrFile(a)}
		if attr.Kind == Categorical {
			ma.Values = attr.Values
		}
		m.Attrs = append(m.Attrs, ma)
	}
	blob, err := json.MarshalIndent(&m, "", "  ")
	if err != nil {
		return err
	}
	tmp := filepath.Join(sw.dir, ManifestName+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(append(blob, '\n')); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(sw.dir, ManifestName)); err != nil {
		return err
	}
	if d, err := os.Open(sw.dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// WriteStore spools an entire table into a new store directory — the
// one-call path used by tests and by dtgen when converting in-RAM data.
func WriteStore(dir string, t Table, chunkRows int) error {
	sw, err := NewStoreWriter(dir, t.Schema(), chunkRows)
	if err != nil {
		return err
	}
	if err := CopyTable(sw, t); err != nil {
		sw.Close()
		return err
	}
	return sw.Close()
}
