package dataset

import (
	"encoding/binary"
	"fmt"
	"math"
)

// The binary codec serializes records for the shuffle phases of the
// partitioned and hybrid formulations. The layout per record is
// little-endian: int64 RID, int32 class, then per attribute in schema
// order either int32 (categorical) or float64 bits (continuous). The size
// matches Schema.RecordBytes exactly, so the t_w-per-byte communication
// charge of the cost model is byte-accurate.

// EncodeRows appends the binary encoding of the rows at idx to buf and
// returns the extended buffer.
func EncodeRows(buf []byte, d *Dataset, idx []int32) []byte {
	for _, i := range idx {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(d.RID[i]))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(d.Class[i]))
		for a := range d.Schema.Attrs {
			if d.Cat[a] != nil {
				buf = binary.LittleEndian.AppendUint32(buf, uint32(d.Cat[a][i]))
			} else {
				buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(d.Cont[a][i]))
			}
		}
	}
	return buf
}

// EncodeAll encodes every row of d.
func EncodeAll(buf []byte, d *Dataset) []byte {
	idx := d.AllIndex()
	return EncodeRows(buf, d, idx)
}

// Decode parses buf (a whole number of records under schema s) and appends
// the records to dst. It returns an error if buf is malformed.
func Decode(dst *Dataset, s *Schema, buf []byte) error {
	rb := s.RecordBytes()
	if len(buf)%rb != 0 {
		return fmt.Errorf("dataset: decode buffer of %d bytes is not a multiple of record size %d", len(buf), rb)
	}
	r := NewRecord(s)
	for off := 0; off < len(buf); off += rb {
		p := buf[off:]
		r.RID = int64(binary.LittleEndian.Uint64(p))
		p = p[8:]
		r.Class = int32(binary.LittleEndian.Uint32(p))
		p = p[4:]
		if r.Class < 0 || int(r.Class) >= s.NumClasses() {
			return fmt.Errorf("dataset: decode: class code %d out of range", r.Class)
		}
		for a, attr := range s.Attrs {
			if attr.Kind == Categorical {
				v := int32(binary.LittleEndian.Uint32(p))
				p = p[4:]
				if v < 0 || int(v) >= attr.Cardinality() {
					return fmt.Errorf("dataset: decode: attribute %q value code %d out of range", attr.Name, v)
				}
				r.Cat[a] = v
			} else {
				r.Cont[a] = math.Float64frombits(binary.LittleEndian.Uint64(p))
				p = p[8:]
			}
		}
		dst.Append(r)
	}
	return nil
}
