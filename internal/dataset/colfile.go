package dataset

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
)

// On-disk layout of one column file of an out-of-core store: a sequence
// of CRC-framed chunk frames followed by a CRC-framed footer (in the
// spirit of the checkpoint DiskStore's chains):
//
//	frame  := "PTCL" | enc u8 | rows u32 | payLen u32 | payload | crc u32
//	footer := "PTCF" | chunks u32 | rows u64 | (offset u64 × chunks) |
//	          crc u32 | footerLen u32 | "PTCE"
//
// All integers little-endian. The frame CRC is CRC32C over enc..payload;
// the footer CRC covers chunks..offsets. footerLen is the byte length of
// the footer from its magic through its CRC, so a reader finds the
// footer by walking back from the trailing "PTCE". A torn tail (partial
// final frame, missing footer) or a flipped bit anywhere is caught by
// magic/length/CRC validation and surfaces as a typed error — the
// decoder never mis-decodes and never panics on hostile bytes.
//
// Chunk payload encodings:
//
//	encRawI32  raw little-endian int32 values            (4 B/row)
//	encPackI32 width u8 (1|2) | unsigned codes of width  (1-2 B/row) —
//	           dictionary-coded categoricals: the dictionary is the
//	           schema's value table, codes are packed to the narrowest
//	           byte width that holds the cardinality
//	encRawF64  raw little-endian IEEE-754 bits           (8 B/row)
//	encDeltaI64 zigzag-varint deltas from the previous value — record
//	           ids are near-consecutive, so this is ~1 B/row
const (
	encRawI32   = 0
	encPackI32  = 1
	encRawF64   = 2
	encDeltaI64 = 3
)

const (
	colFrameMagic  = "PTCL"
	colFootMagic   = "PTCF"
	colEndMagic    = "PTCE"
	colFrameHdr    = 13      // magic + enc + rows + payLen
	maxColFramePay = 1 << 28 // sanity bound on one chunk payload
	maxColRows     = 1 << 26 // sanity bound on rows per chunk
	maxColChunks   = 1 << 26 // sanity bound on chunks per file
)

// Typed decode errors, wrapped with position context by the callers.
var (
	ErrColBadMagic  = errors.New("column file: bad magic")
	ErrColTruncated = errors.New("column file: truncated")
	ErrColSize      = errors.New("column file: implausible length")
	ErrColChecksum  = errors.New("column file: CRC32C mismatch")
	ErrColEncoding  = errors.New("column file: malformed payload")
)

var colCRC = crc32.MakeTable(crc32.Castagnoli)

// packWidth returns the dictionary-code byte width for a categorical
// cardinality, or 0 when raw int32 must be used.
func packWidth(card int) int {
	switch {
	case card > 0 && card <= 1<<8:
		return 1
	case card <= 1<<16:
		return 2
	default:
		return 0
	}
}

// appendFrame wraps an encoded payload in the frame envelope.
func appendFrame(buf []byte, enc byte, rows int, payload []byte) []byte {
	buf = append(buf, colFrameMagic...)
	start := len(buf)
	buf = append(buf, enc)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(rows))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, payload...)
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf[start:], colCRC))
}

// appendFrameI32 encodes an int32 column chunk; card > 0 enables
// dictionary byte-packing when every code fits the width.
func appendFrameI32(buf, scratch []byte, vals []int32, card int) []byte {
	if w := packWidth(card); w != 0 {
		scratch = scratch[:0]
		for _, v := range vals {
			switch w {
			case 1:
				scratch = append(scratch, byte(v))
			case 2:
				scratch = binary.LittleEndian.AppendUint16(scratch, uint16(v))
			}
		}
		payload := append([]byte{byte(w)}, scratch...)
		return appendFrame(buf, encPackI32, len(vals), payload)
	}
	scratch = scratch[:0]
	for _, v := range vals {
		scratch = binary.LittleEndian.AppendUint32(scratch, uint32(v))
	}
	return appendFrame(buf, encRawI32, len(vals), scratch)
}

func appendFrameF64(buf, scratch []byte, vals []float64) []byte {
	scratch = scratch[:0]
	for _, v := range vals {
		scratch = binary.LittleEndian.AppendUint64(scratch, math.Float64bits(v))
	}
	return appendFrame(buf, encRawF64, len(vals), scratch)
}

func appendFrameI64(buf, scratch []byte, vals []int64) []byte {
	scratch = scratch[:0]
	prev := int64(0)
	for _, v := range vals {
		scratch = binary.AppendVarint(scratch, v-prev)
		prev = v
	}
	return appendFrame(buf, encDeltaI64, len(vals), scratch)
}

// parseFrame validates one frame at the start of data and returns its
// encoding, row count, payload view and total encoded length.
func parseFrame(data []byte) (enc byte, rows int, payload []byte, total int, err error) {
	if len(data) < colFrameHdr {
		return 0, 0, nil, 0, ErrColTruncated
	}
	if string(data[:4]) != colFrameMagic {
		return 0, 0, nil, 0, ErrColBadMagic
	}
	enc = data[4]
	rows = int(binary.LittleEndian.Uint32(data[5:9]))
	payLen := int(binary.LittleEndian.Uint32(data[9:13]))
	if rows < 0 || rows > maxColRows || payLen < 0 || payLen > maxColFramePay {
		return 0, 0, nil, 0, ErrColSize
	}
	total = colFrameHdr + payLen + 4
	if len(data) < total {
		return 0, 0, nil, 0, ErrColTruncated
	}
	payload = data[colFrameHdr : colFrameHdr+payLen]
	want := binary.LittleEndian.Uint32(data[colFrameHdr+payLen:])
	if crc32.Checksum(data[4:colFrameHdr+payLen], colCRC) != want {
		return 0, 0, nil, 0, ErrColChecksum
	}
	return enc, rows, payload, total, nil
}

// decodeI32 decodes an int32 frame payload into dst (len rows). card > 0
// rejects out-of-range codes, so a decoded categorical column can never
// index past its schema dictionary.
func decodeI32(enc byte, rows int, payload []byte, card int, dst []int32) error {
	switch enc {
	case encRawI32:
		if len(payload) != 4*rows {
			return fmt.Errorf("%w: raw-i32 payload %d bytes for %d rows", ErrColEncoding, len(payload), rows)
		}
		for i := 0; i < rows; i++ {
			dst[i] = int32(binary.LittleEndian.Uint32(payload[4*i:]))
		}
	case encPackI32:
		if len(payload) < 1 {
			return fmt.Errorf("%w: empty packed payload", ErrColEncoding)
		}
		w := int(payload[0])
		body := payload[1:]
		if (w != 1 && w != 2) || len(body) != w*rows {
			return fmt.Errorf("%w: packed width %d, payload %d bytes for %d rows", ErrColEncoding, w, len(body), rows)
		}
		for i := 0; i < rows; i++ {
			switch w {
			case 1:
				dst[i] = int32(body[i])
			case 2:
				dst[i] = int32(binary.LittleEndian.Uint16(body[2*i:]))
			}
		}
	default:
		return fmt.Errorf("%w: encoding %d for int32 column", ErrColEncoding, enc)
	}
	if card > 0 {
		for i := 0; i < rows; i++ {
			if dst[i] < 0 || int(dst[i]) >= card {
				return fmt.Errorf("%w: code %d out of cardinality %d", ErrColEncoding, dst[i], card)
			}
		}
	}
	return nil
}

func decodeF64(enc byte, rows int, payload []byte, dst []float64) error {
	if enc != encRawF64 {
		return fmt.Errorf("%w: encoding %d for float64 column", ErrColEncoding, enc)
	}
	if len(payload) != 8*rows {
		return fmt.Errorf("%w: raw-f64 payload %d bytes for %d rows", ErrColEncoding, len(payload), rows)
	}
	for i := 0; i < rows; i++ {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[8*i:]))
	}
	return nil
}

func decodeI64(enc byte, rows int, payload []byte, dst []int64) error {
	if enc != encDeltaI64 {
		return fmt.Errorf("%w: encoding %d for int64 column", ErrColEncoding, enc)
	}
	prev := int64(0)
	off := 0
	for i := 0; i < rows; i++ {
		d, n := binary.Varint(payload[off:])
		if n <= 0 {
			return fmt.Errorf("%w: bad varint at payload offset %d", ErrColEncoding, off)
		}
		off += n
		prev += d
		dst[i] = prev
	}
	if off != len(payload) {
		return fmt.Errorf("%w: %d trailing payload bytes", ErrColEncoding, len(payload)-off)
	}
	return nil
}

// appendFooter writes the chunk-offset footer.
func appendFooter(buf []byte, offsets []int64, rows int64) []byte {
	start := len(buf)
	buf = append(buf, colFootMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(offsets)))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(rows))
	for _, o := range offsets {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(o))
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf[start+4:], colCRC))
	footerLen := len(buf) - start
	buf = binary.LittleEndian.AppendUint32(buf, uint32(footerLen))
	return append(buf, colEndMagic...)
}

// parseFooterTail extracts the footer from the tail of a column file.
// data must hold at least the complete footer (callers pass the whole
// file or a sufficient tail); fileSize is the total file length, used to
// validate offsets. Returns the chunk offsets, total row count and the
// file offset where the footer begins.
func parseFooterTail(data []byte, fileSize int64) (offsets []int64, rows int64, footStart int64, err error) {
	if len(data) < 8 {
		return nil, 0, 0, ErrColTruncated
	}
	if string(data[len(data)-4:]) != colEndMagic {
		return nil, 0, 0, ErrColBadMagic
	}
	footerLen := int64(binary.LittleEndian.Uint32(data[len(data)-8 : len(data)-4]))
	body := int64(len(data)) - 8 - footerLen
	if footerLen < 20 || footerLen > int64(len(data))-8 {
		return nil, 0, 0, ErrColSize
	}
	foot := data[body : body+footerLen]
	if string(foot[:4]) != colFootMagic {
		return nil, 0, 0, ErrColBadMagic
	}
	chunks := int64(binary.LittleEndian.Uint32(foot[4:8]))
	rows = int64(binary.LittleEndian.Uint64(foot[8:16]))
	if chunks < 0 || chunks > maxColChunks || footerLen != 20+8*chunks {
		return nil, 0, 0, ErrColSize
	}
	want := binary.LittleEndian.Uint32(foot[16+8*chunks:])
	if crc32.Checksum(foot[4:16+8*chunks], colCRC) != want {
		return nil, 0, 0, ErrColChecksum
	}
	offsets = make([]int64, chunks)
	prev := int64(-1)
	for i := range offsets {
		offsets[i] = int64(binary.LittleEndian.Uint64(foot[16+8*i:]))
		if offsets[i] <= prev || offsets[i] >= fileSize {
			return nil, 0, 0, fmt.Errorf("%w: non-monotonic chunk offset %d", ErrColSize, offsets[i])
		}
		prev = offsets[i]
	}
	footStart = fileSize - int64(len(data)) + body
	return offsets, rows, footStart, nil
}
