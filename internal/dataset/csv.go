package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV writes the dataset with a header row (attribute names plus a
// final "class" column). Categorical values are written by name,
// continuous values with %g.
func WriteCSV(w io.Writer, d *Dataset) error {
	cw := csv.NewWriter(w)
	header := make([]string, 0, d.Schema.NumAttrs()+1)
	for _, a := range d.Schema.Attrs {
		header = append(header, a.Name)
	}
	header = append(header, "class")
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, len(header))
	for i := 0; i < d.Len(); i++ {
		for a, attr := range d.Schema.Attrs {
			if attr.Kind == Categorical {
				row[a] = attr.Values[d.Cat[a][i]]
			} else {
				row[a] = strconv.FormatFloat(d.Cont[a][i], 'g', -1, 64)
			}
		}
		row[len(row)-1] = d.Schema.Classes[d.Class[i]]
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reads a dataset written by WriteCSV (header expected) under the
// given schema, assigning record ids 0..n-1.
func ReadCSV(r io.Reader, s *Schema) (*Dataset, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = s.NumAttrs() + 1
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading CSV header: %w", err)
	}
	for i, a := range s.Attrs {
		if header[i] != a.Name {
			return nil, fmt.Errorf("dataset: CSV column %d is %q, schema expects %q", i, header[i], a.Name)
		}
	}
	d := New(s, 0)
	rec := NewRecord(s)
	var rid int64
	for {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: reading CSV: %w", err)
		}
		for a, attr := range s.Attrs {
			if attr.Kind == Categorical {
				v := attr.ValueIndex(row[a])
				if v < 0 {
					return nil, fmt.Errorf("dataset: unknown value %q for attribute %q", row[a], attr.Name)
				}
				rec.Cat[a] = int32(v)
			} else {
				f, err := strconv.ParseFloat(row[a], 64)
				if err != nil {
					return nil, fmt.Errorf("dataset: attribute %q: %w", attr.Name, err)
				}
				rec.Cont[a] = f
			}
		}
		c := s.ClassIndex(row[len(row)-1])
		if c < 0 {
			return nil, fmt.Errorf("dataset: unknown class %q", row[len(row)-1])
		}
		rec.Class = int32(c)
		rec.RID = rid
		rid++
		d.Append(rec)
	}
	return d, nil
}
