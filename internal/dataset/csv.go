package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV writes the dataset with a header row (attribute names plus a
// final "class" column). Categorical values are written by name,
// continuous values with %g.
func WriteCSV(w io.Writer, d *Dataset) error {
	cw := csv.NewWriter(w)
	header := make([]string, 0, d.Schema.NumAttrs()+1)
	for _, a := range d.Schema.Attrs {
		header = append(header, a.Name)
	}
	header = append(header, "class")
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, len(header))
	for i := 0; i < d.Len(); i++ {
		for a, attr := range d.Schema.Attrs {
			if attr.Kind == Categorical {
				row[a] = attr.Values[d.Cat[a][i]]
			} else {
				row[a] = strconv.FormatFloat(d.Cont[a][i], 'g', -1, 64)
			}
		}
		row[len(row)-1] = d.Schema.Classes[d.Class[i]]
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ColumnCountError reports a CSV row whose field count doesn't match the
// schema's expected column count (attributes plus the class column).
type ColumnCountError struct {
	Line int // 1-based line number in the input
	Got  int
	Want int
}

func (e *ColumnCountError) Error() string {
	return fmt.Sprintf("dataset: CSV line %d has %d columns, schema expects %d", e.Line, e.Got, e.Want)
}

// ReadCSV reads a dataset written by WriteCSV (header expected) under the
// given schema, assigning record ids 0..n-1.
func ReadCSV(r io.Reader, s *Schema) (*Dataset, error) {
	d := New(s, 0)
	if _, err := ReadCSVTo(r, s, d); err != nil {
		return nil, err
	}
	return d, nil
}

// ReadCSVTo streams a CSV written by WriteCSV into any RowSink (the
// in-RAM Dataset or an out-of-core StoreWriter), assigning record ids
// 0..n-1, and returns the number of rows read. Memory use is one record
// plus whatever the sink buffers, so loading a huge CSV into a store
// never materializes it. A row with the wrong number of columns yields a
// *ColumnCountError.
func ReadCSVTo(r io.Reader, s *Schema, sink RowSink) (int64, error) {
	want := s.NumAttrs() + 1
	cr := csv.NewReader(r)
	// Field counts are checked here, not by encoding/csv, so short and
	// long rows both surface as *ColumnCountError with the actual count.
	cr.FieldsPerRecord = -1
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return 0, fmt.Errorf("dataset: reading CSV header: %w", err)
	}
	if len(header) != want {
		return 0, &ColumnCountError{Line: 1, Got: len(header), Want: want}
	}
	for i, a := range s.Attrs {
		if header[i] != a.Name {
			return 0, fmt.Errorf("dataset: CSV column %d is %q, schema expects %q", i, header[i], a.Name)
		}
	}
	rec := NewRecord(s)
	var rid int64
	for {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return rid, fmt.Errorf("dataset: reading CSV: %w", err)
		}
		if len(row) != want {
			line, _ := cr.FieldPos(0)
			return rid, &ColumnCountError{Line: line, Got: len(row), Want: want}
		}
		for a, attr := range s.Attrs {
			if attr.Kind == Categorical {
				v := attr.ValueIndex(row[a])
				if v < 0 {
					return rid, fmt.Errorf("dataset: unknown value %q for attribute %q", row[a], attr.Name)
				}
				rec.Cat[a] = int32(v)
			} else {
				f, err := strconv.ParseFloat(row[a], 64)
				if err != nil {
					return rid, fmt.Errorf("dataset: attribute %q: %w", attr.Name, err)
				}
				rec.Cont[a] = f
			}
		}
		c := s.ClassIndex(row[len(row)-1])
		if c < 0 {
			return rid, fmt.Errorf("dataset: unknown class %q", row[len(row)-1])
		}
		rec.Class = int32(c)
		rec.RID = rid
		if err := sink.AppendRow(rec); err != nil {
			return rid, err
		}
		rid++
	}
	return rid, nil
}
