package dataset

import "fmt"

// DefaultChunkRows is the default horizontal chunk size of the columnar
// stores: large enough that per-chunk framing overhead vanishes, small
// enough that a handful of decoded chunks fits any memory budget.
const DefaultChunkRows = 8192

// Chunk is one decoded horizontal slice of a table: rows [Lo, Hi) of
// every column. Exactly one of Cat[a] / Cont[a] is non-nil per attribute,
// mirroring Dataset. Buffers are reused across ReadChunk calls on the
// same Chunk, so a decoded chunk is valid only until the next read into
// it. In-RAM tables return subslice views (zero copy); treat chunks as
// read-only.
type Chunk struct {
	Lo, Hi int
	Cat    [][]int32
	Cont   [][]float64
	Class  []int32
	RID    []int64

	raw []byte // per-chunk frame scratch of decoding backends
}

// Rows returns the number of rows in the chunk.
func (ch *Chunk) Rows() int { return ch.Hi - ch.Lo }

// ensure sizes the chunk's buffers for n rows under schema s, reusing
// capacity where possible. Used by decoding (copying) tables; view-based
// tables overwrite the slices wholesale instead.
func (ch *Chunk) ensure(s *Schema, n int) {
	if len(ch.Cat) != len(s.Attrs) {
		ch.Cat = make([][]int32, len(s.Attrs))
		ch.Cont = make([][]float64, len(s.Attrs))
	}
	for a, attr := range s.Attrs {
		if attr.Kind == Categorical {
			ch.Cat[a] = growI32(ch.Cat[a], n)
			ch.Cont[a] = nil
		} else {
			ch.Cont[a] = growF64(ch.Cont[a], n)
			ch.Cat[a] = nil
		}
	}
	ch.Class = growI32(ch.Class, n)
	ch.RID = growI64(ch.RID, n)
}

func growI32(b []int32, n int) []int32 {
	if cap(b) < n {
		return make([]int32, n)
	}
	return b[:n]
}

func growF64(b []float64, n int) []float64 {
	if cap(b) < n {
		return make([]float64, n)
	}
	return b[:n]
}

func growI64(b []int64, n int) []int64 {
	if cap(b) < n {
		return make([]int64, n)
	}
	return b[:n]
}

// Table is the chunked column-access interface every builder trains
// through: a training set readable one fixed-size horizontal chunk at a
// time. Two interchangeable backends implement it — the in-RAM Dataset
// (chunks are subslice views, ReadBytes always 0) and the out-of-core
// Store (chunks are decoded from per-attribute column files, ReadBytes
// counts the encoded bytes that crossed the storage boundary, which the
// mp cost model charges to the disk cost class). The differential
// guarantee of the layer: a build consuming either backend of the same
// rows produces a bit-identical tree.
//
// Implementations must support concurrent ReadChunk calls into distinct
// Chunk buffers (the modeled ranks of an out-of-core parallel build share
// one Store).
type Table interface {
	Schema() *Schema
	Len() int
	// ChunkRows is the nominal rows-per-chunk; the final chunk may be
	// short. Always > 0 for a non-empty table.
	ChunkRows() int
	// NumChunks returns how many chunks cover the table.
	NumChunks() int
	// ChunkBounds returns the row range [lo, hi) of chunk k.
	ChunkBounds(k int) (lo, hi int)
	// ReadChunk decodes chunk k into ch, reusing its buffers, and returns
	// the encoded bytes read from backing storage to satisfy the call (0
	// for in-RAM tables). Callers inside a modeled build charge that
	// figure to the disk cost class, so each rank's charges are a pure
	// function of its own reads.
	ReadChunk(k int, ch *Chunk) (int64, error)
	// ReadBytes reports the cumulative encoded bytes read from backing
	// storage by this table (and any views derived from it); 0 for
	// in-RAM tables.
	ReadBytes() int64
}

// chunkGeometry computes the shared chunk arithmetic.
func numChunks(rows, chunkRows int) int {
	if rows == 0 {
		return 0
	}
	return (rows + chunkRows - 1) / chunkRows
}

func chunkBounds(k, rows, chunkRows int) (lo, hi int) {
	lo = k * chunkRows
	hi = lo + chunkRows
	if hi > rows {
		hi = rows
	}
	return lo, hi
}

// --- In-RAM backend -------------------------------------------------------

// ramTable adapts a Dataset to the Table interface with a configurable
// chunk size; chunks are subslice views, so reading is free.
type ramTable struct {
	d         *Dataset
	chunkRows int
}

// Chunked returns a Table view of the dataset with the given chunk size
// (rows per chunk; <= 0 means the whole dataset is one chunk). Used by
// the chunk-boundary differential tests and anywhere an in-RAM set must
// flow through a chunk-fed code path.
func (d *Dataset) Chunked(chunkRows int) Table {
	if chunkRows <= 0 {
		chunkRows = d.Len()
		if chunkRows == 0 {
			chunkRows = 1
		}
	}
	return &ramTable{d: d, chunkRows: chunkRows}
}

func (t *ramTable) Schema() *Schema { return t.d.Schema }
func (t *ramTable) Len() int        { return t.d.Len() }
func (t *ramTable) ChunkRows() int  { return t.chunkRows }
func (t *ramTable) NumChunks() int  { return numChunks(t.d.Len(), t.chunkRows) }
func (t *ramTable) ChunkBounds(k int) (int, int) {
	return chunkBounds(k, t.d.Len(), t.chunkRows)
}
func (t *ramTable) ReadBytes() int64 { return 0 }

func (t *ramTable) ReadChunk(k int, ch *Chunk) (int64, error) {
	lo, hi := t.ChunkBounds(k)
	if lo >= hi {
		return 0, fmt.Errorf("dataset: chunk %d out of range (%d chunks)", k, t.NumChunks())
	}
	viewChunk(t.d, lo, hi, ch)
	return 0, nil
}

// viewChunk fills ch with subslice views of rows [lo, hi) of d.
func viewChunk(d *Dataset, lo, hi int, ch *Chunk) {
	s := d.Schema
	if len(ch.Cat) != len(s.Attrs) {
		ch.Cat = make([][]int32, len(s.Attrs))
		ch.Cont = make([][]float64, len(s.Attrs))
	}
	for a := range s.Attrs {
		if d.Cat[a] != nil {
			ch.Cat[a] = d.Cat[a][lo:hi]
			ch.Cont[a] = nil
		} else {
			ch.Cont[a] = d.Cont[a][lo:hi]
			ch.Cat[a] = nil
		}
	}
	ch.Class = d.Class[lo:hi]
	ch.RID = d.RID[lo:hi]
	ch.Lo, ch.Hi = lo, hi
}

// --- Row-range views ------------------------------------------------------

// section is a row-range view [lo, hi) of an underlying table, rebased to
// rows [0, hi-lo). It is how one rank of an out-of-core parallel build
// reads its block of a shared store without copying: chunk geometry is
// inherited from the parent (clipped at the section edges), and reads of
// edge chunks decode the parent chunk and subslice it.
type section struct {
	t      Table
	lo, hi int
	first  int // parent index of the first covered chunk
}

// SectionOf returns a Table view of rows [lo, hi) of t. Byte accounting
// flows to the parent's ReadBytes (and is also visible through the
// view). Sectioning a section composes.
func SectionOf(t Table, lo, hi int) Table {
	if lo < 0 || hi > t.Len() || lo > hi {
		panic(fmt.Sprintf("dataset: SectionOf[%d:%d] out of range 0..%d", lo, hi, t.Len()))
	}
	if s, ok := t.(*section); ok {
		return SectionOf(s.t, s.lo+lo, s.lo+hi)
	}
	return &section{t: t, lo: lo, hi: hi, first: lo / maxInt(t.ChunkRows(), 1)}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func (s *section) Schema() *Schema { return s.t.Schema() }
func (s *section) Len() int        { return s.hi - s.lo }
func (s *section) ChunkRows() int  { return s.t.ChunkRows() }

func (s *section) NumChunks() int {
	if s.lo == s.hi {
		return 0
	}
	last := (s.hi - 1) / s.t.ChunkRows()
	return last - s.first + 1
}

func (s *section) ChunkBounds(k int) (int, int) {
	plo, phi := s.t.ChunkBounds(s.first + k)
	if plo < s.lo {
		plo = s.lo
	}
	if phi > s.hi {
		phi = s.hi
	}
	return plo - s.lo, phi - s.lo
}

func (s *section) ReadBytes() int64 { return s.t.ReadBytes() }

func (s *section) ReadChunk(k int, ch *Chunk) (int64, error) {
	nb, err := s.t.ReadChunk(s.first+k, ch)
	if err != nil {
		return nb, err
	}
	lo, hi := s.ChunkBounds(k) // section-relative
	from, to := s.lo+lo-ch.Lo, s.lo+hi-ch.Lo
	for a := range ch.Cat {
		if ch.Cat[a] != nil {
			ch.Cat[a] = ch.Cat[a][from:to]
		} else {
			ch.Cont[a] = ch.Cont[a][from:to]
		}
	}
	ch.Class = ch.Class[from:to]
	ch.RID = ch.RID[from:to]
	ch.Lo, ch.Hi = lo, hi
	return nb, nil
}

// BlockBounds returns the row range [lo, hi) of block r of p equal
// blocks of n rows — the same arithmetic as Dataset.BlockPartition, so an
// out-of-core rank reading SectionOf(store, BlockBounds(...)) sees
// exactly the rows its in-RAM twin gets from BlockPartition.
func BlockBounds(n, p, r int) (lo, hi int) {
	return r * n / p, (r + 1) * n / p
}

// --- Materialization ------------------------------------------------------

// Materialize reads the whole table chunk-by-chunk into an in-RAM
// Dataset and returns the encoded bytes read from backing storage.
// Builders whose working set is inherently resident (sorted attribute
// lists, per-node column access) load their block through this single
// entry point, so even their input pass is chunk-framed and its read
// volume is available for disk-cost accounting.
func Materialize(t Table) (*Dataset, int64, error) {
	s := t.Schema()
	d := New(s, t.Len())
	var ch Chunk
	var bytes int64
	for k := 0; k < t.NumChunks(); k++ {
		nb, err := t.ReadChunk(k, &ch)
		if err != nil {
			return nil, bytes, err
		}
		bytes += nb
		for a := range s.Attrs {
			if ch.Cat[a] != nil {
				d.Cat[a] = append(d.Cat[a], ch.Cat[a]...)
			} else {
				d.Cont[a] = append(d.Cont[a], ch.Cont[a]...)
			}
		}
		d.Class = append(d.Class, ch.Class...)
		d.RID = append(d.RID, ch.RID...)
	}
	return d, bytes, nil
}

// CopyTable appends every row of t to the sink in row order, streaming
// chunk-by-chunk with one reused record buffer — the bounded-RAM bridge
// between any Table and any RowSink (e.g. spooling a CSV or generated
// set into an on-disk store).
func CopyTable(dst RowSink, t Table) error {
	s := t.Schema()
	rec := NewRecord(s)
	var ch Chunk
	for k := 0; k < t.NumChunks(); k++ {
		if _, err := t.ReadChunk(k, &ch); err != nil {
			return err
		}
		for i := 0; i < ch.Rows(); i++ {
			for a := range s.Attrs {
				if ch.Cat[a] != nil {
					rec.Cat[a] = ch.Cat[a][i]
				} else {
					rec.Cont[a] = ch.Cont[a][i]
				}
			}
			rec.Class = ch.Class[i]
			rec.RID = ch.RID[i]
			if err := dst.AppendRow(rec); err != nil {
				return err
			}
		}
	}
	return nil
}

// RowSink receives rows one at a time; implementations may buffer. The
// in-RAM Dataset and the out-of-core StoreWriter both satisfy it, so
// loaders (CSV, the Quest generator) write to either backend through one
// code path.
type RowSink interface {
	AppendRow(r Record) error
}

// AppendRow adds one record; it never fails for the in-RAM backend and
// exists to satisfy RowSink.
func (d *Dataset) AppendRow(r Record) error {
	d.Append(r)
	return nil
}
