package dataset

import (
	"errors"
	"math/rand/v2"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// scrambleRIDs gives the dataset non-sequential record ids so the rid
// column's zigzag delta encoding sees negative deltas.
func scrambleRIDs(rng *rand.Rand, d *Dataset) {
	rng.Shuffle(d.Len(), func(i, j int) { d.RID[i], d.RID[j] = d.RID[j], d.RID[i] })
	for i := range d.RID {
		d.RID[i] = d.RID[i]*37 - 1000
	}
}

func writeTestStore(t *testing.T, d *Dataset, chunkRows int) string {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "x.store")
	if err := WriteStore(dir, d.Chunked(chunkRows), chunkRows); err != nil {
		t.Fatalf("write store: %v", err)
	}
	return dir
}

func TestStoreRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(41, 1))
	for _, n := range []int{0, 1, 63, 64, 65, 513} {
		d := randomDataset(rng, testSchema(), n)
		scrambleRIDs(rng, d)
		dir := writeTestStore(t, d, 64)
		if !IsStoreDir(dir) {
			t.Fatalf("IsStoreDir(%q) = false", dir)
		}
		st, err := OpenStore(dir)
		if err != nil {
			t.Fatalf("open (n=%d): %v", n, err)
		}
		if st.Len() != n || st.ChunkRows() != 64 {
			t.Fatalf("geometry: len %d chunkRows %d", st.Len(), st.ChunkRows())
		}
		got, nb, err := Materialize(st)
		if err != nil {
			t.Fatalf("materialize (n=%d): %v", n, err)
		}
		if !datasetEqual(d, got) {
			t.Fatalf("store round trip changed the data (n=%d)", n)
		}
		if n > 0 && (nb <= 0 || st.ReadBytes() != nb) {
			t.Fatalf("byte accounting: materialize %d, store %d", nb, st.ReadBytes())
		}
		st.Close()
	}
}

func TestStoreSections(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 1))
	d := randomDataset(rng, testSchema(), 300)
	dir := writeTestStore(t, d, 32)
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for _, b := range [][2]int{{0, 300}, {0, 31}, {31, 33}, {100, 100}, {7, 299}, {64, 128}} {
		sec := SectionOf(st, b[0], b[1])
		got, _, err := Materialize(sec)
		if err != nil {
			t.Fatalf("materialize [%d,%d): %v", b[0], b[1], err)
		}
		if want := d.Slice(b[0], b[1]); !datasetEqual(want, got) {
			t.Fatalf("section [%d,%d) differs from slice", b[0], b[1])
		}
	}
	// Sectioning a section composes: [50,250) of the store, then [10,60)
	// of that, is rows [60,110).
	inner := SectionOf(SectionOf(st, 50, 250), 10, 60)
	got, _, err := Materialize(inner)
	if err != nil {
		t.Fatal(err)
	}
	if want := d.Slice(60, 110); !datasetEqual(want, got) {
		t.Fatal("composed sections differ from slice [60,110)")
	}
}

func TestBlockBoundsMatchesBlockPartition(t *testing.T) {
	rng := rand.New(rand.NewPCG(43, 1))
	d := randomDataset(rng, testSchema(), 217)
	for _, p := range []int{1, 2, 3, 5, 8} {
		blocks := d.BlockPartition(p)
		for r := 0; r < p; r++ {
			lo, hi := BlockBounds(d.Len(), p, r)
			if hi-lo != blocks[r].Len() || !datasetEqual(blocks[r], d.Slice(lo, hi)) {
				t.Fatalf("p=%d r=%d: BlockBounds [%d,%d) does not match BlockPartition", p, r, lo, hi)
			}
		}
	}
}

// TestStoreCorruption: every single-byte corruption and every truncation
// of a column file either errors at open or read time, or leaves the
// decoded rows untouched — a corrupted store never silently mis-decodes.
func TestStoreCorruption(t *testing.T) {
	rng := rand.New(rand.NewPCG(44, 1))
	d := randomDataset(rng, testSchema(), 150)
	scrambleRIDs(rng, d)
	dir := writeTestStore(t, d, 32)

	check := func(t *testing.T, what string) {
		st, err := OpenStore(dir)
		if err != nil {
			return // detected at open
		}
		got, _, err := Materialize(st)
		st.Close()
		if err != nil {
			return // detected at read
		}
		if !datasetEqual(d, got) {
			t.Fatalf("%s: corruption decoded to different data without an error", what)
		}
	}

	for _, name := range []string{"attr_00.col", "attr_01.col", "class.col", "rid.col"} {
		path := filepath.Join(dir, name)
		orig, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		t.Run("bitflip/"+name, func(t *testing.T) {
			buf := make([]byte, len(orig))
			for off := 0; off < len(orig); off++ {
				copy(buf, orig)
				buf[off] ^= 0x10
				if err := os.WriteFile(path, buf, 0o644); err != nil {
					t.Fatal(err)
				}
				check(t, name)
			}
		})
		t.Run("truncate/"+name, func(t *testing.T) {
			for cut := 0; cut < len(orig); cut += 7 {
				if err := os.WriteFile(path, orig[:cut], 0o644); err != nil {
					t.Fatal(err)
				}
				check(t, name)
			}
		})
		if err := os.WriteFile(path, orig, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func TestStoreWriterRejectsBadSchema(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "bad.store")
	if _, err := NewStoreWriter(dir, &Schema{}, 16); err == nil {
		t.Fatal("empty schema accepted")
	}
}

func TestCopyTableToStore(t *testing.T) {
	rng := rand.New(rand.NewPCG(45, 1))
	d := randomDataset(rng, testSchema(), 200)
	dir := filepath.Join(t.TempDir(), "copy.store")
	w, err := NewStoreWriter(dir, d.Schema, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := CopyTable(w, d.Chunked(33)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	got, _, err := Materialize(st)
	if err != nil {
		t.Fatal(err)
	}
	if !datasetEqual(d, got) {
		t.Fatal("CopyTable through the store changed the data")
	}
}

func TestCSVColumnCountError(t *testing.T) {
	s := testSchema()
	good := "color,size,shape,weight,class\n"
	_, err := ReadCSV(strings.NewReader(good+"red,1,round,2,yes\nred,1,round,2\n"), s)
	var cc *ColumnCountError
	if !errors.As(err, &cc) {
		t.Fatalf("short row: got %v, want *ColumnCountError", err)
	}
	if cc.Line != 3 || cc.Got != 4 || cc.Want != 5 {
		t.Fatalf("short row: got %+v", cc)
	}
	_, err = ReadCSV(strings.NewReader(good+"red,1,round,2,yes,extra\n"), s)
	if !errors.As(err, &cc) || cc.Line != 2 || cc.Got != 6 {
		t.Fatalf("long row: got %v", err)
	}
	_, err = ReadCSV(strings.NewReader("color,size,shape\n"), s)
	if !errors.As(err, &cc) || cc.Line != 1 {
		t.Fatalf("short header: got %v", err)
	}
}
