package dataset

// Weather returns Quinlan's 14-case "play / don't play" training set,
// exactly as printed in Table 1 of the paper: four data attributes
// (Outlook categorical; Temperature and Humidity continuous; Windy
// categorical) and two classes. The per-value class distributions of
// Outlook reproduce Table 2 and the sorted binary tests on Humidity
// reproduce Table 3; the golden tests in this module and in
// internal/criteria assert both.
func Weather() *Dataset {
	s := WeatherSchema()
	type row struct {
		outlook  string
		temp     float64
		humidity float64
		windy    string
		class    string
	}
	rows := []row{
		{"sunny", 85, 85, "false", "Don't Play"},
		{"sunny", 80, 90, "true", "Don't Play"},
		{"overcast", 83, 78, "false", "Play"},
		{"rain", 70, 96, "false", "Play"},
		{"rain", 68, 80, "false", "Play"},
		{"rain", 65, 70, "true", "Don't Play"},
		{"overcast", 64, 65, "true", "Play"},
		{"sunny", 72, 95, "false", "Don't Play"},
		{"sunny", 69, 70, "false", "Play"},
		{"rain", 75, 80, "false", "Play"},
		{"sunny", 75, 70, "true", "Play"},
		{"overcast", 72, 90, "true", "Play"},
		{"overcast", 81, 75, "false", "Play"},
		{"rain", 71, 80, "true", "Don't Play"},
	}
	d := New(s, len(rows))
	rec := NewRecord(s)
	for i, r := range rows {
		rec.Cat[0] = int32(s.Attrs[0].ValueIndex(r.outlook))
		rec.Cont[1] = r.temp
		rec.Cont[2] = r.humidity
		rec.Cat[3] = int32(s.Attrs[3].ValueIndex(r.windy))
		rec.Class = int32(s.ClassIndex(r.class))
		rec.RID = int64(i)
		d.Append(rec)
	}
	return d
}

// WeatherSchema returns the schema of the Table 1 training set.
func WeatherSchema() *Schema {
	return &Schema{
		Attrs: []Attribute{
			{Name: "Outlook", Kind: Categorical, Values: []string{"sunny", "overcast", "rain"}},
			{Name: "Temperature", Kind: Continuous},
			{Name: "Humidity", Kind: Continuous},
			{Name: "Windy", Kind: Categorical, Values: []string{"false", "true"}},
		},
		Classes: []string{"Play", "Don't Play"},
	}
}
