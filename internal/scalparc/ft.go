package scalparc

import (
	"partree/internal/core"
	"partree/internal/dataset"
	"partree/internal/mp"
)

// BuildFT is the fault-tolerant variant of Build. The whole construction
// is wrapped in core.RunRestartable: every rank checkpoints its block
// before the attempt, and a detected rank failure makes the survivors
// regroup, re-adopt the lost ranks' records from the checkpoint store and
// rebuild from the root. Because both modes grow a tree that depends only
// on the global record multiset (never on its distribution across ranks),
// the rebuilt tree is bit-identical to the fault-free one.
//
// ft == nil (or a nil store) degrades to a plain Build.
func BuildFT(c *mp.Comm, local *dataset.Dataset, o Options, ft *core.FTOptions) Result {
	if ft == nil || ft.Store == nil || c.Size() <= 1 {
		return Build(c, local, o)
	}
	out := core.RunRestartable(c, local, ft, func(c *mp.Comm, d *dataset.Dataset) any {
		return Build(c, d, o)
	})
	return out.(Result)
}
