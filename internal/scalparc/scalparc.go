// Package scalparc implements the two parallel formulations of
// SPRINT-style (pre-sorted attribute list) classifiers that §2.2 of the
// paper analyzes and compares against its own approaches:
//
//   - parallel SPRINT (Shafer, Agrawal & Mehta, VLDB 1996): the sorted
//     attribute lists are split contiguously across processors; the split
//     point of a node is found in parallel from per-section scans; but the
//     splitting phase requires the FULL record-id → child hash table on
//     every processor, built by an all-to-all broadcast — O(N) memory and
//     O(N) communication per processor per level, the unscalability the
//     paper calls out;
//
//   - ScalParC (Joshi, Karypis & Kumar, IPPS 1998): the hash table is
//     itself distributed by record id, and the splitting phase becomes two
//     rounds of personalized communication (update the owners, then query
//     them), bringing memory and communication down to O(N/P) per
//     processor per level.
//
// Both modes grow exactly the tree of the serial SPRINT builder
// (internal/sprint) — asserted by the tests — and both run on the same
// modeled machine as the paper's own formulations, so their communication
// volume and peak hash-table sizes can be compared head-to-head
// (BenchmarkHashSplit in the root harness).
package scalparc

import (
	"fmt"
	"math"

	"partree/internal/core"
	"partree/internal/criteria"
	"partree/internal/dataset"
	"partree/internal/kernel"
	"partree/internal/mp"
	"partree/internal/tree"
)

// Mode selects the splitting-phase implementation.
type Mode int

const (
	// FullHash is parallel SPRINT: every processor materializes the whole
	// rid → child table via an all-to-all broadcast.
	FullHash Mode = iota
	// DistributedHash is ScalParC: the table is sharded by rid and
	// consulted with personalized communication.
	DistributedHash
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case FullHash:
		return "parallel-sprint"
	case DistributedHash:
		return "scalparc"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Options configures a build.
type Options struct {
	Tree tree.Options
	Mode Mode
}

// Result carries the tree and the scalability metrics of the run.
type Result struct {
	Tree *tree.Tree
	// MaxHashEntries is the peak number of rid → child entries this rank
	// ever held at once — θ(N) for FullHash, θ(N/P) for DistributedHash.
	MaxHashEntries int
	// HashBytes is the payload volume this rank exchanged in the
	// splitting phase's hash construction and probing — the quantity
	// §2.2's O(N) vs O(N/P) communication claim is about, isolated from
	// the histogram reductions both variants share.
	HashBytes int64
}

// entry is one attribute-list element (same shape as serial SPRINT's).
type entry struct {
	value float64
	rid   int64
	class int32
}

// nodeSlice is this rank's section of one frontier node's attribute
// lists. Continuous sections are globally sorted: rank r's section
// precedes rank r+1's.
type nodeSlice struct {
	node  *tree.Node
	lists [][]entry
}

// scalFam is one sibling family for the statistics-reuse layer
// (tree.Options.Reuse.Subtraction): the globally non-empty children of one
// node split at the previous level. members index the current frontier;
// members[der] — the child with the most training cases, chosen from the
// previous level's reduced child counts so the plan is identical on every
// rank — is derived instead of tabulated: its class distribution from the
// parent node's (global) Dist, its categorical histogram blocks from the
// parent's retained blocks, both as exact int64 subtractions.
type scalFam struct {
	parentNi int        // parent's index in the previous frontier (retained flats)
	parent   *tree.Node // parent node: .Dist is its reduced global distribution
	members  []int
	der      int
}

// builder carries per-rank build state.
type builder struct {
	c    *mp.Comm
	s    *dataset.Schema
	o    Options
	ids  *tree.IDGen
	p    int
	rank int

	maxHash   int
	hashBytes int64

	// statistics-reuse state (nil / unused when Reuse.Subtraction is off)
	fams      []scalFam // families born at the previous split phase
	derived   []bool    // per current-frontier node: derive, don't tabulate
	prevFlats [][]int64 // per-attr retained histogram blocks, previous level
	curFlats  [][]int64 // per-attr blocks being retained this level
}

// Build grows a decision tree over the block-distributed training set
// with the selected parallel SPRINT variant. Every rank returns the
// complete (replicated) tree and its own peak hash size.
func Build(c *mp.Comm, local *dataset.Dataset, o Options) Result {
	o.Tree = o.Tree.WithDefaults()
	b := &builder{c: c, s: local.Schema, o: o, ids: tree.NewIDGen(1), p: c.Size(), rank: c.Rank()}
	return b.run(b.presort(local))
}

// BuildTable grows the tree from this rank's chunked section of the
// training set. ScalParC's only whole-column access is the one-time
// pre-sorting pass; it streams here chunk by chunk with the encoded read
// volume charged to the modeled disk cost class, then the identical
// sample-sort exchanges run on the same entries in the same order — so
// the tree and (at the default TD = 0) the modeled clock are
// bit-identical to Build on the materialized block.
func BuildTable(c *mp.Comm, local dataset.Table, o Options) (Result, error) {
	o.Tree = o.Tree.WithDefaults()
	b := &builder{c: c, s: local.Schema(), o: o, ids: tree.NewIDGen(1), p: c.Size(), rank: c.Rank()}
	lists, err := b.presortTable(local)
	if err != nil {
		return Result{}, err
	}
	return b.run(lists), nil
}

// run grows the tree from the presorted root lists.
func (b *builder) run(lists [][]entry) Result {
	root := &tree.Node{Kind: tree.Leaf, Dist: make([]int64, b.s.NumClasses())}
	frontier := []nodeSlice{{node: root, lists: lists}}
	for len(frontier) > 0 {
		frontier = b.level(frontier)
	}
	b.releaseFlats(b.prevFlats)
	b.prevFlats = nil
	return Result{
		Tree:           &tree.Tree{Schema: b.s, Root: root},
		MaxHashEntries: b.maxHash,
		HashBytes:      b.hashBytes,
	}
}

// presort builds the root's attribute lists: continuous attributes are
// parallel-sample-sorted into globally ordered sections (SPRINT's one-time
// pre-sorting step); categorical attributes keep the local records'
// entries.
func (b *builder) presort(local *dataset.Dataset) [][]entry {
	lists := make([][]entry, b.s.NumAttrs())
	for a, attr := range b.s.Attrs {
		raw := make([]entry, local.Len())
		for i := range raw {
			v := 0.0
			if attr.Kind == dataset.Continuous {
				v = local.Cont[a][i]
			} else {
				v = float64(local.Cat[a][i])
			}
			raw[i] = entry{value: v, rid: local.RID[i], class: local.Class[i]}
		}
		if attr.Kind == dataset.Continuous {
			lists[a] = sampleSort(b.c, raw, a)
		} else {
			lists[a] = raw
		}
	}
	return lists
}

// presortTable is the chunk-fed presort: one stream over the section's
// chunks fills every attribute's raw entries (charging the read volume to
// the disk cost class), then the continuous attributes sample-sort in the
// same attribute order as presort. The entries and the communication
// sequence are identical to presort on the materialized block.
func (b *builder) presortTable(local dataset.Table) ([][]entry, error) {
	lists := make([][]entry, b.s.NumAttrs())
	for a := range b.s.Attrs {
		lists[a] = make([]entry, local.Len())
	}
	var ch dataset.Chunk
	for k := 0; k < local.NumChunks(); k++ {
		nb, err := local.ReadChunk(k, &ch)
		if err != nil {
			return nil, err
		}
		b.c.ChargeDisk(int(nb))
		for a := range b.s.Attrs {
			raw := lists[a][ch.Lo:ch.Hi]
			if ch.Cont[a] != nil {
				for i, v := range ch.Cont[a] {
					raw[i] = entry{value: v, rid: ch.RID[i], class: ch.Class[i]}
				}
			} else {
				for i, code := range ch.Cat[a] {
					raw[i] = entry{value: float64(code), rid: ch.RID[i], class: ch.Class[i]}
				}
			}
		}
	}
	for a, attr := range b.s.Attrs {
		if attr.Kind == dataset.Continuous {
			lists[a] = sampleSort(b.c, lists[a], a)
		}
	}
	return lists, nil
}

// voteActive reports whether voted split selection applies to this
// build: a meaningful K (0 < K < A_d) and more than one rank. At P = 1
// (and at K ≥ A_d) the exact path runs verbatim, so voted builds are
// bit-identical to exact there by construction.
func (b *builder) voteActive() bool {
	return b.o.Tree.Vote.Active(b.s.NumAttrs()) && b.p > 1
}

// subActive reports whether sibling-subtraction reuse applies. Under an
// active vote the retained parent blocks are only exact on the parent's
// elected attribute set while every level elects fresh candidates, so
// the two features compose poorly on ScalParC's per-attribute reduction
// structure; voted builds simply disable reuse here (core's synchronous
// frontier composes them instead via family-coherent elections).
func (b *builder) subActive() bool {
	return b.o.Tree.Reuse.Subtraction && !b.voteActive()
}

// releaseFlats recycles retained per-attribute histogram blocks.
func (b *builder) releaseFlats(flats [][]int64) {
	for _, f := range flats {
		if f != nil {
			kernel.PutInt64(f)
		}
	}
}

// level expands every frontier node once, synchronously across ranks.
func (b *builder) level(frontier []nodeSlice) []nodeSlice {
	nClasses := b.s.NumClasses()
	sub := b.subActive()
	if sub {
		// The derivation plan of this level, fixed by the previous split
		// phase from globally reduced child counts — identical on all ranks.
		b.derived = make([]bool, len(frontier))
		for _, f := range b.fams {
			b.derived[f.members[f.der]] = true
		}
		b.curFlats = make([][]int64, b.s.NumAttrs())
	}

	// 1. Global class distribution per node (reduce local counts of the
	// first attribute's sections, which partition the node's records).
	// Derived nodes skip the scan and reduce as zero blocks (which also
	// feed the sparse encoding); their distributions are reconstructed
	// below as parent − Σ siblings on the reduced values.
	dists := make([]int64, len(frontier)*nClasses)
	var ops int64
	for ni, ns := range frontier {
		if sub && b.derived[ni] {
			continue
		}
		for _, e := range ns.lists[0] {
			dists[ni*nClasses+int(e.class)]++
		}
		ops += int64(len(ns.lists[0]))
	}
	b.c.Compute(float64(ops))
	if b.p > 1 {
		mp.AllreduceSum(b.c, dists, b.o.Tree.Reuse.SparseThreshold)
	}
	for _, f := range b.fams {
		dni := f.members[f.der]
		dst := dists[dni*nClasses : (dni+1)*nClasses]
		copy(dst, f.parent.Dist)
		for _, ni := range f.members {
			if ni == dni {
				continue
			}
			for i, v := range dists[ni*nClasses : (ni+1)*nClasses] {
				dst[i] -= v
			}
		}
	}

	// 2. Choose the best split of every node (replicated decision).
	splits := b.chooseSplits(frontier, dists)
	if sub {
		b.releaseFlats(b.prevFlats) // consumed by this level's derivations
		b.prevFlats, b.curFlats = b.curFlats, nil
	}

	// 3. Apply splits; route records; partition all lists via the hash
	// table (full or distributed); build the next frontier.
	return b.splitPhase(frontier, dists, splits)
}

// candidate is one node's best test on one attribute, exchanged between
// ranks; score is the expected impurity (lower is better), gain is
// derived by the chooser.
type candidate struct {
	score  float64
	attr   int32
	kind   tree.SplitKind
	thresh float64
	mask   uint64
	valid  bool
}

// chooseSplits evaluates every (node, attribute) pair and returns the
// winning split per node (attr = -1 for leaves). Identical on all ranks.
func (b *builder) chooseSplits(frontier []nodeSlice, dists []int64) []candidate {
	nClasses := b.s.NumClasses()
	best := make([]candidate, len(frontier))
	for i := range best {
		best[i] = candidate{attr: -1}
	}

	// Leaf pre-checks from the global distribution.
	parent := make([]float64, len(frontier))
	totals := make([]int64, len(frontier))
	for ni := range frontier {
		dist := dists[ni*nClasses : (ni+1)*nClasses]
		var n int64
		for _, v := range dist {
			n += v
		}
		totals[ni] = n
		node := frontier[ni].node
		if n < int64(b.o.Tree.MinSplit) || (b.o.Tree.MaxDepth > 0 && node.Depth >= b.o.Tree.MaxDepth) {
			parent[ni] = -1 // forced leaf
			continue
		}
		parent[ni] = b.o.Tree.Criterion.Impurity(dist, n)
		if parent[ni] == 0 {
			parent[ni] = -1
		}
	}

	// Voted split selection: the nomination/election round restricts the
	// (node, attribute) pairs the full scoring round below may evaluate.
	var allow []bool
	voting := b.voteActive()
	if voting {
		allow = b.voteAllow(frontier, parent)
		b.c.BeginPhase(core.PhaseVoteHist)
	}
	nA := b.s.NumAttrs()
	for a, attr := range b.s.Attrs {
		var nodeAllow []bool
		if allow != nil {
			nodeAllow = make([]bool, len(frontier))
			any := false
			for ni := range frontier {
				if allow[ni*nA+a] {
					nodeAllow[ni] = true
					any = true
				}
			}
			if !any {
				continue // no node elected this attribute: skip it entirely
			}
		}
		if attr.Kind == dataset.Categorical {
			b.scoreCategorical(frontier, a, parent, best, nodeAllow)
		} else {
			b.scoreContinuous(frontier, a, dists, totals, parent, best, nodeAllow)
		}
	}
	if voting {
		b.c.EndPhase()
	}
	return best
}

// voteAllow runs the nomination round of voted split selection over the
// attribute-list layout: every rank scores each frontier node's
// attributes on its local list sections only, nominates its top-k per
// node, and the vote collective elects ≤2k global candidates per node.
// The returned nf×nA flag matrix marks the (node, attribute) pairs the
// full scoring round may evaluate; all other pairs are withheld from
// tabulation, reduction, and the allgather exchanges. Forced leaves
// allow nothing. A node whose election produced no candidates (no rank
// could nominate) allows every attribute, falling back to the exact
// reduction for that node.
//
// Nomination gains are a local heuristic: each attribute's section is
// scored against its own class distribution (the sections of different
// attributes hold different records after the continuous sample-sort,
// so there is no shared local baseline), and continuous sections scan
// standalone without cross-rank boundary candidates.
func (b *builder) voteAllow(frontier []nodeSlice, parent []float64) []bool {
	b.c.BeginPhase(core.PhaseVoteBallot)
	defer b.c.EndPhase()
	nClasses := b.s.NumClasses()
	nA := b.s.NumAttrs()
	nf := len(frontier)
	k := b.o.Tree.Vote.K
	elect := b.o.Tree.Vote.Candidates()
	crit := b.o.Tree.Criterion

	ballots := kernel.GetInt32(nf * k)
	scores := kernel.GetFloat64(nf * k)
	gains := kernel.GetFloat64(nA)
	secDist := kernel.GetInt64(nClasses)
	maxBlk := 0
	for _, attr := range b.s.Attrs {
		if attr.Kind == dataset.Categorical {
			if blk := attr.Cardinality() * nClasses; blk > maxBlk {
				maxBlk = blk
			}
		}
	}
	var hist []int64
	if maxBlk > 0 {
		hist = kernel.GetInt64(maxBlk)
	}
	var sc kernel.ContScanner
	var ops int64
	for ni, ns := range frontier {
		if parent[ni] < 0 {
			// Forced leaf: nominate nothing (pooled buffers arrive zeroed,
			// and attribute 0 must not be mistaken for a nomination).
			for i := 0; i < k; i++ {
				ballots[ni*k+i] = -1
			}
			continue
		}
		for a, attr := range b.s.Attrs {
			gains[a] = math.Inf(-1)
			sec := ns.lists[a]
			if len(sec) == 0 {
				continue
			}
			clear(secDist)
			for _, e := range sec {
				secDist[e.class]++
			}
			ln := int64(len(sec))
			imp := crit.Impurity(secDist, ln)
			if imp == 0 {
				continue
			}
			if attr.Kind == dataset.Categorical {
				m := attr.Cardinality()
				blk := m * nClasses
				h := hist[:blk]
				clear(h)
				for _, e := range sec {
					h[int(e.value)*nClasses+int(e.class)]++
				}
				ops += 2*int64(len(sec)) + int64(blk)
				_, score, ok := criteria.ScoreHist(&criteria.Hist{M: m, C: nClasses, Counts: h}, crit, b.o.Tree.Binary)
				if ok {
					gains[a] = imp - score
				}
			} else {
				sc.Reset(secDist, ln, crit)
				for _, e := range sec {
					sc.Add(e.value, e.class)
				}
				sc.Finish(math.NaN(), false)
				_, score, ok := sc.Best()
				ops += 2 * int64(len(sec)) * int64(nClasses)
				if ok {
					gains[a] = imp - score
				}
			}
		}
		n := kernel.VoteTopK(gains, k, b.o.Tree.MinGain, ballots[ni*k:(ni+1)*k])
		for i := 0; i < n; i++ {
			scores[ni*k+i] = gains[ballots[ni*k+i]]
		}
	}
	b.c.Compute(float64(ops))

	elected := kernel.GetInt32(nf * elect)
	counts := kernel.GetInt32(nf)
	mp.VoteElect(b.c, ballots, scores, nf, k, elect, nA, elected, counts)
	allow := make([]bool, nf*nA)
	for ni := range frontier {
		if parent[ni] < 0 {
			continue // forced leaf: nothing allowed
		}
		if counts[ni] == 0 {
			for a := 0; a < nA; a++ {
				allow[ni*nA+a] = true
			}
			continue
		}
		for i := 0; i < int(counts[ni]); i++ {
			allow[ni*nA+int(elected[ni*elect+i])] = true
		}
	}
	kernel.PutInt32(counts)
	kernel.PutInt32(elected)
	if hist != nil {
		kernel.PutInt64(hist)
	}
	kernel.PutInt64(secDist)
	kernel.PutFloat64(gains)
	kernel.PutFloat64(scores)
	kernel.PutInt32(ballots)
	return allow
}

// scoreCategorical reduces the per-node histograms of attribute a and
// evaluates the subset/multiway split on every rank.
//
// With sibling subtraction, the blocks of derived nodes are withheld from
// both the tabulation and the reduction — the packed payload holds only
// the non-derived blocks, shrinking the collective — and are reconstructed
// afterwards from the previous level's retained parent blocks. The full
// per-node array is then itself retained for the next level.
//
// With voted split selection, allow marks the nodes that elected this
// attribute; the blocks of all other nodes are likewise withheld from
// tabulation, reduction, and scoring (they stay zero and are never
// consulted). allow is nil on the exact path.
func (b *builder) scoreCategorical(frontier []nodeSlice, a int, parent []float64, best []candidate, allow []bool) {
	nClasses := b.s.NumClasses()
	m := b.s.Attrs[a].Cardinality()
	blk := m * nClasses
	sub := b.subActive()
	withheld := func(ni int) bool {
		return (sub && b.derived[ni]) || (allow != nil && !allow[ni])
	}
	flat := kernel.GetInt64(len(frontier) * blk)
	if sub {
		b.curFlats[a] = flat // retained; released after the next level
	} else {
		defer kernel.PutInt64(flat)
	}
	var ops, cells int64
	for ni, ns := range frontier {
		if withheld(ni) {
			continue
		}
		base := ni * blk
		for _, e := range ns.lists[a] {
			flat[base+int(e.value)*nClasses+int(e.class)]++
		}
		ops += int64(len(ns.lists[a]))
		cells += int64(blk)
	}
	b.c.Compute(float64(ops) + float64(cells))
	if b.p > 1 {
		if (sub && len(b.fams) > 0) || allow != nil {
			// Packed reduction: only tabulated blocks go on the wire.
			nTab := 0
			for ni := range frontier {
				if !withheld(ni) {
					nTab++
				}
			}
			if nTab > 0 {
				red := kernel.GetInt64(nTab * blk)
				pos := 0
				for ni := range frontier {
					if withheld(ni) {
						continue
					}
					copy(red[pos*blk:(pos+1)*blk], flat[ni*blk:(ni+1)*blk])
					pos++
				}
				mp.AllreduceSum(b.c, red, b.o.Tree.Reuse.SparseThreshold)
				pos = 0
				for ni := range frontier {
					if withheld(ni) {
						continue
					}
					copy(flat[ni*blk:(ni+1)*blk], red[pos*blk:(pos+1)*blk])
					pos++
				}
				kernel.PutInt64(red)
			}
		} else {
			mp.AllreduceSum(b.c, flat, b.o.Tree.Reuse.SparseThreshold)
		}
	}
	var dops int64
	for _, f := range b.fams {
		dni := f.members[f.der]
		dst := flat[dni*blk : (dni+1)*blk]
		dops += kernel.DeriveFrom(dst, b.prevFlats[a][f.parentNi*blk:(f.parentNi+1)*blk])
		for _, ni := range f.members {
			if ni != dni {
				dops += kernel.Subtract(dst, flat[ni*blk:(ni+1)*blk])
			}
		}
	}
	if dops > 0 {
		// Derivation is pure in-memory word arithmetic — the reduction-
		// combine class of work — so it is charged at t_op, not the disk-
		// scan-amortizing t_c the tabulation above pays.
		b.c.AdvanceClock(float64(dops) * b.c.Machine().TOp)
	}
	kind := tree.CatMultiway
	if b.o.Tree.Binary {
		kind = tree.CatBinary
	}
	for ni := range frontier {
		if parent[ni] < 0 || (allow != nil && !allow[ni]) {
			continue
		}
		h := &criteria.Hist{M: m, C: nClasses, Counts: flat[ni*m*nClasses : (ni+1)*m*nClasses]}
		mask, score, ok := criteria.ScoreHist(h, b.o.Tree.Criterion, b.o.Tree.Binary)
		considerCandidate(&best[ni], candidate{score: score, attr: int32(a), kind: kind, mask: mask, valid: ok}, parent[ni], b.o.Tree.MinGain)
	}
}

// scoreContinuous finds the best global threshold of attribute a for
// every node: each rank scans its sorted section with the class counts of
// the preceding sections as a starting prefix, candidates cross section
// boundaries via the first value of the following non-empty section, and
// the per-rank winners are allgathered so all ranks select the same one.
//
// With voted split selection, allow marks the nodes that elected this
// attribute; only their sections participate — the exchanged arrays pack
// down to the allowed nodes, shrinking all three allgathers. allow is
// nil on the exact path, where idxs is the identity and every exchange
// is byte-identical to the unrestricted code.
func (b *builder) scoreContinuous(frontier []nodeSlice, a int, dists, totals []int64, parent []float64, best []candidate, allow []bool) {
	nClasses := b.s.NumClasses()
	idxs := make([]int, 0, len(frontier))
	for ni := range frontier {
		if allow != nil && !allow[ni] {
			continue
		}
		idxs = append(idxs, ni)
	}
	nf := len(idxs)
	if nf == 0 {
		return
	}

	// Exchange per-(rank, node) section class counts and first values.
	counts := make([]int64, nf*nClasses)
	firsts := make([]float64, nf) // NaN when section empty
	var ops int64
	for i, ni := range idxs {
		sec := frontier[ni].lists[a]
		for _, e := range sec {
			counts[i*nClasses+int(e.class)]++
		}
		ops += int64(len(sec))
		if len(sec) > 0 {
			firsts[i] = sec[0].value
		} else {
			firsts[i] = math.NaN()
		}
	}
	b.c.Compute(float64(ops))
	allCounts := counts
	allFirsts := firsts
	if b.p > 1 {
		allCounts = mp.Allgatherv(b.c, 11, counts)
		allFirsts = mp.Allgatherv(b.c, 12, firsts)
	}

	// Per-rank local best candidates, then a deterministic global pick.
	local := make([]float64, nf*3) // (score, thresh, validFlag) per node
	var sc kernel.ContScanner      // reused across the frontier
	for i, ni := range idxs {
		local[i*3] = math.Inf(1)
		if parent[ni] < 0 {
			continue
		}
		sec := frontier[ni].lists[a]
		if len(sec) == 0 {
			continue
		}
		// Prefix: class counts of all preceding ranks' sections.
		below := make([]int64, nClasses)
		for r := 0; r < b.rank; r++ {
			for cl := 0; cl < nClasses; cl++ {
				below[cl] += allCounts[(r*nf+i)*nClasses+cl]
			}
		}
		// The value right after my section: first value of the next
		// non-empty section (NaN if none → my last entry is the global
		// maximum and cannot be a threshold).
		next := math.NaN()
		for r := b.rank + 1; r < b.p; r++ {
			v := allFirsts[r*nf+i]
			if !math.IsNaN(v) {
				next = v
				break
			}
		}
		total := totals[ni]
		dist := dists[ni*nClasses : (ni+1)*nClasses]
		sc.Reset(dist, total, b.o.Tree.Criterion)
		sc.Seed(below)
		for _, e := range sec {
			sc.Add(e.value, e.class)
		}
		sc.Finish(next, !math.IsNaN(next))
		bestThresh, bestScore, found := sc.Best()
		b.c.Compute(float64(len(sec)) * float64(nClasses))
		if found {
			local[i*3], local[i*3+1], local[i*3+2] = bestScore, bestThresh, 1
		}
	}
	allLocal := local
	if b.p > 1 {
		allLocal = mp.Allgatherv(b.c, 13, local)
	}
	for i, ni := range idxs {
		if parent[ni] < 0 {
			continue
		}
		bestScore, bestThresh, found := math.Inf(1), 0.0, false
		for r := 0; r < b.p; r++ {
			off := (r*nf + i) * 3
			if allLocal[off+2] != 1 {
				continue
			}
			s, th := allLocal[off], allLocal[off+1]
			// Serial SPRINT's ascending scan keeps the first (lowest-
			// threshold) test among equal scores.
			if s < bestScore || (s == bestScore && th < bestThresh) {
				bestScore, bestThresh, found = s, th, true
			}
		}
		if found {
			considerCandidate(&best[ni],
				candidate{score: bestScore, attr: int32(a), kind: tree.ContBinary, thresh: bestThresh, valid: true},
				parent[ni], b.o.Tree.MinGain)
		}
	}
}

// considerCandidate updates the running best split of a node: strictly
// greater gain wins; attributes are visited in ascending order, matching
// the serial builders' tie-break.
func considerCandidate(best *candidate, cand candidate, parent, minGain float64) {
	if !cand.valid {
		return
	}
	gain := parent - cand.score
	if gain <= minGain {
		return
	}
	if best.attr < 0 || gain > parent-best.score {
		*best = cand
	}
}
