package scalparc

import (
	"fmt"
	"testing"
	"time"

	"partree/internal/core"
	"partree/internal/criteria"
	"partree/internal/fault"
	"partree/internal/mp"
	"partree/internal/quest"
	"partree/internal/sprint"
	"partree/internal/tree"
)

// TestBuildFTCrashRecovery: a seeded crash during either hash strategy is
// detected, the survivors restart from the root-partition checkpoint, and
// every surviving rank finishes with the serial SPRINT tree.
func TestBuildFTCrashRecovery(t *testing.T) {
	d, err := quest.Generate(quest.Config{Function: 2, Seed: 62}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	topts := tree.Options{Binary: true, Criterion: criteria.Gini, MaxDepth: 7}
	want := sprint.Build(d, topts)
	const p = 4
	for _, mode := range []Mode{FullHash, DistributedHash} {
		for _, n := range []int{1, 3, 6, 10} {
			rank := n % p
			t.Run(fmt.Sprintf("%s/crash-r%d-op%d", mode, rank, n), func(t *testing.T) {
				st := fault.NewStore()
				ft := &core.FTOptions{Store: st}
				w := mp.NewWorld(p, mp.SP2())
				w.SetFaultPlan(fault.NewPlan(fault.CrashAt(rank, fault.CollStart, n)))
				blocks := d.BlockPartition(p)
				results := make([]*Result, p)
				done := make(chan struct{})
				var runErr any
				go func() {
					defer close(done)
					defer func() { runErr = recover() }()
					w.Run(func(c *mp.Comm) {
						r := BuildFT(c, blocks[c.Rank()], Options{Tree: topts, Mode: mode}, ft)
						results[c.Rank()] = &r
					})
				}()
				select {
				case <-done:
				case <-time.After(60 * time.Second):
					t.Fatal("recovery run deadlocked (watchdog)")
				}
				if runErr != nil {
					t.Fatalf("run panicked: %v", runErr)
				}
				dead := map[int]bool{}
				for _, r := range w.DeadRanks() {
					dead[r] = true
				}
				for r, res := range results {
					if res == nil {
						if !dead[r] {
							t.Fatalf("rank %d returned no result but is not dead", r)
						}
						continue
					}
					if diff := tree.Diff(want, res.Tree); diff != "" {
						t.Fatalf("rank %d: recovered tree differs from serial SPRINT: %s", r, diff)
					}
				}
				if len(w.DeadRanks()) > 0 && st.Stats().Checkpoints == 0 {
					t.Fatal("crash fired but no checkpoints were taken")
				}
			})
		}
	}
}

// TestBuildFTNilDegrades: nil fault-tolerance options fall back to the
// plain builder.
func TestBuildFTNilDegrades(t *testing.T) {
	d, err := quest.Generate(quest.Config{Function: 2, Seed: 5}, 400)
	if err != nil {
		t.Fatal(err)
	}
	topts := tree.Options{Binary: true, Criterion: criteria.Gini, MaxDepth: 6}
	want := sprint.Build(d, topts)
	w := mp.NewWorld(2, mp.SP2())
	blocks := d.BlockPartition(2)
	trees := make([]*tree.Tree, 2)
	w.Run(func(c *mp.Comm) {
		trees[c.Rank()] = BuildFT(c, blocks[c.Rank()], Options{Tree: topts, Mode: DistributedHash}, nil).Tree
	})
	for r := range trees {
		if diff := tree.Diff(want, trees[r]); diff != "" {
			t.Fatalf("rank %d differs: %s", r, diff)
		}
	}
}
