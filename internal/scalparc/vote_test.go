package scalparc

import (
	"fmt"
	"testing"

	"partree/internal/kernel"
	"partree/internal/quest"
	"partree/internal/tree"
)

// TestVotedExactAtLargeK: K at or above the attribute count keeps the
// ScalParC vote gate closed — trees, modeled clocks, and breakdown
// tables must be bit-identical to the exact build, at non-power-of-two
// processor counts included.
func TestVotedExactAtLargeK(t *testing.T) {
	d, err := quest.Generate(quest.Config{Function: 2, Seed: 37}, 1500)
	if err != nil {
		t.Fatal(err)
	}
	nA := d.Schema.NumAttrs()
	topts := tree.Options{Binary: true, MaxDepth: 7}
	for _, p := range []int{1, 3, 6} {
		t.Run(fmt.Sprintf("p%d", p), func(t *testing.T) {
			exact, ew := runBuild(t, d, p, Options{Tree: topts})
			vo := topts
			vo.Vote = kernel.VoteOptions{K: nA}
			voted, vw := runBuild(t, d, p, Options{Tree: vo})
			if diff := tree.Diff(exact[0].Tree, voted[0].Tree); diff != "" {
				t.Fatalf("K=numAttrs tree differs from exact: %s", diff)
			}
			if ec, vc := ew.MaxClock(), vw.MaxClock(); ec != vc {
				t.Fatalf("modeled clock %.9f != exact %.9f", vc, ec)
			}
			if et, vt := ew.Breakdown().Table(), vw.Breakdown().Table(); et != vt {
				t.Fatalf("breakdown differs from exact:\n%s\nvs\n%s", et, vt)
			}
		})
	}
}

// TestVotedReducesTraffic: on a wide schema an active vote must cut
// ScalParC's modeled communication while growing a non-degenerate tree
// (runBuild already asserts all ranks agree on it).
func TestVotedReducesTraffic(t *testing.T) {
	d, err := quest.Generate(quest.Config{Function: 2, Seed: 41, Attrs: 48}, 2000)
	if err != nil {
		t.Fatal(err)
	}
	topts := tree.Options{Binary: true, MaxDepth: 6}
	_, ew := runBuild(t, d, 4, Options{Tree: topts})
	vo := topts
	vo.Vote = kernel.VoteOptions{K: 4}
	voted, vw := runBuild(t, d, 4, Options{Tree: vo})
	eb, vb := ew.Traffic().Bytes, vw.Traffic().Bytes
	if vb >= eb {
		t.Fatalf("voted ScalParC moved %d bytes, exact %d — no reduction", vb, eb)
	}
	if st := voted[0].Tree.Stats(); st.Nodes < 3 {
		t.Fatalf("voted tree degenerate: %+v", st)
	}
}

// TestVotedDisablesSubtraction: under an active vote the retained parent
// blocks are only exact on the parent's elected set, so ScalParC turns
// sibling subtraction off rather than derive from a mismatched basis —
// a voted build must be bit-identical with Reuse.Subtraction on or off.
func TestVotedDisablesSubtraction(t *testing.T) {
	d, err := quest.Generate(quest.Config{Function: 2, Seed: 43, Attrs: 32}, 1500)
	if err != nil {
		t.Fatal(err)
	}
	topts := tree.Options{Binary: true, MaxDepth: 6, Vote: kernel.VoteOptions{K: 3}}
	plain, pw := runBuild(t, d, 4, Options{Tree: topts})
	so := topts
	so.Reuse = kernel.Options{Subtraction: true}
	sub, sw := runBuild(t, d, 4, Options{Tree: so})
	if diff := tree.Diff(plain[0].Tree, sub[0].Tree); diff != "" {
		t.Fatalf("voted tree changed when subtraction was requested: %s", diff)
	}
	if pt, st := pw.Breakdown().Table(), sw.Breakdown().Table(); pt != st {
		t.Fatalf("voted breakdown changed when subtraction was requested:\n%s\nvs\n%s", pt, st)
	}
}
