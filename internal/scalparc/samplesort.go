package scalparc

import (
	"math"
	"sort"

	"partree/internal/mp"
)

// sampleSort globally sorts the ranks' entries by (value, rid) and
// returns this rank's contiguous section of the sorted order (rank r's
// section entirely precedes rank r+1's) — SPRINT's one-time pre-sorting
// step, realized with the classic parallel sample sort: local sort,
// regular sampling, shared splitter selection, splitter-partitioned
// personalized exchange, local merge.
func sampleSort(c *mp.Comm, local []entry, attrTag int) []entry {
	p := c.Size()
	sortEntries(local)
	if p == 1 {
		return local
	}

	// Regular samples: p-1 per rank, at evenly spaced positions.
	samples := make([]float64, 0, 2*(p-1))
	for i := 1; i < p; i++ {
		if len(local) == 0 {
			// Empty ranks contribute +inf sentinels so splitter positions
			// stay aligned.
			samples = append(samples, math.Inf(1), math.MaxFloat64)
			continue
		}
		e := local[i*len(local)/p]
		samples = append(samples, e.value, float64(e.rid))
	}
	all := mp.Allgatherv(c, 20+attrTag<<4, samples)

	// Sort the (value, rid) sample keys and take every p-th as splitter.
	type key struct {
		v   float64
		rid float64
	}
	keys := make([]key, 0, len(all)/2)
	for i := 0; i+1 < len(all); i += 2 {
		keys = append(keys, key{all[i], all[i+1]})
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].v != keys[b].v {
			return keys[a].v < keys[b].v
		}
		return keys[a].rid < keys[b].rid
	})
	splitters := make([]key, p-1)
	for i := range splitters {
		splitters[i] = keys[(i+1)*len(keys)/p-1]
	}

	// Partition the local entries by splitter and exchange.
	send := make([][]byte, p)
	dst := 0
	for _, e := range local {
		for dst < p-1 {
			sp := splitters[dst]
			if e.value < sp.v || (e.value == sp.v && float64(e.rid) <= sp.rid) {
				break
			}
			dst++
		}
		send[dst] = appendEntry(send[dst], e)
	}
	recv := mp.Alltoallv(c, 21+attrTag<<4, send)
	var merged []entry
	for _, blk := range recv {
		merged = append(merged, decodeEntries(blk)...)
	}
	sortEntries(merged)
	return merged
}

func sortEntries(list []entry) {
	sort.Slice(list, func(a, b int) bool {
		if list[a].value != list[b].value {
			return list[a].value < list[b].value
		}
		return list[a].rid < list[b].rid
	})
}
