package scalparc

import (
	"fmt"
	"sort"
	"testing"

	"partree/internal/criteria"
	"partree/internal/dataset"
	"partree/internal/mp"
	"partree/internal/quest"
	"partree/internal/sprint"
	"partree/internal/tree"
)

func runBuild(t testing.TB, d *dataset.Dataset, p int, o Options) ([]Result, *mp.World) {
	t.Helper()
	w := mp.NewWorld(p, mp.SP2())
	blocks := d.BlockPartition(p)
	results := make([]Result, p)
	w.Run(func(c *mp.Comm) {
		results[c.Rank()] = Build(c, blocks[c.Rank()], o)
	})
	for r := 1; r < p; r++ {
		if diff := tree.Diff(results[0].Tree, results[r].Tree); diff != "" {
			t.Fatalf("rank %d tree differs from rank 0: %s", r, diff)
		}
	}
	return results, w
}

// TestMatchesSerialSprint: both hash strategies, at every processor
// count, grow exactly the serial SPRINT tree — on raw continuous data,
// the hardest case (global sorted threshold search across section
// boundaries).
func TestMatchesSerialSprint(t *testing.T) {
	for _, fn := range []int{2, 7} {
		d, err := quest.Generate(quest.Config{Function: fn, Seed: uint64(fn) * 31}, 1500)
		if err != nil {
			t.Fatal(err)
		}
		for _, binary := range []bool{true, false} {
			topts := tree.Options{Binary: binary, Criterion: criteria.Gini, MaxDepth: 7}
			want := sprint.Build(d, topts)
			for _, mode := range []Mode{FullHash, DistributedHash} {
				for _, p := range []int{1, 2, 3, 4, 8} {
					t.Run(fmt.Sprintf("fn%d/binary=%v/%s/p%d", fn, binary, mode, p), func(t *testing.T) {
						results, _ := runBuild(t, d, p, Options{Tree: topts, Mode: mode})
						if diff := tree.Diff(want, results[0].Tree); diff != "" {
							t.Fatalf("parallel %s differs from serial SPRINT: %s", mode, diff)
						}
					})
				}
			}
		}
	}
}

// TestHashMemoryScaling reproduces the §2.2 claim: parallel SPRINT's
// per-processor hash is O(N) while ScalParC's shard is O(N/P).
func TestHashMemoryScaling(t *testing.T) {
	d, err := quest.Generate(quest.Config{Function: 2, Seed: 11}, 4000)
	if err != nil {
		t.Fatal(err)
	}
	const p = 8
	topts := tree.Options{Binary: true, MaxDepth: 4}
	full, _ := runBuild(t, d, p, Options{Tree: topts, Mode: FullHash})
	dist, _ := runBuild(t, d, p, Options{Tree: topts, Mode: DistributedHash})

	maxFull, maxDist := 0, 0
	for r := 0; r < p; r++ {
		if full[r].MaxHashEntries > maxFull {
			maxFull = full[r].MaxHashEntries
		}
		if dist[r].MaxHashEntries > maxDist {
			maxDist = dist[r].MaxHashEntries
		}
	}
	// The full table holds every record of the level (≈N); the shard ≈N/P.
	if maxFull < d.Len()*9/10 {
		t.Fatalf("full-hash peak %d, expected ≈N=%d", maxFull, d.Len())
	}
	if maxDist > maxFull/(p/2) {
		t.Fatalf("distributed peak %d vs full %d — expected ≈N/P", maxDist, maxFull)
	}
}

// TestCommunicationScaling: §2.2's scalability claim is per processor —
// the all-to-all broadcast leaves every parallel-SPRINT rank receiving
// O(N) hash bytes per level regardless of P, while ScalParC's
// personalized exchanges are O(N/P) per rank. The separation appears as P
// grows: the per-rank volume of the full-hash mode must exceed the
// distributed mode's at P=16, and the full mode's per-rank volume must
// barely shrink when P doubles.
func TestCommunicationScaling(t *testing.T) {
	d, err := quest.Generate(quest.Config{Function: 2, Seed: 13}, 4000)
	if err != nil {
		t.Fatal(err)
	}
	topts := tree.Options{Binary: true, MaxDepth: 4}
	maxHashBytes := func(res []Result) int64 {
		var mx int64
		for _, r := range res {
			if r.HashBytes > mx {
				mx = r.HashBytes
			}
		}
		return mx
	}
	full16, _ := runBuild(t, d, 16, Options{Tree: topts, Mode: FullHash})
	dist16, _ := runBuild(t, d, 16, Options{Tree: topts, Mode: DistributedHash})
	if maxHashBytes(full16) <= maxHashBytes(dist16) {
		t.Fatalf("per-rank hash bytes at P=16: full %d not above distributed %d",
			maxHashBytes(full16), maxHashBytes(dist16))
	}
	full8, _ := runBuild(t, d, 8, Options{Tree: topts, Mode: FullHash})
	// O(N) per rank: doubling P must not halve the full-hash per-rank
	// volume (allow slack for tree-shape noise).
	if maxHashBytes(full16) < maxHashBytes(full8)*6/10 {
		t.Fatalf("full-hash per-rank hash volume shrank too much with P: %d (P=8) -> %d (P=16)",
			maxHashBytes(full8), maxHashBytes(full16))
	}
	dist8, _ := runBuild(t, d, 8, Options{Tree: topts, Mode: DistributedHash})
	// O(N/P) per rank: doubling P should shrink it substantially.
	if maxHashBytes(dist16) > maxHashBytes(dist8)*8/10 {
		t.Fatalf("distributed per-rank hash volume did not scale down: %d (P=8) -> %d (P=16)",
			maxHashBytes(dist8), maxHashBytes(dist16))
	}
}

// TestSampleSortGlobalOrder drives the pre-sorting substrate directly.
func TestSampleSortGlobalOrder(t *testing.T) {
	for _, p := range []int{1, 2, 3, 5, 8} {
		d, err := quest.Generate(quest.Config{Function: 1, Seed: 17}, 777)
		if err != nil {
			t.Fatal(err)
		}
		blocks := d.BlockPartition(p)
		w := mp.NewWorld(p, mp.SP2())
		sections := make([][]entry, p)
		w.Run(func(c *mp.Comm) {
			local := blocks[c.Rank()]
			raw := make([]entry, local.Len())
			for i := range raw {
				raw[i] = entry{value: local.Cont[quest.Age][i], rid: local.RID[i], class: local.Class[i]}
			}
			sections[c.Rank()] = sampleSort(c, raw, 0)
		})
		var joined []entry
		for _, sec := range sections {
			joined = append(joined, sec...)
		}
		if len(joined) != d.Len() {
			t.Fatalf("p=%d: %d entries after sort, want %d", p, len(joined), d.Len())
		}
		for i := 1; i < len(joined); i++ {
			a, b := joined[i-1], joined[i]
			if b.value < a.value || (b.value == a.value && b.rid < a.rid) {
				t.Fatalf("p=%d: global order broken at %d", p, i)
			}
		}
		// Conservation of rids.
		rids := make([]int64, len(joined))
		for i, e := range joined {
			rids[i] = e.rid
		}
		sort.Slice(rids, func(a, b int) bool { return rids[a] < rids[b] })
		for i, r := range rids {
			if r != int64(i) {
				t.Fatalf("p=%d: rid multiset changed", p)
			}
		}
	}
}

// TestModesAgree: both modes produce identical trees on identical input
// (only costs and memory differ).
func TestModesAgree(t *testing.T) {
	d, err := quest.Generate(quest.Config{Function: 6, Seed: 23}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	topts := tree.Options{Binary: true}
	a, _ := runBuild(t, d, 4, Options{Tree: topts, Mode: FullHash})
	b, _ := runBuild(t, d, 4, Options{Tree: topts, Mode: DistributedHash})
	if diff := tree.Diff(a[0].Tree, b[0].Tree); diff != "" {
		t.Fatalf("modes disagree: %s", diff)
	}
}

func TestPairCodecRoundtrip(t *testing.T) {
	in := []ridChild{{rid: 1, child: 0}, {rid: 99999, child: 3}, {rid: 0, child: 1}}
	out := decodePairs(encodePairs(in))
	if len(out) != len(in) {
		t.Fatalf("%d pairs", len(out))
	}
	for i := range in {
		if in[i] != out[i] {
			t.Fatalf("pair %d: %+v vs %+v", i, in[i], out[i])
		}
	}
}
