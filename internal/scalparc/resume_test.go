package scalparc

import (
	"fmt"
	"testing"
	"time"

	"partree/internal/core"
	"partree/internal/criteria"
	"partree/internal/dataset"
	"partree/internal/fault"
	"partree/internal/mp"
	"partree/internal/quest"
	"partree/internal/sprint"
	"partree/internal/tree"
)

// runScalparcFT runs one BuildFT attempt over the given store; the plan
// may kill every rank (a halted "process").
func runScalparcFT(t *testing.T, d *dataset.Dataset, p int, mode Mode, topts tree.Options,
	ft *core.FTOptions, plan *fault.Plan) ([]*Result, *mp.World) {
	t.Helper()
	w := mp.NewWorld(p, mp.SP2())
	if plan != nil {
		w.SetFaultPlan(plan)
	}
	blocks := d.BlockPartition(p)
	results := make([]*Result, p)
	done := make(chan struct{})
	var runErr any
	go func() {
		defer close(done)
		defer func() { runErr = recover() }()
		w.Run(func(c *mp.Comm) {
			r := BuildFT(c, blocks[c.Rank()], Options{Tree: topts, Mode: mode}, ft)
			results[c.Rank()] = &r
		})
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("run deadlocked (watchdog)")
	}
	if runErr != nil {
		t.Fatalf("run panicked: %v", runErr)
	}
	return results, w
}

// TestBuildFTResumeAfterHalt: the whole world is halted mid-build with
// its init checkpoints on disk; a fresh process — same size or elastic
// P' < P — resumes from the durable cut and finishes with the serial
// SPRINT tree on every rank.
func TestBuildFTResumeAfterHalt(t *testing.T) {
	d, err := quest.Generate(quest.Config{Function: 2, Seed: 62}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	topts := tree.Options{Binary: true, Criterion: criteria.Gini, MaxDepth: 7}
	want := sprint.Build(d, topts)
	const p = 4
	for _, mode := range []Mode{FullHash, DistributedHash} {
		for _, p2 := range []int{4, 2} {
			t.Run(fmt.Sprintf("%s/P%d-to-P%d", mode, p, p2), func(t *testing.T) {
				dir := t.TempDir()
				st, err := fault.OpenDiskStore(dir)
				if err != nil {
					t.Fatal(err)
				}
				var fs []fault.Fault
				for r := 0; r < p; r++ {
					fs = append(fs, fault.CrashAt(r, fault.CollStart, 4))
				}
				results, w := runScalparcFT(t, d, p, mode, topts, &core.FTOptions{Store: st}, fault.NewPlan(fs...))
				if err := st.Close(); err != nil {
					t.Fatal(err)
				}
				if len(w.DeadRanks()) != p {
					t.Fatalf("halt killed %v; want all %d ranks", w.DeadRanks(), p)
				}
				for _, r := range results {
					if r != nil {
						t.Fatal("a rank produced a result despite the halt")
					}
				}

				rst, err := fault.OpenDiskStore(dir)
				if err != nil {
					t.Fatal(err)
				}
				defer rst.Close()
				resumed, w2 := runScalparcFT(t, d, p2, mode, topts,
					&core.FTOptions{Store: rst, Resume: true}, nil)
				if len(w2.DeadRanks()) != 0 {
					t.Fatalf("resume run killed ranks %v", w2.DeadRanks())
				}
				for r, res := range resumed {
					if res == nil {
						t.Fatalf("rank %d returned no result", r)
					}
					if diff := tree.Diff(want, res.Tree); diff != "" {
						t.Fatalf("rank %d: resumed tree differs from serial SPRINT: %s", r, diff)
					}
				}
				if rst.Stats().Restores == 0 {
					t.Fatal("resume restored nothing — it rebuilt from scratch")
				}
			})
		}
	}
}
