package scalparc

import (
	"encoding/binary"
	"math"

	"partree/internal/mp"
	"partree/internal/tree"
)

// splitPhase applies the chosen splits, builds the rid → child mapping
// for every splitting node (by the selected hash strategy), partitions
// all attribute lists among the children, and returns the next frontier.
func (b *builder) splitPhase(frontier []nodeSlice, dists []int64, splits []candidate) []nodeSlice {
	nClasses := b.s.NumClasses()

	// Finalize node metadata and create children (replicated).
	type splitting struct {
		ni       int
		children int
	}
	var active []splitting
	sub := b.subActive()
	for ni, ns := range frontier {
		node := ns.node
		dist := dists[ni*nClasses : (ni+1)*nClasses]
		node.Dist = append(node.Dist[:0], dist...)
		node.N = 0
		for _, v := range dist {
			node.N += v
		}
		if node.N > 0 {
			node.Class = tree.MajorityClass(dist)
		}
		sp := splits[ni]
		if sp.attr < 0 {
			node.Kind = tree.Leaf
			node.Children = nil
			continue
		}
		node.Kind = sp.kind
		node.Attr = int(sp.attr)
		node.Thresh = sp.thresh
		node.Mask = sp.mask
		k := 2
		if sp.kind == tree.CatMultiway {
			k = b.s.Attrs[sp.attr].Cardinality()
		}
		node.Children = make([]*tree.Node, k)
		for i := range node.Children {
			node.Children[i] = &tree.Node{
				ID:    b.ids.Next(),
				Kind:  tree.Leaf,
				Class: node.Class,
				Depth: node.Depth + 1,
				Dist:  make([]int64, nClasses),
			}
		}
		active = append(active, splitting{ni: ni, children: k})
	}
	if sub {
		b.fams = nil // superseded by the families recorded below
	}
	if len(active) == 0 {
		return nil
	}

	// Route the winning attribute's local sections: rid → child. Record
	// ids are globally unique across nodes, so all nodes share one table.
	var pairs []ridChild
	var ops int64
	for _, sp := range active {
		ns := frontier[sp.ni]
		node := ns.node
		for _, e := range ns.lists[node.Attr] {
			pairs = append(pairs, ridChild{rid: e.rid, child: int32(routeEntry(node, e.value))})
		}
		ops += int64(len(ns.lists[node.Attr]))
	}
	b.c.Compute(float64(ops))

	// Build the lookup according to the mode.
	var lookup func(rids []int64) []int32
	switch b.o.Mode {
	case FullHash:
		lookup = b.fullHashLookup(pairs)
	case DistributedHash:
		lookup = b.distributedHashLookup(pairs)
	default:
		panic("scalparc: unknown mode")
	}

	// Partition every attribute list of every splitting node. All probes
	// of the level are batched into ONE lookup — for the distributed mode
	// this means a single update/query/answer exchange per level, which is
	// what makes ScalParC's communication O(N/P) messages-wise too (a
	// per-list exchange would pay the t_s startup once per node and
	// attribute).
	var allRids []int64
	type section struct {
		ni, a, off, n int
	}
	var sections []section
	for _, sp := range active {
		ns := frontier[sp.ni]
		for a := range b.s.Attrs {
			sec := ns.lists[a]
			sections = append(sections, section{ni: sp.ni, a: a, off: len(allRids), n: len(sec)})
			for _, e := range sec {
				allRids = append(allRids, e.rid)
			}
		}
	}
	// The lookup is collective in DistributedHash mode, so every rank
	// calls it exactly once per level, even with zero local probes.
	children := lookup(allRids)
	b.c.Compute(float64(len(allRids)))

	next := make([]nodeSlice, 0, len(active)*2)
	childSlices := make(map[int][]nodeSlice, len(active))
	for _, sp := range active {
		ns := frontier[sp.ni]
		node := ns.node
		slices := make([]nodeSlice, sp.children)
		for ci := range slices {
			slices[ci] = nodeSlice{node: node.Children[ci], lists: make([][]entry, b.s.NumAttrs())}
		}
		childSlices[sp.ni] = slices
	}
	for _, sec := range sections {
		ns := frontier[sec.ni]
		slices := childSlices[sec.ni]
		for i, e := range ns.lists[sec.a] {
			ci := children[sec.off+i]
			slices[ci].lists[sec.a] = append(slices[ci].lists[sec.a], e)
		}
	}

	// Keep children that are globally non-empty (local emptiness is not
	// enough: another rank may hold the records).
	var childCounts []int64
	for _, sp := range active {
		for _, cs := range childSlices[sp.ni] {
			childCounts = append(childCounts, int64(len(cs.lists[0])))
		}
	}
	if b.p > 1 {
		mp.AllreduceSum(b.c, childCounts, b.o.Tree.Reuse.SparseThreshold)
	}
	idx := 0
	for _, sp := range active {
		start := len(next)
		var counts []int64
		for _, cs := range childSlices[sp.ni] {
			if childCounts[idx] > 0 {
				next = append(next, cs)
				counts = append(counts, childCounts[idx])
			}
			idx++
		}
		if !sub || len(counts) == 0 {
			continue
		}
		// Record the family for the next level's sibling subtraction: the
		// kept children occupy next[start:], and the member with the most
		// training cases (ties: first) will be derived — the reduced counts
		// are global, so every rank fixes the same plan here.
		members := make([]int, len(counts))
		der := 0
		for i := range counts {
			members[i] = start + i
			if counts[i] > counts[der] {
				der = i
			}
		}
		b.fams = append(b.fams, scalFam{parentNi: sp.ni, parent: frontier[sp.ni].node, members: members, der: der})
	}
	return next
}

// ridChild is one hash-table entry.
type ridChild struct {
	rid   int64
	child int32
}

// fullHashLookup is parallel SPRINT's approach: an all-to-all broadcast
// materializes every rank's pairs everywhere, and lookups are local map
// probes. Memory: the whole frontier's record count per rank.
func (b *builder) fullHashLookup(pairs []ridChild) func([]int64) []int32 {
	all := pairs
	if b.p > 1 {
		enc := encodePairs(pairs)
		gathered := mp.Allgatherv(b.c, 14, enc)
		b.hashBytes += int64(len(gathered)) // every rank receives the full table
		all = decodePairs(gathered)
	}
	table := make(map[int64]int32, len(all))
	for _, pc := range all {
		table[pc.rid] = pc.child
	}
	b.c.Compute(float64(len(all)))
	if len(table) > b.maxHash {
		b.maxHash = len(table)
	}
	return func(rids []int64) []int32 {
		out := make([]int32, len(rids))
		for i, r := range rids {
			out[i] = table[r]
		}
		return out
	}
}

// distributedHashLookup is ScalParC's approach: pairs go to their rid's
// owner shard (one personalized exchange); lookups batch their rids to
// the owners and get the children back (two more personalized exchanges).
// Memory: only the shard.
func (b *builder) distributedHashLookup(pairs []ridChild) func([]int64) []int32 {
	owner := func(rid int64) int { return int(rid % int64(b.p)) }

	shard := make(map[int64]int32)
	if b.p == 1 {
		for _, pc := range pairs {
			shard[pc.rid] = pc.child
		}
	} else {
		send := make([][]byte, b.p)
		for _, pc := range pairs {
			send[owner(pc.rid)] = appendPair(send[owner(pc.rid)], pc)
		}
		for _, blk := range send {
			b.hashBytes += int64(len(blk))
		}
		recv := mp.Alltoallv(b.c, 15, send)
		for _, blk := range recv {
			for _, pc := range decodePairs(blk) {
				shard[pc.rid] = pc.child
			}
		}
	}
	b.c.Compute(float64(len(shard)))
	if len(shard) > b.maxHash {
		b.maxHash = len(shard)
	}

	return func(rids []int64) []int32 {
		if b.p == 1 {
			out := make([]int32, len(rids))
			for i, r := range rids {
				out[i] = shard[r]
			}
			return out
		}
		// Batch queries per owner, preserving per-owner order so the
		// responses align.
		queries := make([][]byte, b.p)
		where := make([][]int32, b.p) // positions in the output per owner
		for i, r := range rids {
			o := owner(r)
			queries[o] = binary.LittleEndian.AppendUint64(queries[o], uint64(r))
			where[o] = append(where[o], int32(i))
		}
		for _, blk := range queries {
			b.hashBytes += int64(len(blk))
		}
		reqs := mp.Alltoallv(b.c, 16, queries)
		answers := make([][]byte, b.p)
		for src, blk := range reqs {
			resp := make([]byte, 0, len(blk)/2)
			for off := 0; off+8 <= len(blk); off += 8 {
				rid := int64(binary.LittleEndian.Uint64(blk[off:]))
				resp = binary.LittleEndian.AppendUint32(resp, uint32(shard[rid]))
			}
			answers[src] = resp
			b.c.Compute(float64(len(blk) / 8))
		}
		for _, blk := range answers {
			b.hashBytes += int64(len(blk))
		}
		got := mp.Alltoallv(b.c, 17, answers)
		out := make([]int32, len(rids))
		for o := 0; o < b.p; o++ {
			blk := got[o]
			for j, pos := range where[o] {
				out[pos] = int32(binary.LittleEndian.Uint32(blk[j*4:]))
			}
		}
		return out
	}
}

// routeEntry applies a node's test to a raw attribute-list value.
func routeEntry(n *tree.Node, value float64) int {
	switch n.Kind {
	case tree.ContBinary:
		if value <= n.Thresh {
			return 0
		}
		return 1
	case tree.CatBinary:
		if n.Mask&(1<<uint(int32(value))) != 0 {
			return 0
		}
		return 1
	case tree.CatMultiway:
		return int(int32(value))
	default:
		panic("scalparc: routing through a leaf")
	}
}

// Pair wire helpers: rid int64 + child int32.

func appendPair(buf []byte, pc ridChild) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, uint64(pc.rid))
	return binary.LittleEndian.AppendUint32(buf, uint32(pc.child))
}

func encodePairs(pairs []ridChild) []byte {
	buf := make([]byte, 0, len(pairs)*12)
	for _, pc := range pairs {
		buf = appendPair(buf, pc)
	}
	return buf
}

func decodePairs(buf []byte) []ridChild {
	out := make([]ridChild, 0, len(buf)/12)
	for off := 0; off+12 <= len(buf); off += 12 {
		out = append(out, ridChild{
			rid:   int64(binary.LittleEndian.Uint64(buf[off:])),
			child: int32(binary.LittleEndian.Uint32(buf[off+8:])),
		})
	}
	return out
}

// Entry wire helpers for the sample sort: value float64 + rid int64 +
// class int32.

func appendEntry(buf []byte, e entry) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(e.value))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(e.rid))
	return binary.LittleEndian.AppendUint32(buf, uint32(e.class))
}

func decodeEntries(buf []byte) []entry {
	out := make([]entry, 0, len(buf)/20)
	for off := 0; off+20 <= len(buf); off += 20 {
		out = append(out, entry{
			value: math.Float64frombits(binary.LittleEndian.Uint64(buf[off:])),
			rid:   int64(binary.LittleEndian.Uint64(buf[off+8:])),
			class: int32(binary.LittleEndian.Uint32(buf[off+16:])),
		})
	}
	return out
}
