package predict_test

import (
	"sync"
	"testing"

	"partree/internal/dataset"
	"partree/internal/flat"
	"partree/internal/predict"
	"partree/internal/quest"
	"partree/internal/tree"
)

func compiled(t *testing.T, n int, seed uint64) (*flat.Model, *dataset.Dataset) {
	t.Helper()
	d, err := quest.Generate(quest.Config{Function: 2, Seed: seed}, n)
	if err != nil {
		t.Fatal(err)
	}
	tr := tree.BuildHunt(d.Slice(0, n/2), tree.Options{Binary: true, MaxDepth: 10})
	m, err := flat.Compile(tr)
	if err != nil {
		t.Fatal(err)
	}
	return m, d
}

// TestPredictBatchMatchesSerial: the sharded batch path must agree with
// row-at-a-time prediction on every row, for batch sizes around the
// inline/sharded threshold.
func TestPredictBatchMatchesSerial(t *testing.T) {
	m, d := compiled(t, 6000, 9)
	pool := predict.NewPool(4)
	defer pool.Close()
	eng := predict.NewEngine(pool, m)
	for _, n := range []int{1, 17, 255, 256, 4096, d.Len()} {
		batch := d.Slice(0, n)
		out := make([]int32, n)
		if err := eng.PredictBatch(batch, out); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if want := m.Predict(batch, i); out[i] != want {
				t.Fatalf("n=%d row %d: batch %d, serial %d", n, i, out[i], want)
			}
		}
	}
	st := eng.Stats()
	if st.Batches != 6 || st.Rows == 0 {
		t.Fatalf("engine stats not recorded: %+v", st)
	}
	if ps := pool.Stats(); ps.Rows != st.Rows {
		t.Fatalf("pool rows %d != engine rows %d", ps.Rows, st.Rows)
	}
}

// TestPredictBatchConcurrent hammers one pool from many goroutines and
// two engines (the serving hot-swap shape) under the race detector.
func TestPredictBatchConcurrent(t *testing.T) {
	m1, d := compiled(t, 4000, 3)
	m2, _ := compiled(t, 4000, 4)
	pool := predict.NewPool(4)
	defer pool.Close()
	engines := []*predict.Engine{predict.NewEngine(pool, m1), predict.NewEngine(pool, m2)}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			eng := engines[g%2]
			out := make([]int32, d.Len())
			for iter := 0; iter < 5; iter++ {
				if err := eng.PredictBatch(d, out); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if ps := pool.Stats(); ps.Batches != 40 || ps.Rows != int64(40*d.Len()) {
		t.Fatalf("pool counters off: %+v", ps)
	}
}

// TestPredictBatchErrors covers the guard rails: short output buffer and
// mismatched schema.
func TestPredictBatchErrors(t *testing.T) {
	m, d := compiled(t, 1000, 5)
	pool := predict.NewPool(2)
	defer pool.Close()
	eng := predict.NewEngine(pool, m)
	if err := eng.PredictBatch(d, make([]int32, d.Len()-1)); err == nil {
		t.Error("short output buffer accepted")
	}
	other := dataset.New(&dataset.Schema{
		Attrs:   []dataset.Attribute{{Name: "only", Kind: dataset.Continuous}},
		Classes: []string{"a", "b"},
	}, 0)
	if err := eng.PredictBatch(other, nil); err == nil {
		t.Error("mismatched schema accepted")
	}
}

// TestStatsThroughput sanity-checks the derived metric.
func TestStatsThroughput(t *testing.T) {
	s := predict.Stats{Rows: 2000, WallNS: 1e9}
	if got := s.Throughput(); got != 2000 {
		t.Fatalf("throughput %v, want 2000", got)
	}
	if (predict.Stats{}).Throughput() != 0 {
		t.Fatal("zero stats must report zero throughput")
	}
}
