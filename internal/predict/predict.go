// Package predict is the batched inference engine over compiled models —
// single flat trees (internal/flat) and fused forests (internal/forest),
// abstracted as Predictors. A Pool owns a fixed set of worker goroutines —
// one per available CPU by default — that serve row shards; an Engine
// binds a Pool to one Predictor and exposes PredictBatch, which shards a
// columnar batch across the workers. Pools are model-agnostic and
// long-lived, so hot-swapping a model (the serving registry does this)
// creates a fresh Engine without tearing down or leaking worker
// goroutines.
//
// Both Pool and Engine keep always-on counters (batches, rows, busy and
// wall nanoseconds) in the spirit of the training-side observability
// layer: cheap enough to never turn off, exported through Stats and the
// serving /metrics endpoint.
package predict

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"partree/internal/dataset"
	"partree/internal/flat"
)

// minShard is the smallest number of rows worth dispatching to a worker;
// below it the per-shard synchronization dominates the row loop.
const minShard = 256

// Predictor is anything that classifies a contiguous row range of a
// columnar batch — a single compiled tree (*flat.Model) or a fused forest
// (*forest.Fused). The engine shards batches over Predictors without
// knowing which; PredictInto must be safe for concurrent calls on
// disjoint [lo, hi) ranges.
type Predictor interface {
	PredictInto(d *dataset.Dataset, out []int32, lo, hi int)
}

// task is one contiguous row shard of one batch.
type task struct {
	pred   Predictor
	d      *dataset.Dataset
	out    []int32
	lo, hi int
	done   *sync.WaitGroup
}

// Pool is a reusable set of prediction workers shared by any number of
// Engines. It is safe for concurrent use; Close may only be called after
// every PredictBatch call has returned.
type Pool struct {
	tasks   chan task
	wg      sync.WaitGroup
	workers int

	batches atomic.Int64
	rows    atomic.Int64
	busyNS  atomic.Int64 // summed worker time across shards
}

// NewPool starts a pool with the given number of workers; workers <= 0
// means GOMAXPROCS.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{tasks: make(chan task, 4*workers), workers: workers}
	p.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go p.work()
	}
	return p
}

func (p *Pool) work() {
	defer p.wg.Done()
	for t := range p.tasks {
		start := time.Now()
		t.pred.PredictInto(t.d, t.out, t.lo, t.hi)
		p.busyNS.Add(time.Since(start).Nanoseconds())
		t.done.Done()
	}
}

// Workers returns the pool size.
func (p *Pool) Workers() int { return p.workers }

// Close stops the workers and waits for them to drain. No PredictBatch
// call may be in flight or issued afterwards.
func (p *Pool) Close() {
	close(p.tasks)
	p.wg.Wait()
}

// Stats is a snapshot of engine or pool counters.
type Stats struct {
	Batches int64 // PredictBatch calls completed
	Rows    int64 // rows classified
	// WallNS is the summed wall-clock latency of the batches;
	// Rows/(WallNS/1e9) is the observed batch throughput.
	WallNS int64
	// BusyNS is the summed per-worker shard time (pool stats only); it
	// exceeds WallNS when shards of one batch run in parallel.
	BusyNS int64
}

// Throughput returns rows per second over the recorded wall time, or 0
// before any batch completed.
func (s Stats) Throughput() float64 {
	if s.WallNS <= 0 {
		return 0
	}
	return float64(s.Rows) / (float64(s.WallNS) / 1e9)
}

// Stats snapshots the pool-wide counters.
func (p *Pool) Stats() Stats {
	return Stats{
		Batches: p.batches.Load(),
		Rows:    p.rows.Load(),
		BusyNS:  p.busyNS.Load(),
	}
}

// Engine binds a Pool to one Predictor — a compiled tree or a fused
// forest. Engines are cheap: a hot-swap builds a new Engine on the shared
// Pool. Safe for concurrent PredictBatch calls.
type Engine struct {
	pool   *Pool
	pred   Predictor
	schema *dataset.Schema

	batches atomic.Int64
	rows    atomic.Int64
	wallNS  atomic.Int64
}

// NewEngine returns an engine serving the compiled tree m on pool p.
func NewEngine(p *Pool, m *flat.Model) *Engine {
	if m == nil {
		panic("predict: NewEngine requires a model")
	}
	return NewBatchEngine(p, m, m.Schema)
}

// NewBatchEngine returns an engine sharding batches over pred, which
// classifies data laid out under schema. The forest serving path uses
// this with a *forest.Fused predictor.
func NewBatchEngine(p *Pool, pred Predictor, schema *dataset.Schema) *Engine {
	if p == nil || pred == nil || schema == nil {
		panic("predict: NewBatchEngine requires a pool, a predictor and a schema")
	}
	return &Engine{pool: p, pred: pred, schema: schema}
}

// Schema returns the schema the engine's predictor routes on.
func (e *Engine) Schema() *dataset.Schema { return e.schema }

// PredictBatch classifies every row of d into out (len(out) must be at
// least d.Len()), sharding the rows across the pool's workers. The
// dataset must use the model's schema layout (same attribute count and
// kinds). Small batches run inline on the calling goroutine.
func (e *Engine) PredictBatch(d *dataset.Dataset, out []int32) error {
	n := d.Len()
	if len(out) < n {
		return fmt.Errorf("predict: output buffer holds %d rows, batch has %d", len(out), n)
	}
	if err := compatibleSchemas(e.schema, d.Schema); err != nil {
		return err
	}
	start := time.Now()
	shards := e.pool.workers * 2
	if max := (n + minShard - 1) / minShard; shards > max {
		shards = max
	}
	if shards <= 1 {
		e.pred.PredictInto(d, out, 0, n)
	} else {
		var done sync.WaitGroup
		done.Add(shards)
		for s := 0; s < shards; s++ {
			lo := s * n / shards
			hi := (s + 1) * n / shards
			e.pool.tasks <- task{pred: e.pred, d: d, out: out, lo: lo, hi: hi, done: &done}
		}
		done.Wait()
	}
	ns := time.Since(start).Nanoseconds()
	e.batches.Add(1)
	e.rows.Add(int64(n))
	e.wallNS.Add(ns)
	e.pool.batches.Add(1)
	e.pool.rows.Add(int64(n))
	return nil
}

// Stats snapshots the engine counters.
func (e *Engine) Stats() Stats {
	return Stats{
		Batches: e.batches.Load(),
		Rows:    e.rows.Load(),
		WallNS:  e.wallNS.Load(),
	}
}

// compatibleSchemas verifies that data laid out under got can be routed
// by a model compiled under want: same attribute count and, per
// position, the same kind. Value names may differ (the server re-encodes
// through the model schema, so they match by construction there).
func compatibleSchemas(want, got *dataset.Schema) error {
	if got == nil {
		return fmt.Errorf("predict: batch has no schema")
	}
	if want.NumAttrs() != got.NumAttrs() {
		return fmt.Errorf("predict: batch has %d attributes, model expects %d", got.NumAttrs(), want.NumAttrs())
	}
	for i := range want.Attrs {
		if want.Attrs[i].Kind != got.Attrs[i].Kind {
			return fmt.Errorf("predict: attribute %d (%s) is %v in batch, model expects %v",
				i, want.Attrs[i].Name, got.Attrs[i].Kind, want.Attrs[i].Kind)
		}
	}
	return nil
}
