// Package vertical implements the attribute-partitioned ("DP-att")
// parallel formulation that the paper's related-work section (§2.2,
// Chattratichat et al. [8] and Pearson [19]) contrasts with its own
// record-partitioned approaches: the training set is partitioned
// *vertically* — each processor stores the full class column but only the
// columns of the attributes it owns — and every processor evaluates
// candidate splits only for its own attributes.
//
// Per frontier node: each rank scores its attributes locally (exactly, no
// histograms lost — including native binary threshold search on its
// continuous columns), the per-rank best candidates are allgathered, the
// globally best test is selected identically everywhere, and the owner of
// the winning attribute routes the node's records and broadcasts the
// child assignment (one byte per record). Everyone applies the update to
// the shared record→node map and the tree grows replicated on all ranks.
//
// The scheme is load balanced across attributes and exchanges only
// candidates plus one assignment byte per record per level — but it
// cannot use more processors than there are attributes, the scalability
// ceiling the paper points out. Ranks beyond the attribute count idle,
// and the speedup saturates at A_d — reproduced by BenchmarkVertical and
// TestVerticalSaturates.
//
// Tree identity: on any data, vertical produces exactly the tree of the
// serial depth-first Hunt builder (same exact split search, breadth-first
// order does not change per-node decisions).
package vertical

import (
	"math"

	"partree/internal/criteria"
	"partree/internal/dataset"
	"partree/internal/mp"
	"partree/internal/tree"
)

// Build grows the tree with the attribute-partitioned formulation. Every
// rank holds the full dataset d (vertical partitioning shares the rows;
// only column *work* is divided — the storage division is modeled by the
// cost accounting, which charges each rank only for the columns it owns).
// Attributes are owned round-robin: attribute a belongs to rank a mod P.
func Build(c *mp.Comm, d *dataset.Dataset, o tree.Options) *tree.Tree {
	o = o.WithDefaults()
	s := d.Schema
	p := c.Size()
	root := &tree.Node{Kind: tree.Leaf, Dist: make([]int64, s.NumClasses())}
	ids := tree.NewIDGen(1)

	type item struct {
		node *tree.Node
		idx  []int32
	}
	frontier := []item{{node: root, idx: d.AllIndex()}}
	for len(frontier) > 0 {
		var next []item

		// Score phase: each rank evaluates its own attributes for every
		// frontier node; candidates are exchanged and the decision is
		// replicated.
		cands := make([]float64, 0, len(frontier)*candFloats)
		for _, it := range frontier {
			cands = append(cands, bestLocalCandidate(c, d, it.idx, it.node.Depth, o)...)
		}
		all := cands
		if p > 1 {
			all = mp.Allgatherv(c, 1, cands)
		}

		for fi, it := range frontier {
			n := it.node
			// Node distribution (every rank has the class column).
			dist := make([]int64, s.NumClasses())
			for _, i := range it.idx {
				dist[d.Class[i]]++
			}
			n.Dist = dist
			n.N = int64(len(it.idx))
			if n.N > 0 {
				n.Class = tree.MajorityClass(dist)
			}
			best, ok := selectGlobal(all, fi, len(frontier), p, o)
			if !ok {
				n.Kind = tree.Leaf
				n.Children = nil
				continue
			}
			n.Kind = best.kind
			n.Attr = best.attr
			n.Thresh = best.thresh
			n.Mask = best.mask
			k := 2
			if best.kind == tree.CatMultiway {
				k = s.Attrs[best.attr].Cardinality()
			}
			n.Children = make([]*tree.Node, k)
			for i := range n.Children {
				n.Children[i] = &tree.Node{
					ID:    ids.Next(),
					Kind:  tree.Leaf,
					Class: n.Class,
					Depth: n.Depth + 1,
					Dist:  make([]int64, s.NumClasses()),
				}
			}

			// Routing phase: the winning attribute's owner computes the
			// child of every record at the node and broadcasts one byte per
			// record; other ranks cannot route (they do not own the
			// column).
			owner := best.attr % p
			var assign []byte
			if c.Rank() == owner {
				assign = make([]byte, len(it.idx))
				for j, i := range it.idx {
					assign[j] = byte(n.RouteRow(d, int(i)))
				}
				c.Compute(float64(len(it.idx)))
			} else {
				assign = make([]byte, len(it.idx))
			}
			if p > 1 {
				mp.Bcast(c, assign, owner)
			}
			parts := make([][]int32, k)
			for j, i := range it.idx {
				parts[assign[j]] = append(parts[assign[j]], i)
			}
			for ci, part := range parts {
				if len(part) > 0 {
					next = append(next, item{node: n.Children[ci], idx: part})
				}
			}
		}
		frontier = next
	}
	return &tree.Tree{Schema: s, Root: root}
}

// candFloats is the fixed width of one node's candidate record in the
// allgather: (score, attr, kindCode, thresh, maskLo, maskHi, valid).
const candFloats = 7

type cand struct {
	score  float64
	attr   int
	kind   tree.SplitKind
	thresh float64
	mask   uint64
}

// bestLocalCandidate scores the caller's own attributes on one node and
// returns the encoded best candidate (valid=0 when none). The modeled
// compute cost covers only the owned columns — the point of vertical
// partitioning.
func bestLocalCandidate(c *mp.Comm, d *dataset.Dataset, idx []int32, depth int, o tree.Options) []float64 {
	s := d.Schema
	p := c.Size()
	nClasses := s.NumClasses()

	dist := make([]int64, nClasses)
	for _, i := range idx {
		dist[d.Class[i]]++
	}
	var n int64 = int64(len(idx))
	invalid := []float64{0, 0, 0, 0, 0, 0, 0}
	if n < int64(o.MinSplit) || (o.MaxDepth > 0 && depth >= o.MaxDepth) {
		return invalid
	}
	parent := o.Criterion.Impurity(dist, n)
	if parent == 0 {
		return invalid
	}

	best := cand{attr: -1}
	bestGain := o.MinGain
	for a := c.Rank(); a < s.NumAttrs(); a += p {
		attr := s.Attrs[a]
		var cd cand
		var score float64
		var valid bool
		if attr.Kind == dataset.Categorical {
			h := criteria.GetHist(attr.Cardinality(), nClasses)
			criteria.HistInto(h, d.Cat[a], d.Class, idx)
			c.Compute(float64(len(idx)) + float64(attr.Cardinality()*nClasses))
			cd.attr = a
			if o.Binary {
				cd.kind = tree.CatBinary
			} else {
				cd.kind = tree.CatMultiway
			}
			cd.mask, score, valid = criteria.ScoreHist(h, o.Criterion, o.Binary)
			criteria.PutHist(h)
		} else {
			values := make([]float64, len(idx))
			classes := make([]int32, len(idx))
			for j, i := range idx {
				values[j] = d.Cont[a][i]
				classes[j] = d.Class[i]
			}
			criteria.SortPairs(values, classes)
			// Per-node sort cost, as in C4.5 (vertical owners sort their
			// own column only).
			c.Compute(float64(len(idx)) * math.Log2(float64(len(idx)+1)))
			cs, ok := criteria.BestContinuousSplit(values, classes, nClasses, o.Criterion)
			if ok {
				cd = cand{attr: a, kind: tree.ContBinary, thresh: cs.Thresh}
				score, valid = cs.Score, true
			}
		}
		if !valid {
			continue
		}
		if gain := parent - score; gain > bestGain {
			bestGain = gain
			cd.score = score
			best = cd
		}
	}
	if best.attr < 0 {
		return invalid
	}
	return []float64{
		best.score,
		float64(best.attr),
		float64(best.kind),
		best.thresh,
		float64(uint32(best.mask)),
		float64(best.mask >> 32),
		1,
	}
}

// selectGlobal picks the winning candidate of node fi from the gathered
// matrix (rank-major): highest gain wins, ties broken by ascending
// attribute index — identical on every rank, and identical to the serial
// builders' tie-break because attribute ownership is a partition of the
// attribute order.
func selectGlobal(all []float64, fi, numNodes, p int, o tree.Options) (cand, bool) {
	best := cand{attr: -1}
	bestScore := math.Inf(1)
	for r := 0; r < p; r++ {
		off := (r*numNodes + fi) * candFloats
		if off+candFloats > len(all) || all[off+6] != 1 {
			continue
		}
		score := all[off]
		attr := int(all[off+1])
		if score < bestScore || (score == bestScore && best.attr >= 0 && attr < best.attr) {
			bestScore = score
			best = cand{
				score:  score,
				attr:   attr,
				kind:   tree.SplitKind(all[off+2]),
				thresh: all[off+3],
				mask:   uint64(all[off+4]) | uint64(all[off+5])<<32,
			}
		}
	}
	return best, best.attr >= 0
}
