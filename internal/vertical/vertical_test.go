package vertical

import (
	"fmt"
	"testing"

	"partree/internal/criteria"
	"partree/internal/dataset"
	"partree/internal/mp"
	"partree/internal/quest"
	"partree/internal/tree"
)

func runBuild(t testing.TB, d *dataset.Dataset, p int, o tree.Options) (*tree.Tree, *mp.World) {
	t.Helper()
	w := mp.NewWorld(p, mp.SP2())
	trees := make([]*tree.Tree, p)
	w.Run(func(c *mp.Comm) {
		trees[c.Rank()] = Build(c, d, o)
	})
	for r := 1; r < p; r++ {
		if diff := tree.Diff(trees[0], trees[r]); diff != "" {
			t.Fatalf("rank %d tree differs: %s", r, diff)
		}
	}
	return trees[0], w
}

// TestMatchesHunt: the attribute-partitioned formulation reproduces the
// serial depth-first builder exactly, including native continuous
// thresholds, for any processor count (even P > number of attributes).
func TestMatchesHunt(t *testing.T) {
	for _, fn := range []int{2, 7} {
		d, err := quest.Generate(quest.Config{Function: fn, Seed: uint64(fn)}, 1200)
		if err != nil {
			t.Fatal(err)
		}
		for _, binary := range []bool{true, false} {
			o := tree.Options{Binary: binary, Criterion: criteria.Entropy, MaxDepth: 7}
			want := tree.BuildHunt(d, o)
			for _, p := range []int{1, 2, 3, 5, 9, 12} {
				t.Run(fmt.Sprintf("fn%d/binary=%v/p%d", fn, binary, p), func(t *testing.T) {
					got, _ := runBuild(t, d, p, o)
					if diff := tree.Diff(want, got); diff != "" {
						t.Fatalf("vertical differs from Hunt: %s", diff)
					}
				})
			}
		}
	}
}

// TestVerticalSaturates reproduces the related-work claim the paper makes
// about DP-att: it "does not scale well with increasing number of
// processors" — beyond one processor per attribute there is nothing left
// to divide, so the modeled runtime stops improving.
func TestVerticalSaturates(t *testing.T) {
	d, err := quest.Generate(quest.Config{Function: 2, Seed: 3}, 4000)
	if err != nil {
		t.Fatal(err)
	}
	o := tree.Options{Binary: true, MaxDepth: 8}
	attrs := d.Schema.NumAttrs() // 9
	_, wAt := runBuild(t, d, attrs, o)
	_, wBeyond := runBuild(t, d, attrs+7, o)
	tAt, tBeyond := wAt.MaxClock(), wBeyond.MaxClock()
	// No meaningful gain past P = #attributes (allow 5% for reduced
	// broadcast fan-out noise).
	if tBeyond < tAt*0.95 {
		t.Fatalf("vertical kept speeding up past #attrs: %.4f (P=%d) -> %.4f (P=%d)",
			tAt, attrs, tBeyond, attrs+7)
	}
	// And it does speed up from 1 to #attrs.
	_, w1 := runBuild(t, d, 1, o)
	if w1.MaxClock() < tAt*1.5 {
		t.Fatalf("vertical shows no parallelism: serial %.4f vs P=%d %.4f", w1.MaxClock(), attrs, tAt)
	}
}

// TestVerticalLoadConcentration: the slowest rank's compute is bounded by
// its owned attributes, not by the record count — attribute ownership is
// the unit of balance.
func TestVerticalComputeDividedByAttrs(t *testing.T) {
	d, err := quest.Generate(quest.Config{Function: 2, Seed: 5}, 3000)
	if err != nil {
		t.Fatal(err)
	}
	o := tree.Options{Binary: true, MaxDepth: 6}
	_, w1 := runBuild(t, d, 1, o)
	_, w3 := runBuild(t, d, 3, o)
	comp1 := w1.RankTraffic(0).CompTime
	var maxComp3 float64
	for r := 0; r < 3; r++ {
		if ct := w3.RankTraffic(r).CompTime; ct > maxComp3 {
			maxComp3 = ct
		}
	}
	if maxComp3 > comp1*0.6 {
		t.Fatalf("3-way attribute split left one rank with %.1f%% of the serial compute",
			100*maxComp3/comp1)
	}
}
