package mp

import (
	"math"
	"os"
	"reflect"
	"strings"
	"testing"
)

func TestTopologyHops(t *testing.T) {
	cases := []struct {
		topo           Topology
		src, dst, want int
	}{
		{NewHypercube(8), 0, 0, 0},
		{NewHypercube(8), 0, 7, 3}, // Hamming distance of 000↔111
		{NewHypercube(8), 5, 6, 2}, // 101↔110
		{NewHypercube(6), 0, 5, 2}, // non-pow2 still prices by Hamming
		{NewFlatSwitched(8), 0, 7, 1},
		{NewFlatSwitched(8), 3, 3, 0},
		{NewRing(8), 0, 7, 1}, // wraparound
		{NewRing(8), 0, 4, 4}, // diameter
		{NewRing(5), 1, 4, 2},
		{NewTorus2D(16), 0, 15, 2}, // 4×4: (0,0)↔(3,3) with wrap = 1+1
		{NewTorus2D(16), 0, 10, 4}, // (0,0)↔(2,2) = 2+2
		{NewTorus2D(12), 0, 11, 2}, // 4×3 near-square: (0,0)↔(3,2) wrap = 1+1
		{NewFatTree(16), 0, 1, 2},  // same leaf switch (arity 4): up+down
		{NewFatTree(16), 0, 4, 4},  // sibling leaves
		{NewFatTree(16), 0, 15, 4}, // 16 = one level-2 switch
		{NewFatTree(64), 0, 63, 6}, // needs the third level
	}
	for _, tc := range cases {
		if got := tc.topo.Hops(tc.src, tc.dst); got != tc.want {
			t.Errorf("%s(%d): Hops(%d,%d) = %d, want %d",
				tc.topo.Name(), tc.topo.Size(), tc.src, tc.dst, got, tc.want)
		}
		if sym := tc.topo.Hops(tc.dst, tc.src); sym != tc.topo.Hops(tc.src, tc.dst) {
			t.Errorf("%s: Hops not symmetric for (%d,%d)", tc.topo.Name(), tc.src, tc.dst)
		}
	}
}

func TestTorusDims(t *testing.T) {
	for _, tc := range []struct{ p, rows, cols int }{
		{16, 4, 4}, {12, 3, 4}, {6, 2, 3}, {7, 1, 7}, {1, 1, 1},
	} {
		tor := NewTorus2D(tc.p)
		r, c := tor.Dims()
		if r*c != tc.p || r != tc.rows || c != tc.cols {
			t.Errorf("Torus2D(%d): dims %d×%d, want %d×%d", tc.p, r, c, tc.rows, tc.cols)
		}
	}
}

func TestNewTopologyNames(t *testing.T) {
	for _, name := range TopologyNames() {
		topo, err := NewTopology(name, 8)
		if err != nil || topo.Name() != name || topo.Size() != 8 {
			t.Errorf("NewTopology(%q, 8) = %v, %v", name, topo, err)
		}
	}
	if topo, err := NewTopology("", 4); err != nil || topo.Name() != "hypercube" {
		t.Errorf("empty topology name must default to hypercube, got %v, %v", topo, err)
	}
	if _, err := NewTopology("moebius", 4); err == nil {
		t.Error("unknown topology name must error")
	}
}

// TestHopLatencyPricing: with TH > 0 a send pays TH per hop on the
// world's topology; with TH = 0 (the default) every topology prices
// identically to the historic flat cost.
func TestHopLatencyPricing(t *testing.T) {
	const th = 1e-5
	run := func(topo string, m Machine) float64 {
		w := NewWorld(8, m)
		tp, err := NewTopology(topo, 8)
		if err != nil {
			t.Fatal(err)
		}
		w.SetTopology(tp)
		w.Run(func(c *Comm) {
			if c.Rank() == 0 {
				c.Send(7, 1, nil, 100)
			} else if c.Rank() == 7 {
				c.Recv(0, 1)
			}
		})
		return w.Clock(0)
	}
	base := SP2().SendCost(100)
	if got := run("hypercube", SP2().WithHopLatency(th)); math.Abs(got-(base+3*th)) > 1e-18 {
		t.Errorf("hypercube 0→7 with t_h: clock %v, want %v", got, base+3*th)
	}
	if got := run("flat", SP2().WithHopLatency(th)); math.Abs(got-(base+th)) > 1e-18 {
		t.Errorf("flat 0→7 with t_h: clock %v, want %v", got, base+th)
	}
	for _, topo := range TopologyNames() {
		if got := run(topo, SP2()); got != base {
			t.Errorf("%s with t_h=0: clock %v, want flat %v", topo, got, base)
		}
	}
}

func TestSetTopologyValidates(t *testing.T) {
	w := NewWorld(4, SP2())
	mustPanic(t, func() { w.SetTopology(nil) })
	mustPanic(t, func() { w.SetTopology(NewRing(8)) })
	w.SetTopology(NewRing(4))
	w.Reset()
	if w.Topology().Name() != "ring" {
		t.Error("Reset must preserve the topology")
	}
}

func TestSetCollConfigValidates(t *testing.T) {
	w := NewWorld(4, SP2())
	mustPanic(t, func() { w.SetCollConfig(CollConfig{Allreduce: "bogus"}) })
	mustPanic(t, func() { w.SetCollConfig(CollConfig{Bcast: AlgoRing}) })
	w.SetCollConfig(CollConfig{Allreduce: AlgoRing, Allgather: AlgoGatherBcast})
	w.Reset()
	if w.CollConfig().Allreduce != AlgoRing {
		t.Error("Reset must preserve the collective config")
	}
}

func TestParseCollSpec(t *testing.T) {
	for _, tc := range []struct {
		spec string
		want CollConfig
		ok   bool
	}{
		{"", CollConfig{}, true},
		{"default", CollConfig{}, true},
		{"ring", CollConfig{Allreduce: AlgoRing}, true},
		{"auto", CollConfig{Allreduce: AlgoAuto, Bcast: AlgoAuto}, true},
		{"allreduce=rhd,bcast=scatter-ag", CollConfig{Allreduce: AlgoRecHalving, Bcast: AlgoScatterAllgather}, true},
		{"allgather=gather+bcast", CollConfig{Allgather: AlgoGatherBcast}, true},
		{"bogus", CollConfig{}, false},
		{"barrier=ring", CollConfig{}, false},
		{"allreduce=scatter-ag", CollConfig{}, false},
	} {
		got, err := ParseCollSpec(tc.spec)
		if (err == nil) != tc.ok || got != tc.want {
			t.Errorf("ParseCollSpec(%q) = %+v, %v; want %+v, ok=%v", tc.spec, got, err, tc.want, tc.ok)
		}
	}
}

// --- satellite 1: Bcast must panic on a receive-buffer length mismatch
// instead of silently truncating and forwarding corrupted data.

func TestBcastLengthMismatchPanics(t *testing.T) {
	w := NewWorld(4, SP2())
	defer func() {
		e := recover()
		if e == nil {
			t.Fatal("Bcast with a short non-root buffer must panic")
		}
		if !strings.Contains(strings.ToLower(mustString(e)), "length mismatch") {
			t.Fatalf("unexpected panic: %v", e)
		}
	}()
	w.Run(func(c *Comm) {
		n := 16
		if c.Rank() == 2 {
			n = 8 // too short: would silently truncate before the fix
		}
		x := make([]int64, n)
		Bcast(c, x, 0)
	})
}

func mustString(e any) string {
	if s, ok := e.(string); ok {
		return s
	}
	if err, ok := e.(error); ok {
		return err.Error()
	}
	return ""
}

// --- satellite 3: empty contributions ride the Allgatherv ring as nil
// payloads — no framing needed, ordering and accounting intact.

func TestAllgathervEmptyContributions(t *testing.T) {
	const p = 5
	for _, algo := range []Algo{AlgoDefault, AlgoRing, AlgoGatherBcast} {
		w := NewWorld(p, SP2())
		w.SetCollConfig(CollConfig{Allgather: algo})
		got := make([][]int64, p)
		w.Run(func(c *Comm) {
			var x []int64 // ranks 0, 2 and 4 contribute nothing
			if c.Rank()%2 == 1 {
				x = []int64{int64(c.Rank()), int64(c.Rank() * 10)}
			}
			got[c.Rank()] = Allgatherv(c, 0, x)
		})
		want := []int64{1, 10, 3, 30}
		for r := 0; r < p; r++ {
			if !reflect.DeepEqual(got[r], want) {
				t.Fatalf("algo %s rank %d: %v, want %v", algo, r, got[r], want)
			}
		}
		if algo == AlgoRing || algo == AlgoDefault {
			// The ring always moves p·(p−1) messages — empty blocks still
			// occupy their slot — and total bytes are (p−1)·Σ contributions
			// (each byte traverses p−1 links).
			tr := w.Traffic()
			if tr.Msgs != p*(p-1) {
				t.Errorf("algo %s: %d messages, want %d", algo, tr.Msgs, p*(p-1))
			}
			if want := int64((p - 1) * 2 * 2 * 8); tr.Bytes != want {
				t.Errorf("algo %s: %d bytes, want %d", algo, tr.Bytes, want)
			}
		}
	}
}

// --- satellite 2: encoding-stats leg attribution at P=6. Every rank's
// contribution is dense (all elements nonzero), but the reduced total is
// all zeros — so every reduce-leg message must count dense and every
// broadcast-leg message sparse, and no flush may be classified sparse.
// Before the fix the broadcast leg's sparse sends flipped three flushes
// to "sparse" even though no rank ever sent sparse partials.
func TestAllreduceSumLegAttribution(t *testing.T) {
	const p, n = 6, 8
	w := NewWorld(p, SP2())
	out := make([][]int64, p)
	w.Run(func(c *Comm) {
		x := make([]int64, n)
		wgt := int64(-1)
		if c.Rank() == 0 {
			wgt = 5 // Σ over the 6 ranks = 0 in every element
		}
		for i := range x {
			x[i] = wgt
		}
		AllreduceSum(c, x, 0.5)
		out[c.Rank()] = x
	})
	for r := 0; r < p; r++ {
		if !reflect.DeepEqual(out[r], make([]int64, n)) {
			t.Fatalf("rank %d: total %v, want all-zero", r, out[r])
		}
	}
	e := w.EncodingByPhase()[""]
	want := EncodingStats{
		// Non-power-of-two default path: binomial reduce (ranks 1..5 each
		// send one dense partial) + binomial broadcast (5 messages of the
		// all-zero total, all sparse with zero pairs).
		DenseFlushes:    p, // no rank sent a sparse partial
		SparseFlushes:   0,
		DenseMsgs:       p - 1,
		SparseMsgs:      0,
		BcastDenseMsgs:  0,
		BcastSparseMsgs: p - 1,
		SentBytes:       (p - 1) * n * 8, // reduce leg dense; bcast leg 0 pairs = 0 bytes
		DenseBytes:      2 * (p - 1) * n * 8,
	}
	if e != want {
		t.Fatalf("encoding stats %+v, want %+v", e, want)
	}
}

// --- algorithm selection ---

func TestResolveAllreduceAlgo(t *testing.T) {
	m := SP2()
	if a := ResolveAllreduceAlgo(AlgoDefault, 8, 64, m); a != AlgoRecDoubling {
		t.Errorf("default at pow2 = %s", a)
	}
	if a := ResolveAllreduceAlgo("", 6, 64, m); a != AlgoReduceBcast {
		t.Errorf("default at p=6 = %s", a)
	}
	for _, cfg := range []Algo{AlgoRecDoubling, AlgoRecHalving} {
		if a := ResolveAllreduceAlgo(cfg, 6, 64, m); a != AlgoReduceBcast {
			t.Errorf("%s at p=6 must fall back to red+bcast, got %s", cfg, a)
		}
	}
	// Auto: tiny messages are latency-bound → recursive doubling; huge
	// messages are bandwidth-bound → halving/doubling on pow2, ring wins
	// only when rhd is infeasible and P·t_s stays small.
	if a := ResolveAllreduceAlgo(AlgoAuto, 8, 8, m); a != AlgoRecDoubling {
		t.Errorf("auto small message = %s, want rdbl", a)
	}
	if a := ResolveAllreduceAlgo(AlgoAuto, 8, 1<<20, m); a != AlgoRecHalving {
		t.Errorf("auto 1MB pow2 = %s, want rhd", a)
	}
	if a := ResolveAllreduceAlgo(AlgoAuto, 6, 1<<22, m); a != AlgoRing {
		t.Errorf("auto 4MB p=6 = %s, want ring", a)
	}
	if a := ResolveAllreduceAlgo(AlgoAuto, 6, 8, m); a != AlgoReduceBcast {
		t.Errorf("auto small message p=6 = %s, want red+bcast", a)
	}
}

// TestAllreduceCostEstimateDefault pins the hybrid split trigger's
// estimate: under the default configuration it is the legacy Equation 2
// formula — ⌈log₂P⌉·(t_s+t_w·B) — even for non-power-of-two worlds.
func TestAllreduceCostEstimateDefault(t *testing.T) {
	for _, p := range []int{2, 3, 4, 6, 8} {
		w := NewWorld(p, SP2())
		w.Run(func(c *Comm) {
			want := c.Machine().SendCost(800) * float64(ceilLog2(p))
			if got := c.AllreduceCostEstimate(800); got != want {
				t.Errorf("p=%d: estimate %v, want %v", p, got, want)
			}
		})
	}
	w := NewWorld(6, SP2())
	w.SetCollConfig(CollConfig{Allreduce: AlgoRing})
	w.Run(func(c *Comm) {
		want := AllreduceAlgoCost(AlgoRing, 6, 800, c.Machine())
		if got := c.AllreduceCostEstimate(800); got != want {
			t.Errorf("ring estimate %v, want %v", got, want)
		}
	})
}

// --- correctness matrix: every collective algorithm on every topology
// must produce identical values for every world size (topologies can only
// change modeled time, never data). ---

func TestCollectiveMatrix(t *testing.T) {
	sizes := []int{1, 2, 3, 4, 5, 6, 7, 8, 12}
	arAlgos := []Algo{AlgoDefault, AlgoAuto, AlgoRecDoubling, AlgoRing, AlgoRecHalving, AlgoReduceBcast}
	bcAlgos := []Algo{AlgoDefault, AlgoAuto, AlgoBinomial, AlgoScatterAllgather}
	agAlgos := []Algo{AlgoDefault, AlgoRing, AlgoGatherBcast}
	topoNames := TopologyNames()
	// The CI matrix shards this sweep one (topology, allreduce algo) pair
	// per job; unset, the full cross product runs.
	if env := os.Getenv("MP_TEST_TOPOLOGY"); env != "" {
		topoNames = []string{env}
	}
	if env := os.Getenv("MP_TEST_COLL_ALGO"); env != "" {
		arAlgos = []Algo{Algo(env)}
	}
	for _, topoName := range topoNames {
		for i := 0; i < len(arAlgos) || i < len(bcAlgos) || i < len(agAlgos); i++ {
			cfg := CollConfig{
				Allreduce: arAlgos[i%len(arAlgos)],
				Bcast:     bcAlgos[i%len(bcAlgos)],
				Allgather: agAlgos[i%len(agAlgos)],
			}
			for _, p := range sizes {
				runCollectiveSuite(t, p, topoName, cfg)
			}
		}
	}
}

func runCollectiveSuite(t *testing.T, p int, topoName string, cfg CollConfig) {
	t.Helper()
	m := SP2().WithHopLatency(2e-6)
	w := NewWorld(p, m)
	topo, err := NewTopology(topoName, p)
	if err != nil {
		t.Fatal(err)
	}
	w.SetTopology(topo)
	w.SetCollConfig(cfg)
	const n = 23 // deliberately not divisible by the sizes: uneven ring chunks
	sum := make([][]int64, p)
	mn := make([][]float64, p)
	bc := make([][]int64, p)
	ag := make([][]int64, p)
	adp := make([][]int64, p)
	w.Run(func(c *Comm) {
		r := c.Rank()
		x := make([]int64, n)
		for i := range x {
			x[i] = int64(r*100 + i)
		}
		Allreduce(c, x, Sum)
		sum[r] = x

		f := make([]float64, 5)
		for i := range f {
			f[i] = float64((r+i)%p) + 0.5
		}
		Allreduce(c, f, Min)
		mn[r] = f

		b := make([]int64, n)
		if r == p/2 {
			for i := range b {
				b[i] = int64(i * i)
			}
		}
		Bcast(c, b, p/2)
		bc[r] = b

		contrib := make([]int64, r%3)
		for i := range contrib {
			contrib[i] = int64(r*10 + i)
		}
		ag[r] = Allgatherv(c, 1, contrib)

		a := make([]int64, n)
		a[r%n] = int64(r + 1)
		AllreduceSum(c, a, 0.5)
		adp[r] = a
	})
	label := topoName + "/" + string(cfg.Allreduce) + "/" + string(cfg.Bcast) + "/" + string(cfg.Allgather)
	wantSum := make([]int64, n)
	for i := range wantSum {
		for r := 0; r < p; r++ {
			wantSum[i] += int64(r*100 + i)
		}
	}
	wantB := make([]int64, n)
	for i := range wantB {
		wantB[i] = int64(i * i)
	}
	var wantAG []int64
	for r := 0; r < p; r++ {
		for i := 0; i < r%3; i++ {
			wantAG = append(wantAG, int64(r*10+i))
		}
	}
	if wantAG == nil {
		wantAG = []int64{}
	}
	wantAdp := make([]int64, n)
	for r := 0; r < p; r++ {
		wantAdp[r%n] += int64(r + 1)
	}
	for r := 0; r < p; r++ {
		if !reflect.DeepEqual(sum[r], wantSum) {
			t.Fatalf("%s p=%d rank %d: allreduce sum %v, want %v", label, p, r, sum[r], wantSum)
		}
		if !reflect.DeepEqual(mn[r], mn[0]) {
			t.Fatalf("%s p=%d rank %d: allreduce min disagrees across ranks", label, p, r)
		}
		if !reflect.DeepEqual(bc[r], wantB) {
			t.Fatalf("%s p=%d rank %d: bcast %v, want %v", label, p, r, bc[r], wantB)
		}
		gotAG := ag[r]
		if gotAG == nil {
			gotAG = []int64{}
		}
		if !reflect.DeepEqual(gotAG, wantAG) {
			t.Fatalf("%s p=%d rank %d: allgatherv %v, want %v", label, p, r, gotAG, wantAG)
		}
		if !reflect.DeepEqual(adp[r], wantAdp) {
			t.Fatalf("%s p=%d rank %d: adaptive allreduce %v, want %v", label, p, r, adp[r], wantAdp)
		}
	}
}

// TestAllreduceAlgoBreakdownLabels: the configured algorithm must be
// visible in the breakdown's algo dimension.
func TestAllreduceAlgoBreakdownLabels(t *testing.T) {
	for _, tc := range []struct {
		p    int
		cfg  Algo
		want Algo
	}{
		{4, AlgoDefault, AlgoRecDoubling},
		{6, AlgoDefault, AlgoReduceBcast},
		{4, AlgoRing, AlgoRing},
		{4, AlgoRecHalving, AlgoRecHalving},
		{6, AlgoRecHalving, AlgoReduceBcast}, // non-pow2 fallback is what actually ran
	} {
		w := NewWorld(tc.p, SP2())
		w.SetCollConfig(CollConfig{Allreduce: tc.cfg})
		w.Run(func(c *Comm) {
			x := make([]int64, 32)
			x[c.Rank()] = 1
			Allreduce(c, x, Sum)
		})
		b := w.Breakdown()
		if got := b.CollAlgo(CollAllreduce, tc.want); got.Calls != int64(tc.p) {
			t.Errorf("p=%d cfg=%s: algo %q cell has %d calls, want %d (algos present: %v)",
				tc.p, tc.cfg, tc.want, got.Calls, tc.p, b.Algos(CollAllreduce))
		}
		if got := b.Coll(CollAllreduce); got.Calls != int64(tc.p) {
			t.Errorf("p=%d cfg=%s: coll total %d calls, want %d", tc.p, tc.cfg, got.Calls, tc.p)
		}
	}
}

// TestModelAllreduceMatchesWorld: the analytic recurrences must reproduce
// the live substrate's modeled completion time exactly — same additions
// in the same order per rank.
func TestModelAllreduceMatchesWorld(t *testing.T) {
	const elems = 37
	for _, p := range []int{2, 3, 4, 5, 6, 8, 12, 16} {
		for _, topoName := range []string{"hypercube", "flat", "ring", "torus", "fattree"} {
			for _, algo := range []Algo{AlgoRecDoubling, AlgoRing, AlgoRecHalving, AlgoReduceBcast} {
				m := SP2().WithHopLatency(3e-6)
				topo, err := NewTopology(topoName, p)
				if err != nil {
					t.Fatal(err)
				}
				w := NewWorld(p, m)
				w.SetTopology(topo)
				w.SetCollConfig(CollConfig{Allreduce: algo})
				w.Run(func(c *Comm) {
					x := make([]int64, elems)
					x[c.Rank()%elems] = 1
					Allreduce(c, x, Sum)
				})
				resolved := ResolveAllreduceAlgo(algo, p, 8*elems, m)
				got := ModelAllreduce(resolved, topo, p, elems, m)
				if want := w.MaxClock(); math.Abs(got-want) > 1e-15*math.Max(1, math.Abs(want)) {
					t.Errorf("p=%d %s %s: model %v, world %v", p, topoName, algo, got, want)
				}
			}
		}
	}
}

// TestDefaultConfigBitIdentical: a world with an explicitly-set hypercube
// topology and all-default collective config must produce clocks, traffic
// and breakdowns bit-identical to an untouched world.
func TestDefaultConfigBitIdentical(t *testing.T) {
	prog := func(c *Comm) {
		c.BeginPhase("x")
		x := make([]int64, 50)
		x[c.Rank()] = int64(c.Rank() + 1)
		Allreduce(c, x, Sum)
		AllreduceSum(c, x, 0.4)
		y := make([]int64, 7)
		Bcast(c, y, 0)
		Allgatherv(c, 2, []int64{int64(c.Rank())})
		c.Barrier()
		c.AllreduceClock()
		c.EndPhase()
	}
	for _, p := range []int{3, 4, 6, 8} {
		w1 := NewWorld(p, SP2())
		w1.Run(prog)
		w2 := NewWorld(p, SP2())
		w2.SetTopology(NewHypercube(p))
		w2.SetCollConfig(CollConfig{Allreduce: AlgoDefault, Bcast: AlgoDefault, Allgather: AlgoDefault})
		w2.Run(prog)
		if w1.MaxClock() != w2.MaxClock() {
			t.Fatalf("p=%d: clocks differ: %v vs %v", p, w1.MaxClock(), w2.MaxClock())
		}
		if !reflect.DeepEqual(w1.Traffic(), w2.Traffic()) {
			t.Fatalf("p=%d: traffic differs", p)
		}
		if !reflect.DeepEqual(w1.Breakdown(), w2.Breakdown()) {
			t.Fatalf("p=%d: breakdowns differ", p)
		}
		if !reflect.DeepEqual(w1.EncodingByPhase(), w2.EncodingByPhase()) {
			t.Fatalf("p=%d: encoding stats differ", p)
		}
	}
}
