package mp

import (
	"fmt"
	"math"
	"math/bits"
)

// Topology models the interconnect the world's ranks are wired through.
// Its only job is to price point-to-point distance: Hops returns the
// number of link traversals between two world ranks, and each message
// additionally pays Machine.TH per hop on top of t_s + t_w·bytes. With
// TH = 0 (the default, and the paper's Equation 2 assumption of
// cut-through routing with negligible per-hop cost) every topology prices
// identically and the modeled clocks are bit-identical to the historic
// hypercube-only substrate.
//
// Topologies never change which messages are sent — the collective
// algorithms do that (see CollConfig) — they only change what each
// message costs.
type Topology interface {
	// Name is the stable identifier used in flags, configs and reports.
	Name() string
	// Size is the number of ranks the topology was built for.
	Size() int
	// Hops returns the link distance between two world ranks (0 for
	// src == dst). Must be symmetric.
	Hops(src, dst int) int
}

// Hypercube is the paper's fabric: rank IDs are corner labels and the
// hop distance is the Hamming distance. Non-power-of-two worlds live on
// the smallest enclosing cube with the upper corners unpopulated.
type Hypercube struct{ p int }

// NewHypercube builds the default topology of a p-rank world.
func NewHypercube(p int) Hypercube { return Hypercube{p: p} }

func (h Hypercube) Name() string { return "hypercube" }
func (h Hypercube) Size() int    { return h.p }
func (h Hypercube) Hops(src, dst int) int {
	return bits.OnesCount(uint(src ^ dst))
}

// FlatSwitched is a single non-blocking crossbar: every pair of distinct
// ranks is one hop apart. The baseline "distance does not matter" fabric.
type FlatSwitched struct{ p int }

// NewFlatSwitched builds a flat switched topology for p ranks.
func NewFlatSwitched(p int) FlatSwitched { return FlatSwitched{p: p} }

func (f FlatSwitched) Name() string { return "flat" }
func (f FlatSwitched) Size() int    { return f.p }
func (f FlatSwitched) Hops(src, dst int) int {
	if src == dst {
		return 0
	}
	return 1
}

// Ring is a bidirectional ring: the hop distance is the shorter way
// around. Nearest-neighbour collectives (ring allreduce) pay 1 hop per
// step here while recursive doubling pays up to P/2.
type Ring struct{ p int }

// NewRing builds a ring topology for p ranks.
func NewRing(p int) Ring { return Ring{p: p} }

func (r Ring) Name() string { return "ring" }
func (r Ring) Size() int    { return r.p }
func (r Ring) Hops(src, dst int) int {
	d := src - dst
	if d < 0 {
		d = -d
	}
	if w := r.p - d; w < d {
		return w
	}
	return d
}

// Torus2D is a rows×cols wrap-around mesh with rank = row·cols + col and
// Manhattan distance with wraparound in both dimensions. The constructor
// picks the most square factorization of p; a prime p degenerates to a
// 1×p ring.
type Torus2D struct{ p, rows, cols int }

// NewTorus2D builds a near-square 2-D torus for p ranks.
func NewTorus2D(p int) Torus2D {
	r := int(math.Sqrt(float64(p)))
	if r < 1 {
		r = 1
	}
	for p%r != 0 {
		r--
	}
	return Torus2D{p: p, rows: r, cols: p / r}
}

func (t Torus2D) Name() string { return "torus" }
func (t Torus2D) Size() int    { return t.p }

// Dims returns the (rows, cols) shape the constructor chose.
func (t Torus2D) Dims() (int, int) { return t.rows, t.cols }

func wrapDist(a, b, n int) int {
	d := a - b
	if d < 0 {
		d = -d
	}
	if w := n - d; w < d {
		return w
	}
	return d
}

func (t Torus2D) Hops(src, dst int) int {
	return wrapDist(src/t.cols, dst/t.cols, t.rows) + wrapDist(src%t.cols, dst%t.cols, t.cols)
}

// fatTreeArity is the number of leaves per edge switch of the modeled
// fat-tree (a common radix for small clusters; the exact value only
// scales the hop counts).
const fatTreeArity = 4

// FatTree is a k-ary fat-tree: ranks are leaves, groups of fatTreeArity
// share an edge switch, groups of switches share the next level up, and a
// message climbs to the lowest common ancestor switch and back down —
// 2·levels hops. Full bisection bandwidth is assumed (no contention
// model), so only the LCA depth matters.
type FatTree struct{ p int }

// NewFatTree builds a fat-tree topology for p ranks.
func NewFatTree(p int) FatTree { return FatTree{p: p} }

func (f FatTree) Name() string { return "fattree" }
func (f FatTree) Size() int    { return f.p }
func (f FatTree) Hops(src, dst int) int {
	if src == dst {
		return 0
	}
	h := 0
	for src != dst {
		src /= fatTreeArity
		dst /= fatTreeArity
		h++
	}
	return 2 * h
}

// TopologyNames lists the identifiers NewTopology accepts, in display
// order.
func TopologyNames() []string {
	return []string{"hypercube", "flat", "ring", "torus", "fattree"}
}

// NewTopology builds the named topology for a p-rank world.
func NewTopology(name string, p int) (Topology, error) {
	switch name {
	case "", "hypercube":
		return NewHypercube(p), nil
	case "flat":
		return NewFlatSwitched(p), nil
	case "ring":
		return NewRing(p), nil
	case "torus":
		return NewTorus2D(p), nil
	case "fattree":
		return NewFatTree(p), nil
	default:
		return nil, fmt.Errorf("mp: unknown topology %q (want one of %v)", name, TopologyNames())
	}
}
