package mp

// Analytic collective model. ModelAllreduce reproduces, by per-rank clock
// recurrences, exactly the modeled completion time a World of p ranks
// would report after one dense Allreduce — same sends in the same order,
// same per-hop pricing under the topology, same TOp combine charges — but
// in O(P·steps) arithmetic with no goroutines or payloads. That makes
// modeled sweeps into the thousands of ranks (cmd/experiments -mode
// isocomm) affordable: the ring algorithm alone would move O(P²) real
// messages per allreduce. Consistency with the live substrate is pinned
// by TestModelAllreduceMatchesWorld at small P.

// ModelAllreduce returns the modeled wall-clock (max over ranks, all
// ranks entering at clock 0) of one dense allreduce of elems 8-byte
// elements on p ranks connected by topo, under algorithm algo. algo must
// be concrete (not auto/default — resolve first with
// ResolveAllreduceAlgo); an algorithm infeasible for p falls back the
// same way the live dispatch does. A nil topo models a hop-free fabric
// (equivalently Machine.TH = 0).
func ModelAllreduce(algo Algo, topo Topology, p, elems int, m Machine) float64 {
	if p <= 1 {
		return 0
	}
	if (algo == AlgoRecDoubling || algo == AlgoRecHalving) && !isPow2(p) {
		algo = AlgoReduceBcast
	}
	send := func(src, dst, bytes int) float64 {
		cost := m.SendCost(bytes)
		if m.TH != 0 && topo != nil {
			cost += m.TH * float64(topo.Hops(src, dst))
		}
		return cost
	}
	clock := make([]float64, p)
	switch algo {
	case AlgoRecDoubling:
		modelRD(clock, p, elems, m, send)
	case AlgoRing:
		modelRing(clock, p, elems, m, send)
	case AlgoRecHalving:
		modelRHD(clock, p, elems, m, send)
	default:
		modelReduce(clock, p, elems, m, send)
		modelBcast(clock, p, 8*elems, send)
	}
	max := 0.0
	for _, c := range clock {
		if c > max {
			max = c
		}
	}
	return max
}

// modelRD: per step every rank sends to its partner, waits for the
// partner's send to arrive, and combines elems elements.
func modelRD(clock []float64, p, elems int, m Machine, send func(src, dst, bytes int) float64) {
	bytes := 8 * elems
	top := float64(elems) * m.TOp
	done := make([]float64, p)
	for mask := 1; mask < p; mask <<= 1 {
		for r := 0; r < p; r++ {
			done[r] = clock[r] + send(r, r^mask, bytes)
		}
		for r := 0; r < p; r++ {
			c := done[r]
			if a := done[r^mask]; a > c {
				c = a
			}
			clock[r] = c + top
		}
	}
}

// modelRing: P−1 reduce-scatter steps (send chunk, wait for the left
// neighbour's chunk, combine it) then P−1 allgather steps (same without
// the combine), chunk i spanning [i·n/p, (i+1)·n/p).
func modelRing(clock []float64, p, elems int, m Machine, send func(src, dst, bytes int) float64) {
	lo := func(i int) int { return i * elems / p }
	chunkLen := func(i int) int { return lo(i+1) - lo(i) }
	done := make([]float64, p)
	for s := 0; s < p-1; s++ {
		for r := 0; r < p; r++ {
			sc := (r - s + p) % p
			done[r] = clock[r] + send(r, (r+1)%p, 8*chunkLen(sc))
		}
		for r := 0; r < p; r++ {
			left := (r - 1 + p) % p
			c := done[r]
			if done[left] > c {
				c = done[left]
			}
			rc := (r - s - 1 + p) % p
			clock[r] = c + float64(chunkLen(rc))*m.TOp
		}
	}
	for s := 0; s < p-1; s++ {
		for r := 0; r < p; r++ {
			sc := (r + 1 - s + p) % p
			done[r] = clock[r] + send(r, (r+1)%p, 8*chunkLen(sc))
		}
		for r := 0; r < p; r++ {
			left := (r - 1 + p) % p
			c := done[r]
			if done[left] > c {
				c = done[left]
			}
			clock[r] = c
		}
	}
}

// modelRHD: recursive vector halving (send the half you give away, wait,
// combine the half you keep) then recursive doubling back up (send the
// window you own, wait, adopt the partner's).
func modelRHD(clock []float64, p, elems int, m Machine, send func(src, dst, bytes int) float64) {
	los := make([]int, p)
	his := make([]int, p)
	for r := range his {
		his[r] = elems
	}
	type win struct{ lo, mid, hi int }
	stacks := make([][]win, p)
	done := make([]float64, p)
	comb := make([]int, p)
	for mask := 1; mask < p; mask <<= 1 {
		for r := 0; r < p; r++ {
			lo, hi := los[r], his[r]
			mid := lo + (hi-lo)/2
			var sendLen int
			if r&mask == 0 {
				sendLen, comb[r] = hi-mid, mid-lo
			} else {
				sendLen, comb[r] = mid-lo, hi-mid
			}
			done[r] = clock[r] + send(r, r^mask, 8*sendLen)
			stacks[r] = append(stacks[r], win{lo, mid, hi})
			if r&mask == 0 {
				his[r] = mid
			} else {
				los[r] = mid
			}
		}
		for r := 0; r < p; r++ {
			c := done[r]
			if done[r^mask] > c {
				c = done[r^mask]
			}
			clock[r] = c + float64(comb[r])*m.TOp
		}
	}
	for i := len(stacks[0]) - 1; i >= 0; i-- {
		for r := 0; r < p; r++ {
			done[r] = clock[r] + send(r, r^(1<<i), 8*(his[r]-los[r]))
		}
		for r := 0; r < p; r++ {
			c := done[r]
			if done[r^(1<<i)] > c {
				c = done[r^(1<<i)]
			}
			clock[r] = c
			w := stacks[r][i]
			los[r], his[r] = w.lo, w.hi
		}
	}
}

// modelReduce: the binomial-tree reduce onto rank 0 — at each mask, ranks
// with the bit set send their partials down and leave; surviving ranks
// receive and combine.
func modelReduce(clock []float64, p, elems int, m Machine, send func(src, dst, bytes int) float64) {
	bytes := 8 * elems
	top := float64(elems) * m.TOp
	arrive := make([]float64, p)
	for mask := 1; mask < p; mask <<= 1 {
		for r := mask; r < p; r += 2 * mask {
			// r has exactly the masked bit as its lowest set bit here.
			clock[r] += send(r, r-mask, bytes)
			arrive[r-mask] = clock[r]
		}
		for r := 0; r < p; r += 2 * mask {
			if r|mask < p {
				if arrive[r] > clock[r] {
					clock[r] = arrive[r]
				}
				clock[r] += top
			}
		}
	}
}

// modelBcast: the binomial broadcast from rank 0 — each internal node
// forwards to its subtree roots largest-offset first, each send advancing
// the sender's clock; a child starts when its copy arrives.
func modelBcast(clock []float64, p, bytes int, send func(src, dst, bytes int) float64) {
	for r := 0; r < p; r++ {
		var k int
		if r == 0 {
			k = ceilLog2(p)
		} else {
			k = trailingZeros(r)
		}
		for j := k - 1; j >= 0; j-- {
			dst := r + 1<<j
			if dst < p {
				clock[r] += send(r, dst, bytes)
				if clock[r] > clock[dst] {
					clock[dst] = clock[r]
				}
			}
		}
	}
}

func trailingZeros(r int) int {
	k := 0
	for r&1 == 0 {
		r >>= 1
		k++
	}
	return k
}
