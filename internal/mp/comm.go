package mp

import (
	"fmt"
	"sort"

	"partree/internal/fault"
)

// Comm is a communicator: an ordered group of ranks that exchange
// messages and run collectives among themselves, isolated from other
// communicators by a deterministic identity string. Comms are arranged in
// a tree by Split, exactly like the processor partitions of the hybrid
// formulation.
type Comm struct {
	world *World
	id    string
	rank  int   // my rank within this comm
	ranks []int // comm rank -> world rank
	me    *proc

	splitSeq int // number of Splits issued on this comm (kept consistent collectively)

	// inst counts outermost collectives started on this comm by this rank
	// (bumped in beginColl). Collective-internal messages are delivered
	// under an instance-scoped mailbox key so a rank that races ahead into
	// the next collective can never feed a peer still blocked in the
	// previous one — after a fault diverges their progress, the blocked
	// peer's receive stays unmatched and surfaces as a typed error instead
	// of silently consuming a mismatched payload.
	inst int64
}

// mailKey is the mailbox key messages on this comm are filed under:
// the comm identity, extended with the collective instance number while a
// collective is running. Senders and receivers of the same collective
// agree on the instance because ranks of a comm execute the same
// collective sequence.
func (c *Comm) mailKey() string {
	if c.me.collDepth > 0 {
		return fmt.Sprintf("%s#%d", c.id, c.inst)
	}
	return c.id
}

// Rank returns the caller's rank within the communicator.
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks in the communicator.
func (c *Comm) Size() int { return len(c.ranks) }

// ID returns the deterministic identity of the communicator ("w" for the
// world, extended by "/seq.color" per split).
func (c *Comm) ID() string { return c.id }

// WorldRank translates a communicator rank to its world rank.
func (c *Comm) WorldRank(r int) int { return c.ranks[r] }

// Ranks returns a copy of the comm-rank → world-rank mapping.
func (c *Comm) Ranks() []int { return append([]int(nil), c.ranks...) }

// Machine returns the cost parameters of the underlying world.
func (c *Comm) Machine() Machine { return c.world.Machine }

// Clock returns the caller's modeled clock in seconds.
func (c *Comm) Clock() float64 { return c.me.clock }

// Compute advances the caller's modeled clock by ops units of t_c and
// accounts it as computation time. Builders call this with the number of
// record-attribute touches they perform.
func (c *Comm) Compute(ops float64) {
	d := ops * c.world.Machine.TC
	c.me.clock += d
	c.me.chargeComp(d)
}

// AdvanceClock adds raw modeled seconds (e.g. a modeled disk scan) to the
// caller's clock, accounted as computation.
func (c *Comm) AdvanceClock(seconds float64) {
	c.me.clock += seconds
	c.me.chargeComp(seconds)
}

// ChargeDisk records bytes moved to or from stable storage — the durable
// checkpoint cost class — and advances the caller's clock by bytes·t_d.
// Under the default machines (TD = 0) the byte count is tracked but the
// clock is untouched, keeping durable checkpointing off the modeled
// critical path.
func (c *Comm) ChargeDisk(bytes int) {
	d := float64(bytes) * c.world.Machine.TD
	c.me.clock += d
	c.me.chargeDisk(int64(bytes), d)
}

// Rebase returns this communicator under the derived identity
// "<base>~<gen>" — same ranks, same rank numbering — where base is the
// identity stripped of any previous resume ("~gen") or recovery
// ("!epoch") suffix. Process-restart resume rebases the world
// communicator so the boundary IDs of the resumed attempt never collide
// with checkpoint IDs a previous incarnation of the process left on
// disk.
func (c *Comm) Rebase(gen int) *Comm {
	base := c.id
	for i := 0; i < len(base); i++ {
		if base[i] == '~' || base[i] == '!' {
			base = base[:i]
			break
		}
	}
	return &Comm{
		world: c.world,
		id:    fmt.Sprintf("%s~%d", base, gen),
		rank:  c.rank,
		ranks: append([]int(nil), c.ranks...),
		me:    c.me,
	}
}

// Send delivers payload to rank dst of this communicator under tag. The
// modeled wire size is bytes; the sender's clock advances by
// t_s + t_w·bytes — plus t_h per hop between the two world ranks under
// the world's Topology when Machine.TH > 0 — and the message arrives at
// that time. The payload is shared by reference: the caller must not
// mutate it after sending.
func (c *Comm) Send(dst, tag int, payload any, bytes int) {
	if dst < 0 || dst >= c.Size() {
		panic(fmt.Sprintf("mp: send to rank %d of %d-rank comm %s", dst, c.Size(), c.id))
	}
	c.op(fault.SendOp, tag)
	drop, dup := c.sendFault(tag)
	cost := c.world.Machine.SendCost(bytes)
	if th := c.world.Machine.TH; th != 0 {
		cost += th * float64(c.world.topo.Hops(c.me.rank, c.ranks[dst]))
	}
	start := c.me.clock
	c.me.clock += cost
	c.me.chargeComm(cost)
	c.me.noteSend(bytes)
	if c.world.trace && c.me.collDepth == 0 {
		c.me.recordEvent(c.id, CollP2P, "", tag, int64(bytes), start, c.me.clock)
	}
	msg := Msg{
		Src:     c.rank,
		Tag:     tag,
		Payload: payload,
		Bytes:   bytes,
		Arrive:  c.me.clock,
	}
	key := c.mailKey()
	if c.world.plan != nil {
		msg.Seq = c.me.nextSeq(key, dst, tag)
	}
	if drop {
		// The sender paid the wire cost; the receiver never sees it.
		return
	}
	mb := c.world.procs[c.ranks[dst]].mailbox
	mb.put(key, msg)
	if dup {
		if !mb.put(key, msg) {
			c.world.dupDropped.Add(1)
		}
	}
}

// Recv blocks until a message with the given tag from src (or AnySource)
// arrives on this communicator, advances the caller's clock to at least
// the message's modeled arrival time, and returns it. The wait is
// bounded: if the expected sender is dead or finished, a peer entered
// recovery, or the world's receive timeout expires, Recv panics with a
// *fault.Error (recoverable at the builders' protected boundaries).
func (c *Comm) Recv(src, tag int) Msg {
	c.op(fault.RecvOp, tag)
	start := c.me.clock
	wt := c.waiterFor(src, tag)
	msg, err := c.me.mailbox.take(c.mailKey(), src, tag, &wt)
	if err != nil {
		panic(err)
	}
	if msg.Arrive > c.me.clock {
		c.me.chargeComm(msg.Arrive - c.me.clock)
		c.me.clock = msg.Arrive
	}
	if c.world.trace && c.me.collDepth == 0 {
		c.me.recordEvent(c.id, CollP2P, "", tag, int64(msg.Bytes), start, c.me.clock)
	}
	return msg
}

// TryRecv returns a matching message if one has already been delivered
// (in real time); ok=false otherwise. The modeled clock only advances when
// a message is returned. Used for the opportunistic probes of the hybrid
// formulation's idle-partition protocol.
func (c *Comm) TryRecv(src, tag int) (Msg, bool) {
	msg, ok := c.me.mailbox.tryTake(c.mailKey(), src, tag)
	if !ok {
		return Msg{}, false
	}
	start := c.me.clock
	if msg.Arrive > c.me.clock {
		c.me.chargeComm(msg.Arrive - c.me.clock)
		c.me.clock = msg.Arrive
	}
	if c.world.trace && c.me.collDepth == 0 {
		c.me.recordEvent(c.id, CollP2P, "", tag, int64(msg.Bytes), start, c.me.clock)
	}
	return msg, true
}

// Split partitions the communicator collectively: every rank calls Split
// with a color and key; ranks sharing a color form a new communicator,
// ordered by (key, old rank). Returns the caller's new communicator. The
// new comm's identity is derived deterministically from the parent's, so
// sibling partitions are fully isolated. Unlike MPI, color must be ≥ 0.
func (c *Comm) Split(color, key int) *Comm {
	if color < 0 {
		panic("mp: Split color must be non-negative")
	}
	type ck struct{ Color, Key, Rank int32 }
	mine := []int64{int64(color), int64(key), int64(c.rank)}
	all := Allgatherv(c, tagSplit, mine)
	var members []ck
	for i := 0; i+2 < len(all); i += 3 {
		if int(all[i]) == color {
			members = append(members, ck{int32(all[i]), int32(all[i+1]), int32(all[i+2])})
		}
	}
	sort.Slice(members, func(a, b int) bool {
		if members[a].Key != members[b].Key {
			return members[a].Key < members[b].Key
		}
		return members[a].Rank < members[b].Rank
	})
	ranks := make([]int, len(members))
	myNew := -1
	for i, m := range members {
		ranks[i] = c.ranks[m.Rank]
		if int(m.Rank) == c.rank {
			myNew = i
		}
	}
	seq := c.splitSeq
	c.splitSeq++
	return &Comm{
		world: c.world,
		id:    fmt.Sprintf("%s/%d.%d", c.id, seq, color),
		rank:  myNew,
		ranks: ranks,
		me:    c.me,
	}
}

// Reserved internal tags. User code should use tags ≥ 0.
const (
	tagSplit = -iota - 1
	tagReduce
	tagBcast
	tagGather
	tagAllgather
	tagAlltoall
	tagBarrier
	tagClock
	tagVote
	tagVoteScore
)
