package mp

import (
	"fmt"
	"sort"
	"strings"

	"partree/internal/fault"
)

// This file is the observability layer of the substrate. Every modeled
// charge (clock advance, message, reduction arithmetic) is attributed to
// the rank's current *phase* — an algorithm-level label pushed by the
// builders via Comm.BeginPhase/EndPhase — and to the *collective* being
// executed (or to point-to-point traffic outside any collective). The
// attribution is always on and purely additive: it never touches the
// modeled clocks, so breakdowns are available after every Run at no cost
// to determinism. The per-event timeline is opt-in via World.EnableTrace
// because it allocates per collective call.

// Coll identifies the operation a modeled charge belongs to.
type Coll uint8

// The collective kinds of the package, plus the two non-collective
// buckets: CollNone for local computation and CollP2P for explicit
// Send/Recv traffic outside any collective (e.g. subtree assembly).
const (
	CollNone Coll = iota
	CollP2P
	CollAllreduce
	CollReduce
	CollBcast
	CollGather
	CollAllgather
	CollAlltoall
	CollBarrier
	CollVote
	numColl
)

var collNames = [numColl]string{
	"compute", "p2p", "allreduce", "reduce", "bcast", "gather", "allgather", "alltoall", "barrier", "vote",
}

func (k Coll) String() string {
	if int(k) < len(collNames) {
		return collNames[k]
	}
	return fmt.Sprintf("coll(%d)", int(k))
}

// Colls lists every collective/bucket kind in display order.
func Colls() []Coll {
	out := make([]Coll, numColl)
	for i := range out {
		out[i] = Coll(i)
	}
	return out
}

// Cell addresses one (phase, collective, algorithm) accounting bucket.
// Algo is the concrete algorithm label the collective resolved to (e.g.
// "rdbl", "ring", "red+bcast", "binomial") — "" for computation and
// point-to-point traffic outside any collective.
type Cell struct {
	Phase string
	Coll  Coll
	Algo  Algo
}

// CellStats aggregates the modeled activity of one bucket.
type CellStats struct {
	Calls     int64   // outermost collective invocations (for P2P: sends)
	Msgs      int64   // messages sent
	Bytes     int64   // modeled bytes sent
	CommTime  float64 // modeled seconds sending/receiving (incl. waits)
	CompTime  float64 // modeled seconds of computation
	DiskBytes int64   // bytes moved to/from stable storage (checkpoints)
	DiskTime  float64 // modeled seconds of stable-storage transfer (bytes·t_d)
}

func (s *CellStats) add(o CellStats) {
	s.Calls += o.Calls
	s.Msgs += o.Msgs
	s.Bytes += o.Bytes
	s.CommTime += o.CommTime
	s.CompTime += o.CompTime
	s.DiskBytes += o.DiskBytes
	s.DiskTime += o.DiskTime
}

// Breakdown is a per-phase × per-collective aggregation of modeled
// activity, summed over whatever set of ranks (or runs) produced it.
type Breakdown struct {
	Cells map[Cell]CellStats
}

// NewBreakdown returns an empty breakdown.
func NewBreakdown() Breakdown {
	return Breakdown{Cells: make(map[Cell]CellStats)}
}

// Merge folds another breakdown into b.
func (b Breakdown) Merge(o Breakdown) {
	for k, v := range o.Cells {
		cs := b.Cells[k]
		cs.add(v)
		b.Cells[k] = cs
	}
}

// Coll sums the stats of one collective kind over all phases and
// algorithms.
func (b Breakdown) Coll(k Coll) CellStats {
	var out CellStats
	for c, v := range b.Cells {
		if c.Coll == k {
			out.add(v)
		}
	}
	return out
}

// PhaseColl sums the stats of one (phase, collective) over all
// algorithms.
func (b Breakdown) PhaseColl(phase string, k Coll) CellStats {
	var out CellStats
	for c, v := range b.Cells {
		if c.Phase == phase && c.Coll == k {
			out.add(v)
		}
	}
	return out
}

// CollAlgo sums the stats of one (collective, algorithm) pair over all
// phases.
func (b Breakdown) CollAlgo(k Coll, a Algo) CellStats {
	var out CellStats
	for c, v := range b.Cells {
		if c.Coll == k && c.Algo == a {
			out.add(v)
		}
	}
	return out
}

// Algos returns the algorithm labels recorded for one collective kind,
// sorted.
func (b Breakdown) Algos(k Coll) []Algo {
	seen := map[Algo]bool{}
	for c := range b.Cells {
		if c.Coll == k {
			seen[c.Algo] = true
		}
	}
	out := make([]Algo, 0, len(seen))
	for a := range seen {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Phase sums the stats of one phase over all collectives.
func (b Breakdown) Phase(name string) CellStats {
	var out CellStats
	for c, v := range b.Cells {
		if c.Phase == name {
			out.add(v)
		}
	}
	return out
}

// Total sums every cell. Its CommTime/CompTime equal the world's
// Traffic() totals (up to float summation order).
func (b Breakdown) Total() CellStats {
	var out CellStats
	for _, v := range b.Cells {
		out.add(v)
	}
	return out
}

// Phases returns the phase labels present, sorted, the unlabeled phase
// (printed as "(none)") last.
func (b Breakdown) Phases() []string {
	seen := map[string]bool{}
	for c := range b.Cells {
		seen[c.Phase] = true
	}
	var out []string
	for p := range seen {
		if p != "" {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	if seen[""] {
		out = append(out, "")
	}
	return out
}

func phaseLabel(p string) string {
	if p == "" {
		return "(none)"
	}
	return p
}

// Table renders the breakdown as two aligned text tables: the
// per-phase × per-collective modeled communication seconds (plus per-phase
// compute and totals — the comm and comp columns sum to the world's
// CommTime/CompTime), and the per-collective aggregate counters.
func (b Breakdown) Table() string {
	var active []Coll
	for _, k := range Colls() {
		if k == CollNone {
			continue
		}
		s := b.Coll(k)
		if s.Calls != 0 || s.Msgs != 0 || s.CommTime != 0 {
			active = append(active, k)
		}
	}
	// The disk cost class only earns its columns when a durable store was
	// in play; in-memory runs keep the historic table shape.
	disk := b.Total().DiskBytes != 0 || b.Total().DiskTime != 0
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-16s", "phase")
	for _, k := range active {
		fmt.Fprintf(&sb, " %12s", k.String())
	}
	fmt.Fprintf(&sb, " %12s %12s %10s", "comm s", "comp s", "MB")
	if disk {
		fmt.Fprintf(&sb, " %12s %10s", "disk s", "disk MB")
	}
	sb.WriteByte('\n')
	writeRow := func(name string, get func(Coll) CellStats, total CellStats) {
		fmt.Fprintf(&sb, "%-16s", name)
		for _, k := range active {
			fmt.Fprintf(&sb, " %12.6f", get(k).CommTime)
		}
		fmt.Fprintf(&sb, " %12.6f %12.6f %10.3f", total.CommTime, total.CompTime, float64(total.Bytes)/1e6)
		if disk {
			fmt.Fprintf(&sb, " %12.6f %10.3f", total.DiskTime, float64(total.DiskBytes)/1e6)
		}
		sb.WriteByte('\n')
	}
	for _, p := range b.Phases() {
		writeRow(phaseLabel(p), func(k Coll) CellStats { return b.PhaseColl(p, k) }, b.Phase(p))
	}
	writeRow("total", func(k Coll) CellStats { return b.Coll(k) }, b.Total())

	fmt.Fprintf(&sb, "\n%-12s %10s %10s %10s %12s %12s\n", "collective", "calls", "msgs", "MB", "comm s", "comp s")
	for _, k := range active {
		s := b.Coll(k)
		fmt.Fprintf(&sb, "%-12s %10d %10d %10.3f %12.6f %12.6f\n",
			k.String(), s.Calls, s.Msgs, float64(s.Bytes)/1e6, s.CommTime, s.CompTime)
	}
	if s := b.Coll(CollNone); s.CompTime != 0 {
		fmt.Fprintf(&sb, "%-12s %10s %10s %10s %12s %12.6f\n", "compute", "-", "-", "-", "-", s.CompTime)
	}

	// Per-(collective, algorithm) view: which algorithm carried the
	// traffic of each collective (more than one appears under auto
	// selection or mid-run reconfiguration).
	header := false
	for _, k := range active {
		for _, a := range b.Algos(k) {
			if a == "" {
				continue
			}
			if !header {
				fmt.Fprintf(&sb, "\n%-24s %10s %10s %10s %12s\n", "collective/algo", "calls", "msgs", "MB", "comm s")
				header = true
			}
			s := b.CollAlgo(k, a)
			fmt.Fprintf(&sb, "%-24s %10d %10d %10.3f %12.6f\n",
				k.String()+"/"+string(a), s.Calls, s.Msgs, float64(s.Bytes)/1e6, s.CommTime)
		}
	}
	return sb.String()
}

// TraceEvent is one entry of the opt-in per-rank event timeline: an
// outermost collective call (or a point-to-point send/receive outside any
// collective), with the rank's modeled clock at entry and exit and the
// modeled bytes the rank sent during it (for a lone receive: received).
type TraceEvent struct {
	Rank  int     `json:"rank"`
	Seq   int     `json:"seq"` // per-rank event index
	Comm  string  `json:"comm"`
	Phase string  `json:"phase"`
	Coll  string  `json:"coll"`
	Algo  string  `json:"algo,omitempty"` // resolved collective algorithm ("" for p2p)
	Tag   int     `json:"tag"`
	Bytes int64   `json:"bytes"`
	Start float64 `json:"start"`
	End   float64 `json:"end"`
}

// --- per-proc attribution (all methods run on the rank's own goroutine) ---

// curPhase returns the innermost phase label, "" when none.
func (p *proc) curPhase() string {
	if n := len(p.phases); n > 0 {
		return p.phases[n-1]
	}
	return ""
}

// commColl is the bucket a communication charge belongs to right now.
func (p *proc) commColl() Coll {
	if p.collDepth == 0 {
		return CollP2P
	}
	return p.curColl
}

// compColl is the bucket a computation charge belongs to right now (the
// reduction arithmetic inside a collective bills to that collective).
func (p *proc) compColl() Coll {
	if p.collDepth == 0 {
		return CollNone
	}
	return p.curColl
}

// curAlgoBucket is the algorithm label charges carry right now: the
// outermost collective's resolved algorithm, "" outside any collective.
func (p *proc) curAlgoBucket() Algo {
	if p.collDepth == 0 {
		return ""
	}
	return p.curAlgo
}

func (p *proc) bump(k Coll) *CellStats {
	c := Cell{p.curPhase(), k, p.curAlgoBucket()}
	cs := p.cells[c]
	if cs == nil {
		cs = &CellStats{}
		p.cells[c] = cs
	}
	return cs
}

func (p *proc) chargeComm(d float64) {
	p.commTime += d
	p.bump(p.commColl()).CommTime += d
}

func (p *proc) chargeComp(d float64) {
	p.compTime += d
	p.bump(p.compColl()).CompTime += d
}

func (p *proc) chargeDisk(bytes int64, d float64) {
	p.diskBytes += bytes
	p.diskTime += d
	cs := p.bump(p.compColl())
	cs.DiskBytes += bytes
	cs.DiskTime += d
}

func (p *proc) noteSend(bytes int) {
	p.msgsSent++
	p.bytesSent += int64(bytes)
	cs := p.bump(p.commColl())
	cs.Msgs++
	cs.Bytes += int64(bytes)
	if p.collDepth == 0 {
		cs.Calls++ // a lone send is its own "call"
	}
}

func (p *proc) recordEvent(comm string, k Coll, algo Algo, tag int, bytes int64, start, end float64) {
	p.events = append(p.events, TraceEvent{
		Rank: p.rank, Seq: len(p.events), Comm: comm, Phase: p.curPhase(),
		Coll: k.String(), Algo: string(algo), Tag: tag, Bytes: bytes, Start: start, End: end,
	})
}

// BeginPhase pushes a phase label: until the matching EndPhase, every
// modeled charge of this rank is attributed to it. Phases nest (the
// innermost wins) and must be balanced per rank. Purely observational —
// the modeled clock is never affected.
func (c *Comm) BeginPhase(name string) {
	c.me.phases = append(c.me.phases, name)
}

// EndPhase pops the innermost phase label.
func (c *Comm) EndPhase() {
	p := c.me
	if len(p.phases) == 0 {
		panic("mp: EndPhase without BeginPhase")
	}
	p.phases = p.phases[:len(p.phases)-1]
}

// beginColl marks the start of a collective on this rank, carrying the
// concrete algorithm it resolved to. Nested collectives (a reduce+bcast
// Allreduce running Reduce and Bcast, Split running Allgatherv, Barrier
// running Allreduce) attribute to the outermost kind and algorithm.
func (c *Comm) beginColl(k Coll, tag int, algo Algo) {
	p := c.me
	if p.collDepth == 0 {
		c.inst++
		c.op(fault.CollStart, tag)
		p.curColl = k
		p.curAlgo = algo
		p.collStartClock = p.clock
		p.collStartBytes = p.bytesSent
		p.collTag = tag
		p.collComm = c.id
		p.collDepth++
		p.bump(k).Calls++
		return
	}
	p.collDepth++
}

func (c *Comm) endColl() {
	p := c.me
	p.collDepth--
	if p.collDepth == 0 {
		if c.world.trace {
			p.recordEvent(p.collComm, p.curColl, p.curAlgo, p.collTag, p.bytesSent-p.collStartBytes, p.collStartClock, p.clock)
		}
		p.curColl = CollNone
		p.curAlgo = ""
	}
}

// --- world-level accessors ---

// EnableTrace turns on per-event timeline recording for subsequent Runs.
// Tracing never changes modeled clocks, traffic counters or the built
// trees — it only records.
func (w *World) EnableTrace() { w.trace = true }

// TraceEnabled reports whether the event timeline is being recorded.
func (w *World) TraceEnabled() bool { return w.trace }

// Events returns the merged event timeline of all ranks since the last
// Reset, deterministically ordered by (start clock, rank, per-rank seq).
// Empty unless EnableTrace was called before Run.
func (w *World) Events() []TraceEvent {
	var out []TraceEvent
	for _, p := range w.procs {
		out = append(out, p.events...)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Start != out[b].Start {
			return out[a].Start < out[b].Start
		}
		if out[a].Rank != out[b].Rank {
			return out[a].Rank < out[b].Rank
		}
		return out[a].Seq < out[b].Seq
	})
	return out
}

// Breakdown returns the per-phase × per-collective aggregation summed
// over all ranks since the last Reset. Always available.
func (w *World) Breakdown() Breakdown {
	b := NewBreakdown()
	for r := range w.procs {
		b.Merge(w.RankBreakdown(r))
	}
	return b
}

// RankBreakdown returns one rank's per-phase × per-collective aggregation.
func (w *World) RankBreakdown(rank int) Breakdown {
	b := NewBreakdown()
	for c, cs := range w.procs[rank].cells {
		b.Cells[c] = *cs
	}
	return b
}
