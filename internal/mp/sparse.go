package mp

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"

	"partree/internal/kernel"
)

// Adaptive sparse reduction encoding. Deep in a tree build the frontier's
// statistics blocks are mostly zeros — a node holding a handful of rows
// touches a handful of histogram cells — so shipping the dense int64
// vector wastes most of the reduction volume. AllreduceSum sends each
// reduction message in whichever encoding is smaller for that message's
// actual content: the dense vector (DenseElemBytes per element) or a list
// of (index, count) pairs (SparsePairBytes per nonzero). The choice is
// per message and self-describing on the wire, so ranks never need to
// agree on an encoding and the reduced totals are bit-identical to the
// dense collective regardless of what was chosen where.

// sparsePairs is the wire payload of a sparse-encoded reduction message:
// the nonzero elements of a length-n int64 vector as parallel index/count
// slices. Receivers type-switch on it, so a message is dense or sparse
// independently of what its peer expects to combine into.
type sparsePairs struct {
	n   int
	idx []int32
	cnt []int64
}

// EncodingStats counts one phase's adaptive reduction-encoding activity on
// the send side. Messages are attributed to the leg that produced them:
// reduce-leg messages carry a rank's own partial sums (their density is
// that rank's contribution), while broadcast/allgather-leg messages carry
// already-reduced totals (their density is a global property). Flushes —
// AllreduceSum calls that had a sparse alternative available — classify by
// the reduce leg only: a call counts sparse when at least one of the
// rank's reduce-leg sends went sparse, dense otherwise (including ranks
// that had no reduce-leg send at all, e.g. the reduction root). All
// counters sum cleanly across ranks and runs.
type EncodingStats struct {
	DenseFlushes    int64 // calls whose reduce-leg sends were all dense (or absent)
	SparseFlushes   int64 // calls with ≥1 sparse reduce-leg send
	DenseMsgs       int64 // reduce-leg messages sent dense
	SparseMsgs      int64 // reduce-leg messages sent sparse
	BcastDenseMsgs  int64 // broadcast/allgather-leg messages sent dense
	BcastSparseMsgs int64 // broadcast/allgather-leg messages sent sparse
	SentBytes       int64 // modeled bytes sent under the chosen encodings (both legs)
	DenseBytes      int64 // modeled bytes the same sends would have cost dense
}

// BytesSaved is the reduction-volume saving of the adaptive encoding.
func (e EncodingStats) BytesSaved() int64 { return e.DenseBytes - e.SentBytes }

func (e *EncodingStats) add(o EncodingStats) {
	e.DenseFlushes += o.DenseFlushes
	e.SparseFlushes += o.SparseFlushes
	e.DenseMsgs += o.DenseMsgs
	e.SparseMsgs += o.SparseMsgs
	e.BcastDenseMsgs += o.BcastDenseMsgs
	e.BcastSparseMsgs += o.BcastSparseMsgs
	e.SentBytes += o.SentBytes
	e.DenseBytes += o.DenseBytes
}

func (p *proc) encStats() *EncodingStats {
	if p.enc == nil {
		p.enc = make(map[string]*EncodingStats)
	}
	e := p.enc[p.curPhase()]
	if e == nil {
		e = &EncodingStats{}
		p.enc[p.curPhase()] = e
	}
	return e
}

func (p *proc) noteEncoding(sparse, reduceLeg bool, sent, dense int) {
	e := p.encStats()
	switch {
	case reduceLeg && sparse:
		e.SparseMsgs++
	case reduceLeg:
		e.DenseMsgs++
	case sparse:
		e.BcastSparseMsgs++
	default:
		e.BcastDenseMsgs++
	}
	e.SentBytes += int64(sent)
	e.DenseBytes += int64(dense)
}

func (p *proc) noteEncFlush(sparse bool) {
	e := p.encStats()
	if sparse {
		e.SparseFlushes++
	} else {
		e.DenseFlushes++
	}
}

// EncodingByPhase returns the adaptive-encoding counters per phase, summed
// over all ranks since the last Reset. Empty when no AllreduceSum with a
// positive threshold ran.
func (w *World) EncodingByPhase() map[string]EncodingStats {
	out := make(map[string]EncodingStats)
	for _, p := range w.procs {
		for phase, e := range p.enc {
			s := out[phase]
			s.add(*e)
			out[phase] = s
		}
	}
	return out
}

// EncodingTable renders per-phase adaptive-encoding counters as an aligned
// text table — the reduction-encoding row set the -stats outputs print
// below the cost breakdown, instead of folding the saving invisibly into
// the allreduce column.
func EncodingTable(enc map[string]EncodingStats) string {
	if len(enc) == 0 {
		return ""
	}
	phases := make([]string, 0, len(enc))
	for p := range enc {
		phases = append(phases, p)
	}
	sort.Strings(phases)
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-16s %8s %8s %10s %10s %9s %9s %10s %10s %8s\n",
		"reduction enc", "dense", "sparse", "dense msg", "sparse msg", "bc dense", "bc sparse", "sent MB", "saved MB", "saved")
	var tot EncodingStats
	row := func(name string, e EncodingStats) {
		pct := 0.0
		if e.DenseBytes > 0 {
			pct = 100 * float64(e.BytesSaved()) / float64(e.DenseBytes)
		}
		fmt.Fprintf(&sb, "%-16s %8d %8d %10d %10d %9d %9d %10.3f %10.3f %7.1f%%\n",
			name, e.DenseFlushes, e.SparseFlushes, e.DenseMsgs, e.SparseMsgs,
			e.BcastDenseMsgs, e.BcastSparseMsgs,
			float64(e.SentBytes)/1e6, float64(e.BytesSaved())/1e6, pct)
	}
	for _, p := range phases {
		row(phaseLabel(p), enc[p])
		tot.add(enc[p])
	}
	row("total", tot)
	return sb.String()
}

// sendSumAdaptive sends x to dst under tag in whichever encoding is
// smaller given the density threshold, bills the modeled bytes of the
// encoding actually used, and reports whether it chose sparse. reduceLeg
// tells the accounting which leg of the collective the message belongs to.
func (c *Comm) sendSumAdaptive(dst, tag int, x []int64, threshold float64, reduceLeg bool) bool {
	nnz := kernel.CountNonzero(x)
	if kernel.SparseWorthwhile(nnz, len(x), threshold) {
		sp := &sparsePairs{n: len(x), idx: make([]int32, 0, nnz), cnt: make([]int64, 0, nnz)}
		for i, v := range x {
			if v != 0 {
				sp.idx = append(sp.idx, int32(i))
				sp.cnt = append(sp.cnt, v)
			}
		}
		bytes := kernel.SparsePairBytes * nnz
		c.Send(dst, tag, sp, bytes)
		c.me.noteEncoding(true, reduceLeg, bytes, kernel.DenseElemBytes*len(x))
		return true
	}
	cp := append([]int64(nil), x...)
	bytes := kernel.DenseElemBytes * len(x)
	c.Send(dst, tag, cp, bytes)
	c.me.noteEncoding(false, reduceLeg, bytes, bytes)
	return false
}

// recvSumCombine receives an adaptively-encoded message and folds it into
// x element-wise, charging TOp per element actually combined (the dense
// path's combine charges per element; a sparse message only performs — and
// only bills — one add per pair, which is the compute side of the win).
func (c *Comm) recvSumCombine(src, tag int, x []int64) {
	msg := c.Recv(src, tag)
	switch v := msg.Payload.(type) {
	case []int64:
		combine(c, x, v, Sum[int64])
	case *sparsePairs:
		if v.n != len(x) {
			panic(fmt.Sprintf("mp: sparse reduction length mismatch %d vs %d", v.n, len(x)))
		}
		for i, ix := range v.idx {
			x[ix] += v.cnt[i]
		}
		d := float64(len(v.idx)) * c.world.Machine.TOp
		c.me.clock += d
		c.me.chargeComp(d)
	default:
		panic(fmt.Sprintf("mp: adaptive reduction got %T on comm %s tag %d", msg.Payload, c.ID(), tag))
	}
}

// recvSumReplace receives an adaptively-encoded message and replaces x
// with it (the broadcast/allgather leg). Like Bcast's replacement it
// charges no compute, and like Bcast it panics on a length mismatch
// rather than silently truncating.
func (c *Comm) recvSumReplace(src, tag int, x []int64) {
	msg := c.Recv(src, tag)
	switch v := msg.Payload.(type) {
	case []int64:
		if len(v) != len(x) {
			panic(fmt.Sprintf("mp: adaptive broadcast length mismatch %d vs %d", len(v), len(x)))
		}
		copy(x, v)
	case *sparsePairs:
		if v.n != len(x) {
			panic(fmt.Sprintf("mp: sparse broadcast length mismatch %d vs %d", v.n, len(x)))
		}
		clear(x)
		for i, ix := range v.idx {
			x[ix] = v.cnt[i]
		}
	default:
		panic(fmt.Sprintf("mp: adaptive broadcast got %T on comm %s tag %d", msg.Payload, c.ID(), tag))
	}
}

// AllreduceSum sums x element-wise across all ranks and leaves the
// identical total in x on every rank, like Allreduce(c, x, Sum), with the
// adaptive sparse wire encoding. threshold ≤ 0 delegates to the plain
// dense collective — payloads, modeled costs and accounting bit-identical
// to Allreduce — so a zero kernel.Options flows through unchanged.
//
// The algorithm is selected exactly like Allreduce's (the world's
// CollConfig resolved against the dense byte volume) and mirrors the
// dense collective step for step: the same messages between the same
// ranks in the same order, so fault plans keyed to operation counts fire
// at the same boundaries. Only each message's encoding — and therefore
// its modeled byte bill — differs, chosen per message from its actual
// density. The adaptive encoding works under every algorithm: the ring
// and halving/doubling variants encode each vector chunk independently,
// which lets a mostly-zero chunk go sparse even when the whole vector
// would not.
func AllreduceSum(c *Comm, x []int64, threshold float64) {
	if threshold <= 0 {
		Allreduce(c, x, Sum[int64])
		return
	}
	p := c.Size()
	if p == 1 {
		return
	}
	algo := c.allreduceAlgo(kernel.DenseElemBytes * len(x))
	c.beginColl(CollAllreduce, 0, algo)
	defer c.endColl()
	sparse := false
	defer func() { c.me.noteEncFlush(sparse) }()
	switch algo {
	case AlgoRecDoubling:
		for mask := 1; mask < p; mask <<= 1 {
			partner := c.rank ^ mask
			sparse = c.sendSumAdaptive(partner, tagReduce, x, threshold, true) || sparse
			c.recvSumCombine(partner, tagReduce, x)
		}
	case AlgoRing:
		sparse = allreduceSumRing(c, x, threshold)
	case AlgoRecHalving:
		sparse = allreduceSumRHD(c, x, threshold)
	default: // AlgoReduceBcast
		sparse = allreduceSumRedBcast(c, x, threshold)
	}
}

// allreduceSumRedBcast is the adaptive counterpart of Reduce+Bcast:
// binomial-tree reduce onto rank 0 followed by a binomial broadcast of
// the total, every message adaptively encoded. Works for any P ≥ 2.
func allreduceSumRedBcast(c *Comm, x []int64, threshold float64) (sparse bool) {
	p := c.Size()
	for mask := 1; mask < p; mask <<= 1 {
		if c.rank&mask != 0 {
			sparse = c.sendSumAdaptive(c.rank-mask, tagReduce, x, threshold, true) || sparse
			break
		}
		if c.rank|mask < p {
			c.recvSumCombine(c.rank+mask, tagReduce, x)
		}
	}
	var k int
	if c.rank == 0 {
		k = bits.Len(uint(p - 1))
	} else {
		k = bits.TrailingZeros(uint(c.rank))
		c.recvSumReplace(c.rank-1<<k, tagBcast, x)
	}
	for j := k - 1; j >= 0; j-- {
		if dst := c.rank + 1<<j; dst < p {
			c.sendSumAdaptive(dst, tagBcast, x, threshold, false)
		}
	}
	return sparse
}

// allreduceSumRing is the adaptive counterpart of allreduceRing: every
// circulating chunk is encoded from its own density.
func allreduceSumRing(c *Comm, x []int64, threshold float64) (sparse bool) {
	p, r, n := c.Size(), c.rank, len(x)
	right, left := (r+1)%p, (r-1+p)%p
	lo := func(i int) int { return i * n / p }
	for s := 0; s < p-1; s++ {
		sc := (r - s + p) % p
		sparse = c.sendSumAdaptive(right, tagReduce, x[lo(sc):lo(sc+1)], threshold, true) || sparse
		rc := (r - s - 1 + p) % p
		c.recvSumCombine(left, tagReduce, x[lo(rc):lo(rc+1)])
	}
	for s := 0; s < p-1; s++ {
		sc := (r + 1 - s + p) % p
		c.sendSumAdaptive(right, tagBcast, x[lo(sc):lo(sc+1)], threshold, false)
		rc := (r - s + p) % p
		c.recvSumReplace(left, tagBcast, x[lo(rc):lo(rc+1)])
	}
	return sparse
}

// allreduceSumRHD is the adaptive counterpart of allreduceRHD.
// Power-of-two sizes only (the resolver guarantees it).
func allreduceSumRHD(c *Comm, x []int64, threshold float64) (sparse bool) {
	p, r := c.Size(), c.rank
	type win struct{ lo, mid, hi int }
	var stack []win
	lo, hi := 0, len(x)
	for mask := 1; mask < p; mask <<= 1 {
		partner := r ^ mask
		mid := lo + (hi-lo)/2
		if r&mask == 0 {
			sparse = c.sendSumAdaptive(partner, tagReduce, x[mid:hi], threshold, true) || sparse
			c.recvSumCombine(partner, tagReduce, x[lo:mid])
		} else {
			sparse = c.sendSumAdaptive(partner, tagReduce, x[lo:mid], threshold, true) || sparse
			c.recvSumCombine(partner, tagReduce, x[mid:hi])
		}
		stack = append(stack, win{lo, mid, hi})
		if r&mask == 0 {
			hi = mid
		} else {
			lo = mid
		}
	}
	for i := len(stack) - 1; i >= 0; i-- {
		partner := r ^ (1 << i)
		w := stack[i]
		c.sendSumAdaptive(partner, tagBcast, x[lo:hi], threshold, false)
		if r&(1<<i) == 0 {
			c.recvSumReplace(partner, tagBcast, x[w.mid:w.hi])
		} else {
			c.recvSumReplace(partner, tagBcast, x[w.lo:w.mid])
		}
		lo, hi = w.lo, w.hi
	}
	return sparse
}
