package mp

import (
	"math"
	"reflect"
	"strings"
	"testing"
)

// named element types, admitted by the ~byte/~int32 constraint terms: the
// elemBytes regression of the observability PR (a type-switch on any(z)
// missed these and billed 8 bytes/element).
type kb byte
type ki32 int32
type ki64 int64
type kf64 float64

func TestElemBytesNamedTypes(t *testing.T) {
	cases := map[string][2]int{
		"byte":    {elemBytes[byte](), 1},
		"kb":      {elemBytes[kb](), 1},
		"int32":   {elemBytes[int32](), 4},
		"ki32":    {elemBytes[ki32](), 4},
		"int64":   {elemBytes[int64](), 8},
		"ki64":    {elemBytes[ki64](), 8},
		"float64": {elemBytes[float64](), 8},
		"kf64":    {elemBytes[kf64](), 8},
	}
	for name, c := range cases {
		if c[0] != c[1] {
			t.Errorf("elemBytes[%s] = %d, want %d", name, c[0], c[1])
		}
	}
}

// TestNamedTypeWireSize drives the billing end to end: sending a []kb
// must charge 1 byte/element on the modeled wire, not 8.
func TestNamedTypeWireSize(t *testing.T) {
	w := NewWorld(2, SP2())
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			SendSlice(c, 1, 3, make([]kb, 10))
		} else {
			RecvSlice[kb](c, 0, 3)
		}
	})
	if tr := w.Traffic(); tr.Bytes != 10 {
		t.Fatalf("10 named-byte elements billed as %d bytes, want 10", tr.Bytes)
	}
}

// TestAllreduceClockZeroBytes: the clock synchronization must transfer no
// modeled data volume — only startup latencies — while still aligning
// every rank's clock to at least the maximum at entry.
func TestAllreduceClockZeroBytes(t *testing.T) {
	m := Machine{TS: 1e-3, TW: 1e3, TC: 1, TOp: 1} // any stray byte would explode the clock
	for _, p := range []int{2, 3, 4, 5, 7, 8, 16} {
		w := NewWorld(p, m)
		w.Run(func(c *Comm) {
			c.AllreduceClock()
		})
		tr := w.Traffic()
		if tr.Bytes != 0 {
			t.Fatalf("p=%d: AllreduceClock transferred %d modeled bytes, want 0", p, tr.Bytes)
		}
		if tr.Msgs == 0 {
			t.Fatalf("p=%d: no synchronization messages at all", p)
		}
		if tr.CompTime != 0 {
			t.Fatalf("p=%d: AllreduceClock charged %g compute seconds", p, tr.CompTime)
		}
	}
}

// TestAllreduceClockCostAndAlignment pins the exact power-of-two cost
// (log₂P rounds of t_s with simultaneous entry, log₂P messages per rank)
// and the alignment guarantee under staggered entry clocks.
func TestAllreduceClockCostAndAlignment(t *testing.T) {
	m := Machine{TS: 1e-3, TW: 1e3, TC: 1}
	const p = 8
	w := NewWorld(p, m)
	w.Run(func(c *Comm) {
		c.AllreduceClock()
		want := 3e-3 // log2(8) rounds of t_s
		if d := c.Clock() - want; math.Abs(d) > 1e-12 {
			t.Errorf("rank %d: clock %.9f after AllreduceClock, want %.9f", c.Rank(), c.Clock(), want)
		}
	})
	if tr := w.Traffic(); tr.Msgs != p*3 {
		t.Fatalf("%d messages, want %d (log2(%d) per rank)", tr.Msgs, p*3, p)
	}

	// Staggered entry: every rank must end at or above the slowest entry.
	w = NewWorld(4, m)
	w.Run(func(c *Comm) {
		c.Compute(float64(c.Rank()) * 1e-3 / m.TC)
		c.AllreduceClock()
		if c.Clock() < 3e-3 {
			t.Errorf("rank %d: clock %.9f below slowest entry 3e-3", c.Rank(), c.Clock())
		}
	})
}

// traceProgram is a little SPMD program exercising phases, collectives
// and point-to-point traffic.
func traceProgram(c *Comm) {
	c.BeginPhase("alpha")
	x := []int64{int64(c.Rank())}
	Allreduce(c, x, Sum)
	c.EndPhase()
	c.BeginPhase("beta")
	c.Compute(1000)
	Allgatherv(c, 9, []int64{1, 2})
	c.EndPhase()
	if c.Rank() == 0 {
		c.Send(1, 4, nil, 64)
	} else if c.Rank() == 1 {
		c.Recv(0, 4)
	}
}

// TestBreakdownSumsMatchTraffic: the per-phase × per-collective cells
// must sum to exactly the aggregate counters and (within float summation
// order) the aggregate comm/comp times.
func TestBreakdownSumsMatchTraffic(t *testing.T) {
	w := NewWorld(4, SP2())
	w.Run(traceProgram)
	tr := w.Traffic()
	total := w.Breakdown().Total()
	if total.Msgs != tr.Msgs || total.Bytes != tr.Bytes {
		t.Fatalf("breakdown msgs/bytes %d/%d, traffic %d/%d", total.Msgs, total.Bytes, tr.Msgs, tr.Bytes)
	}
	if math.Abs(total.CommTime-tr.CommTime) > 1e-12 {
		t.Fatalf("breakdown comm %.12f, traffic %.12f", total.CommTime, tr.CommTime)
	}
	if math.Abs(total.CompTime-tr.CompTime) > 1e-12 {
		t.Fatalf("breakdown comp %.12f, traffic %.12f", total.CompTime, tr.CompTime)
	}
	// Per-rank as well.
	for r := 0; r < w.Size(); r++ {
		rt, rb := w.RankTraffic(r), w.RankBreakdown(r).Total()
		if rb.Msgs != rt.Msgs || rb.Bytes != rt.Bytes ||
			math.Abs(rb.CommTime-rt.CommTime) > 1e-12 || math.Abs(rb.CompTime-rt.CompTime) > 1e-12 {
			t.Fatalf("rank %d: breakdown %+v vs traffic %+v", r, rb, rt)
		}
	}
}

// TestPhaseAndCollectiveAttribution pins where the charges land.
func TestPhaseAndCollectiveAttribution(t *testing.T) {
	const p = 4
	w := NewWorld(p, SP2())
	w.Run(traceProgram)
	b := w.Breakdown()

	if got := b.Coll(CollAllreduce).Calls; got != p {
		t.Errorf("allreduce calls = %d, want %d (one per rank)", got, p)
	}
	if got := b.Coll(CollAllgather).Calls; got != p {
		t.Errorf("allgather calls = %d, want %d", got, p)
	}
	alpha := b.Phase("alpha")
	if alpha.CommTime <= 0 || alpha.Msgs == 0 {
		t.Errorf("phase alpha saw no communication: %+v", alpha)
	}
	if cs := b.Cells[Cell{"alpha", CollAllreduce, AlgoRecDoubling}]; cs.Msgs != alpha.Msgs {
		t.Errorf("alpha's traffic not attributed to allreduce: %+v vs %+v", cs, alpha)
	}
	beta := b.Phase("beta")
	if beta.CompTime <= 0 {
		t.Errorf("phase beta saw no computation: %+v", beta)
	}
	// The lone send/recv outside any phase lands in ("", p2p).
	p2p := b.Cells[Cell{"", CollP2P, ""}]
	if p2p.Msgs != 1 || p2p.Bytes != 64 {
		t.Errorf("unphased p2p cell %+v, want 1 msg / 64 bytes", p2p)
	}
}

// TestTraceInvariance: enabling tracing must not change clocks, traffic
// or breakdowns — the central invariant of the observability layer.
func TestTraceInvariance(t *testing.T) {
	run := func(trace bool) (*World, []float64) {
		w := NewWorld(5, SP2())
		if trace {
			w.EnableTrace()
		}
		w.Run(traceProgram)
		clocks := make([]float64, w.Size())
		for r := range clocks {
			clocks[r] = w.Clock(r)
		}
		return w, clocks
	}
	wOff, cOff := run(false)
	wOn, cOn := run(true)
	if !reflect.DeepEqual(cOff, cOn) {
		t.Fatalf("tracing changed modeled clocks: %v vs %v", cOff, cOn)
	}
	if wOff.Traffic() != wOn.Traffic() {
		t.Fatalf("tracing changed traffic: %+v vs %+v", wOff.Traffic(), wOn.Traffic())
	}
	if !reflect.DeepEqual(wOff.Breakdown(), wOn.Breakdown()) {
		t.Fatalf("tracing changed the breakdown")
	}
	if len(wOff.Events()) != 0 {
		t.Fatalf("events recorded without EnableTrace")
	}
	if len(wOn.Events()) == 0 {
		t.Fatalf("no events recorded with EnableTrace")
	}
}

// TestTraceEventsDeterministicAndWellFormed: two traced runs of the same
// program produce identical, time-ordered, sane event timelines.
func TestTraceEventsDeterministicAndWellFormed(t *testing.T) {
	run := func() []TraceEvent {
		w := NewWorld(4, SP2())
		w.EnableTrace()
		w.Run(traceProgram)
		return w.Events()
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("event timelines differ across identical runs")
	}
	for i, e := range a {
		if e.End < e.Start {
			t.Fatalf("event %d ends before it starts: %+v", i, e)
		}
		if e.Coll == "" || e.Rank < 0 || e.Rank >= 4 {
			t.Fatalf("malformed event %d: %+v", i, e)
		}
		if i > 0 && a[i].Start < a[i-1].Start {
			t.Fatalf("events not ordered by start clock at %d", i)
		}
	}
}

// TestBreakdownTable smoke-checks the rendered table.
func TestBreakdownTable(t *testing.T) {
	w := NewWorld(4, SP2())
	w.Run(traceProgram)
	table := w.Breakdown().Table()
	for _, want := range []string{"phase", "alpha", "beta", "(none)", "allreduce", "allgather", "p2p", "total", "collective"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
}

// TestResetClearsObservability: Reset must drop cells and events too.
func TestResetClearsObservability(t *testing.T) {
	w := NewWorld(2, SP2())
	w.EnableTrace()
	w.Run(traceProgram)
	if len(w.Events()) == 0 || len(w.Breakdown().Cells) == 0 {
		t.Fatal("expected observability data before reset")
	}
	w.Reset()
	if len(w.Events()) != 0 {
		t.Fatalf("%d events survived Reset", len(w.Events()))
	}
	if total := w.Breakdown().Total(); total != (CellStats{}) {
		t.Fatalf("breakdown survived Reset: %+v", total)
	}
}
