package mp

import (
	"fmt"
	"strings"
	"testing"
)

// voteFixture gives rank r of p its deterministic two-group ballot set
// (k=3 slots per group, some empty).
func voteFixture(r, k int) (attrs []int32, scores []float64) {
	attrs = make([]int32, 2*k)
	scores = make([]float64, 2*k)
	for i := 0; i < k; i++ {
		attrs[i] = int32((r + i*3) % 7)          // group 0: overlapping nominations
		attrs[k+i] = -1                          // group 1: mostly empty
		scores[i] = float64(r*10+i) / 100        // diagnostics only
	}
	if r%2 == 0 {
		attrs[k] = 5 // even ranks nominate attr 5 in group 1
	}
	return attrs, scores
}

// TestVoteElectAgreesAcrossRanks: the election result is bit-identical
// on every rank — each tallies the same concatenated ballot multiset.
func TestVoteElectAgreesAcrossRanks(t *testing.T) {
	const k, elect, numAttrs, nGroups = 3, 4, 8, 2
	for _, p := range testSizes {
		t.Run(fmt.Sprintf("p%d", p), func(t *testing.T) {
			w := NewWorld(p, SP2())
			elected := make([][]int32, p)
			counts := make([][]int32, p)
			w.Run(func(c *Comm) {
				attrs, scores := voteFixture(c.Rank(), k)
				e := make([]int32, nGroups*elect)
				n := make([]int32, nGroups)
				VoteElect(c, attrs, scores, nGroups, k, elect, numAttrs, e, n)
				elected[c.Rank()], counts[c.Rank()] = e, n
			})
			for r := 1; r < p; r++ {
				for i := range elected[0] {
					if elected[r][i] != elected[0][i] {
						t.Fatalf("rank %d elected %v; rank 0 elected %v", r, elected[r], elected[0])
					}
				}
				for g := range counts[0] {
					if counts[r][g] != counts[0][g] {
						t.Fatalf("rank %d counts %v; rank 0 counts %v", r, counts[r], counts[0])
					}
				}
			}
			// Group 1: only even ranks nominated attr 5; with at least one
			// even rank it must be the single winner.
			if counts[0][1] != 1 || elected[0][elect] != 5 {
				t.Fatalf("group 1 elected %v (count %d); want [5]", elected[0][elect:], counts[0][1])
			}
		})
	}
}

// TestVoteElectRankPermutationInvariance: reassigning which rank holds
// which ballot set changes nothing — the tally is over the multiset of
// ballots, and the count-based election ignores score summation order.
func TestVoteElectRankPermutationInvariance(t *testing.T) {
	const k, elect, numAttrs, nGroups, p = 3, 4, 8, 2, 5
	run := func(assign []int) []int32 {
		w := NewWorld(p, SP2())
		var out []int32
		w.Run(func(c *Comm) {
			attrs, scores := voteFixture(assign[c.Rank()], k)
			e := make([]int32, nGroups*elect)
			n := make([]int32, nGroups)
			VoteElect(c, attrs, scores, nGroups, k, elect, numAttrs, e, n)
			if c.Rank() == 0 {
				out = e
			}
		})
		return out
	}
	want := run([]int{0, 1, 2, 3, 4})
	for _, assign := range [][]int{{4, 3, 2, 1, 0}, {2, 0, 4, 1, 3}, {1, 4, 0, 3, 2}} {
		got := run(assign)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("assignment %v elected %v; want %v", assign, got, want)
			}
		}
	}
}

// TestVoteElectSerialFree: at P=1 the election is purely local — no
// modeled bytes, no "vote" collective row in the breakdown.
func TestVoteElectSerialFree(t *testing.T) {
	const k, elect, numAttrs = 3, 4, 8
	w := NewWorld(1, SP2())
	w.Run(func(c *Comm) {
		attrs, scores := voteFixture(0, k)
		e := make([]int32, 2*elect)
		n := make([]int32, 2)
		VoteElect(c, attrs, scores, 2, k, elect, numAttrs, e, n)
	})
	if tr := w.Traffic(); tr.Bytes != 0 {
		t.Fatalf("serial election charged %d bytes", tr.Bytes)
	}
	if tbl := w.Breakdown().Table(); strings.Contains(tbl, "vote") {
		t.Fatalf("serial election left a vote collective row:\n%s", tbl)
	}
}

// TestVoteElectChargesVoteCollective: at P>1 the ballot exchange is
// accounted as its own collective class.
func TestVoteElectChargesVoteCollective(t *testing.T) {
	const k, elect, numAttrs = 3, 4, 8
	w := NewWorld(4, SP2())
	w.Run(func(c *Comm) {
		attrs, scores := voteFixture(c.Rank(), k)
		e := make([]int32, 2*elect)
		n := make([]int32, 2)
		VoteElect(c, attrs, scores, 2, k, elect, numAttrs, e, n)
	})
	if tr := w.Traffic(); tr.Bytes == 0 {
		t.Fatal("parallel ballot exchange charged no bytes")
	}
	if tbl := w.Breakdown().Table(); !strings.Contains(tbl, CollVote.String()) {
		t.Fatalf("breakdown lacks the vote collective row:\n%s", tbl)
	}
}
