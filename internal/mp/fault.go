package mp

import (
	"fmt"
	"strings"
	"time"

	"partree/internal/fault"
)

// This file wires the fault-injection and failure-detection layer into
// the substrate. Three concerns live here:
//
//  1. Injection: an armed fault.Plan fires deterministic crashes, delays,
//     drops and duplicates at points in each rank's operation stream
//     (Comm.op / Comm.sendFault).
//  2. Detection: a blocked receive no longer hangs on a missing peer. The
//     waiter context checks, on every wake-up, whether the waited-on rank
//     died or finished, whether a recovery epoch started, and whether the
//     optional real-time bound expired — and surfaces a typed
//     *fault.Error (panicked, matching the substrate's protocol-error
//     convention) instead of blocking forever.
//  3. Recovery plumbing: EnterRecovery/ShrinkAlive/PurgeStale let the
//     surviving ranks agree on a fresh epoch-suffixed communicator with
//     the dead ranks removed and the stale traffic discarded. The actual
//     checkpoint/rollback protocol lives in internal/core.

// armedFault is one plan entry attached to its rank, with firing state.
// Touched only by the rank's own goroutine.
type armedFault struct {
	f     fault.Fault
	seen  int
	fired bool
}

func (af *armedFault) matches(p fault.Point, tag int) bool {
	if af.f.Point != fault.AnyOp && af.f.Point != p {
		return false
	}
	if af.f.Tag != fault.AnyTag && af.f.Tag != tag {
		return false
	}
	return true
}

// SetFaultPlan arms (or, with nil, disarms) a fault plan for subsequent
// Runs. Firing state resets: each fault fires at most once per arming
// (Reset re-arms).
func (w *World) SetFaultPlan(p *fault.Plan) {
	w.plan = p
	for _, pr := range w.procs {
		pr.armed = nil
	}
	if p == nil {
		return
	}
	for _, f := range p.Faults {
		if f.Kind.DiskFault() {
			continue // interpreted by the durable checkpoint store, not the substrate
		}
		if f.Rank < 0 || f.Rank >= w.Size() {
			panic(fmt.Sprintf("mp: fault plan targets rank %d of a %d-rank world", f.Rank, w.Size()))
		}
		if f.N < 1 {
			panic(fmt.Sprintf("mp: fault %v needs a trigger index N >= 1", f))
		}
		pr := w.procs[f.Rank]
		pr.armed = append(pr.armed, &armedFault{f: f})
	}
}

// SetRecvTimeout bounds every blocked receive by a real-time deadline; on
// expiry the receive fails with a *fault.Error wrapping fault.ErrTimeout.
// Zero (the default) keeps receives unbounded — dropped-message faults
// need a timeout to be detectable, crashes and finishes are detected
// without one.
func (w *World) SetRecvTimeout(d time.Duration) { w.recvTimeout = d }

// Faults returns the fault events fired since the last Reset, in firing
// order.
func (w *World) Faults() []fault.Event {
	w.fmu.Lock()
	defer w.fmu.Unlock()
	return append([]fault.Event(nil), w.faultEvents...)
}

// DeadRanks lists the ranks that terminated abnormally (injected crash or
// genuine panic) since the last Reset, ascending.
func (w *World) DeadRanks() []int {
	var out []int
	for r := range w.procs {
		if w.dead[r].Load() {
			out = append(out, r)
		}
	}
	return out
}

// DuplicatesDropped counts messages suppressed by the at-most-once
// sequence filter since the last Reset.
func (w *World) DuplicatesDropped() int64 { return w.dupDropped.Load() }

// recordFault appends a fired fault to the world log and, when tracing,
// to the firing rank's event timeline.
func (w *World) recordFault(e fault.Event) {
	w.fmu.Lock()
	w.faultEvents = append(w.faultEvents, e)
	w.fmu.Unlock()
	if w.trace {
		p := w.procs[e.Rank]
		p.events = append(p.events, TraceEvent{
			Rank: p.rank, Seq: len(p.events), Comm: "", Phase: p.curPhase(),
			Coll: "fault:" + e.Kind.String(), Tag: e.Tag, Start: e.Clock, End: p.clock,
		})
	}
}

// markDead registers an abnormal termination and wakes every blocked
// receive so waiters observe it instead of sleeping forever.
func (w *World) markDead(rank int, cause string) {
	w.fmu.Lock()
	w.deadCause[rank] = cause
	w.fmu.Unlock()
	w.dead[rank].Store(true)
	w.wakeAll()
}

// markDone registers a normal completion. A finished rank sends nothing
// further, so for a *blocked* waiter it is as unreachable as a dead one
// (messages it already sent are still delivered — the mailbox scan runs
// before the check).
func (w *World) markDone(rank int) {
	w.done[rank].Store(true)
	w.wakeAll()
}

// wakeAll broadcasts on every mailbox. The mailbox mutex is held for each
// broadcast so a waiter that checked the flags and is about to Wait
// cannot miss the wake-up.
func (w *World) wakeAll() {
	for _, p := range w.procs {
		p.mailbox.wake()
	}
}

func (w *World) deadCauseOf(rank int) string {
	w.fmu.Lock()
	defer w.fmu.Unlock()
	return w.deadCause[rank]
}

// waiter carries the failure-detection context of one blocked receive
// into the mailbox.
type waiter struct {
	w        *World
	comm     string
	tag      int
	src      int // world rank waited on, AnySource when not attributable
	self     int // waiting world rank
	epoch    int // waiter's recovery epoch at entry
	deadline time.Time
}

// check decides whether the blocked receive must fail now. Called with
// the mailbox lock held, after an unsuccessful queue scan.
func (wt *waiter) check() *fault.Error {
	w := wt.w
	if int(w.recoveryGen.Load()) > wt.epoch {
		return &fault.Error{Op: "recv", Waiter: wt.self, Rank: wt.src, Comm: wt.comm, Tag: wt.tag,
			Err: fault.ErrAborted, Cause: "a peer entered recovery"}
	}
	if wt.src >= 0 {
		if w.dead[wt.src].Load() {
			return &fault.Error{Op: "recv", Waiter: wt.self, Rank: wt.src, Comm: wt.comm, Tag: wt.tag,
				Err: fault.ErrRankDead, Cause: w.deadCauseOf(wt.src)}
		}
		if w.done[wt.src].Load() {
			return &fault.Error{Op: "recv", Waiter: wt.self, Rank: wt.src, Comm: wt.comm, Tag: wt.tag,
				Err: fault.ErrRankDead, Cause: "rank finished without sending"}
		}
	}
	return nil
}

func (wt *waiter) timeout() *fault.Error {
	return &fault.Error{Op: "recv", Waiter: wt.self, Rank: wt.src, Comm: wt.comm, Tag: wt.tag,
		Err: fault.ErrTimeout}
}

// gap reports n messages of the awaited stream missing in flight — a
// newer sequence number arrived first, so the earlier send(s) were
// dropped. Classified as a timeout: the awaited message will never come.
func (wt *waiter) gap(n int64) *fault.Error {
	return &fault.Error{Op: "recv", Waiter: wt.self, Rank: wt.src, Comm: wt.comm, Tag: wt.tag,
		Err: fault.ErrTimeout, Cause: fmt.Sprintf("%d earlier message(s) on this stream never arrived", n)}
}

// waiterFor builds the detection context of a receive on this comm.
func (c *Comm) waiterFor(src, tag int) waiter {
	wsrc := AnySource
	if src != AnySource {
		wsrc = c.ranks[src]
	}
	wt := waiter{w: c.world, comm: c.id, tag: tag, src: wsrc, self: c.me.rank, epoch: c.me.epoch}
	if d := c.world.recvTimeout; d > 0 {
		wt.deadline = time.Now().Add(d)
	}
	return wt
}

// op advances the rank's operation counter and fires any armed Crash or
// Delay fault whose trigger matches. Crash panics with fault.Crashed —
// the rank dies at exactly this operation, before any of its effects.
func (c *Comm) op(p fault.Point, tag int) {
	pr := c.me
	pr.opCount++
	if len(pr.armed) == 0 {
		return
	}
	for _, af := range pr.armed {
		if af.fired || af.f.Kind == fault.Drop || af.f.Kind == fault.Duplicate || !af.matches(p, tag) {
			continue
		}
		af.seen++
		if af.seen < af.f.N {
			continue
		}
		af.fired = true
		ev := fault.Event{Kind: af.f.Kind, Rank: pr.rank, Op: pr.opCount, Tag: tag, Clock: pr.clock}
		switch af.f.Kind {
		case fault.Crash:
			c.world.recordFault(ev)
			panic(fault.Crashed{Rank: pr.rank})
		case fault.Delay:
			pr.clock += af.f.Delay
			pr.chargeComm(af.f.Delay)
			c.world.recordFault(ev)
		}
	}
}

// sendFault fires armed Drop/Duplicate faults matching this send.
func (c *Comm) sendFault(tag int) (drop, dup bool) {
	pr := c.me
	for _, af := range pr.armed {
		if af.fired || (af.f.Kind != fault.Drop && af.f.Kind != fault.Duplicate) {
			continue
		}
		if af.f.Tag != fault.AnyTag && af.f.Tag != tag {
			continue
		}
		af.seen++
		if af.seen < af.f.N {
			continue
		}
		af.fired = true
		c.world.recordFault(fault.Event{Kind: af.f.Kind, Rank: pr.rank, Op: pr.opCount, Tag: tag, Clock: pr.clock})
		if af.f.Kind == fault.Drop {
			drop = true
		} else {
			dup = true
		}
	}
	return
}

// seqKey identifies one sender-side message stream for the at-most-once
// sequence numbers.
type seqKey struct {
	comm string
	dst  int // destination comm rank
	tag  int
}

func (p *proc) nextSeq(comm string, dst, tag int) int64 {
	if p.seqs == nil {
		p.seqs = make(map[seqKey]int64)
	}
	k := seqKey{comm, dst, tag}
	p.seqs[k]++
	return p.seqs[k]
}

// EnterRecovery moves the calling rank into the current recovery epoch,
// starting a new one if the rank was the first detector of this failure
// wave. Every receive still blocked in an older epoch is aborted with
// fault.ErrAborted so its rank joins too. Returns the epoch joined.
func (c *Comm) EnterRecovery() int {
	w := c.world
	w.fmu.Lock()
	gen := int(w.recoveryGen.Load())
	if c.me.epoch == gen {
		gen++
		w.recoveryGen.Store(int64(gen))
	}
	c.me.epoch = gen
	w.fmu.Unlock()
	w.wakeAll()
	return gen
}

// ShrinkAlive returns the survivor communicator of the caller's current
// recovery epoch: this comm's ranks minus the dead and the finished, in
// the original order, under the deterministic epoch-suffixed identity
// "<base>!<epoch>". Every survivor computes the same membership once the
// failure is globally visible; a stale membership self-corrects because
// its collectives fail and recovery re-enters with a fresh epoch.
func (c *Comm) ShrinkAlive() *Comm {
	w := c.world
	base := c.id
	if i := strings.IndexByte(base, '!'); i >= 0 {
		base = base[:i]
	}
	var ranks []int
	myNew := -1
	for _, wr := range c.ranks {
		if w.dead[wr].Load() || w.done[wr].Load() {
			continue
		}
		if wr == c.me.rank {
			myNew = len(ranks)
		}
		ranks = append(ranks, wr)
	}
	if myNew < 0 {
		panic("mp: ShrinkAlive called by a dead or finished rank")
	}
	return &Comm{
		world: w,
		id:    fmt.Sprintf("%s!%d", base, c.me.epoch),
		rank:  myNew,
		ranks: ranks,
		me:    c.me,
	}
}

// PurgeStale drops every message queued for the caller that does not
// belong to this communicator or one of its descendants — the stale
// traffic of pre-recovery epochs. Call it after a barrier on the survivor
// comm (so no stale sender is still mid-flight).
func (c *Comm) PurgeStale() { c.me.mailbox.purgeExcept(c.id) }
