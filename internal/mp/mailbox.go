package mp

import "sync"

// Msg is a delivered message. Payload is shared by reference — senders
// must not mutate a payload after sending (the collectives in this
// package always send freshly allocated buffers).
type Msg struct {
	Src     int     // world rank of the sender
	Tag     int     // user tag
	Payload any     // message body
	Bytes   int     // modeled wire size
	Arrive  float64 // modeled arrival time at the receiver
}

// qkey identifies a mailbox queue: messages match on the communicator
// identity and tag; the source is matched by scanning within the queue so
// both targeted and wildcard receives are possible.
type qkey struct {
	comm string
	tag  int
}

// mailbox is the unbounded per-rank message store. Sends never block;
// receives block until a matching message exists.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queues map[qkey][]Msg
}

func newMailbox() *mailbox {
	m := &mailbox{queues: make(map[qkey][]Msg)}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func (m *mailbox) put(comm string, msg Msg) {
	m.mu.Lock()
	k := qkey{comm, msg.Tag}
	m.queues[k] = append(m.queues[k], msg)
	m.mu.Unlock()
	m.cond.Broadcast()
}

// take removes and returns the first message in (comm, tag) order of
// arrival whose source matches src (AnySource matches all), blocking until
// one exists.
func (m *mailbox) take(comm string, src, tag int) Msg {
	m.mu.Lock()
	defer m.mu.Unlock()
	k := qkey{comm, tag}
	for {
		q := m.queues[k]
		for i, msg := range q {
			if src == AnySource || msg.Src == src {
				m.queues[k] = append(q[:i:i], q[i+1:]...)
				return msg
			}
		}
		m.cond.Wait()
	}
}

// tryTake is the non-blocking variant; ok is false when no matching
// message is queued.
func (m *mailbox) tryTake(comm string, src, tag int) (Msg, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	k := qkey{comm, tag}
	q := m.queues[k]
	for i, msg := range q {
		if src == AnySource || msg.Src == src {
			m.queues[k] = append(q[:i:i], q[i+1:]...)
			return msg, true
		}
	}
	return Msg{}, false
}

// pending reports how many messages are queued for (comm, tag).
func (m *mailbox) pending(comm string, tag int) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.queues[qkey{comm, tag}])
}
