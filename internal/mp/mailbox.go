package mp

import (
	"strings"
	"sync"
	"time"
)

// Msg is a delivered message. Payload is shared by reference — senders
// must not mutate a payload after sending (the collectives in this
// package always send freshly allocated buffers).
type Msg struct {
	Src     int     // comm rank of the sender within the delivering comm
	Tag     int     // user tag
	Payload any     // message body
	Bytes   int     // modeled wire size
	Arrive  float64 // modeled arrival time at the receiver
	Seq     int64   // per-(comm,src,tag) sequence number; 0 when unsequenced
}

// qkey identifies a mailbox queue: messages match on the communicator
// identity and tag; the source is matched by scanning within the queue so
// both targeted and wildcard receives are possible.
type qkey struct {
	comm string
	tag  int
}

// dupKey identifies one receiver-side message stream for the
// at-most-once sequence filter.
type dupKey struct {
	comm string
	src  int // comm rank of the sender
	tag  int
}

// mailbox is the unbounded per-rank message store. Sends never block;
// receives block until a matching message exists, the waited-on rank is
// unreachable, a recovery epoch starts, or the optional real-time
// deadline expires.
type mailbox struct {
	mu        sync.Mutex
	cond      *sync.Cond
	queues    map[qkey][]Msg
	lastSeq   map[dupKey]int64 // highest accepted Seq per stream (nil until sequenced traffic)
	lastTaken map[dupKey]int64 // highest consumed Seq per stream, for gap (drop) detection
}

func newMailbox() *mailbox {
	m := &mailbox{queues: make(map[qkey][]Msg)}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// put queues msg and reports whether it was accepted; a sequenced message
// (Seq != 0) whose stream already delivered that Seq is a duplicate and
// is rejected.
func (m *mailbox) put(comm string, msg Msg) bool {
	m.mu.Lock()
	if msg.Seq != 0 {
		dk := dupKey{comm, msg.Src, msg.Tag}
		if m.lastSeq == nil {
			m.lastSeq = make(map[dupKey]int64)
		}
		if msg.Seq <= m.lastSeq[dk] {
			m.mu.Unlock()
			return false
		}
		m.lastSeq[dk] = msg.Seq
	}
	k := qkey{comm, msg.Tag}
	m.queues[k] = append(m.queues[k], msg)
	m.mu.Unlock()
	m.cond.Broadcast()
	return true
}

// take removes and returns the first message in (comm, tag) order of
// arrival whose source matches src (AnySource matches all). It blocks
// until one exists — bounded by the waiter: each wake-up re-checks the
// queue first (a message already delivered always wins), then the
// waiter's failure conditions (dead/finished sender, recovery epoch,
// deadline), so a missing peer surfaces as a typed error, never a hang.
func (m *mailbox) take(comm string, src, tag int, wt *waiter) (Msg, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !wt.deadline.IsZero() {
		// The condition variable has no timed wait: a timer broadcast wakes
		// the loop so it can observe the expired deadline.
		t := time.AfterFunc(time.Until(wt.deadline)+time.Millisecond, func() {
			m.mu.Lock()
			m.cond.Broadcast()
			m.mu.Unlock()
		})
		defer t.Stop()
	}
	k := qkey{comm, tag}
	for {
		q := m.queues[k]
		for i, msg := range q {
			if src == AnySource || msg.Src == src {
				if msg.Seq != 0 {
					// Sequenced stream: a jump past lastTaken+1 means an
					// earlier message of this stream was dropped in flight —
					// surface it now rather than deliver out of order (or
					// wait for a timeout that may not be configured).
					dk := dupKey{comm, msg.Src, msg.Tag}
					if want := m.lastTakenLocked(dk) + 1; msg.Seq > want {
						return Msg{}, wt.gap(msg.Seq - want)
					}
					m.lastTaken[dk] = msg.Seq
				}
				m.queues[k] = append(q[:i:i], q[i+1:]...)
				return msg, nil
			}
		}
		if !wt.deadline.IsZero() && !time.Now().Before(wt.deadline) {
			return Msg{}, wt.timeout()
		}
		if err := wt.check(); err != nil {
			return Msg{}, err
		}
		m.cond.Wait()
	}
}

// tryTake is the non-blocking variant; ok is false when no matching
// message is queued.
func (m *mailbox) tryTake(comm string, src, tag int) (Msg, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	k := qkey{comm, tag}
	q := m.queues[k]
	for i, msg := range q {
		if src == AnySource || msg.Src == src {
			if msg.Seq != 0 {
				// Opportunistic probes deliver across gaps; just track the
				// consumed position so blocking receives stay consistent.
				dk := dupKey{comm, msg.Src, msg.Tag}
				if msg.Seq > m.lastTakenLocked(dk) {
					m.lastTaken[dk] = msg.Seq
				}
			}
			m.queues[k] = append(q[:i:i], q[i+1:]...)
			return msg, true
		}
	}
	return Msg{}, false
}

// lastTakenLocked reads (allocating on first use) the consumed-Seq high
// water mark of one stream. Caller holds mu.
func (m *mailbox) lastTakenLocked(dk dupKey) int64 {
	if m.lastTaken == nil {
		m.lastTaken = make(map[dupKey]int64)
	}
	return m.lastTaken[dk]
}

// pending reports how many messages are queued for (comm, tag).
func (m *mailbox) pending(comm string, tag int) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.queues[qkey{comm, tag}])
}

// wake broadcasts under the lock so a waiter between its failure check
// and cond.Wait cannot miss the wake-up.
func (m *mailbox) wake() {
	m.mu.Lock()
	m.cond.Broadcast()
	m.mu.Unlock()
}

// purgeExcept drops every queued message (and sequence stream) not
// belonging to comm id or one of its "/"-descendants — the stale traffic
// of pre-recovery communicators.
func (m *mailbox) purgeExcept(id string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	keep := func(comm string) bool {
		// The comm itself, its collective instances (id#inst), and its
		// "/"-descendants (and their instances) survive.
		return comm == id || strings.HasPrefix(comm, id+"/") || strings.HasPrefix(comm, id+"#")
	}
	for k := range m.queues {
		if !keep(k.comm) {
			delete(m.queues, k)
		}
	}
	for k := range m.lastSeq {
		if !keep(k.comm) {
			delete(m.lastSeq, k)
		}
	}
	for k := range m.lastTaken {
		if !keep(k.comm) {
			delete(m.lastTaken, k)
		}
	}
}

// drain discards all queued messages and sequence state (World.Reset).
func (m *mailbox) drain() {
	m.mu.Lock()
	m.queues = make(map[qkey][]Msg)
	m.lastSeq = nil
	m.lastTaken = nil
	m.mu.Unlock()
}
