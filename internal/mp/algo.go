package mp

import (
	"fmt"
	"math/bits"
	"strings"
)

// Collective-algorithm selection. Each collective of the substrate has a
// default algorithm (the historic hypercube formulation — recursive
// doubling for power-of-two allreduce, binomial reduce+bcast otherwise,
// binomial broadcast, ring allgather) plus selectable alternatives, chosen
// per world through CollConfig: explicitly, or automatically from the
// message size and the machine's t_s/t_w via the closed-form cost models
// below. The default configuration reproduces the historic behavior
// bit for bit — same messages, same order, same modeled clocks.

// Algo names one collective algorithm (or a selection policy).
type Algo string

const (
	// AlgoDefault keeps the historic algorithm of each collective.
	AlgoDefault Algo = "default"
	// AlgoAuto picks the cheapest algorithm per call from the closed-form
	// cost model (message size, P, t_s/t_w).
	AlgoAuto Algo = "auto"

	// Allreduce algorithms.
	AlgoRecDoubling Algo = "rdbl"      // recursive doubling (power-of-two only)
	AlgoRing        Algo = "ring"      // reduce-scatter + ring allgather
	AlgoRecHalving  Algo = "rhd"       // recursive halving + doubling (power-of-two only)
	AlgoReduceBcast Algo = "red+bcast" // binomial reduce onto 0 + broadcast

	// Bcast algorithms.
	AlgoBinomial         Algo = "binomial"
	AlgoScatterAllgather Algo = "scatter-ag" // binomial scatter + ring allgather (van de Geijn)

	// Allgatherv algorithms (ring is AlgoRing).
	AlgoGatherBcast Algo = "gather+bcast"

	// Labels of the fixed-algorithm collectives (breakdown "algo" column).
	AlgoLinear   Algo = "linear"   // Gatherv
	AlgoPairwise Algo = "pairwise" // Alltoallv
)

// CollConfig selects the algorithm of each configurable collective. The
// zero value (or AlgoDefault everywhere) is the historic behavior.
type CollConfig struct {
	// Allreduce: default | auto | rdbl | ring | rhd | red+bcast.
	// rdbl/rhd fall back to red+bcast on non-power-of-two worlds.
	// Also governs AllreduceSum (the adaptive sparse encoding works under
	// every algorithm) and the algo label of Barrier.
	Allreduce Algo
	// Bcast: default | auto | binomial | scatter-ag.
	Bcast Algo
	// Allgather: default | ring | gather+bcast. No auto rule — the
	// per-rank contribution sizes of Allgatherv are not known up front.
	Allgather Algo
}

func algoAllowed(a Algo, allowed ...Algo) bool {
	if a == "" || a == AlgoDefault {
		return true
	}
	for _, x := range allowed {
		if a == x {
			return true
		}
	}
	return false
}

// Validate rejects algorithm names that the respective collective does
// not implement.
func (cfg CollConfig) Validate() error {
	if !algoAllowed(cfg.Allreduce, AlgoAuto, AlgoRecDoubling, AlgoRing, AlgoRecHalving, AlgoReduceBcast) {
		return fmt.Errorf("allreduce algorithm %q (want default|auto|rdbl|ring|rhd|red+bcast)", cfg.Allreduce)
	}
	if !algoAllowed(cfg.Bcast, AlgoAuto, AlgoBinomial, AlgoScatterAllgather) {
		return fmt.Errorf("bcast algorithm %q (want default|auto|binomial|scatter-ag)", cfg.Bcast)
	}
	if !algoAllowed(cfg.Allgather, AlgoRing, AlgoGatherBcast) {
		return fmt.Errorf("allgather algorithm %q (want default|ring|gather+bcast)", cfg.Allgather)
	}
	return nil
}

// ParseCollSpec parses the -coll-algo flag syntax:
//
//	""                                  → all defaults
//	"auto"                              → allreduce and bcast auto
//	"ring"                              → allreduce algorithm (shorthand)
//	"allreduce=rhd,bcast=scatter-ag"    → per-collective assignments
func ParseCollSpec(spec string) (CollConfig, error) {
	var cfg CollConfig
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == string(AlgoDefault) {
		return cfg, nil
	}
	if !strings.Contains(spec, "=") {
		a := Algo(spec)
		if a == AlgoAuto {
			cfg.Allreduce, cfg.Bcast = AlgoAuto, AlgoAuto
		} else {
			cfg.Allreduce = a
		}
		if err := cfg.Validate(); err != nil {
			return CollConfig{}, err
		}
		return cfg, nil
	}
	for _, part := range strings.Split(spec, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return CollConfig{}, fmt.Errorf("mp: bad collective spec %q (want coll=algo)", part)
		}
		a := Algo(strings.TrimSpace(kv[1]))
		switch strings.TrimSpace(kv[0]) {
		case "allreduce":
			cfg.Allreduce = a
		case "bcast":
			cfg.Bcast = a
		case "allgather":
			cfg.Allgather = a
		default:
			return CollConfig{}, fmt.Errorf("mp: unknown collective %q in spec (want allreduce|bcast|allgather)", kv[0])
		}
	}
	if err := cfg.Validate(); err != nil {
		return CollConfig{}, err
	}
	return cfg, nil
}

func isPow2(p int) bool { return p&(p-1) == 0 }

// ceilLog2 returns ⌈log₂(p)⌉ (0 for p ≤ 1).
func ceilLog2(p int) int {
	if p <= 1 {
		return 0
	}
	return bits.Len(uint(p - 1))
}

// defaultAllreduceAlgo is the historic choice: recursive doubling on a
// power-of-two world, binomial reduce + broadcast otherwise.
func defaultAllreduceAlgo(p int) Algo {
	if isPow2(p) {
		return AlgoRecDoubling
	}
	return AlgoReduceBcast
}

// AllreduceAlgoCost is the closed-form per-rank wall-clock model of one
// dense allreduce of the given byte volume, assuming simultaneous entry
// and ignoring per-hop latency and reduction arithmetic (the estimate the
// auto selection rule and the hybrid's split trigger use; the exact
// recurrences live in model.go):
//
//	rdbl       log₂P·(t_s + t_w·B)               (power-of-two only)
//	red+bcast  2·⌈log₂P⌉·(t_s + t_w·B)
//	ring       2(P−1)·t_s + 2·t_w·B·(P−1)/P
//	rhd        2·log₂P·t_s + 2·t_w·B·(P−1)/P     (power-of-two only)
//
// Infinite for an algorithm the world size cannot run.
func AllreduceAlgoCost(algo Algo, p, bytes int, m Machine) float64 {
	if p <= 1 {
		return 0
	}
	l := float64(ceilLog2(p))
	b := float64(bytes)
	frac := float64(p-1) / float64(p)
	switch algo {
	case AlgoRecDoubling:
		if !isPow2(p) {
			return inf
		}
		return l * (m.TS + m.TW*b)
	case AlgoReduceBcast:
		return 2 * l * (m.TS + m.TW*b)
	case AlgoRing:
		return 2*float64(p-1)*m.TS + 2*m.TW*b*frac
	case AlgoRecHalving:
		if !isPow2(p) {
			return inf
		}
		return 2*l*m.TS + 2*m.TW*b*frac
	default:
		return inf
	}
}

const inf = 1e300

// autoAllreduceAlgo picks the cheapest allreduce algorithm under the
// closed-form model. Deterministic in (p, bytes, machine), so every rank
// of a collective resolves the same algorithm. Ties break toward the
// earlier entry (latency-optimal first).
func autoAllreduceAlgo(p, bytes int, m Machine) Algo {
	best, bestCost := AlgoReduceBcast, inf
	for _, a := range []Algo{AlgoRecDoubling, AlgoRecHalving, AlgoRing, AlgoReduceBcast} {
		if c := AllreduceAlgoCost(a, p, bytes, m); c < bestCost {
			best, bestCost = a, c
		}
	}
	return best
}

// ResolveAllreduceAlgo turns a configured allreduce selection into the
// concrete algorithm a p-rank world runs for a message of the given dense
// byte volume.
func ResolveAllreduceAlgo(cfg Algo, p, bytes int, m Machine) Algo {
	switch cfg {
	case "", AlgoDefault:
		return defaultAllreduceAlgo(p)
	case AlgoAuto:
		return autoAllreduceAlgo(p, bytes, m)
	case AlgoRecDoubling, AlgoRecHalving:
		if !isPow2(p) {
			return AlgoReduceBcast
		}
		return cfg
	default:
		return cfg
	}
}

// BcastAlgoCost is the closed-form model of one broadcast of B bytes:
// binomial ⌈log₂P⌉·(t_s+t_w·B); scatter-ag (⌈log₂P⌉+P−1)·t_s +
// 2·t_w·B·(P−1)/P.
func BcastAlgoCost(algo Algo, p, bytes int, m Machine) float64 {
	if p <= 1 {
		return 0
	}
	l := float64(ceilLog2(p))
	b := float64(bytes)
	frac := float64(p-1) / float64(p)
	switch algo {
	case AlgoBinomial:
		return l * (m.TS + m.TW*b)
	case AlgoScatterAllgather:
		return (l+float64(p-1))*m.TS + 2*m.TW*b*frac
	default:
		return inf
	}
}

func resolveBcastAlgo(cfg Algo, p, bytes int, m Machine) Algo {
	switch cfg {
	case "", AlgoDefault:
		return AlgoBinomial
	case AlgoAuto:
		if BcastAlgoCost(AlgoScatterAllgather, p, bytes, m) < BcastAlgoCost(AlgoBinomial, p, bytes, m) {
			return AlgoScatterAllgather
		}
		return AlgoBinomial
	default:
		return cfg
	}
}

func resolveAllgatherAlgo(cfg Algo) Algo {
	switch cfg {
	case "", AlgoDefault:
		return AlgoRing
	default:
		return cfg
	}
}

// --- per-comm resolution (reads the world's CollConfig) ---

func (c *Comm) allreduceAlgo(bytes int) Algo {
	return ResolveAllreduceAlgo(c.world.coll.Allreduce, c.Size(), bytes, c.world.Machine)
}

func (c *Comm) bcastAlgo(bytes int) Algo {
	return resolveBcastAlgo(c.world.coll.Bcast, c.Size(), bytes, c.world.Machine)
}

func (c *Comm) allgatherAlgo() Algo {
	return resolveAllgatherAlgo(c.world.coll.Allgather)
}

// AllreduceCostEstimate returns the closed-form modeled cost of one dense
// allreduce of the given byte volume on this communicator under the
// world's configured algorithm selection — the estimate the hybrid
// formulation's split trigger accumulates without running a collective.
// Under the default configuration it is exactly
// SendCost(bytes)·⌈log₂P⌉, the paper's Equation 2 estimate (also for
// non-power-of-two worlds, where the historic trigger used the same
// formula even though the fallback algorithm pays more).
func (c *Comm) AllreduceCostEstimate(bytes int) float64 {
	cfg := c.world.coll.Allreduce
	if cfg == "" || cfg == AlgoDefault {
		return c.world.Machine.SendCost(bytes) * float64(ceilLog2(c.Size()))
	}
	algo := c.allreduceAlgo(bytes)
	return AllreduceAlgoCost(algo, c.Size(), bytes, c.world.Machine)
}
