package mp

import (
	"fmt"
	"math/rand/v2"
	"reflect"
	"testing"
)

// testSizes covers 1, 2, powers of two and awkward non-powers.
var testSizes = []int{1, 2, 3, 4, 5, 7, 8, 16}

func TestSendRecvFIFO(t *testing.T) {
	w := NewWorld(2, SP2())
	got := make([]int64, 0, 10)
	w.Run(func(c *Comm) {
		switch c.Rank() {
		case 0:
			for i := 0; i < 10; i++ {
				SendSlice(c, 1, 5, []int64{int64(i)})
			}
		case 1:
			for i := 0; i < 10; i++ {
				got = append(got, RecvSlice[int64](c, 0, 5)[0])
			}
		}
	})
	for i, v := range got {
		if v != int64(i) {
			t.Fatalf("message %d out of order: got %d", i, v)
		}
	}
}

func TestRecvByTagAndSource(t *testing.T) {
	w := NewWorld(3, SP2())
	var fromTag2, from2 []int64
	w.Run(func(c *Comm) {
		switch c.Rank() {
		case 1:
			SendSlice(c, 0, 1, []int64{11})
			SendSlice(c, 0, 2, []int64{12})
		case 2:
			SendSlice(c, 0, 1, []int64{21})
		case 0:
			// Receive out of arrival order: tag 2 first, then by source.
			fromTag2 = RecvSlice[int64](c, 1, 2)
			from2 = RecvSlice[int64](c, 2, 1)
			if got := RecvSlice[int64](c, 1, 1); got[0] != 11 {
				t.Errorf("rank1/tag1: got %d, want 11", got[0])
			}
		}
	})
	if fromTag2[0] != 12 || from2[0] != 21 {
		t.Fatalf("selective receive failed: %v %v", fromTag2, from2)
	}
}

func TestTryRecv(t *testing.T) {
	w := NewWorld(2, SP2())
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			// Tag 8 is never sent: TryRecv must not block and must miss.
			if _, ok := c.TryRecv(1, 8); ok {
				t.Error("TryRecv returned a message for a tag never sent")
			}
			c.Barrier()
			// After the barrier, rank 1's pre-barrier send is delivered.
			if _, ok := c.TryRecv(1, 9); !ok {
				t.Error("TryRecv missed a delivered message")
			}
		} else {
			SendSlice(c, 0, 9, []int64{1})
			c.Barrier()
		}
	})
}

func TestAllreduceSum(t *testing.T) {
	for _, p := range testSizes {
		t.Run(fmt.Sprint(p), func(t *testing.T) {
			w := NewWorld(p, SP2())
			results := make([][]int64, p)
			w.Run(func(c *Comm) {
				x := []int64{int64(c.Rank()), 1, int64(c.Rank() * c.Rank())}
				Allreduce(c, x, Sum)
				results[c.Rank()] = x
			})
			var wantA, wantC int64
			for r := 0; r < p; r++ {
				wantA += int64(r)
				wantC += int64(r * r)
			}
			want := []int64{wantA, int64(p), wantC}
			for r, got := range results {
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("rank %d: got %v, want %v", r, got, want)
				}
			}
		})
	}
}

func TestAllreduceMinMaxFloat(t *testing.T) {
	for _, p := range testSizes {
		w := NewWorld(p, SP2())
		mins := make([]float64, p)
		maxs := make([]float64, p)
		w.Run(func(c *Comm) {
			lo := []float64{float64(c.Rank()) * 1.5}
			hi := []float64{float64(c.Rank()) * 1.5}
			Allreduce(c, lo, Min)
			Allreduce(c, hi, Max)
			mins[c.Rank()], maxs[c.Rank()] = lo[0], hi[0]
		})
		for r := 0; r < p; r++ {
			if mins[r] != 0 || maxs[r] != float64(p-1)*1.5 {
				t.Fatalf("p=%d rank %d: min %g max %g", p, r, mins[r], maxs[r])
			}
		}
	}
}

func TestReduceAndBcastAllRoots(t *testing.T) {
	for _, p := range testSizes {
		for root := 0; root < p; root++ {
			w := NewWorld(p, SP2())
			out := make([][]int64, p)
			w.Run(func(c *Comm) {
				x := []int64{int64(c.Rank() + 1)}
				Reduce(c, x, Sum, root)
				if c.Rank() == root {
					x[0] *= 10
				} else {
					x[0] = -1
				}
				Bcast(c, x, root)
				out[c.Rank()] = x
			})
			want := int64(p*(p+1)/2) * 10
			for r := 0; r < p; r++ {
				if out[r][0] != want {
					t.Fatalf("p=%d root=%d rank=%d: got %d, want %d", p, root, r, out[r][0], want)
				}
			}
		}
	}
}

func TestGatherv(t *testing.T) {
	for _, p := range testSizes {
		w := NewWorld(p, SP2())
		var rows [][]int64
		w.Run(func(c *Comm) {
			mine := make([]int64, c.Rank()) // rank r contributes r elements
			for i := range mine {
				mine[i] = int64(c.Rank()*100 + i)
			}
			got := Gatherv(c, 3, mine, 0)
			if c.Rank() == 0 {
				rows = got
			} else if got != nil {
				t.Errorf("non-root rank %d received a gather result", c.Rank())
			}
		})
		if len(rows) != p {
			t.Fatalf("p=%d: gathered %d rows", p, len(rows))
		}
		for r, row := range rows {
			if len(row) != r {
				t.Fatalf("p=%d: row %d has %d elements, want %d", p, r, len(row), r)
			}
			for i, v := range row {
				if v != int64(r*100+i) {
					t.Fatalf("p=%d row %d[%d] = %d", p, r, i, v)
				}
			}
		}
	}
}

func TestAllgathervOrderAndReplication(t *testing.T) {
	for _, p := range testSizes {
		w := NewWorld(p, SP2())
		outs := make([][]int64, p)
		w.Run(func(c *Comm) {
			mine := make([]int64, c.Rank()%3) // including empty contributions
			for i := range mine {
				mine[i] = int64(c.Rank()*10 + i)
			}
			outs[c.Rank()] = Allgatherv(c, 4, mine)
		})
		var want []int64
		for r := 0; r < p; r++ {
			for i := 0; i < r%3; i++ {
				want = append(want, int64(r*10+i))
			}
		}
		for r := 0; r < p; r++ {
			if !reflect.DeepEqual(outs[r], want) && !(len(outs[r]) == 0 && len(want) == 0) {
				t.Fatalf("p=%d rank %d: got %v, want %v", p, r, outs[r], want)
			}
		}
	}
}

func TestAlltoallv(t *testing.T) {
	for _, p := range testSizes {
		w := NewWorld(p, SP2())
		outs := make([][][]byte, p)
		w.Run(func(c *Comm) {
			send := make([][]byte, p)
			for dst := 0; dst < p; dst++ {
				send[dst] = []byte(fmt.Sprintf("%d->%d", c.Rank(), dst))
			}
			outs[c.Rank()] = Alltoallv(c, 6, send)
		})
		for r := 0; r < p; r++ {
			for src := 0; src < p; src++ {
				want := fmt.Sprintf("%d->%d", src, r)
				if string(outs[r][src]) != want {
					t.Fatalf("p=%d: rank %d block from %d = %q, want %q", p, r, src, outs[r][src], want)
				}
			}
		}
	}
}

func TestBcastValue(t *testing.T) {
	type payload struct{ X int }
	for _, p := range testSizes {
		for root := 0; root < p; root += 2 {
			w := NewWorld(p, SP2())
			got := make([]any, p)
			w.Run(func(c *Comm) {
				var v any
				if c.Rank() == root {
					v = &payload{X: 42}
				}
				got[c.Rank()] = BcastValue(c, v, 100, root)
			})
			for r := 0; r < p; r++ {
				pl, ok := got[r].(*payload)
				if !ok || pl.X != 42 {
					t.Fatalf("p=%d root=%d rank=%d: got %#v", p, root, r, got[r])
				}
			}
		}
	}
}

func TestBarrierAlignsClocks(t *testing.T) {
	w := NewWorld(4, SP2())
	w.Run(func(c *Comm) {
		c.Compute(float64(c.Rank()) * 1e6) // rank r works r seconds
		c.Barrier()
		if c.Clock() < 3.0 {
			t.Errorf("rank %d clock %.3f < slowest rank's 3.0 after barrier", c.Rank(), c.Clock())
		}
	})
}

func TestClockMonotonicAndDeterministic(t *testing.T) {
	run := func() []float64 {
		w := NewWorld(5, SP2())
		rng := rand.New(rand.NewPCG(1, 2))
		_ = rng
		w.Run(func(c *Comm) {
			prev := c.Clock()
			for i := 0; i < 20; i++ {
				x := []int64{int64(c.Rank())}
				Allreduce(c, x, Sum)
				c.Compute(float64((c.Rank()*7+i)%5) * 1000)
				if c.Clock() < prev {
					t.Errorf("clock went backwards on rank %d", c.Rank())
				}
				prev = c.Clock()
			}
		})
		out := make([]float64, 5)
		for r := range out {
			out[r] = w.Clock(r)
		}
		return out
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("modeled clocks are not deterministic: %v vs %v", a, b)
	}
}

func TestSendCostAccounting(t *testing.T) {
	m := Machine{TS: 1e-3, TW: 1e-6, TC: 1, TOp: 0}
	w := NewWorld(2, m)
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 0, nil, 1000)
			want := 1e-3 + 1e-6*1000
			if diff := c.Clock() - want; diff > 1e-12 || diff < -1e-12 {
				t.Errorf("sender clock %.9f, want %.9f", c.Clock(), want)
			}
		} else {
			msg := c.Recv(0, 0)
			if msg.Bytes != 1000 {
				t.Errorf("bytes = %d", msg.Bytes)
			}
			if c.Clock() < 2e-3-1e-12 {
				t.Errorf("receiver clock %.9f below arrival time", c.Clock())
			}
		}
	})
	tr := w.Traffic()
	if tr.Msgs != 1 || tr.Bytes != 1000 {
		t.Fatalf("traffic = %+v", tr)
	}
}

func TestSplitGroupsAndIsolation(t *testing.T) {
	w := NewWorld(6, SP2())
	w.Run(func(c *Comm) {
		color := c.Rank() % 2
		sub := c.Split(color, c.Rank())
		if sub.Size() != 3 {
			t.Errorf("rank %d: subcomm size %d, want 3", c.Rank(), sub.Size())
		}
		if want := c.Rank() / 2; sub.Rank() != want {
			t.Errorf("rank %d: subrank %d, want %d", c.Rank(), sub.Rank(), want)
		}
		if sub.WorldRank(sub.Rank()) != c.Rank() {
			t.Errorf("rank %d: world mapping broken", c.Rank())
		}
		// Same-tag traffic in sibling comms must not cross.
		x := []int64{int64(c.Rank())}
		Allreduce(sub, x, Sum)
		want := int64(0 + 2 + 4)
		if color == 1 {
			want = 1 + 3 + 5
		}
		if x[0] != want {
			t.Errorf("rank %d: sibling crosstalk, sum=%d want %d", c.Rank(), x[0], want)
		}
	})
}

func TestSplitByKeyReorders(t *testing.T) {
	w := NewWorld(4, SP2())
	w.Run(func(c *Comm) {
		// All same color; key reverses the order.
		sub := c.Split(0, -c.Rank())
		if want := 3 - c.Rank(); sub.Rank() != want {
			t.Errorf("rank %d: subrank %d, want %d", c.Rank(), sub.Rank(), want)
		}
	})
}

func TestNestedSplitIDsDistinct(t *testing.T) {
	w := NewWorld(4, SP2())
	ids := make([]string, 4)
	w.Run(func(c *Comm) {
		a := c.Split(c.Rank()/2, c.Rank())
		b := a.Split(0, a.Rank())
		ids[c.Rank()] = b.ID()
	})
	if ids[0] == ids[2] {
		t.Fatalf("sibling-descended comms share id %q", ids[0])
	}
	if ids[0] != ids[1] || ids[2] != ids[3] {
		t.Fatalf("comm members disagree on id: %v", ids)
	}
}

func TestRunPropagatesPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic to propagate from Run")
		}
	}()
	w := NewWorld(2, SP2())
	w.Run(func(c *Comm) {
		if c.Rank() == 1 {
			panic("boom")
		}
	})
}

func TestWorldReset(t *testing.T) {
	w := NewWorld(2, SP2())
	w.Run(func(c *Comm) { c.Barrier() })
	if w.Traffic().Msgs == 0 {
		t.Fatal("expected traffic from barrier")
	}
	w.Reset()
	tr := w.Traffic()
	if tr.Msgs != 0 || tr.Bytes != 0 || w.MaxClock() != 0 {
		t.Fatalf("reset did not clear counters: %+v clock=%g", tr, w.MaxClock())
	}
}

func TestAllreduceEquationTwoCost(t *testing.T) {
	// For a power-of-two comm, one allreduce of m bytes must cost each rank
	// exactly (t_s + t_w·m)·log2(P) in modeled time (Equation 2 with no
	// waiting, since all ranks enter simultaneously).
	m := Machine{TS: 1e-3, TW: 1e-6}
	const p = 8
	w := NewWorld(p, m)
	w.Run(func(c *Comm) {
		x := make([]int64, 125) // 1000 bytes
		Allreduce(c, x, Sum)
		want := (1e-3 + 1e-6*1000) * 3 // log2(8) = 3
		if d := c.Clock() - want; d > 1e-12 || d < -1e-12 {
			t.Errorf("rank %d: allreduce cost %.9f, want %.9f", c.Rank(), c.Clock(), want)
		}
	})
}
