package mp

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"partree/internal/fault"
)

// mustPanic runs f and returns the recovered panic value, failing the
// test if f returns normally.
func mustPanic(t *testing.T, f func()) (v any) {
	t.Helper()
	defer func() { v = recover() }()
	f()
	t.Fatal("expected a panic")
	return nil
}

// Satellite: a genuine panic on one rank must not leave sibling ranks
// blocked in Recv forever — Run terminates and re-panics the root cause.
func TestRunPanicUnblocksPeers(t *testing.T) {
	w := NewWorld(4, SP2())
	done := make(chan any, 1)
	go func() {
		defer func() { done <- recover() }()
		w.Run(func(c *Comm) {
			if c.Rank() == 1 {
				panic("boom")
			}
			// Everyone else waits for a message rank 1 will never send.
			c.Recv(1, 7)
		})
	}()
	select {
	case v := <-done:
		s, ok := v.(string)
		if !ok || !strings.Contains(s, "rank 1 panicked") || !strings.Contains(s, "boom") {
			t.Fatalf("re-panic = %v, want rank 1's boom", v)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run deadlocked on a panicked peer")
	}
	if got := w.DeadRanks(); len(got) != 4 {
		t.Fatalf("DeadRanks = %v, want all 4 (cascade)", got)
	}
}

// A peer that returns normally is as unreachable as a dead one for a
// blocked receive — but messages it sent before finishing still arrive.
func TestRecvFromFinishedRank(t *testing.T) {
	w := NewWorld(2, SP2())
	var sawDead atomic.Bool
	w.Run(func(c *Comm) {
		if c.Rank() == 1 {
			c.Send(0, 1, "first", 8)
			return
		}
		if msg := c.Recv(1, 1); msg.Payload.(string) != "first" {
			panic("lost the pre-finish message")
		}
		defer func() {
			e, ok := fault.AsError(recover())
			if !ok || !errors.Is(e, fault.ErrRankDead) {
				panic(fmt.Sprintf("want ErrRankDead, got %v", e))
			}
			sawDead.Store(true)
		}()
		c.Recv(1, 2) // never sent
	})
	if !sawDead.Load() {
		t.Fatal("blocked receive on a finished rank did not fail")
	}
}

func TestInjectedCrashDetected(t *testing.T) {
	for _, p := range []int{2, 4, 5, 8} {
		w := NewWorld(p, SP2())
		w.SetFaultPlan(fault.NewPlan(fault.CrashAt(1, fault.CollStart, 2)))
		var surfaced atomic.Int64
		w.Run(func(c *Comm) {
			defer func() {
				v := recover()
				if v == nil {
					return
				}
				if e, ok := fault.AsError(v); ok && errors.Is(e, fault.ErrRankDead) {
					surfaced.Add(1)
					return
				}
				panic(v) // incl. the injected fault.Crashed on rank 1
			}()
			for i := 0; i < 5; i++ {
				x := []int64{int64(c.Rank())}
				Allreduce(c, x, Sum)
			}
		})
		if got := w.DeadRanks(); len(got) != 1 || got[0] != 1 {
			t.Fatalf("p=%d: DeadRanks = %v, want [1]", p, got)
		}
		evs := w.Faults()
		if len(evs) != 1 || evs[0].Kind != fault.Crash || evs[0].Rank != 1 {
			t.Fatalf("p=%d: fault events = %v", p, evs)
		}
		if surfaced.Load() == 0 {
			t.Fatalf("p=%d: no peer surfaced ErrRankDead", p)
		}
	}
}

func TestRecvTimeout(t *testing.T) {
	w := NewWorld(2, SP2())
	w.SetRecvTimeout(50 * time.Millisecond)
	var to atomic.Bool
	w.Run(func(c *Comm) {
		if c.Rank() != 0 {
			// Stay alive past the peer's deadline so dead/done detection
			// cannot beat the timer.
			time.Sleep(150 * time.Millisecond)
			return
		}
		defer func() {
			e, ok := fault.AsError(recover())
			if !ok || !errors.Is(e, fault.ErrTimeout) {
				panic(fmt.Sprintf("want ErrTimeout, got %v", e))
			}
			to.Store(true)
		}()
		c.Recv(1, 3)
	})
	if !to.Load() {
		t.Fatal("receive did not time out")
	}
}

// A dropped message charges the sender's wire cost but never arrives; the
// receiver's bounded wait turns the loss into a typed timeout.
func TestDropDetectedByTimeout(t *testing.T) {
	w := NewWorld(2, SP2())
	w.SetFaultPlan(fault.NewPlan(fault.DropAt(1, 1, 5)))
	w.SetRecvTimeout(50 * time.Millisecond)
	var timedOut atomic.Bool
	w.Run(func(c *Comm) {
		if c.Rank() == 1 {
			c.Send(0, 5, "lost", 64)
			time.Sleep(150 * time.Millisecond)
			return
		}
		defer func() {
			e, ok := fault.AsError(recover())
			if !ok || !errors.Is(e, fault.ErrTimeout) {
				panic(fmt.Sprintf("want ErrTimeout, got %v", e))
			}
			timedOut.Store(true)
		}()
		c.Recv(1, 5)
	})
	if !timedOut.Load() {
		t.Fatal("dropped message was delivered")
	}
	if tr := w.RankTraffic(1); tr.Msgs != 1 || tr.Bytes != 64 {
		t.Fatalf("sender traffic = %+v, want the wire cost of the lost message", tr)
	}
	evs := w.Faults()
	if len(evs) != 1 || evs[0].Kind != fault.Drop {
		t.Fatalf("fault events = %v", evs)
	}
}

// A duplicated message is suppressed by the at-most-once filter: the
// program observes exactly one copy and the same results as fault-free.
func TestDuplicateSuppressed(t *testing.T) {
	run := func(plan *fault.Plan) (sum int64, w *World) {
		w = NewWorld(4, SP2())
		w.SetFaultPlan(plan)
		var out atomic.Int64
		w.Run(func(c *Comm) {
			x := []int64{int64(c.Rank() + 1)}
			Allreduce(c, x, Sum)
			if c.Rank() == 0 {
				out.Store(x[0])
			}
		})
		return out.Load(), w
	}
	clean, _ := run(nil)
	dup, w := run(fault.NewPlan(fault.DuplicateAt(2, 1, fault.AnyTag)))
	if dup != clean {
		t.Fatalf("allreduce under duplication = %d, want %d", dup, clean)
	}
	if got := w.DuplicatesDropped(); got != 1 {
		t.Fatalf("DuplicatesDropped = %d, want 1", got)
	}
	if got := w.DeadRanks(); got != nil {
		t.Fatalf("DeadRanks = %v, want none", got)
	}
}

// TestDropThenDuplicateGapDetected combines both message faults on one
// stream: the first send is dropped and the second is duplicated. The
// receiver's first matching message carries Seq 2, so the gap detector
// surfaces the loss immediately as a typed timeout naming the missing
// message — without waiting out the full receive deadline — while the
// at-most-once filter silently absorbs the duplicate copy.
func TestDropThenDuplicateGapDetected(t *testing.T) {
	const tag = 5
	w := NewWorld(2, SP2())
	w.SetFaultPlan(fault.NewPlan(
		fault.DropAt(1, 1, tag),
		fault.DuplicateAt(1, 2, tag),
	))
	w.SetRecvTimeout(2 * time.Second)
	var gap atomic.Bool
	w.Run(func(c *Comm) {
		if c.Rank() == 1 {
			c.Send(0, tag, "lost", 32)
			c.Send(0, tag, "doubled", 32)
			time.Sleep(150 * time.Millisecond)
			return
		}
		defer func() {
			e, ok := fault.AsError(recover())
			if !ok || !errors.Is(e, fault.ErrTimeout) {
				panic(fmt.Sprintf("want gap timeout, got %v", e))
			}
			if !strings.Contains(e.Cause, "never arrived") {
				panic(fmt.Sprintf("gap error does not name the lost message: %v", e))
			}
			gap.Store(true)
		}()
		c.Recv(1, tag)
	})
	if !gap.Load() {
		t.Fatal("sequence gap was not detected")
	}
	if got := w.DuplicatesDropped(); got != 1 {
		t.Fatalf("DuplicatesDropped = %d, want 1", got)
	}
	if got := w.DeadRanks(); got != nil {
		t.Fatalf("DeadRanks = %v, want none", got)
	}
	kinds := map[fault.Kind]int{}
	for _, ev := range w.Faults() {
		kinds[ev.Kind]++
	}
	if kinds[fault.Drop] != 1 || kinds[fault.Duplicate] != 1 {
		t.Fatalf("fault events = %v, want one drop and one duplicate", w.Faults())
	}
}

func TestDelayAdvancesClock(t *testing.T) {
	run := func(plan *fault.Plan) float64 {
		w := NewWorld(4, SP2())
		w.SetFaultPlan(plan)
		w.Run(func(c *Comm) {
			x := []int64{1}
			Allreduce(c, x, Sum)
			c.Barrier()
		})
		return w.MaxClock()
	}
	base := run(nil)
	slow := run(fault.NewPlan(fault.DelayAt(2, fault.CollStart, 1, 0.25)))
	if slow < base+0.25 {
		t.Fatalf("MaxClock with straggler = %v, want >= %v", slow, base+0.25)
	}
}

// Reset re-arms the plan and drains faulted-run leftovers so the same
// world replays the same faults deterministically.
func TestResetRearmsPlan(t *testing.T) {
	w := NewWorld(2, SP2())
	w.SetFaultPlan(fault.NewPlan(fault.CrashAt(1, fault.AnyOp, 1)))
	crashRun := func() {
		w.Run(func(c *Comm) {
			defer func() {
				v := recover()
				if v == nil {
					return
				}
				if e, ok := fault.AsError(v); ok && errors.Is(e, fault.ErrRankDead) {
					return
				}
				panic(v) // incl. the injected fault.Crashed on rank 1
			}()
			c.Send((c.Rank()+1)%2, 1, nil, 8)
			c.Recv((c.Rank()+1)%2, 1)
		})
	}
	crashRun()
	first := w.Faults()
	if len(first) != 1 {
		t.Fatalf("first run fired %d faults, want 1", len(first))
	}
	w.Reset()
	if len(w.Faults()) != 0 || len(w.DeadRanks()) != 0 {
		t.Fatal("Reset did not clear fault state")
	}
	crashRun()
	second := w.Faults()
	if len(second) != 1 || second[0] != first[0] {
		t.Fatalf("re-armed run fired %v, want %v", second, first)
	}
}

// EnterRecovery + ShrinkAlive + PurgeStale: survivors of a crashed rank
// form a working communicator and finish a collective among themselves.
func TestShrinkAliveAfterCrash(t *testing.T) {
	w := NewWorld(4, SP2())
	w.SetFaultPlan(fault.NewPlan(fault.CrashAt(2, fault.CollStart, 1)))
	sums := make([]int64, 4)
	w.Run(func(c *Comm) {
		err := func() (err error) {
			defer func() {
				v := recover()
				if v == nil {
					return
				}
				if e, ok := fault.AsError(v); ok {
					err = e
					return
				}
				panic(v) // incl. the injected fault.Crashed on rank 2
			}()
			x := []int64{int64(c.Rank() + 1)}
			Allreduce(c, x, Sum)
			sums[c.Rank()] = x[0]
			return nil
		}()
		if err == nil {
			return // only possible for a rank that finished before detection
		}
		c.EnterRecovery()
		nc := c.ShrinkAlive()
		nc.Barrier()
		nc.PurgeStale()
		if nc.Size() != 3 {
			panic(fmt.Sprintf("survivor comm size = %d, want 3", nc.Size()))
		}
		x := []int64{int64(c.Rank() + 1)}
		Allreduce(nc, x, Sum)
		sums[c.Rank()] = x[0]
	})
	for _, r := range []int{0, 1, 3} {
		if sums[r] != 1+2+4 {
			t.Fatalf("rank %d survivor sum = %d, want 7", r, sums[r])
		}
	}
	if got := w.DeadRanks(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("DeadRanks = %v, want [2]", got)
	}
}

// The epoch-suffixed survivor id must strip a previous epoch suffix so a
// second recovery does not nest suffixes.
func TestShrinkAliveIDBase(t *testing.T) {
	w := NewWorld(1, SP2())
	var id1, id2 string
	w.Run(func(c *Comm) {
		c.EnterRecovery()
		n1 := c.ShrinkAlive()
		id1 = n1.ID()
		c.EnterRecovery()
		n2 := n1.ShrinkAlive()
		id2 = n2.ID()
	})
	if id1 != "w!1" || id2 != "w!2" {
		t.Fatalf("survivor ids = %v, %v; want w!1, w!2", id1, id2)
	}
}

func TestRandomPlansTerminate(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		w := NewWorld(4, SP2())
		w.SetFaultPlan(fault.Random(seed, 4, 30))
		w.SetRecvTimeout(time.Second)
		finished := make(chan struct{})
		go func() {
			defer close(finished)
			w.Run(func(c *Comm) {
				defer func() {
					v := recover()
					if v == nil {
						return
					}
					if _, ok := fault.AsError(v); ok {
						return
					}
					panic(v) // incl. injected crashes
				}()
				for i := 0; i < 8; i++ {
					x := []int64{int64(c.Rank())}
					Allreduce(c, x, Sum)
				}
			})
		}()
		select {
		case <-finished:
		case <-time.After(30 * time.Second):
			t.Fatalf("seed %d: faulted run did not terminate", seed)
		}
	}
}
