package mp

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"partree/internal/fault"
)

// AnySource matches messages from any sender in Recv/TryRecv.
const AnySource = -1

// proc is the per-rank state shared by every communicator the rank
// belongs to.
type proc struct {
	rank    int // world rank
	clock   float64
	mailbox *mailbox

	// traffic accounting
	msgsSent  int64
	bytesSent int64
	commTime  float64 // modeled seconds spent sending/receiving (incl. waits)
	compTime  float64 // modeled seconds spent in Compute
	diskBytes int64   // bytes moved to/from stable storage (ChargeDisk)
	diskTime  float64 // modeled seconds of stable-storage transfer

	// observability (see trace.go); only touched by the rank's goroutine
	phases         []string            // BeginPhase/EndPhase stack
	cells          map[Cell]*CellStats // (phase, collective, algo) accounting
	curColl        Coll                // outermost collective in progress
	curAlgo        Algo                // its resolved algorithm label
	collDepth      int
	collStartClock float64
	collStartBytes int64
	collTag        int
	collComm       string
	events         []TraceEvent              // recorded only when world.trace
	enc            map[string]*EncodingStats // per-phase adaptive reduction encoding (sparse.go)

	// fault layer (fault.go); only touched by the rank's goroutine
	opCount int64            // operations executed (sends, recvs, outermost coll starts)
	epoch   int              // recovery epoch the rank has joined
	armed   []*armedFault    // plan entries targeting this rank
	seqs    map[seqKey]int64 // at-most-once sequence numbers per send stream
}

// World is a set of P modeled processors. Create one with NewWorld, then
// call Run with the SPMD program.
type World struct {
	Machine Machine
	procs   []*proc
	trace   bool // record per-event timelines (EnableTrace)

	// network configuration (topology.go / algo.go); fixed hardware +
	// library choices, so Reset preserves them
	topo Topology   // prices per-hop distance when Machine.TH > 0
	coll CollConfig // collective-algorithm selection

	// fault layer (fault.go)
	plan        *fault.Plan   // armed plan, nil when fault-free
	recvTimeout time.Duration // real-time bound per blocked receive, 0 = none
	dead        []atomic.Bool // rank terminated abnormally
	done        []atomic.Bool // rank returned normally from Run's body
	recoveryGen atomic.Int64  // current recovery epoch
	dupDropped  atomic.Int64  // messages suppressed by the sequence filter
	fmu         sync.Mutex    // guards deadCause and faultEvents
	deadCause   []string
	faultEvents []fault.Event
}

// NewWorld creates a world of p processors with the given machine model.
func NewWorld(p int, m Machine) *World {
	if p <= 0 {
		panic("mp: world size must be positive")
	}
	w := &World{
		Machine:   m,
		topo:      NewHypercube(p),
		procs:     make([]*proc, p),
		dead:      make([]atomic.Bool, p),
		done:      make([]atomic.Bool, p),
		deadCause: make([]string, p),
	}
	for i := range w.procs {
		w.procs[i] = &proc{rank: i, mailbox: newMailbox(), cells: make(map[Cell]*CellStats)}
	}
	return w
}

// Size returns the number of processors.
func (w *World) Size() int { return len(w.procs) }

// Topology returns the interconnect the world prices messages on
// (hypercube unless SetTopology changed it).
func (w *World) Topology() Topology { return w.topo }

// SetTopology installs the interconnect model. It must be sized for this
// world. With Machine.TH = 0 the topology is purely descriptive — every
// fabric prices identically. Call before Run; Reset preserves it.
func (w *World) SetTopology(t Topology) {
	if t == nil {
		panic("mp: SetTopology(nil)")
	}
	if t.Size() != w.Size() {
		panic(fmt.Sprintf("mp: topology %s sized for %d ranks on a %d-rank world", t.Name(), t.Size(), w.Size()))
	}
	w.topo = t
}

// CollConfig returns the world's collective-algorithm selection.
func (w *World) CollConfig() CollConfig { return w.coll }

// SetCollConfig selects the algorithm each collective runs (see
// CollConfig); the zero value restores the historic defaults. Panics on
// an algorithm a collective does not implement. Call before Run; Reset
// preserves it.
func (w *World) SetCollConfig(cfg CollConfig) {
	if err := cfg.Validate(); err != nil {
		panic("mp: " + err.Error())
	}
	w.coll = cfg
}

// Run executes body once per rank, each in its own goroutine, passing the
// world communicator, and waits for all ranks to finish. A rank that
// stops participating — genuine panic, injected crash, or normal return —
// is registered in the world's dead/done sets, so sibling ranks blocked
// in a receive fail with a typed *fault.Error instead of hanging and the
// whole Run always terminates. A genuine panic on any rank is re-panicked
// on the caller with rank attribution (an unrecovered *fault.Error
// likewise); injected fault.Crashed panics are expected and only reported
// via DeadRanks. Run may be called repeatedly; clocks and counters keep
// accumulating (use Reset between independent experiments).
func (w *World) Run(body func(c *Comm)) {
	for r := range w.procs {
		w.dead[r].Store(false)
		w.done[r].Store(false)
	}
	w.fmu.Lock()
	for r := range w.deadCause {
		w.deadCause[r] = ""
	}
	w.fmu.Unlock()
	var wg sync.WaitGroup
	panics := make([]any, w.Size())
	for r := 0; r < w.Size(); r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				e := recover()
				if e == nil {
					w.markDone(rank)
					return
				}
				panics[rank] = e
				switch v := e.(type) {
				case fault.Crashed:
					w.markDead(rank, v.String())
				case *fault.Error:
					w.markDead(rank, v.Error())
				default:
					w.markDead(rank, fmt.Sprintf("%v", e))
				}
			}()
			body(w.Comm(rank))
		}(r)
	}
	wg.Wait()
	// Re-panic policy: prefer the first genuine panic (the root cause),
	// then unrecovered fault errors (a failure the program did not handle);
	// injected crashes are suppressed — they are the experiment, not a bug.
	for rank, e := range panics {
		if e == nil {
			continue
		}
		if _, ok := e.(fault.Crashed); ok {
			continue
		}
		if _, ok := fault.AsError(e); ok {
			continue
		}
		panic(fmt.Sprintf("mp: rank %d panicked: %v", rank, e))
	}
	for _, e := range panics {
		if fe, ok := fault.AsError(e); ok {
			// Re-panic the typed error itself so callers can classify it
			// (the waiter rank is inside fe).
			panic(fe)
		}
	}
}

// Comm returns the world communicator of the given rank (all ranks,
// identity mapping, id "w").
func (w *World) Comm(rank int) *Comm {
	ranks := make([]int, w.Size())
	for i := range ranks {
		ranks[i] = i
	}
	return &Comm{world: w, id: "w", rank: rank, ranks: ranks, me: w.procs[rank]}
}

// Reset zeroes all clocks, counters and fault state, drains the
// mailboxes (a faulted Run legitimately leaves stale traffic behind) and
// re-arms the fault plan so each fault can fire again in the next Run.
func (w *World) Reset() {
	for _, p := range w.procs {
		p.clock = 0
		p.msgsSent = 0
		p.bytesSent = 0
		p.commTime = 0
		p.compTime = 0
		p.diskBytes = 0
		p.diskTime = 0
		p.phases = nil
		p.cells = make(map[Cell]*CellStats)
		p.curColl = CollNone
		p.curAlgo = ""
		p.collDepth = 0
		p.events = nil
		p.enc = nil
		p.opCount = 0
		p.epoch = 0
		p.seqs = nil
		p.mailbox.drain()
	}
	for r := range w.procs {
		w.dead[r].Store(false)
		w.done[r].Store(false)
	}
	w.recoveryGen.Store(0)
	w.dupDropped.Store(0)
	w.fmu.Lock()
	for r := range w.deadCause {
		w.deadCause[r] = ""
	}
	w.faultEvents = nil
	w.fmu.Unlock()
	w.SetFaultPlan(w.plan)
}

// MaxClock returns the modeled parallel runtime so far: the maximum clock
// over all ranks.
func (w *World) MaxClock() float64 {
	m := 0.0
	for _, p := range w.procs {
		if p.clock > m {
			m = p.clock
		}
	}
	return m
}

// Clock returns the modeled clock of one rank.
func (w *World) Clock(rank int) float64 { return w.procs[rank].clock }

// Traffic summarizes communication over all ranks since the last Reset.
type Traffic struct {
	Msgs      int64
	Bytes     int64
	CommTime  float64 // summed over ranks
	CompTime  float64 // summed over ranks
	DiskBytes int64   // bytes moved to/from stable storage, summed over ranks
	DiskTime  float64 // modeled stable-storage seconds, summed over ranks
}

// RankTraffic returns one rank's cumulative counters since the last Reset.
func (w *World) RankTraffic(rank int) Traffic {
	p := w.procs[rank]
	return Traffic{Msgs: p.msgsSent, Bytes: p.bytesSent, CommTime: p.commTime, CompTime: p.compTime,
		DiskBytes: p.diskBytes, DiskTime: p.diskTime}
}

// Traffic returns cumulative counters summed over all ranks.
func (w *World) Traffic() Traffic {
	var t Traffic
	for _, p := range w.procs {
		t.Msgs += p.msgsSent
		t.Bytes += p.bytesSent
		t.CommTime += p.commTime
		t.CompTime += p.compTime
		t.DiskBytes += p.diskBytes
		t.DiskTime += p.diskTime
	}
	return t
}
