package mp

import (
	"fmt"
	"math/bits"
	"unsafe"
)

// Elem constrains the element types the collectives can carry. The
// modeled wire size of a slice is len·elemBytes.
type Elem interface {
	~byte | ~int32 | ~int64 | ~float64
}

// elemBytes sizes the element via unsafe.Sizeof so named types admitted
// by the ~byte/~int32 constraint terms are billed at their real width (a
// type-switch on any(z) would miss them and default to 8 bytes/element).
func elemBytes[T Elem]() int {
	var z T
	return int(unsafe.Sizeof(z))
}

// SendSlice copies x and sends it to dst under tag (the copy enforces the
// no-mutation-after-send rule for callers that reuse buffers).
func SendSlice[T Elem](c *Comm, dst, tag int, x []T) {
	cp := append([]T(nil), x...)
	c.Send(dst, tag, cp, len(cp)*elemBytes[T]())
}

// RecvSlice receives a []T message from src under tag.
func RecvSlice[T Elem](c *Comm, src, tag int) []T {
	msg := c.Recv(src, tag)
	if msg.Payload == nil {
		return nil
	}
	x, ok := msg.Payload.([]T)
	if !ok {
		panic(fmt.Sprintf("mp: RecvSlice type mismatch on comm %s tag %d: got %T", c.ID(), tag, msg.Payload))
	}
	return x
}

// Op is a reduction operator. It must be associative and commutative.
type Op[T Elem] func(a, b T) T

// Sum, Min and Max are the standard reduction operators.
func Sum[T Elem](a, b T) T { return a + b }
func Min[T Elem](a, b T) T {
	if b < a {
		return b
	}
	return a
}
func Max[T Elem](a, b T) T {
	if b > a {
		return b
	}
	return a
}

// combine folds src into dst element-wise and charges the rank TOp per
// element — the arithmetic every reduction step really performs.
func combine[T Elem](c *Comm, dst, src []T, op Op[T]) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("mp: reduction length mismatch %d vs %d", len(dst), len(src)))
	}
	for i := range dst {
		dst[i] = op(dst[i], src[i])
	}
	d := float64(len(dst)) * c.world.Machine.TOp
	c.me.clock += d
	c.me.chargeComp(d)
}

// replaceExact overwrites dst with a received slice, panicking on any
// length mismatch: a shorter receive buffer must never silently truncate
// (and then forward corrupted data down the tree), mirroring combine.
func replaceExact[T Elem](c *Comm, dst, src []T, what string) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("mp: %s length mismatch on comm %s: received %d elements into a %d-element buffer",
			what, c.ID(), len(src), len(dst)))
	}
	copy(dst, src)
}

// Allreduce combines x element-wise across all ranks with op and leaves
// the identical result in x on every rank. The algorithm is selected by
// the world's CollConfig: by default recursive doubling for power-of-two
// sizes — log₂P steps of (t_s + t_w·m), the paper's Equation 2 cost — and
// a binomial-tree reduce followed by a broadcast otherwise. Ring
// (reduce-scatter + allgather) and recursive halving/doubling trade
// latency for bandwidth on large messages; "auto" picks per call from the
// closed-form cost model. Every algorithm produces identical values.
func Allreduce[T Elem](c *Comm, x []T, op Op[T]) {
	p := c.Size()
	if p == 1 {
		return
	}
	algo := c.allreduceAlgo(len(x) * elemBytes[T]())
	c.beginColl(CollAllreduce, 0, algo)
	defer c.endColl()
	switch algo {
	case AlgoRecDoubling:
		allreduceRD(c, x, op)
	case AlgoRing:
		allreduceRing(c, x, op)
	case AlgoRecHalving:
		allreduceRHD(c, x, op)
	default: // AlgoReduceBcast
		Reduce(c, x, op, 0)
		Bcast(c, x, 0)
	}
}

// allreduceRD is recursive doubling: log₂P pairwise exchange-and-combine
// steps. Power-of-two sizes only.
func allreduceRD[T Elem](c *Comm, x []T, op Op[T]) {
	for mask := 1; mask < c.Size(); mask <<= 1 {
		partner := c.rank ^ mask
		SendSlice(c, partner, tagReduce, x)
		rx := RecvSlice[T](c, partner, tagReduce)
		combine(c, x, rx, op)
	}
}

// allreduceRing is the bandwidth-optimal ring algorithm: a reduce-scatter
// of P vector chunks around the ring (each rank ends up owning the fully
// reduced chunk (rank+1) mod P) followed by a ring allgather of the
// reduced chunks. 2(P−1) nearest-neighbour steps, each carrying ~1/P of
// the vector. Works for any P ≥ 2.
func allreduceRing[T Elem](c *Comm, x []T, op Op[T]) {
	p, r, n := c.Size(), c.rank, len(x)
	right, left := (r+1)%p, (r-1+p)%p
	lo := func(i int) int { return i * n / p }
	// Reduce-scatter: at step s, send the chunk reduced so far and fold
	// the neighbour's partial into the next one.
	for s := 0; s < p-1; s++ {
		sc := (r - s + p) % p
		SendSlice(c, right, tagReduce, x[lo(sc):lo(sc+1)])
		rc := (r - s - 1 + p) % p
		rx := RecvSlice[T](c, left, tagReduce)
		combine(c, x[lo(rc):lo(rc+1)], rx, op)
	}
	// Allgather: circulate the fully reduced chunks.
	for s := 0; s < p-1; s++ {
		sc := (r + 1 - s + p) % p
		SendSlice(c, right, tagBcast, x[lo(sc):lo(sc+1)])
		rc := (r - s + p) % p
		rx := RecvSlice[T](c, left, tagBcast)
		replaceExact(c, x[lo(rc):lo(rc+1)], rx, "ring allgather")
	}
}

// allreduceRHD is Rabenseifner's recursive halving/doubling: a
// reduce-scatter by recursive vector halving (log₂P steps, message sizes
// m/2, m/4, …) followed by an allgather by recursive doubling in reverse.
// Same bandwidth term as the ring with only 2·log₂P latencies.
// Power-of-two sizes only.
func allreduceRHD[T Elem](c *Comm, x []T, op Op[T]) {
	p, r := c.Size(), c.rank
	type win struct{ lo, mid, hi int }
	var stack []win
	lo, hi := 0, len(x)
	for mask := 1; mask < p; mask <<= 1 {
		partner := r ^ mask
		mid := lo + (hi-lo)/2
		if r&mask == 0 {
			SendSlice(c, partner, tagReduce, x[mid:hi])
			rx := RecvSlice[T](c, partner, tagReduce)
			combine(c, x[lo:mid], rx, op)
			stack = append(stack, win{lo, mid, hi})
			hi = mid
		} else {
			SendSlice(c, partner, tagReduce, x[lo:mid])
			rx := RecvSlice[T](c, partner, tagReduce)
			combine(c, x[mid:hi], rx, op)
			stack = append(stack, win{lo, mid, hi})
			lo = mid
		}
	}
	for i := len(stack) - 1; i >= 0; i-- {
		partner := r ^ (1 << i)
		w := stack[i]
		SendSlice(c, partner, tagBcast, x[lo:hi])
		rx := RecvSlice[T](c, partner, tagBcast)
		if r&(1<<i) == 0 {
			replaceExact(c, x[w.mid:w.hi], rx, "rhd allgather")
		} else {
			replaceExact(c, x[w.lo:w.mid], rx, "rhd allgather")
		}
		lo, hi = w.lo, w.hi
	}
}

// Reduce combines x element-wise onto rank root via a binomial tree; the
// result is defined only at root (other ranks' x hold partial sums).
func Reduce[T Elem](c *Comm, x []T, op Op[T], root int) {
	p := c.Size()
	if p == 1 {
		return
	}
	c.beginColl(CollReduce, 0, AlgoBinomial)
	defer c.endColl()
	vrank := (c.rank - root + p) % p
	for mask := 1; mask < p; mask <<= 1 {
		if vrank&mask != 0 {
			dst := (vrank - mask + root) % p
			SendSlice(c, dst, tagReduce, x)
			return
		}
		if vrank|mask < p {
			src := (vrank + mask + root) % p
			rx := RecvSlice[T](c, src, tagReduce)
			combine(c, x, rx, op)
		}
	}
}

// Bcast distributes root's x to every rank (in place). The default
// binomial tree costs ⌈log₂P⌉ rounds of (t_s + t_w·m); the scatter-ag
// algorithm (binomial scatter + ring allgather, van de Geijn) trades
// latency for bandwidth on large messages. Every rank must pass a buffer
// of root's length — a mismatch panics rather than silently truncating.
func Bcast[T Elem](c *Comm, x []T, root int) {
	p := c.Size()
	if p == 1 {
		return
	}
	algo := c.bcastAlgo(len(x) * elemBytes[T]())
	c.beginColl(CollBcast, 0, algo)
	defer c.endColl()
	if algo == AlgoScatterAllgather {
		bcastScatterAG(c, x, root)
		return
	}
	vrank := (c.rank - root + p) % p
	var k int
	if vrank == 0 {
		k = bits.Len(uint(p - 1)) // ⌈log₂p⌉
	} else {
		k = bits.TrailingZeros(uint(vrank))
		src := (vrank - (1 << k) + root) % p
		rx := RecvSlice[T](c, src, tagBcast)
		replaceExact(c, x, rx, "bcast")
	}
	for j := k - 1; j >= 0; j-- {
		dst := vrank + 1<<j
		if dst < p {
			SendSlice(c, (dst+root)%p, tagBcast, x)
		}
	}
}

// bcastScatterAG splits x into P chunks, scatters them down a binomial
// tree in vrank space (each internal node keeps the chunks of its own
// subtree and forwards the rest), then runs a ring allgather so every
// rank assembles the full vector. Total volume ≈ 2·m·(P−1)/P per rank
// instead of the binomial tree's m per round.
func bcastScatterAG[T Elem](c *Comm, x []T, root int) {
	p, n := c.Size(), len(x)
	vrank := (c.rank - root + p) % p
	lo := func(i int) int { return i * n / p }
	// Binomial scatter: after it, vrank v holds the element span of
	// chunks [v, min(v+2^TZ(v), p)); the root holds everything.
	var k int
	if vrank == 0 {
		k = bits.Len(uint(p - 1))
	} else {
		k = bits.TrailingZeros(uint(vrank))
		src := (vrank - 1<<k + root) % p
		a, b := lo(vrank), lo(min(vrank+1<<k, p))
		rx := RecvSlice[T](c, src, tagBcast)
		replaceExact(c, x[a:b], rx, "bcast scatter")
	}
	for j := k - 1; j >= 0; j-- {
		dst := vrank + 1<<j
		if dst < p {
			a, b := lo(dst), lo(min(dst+1<<j, p))
			SendSlice(c, (dst+root)%p, tagBcast, x[a:b])
		}
	}
	// Ring allgather of the chunks: the right neighbour in vrank space is
	// the right neighbour in rank space, so each step is nearest-neighbour.
	right, left := (c.rank+1)%p, (c.rank-1+p)%p
	cur := vrank
	for s := 0; s < p-1; s++ {
		SendSlice(c, right, tagBcast, x[lo(cur):lo(cur+1)])
		cur = (cur - 1 + p) % p
		rx := RecvSlice[T](c, left, tagBcast)
		replaceExact(c, x[lo(cur):lo(cur+1)], rx, "bcast allgather")
	}
}

// Gatherv collects each rank's variable-length x at root, returned as a
// per-rank slice (nil on non-roots). Linear: every non-root sends
// directly to root, root receives in rank order.
func Gatherv[T Elem](c *Comm, tag int, x []T, root int) [][]T {
	c.beginColl(CollGather, tag, AlgoLinear)
	defer c.endColl()
	if c.rank != root {
		SendSlice(c, root, tagGather^tag<<8, x)
		return nil
	}
	out := make([][]T, c.Size())
	for r := 0; r < c.Size(); r++ {
		if r == root {
			out[r] = append([]T(nil), x...)
		} else {
			out[r] = RecvSlice[T](c, r, tagGather^tag<<8)
		}
	}
	return out
}

// Allgatherv concatenates every rank's variable-length contribution in
// rank order and returns the identical concatenation on all ranks. The
// default is the standard ring algorithm (P−1 nearest-neighbour steps);
// gather+bcast funnels everything through rank 0 instead (fewer, larger
// messages). Every block rides as its own payload — an empty contribution
// is simply a nil payload whose zero-length receive slots into place, so
// the ring stays fully deterministic without any framing.
func Allgatherv[T Elem](c *Comm, tag int, x []T) []T {
	algo := c.allgatherAlgo()
	c.beginColl(CollAllgather, tag, algo)
	defer c.endColl()
	if algo == AlgoGatherBcast {
		return allgathervGatherBcast(c, tag, x)
	}
	p := c.Size()
	blocks := make([][]T, p)
	blocks[c.rank] = append([]T(nil), x...)
	right := (c.rank + 1) % p
	left := (c.rank - 1 + p) % p
	cur := c.rank
	for step := 0; step < p-1; step++ {
		SendSlice(c, right, tagAllgather^tag<<8, blocks[cur])
		cur = (cur - 1 + p) % p
		blocks[cur] = RecvSlice[T](c, left, tagAllgather^tag<<8)
	}
	var total int
	for _, b := range blocks {
		total += len(b)
	}
	out := make([]T, 0, total)
	for _, b := range blocks {
		out = append(out, b...)
	}
	return out
}

// allgathervGatherBcast gathers every contribution at rank 0 and
// broadcasts the concatenation (as one opaque payload, since non-roots
// cannot size a typed receive buffer up front).
func allgathervGatherBcast[T Elem](c *Comm, tag int, x []T) []T {
	blocks := Gatherv(c, tag, x, 0)
	var full []T
	if c.rank == 0 {
		var total int
		for _, b := range blocks {
			total += len(b)
		}
		full = make([]T, 0, total)
		for _, b := range blocks {
			full = append(full, b...)
		}
	}
	payload := BcastValue(c, full, len(full)*elemBytes[T](), 0)
	if c.rank == 0 {
		return full
	}
	if payload == nil {
		return make([]T, 0)
	}
	// Copy: the broadcast payload object is shared across ranks.
	return append([]T(nil), payload.([]T)...)
}

// AllgatherInt is a convenience wrapper: each rank contributes one int64
// and receives everyone's values in rank order.
func AllgatherInt(c *Comm, tag int, v int64) []int64 {
	return Allgatherv(c, tag, []int64{v})
}

// Alltoallv performs a personalized all-to-all exchange: send[r] goes to
// rank r; the returned recv[r] is what rank r sent to the caller. The
// caller's own block is passed through without a message. P−1 rounds of
// pairwise exchange with rotating partners — the "moving phase" primitive
// of the partitioned and hybrid formulations.
func Alltoallv[T Elem](c *Comm, tag int, send [][]T) [][]T {
	p := c.Size()
	if len(send) != p {
		panic(fmt.Sprintf("mp: Alltoallv needs %d send blocks, got %d", p, len(send)))
	}
	c.beginColl(CollAlltoall, tag, AlgoPairwise)
	defer c.endColl()
	recv := make([][]T, p)
	recv[c.rank] = append([]T(nil), send[c.rank]...)
	for step := 1; step < p; step++ {
		dst := (c.rank + step) % p
		src := (c.rank - step + p) % p
		SendSlice(c, dst, tagAlltoall^tag<<8, send[dst])
		recv[src] = RecvSlice[T](c, src, tagAlltoall^tag<<8)
	}
	return recv
}

// BcastValue broadcasts an opaque payload of explicit modeled size from
// root along a binomial tree and returns it on every rank (non-roots pass
// payload nil). Used to replicate assembled trees, whose wire size is
// modeled by tree.SubtreeBytes rather than by element count.
func BcastValue(c *Comm, payload any, bytes int, root int) any {
	p := c.Size()
	if p == 1 {
		return payload
	}
	c.beginColl(CollBcast, 0, AlgoBinomial)
	defer c.endColl()
	vrank := (c.rank - root + p) % p
	var k int
	if vrank == 0 {
		k = bits.Len(uint(p - 1))
	} else {
		k = bits.TrailingZeros(uint(vrank))
		src := (vrank - (1 << k) + root) % p
		msg := c.Recv(src, tagBcast)
		payload = msg.Payload
		bytes = msg.Bytes
	}
	for j := k - 1; j >= 0; j-- {
		dst := vrank + 1<<j
		if dst < p {
			c.Send((dst+root)%p, tagBcast, payload, bytes)
		}
	}
	return payload
}

// Barrier synchronizes all ranks (an allreduce of one int64 word); on
// return every rank's modeled clock is at least the max of the clocks at
// entry.
func (c *Comm) Barrier() {
	if c.Size() == 1 {
		return
	}
	c.beginColl(CollBarrier, 0, c.allreduceAlgo(8))
	defer c.endColl()
	x := []int64{0}
	Allreduce(c, x, Max)
}

// AllreduceClock synchronizes the modeled clocks of all ranks to their
// maximum without transferring data volume: every message is genuinely
// zero-byte, so only the startup latency t_s is paid and no t_w or
// bytesSent is charged. The max-clock propagation rides entirely on the
// modeled arrival times (a receiver's clock becomes at least the sender's
// send-completion clock), so no payload is needed. It is used at points
// where the algorithm logically synchronizes but exchanges no payload
// beyond what was already accounted. Its structure is fixed (the historic
// hypercube pattern) regardless of CollConfig — there is no data whose
// volume an algorithm could trade against.
func (c *Comm) AllreduceClock() {
	p := c.Size()
	if p == 1 {
		return
	}
	c.beginColl(CollBarrier, 0, defaultAllreduceAlgo(p))
	defer c.endColl()
	if p&(p-1) == 0 {
		// Recursive doubling: log₂P rounds of zero-byte pairwise exchange.
		for mask := 1; mask < p; mask <<= 1 {
			partner := c.rank ^ mask
			c.Send(partner, tagClock, nil, 0)
			c.Recv(partner, tagClock)
		}
		return
	}
	// Binomial-tree reduce onto rank 0 followed by a binomial broadcast,
	// both with zero-byte messages.
	for mask := 1; mask < p; mask <<= 1 {
		if c.rank&mask != 0 {
			c.Send(c.rank-mask, tagClock, nil, 0)
			break
		}
		if c.rank|mask < p {
			c.Recv(c.rank+mask, tagClock)
		}
	}
	var k int
	if c.rank == 0 {
		k = bits.Len(uint(p - 1))
	} else {
		k = bits.TrailingZeros(uint(c.rank))
		c.Recv(c.rank-1<<k, tagClock)
	}
	for j := k - 1; j >= 0; j-- {
		if dst := c.rank + 1<<j; dst < p {
			c.Send(dst, tagClock, nil, 0)
		}
	}
}
