package mp

import (
	"fmt"
	"math/bits"
	"unsafe"
)

// Elem constrains the element types the collectives can carry. The
// modeled wire size of a slice is len·elemBytes.
type Elem interface {
	~byte | ~int32 | ~int64 | ~float64
}

// elemBytes sizes the element via unsafe.Sizeof so named types admitted
// by the ~byte/~int32 constraint terms are billed at their real width (a
// type-switch on any(z) would miss them and default to 8 bytes/element).
func elemBytes[T Elem]() int {
	var z T
	return int(unsafe.Sizeof(z))
}

// SendSlice copies x and sends it to dst under tag (the copy enforces the
// no-mutation-after-send rule for callers that reuse buffers).
func SendSlice[T Elem](c *Comm, dst, tag int, x []T) {
	cp := append([]T(nil), x...)
	c.Send(dst, tag, cp, len(cp)*elemBytes[T]())
}

// RecvSlice receives a []T message from src under tag.
func RecvSlice[T Elem](c *Comm, src, tag int) []T {
	msg := c.Recv(src, tag)
	if msg.Payload == nil {
		return nil
	}
	x, ok := msg.Payload.([]T)
	if !ok {
		panic(fmt.Sprintf("mp: RecvSlice type mismatch on comm %s tag %d: got %T", c.ID(), tag, msg.Payload))
	}
	return x
}

// Op is a reduction operator. It must be associative and commutative.
type Op[T Elem] func(a, b T) T

// Sum, Min and Max are the standard reduction operators.
func Sum[T Elem](a, b T) T { return a + b }
func Min[T Elem](a, b T) T {
	if b < a {
		return b
	}
	return a
}
func Max[T Elem](a, b T) T {
	if b > a {
		return b
	}
	return a
}

// combine folds src into dst element-wise and charges the rank TOp per
// element — the arithmetic every reduction step really performs.
func combine[T Elem](c *Comm, dst, src []T, op Op[T]) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("mp: reduction length mismatch %d vs %d", len(dst), len(src)))
	}
	for i := range dst {
		dst[i] = op(dst[i], src[i])
	}
	d := float64(len(dst)) * c.world.Machine.TOp
	c.me.clock += d
	c.me.chargeComp(d)
}

// Allreduce combines x element-wise across all ranks with op and leaves
// the identical result in x on every rank. For power-of-two sizes it uses
// recursive doubling — log₂P steps of (t_s + t_w·m), the paper's Equation
// 2 cost — and otherwise a binomial-tree reduce followed by a broadcast.
func Allreduce[T Elem](c *Comm, x []T, op Op[T]) {
	p := c.Size()
	if p == 1 {
		return
	}
	c.beginColl(CollAllreduce, 0)
	defer c.endColl()
	if p&(p-1) == 0 {
		for mask := 1; mask < p; mask <<= 1 {
			partner := c.rank ^ mask
			SendSlice(c, partner, tagReduce, x)
			rx := RecvSlice[T](c, partner, tagReduce)
			combine(c, x, rx, op)
		}
		return
	}
	Reduce(c, x, op, 0)
	Bcast(c, x, 0)
}

// Reduce combines x element-wise onto rank root via a binomial tree; the
// result is defined only at root (other ranks' x hold partial sums).
func Reduce[T Elem](c *Comm, x []T, op Op[T], root int) {
	p := c.Size()
	if p == 1 {
		return
	}
	c.beginColl(CollReduce, 0)
	defer c.endColl()
	vrank := (c.rank - root + p) % p
	for mask := 1; mask < p; mask <<= 1 {
		if vrank&mask != 0 {
			dst := (vrank - mask + root) % p
			SendSlice(c, dst, tagReduce, x)
			return
		}
		if vrank|mask < p {
			src := (vrank + mask + root) % p
			rx := RecvSlice[T](c, src, tagReduce)
			combine(c, x, rx, op)
		}
	}
}

// Bcast distributes root's x to every rank (in place) with a binomial
// tree: ⌈log₂P⌉ rounds of (t_s + t_w·m).
func Bcast[T Elem](c *Comm, x []T, root int) {
	p := c.Size()
	if p == 1 {
		return
	}
	c.beginColl(CollBcast, 0)
	defer c.endColl()
	vrank := (c.rank - root + p) % p
	var k int
	if vrank == 0 {
		k = bits.Len(uint(p - 1)) // ⌈log₂p⌉
	} else {
		k = bits.TrailingZeros(uint(vrank))
		src := (vrank - (1 << k) + root) % p
		rx := RecvSlice[T](c, src, tagBcast)
		copy(x, rx)
	}
	for j := k - 1; j >= 0; j-- {
		dst := vrank + 1<<j
		if dst < p {
			SendSlice(c, (dst+root)%p, tagBcast, x)
		}
	}
}

// Gatherv collects each rank's variable-length x at root, returned as a
// per-rank slice (nil on non-roots). Linear: every non-root sends
// directly to root, root receives in rank order.
func Gatherv[T Elem](c *Comm, tag int, x []T, root int) [][]T {
	c.beginColl(CollGather, tag)
	defer c.endColl()
	if c.rank != root {
		SendSlice(c, root, tagGather^tag<<8, x)
		return nil
	}
	out := make([][]T, c.Size())
	for r := 0; r < c.Size(); r++ {
		if r == root {
			out[r] = append([]T(nil), x...)
		} else {
			out[r] = RecvSlice[T](c, r, tagGather^tag<<8)
		}
	}
	return out
}

// Allgatherv concatenates every rank's variable-length contribution in
// rank order and returns the identical concatenation on all ranks, using
// the standard ring algorithm (P−1 nearest-neighbour steps).
func Allgatherv[T Elem](c *Comm, tag int, x []T) []T {
	c.beginColl(CollAllgather, tag)
	defer c.endColl()
	p := c.Size()
	blocks := make([][]T, p)
	blocks[c.rank] = append([]T(nil), x...)
	right := (c.rank + 1) % p
	left := (c.rank - 1 + p) % p
	cur := c.rank
	for step := 0; step < p-1; step++ {
		// Length-prefix framing keeps the ring fully deterministic even
		// for empty blocks.
		SendSlice(c, right, tagAllgather^tag<<8, blocks[cur])
		cur = (cur - 1 + p) % p
		blocks[cur] = RecvSlice[T](c, left, tagAllgather^tag<<8)
	}
	var total int
	for _, b := range blocks {
		total += len(b)
	}
	out := make([]T, 0, total)
	for _, b := range blocks {
		out = append(out, b...)
	}
	return out
}

// AllgatherInt is a convenience wrapper: each rank contributes one int64
// and receives everyone's values in rank order.
func AllgatherInt(c *Comm, tag int, v int64) []int64 {
	return Allgatherv(c, tag, []int64{v})
}

// Alltoallv performs a personalized all-to-all exchange: send[r] goes to
// rank r; the returned recv[r] is what rank r sent to the caller. The
// caller's own block is passed through without a message. P−1 rounds of
// pairwise exchange with rotating partners — the "moving phase" primitive
// of the partitioned and hybrid formulations.
func Alltoallv[T Elem](c *Comm, tag int, send [][]T) [][]T {
	p := c.Size()
	if len(send) != p {
		panic(fmt.Sprintf("mp: Alltoallv needs %d send blocks, got %d", p, len(send)))
	}
	c.beginColl(CollAlltoall, tag)
	defer c.endColl()
	recv := make([][]T, p)
	recv[c.rank] = append([]T(nil), send[c.rank]...)
	for step := 1; step < p; step++ {
		dst := (c.rank + step) % p
		src := (c.rank - step + p) % p
		SendSlice(c, dst, tagAlltoall^tag<<8, send[dst])
		recv[src] = RecvSlice[T](c, src, tagAlltoall^tag<<8)
	}
	return recv
}

// BcastValue broadcasts an opaque payload of explicit modeled size from
// root along a binomial tree and returns it on every rank (non-roots pass
// payload nil). Used to replicate assembled trees, whose wire size is
// modeled by tree.SubtreeBytes rather than by element count.
func BcastValue(c *Comm, payload any, bytes int, root int) any {
	p := c.Size()
	if p == 1 {
		return payload
	}
	c.beginColl(CollBcast, 0)
	defer c.endColl()
	vrank := (c.rank - root + p) % p
	var k int
	if vrank == 0 {
		k = bits.Len(uint(p - 1))
	} else {
		k = bits.TrailingZeros(uint(vrank))
		src := (vrank - (1 << k) + root) % p
		msg := c.Recv(src, tagBcast)
		payload = msg.Payload
		bytes = msg.Bytes
	}
	for j := k - 1; j >= 0; j-- {
		dst := vrank + 1<<j
		if dst < p {
			c.Send((dst+root)%p, tagBcast, payload, bytes)
		}
	}
	return payload
}

// Barrier synchronizes all ranks (an allreduce of one int64 word); on
// return every rank's modeled clock is at least the max of the clocks at
// entry.
func (c *Comm) Barrier() {
	c.beginColl(CollBarrier, 0)
	defer c.endColl()
	x := []int64{0}
	Allreduce(c, x, Max)
}

// AllreduceClock synchronizes the modeled clocks of all ranks to their
// maximum without transferring data volume: every message is genuinely
// zero-byte, so only the startup latency t_s is paid and no t_w or
// bytesSent is charged. The max-clock propagation rides entirely on the
// modeled arrival times (a receiver's clock becomes at least the sender's
// send-completion clock), so no payload is needed. It is used at points
// where the algorithm logically synchronizes but exchanges no payload
// beyond what was already accounted.
func (c *Comm) AllreduceClock() {
	p := c.Size()
	if p == 1 {
		return
	}
	c.beginColl(CollBarrier, 0)
	defer c.endColl()
	if p&(p-1) == 0 {
		// Recursive doubling: log₂P rounds of zero-byte pairwise exchange.
		for mask := 1; mask < p; mask <<= 1 {
			partner := c.rank ^ mask
			c.Send(partner, tagClock, nil, 0)
			c.Recv(partner, tagClock)
		}
		return
	}
	// Binomial-tree reduce onto rank 0 followed by a binomial broadcast,
	// both with zero-byte messages.
	for mask := 1; mask < p; mask <<= 1 {
		if c.rank&mask != 0 {
			c.Send(c.rank-mask, tagClock, nil, 0)
			break
		}
		if c.rank|mask < p {
			c.Recv(c.rank+mask, tagClock)
		}
	}
	var k int
	if c.rank == 0 {
		k = bits.Len(uint(p - 1))
	} else {
		k = bits.TrailingZeros(uint(c.rank))
		c.Recv(c.rank-1<<k, tagClock)
	}
	for j := k - 1; j >= 0; j-- {
		if dst := c.rank + 1<<j; dst < p {
			c.Send(dst, tagClock, nil, 0)
		}
	}
}
