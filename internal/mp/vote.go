package mp

import (
	"fmt"

	"partree/internal/kernel"
)

// VoteElect runs the ballot round of voted split selection. Every rank
// contributes, for each of nGroups election groups, a fixed-size ballot
// of k slots: attrs[g*k+i] is the i-th nominated attribute id (-1 for
// an unused slot) and scores[g*k+i] its local gain. Ballots are
// exchanged with an allgather — 12 modeled bytes per (attr, score)
// entry — and each rank tallies the full concatenation locally, so the
// election is a pure function of the multiset of ballots and therefore
// invariant to rank arrival order. Scores travel as diagnostics only:
// winners are the ≤elect attributes with the most nominations, ties
// broken by ascending attribute index, so floating-point summation
// order can never change the outcome and the elected sets are
// bit-identical on every rank.
//
// The result is written per group into elected (nGroups stripes of
// elect slots, -1 padded); counts[g] receives group g's winner count.
// The exchange appears in the breakdown/trace layer as its own "vote"
// collective row, attributed to the caller's current phase. At P = 1
// the election is purely local and nothing is charged.
func VoteElect(c *Comm, attrs []int32, scores []float64, nGroups, k, elect, numAttrs int, elected []int32, counts []int32) {
	if len(attrs) != nGroups*k || len(scores) != nGroups*k {
		panic(fmt.Sprintf("mp: VoteElect ballot shape %d/%d != %d groups × %d", len(attrs), len(scores), nGroups, k))
	}
	if len(elected) < nGroups*elect || len(counts) < nGroups {
		panic("mp: VoteElect output buffers too small")
	}
	all := attrs
	p := c.Size()
	if p > 1 {
		c.beginColl(CollVote, tagVote, c.allgatherAlgo())
		all = Allgatherv(c, tagVote, attrs)
		Allgatherv(c, tagVoteScore, scores)
		c.endColl()
	}
	ballot := kernel.GetInt32(p * k)
	for g := 0; g < nGroups; g++ {
		for r := 0; r < p; r++ {
			copy(ballot[r*k:(r+1)*k], all[r*nGroups*k+g*k:r*nGroups*k+(g+1)*k])
		}
		n := kernel.ElectCandidates(ballot, numAttrs, elect, elected[g*elect:(g+1)*elect])
		for i := n; i < elect; i++ {
			elected[g*elect+i] = -1
		}
		counts[g] = int32(n)
	}
	kernel.PutInt32(ballot)
}
