// Package mp is the message-passing substrate the parallel formulations
// run on — a replacement for the MPI library the paper used on the IBM
// SP-2. Each logical processor is a goroutine with a private mailbox;
// point-to-point sends and tagged receives are the primitives, and the
// collectives (barrier, broadcast, reduce, all-reduce, gather, all-gather,
// all-to-all personalized exchange) are built over them with the hypercube
// algorithms of Kumar, Grama, Gupta & Karypis, "Introduction to Parallel
// Computing" — the paper's reference [16].
//
// Besides moving data, the layer maintains a deterministic modeled clock
// per rank under the classic (t_s, t_w, t_c) cost model: Compute(ops)
// advances the local clock by ops·t_c; a message stamps the sender's
// clock plus t_s + t_w·bytes, and the receiver's clock becomes the max of
// its own clock and the stamp. Synchronization waits and load imbalance
// therefore appear in modeled time exactly as they would on a distributed
// machine, no matter how the goroutines are actually scheduled. All
// speedup/scaleup figures are reported in modeled time (see DESIGN.md §2).
package mp

// Machine holds the communication/computation cost parameters of the
// modeled machine.
type Machine struct {
	// TS is the message startup latency in seconds (t_s).
	TS float64
	// TW is the per-byte transfer time in seconds (t_w).
	TW float64
	// TC is the unit computation time in seconds (t_c): the modeled cost
	// of touching one attribute value of one record (histogram update,
	// I/O scan amortized).
	TC float64
	// TOp is the pure in-memory cost of one word of reduction arithmetic
	// (the element-wise combine each rank performs at every step of a
	// reduction). Far below TC, which amortizes the disk scan.
	TOp float64
	// TH is the per-hop routing latency in seconds (t_h): every
	// point-to-point message additionally pays TH times the hop distance
	// between sender and receiver under the world's Topology. Zero — the
	// default, and in SP2/LowLatency — models cut-through routing with
	// negligible per-hop cost (the paper's Equation 2 assumption), making
	// every topology price identically and keeping the historic modeled
	// clocks bit-identical.
	TH float64
	// TD is the per-byte stable-storage transfer time in seconds (t_d):
	// durable checkpoint writes and restores move their bytes at this
	// rate, the distinct disk cost class next to t_op. Zero — the
	// default, and in SP2/LowLatency — models checkpointing fully
	// overlapped off the critical path (PR 3's assumption) and keeps the
	// historic modeled clocks bit-identical; MTTR sweeps set it to price
	// recovery I/O.
	TD float64
}

// WithHopLatency returns a copy of the machine with the per-hop routing
// latency set — the knob that makes topologies distinguishable.
func (m Machine) WithHopLatency(th float64) Machine {
	m.TH = th
	return m
}

// WithDiskRate returns a copy of the machine with the per-byte
// stable-storage transfer time set — the knob that puts durable
// checkpoint I/O on the modeled critical path.
func (m Machine) WithDiskRate(td float64) Machine {
	m.TD = td
	return m
}

// SP2 returns cost parameters resembling the paper's testbed: a 66.7 MHz
// POWER2 node on a high-performance switch. Roughly: 40 µs message
// startup and 25 ns/byte (≈40 MB/s) on the switch; 1 µs of work per
// record-attribute touched — the paper keeps the attribute lists on disk
// (§5) and uses memory only for histograms, so t_c amortizes the I/O scan
// of each level over the per-record histogram updates, far above the pure
// CPU cost. With these parameters the modeled runs reproduce the paper's
// figure shapes, including the ratio-1.0 minimum of Figure 7.
func SP2() Machine {
	return Machine{TS: 40e-6, TW: 25e-9, TC: 1e-6, TOp: 0.1e-6}
}

// LowLatency returns a machine with 10× cheaper communication, useful in
// ablations of the splitting criterion (cheap networks push the hybrid
// toward the synchronous end).
func LowLatency() Machine {
	return Machine{TS: 4e-6, TW: 2.5e-9, TC: 0.1e-6, TOp: 0.05e-6}
}

// SendCost returns the modeled cost of transferring one message of the
// given size: t_s + t_w·bytes.
func (m Machine) SendCost(bytes int) float64 {
	return m.TS + m.TW*float64(bytes)
}
