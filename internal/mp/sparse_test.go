package mp

import (
	"reflect"
	"testing"
)

// runSum runs AllreduceSum over p ranks where each rank r contributes
// mk(r), returning every rank's result and the world for accounting.
func runSum(t *testing.T, p int, threshold float64, mk func(r int) []int64) ([][]int64, *World) {
	t.Helper()
	w := NewWorld(p, SP2())
	out := make([][]int64, p)
	w.Run(func(c *Comm) {
		x := mk(c.Rank())
		AllreduceSum(c, x, threshold)
		out[c.Rank()] = x
	})
	return out, w
}

func TestAllreduceSumMatchesDense(t *testing.T) {
	mkDense := func(r int) []int64 {
		x := make([]int64, 64)
		for i := range x {
			x[i] = int64(r*31 + i)
		}
		return x
	}
	mkSparse := func(r int) []int64 {
		x := make([]int64, 64)
		x[r%64] = int64(r + 1)
		x[(r*7+3)%64] = -int64(r + 2)
		return x
	}
	for _, p := range []int{1, 2, 3, 4, 5, 8} {
		for _, mk := range []func(int) []int64{mkDense, mkSparse} {
			want, _ := runSum(t, p, 0, mk) // dense reference
			for _, th := range []float64{0.25, 0.5, 1.0} {
				got, _ := runSum(t, p, th, mk)
				for r := 0; r < p; r++ {
					if !reflect.DeepEqual(want[0], got[r]) {
						t.Fatalf("p=%d th=%g rank %d: adaptive result %v != dense %v", p, th, r, got[r], want[0])
					}
				}
			}
		}
	}
}

// TestAllreduceSumThresholdZeroBitIdentical: threshold ≤ 0 must delegate to
// the plain dense collective — identical clocks, traffic and breakdowns,
// and no encoding counters at all.
func TestAllreduceSumThresholdZeroBitIdentical(t *testing.T) {
	mk := func(r int) []int64 {
		x := make([]int64, 33)
		x[r] = int64(r + 1)
		return x
	}
	for _, p := range []int{3, 4} {
		wantVals := make([][]int64, p)
		w1 := NewWorld(p, SP2())
		w1.Run(func(c *Comm) {
			x := mk(c.Rank())
			Allreduce(c, x, Sum)
			wantVals[c.Rank()] = x
		})
		gotVals := make([][]int64, p)
		w2 := NewWorld(p, SP2())
		w2.Run(func(c *Comm) {
			x := mk(c.Rank())
			AllreduceSum(c, x, 0)
			gotVals[c.Rank()] = x
		})
		if !reflect.DeepEqual(wantVals, gotVals) {
			t.Fatalf("p=%d: values differ", p)
		}
		if w1.MaxClock() != w2.MaxClock() {
			t.Fatalf("p=%d: clock %v != %v", p, w1.MaxClock(), w2.MaxClock())
		}
		if !reflect.DeepEqual(w1.Traffic(), w2.Traffic()) {
			t.Fatalf("p=%d: traffic %+v != %+v", p, w1.Traffic(), w2.Traffic())
		}
		if !reflect.DeepEqual(w1.Breakdown(), w2.Breakdown()) {
			t.Fatalf("p=%d: breakdowns differ", p)
		}
		if enc := w2.EncodingByPhase(); len(enc) != 0 {
			t.Fatalf("p=%d: threshold 0 recorded encoding stats %+v", p, enc)
		}
	}
}

// TestAllreduceSumSparseSavesBytes: a near-empty vector must ship fewer
// modeled bytes sparse than dense, and the saving must be visible in the
// per-phase encoding stats.
func TestAllreduceSumSparseSavesBytes(t *testing.T) {
	mk := func(r int) []int64 {
		x := make([]int64, 1024)
		x[r] = 1
		return x
	}
	for _, p := range []int{3, 4} {
		_, dense := runSum(t, p, 0, mk)
		_, adaptive := runSum(t, p, 0.5, mk)
		db, ab := dense.Traffic().Bytes, adaptive.Traffic().Bytes
		if ab*4 > db {
			t.Fatalf("p=%d: adaptive sent %d bytes, dense %d — expected ≥4× saving on a 2/1024-dense vector", p, ab, db)
		}
		enc := adaptive.EncodingByPhase()
		e, ok := enc[""]
		if !ok {
			t.Fatalf("p=%d: no encoding stats recorded", p)
		}
		if e.SparseMsgs == 0 {
			t.Fatalf("p=%d: no sparse messages recorded: %+v", p, e)
		}
		if e.SentBytes != ab {
			t.Fatalf("p=%d: encoding SentBytes %d != traffic bytes %d", p, e.SentBytes, ab)
		}
		if e.BytesSaved() != db-ab {
			t.Fatalf("p=%d: BytesSaved %d != dense−adaptive %d", p, e.BytesSaved(), db-ab)
		}
		// Flushes classify by the reduce leg only: every rank that sends a
		// reduce-leg message sends it sparse here, but the reduction root
		// (rank 0 on the non-power-of-two path) has no reduce-leg send at
		// all and therefore counts as one dense flush.
		wantDense := int64(0)
		if !isPow2(p) {
			wantDense = 1
		}
		if e.SparseFlushes != int64(p)-wantDense || e.DenseFlushes != wantDense {
			t.Fatalf("p=%d: flush counts %+v, want %d sparse / %d dense", p, e, int64(p)-wantDense, wantDense)
		}
	}
}

// TestAllreduceSumAdaptivePerMessage: ranks holding dense data and ranks
// holding sparse data coexist in one reduction — the encoding is chosen
// per message, not per call, and partially-reduced intermediates (which
// densify as the reduction proceeds) may legitimately flip dense.
func TestAllreduceSumAdaptivePerMessage(t *testing.T) {
	mk := func(r int) []int64 {
		x := make([]int64, 256)
		if r == 0 {
			for i := range x {
				x[i] = int64(i + 1) // fully dense contribution
			}
		} else {
			x[r] = int64(r)
		}
		return x
	}
	want, _ := runSum(t, 4, 0, mk)
	got, w := runSum(t, 4, 0.5, mk)
	for r := range got {
		if !reflect.DeepEqual(want[0], got[r]) {
			t.Fatalf("rank %d mismatch", r)
		}
	}
	e := w.EncodingByPhase()[""]
	if e.SparseMsgs == 0 || e.DenseMsgs == 0 {
		t.Fatalf("expected a mix of encodings, got %+v", e)
	}
}

// TestEncodingStatsPhaseAttributionAndReset: encoding counters land in the
// rank's current phase and are cleared by World.Reset.
func TestEncodingStatsPhaseAttributionAndReset(t *testing.T) {
	w := NewWorld(2, SP2())
	w.Run(func(c *Comm) {
		c.BeginPhase("reduction")
		x := make([]int64, 512)
		x[c.Rank()] = 1
		AllreduceSum(c, x, 0.5)
		c.EndPhase()
	})
	enc := w.EncodingByPhase()
	if _, ok := enc["reduction"]; !ok || len(enc) != 1 {
		t.Fatalf("encoding stats not attributed to phase: %+v", enc)
	}
	if EncodingTable(enc) == "" {
		t.Fatal("EncodingTable empty for non-empty stats")
	}
	w.Reset()
	if len(w.EncodingByPhase()) != 0 {
		t.Fatal("Reset did not clear encoding stats")
	}
	if EncodingTable(nil) != "" {
		t.Fatal("EncodingTable of nil must be empty")
	}
}
