package quest

import (
	"fmt"
	"testing"

	"partree/internal/dataset"
)

func TestSchemaValid(t *testing.T) {
	s := Schema()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.NumAttrs() != 9 || s.NumCategorical() != 3 || s.NumContinuous() != 6 {
		t.Fatalf("schema shape wrong: %d attrs, %d cat, %d cont",
			s.NumAttrs(), s.NumCategorical(), s.NumContinuous())
	}
	if s.NumClasses() != 2 {
		t.Fatal("want two classes")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(Config{Function: 2, Seed: 42}, 500)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Generate(Config{Function: 2, Seed: 42}, 500)
	c, _ := Generate(Config{Function: 2, Seed: 43}, 500)
	same, diff := 0, 0
	for i := 0; i < 500; i++ {
		if a.Cont[Salary][i] == b.Cont[Salary][i] {
			same++
		}
		if a.Cont[Salary][i] != c.Cont[Salary][i] {
			diff++
		}
	}
	if same != 500 {
		t.Fatalf("same seed reproduced only %d/500 records", same)
	}
	if diff < 490 {
		t.Fatalf("different seed matched too often (%d differ)", diff)
	}
}

// TestBlockIndependence: generating the stream in arbitrary blocks yields
// exactly the rows of the full stream — the property that lets every
// processor generate its own partition with no communication.
func TestBlockIndependence(t *testing.T) {
	cfg := Config{Function: 5, Seed: 7}
	full, err := Generate(cfg, 300)
	if err != nil {
		t.Fatal(err)
	}
	for _, cuts := range [][]int{{0, 100, 200, 300}, {0, 1, 299, 300}, {0, 150, 300}} {
		var parts []*dataset.Dataset
		for i := 0; i+1 < len(cuts); i++ {
			b, err := GenerateBlock(cfg, cuts[i], cuts[i+1])
			if err != nil {
				t.Fatal(err)
			}
			parts = append(parts, b)
		}
		joined := dataset.New(full.Schema, 300)
		for _, p := range parts {
			joined.AppendAll(p)
		}
		if joined.Len() != full.Len() {
			t.Fatalf("blocks cover %d rows, want %d", joined.Len(), full.Len())
		}
		for i := 0; i < 300; i++ {
			if joined.RID[i] != full.RID[i] || joined.Class[i] != full.Class[i] ||
				joined.Cont[Loan][i] != full.Cont[Loan][i] || joined.Cat[Car][i] != full.Cat[Car][i] {
				t.Fatalf("cuts %v: row %d differs from full stream", cuts, i)
			}
		}
	}
}

func TestAttributeRanges(t *testing.T) {
	d, err := Generate(Config{Function: 1, Seed: 9}, 5000)
	if err != nil {
		t.Fatal(err)
	}
	ranges := Ranges()
	for a, r := range ranges {
		for i := 0; i < d.Len(); i++ {
			v := d.Cont[a][i]
			if v < r[0]-1e-9 || v > r[1]+1e-9 {
				t.Fatalf("attr %d value %g outside [%g, %g]", a, v, r[0], r[1])
			}
		}
	}
	for i := 0; i < d.Len(); i++ {
		salary, commission := d.Cont[Salary][i], d.Cont[Commission][i]
		if salary >= 75000 && commission != 0 {
			t.Fatalf("row %d: salary %g ≥ 75k but commission %g ≠ 0", i, salary, commission)
		}
		if salary < 75000 && (commission < 10000 || commission > 75000) {
			t.Fatalf("row %d: salary %g < 75k but commission %g outside [10k, 75k]", i, salary, commission)
		}
		zip := d.Cat[ZipCode][i]
		k := float64(zip + 1)
		hv := d.Cont[HValue][i]
		if hv < 0.5*k*100000-1e-6 || hv > 1.5*k*100000+1e-6 {
			t.Fatalf("row %d: hvalue %g inconsistent with zipcode %d", i, hv, zip)
		}
	}
}

func TestAllFunctionsNonDegenerate(t *testing.T) {
	for fn := 1; fn <= NumFunctions; fn++ {
		t.Run(fmt.Sprintf("f%d", fn), func(t *testing.T) {
			d, err := Generate(Config{Function: fn, Seed: 11}, 4000)
			if err != nil {
				t.Fatal(err)
			}
			counts := d.ClassCounts()
			if counts[GroupA] == 0 || counts[GroupB] == 0 {
				t.Fatalf("function %d degenerate: %v", fn, counts)
			}
		})
	}
}

func TestClassifyMatchesGeneratedLabels(t *testing.T) {
	for fn := 1; fn <= NumFunctions; fn++ {
		d, err := Generate(Config{Function: fn, Seed: 13}, 500)
		if err != nil {
			t.Fatal(err)
		}
		rec := dataset.NewRecord(d.Schema)
		for i := 0; i < d.Len(); i++ {
			d.RowInto(i, &rec)
			if got := Classify(fn, &rec); got != d.Class[i] {
				t.Fatalf("fn %d row %d: Classify=%d, label=%d", fn, i, got, d.Class[i])
			}
		}
	}
}

func TestFunction2Semantics(t *testing.T) {
	rec := dataset.NewRecord(Schema())
	set := func(age, salary float64) *dataset.Record {
		rec.Cont[Age] = age
		rec.Cont[Salary] = salary
		return &rec
	}
	cases := []struct {
		age, salary float64
		want        int32
	}{
		{30, 75000, GroupA},
		{30, 40000, GroupB},
		{30, 110000, GroupB},
		{50, 100000, GroupA},
		{50, 60000, GroupB},
		{65, 50000, GroupA},
		{65, 80000, GroupB},
	}
	for _, tc := range cases {
		if got := Classify(2, set(tc.age, tc.salary)); got != tc.want {
			t.Errorf("f2(age=%g, salary=%g) = %d, want %d", tc.age, tc.salary, got, tc.want)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Generate(Config{Function: 0, Seed: 1}, 10); err == nil {
		t.Error("function 0 accepted")
	}
	if _, err := Generate(Config{Function: 11, Seed: 1}, 10); err == nil {
		t.Error("function 11 accepted")
	}
	if _, err := GenerateBlock(Config{Function: 1, Seed: 1}, 5, 3); err == nil {
		t.Error("inverted block accepted")
	}
}

func TestPaperBinsComplete(t *testing.T) {
	bins := PaperBins()
	want := map[int]int{Salary: 13, Commission: 14, Age: 6, HValue: 11, HYears: 10, Loan: 20}
	for a, b := range want {
		if bins[a] != b {
			t.Errorf("attr %d: %d bins, paper says %d", a, bins[a], b)
		}
	}
	s := Schema()
	for a := range bins {
		if s.Attrs[a].Kind != dataset.Continuous {
			t.Errorf("attr %d binned but not continuous", a)
		}
	}
}

func TestPerturbation(t *testing.T) {
	clean, err := Generate(Config{Function: 2, Seed: 5}, 800)
	if err != nil {
		t.Fatal(err)
	}
	noisy, err := Generate(Config{Function: 2, Seed: 5, Perturbation: 0.2}, 800)
	if err != nil {
		t.Fatal(err)
	}
	// Labels are assigned before perturbation: identical classes.
	changed := 0
	ranges := Ranges()
	for i := 0; i < 800; i++ {
		if noisy.Class[i] != clean.Class[i] {
			t.Fatalf("row %d: perturbation changed the label", i)
		}
		for a, r := range ranges {
			v := noisy.Cont[a][i]
			if v < r[0]-1e-9 || v > r[1]+1e-9 {
				t.Fatalf("row %d attr %d: perturbed value %g escaped [%g,%g]", i, a, v, r[0], r[1])
			}
			if v != clean.Cont[a][i] {
				changed++
			}
		}
	}
	if changed < 800 {
		t.Fatalf("only %d values perturbed — noise not applied", changed)
	}
	// Deterministic.
	again, _ := Generate(Config{Function: 2, Seed: 5, Perturbation: 0.2}, 800)
	for i := 0; i < 800; i++ {
		if again.Cont[Salary][i] != noisy.Cont[Salary][i] {
			t.Fatal("perturbation not deterministic")
		}
	}
	// The noisy concept is harder: a validation error check.
	if _, err := Generate(Config{Function: 2, Seed: 1, Perturbation: 1.5}, 10); err == nil {
		t.Error("perturbation 1.5 accepted")
	}
}
