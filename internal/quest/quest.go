// Package quest re-implements the synthetic-data generator of Agrawal,
// Imielinski and Swami ("Database Mining: A Performance Perspective",
// IEEE TKDE 1993) that the SLIQ and SPRINT papers — and this paper's
// experiments — use. Each record has nine attributes (six continuous,
// three categorical) and one of two class labels ("Group A" / "Group B")
// assigned by one of ten classification functions F1–F10. The paper's
// experiments use function 2.
//
// Generation is deterministic for a seed and independent of how the
// records are block-partitioned across processors: GenerateBlock(seed, lo,
// hi) derives a fresh PCG stream per record index, so processor p holding
// rows [p·N/P, (p+1)·N/P) produces exactly the rows the serial generator
// would.
package quest

import (
	"fmt"
	"math/rand/v2"

	"partree/internal/dataset"
)

// Attribute indices in the generated schema, in the order of the original
// paper.
const (
	Salary     = iota // continuous: uniform 20,000..150,000
	Commission        // continuous: 0 if salary ≥ 75,000, else uniform 10,000..75,000
	Age               // continuous: uniform 20..80
	ELevel            // categorical: education level 0..4
	Car               // categorical: make of car 1..20
	ZipCode           // categorical: 9 zip codes
	HValue            // continuous: uniform 0.5·k·100,000..1.5·k·100,000, k from zipcode
	HYears            // continuous: uniform 1..30
	Loan              // continuous: uniform 0..500,000
)

// NumFunctions is the count of classification functions.
const NumFunctions = 10

// NumBaseAttrs is the attribute count of the original generator; wide
// schemas (Config.Attrs) append synthetic noise attributes after these.
const NumBaseAttrs = 9

// MaxAttrs bounds a wide schema (a guard against typos, not a design
// limit — the voted-split experiments use hundreds of attributes).
const MaxAttrs = 1 << 16

// GroupA and GroupB are the class codes.
const (
	GroupA int32 = 0
	GroupB int32 = 1
)

// Schema returns the nine-attribute Quest schema.
func Schema() *dataset.Schema {
	elevels := make([]string, 5)
	for i := range elevels {
		elevels[i] = fmt.Sprintf("level%d", i)
	}
	cars := make([]string, 20)
	for i := range cars {
		cars[i] = fmt.Sprintf("make%d", i+1)
	}
	zips := make([]string, 9)
	for i := range zips {
		zips[i] = fmt.Sprintf("zip%d", i+1)
	}
	return &dataset.Schema{
		Attrs: []dataset.Attribute{
			{Name: "salary", Kind: dataset.Continuous},
			{Name: "commission", Kind: dataset.Continuous},
			{Name: "age", Kind: dataset.Continuous},
			{Name: "elevel", Kind: dataset.Categorical, Values: elevels},
			{Name: "car", Kind: dataset.Categorical, Values: cars},
			{Name: "zipcode", Kind: dataset.Categorical, Values: zips},
			{Name: "hvalue", Kind: dataset.Continuous},
			{Name: "hyears", Kind: dataset.Continuous},
			{Name: "loan", Kind: dataset.Continuous},
		},
		Classes: []string{"Group A", "Group B"},
	}
}

// wideExtraCard returns the shape of extra attribute j (j ≥ NumBaseAttrs)
// of a wide schema: 0 for a continuous attribute, otherwise the
// categorical cardinality. Extras alternate continuous/categorical, with
// cardinalities cycling through small powers of two — wide enough to
// exercise the categorical reduction blocks without exploding multiway
// fan-out or overflowing the 64-bit subset masks.
func wideExtraCard(j int) int {
	i := j - NumBaseAttrs
	if i%2 == 0 {
		return 0
	}
	return [4]int{2, 4, 8, 16}[(i/2)%4]
}

// SchemaN returns the schema of a wide generation: the nine paper
// attributes followed by attrs−9 synthetic extras (see wideExtraCard).
// attrs ≤ 9 returns the base schema.
func SchemaN(attrs int) *dataset.Schema {
	s := Schema()
	for j := NumBaseAttrs; j < attrs; j++ {
		name := fmt.Sprintf("x%d", j)
		if card := wideExtraCard(j); card > 0 {
			vals := make([]string, card)
			for v := range vals {
				vals[v] = fmt.Sprintf("%s_v%d", name, v)
			}
			s.Attrs = append(s.Attrs, dataset.Attribute{Name: name, Kind: dataset.Categorical, Values: vals})
		} else {
			s.Attrs = append(s.Attrs, dataset.Attribute{Name: name, Kind: dataset.Continuous})
		}
	}
	return s
}

// Config parameterizes generation.
type Config struct {
	Function int    // classification function, 1..10 (paper: 2)
	Seed     uint64 // stream seed; same seed ⇒ same records
	// Perturbation is Agrawal et al.'s noise factor: after the class label
	// is assigned, every continuous value is shifted by a uniform random
	// amount of up to ±Perturbation/2 of its generation range (clamped to
	// the range). 0 disables; the original paper uses 0.05. Perturbation
	// makes the concept imperfectly learnable, which is what the sampling
	// experiment (the paper's introduction, refs [24, 5-7]) needs.
	Perturbation float64
	// Attrs widens the schema to this many attributes total: the nine
	// paper attributes keep their exact values and still solely determine
	// the class label, and Attrs−9 synthetic noise attributes (see
	// SchemaN) are appended, drawn from the same per-record stream AFTER
	// all base fields — so rows agree with the narrow generator on the
	// shared prefix for any Attrs. 0 (or 9) is the original schema. Wide
	// schemas are the substrate of the voted-split experiments, where the
	// informative attributes must win elections against the noise.
	Attrs int
}

// SchemaOf returns the schema this configuration generates.
func (c Config) SchemaOf() *dataset.Schema { return SchemaN(c.Attrs) }

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Function < 1 || c.Function > NumFunctions {
		return fmt.Errorf("quest: function %d out of range 1..%d", c.Function, NumFunctions)
	}
	if c.Perturbation < 0 || c.Perturbation > 1 {
		return fmt.Errorf("quest: perturbation %g out of range [0, 1]", c.Perturbation)
	}
	if c.Attrs != 0 && (c.Attrs < NumBaseAttrs || c.Attrs > MaxAttrs) {
		return fmt.Errorf("quest: attrs %d out of range %d..%d (0 = base schema)", c.Attrs, NumBaseAttrs, MaxAttrs)
	}
	return nil
}

// Generate produces rows [0, n) — the whole training set — with record ids
// 0..n-1.
func Generate(cfg Config, n int) (*dataset.Dataset, error) {
	return GenerateBlock(cfg, 0, n)
}

// GenerateBlock produces rows [lo, hi) of the stream identified by
// cfg.Seed, with record ids equal to their row numbers. Every processor
// can generate its own block without any coordination.
func GenerateBlock(cfg Config, lo, hi int) (*dataset.Dataset, error) {
	if lo < 0 || hi < lo {
		return nil, fmt.Errorf("quest: invalid block [%d,%d)", lo, hi)
	}
	d := dataset.New(cfg.SchemaOf(), hi-lo)
	if err := GenerateTo(cfg, lo, hi, d); err != nil {
		return nil, err
	}
	return d, nil
}

// GenerateTo streams rows [lo, hi) of the stream to a row sink with one
// reused record of resident state — the out-of-core form of
// GenerateBlock, used to write arbitrarily large training sets straight
// into an on-disk column store. The rows are the same in either form
// (generation is per-record keyed).
func GenerateTo(cfg Config, lo, hi int, sink dataset.RowSink) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	if lo < 0 || hi < lo {
		return fmt.Errorf("quest: invalid block [%d,%d)", lo, hi)
	}
	rec := dataset.NewRecord(cfg.SchemaOf())
	for i := lo; i < hi; i++ {
		genRecord(cfg, int64(i), &rec)
		if err := sink.AppendRow(rec); err != nil {
			return err
		}
	}
	return nil
}

// genRecord fills rec with row i of the stream. A per-record PCG keyed by
// (seed, i) makes generation order-independent.
func genRecord(cfg Config, i int64, rec *dataset.Record) {
	rng := rand.New(rand.NewPCG(cfg.Seed, uint64(i)*0x9e3779b97f4a7c15+1))
	salary := uniform(rng, 20000, 150000)
	commission := 0.0
	if salary < 75000 {
		commission = uniform(rng, 10000, 75000)
	}
	age := uniform(rng, 20, 80)
	elevel := int32(rng.IntN(5))
	car := int32(rng.IntN(20))
	zip := int32(rng.IntN(9))
	k := float64(zip + 1)
	hvalue := uniform(rng, 0.5*k*100000, 1.5*k*100000)
	hyears := uniform(rng, 1, 30)
	loan := uniform(rng, 0, 500000)

	rec.Cont[Salary] = salary
	rec.Cont[Commission] = commission
	rec.Cont[Age] = age
	rec.Cat[ELevel] = elevel
	rec.Cat[Car] = car
	rec.Cat[ZipCode] = zip
	rec.Cont[HValue] = hvalue
	rec.Cont[HYears] = hyears
	rec.Cont[Loan] = loan
	rec.RID = i
	rec.Class = Classify(cfg.Function, rec)
	if cfg.Perturbation > 0 {
		ranges := Ranges()
		// Fixed attribute order: map iteration would consume the RNG in a
		// nondeterministic order.
		for _, a := range [...]int{Salary, Commission, Age, HValue, HYears, Loan} {
			r := ranges[a]
			span := (r[1] - r[0]) * cfg.Perturbation
			v := rec.Cont[a] + (rng.Float64()-0.5)*span
			if v < r[0] {
				v = r[0]
			}
			if v > r[1] {
				v = r[1]
			}
			rec.Cont[a] = v
		}
	}
	// Wide-schema extras draw after every base field (including the
	// perturbation), so the shared prefix of a record is identical for any
	// Attrs setting of the same seed.
	for j := NumBaseAttrs; j < len(rec.Cont); j++ {
		if card := wideExtraCard(j); card > 0 {
			rec.Cat[j] = int32(rng.IntN(card))
		} else {
			rec.Cont[j] = rng.Float64()
		}
	}
}

func uniform(rng *rand.Rand, lo, hi float64) float64 {
	return lo + rng.Float64()*(hi-lo)
}

// Classify applies classification function fn (1..10) to a record and
// returns GroupA or GroupB. The predicates follow Agrawal et al. (1993);
// F6–F10 are the "disposable income" family. Constants are reconstructed
// from the original paper's description — see DESIGN.md §2.
func Classify(fn int, r *dataset.Record) int32 {
	salary := r.Cont[Salary]
	commission := r.Cont[Commission]
	age := r.Cont[Age]
	elevel := float64(r.Cat[ELevel])
	hvalue := r.Cont[HValue]
	hyears := r.Cont[HYears]
	loan := r.Cont[Loan]

	groupA := false
	switch fn {
	case 1:
		groupA = age < 40 || age >= 60
	case 2:
		groupA = (age < 40 && between(salary, 50000, 100000)) ||
			(age >= 40 && age < 60 && between(salary, 75000, 125000)) ||
			(age >= 60 && between(salary, 25000, 75000))
	case 3:
		groupA = (age < 40 && (elevel == 0 || elevel == 1)) ||
			(age >= 40 && age < 60 && elevel >= 1 && elevel <= 3) ||
			(age >= 60 && elevel >= 2 && elevel <= 4)
	case 4:
		switch {
		case age < 40:
			if elevel <= 1 {
				groupA = between(salary, 25000, 75000)
			} else {
				groupA = between(salary, 50000, 100000)
			}
		case age < 60:
			if elevel >= 1 && elevel <= 3 {
				groupA = between(salary, 50000, 100000)
			} else {
				groupA = between(salary, 75000, 125000)
			}
		default:
			if elevel >= 2 && elevel <= 4 {
				groupA = between(salary, 50000, 100000)
			} else {
				groupA = between(salary, 25000, 75000)
			}
		}
	case 5:
		switch {
		case age < 40:
			if between(salary, 50000, 100000) {
				groupA = between(loan, 100000, 300000)
			} else {
				groupA = between(loan, 200000, 400000)
			}
		case age < 60:
			if between(salary, 75000, 125000) {
				groupA = between(loan, 200000, 400000)
			} else {
				groupA = between(loan, 300000, 500000)
			}
		default:
			if between(salary, 25000, 75000) {
				groupA = between(loan, 300000, 500000)
			} else {
				groupA = between(loan, 100000, 300000)
			}
		}
	case 6:
		total := salary + commission
		groupA = (age < 40 && between(total, 50000, 100000)) ||
			(age >= 40 && age < 60 && between(total, 75000, 125000)) ||
			(age >= 60 && between(total, 25000, 75000))
	case 7:
		disposable := 0.67*(salary+commission) - 0.2*loan - 20000
		groupA = disposable > 0
	case 8:
		disposable := 0.67*(salary+commission) - 5000*elevel - 20000
		groupA = disposable > 0
	case 9:
		disposable := 0.67*(salary+commission) - 5000*elevel - 0.2*loan - 10000
		groupA = disposable > 0
	case 10:
		equity := 0.0
		if hyears >= 20 {
			equity = 0.1 * hvalue * (hyears - 20)
		}
		disposable := 0.67*(salary+commission) - 5000*elevel + 0.2*equity - 10000
		groupA = disposable > 0
	default:
		panic(fmt.Sprintf("quest: function %d out of range", fn))
	}
	if groupA {
		return GroupA
	}
	return GroupB
}

func between(x, lo, hi float64) bool { return x >= lo && x <= hi }

// PaperBins returns the equal-interval bin counts the paper used to
// discretize the six continuous attributes for the Figure 6 and 7
// experiments: salary 13, commission 14, age 6, hvalue 11, hyears 10,
// loan 20. The map is keyed by attribute index.
func PaperBins() map[int]int {
	return map[int]int{
		Salary:     13,
		Commission: 14,
		Age:        6,
		HValue:     11,
		HYears:     10,
		Loan:       20,
	}
}

// Ranges returns the generation range [lo, hi] of each continuous
// attribute; equal-width discretization uses these exact bounds so bin
// edges do not depend on the sample.
func Ranges() map[int][2]float64 {
	return map[int][2]float64{
		Salary:     {20000, 150000},
		Commission: {0, 75000},
		Age:        {20, 80},
		HValue:     {0.5 * 100000, 1.5 * 9 * 100000},
		HYears:     {1, 30},
		Loan:       {0, 500000},
	}
}
