package sliq

import (
	"fmt"
	"testing"

	"partree/internal/kernel"
	"partree/internal/quest"
	"partree/internal/tree"
)

// TestVotedSliqIdentity pins the single-voter degeneracy: serial SLIQ is
// a one-rank electorate, and a voter's own argmax always sits in its
// top-k ballot, so the election filter can never change the chosen
// split — voted SLIQ must equal exact SLIQ bit-for-bit at every K,
// active ones included. The voted machinery (per-leaf gain capture,
// nomination, election, filter) still runs; the boundary where voting
// begins to approximate is P > 1 voters disagreeing, which SLIQ's
// serial algorithm structurally cannot reach.
func TestVotedSliqIdentity(t *testing.T) {
	for _, attrs := range []int{0, 24} {
		d, err := quest.Generate(quest.Config{Function: 2, Seed: 51, Attrs: attrs}, 1500)
		if err != nil {
			t.Fatal(err)
		}
		o := tree.Options{Binary: true, MaxDepth: 7}
		want := Build(d, o)
		for _, k := range []int{1, 2, 4, d.Schema.NumAttrs()} {
			t.Run(fmt.Sprintf("attrs%d/k%d", attrs, k), func(t *testing.T) {
				vo := o
				vo.Vote = kernel.VoteOptions{K: k}
				got := Build(d, vo)
				if diff := tree.Diff(want, got); diff != "" {
					t.Fatalf("voted SLIQ (K=%d) differs from exact: %s", k, diff)
				}
			})
		}
	}
}
