package sliq

import (
	"fmt"
	"testing"

	"partree/internal/criteria"
	"partree/internal/dataset"
	"partree/internal/quest"
	"partree/internal/sprint"
	"partree/internal/tree"
)

// TestSliqMatchesHuntAndSprint: three data-structure strategies — per-node
// sorting (Hunt), per-node attribute lists (SPRINT), global attribute
// lists + class list (SLIQ) — one decision procedure, identical trees.
func TestSliqMatchesHuntAndSprint(t *testing.T) {
	for _, fn := range []int{1, 2, 7, 9} {
		d, err := quest.Generate(quest.Config{Function: fn, Seed: uint64(fn) * 7}, 1200)
		if err != nil {
			t.Fatal(err)
		}
		for _, binary := range []bool{true, false} {
			for _, crit := range []criteria.Criterion{criteria.Entropy, criteria.Gini} {
				t.Run(fmt.Sprintf("fn%d/binary=%v/%v", fn, binary, crit), func(t *testing.T) {
					o := tree.Options{Binary: binary, Criterion: crit, MaxDepth: 7}
					hunt := tree.BuildHunt(d, o)
					got := Build(d, o)
					if diff := tree.Diff(hunt, got); diff != "" {
						t.Fatalf("SLIQ differs from Hunt: %s", diff)
					}
					spr := sprint.Build(d, o)
					if diff := tree.Diff(spr, got); diff != "" {
						t.Fatalf("SLIQ differs from SPRINT: %s", diff)
					}
				})
			}
		}
	}
}

func TestSliqWeather(t *testing.T) {
	w := dataset.Weather()
	o := tree.Options{}
	want := tree.BuildHunt(w, o)
	got := Build(w, o)
	if diff := tree.Diff(want, got); diff != "" {
		t.Fatalf("weather tree differs: %s", diff)
	}
}

func TestSliqGrowsToPurity(t *testing.T) {
	d, err := quest.Generate(quest.Config{Function: 2, Seed: 44}, 3000)
	if err != nil {
		t.Fatal(err)
	}
	tr := Build(d, tree.Options{Binary: true})
	if acc := tr.Accuracy(d); acc != 1.0 {
		t.Fatalf("unlimited-depth SLIQ training accuracy %v", acc)
	}
}

func TestSliqEmptyAndPure(t *testing.T) {
	s := quest.Schema()
	empty := dataset.New(s, 0)
	if tr := Build(empty, tree.Options{}); !tr.Root.IsLeaf() {
		t.Fatal("empty data must give a leaf")
	}
	d, _ := quest.Generate(quest.Config{Function: 1, Seed: 1}, 50)
	for i := range d.Class {
		d.Class[i] = 0
	}
	if tr := Build(d, tree.Options{}); !tr.Root.IsLeaf() || tr.Root.Class != 0 {
		t.Fatal("pure data must give a single leaf")
	}
}

func TestSliqMaxDepth(t *testing.T) {
	d, _ := quest.Generate(quest.Config{Function: 2, Seed: 2}, 2000)
	tr := Build(d, tree.Options{Binary: true, MaxDepth: 3})
	if st := tr.Stats(); st.MaxDepth > 3 {
		t.Fatalf("depth %d exceeds limit", st.MaxDepth)
	}
}
