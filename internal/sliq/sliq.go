// Package sliq implements the serial SLIQ classifier of Mehta, Agrawal &
// Rissanen (EDBT 1996) — the algorithm whose synthetic dataset and
// pre-sorting technique the paper's experiments build on (§2.1, §5).
//
// SLIQ differs from both C4.5 and SPRINT in its data structures: each
// continuous attribute is pre-sorted once into a global attribute list of
// (value, record id) entries that is NEVER re-partitioned; a memory-
// resident *class list* maps every record id to its current leaf. The
// tree grows breadth-first, and one scan of each attribute list per level
// evaluates the candidate splits of EVERY leaf simultaneously — each
// entry looks up its leaf through the class list and advances that leaf's
// running class counts. After the best splits are chosen, one more pass
// updates the class list's leaf pointers in place.
//
// Given the same options it grows exactly the tree of tree.BuildHunt and
// sprint.Build (asserted by the tests): three different data-structure
// strategies, one decision procedure.
package sliq

import (
	"math"
	"sort"

	"partree/internal/criteria"
	"partree/internal/dataset"
	"partree/internal/kernel"
	"partree/internal/tree"
)

// listEntry is one attribute-list element: the record's value and its id.
// The class is looked up through the class list, not stored per attribute
// — SLIQ's memory argument.
type listEntry struct {
	value float64
	rid   int32 // index into the class list (rids are densified on entry)
}

// classEntry is one class-list element.
type classEntry struct {
	class int32
	leaf  int32 // index into the current leaves slice, -1 when settled
}

// leafState tracks one growing leaf during a level.
type leafState struct {
	node *tree.Node

	// Best running candidate of this level.
	bestGain   float64
	bestAttr   int
	bestKind   tree.SplitKind
	bestThresh float64
	bestMask   uint64

	parentImp float64
	frozen    bool // no further splitting (pure / too small / too deep)

	// Continuous-scan state, reset per attribute. The shared kernel
	// scanner holds the running below-counts and evaluates each
	// distinct-value boundary exactly as the per-node sorted scan does.
	scan kernel.ContScanner

	// Sibling-subtraction state (tree.Options.Reuse.Subtraction). A leaf
	// that splits retains its per-attribute categorical histograms for one
	// level; at the next level its largest child derives each categorical
	// histogram exactly as parent − Σ(tabulated siblings), and that child's
	// entries are skipped by the categorical list passes. Continuous
	// attributes stream through the scanner and have no block to subtract,
	// so they are always scanned in full.
	idx      int32            // position in the current leaves slice
	catHists []*criteria.Hist // retained per-attribute categorical hists
	fam      *sliqFam         // family this leaf was born into
	derive   bool             // derive this level's categorical hists

	// Voted split selection (tree.Options.Vote): per-attribute gains of
	// this level's scans, recorded so the leaf can nominate its top-k and
	// filter the chosen split through the election. Nil when voting is off.
	attrGains []float64
}

// sliqFam links a split leaf (whose categorical histograms are retained)
// to its globally non-empty children of the next level.
type sliqFam struct {
	parent  *leafState
	members []*leafState
}

// Build grows a decision tree with the SLIQ algorithm.
func Build(d *dataset.Dataset, o tree.Options) *tree.Tree {
	// The class list, and the one-time pre-sorting step.
	classList := make([]classEntry, d.Len())
	for i := range classList {
		classList[i] = classEntry{class: d.Class[i], leaf: 0}
	}
	lists := make([][]listEntry, d.Schema.NumAttrs())
	for a, attr := range d.Schema.Attrs {
		list := make([]listEntry, d.Len())
		if attr.Kind == dataset.Continuous {
			col := d.Cont[a]
			for i := range list {
				list[i] = listEntry{value: col[i], rid: int32(i)}
			}
		} else {
			col := d.Cat[a]
			for i := range list {
				list[i] = listEntry{value: float64(col[i]), rid: int32(i)}
			}
		}
		lists[a] = list
	}
	return grow(d.Schema, classList, lists, o)
}

// BuildTable grows a SLIQ tree from a chunked table. The only whole-
// column access SLIQ ever makes is the one-time pre-sorting pass, and it
// streams here chunk by chunk; everything after runs on SLIQ's own
// resident structures (class list + attribute lists), exactly as Build.
// The tree is bit-identical to Build on the same rows: the pre-sort sees
// entries in the same row order, and the (value, rid) comparator is a
// total order.
func BuildTable(t dataset.Table, o tree.Options) (*tree.Tree, error) {
	s := t.Schema()
	classList := make([]classEntry, t.Len())
	lists := make([][]listEntry, s.NumAttrs())
	for a := range s.Attrs {
		lists[a] = make([]listEntry, t.Len())
	}
	var ch dataset.Chunk
	for k := 0; k < t.NumChunks(); k++ {
		if _, err := t.ReadChunk(k, &ch); err != nil {
			return nil, err
		}
		for i := 0; i < ch.Rows(); i++ {
			classList[ch.Lo+i] = classEntry{class: ch.Class[i], leaf: 0}
		}
		for a := range s.Attrs {
			list := lists[a][ch.Lo:ch.Hi]
			if ch.Cont[a] != nil {
				for i, v := range ch.Cont[a] {
					list[i] = listEntry{value: v, rid: int32(ch.Lo + i)}
				}
			} else {
				for i, code := range ch.Cat[a] {
					list[i] = listEntry{value: float64(code), rid: int32(ch.Lo + i)}
				}
			}
		}
	}
	return grow(s, classList, lists, o), nil
}

// grow is the SLIQ level loop shared by the in-RAM and chunk-fed entry
// points: continuous lists are sorted by (value, rid), then each level
// runs one scan of every list against the class list.
func grow(s *dataset.Schema, classList []classEntry, lists [][]listEntry, o tree.Options) *tree.Tree {
	o = o.WithDefaults()
	nClasses := s.NumClasses()
	root := &tree.Node{Kind: tree.Leaf, Dist: make([]int64, nClasses)}
	ids := tree.NewIDGen(1)
	for a, attr := range s.Attrs {
		if attr.Kind != dataset.Continuous {
			continue
		}
		list := lists[a]
		sort.Slice(list, func(x, y int) bool {
			if list[x].value != list[y].value {
				return list[x].value < list[y].value
			}
			return list[x].rid < list[y].rid
		})
	}

	leaves := []*leafState{{node: root}}
	var prev []*leafState // previous level: its retained hists feed this level's derivations
	for len(leaves) > 0 {
		prepareLevel(leaves, classList, nClasses, o)
		if !anyActive(leaves) {
			break
		}
		scanLevel(leaves, lists, classList, s, o)
		voteFilter(leaves, s, o)
		releaseRetained(prev) // grandparent histograms are dead now
		prev = leaves
		leaves = applySplits(leaves, lists, classList, s, o, ids)
	}
	releaseRetained(prev)
	return &tree.Tree{Schema: s, Root: root}
}

// prepareLevel computes every leaf's distribution from the class list and
// freezes leaves that must not split.
func prepareLevel(leaves []*leafState, classList []classEntry, nClasses int, o tree.Options) {
	for _, ls := range leaves {
		ls.node.Dist = make([]int64, nClasses)
		ls.bestGain = o.MinGain
		ls.bestAttr = -1
	}
	for _, ce := range classList {
		if ce.leaf >= 0 {
			leaves[ce.leaf].node.Dist[ce.class]++
		}
	}
	for li, ls := range leaves {
		n := ls.node
		n.N = 0
		for _, v := range n.Dist {
			n.N += v
		}
		if n.N > 0 {
			n.Class = tree.MajorityClass(n.Dist)
		}
		ls.parentImp = o.Criterion.Impurity(n.Dist, n.N)
		ls.frozen = n.N < int64(o.MinSplit) ||
			(o.MaxDepth > 0 && n.Depth >= o.MaxDepth) ||
			ls.parentImp == 0
		ls.idx = int32(li)
		ls.derive = false
	}
	if !o.Reuse.Subtraction {
		return
	}
	// Plan the level's derivations: within each family whose members are
	// all active (a frozen sibling builds no histograms, leaving nothing to
	// subtract), the largest member (ties: first) derives its categorical
	// histograms from the retained parent instead of being tabulated. A
	// single-member family derives entirely from its parent — the missing
	// siblings were globally empty and contributed nothing.
	seen := make(map[*sliqFam]bool)
	for _, ls := range leaves {
		f := ls.fam
		if f == nil || seen[f] {
			continue
		}
		seen[f] = true
		if f.parent.catHists == nil {
			continue
		}
		active := true
		for _, m := range f.members {
			if m.frozen {
				active = false
				break
			}
		}
		if !active {
			continue
		}
		der := 0
		for i := 1; i < len(f.members); i++ {
			if f.members[i].node.N > f.members[der].node.N {
				der = i
			}
		}
		f.members[der].derive = true
	}
}

// releaseRetained recycles the histograms a finished level retained.
func releaseRetained(leaves []*leafState) {
	for _, ls := range leaves {
		for a, h := range ls.catHists {
			if h != nil {
				criteria.PutHist(h)
				ls.catHists[a] = nil
			}
		}
	}
}

func anyActive(leaves []*leafState) bool {
	for _, ls := range leaves {
		if !ls.frozen {
			return true
		}
	}
	return false
}

// scanLevel makes one pass over each attribute list, evaluating candidate
// splits for all active leaves at once.
func scanLevel(leaves []*leafState, lists [][]listEntry, classList []classEntry, s *dataset.Schema, o tree.Options) {
	nClasses := s.NumClasses()
	if o.Reuse.Subtraction {
		for _, ls := range leaves {
			if !ls.frozen && ls.catHists == nil {
				ls.catHists = make([]*criteria.Hist, len(s.Attrs))
			}
		}
	}
	if o.Vote.Active(len(s.Attrs)) {
		for _, ls := range leaves {
			if ls.frozen {
				continue
			}
			if ls.attrGains == nil {
				ls.attrGains = make([]float64, len(s.Attrs))
			}
			for a := range ls.attrGains {
				ls.attrGains[a] = math.Inf(-1)
			}
		}
	}
	for a, attr := range s.Attrs {
		if attr.Kind == dataset.Continuous {
			scanContinuousAttr(leaves, lists[a], classList, a, o)
		} else {
			scanCategoricalAttr(leaves, lists[a], classList, a, attr.Cardinality(), nClasses, o)
		}
	}
}

// scanContinuousAttr walks one globally sorted attribute list; each entry
// feeds its own leaf's kernel scanner, which evaluates the boundary
// candidate just before the leaf's value changes — identical thresholds
// and scores to the per-node sorted scan of C4.5/SPRINT.
func scanContinuousAttr(leaves []*leafState, list []listEntry, classList []classEntry, a int, o tree.Options) {
	for _, ls := range leaves {
		if !ls.frozen {
			ls.scan.Reset(ls.node.Dist, ls.node.N, o.Criterion)
		}
	}
	for _, e := range list {
		ce := classList[e.rid]
		if ce.leaf < 0 {
			continue
		}
		ls := leaves[ce.leaf]
		if ls.frozen {
			continue
		}
		ls.scan.Add(e.value, ce.class)
	}
	for _, ls := range leaves {
		if ls.frozen {
			continue
		}
		thresh, score, ok := ls.scan.Best()
		if !ok {
			continue
		}
		gain := ls.parentImp - score
		if ls.attrGains != nil {
			ls.attrGains[a] = gain
		}
		if gain > ls.bestGain {
			ls.bestGain = gain
			ls.bestAttr = a
			ls.bestKind = tree.ContBinary
			ls.bestThresh = thresh
			ls.bestMask = 0
		}
	}
}

// scanCategoricalAttr builds per-leaf histograms in one pass, then scores
// the subset or multiway split per leaf.
func scanCategoricalAttr(leaves []*leafState, list []listEntry, classList []classEntry, a, m, nClasses int, o tree.Options) {
	hists := make([]*criteria.Hist, len(leaves))
	for li, ls := range leaves {
		if !ls.frozen && !ls.derive {
			hists[li] = criteria.GetHist(m, nClasses)
		}
	}
	for _, e := range list {
		ce := classList[e.rid]
		if ce.leaf < 0 || hists[ce.leaf] == nil {
			continue
		}
		hists[ce.leaf].Add(int32(e.value), ce.class)
	}
	// Sibling subtraction: the withheld member of each family (skipped by
	// the list pass above) reconstructs its histogram exactly as the
	// retained parent histogram minus its tabulated siblings'.
	for li, ls := range leaves {
		if !ls.derive {
			continue
		}
		h := criteria.GetHist(m, nClasses)
		copy(h.Counts, ls.fam.parent.catHists[a].Counts)
		for _, sib := range ls.fam.members {
			if sib == ls {
				continue
			}
			for i, v := range hists[sib.idx].Counts {
				h.Counts[i] -= v
			}
		}
		hists[li] = h
	}
	kind := tree.CatMultiway
	if o.Binary {
		kind = tree.CatBinary
	}
	for li, ls := range leaves {
		h := hists[li]
		if h == nil {
			continue
		}
		mask, score, valid := criteria.ScoreHist(h, o.Criterion, o.Binary)
		if ls.catHists != nil {
			ls.catHists[a] = h // retained for next level's derivations
		} else {
			criteria.PutHist(h)
		}
		if !valid {
			continue
		}
		gain := ls.parentImp - score
		if ls.attrGains != nil {
			ls.attrGains[a] = gain
		}
		if gain > ls.bestGain {
			ls.bestGain = gain
			ls.bestAttr = a
			ls.bestKind = kind
			ls.bestThresh = 0
			ls.bestMask = mask
		}
	}
}

// voteFilter applies voted split selection to the level's running bests.
// SLIQ is serial, so there is exactly one voter: its top-k nominations
// are elected verbatim, and because the running best attribute always
// carries the maximum recorded gain it is always among its own top-k —
// the filter provably never changes the tree. The degenerate path exists
// so the nomination/election machinery is exercised and asserted by the
// same cross-builder identity checks as the parallel formulations, and
// it marks the exactness boundary: voting only approximates when P > 1
// voters disagree about the local ordering of attributes.
func voteFilter(leaves []*leafState, s *dataset.Schema, o tree.Options) {
	nA := s.NumAttrs()
	if !o.Vote.Active(nA) {
		return
	}
	elect := o.Vote.Candidates()
	ballot := kernel.GetInt32(o.Vote.K)
	cands := kernel.GetInt32(elect)
	for _, ls := range leaves {
		if ls.frozen || ls.bestAttr < 0 || ls.attrGains == nil {
			continue
		}
		kernel.VoteTopK(ls.attrGains, o.Vote.K, o.MinGain, ballot)
		n := kernel.ElectCandidates(ballot, nA, elect, cands)
		elected := false
		for i := 0; i < n; i++ {
			if int(cands[i]) == ls.bestAttr {
				elected = true
				break
			}
		}
		if !elected {
			// Unreachable with a single voter (the argmax is always
			// nominated); kept as the honest restriction semantics.
			ls.bestAttr = -1
		}
	}
	kernel.PutInt32(cands)
	kernel.PutInt32(ballot)
}

// applySplits attaches the chosen tests, updates the class list's leaf
// pointers in one pass per attribute, and returns the next level's leaf
// states.
func applySplits(leaves []*leafState, lists [][]listEntry, classList []classEntry, s *dataset.Schema, o tree.Options, ids *tree.IDGen) []*leafState {
	nClasses := s.NumClasses()

	// Attach splits; record the next-level slot of each child.
	type pending struct {
		childBase int32 // index of first child in the next leaves slice
	}
	pend := make([]pending, len(leaves))
	var next []*leafState
	for li, ls := range leaves {
		n := ls.node
		if ls.frozen || ls.bestAttr < 0 {
			n.Kind = tree.Leaf
			n.Children = nil
			pend[li] = pending{childBase: -1}
			continue
		}
		n.Kind = ls.bestKind
		n.Attr = ls.bestAttr
		n.Thresh = ls.bestThresh
		n.Mask = ls.bestMask
		k := 2
		if ls.bestKind == tree.CatMultiway {
			k = s.Attrs[ls.bestAttr].Cardinality()
		}
		n.Children = make([]*tree.Node, k)
		pend[li] = pending{childBase: int32(len(next))}
		for i := range n.Children {
			n.Children[i] = &tree.Node{
				ID:    ids.Next(),
				Kind:  tree.Leaf,
				Class: n.Class,
				Depth: n.Depth + 1,
				Dist:  make([]int64, nClasses),
			}
			next = append(next, &leafState{node: n.Children[i]})
		}
	}

	// Update the class list: for each attribute, route the entries whose
	// leaf split on that attribute. Settled records point at -1.
	newLeaf := make([]int32, len(classList))
	for i := range newLeaf {
		newLeaf[i] = -1
	}
	for a := range s.Attrs {
		for _, e := range lists[a] {
			ce := classList[e.rid]
			if ce.leaf < 0 {
				continue
			}
			ls := leaves[ce.leaf]
			if pend[ce.leaf].childBase < 0 || ls.node.Attr != a || ls.node.IsLeaf() {
				continue
			}
			newLeaf[e.rid] = pend[ce.leaf].childBase + int32(routeValue(ls.node, e.value))
		}
	}
	for i := range classList {
		classList[i].leaf = newLeaf[i]
	}

	// Drop children that received no records (they stay Case 3 leaves).
	counts := make([]int64, len(next))
	for _, ce := range classList {
		if ce.leaf >= 0 {
			counts[ce.leaf]++
		}
	}
	kept := make([]*leafState, 0, len(next))
	remap := make([]int32, len(next))
	for i, ls := range next {
		if counts[i] > 0 {
			remap[i] = int32(len(kept))
			kept = append(kept, ls)
		} else {
			remap[i] = -1
		}
	}
	for i := range classList {
		if classList[i].leaf >= 0 {
			classList[i].leaf = remap[classList[i].leaf]
		}
	}

	// Record families for next level's sibling subtraction: each split
	// leaf's globally non-empty children, after the empty-drop remap, in
	// leaf order. The parent's retained histograms equal the sum of exactly
	// these members' histograms (dropped children hold no records).
	if o.Reuse.Subtraction {
		for li, ls := range leaves {
			base := pend[li].childBase
			if base < 0 {
				continue
			}
			var members []*leafState
			for i := range ls.node.Children {
				if r := remap[base+int32(i)]; r >= 0 {
					members = append(members, kept[r])
				}
			}
			if len(members) == 0 {
				continue
			}
			f := &sliqFam{parent: ls, members: members}
			for _, m := range members {
				m.fam = f
			}
		}
	}
	return kept
}

// routeValue applies a node's test to a raw attribute-list value.
func routeValue(n *tree.Node, value float64) int {
	switch n.Kind {
	case tree.ContBinary:
		if value <= n.Thresh {
			return 0
		}
		return 1
	case tree.CatBinary:
		if n.Mask&(1<<uint(int32(value))) != 0 {
			return 0
		}
		return 1
	case tree.CatMultiway:
		return int(int32(value))
	default:
		panic("sliq: routing through a leaf")
	}
}
