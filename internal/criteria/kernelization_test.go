package criteria

import (
	"math/rand/v2"
	"sort"
	"testing"
)

// TestSortByValueDuplicates pins the deterministic order of the rewritten
// sortByValue on duplicate-heavy input: ascending value, ties by ascending
// original index (the order ContinuousDistribution's enumeration depends
// on).
func TestSortByValueDuplicates(t *testing.T) {
	values := []float64{3, 1, 3, 1, 2, 3, 1, 2, 2, 3}
	idx := make([]int, len(values))
	for i := range idx {
		idx[i] = i
	}
	sortByValue(idx, values)
	want := []int{1, 3, 6, 4, 7, 8, 0, 2, 5, 9}
	for i := range idx {
		if idx[i] != want[i] {
			t.Fatalf("sortByValue order = %v, want %v", idx, want)
		}
	}

	// Property check on random duplicate-heavy data.
	rng := rand.New(rand.NewPCG(7, 7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.IntN(200)
		v := make([]float64, n)
		for i := range v {
			v[i] = float64(rng.IntN(5)) // few distinct values: many ties
		}
		ix := make([]int, n)
		for i := range ix {
			ix[i] = i
		}
		sortByValue(ix, v)
		for i := 1; i < n; i++ {
			a, b := ix[i-1], ix[i]
			if v[a] > v[b] || (v[a] == v[b] && a >= b) {
				t.Fatalf("trial %d: order violated at %d: idx %d (v=%v) before idx %d (v=%v)",
					trial, i, a, v[a], b, v[b])
			}
		}
	}
}

// TestSortPairsDuplicates asserts SortPairs produces ascending values with
// the class multiset preserved per value run, and that the downstream
// split search is invariant to the input permutation — the property that
// justifies the unstable lockstep sort.
func TestSortPairsDuplicates(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 13))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.IntN(300)
		base := make([]float64, n)
		cls := make([]int32, n)
		for i := range base {
			base[i] = float64(rng.IntN(6))
			cls[i] = int32(rng.IntN(3))
		}

		v1 := append([]float64(nil), base...)
		c1 := append([]int32(nil), cls...)
		SortPairs(v1, c1)
		if !sort.Float64sAreSorted(v1) {
			t.Fatalf("trial %d: values not sorted", trial)
		}
		// Class counts per distinct value preserved.
		type key struct {
			v float64
			c int32
		}
		count := map[key]int{}
		for i := range base {
			count[key{base[i], cls[i]}]++
		}
		for i := range v1 {
			count[key{v1[i], c1[i]}]--
		}
		for k, n := range count {
			if n != 0 {
				t.Fatalf("trial %d: pair %v count off by %d after sort", trial, k, n)
			}
		}

		// A shuffled copy must reach the identical split decision.
		perm := rng.Perm(n)
		v2 := make([]float64, n)
		c2 := make([]int32, n)
		for i, p := range perm {
			v2[i] = base[p]
			c2[i] = cls[p]
		}
		SortPairs(v2, c2)
		s1, ok1 := BestContinuousSplit(v1, c1, 3, Entropy)
		s2, ok2 := BestContinuousSplit(v2, c2, 3, Entropy)
		if ok1 != ok2 || s1 != s2 {
			t.Fatalf("trial %d: split depends on input order: (%v,%v) vs (%v,%v)", trial, s1, ok1, s2, ok2)
		}
	}
}

// parityHist builds an M×2 histogram whose optimal binary partition is
// exactly {even values} vs {odd values}: even values carry only class 0,
// odd values only class 1, with per-value counts varied so the search is
// not symmetric.
func parityHist(m int) *Hist {
	h := NewHist(m, 2)
	for v := 0; v < m; v++ {
		h.Counts[v*2+v%2] = int64(3 + v)
	}
	return h
}

func evenMask(m int) uint64 {
	var mask uint64
	for v := 0; v < m; v += 2 {
		mask |= 1 << uint(v)
	}
	return mask
}

// TestBinarySubsetSplitCrossover exercises the exhaustive→greedy crossover
// at exhaustiveSubsetLimit: one below (M=11), exactly at (M=12), and one
// above (M=13). On the parity family the greedy hill-climb provably
// reaches the global optimum, so both paths must agree — and
// BinarySubsetSplit must return each M's dispatched path verbatim.
func TestBinarySubsetSplitCrossover(t *testing.T) {
	for _, m := range []int{exhaustiveSubsetLimit - 1, exhaustiveSubsetLimit, exhaustiveSubsetLimit + 1} {
		for _, crit := range []Criterion{Entropy, Gini} {
			h := parityHist(m)
			total := h.Total()

			exMask, exScore, exOK := exhaustiveSubset(h, crit, total)
			grMask, grScore, grOK := greedySubset(h, crit, total)
			if !exOK || !grOK {
				t.Fatalf("M=%d crit=%v: search failed (exhaustive ok=%v, greedy ok=%v)", m, crit, exOK, grOK)
			}
			if exMask != grMask || exScore != grScore {
				t.Fatalf("M=%d crit=%v: paths disagree: exhaustive (%b, %v) vs greedy (%b, %v)",
					m, crit, exMask, exScore, grMask, grScore)
			}
			if exMask != evenMask(m) {
				t.Fatalf("M=%d crit=%v: mask %b is not the pure parity partition %b", m, crit, exMask, evenMask(m))
			}
			if exScore != 0 {
				t.Fatalf("M=%d crit=%v: pure partition scored %v, want 0", m, crit, exScore)
			}

			mask, score, ok := BinarySubsetSplit(h, crit)
			if !ok {
				t.Fatalf("M=%d crit=%v: BinarySubsetSplit found no split", m, crit)
			}
			// The dispatched result must be bit-identical to the path the
			// crossover rule selects for this cardinality.
			wantMask, wantScore := exMask, exScore
			if m > exhaustiveSubsetLimit {
				wantMask, wantScore = grMask, grScore
			}
			if mask != wantMask || score != wantScore {
				t.Fatalf("M=%d crit=%v: BinarySubsetSplit (%b, %v) != dispatched path (%b, %v)",
					m, crit, mask, score, wantMask, wantScore)
			}
		}
	}
}

// TestBinarySubsetSplitCrossoverRandom cross-checks the two paths on
// random small-alphabet histograms around the boundary where the greedy
// result happens to match the optimum; when it does not, greedy must never
// beat exhaustive (it searches a subset of the space).
func TestBinarySubsetSplitCrossoverRandom(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 5))
	for trial := 0; trial < 40; trial++ {
		m := exhaustiveSubsetLimit - 1 + rng.IntN(3) // 11, 12, 13
		h := NewHist(m, 2)
		for v := 0; v < m; v++ {
			h.Counts[v*2] = int64(rng.IntN(20))
			h.Counts[v*2+1] = int64(rng.IntN(20))
		}
		total := h.Total()
		if total == 0 {
			continue
		}
		exMask, exScore, exOK := exhaustiveSubset(h, Gini, total)
		_, grScore, grOK := greedySubset(h, Gini, total)
		if !exOK || !grOK {
			continue
		}
		if grScore < exScore {
			t.Fatalf("trial %d M=%d: greedy (%v) beat exhaustive (%v, mask %b)", trial, m, grScore, exScore, exMask)
		}
	}
}
