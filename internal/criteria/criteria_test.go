package criteria

import (
	"math"
	"math/rand/v2"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"partree/internal/dataset"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestEntropyKnownValues(t *testing.T) {
	// The weather set's root distribution (9, 5): the textbook 0.940286 bits.
	if got := Entropy.Impurity([]int64{9, 5}, 14); !almost(got, 0.9402859586706311) {
		t.Errorf("entropy(9,5) = %v", got)
	}
	if got := Entropy.Impurity([]int64{7, 7}, 14); !almost(got, 1) {
		t.Errorf("entropy(7,7) = %v", got)
	}
	if got := Entropy.Impurity([]int64{14, 0}, 14); got != 0 {
		t.Errorf("entropy(14,0) = %v", got)
	}
	if got := Gini.Impurity([]int64{7, 7}, 14); !almost(got, 0.5) {
		t.Errorf("gini(7,7) = %v", got)
	}
	if got := Gini.Impurity([]int64{9, 5}, 14); !almost(got, 1-(81.0+25)/196) {
		t.Errorf("gini(9,5) = %v", got)
	}
}

func TestImpurityBoundsProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 || len(raw) > 16 {
			return true
		}
		counts := make([]int64, len(raw))
		var total int64
		for i, v := range raw {
			counts[i] = int64(v % 1000)
			total += counts[i]
		}
		e := Entropy.Impurity(counts, total)
		g := Gini.Impurity(counts, total)
		if e < 0 || g < 0 || g > 1 {
			return false
		}
		if e > math.Log2(float64(len(counts)))+1e-9 {
			return false
		}
		// Pure distributions score zero under both criteria.
		nonzero := 0
		for _, c := range counts {
			if c > 0 {
				nonzero++
			}
		}
		if nonzero <= 1 && (e != 0 || g != 0) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestHistMergeEqualsUnion(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	values := make([]int32, 200)
	classes := make([]int32, 200)
	for i := range values {
		values[i] = int32(rng.IntN(5))
		classes[i] = int32(rng.IntN(3))
	}
	var idxA, idxB, idxAll []int32
	for i := 0; i < 200; i++ {
		if i%2 == 0 {
			idxA = append(idxA, int32(i))
		} else {
			idxB = append(idxB, int32(i))
		}
		idxAll = append(idxAll, int32(i))
	}
	ha := HistFor(values, classes, idxA, 5, 3)
	hb := HistFor(values, classes, idxB, 5, 3)
	hu := HistFor(values, classes, idxAll, 5, 3)
	ha.Merge(hb)
	if !reflect.DeepEqual(ha.Counts, hu.Counts) {
		t.Fatal("merged partial histograms differ from the union histogram")
	}
	if ha.Total() != 200 {
		t.Fatalf("total %d", ha.Total())
	}
}

func TestHistAccessors(t *testing.T) {
	h := NewHist(3, 2)
	h.Add(0, 0)
	h.Add(0, 1)
	h.Add(2, 1)
	if h.ValueTotal(0) != 2 || h.ValueTotal(1) != 0 || h.ValueTotal(2) != 1 {
		t.Fatal("ValueTotal wrong")
	}
	if got := h.ClassTotals(); got[0] != 1 || got[1] != 2 {
		t.Fatalf("ClassTotals %v", got)
	}
}

// TestTable2OutlookHistogram reproduces Table 2 exactly.
func TestTable2OutlookHistogram(t *testing.T) {
	w := dataset.Weather()
	h := HistFor(w.Cat[0], w.Class, w.AllIndex(), 3, 2)
	want := [][]int64{{2, 3}, {4, 0}, {3, 2}} // sunny, overcast, rain × (Play, Don't)
	for v, row := range want {
		if !reflect.DeepEqual(h.Row(v), row) {
			t.Fatalf("Table 2 row %d: got %v, want %v", v, h.Row(v), row)
		}
	}
}

// TestTable3HumidityDistribution reproduces Table 3 exactly.
func TestTable3HumidityDistribution(t *testing.T) {
	w := dataset.Weather()
	stats := ContinuousDistribution(w.Cont[2], w.Class, 2)
	sort.Slice(stats, func(a, b int) bool { return stats[a].Value < stats[b].Value })
	type row struct {
		v        float64
		leP, leD int64
		gtP, gtD int64
	}
	want := []row{
		{65, 1, 0, 8, 5},
		{70, 3, 1, 6, 4},
		{75, 4, 1, 5, 4},
		{78, 5, 1, 4, 4},
		{80, 7, 2, 2, 3},
		{85, 7, 3, 2, 2},
		{90, 8, 4, 1, 1},
		{95, 8, 5, 1, 0},
		{96, 9, 5, 0, 0},
	}
	if len(stats) != len(want) {
		t.Fatalf("%d distinct values, want %d", len(stats), len(want))
	}
	for i, wr := range want {
		st := stats[i]
		if st.Value != wr.v || st.LE[0] != wr.leP || st.LE[1] != wr.leD || st.GT[0] != wr.gtP || st.GT[1] != wr.gtD {
			t.Fatalf("Table 3 row %d: got %+v, want %+v", i, st, wr)
		}
	}
}

func TestMultiwayScoreAndGain(t *testing.T) {
	w := dataset.Weather()
	h := HistFor(w.Cat[0], w.Class, w.AllIndex(), 3, 2)
	// Quinlan: gain(Outlook) = 0.940 - 0.694 = 0.246 bits.
	score := MultiwayScore(h, Entropy)
	if !almost(score, 0.6935361388961918) {
		t.Errorf("expected Outlook score 0.694, got %v", score)
	}
	si := SplitInfo(h)
	if !almost(si, 1.5774062828523454) {
		t.Errorf("split info = %v", si)
	}
}

func TestBinarySubsetSplitSmall(t *testing.T) {
	// Two values, perfectly separating: best split must put value 0 left
	// and achieve zero impurity.
	h := NewHist(2, 2)
	for i := 0; i < 5; i++ {
		h.Add(0, 0)
		h.Add(1, 1)
	}
	mask, score, ok := BinarySubsetSplit(h, Entropy)
	if !ok || mask != 1 || !almost(score, 0) {
		t.Fatalf("mask=%b score=%v ok=%v", mask, score, ok)
	}
}

func TestBinarySubsetSplitDegenerate(t *testing.T) {
	h := NewHist(4, 2)
	for i := 0; i < 7; i++ {
		h.Add(2, int32(i%2)) // all cases share one value
	}
	if _, _, ok := BinarySubsetSplit(h, Gini); ok {
		t.Fatal("split found on a single-valued attribute")
	}
	empty := NewHist(3, 2)
	if _, _, ok := BinarySubsetSplit(empty, Gini); ok {
		t.Fatal("split found on empty histogram")
	}
}

// TestGreedyMatchesExhaustive cross-checks the greedy subset search used
// for high-cardinality attributes against exhaustive enumeration on random
// low-cardinality histograms where both paths are available.
func TestGreedyMatchesExhaustive(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	for trial := 0; trial < 200; trial++ {
		m := 2 + rng.IntN(6)
		h := NewHist(m, 2)
		for i := 0; i < 40; i++ {
			h.Add(int32(rng.IntN(m)), int32(rng.IntN(2)))
		}
		exMask, exScore, exOK := exhaustiveSubset(h, Gini, h.Total())
		grMask, grScore, grOK := greedySubset(h, Gini, h.Total())
		if exOK != grOK {
			t.Fatalf("trial %d: ok mismatch", trial)
		}
		if !exOK {
			continue
		}
		// Greedy may be suboptimal but must be valid and close; the
		// exhaustive score is a lower bound.
		if grScore < exScore-1e-12 {
			t.Fatalf("trial %d: greedy %v better than exhaustive %v (masks %b/%b)", trial, grScore, exScore, grMask, exMask)
		}
		if grScore > exScore+0.1 {
			t.Fatalf("trial %d: greedy %v far from exhaustive %v", trial, grScore, exScore)
		}
	}
}

func TestBinarySubsetMaskBothSidesNonEmpty(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	for trial := 0; trial < 100; trial++ {
		m := 2 + rng.IntN(18) // crosses the exhaustive/greedy boundary
		h := NewHist(m, 3)
		for i := 0; i < 60; i++ {
			h.Add(int32(rng.IntN(m)), int32(rng.IntN(3)))
		}
		mask, _, ok := BinarySubsetSplit(h, Entropy)
		if !ok {
			continue
		}
		var left, right int64
		for v := 0; v < m; v++ {
			if mask&(1<<uint(v)) != 0 {
				left += h.ValueTotal(v)
			} else {
				right += h.ValueTotal(v)
			}
		}
		if left == 0 || right == 0 {
			t.Fatalf("trial %d: degenerate mask %b (left %d right %d)", trial, mask, left, right)
		}
		if mask&1 == 0 && m <= exhaustiveSubsetLimit {
			t.Fatalf("trial %d: exhaustive search did not anchor value 0 left (mask %b)", trial, mask)
		}
	}
}

// bruteForceBestSplit is an O(n²) reference for BestContinuousSplit.
func bruteForceBestSplit(values []float64, classes []int32, c int, crit Criterion) (float64, float64, bool) {
	n := len(values)
	bestScore := math.Inf(1)
	bestThresh := 0.0
	found := false
	for _, thr := range values {
		var ln, rn int64
		left := make([]int64, c)
		right := make([]int64, c)
		for i := 0; i < n; i++ {
			if values[i] <= thr {
				left[classes[i]]++
				ln++
			} else {
				right[classes[i]]++
				rn++
			}
		}
		if ln == 0 || rn == 0 {
			continue
		}
		s := float64(ln)/float64(n)*crit.Impurity(left, ln) + float64(rn)/float64(n)*crit.Impurity(right, rn)
		if s < bestScore {
			bestScore, bestThresh, found = s, thr, true
		}
	}
	return bestThresh, bestScore, found
}

func TestBestContinuousSplitMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.IntN(40)
		values := make([]float64, n)
		classes := make([]int32, n)
		for i := range values {
			values[i] = float64(rng.IntN(10)) // duplicates likely
			classes[i] = int32(rng.IntN(3))
		}
		sorted := append([]float64(nil), values...)
		perm := make([]int, n)
		for i := range perm {
			perm[i] = i
		}
		sort.Slice(perm, func(a, b int) bool { return values[perm[a]] < values[perm[b]] })
		sortedClasses := make([]int32, n)
		for j, i := range perm {
			sorted[j] = values[i]
			sortedClasses[j] = classes[i]
		}
		got, gotOK := BestContinuousSplit(sorted, sortedClasses, 3, Gini)
		wantThresh, wantScore, wantOK := bruteForceBestSplit(values, classes, 3, Gini)
		if gotOK != wantOK {
			t.Fatalf("trial %d: ok %v vs %v", trial, gotOK, wantOK)
		}
		if !gotOK {
			continue
		}
		if !almost(got.Score, wantScore) {
			t.Fatalf("trial %d: score %v vs %v", trial, got.Score, wantScore)
		}
		if !almost(got.Score, wantScore) || (got.Thresh != wantThresh && !almost(got.Score, wantScore)) {
			t.Fatalf("trial %d: thresh %v vs %v", trial, got.Thresh, wantThresh)
		}
	}
}

func TestBinOfConvention(t *testing.T) {
	edges := []float64{10, 20, 30}
	cases := []struct {
		v    float64
		want int
	}{
		{5, 0}, {10, 0}, {10.0001, 1}, {20, 1}, {25, 2}, {30, 2}, {31, 3}, {1000, 3},
	}
	for _, tc := range cases {
		if got := BinOf(edges, tc.v); got != tc.want {
			t.Errorf("BinOf(%v) = %d, want %d", tc.v, got, tc.want)
		}
	}
	if BinOf(nil, 5) != 0 {
		t.Error("BinOf with no edges must return bin 0")
	}
}

func TestBinOfMonotoneProperty(t *testing.T) {
	f := func(raw []float64, v1, v2 float64) bool {
		if len(raw) == 0 {
			return true
		}
		edges := append([]float64(nil), raw...)
		sort.Float64s(edges)
		for i := range edges {
			if math.IsNaN(edges[i]) {
				return true
			}
		}
		if math.IsNaN(v1) || math.IsNaN(v2) {
			return true
		}
		b1, b2 := BinOf(edges, v1), BinOf(edges, v2)
		if v1 <= v2 && b1 > b2 {
			return false
		}
		return b1 >= 0 && b1 <= len(edges)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCriterionStrings(t *testing.T) {
	if Entropy.String() != "entropy" || Gini.String() != "gini" {
		t.Fatal("criterion names wrong")
	}
}
