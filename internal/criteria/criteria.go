// Package criteria implements the split-selection machinery of Hunt's
// method: class-distribution histograms (the objects exchanged by the
// synchronous formulation's global reduction), entropy and Gini impurity,
// and best-split searches for categorical attributes (multiway and binary
// subset tests) and continuous attributes (sorted one-scan threshold
// search, as in C4.5/SLIQ/SPRINT).
//
// Everything here is deterministic given the input counts: the parallel
// formulations rely on every processor computing the identical best split
// from the identical global histogram, with ties broken by attribute
// index, then value/threshold order.
package criteria

import (
	"fmt"
	"math"
	"slices"
	"sort"
	"sync"

	"partree/internal/kernel"
)

// Criterion selects the impurity measure used to score splits.
type Criterion int

const (
	// Entropy is the information-theoretic impurity used by C4.5.
	Entropy Criterion = iota
	// Gini is the Gini index used by CART/SLIQ/SPRINT.
	Gini
)

// String returns "entropy" or "gini".
func (c Criterion) String() string {
	switch c {
	case Entropy:
		return "entropy"
	case Gini:
		return "gini"
	default:
		return fmt.Sprintf("Criterion(%d)", int(c))
	}
}

// Impurity computes the criterion value of a class-count vector whose sum
// is total. A pure or empty distribution scores 0.
func (c Criterion) Impurity(counts []int64, total int64) float64 {
	if total <= 0 {
		return 0
	}
	switch c {
	case Entropy:
		return entropy(counts, total)
	case Gini:
		return gini(counts, total)
	default:
		panic("criteria: unknown criterion")
	}
}

func entropy(counts []int64, total int64) float64 {
	e := 0.0
	ft := float64(total)
	for _, n := range counts {
		if n > 0 {
			p := float64(n) / ft
			e -= p * math.Log2(p)
		}
	}
	return e
}

func gini(counts []int64, total int64) float64 {
	s := 0.0
	ft := float64(total)
	for _, n := range counts {
		p := float64(n) / ft
		s += p * p
	}
	return 1 - s
}

// Hist is the class-distribution table of one categorical attribute at one
// tree node: Counts[v*C + c] is the number of training cases with
// attribute value v and class c (Tables 2 and 3 of the paper are instances
// of this structure). Its flat int64 layout is exactly what the
// synchronous formulation concatenates and all-reduces.
type Hist struct {
	M      int // number of attribute values
	C      int // number of classes
	Counts []int64
}

// NewHist returns a zeroed M×C histogram.
func NewHist(m, c int) *Hist {
	return &Hist{M: m, C: c, Counts: make([]int64, m*c)}
}

// histPool recycles Hist headers; the count buffers come from the kernel
// pool, so a GetHist/PutHist cycle is allocation-free in steady state.
var histPool = sync.Pool{New: func() any { return new(Hist) }}

// GetHist returns a zeroed M×C histogram backed by the kernel buffer
// pool. Pair it with PutHist on every per-node scratch histogram — the
// hot builders churn one per (node, attribute) and pooling removes that
// allocation entirely (verified by the -benchmem suite).
func GetHist(m, c int) *Hist {
	h := histPool.Get().(*Hist)
	h.M, h.C = m, c
	h.Counts = kernel.GetInt64(m * c)
	return h
}

// PutHist recycles a histogram obtained from GetHist. The caller must not
// touch h, h.Counts, or any Row sub-slice afterwards.
func PutHist(h *Hist) {
	kernel.PutInt64(h.Counts)
	h.Counts = nil
	histPool.Put(h)
}

// Add counts one case with value v and class cl.
func (h *Hist) Add(v, cl int32) { h.Counts[int(v)*h.C+int(cl)]++ }

// Row returns the class-count vector of value v (a live sub-slice).
func (h *Hist) Row(v int) []int64 { return h.Counts[v*h.C : (v+1)*h.C] }

// Merge adds o's counts into h. The shapes must match.
func (h *Hist) Merge(o *Hist) {
	if h.M != o.M || h.C != o.C {
		panic(fmt.Sprintf("criteria: merging %dx%d hist into %dx%d", o.M, o.C, h.M, h.C))
	}
	for i, n := range o.Counts {
		h.Counts[i] += n
	}
}

// Total returns the number of cases counted.
func (h *Hist) Total() int64 {
	var t int64
	for _, n := range h.Counts {
		t += n
	}
	return t
}

// ValueTotal returns the number of cases with value v.
func (h *Hist) ValueTotal(v int) int64 {
	var t int64
	for _, n := range h.Row(v) {
		t += n
	}
	return t
}

// ClassTotals returns the class distribution summed over all values.
func (h *Hist) ClassTotals() []int64 {
	out := make([]int64, h.C)
	for v := 0; v < h.M; v++ {
		for c, n := range h.Row(v) {
			out[c] += n
		}
	}
	return out
}

// HistFor tabulates the histogram of categorical attribute values vs.
// classes over the rows idx of the columns (the per-processor "collect
// class distribution information of the local data" step). The returned
// histogram is owned by the caller and garbage collected; hot paths that
// can bound the lifetime should use GetHist + HistInto + PutHist instead.
func HistFor(values []int32, classes []int32, idx []int32, m, c int) *Hist {
	h := NewHist(m, c)
	HistInto(h, values, classes, idx)
	return h
}

// HistInto tabulates into an existing (zeroed or accumulating) histogram
// through the kernel tabulation path, which parallelizes across a bounded
// worker set on large row sets.
func HistInto(h *Hist, values []int32, classes []int32, idx []int32) {
	kernel.TabulateCat(h.Counts, values, classes, idx, h.C)
}

// MultiwayScore returns the expected impurity after a multiway split on
// the histogram's attribute: sum over values of (n_v/n)·impurity(value v).
// The gain of the split is impurity(parent) − MultiwayScore.
func MultiwayScore(h *Hist, crit Criterion) float64 {
	total := h.Total()
	if total == 0 {
		return 0
	}
	s := 0.0
	for v := 0; v < h.M; v++ {
		nv := h.ValueTotal(v)
		if nv > 0 {
			s += float64(nv) / float64(total) * crit.Impurity(h.Row(v), nv)
		}
	}
	return s
}

// ScoreHist scores the best categorical test on a histogram: the binary
// subset search when binary is set, otherwise the multiway split (valid
// only when at least two values are non-empty). It returns the left-side
// value mask (zero for multiway), the expected impurity, and ok=false when
// the histogram cannot separate the data. This is the single scoring entry
// point shared by every builder — Hunt, BFS/sync, SLIQ, SPRINT, ScalParC
// and the vertical formulation — so the decision procedure cannot drift
// between them.
func ScoreHist(h *Hist, crit Criterion, binary bool) (mask uint64, score float64, ok bool) {
	if binary {
		return BinarySubsetSplit(h, crit)
	}
	nonEmpty := 0
	for v := 0; v < h.M; v++ {
		if h.ValueTotal(v) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty < 2 {
		return 0, 0, false
	}
	return 0, MultiwayScore(h, crit), true
}

// SplitInfo returns the "split information" term of C4.5's gain ratio for
// a multiway split: the entropy of the value-count distribution.
func SplitInfo(h *Hist) float64 {
	total := h.Total()
	if total == 0 {
		return 0
	}
	counts := make([]int64, h.M)
	for v := 0; v < h.M; v++ {
		counts[v] = h.ValueTotal(v)
	}
	return entropy(counts, total)
}

// exhaustiveSubsetLimit bounds the cardinality for which the binary subset
// search enumerates all 2^(M-1) partitions; above it a deterministic greedy
// hill-climb is used (the same policy as SLIQ).
const exhaustiveSubsetLimit = 12

// BinarySubsetSplit finds the best binary partition of the attribute's
// values into {left, right} under the criterion. It returns the left-side
// value mask (bit v set ⇒ value v goes left), the expected impurity of the
// split, and ok=false when no split separates the data (all cases share
// one value) or the cardinality exceeds the 64 values a mask can
// represent — an attribute with more values can never carry a subset
// test, so every builder skips it rather than constructing a mask whose
// high values would silently misroute. Value 0 is always on the left,
// removing the mirror-image duplicates. Deterministic: exhaustive
// enumeration in increasing mask order for M ≤ 12, greedy
// best-improvement otherwise.
func BinarySubsetSplit(h *Hist, crit Criterion) (mask uint64, score float64, ok bool) {
	if h.M > 64 {
		return 0, 0, false
	}
	total := h.Total()
	if total == 0 {
		return 0, 0, false
	}
	present := 0
	for v := 0; v < h.M; v++ {
		if h.ValueTotal(v) > 0 {
			present++
		}
	}
	if present < 2 {
		return 0, 0, false
	}
	if h.M <= exhaustiveSubsetLimit {
		return exhaustiveSubset(h, crit, total)
	}
	return greedySubset(h, crit, total)
}

func subsetScore(h *Hist, crit Criterion, total int64, mask uint64) (float64, bool) {
	left := make([]int64, h.C)
	right := make([]int64, h.C)
	var ln, rn int64
	for v := 0; v < h.M; v++ {
		row := h.Row(v)
		if mask&(1<<uint(v)) != 0 {
			for c, n := range row {
				left[c] += n
			}
		} else {
			for c, n := range row {
				right[c] += n
			}
		}
	}
	for _, n := range left {
		ln += n
	}
	for _, n := range right {
		rn += n
	}
	if ln == 0 || rn == 0 {
		return 0, false
	}
	ft := float64(total)
	return float64(ln)/ft*crit.Impurity(left, ln) + float64(rn)/ft*crit.Impurity(right, rn), true
}

func exhaustiveSubset(h *Hist, crit Criterion, total int64) (uint64, float64, bool) {
	bestMask, bestScore, found := uint64(0), math.Inf(1), false
	// Fix value 0 on the left: enumerate the other M-1 bits.
	for rest := uint64(0); rest < 1<<uint(h.M-1); rest++ {
		mask := rest<<1 | 1
		s, valid := subsetScore(h, crit, total, mask)
		if valid && s < bestScore {
			bestMask, bestScore, found = mask, s, true
		}
	}
	return bestMask, bestScore, found
}

func greedySubset(h *Hist, crit Criterion, total int64) (uint64, float64, bool) {
	// Start from {value 0} on the left and move one value at a time while
	// the score improves; scan values in index order so the result is
	// deterministic.
	mask := uint64(1)
	bestScore, valid := subsetScore(h, crit, total, mask)
	if !valid {
		bestScore = math.Inf(1)
	}
	improved := true
	for improved {
		improved = false
		for v := 1; v < h.M; v++ {
			trial := mask ^ (1 << uint(v))
			s, ok := subsetScore(h, crit, total, trial)
			if ok && s < bestScore-1e-12 {
				mask, bestScore = trial, s
				improved = true
			}
		}
	}
	if math.IsInf(bestScore, 1) {
		return 0, 0, false
	}
	return mask, bestScore, true
}

// ContSplit describes a binary threshold test "value ≤ Thresh" on a
// continuous attribute.
type ContSplit struct {
	Thresh float64
	Score  float64 // expected impurity of the split
}

// BestContinuousSplit scans the (already sorted ascending) values with
// their aligned classes once and returns the threshold minimizing expected
// impurity, exactly the C4.5 procedure behind Table 3. Candidate
// thresholds are the distinct values v_i with at least one case strictly
// greater (tests are "≤ v_i"). ok=false when all values are equal.
func BestContinuousSplit(sortedValues []float64, classes []int32, numClasses int, crit Criterion) (ContSplit, bool) {
	n := len(sortedValues)
	if n < 2 {
		return ContSplit{}, false
	}
	totalCounts := kernel.GetInt64(numClasses)
	defer kernel.PutInt64(totalCounts)
	for _, c := range classes {
		totalCounts[c]++
	}
	thresh, score, ok := kernel.ScanSorted(sortedValues, classes, totalCounts, crit)
	if !ok {
		return ContSplit{}, false
	}
	return ContSplit{Thresh: thresh, Score: score}, true
}

// ContStat is one row of a Table 3-style enumeration: the class
// distributions on both sides of the binary test "≤ Value".
type ContStat struct {
	Value float64
	LE    []int64 // classes of cases with value ≤ Value
	GT    []int64 // classes of cases with value > Value
}

// ContinuousDistribution enumerates the class-distribution information of
// every distinct value of a continuous attribute (the exact content of
// Table 3 for Humidity). Values and classes must be aligned; the slice is
// sorted internally without modifying the inputs.
func ContinuousDistribution(values []float64, classes []int32, numClasses int) []ContStat {
	n := len(values)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sortByValue(idx, values)
	total := make([]int64, numClasses)
	for _, c := range classes {
		total[c]++
	}
	le := make([]int64, numClasses)
	var out []ContStat
	for k := 0; k < n; k++ {
		i := idx[k]
		le[classes[i]]++
		if k+1 < n && values[idx[k+1]] == values[i] {
			continue
		}
		gt := make([]int64, numClasses)
		for c := range gt {
			gt[c] = total[c] - le[c]
		}
		out = append(out, ContStat{Value: values[i], LE: append([]int64(nil), le...), GT: gt})
	}
	return out
}

// BinOf locates the bin of v among ascending boundary edges with the
// half-open convention shared by every module that bins continuous
// values: bin i is (edges[i-1], edges[i]], bin 0 is (-inf, edges[0]] and
// bin len(edges) is (edges[len-1], +inf). Tree routing, per-node
// discretization and histogram collection all delegate to the kernel's
// binner, so a value on a boundary is counted and routed identically
// everywhere.
func BinOf(edges []float64, v float64) int {
	return kernel.BinOf(edges, v)
}

// sortByValue orders idx by ascending values[idx[i]], ties by ascending
// index — the deterministic order ContinuousDistribution enumerates. The
// comparison-function sort avoids the reflection-based swapper (and its
// per-call allocations) of the previous hand-rolled sort.Slice form.
func sortByValue(idx []int, values []float64) {
	slices.SortFunc(idx, func(a, b int) int {
		switch {
		case values[a] < values[b]:
			return -1
		case values[a] > values[b]:
			return 1
		default:
			return a - b // deterministic for equal values
		}
	})
}

// pairView sorts a float64 column and its aligned class column in
// lockstep without allocating an index permutation.
type pairView struct {
	v []float64
	c []int32
}

func (p pairView) Len() int           { return len(p.v) }
func (p pairView) Less(a, b int) bool { return p.v[a] < p.v[b] }
func (p pairView) Swap(a, b int) {
	p.v[a], p.v[b] = p.v[b], p.v[a]
	p.c[a], p.c[b] = p.c[b], p.c[a]
}

// SortPairs sorts values ascending with classes riding along, the
// preparation step of the C4.5-style per-node continuous search. The sort
// is not stable; the order of classes within a run of equal values does
// not affect any downstream decision, because the sorted-scan kernel only
// evaluates candidates at boundaries between distinct values, where the
// running class counts cover the whole run regardless of its internal
// order.
func SortPairs(values []float64, classes []int32) {
	sort.Sort(pairView{values, classes})
}
