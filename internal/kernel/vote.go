package kernel

import (
	"math/bits"
	"sync"
)

// VoteOptions gates voting-based (two-round, PV-Tree style) split
// selection in the parallel builders. Round 1 nominates each rank's
// top-K attributes per election group from purely local statistics;
// round 2 reduces full histograms only for the ≤2K globally elected
// candidates, making deep-level reduction volume independent of the
// attribute count.
type VoteOptions struct {
	// K is the number of attributes each rank nominates per election
	// group. 0 disables voting. When K >= the schema's attribute count
	// the voted path short-circuits to the exact one, so trees and
	// modeled breakdowns are bit-identical by construction.
	K int
}

// Active reports whether voting changes anything for a schema with
// numAttrs attributes.
func (v VoteOptions) Active(numAttrs int) bool {
	return v.K > 0 && v.K < numAttrs
}

// Candidates is the global candidate budget of one election: at most
// 2K attributes survive the ballot round.
func (v VoteOptions) Candidates() int { return 2 * v.K }

// VoteTopK writes the indices of the (at most) k largest gains into
// out[:m] and returns m. Deterministic: attributes are visited in
// ascending index order and an incumbent is evicted only by a strictly
// greater gain, so on gain ties the lower attribute index is retained;
// among tied incumbents the highest index is evicted first. Gains not
// strictly above minGain (including NaN and -Inf sentinels) are never
// nominated. The result is sorted by ascending attribute index and the
// remainder of out[:k] is filled with -1 so ballots are fixed-size.
// out must have room for k entries; the call performs no allocation.
func VoteTopK(gains []float64, k int, minGain float64, out []int32) int {
	if k <= 0 {
		return 0
	}
	m := 0
	for a, g := range gains {
		if !(g > minGain) {
			continue
		}
		if m < k {
			out[m] = int32(a)
			m++
			continue
		}
		w := 0
		for i := 1; i < m; i++ {
			gi, gw := gains[out[i]], gains[out[w]]
			if gi < gw || (gi == gw && out[i] > out[w]) {
				w = i
			}
		}
		if g > gains[out[w]] {
			out[w] = int32(a)
		}
	}
	for i := 1; i < m; i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	for i := m; i < k; i++ {
		out[i] = -1
	}
	return m
}

// ElectCandidates tallies the nominations in ballots (attribute ids;
// -1 marks an empty fixed-size slot) and writes the winners into
// out[:m]: the at most elect attributes with the highest vote counts,
// ties broken by ascending attribute index. Attributes with zero votes
// are never elected. The winners are emitted in ascending attribute
// order so every caller sees the same canonical candidate set; the
// tally is a pure function of the multiset of ballots, so the result
// is invariant to rank arrival order. The tally lives on the stack up
// to 4096 attributes (pooled beyond), so the call performs no
// steady-state allocation.
func ElectCandidates(ballots []int32, numAttrs, elect int, out []int32) int {
	if elect <= 0 || numAttrs <= 0 {
		return 0
	}
	if numAttrs <= 4096 {
		var tally [4096]int32
		return electTally(tally[:numAttrs], ballots, elect, out)
	}
	votes := GetInt32(numAttrs)
	m := electTally(votes, ballots, elect, out)
	PutInt32(votes)
	return m
}

// electTally is the allocation-free core of ElectCandidates over a
// caller-provided zeroed tally of numAttrs slots.
func electTally(votes, ballots []int32, elect int, out []int32) int {
	for _, a := range ballots {
		if a >= 0 && int(a) < len(votes) {
			votes[a]++
		}
	}
	m := 0
	for m < elect {
		best := -1
		bv := int32(0)
		for a, v := range votes {
			if v > bv {
				best, bv = a, v
			}
		}
		if best < 0 {
			break
		}
		out[m] = int32(best)
		m++
		votes[best] = 0
	}
	for i := 1; i < m; i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return m
}

// int32/float64 pools for ballot and gain scratch buffers, mirroring
// the power-of-two size-class scheme of pool.go.

var int32Pools [maxPoolClass + 1]sync.Pool
var float64Pools [maxPoolClass + 1]sync.Pool

// GetInt32 returns a zeroed []int32 of length n from the pool.
func GetInt32(n int) []int32 {
	if n == 0 {
		return nil
	}
	class := bits.Len(uint(n - 1))
	if class > maxPoolClass {
		return make([]int32, n)
	}
	if v := int32Pools[class].Get(); v != nil {
		s := (*(v.(*[]int32)))[:n]
		clear(s)
		return s
	}
	return make([]int32, n, 1<<class)
}

// PutInt32 returns a buffer obtained from GetInt32 to the pool.
func PutInt32(s []int32) {
	c := cap(s)
	if c == 0 || c&(c-1) != 0 {
		return
	}
	class := bits.Len(uint(c - 1))
	if class > maxPoolClass {
		return
	}
	s = s[:0]
	int32Pools[class].Put(&s)
}

// GetFloat64 returns a zeroed []float64 of length n from the pool.
func GetFloat64(n int) []float64 {
	if n == 0 {
		return nil
	}
	class := bits.Len(uint(n - 1))
	if class > maxPoolClass {
		return make([]float64, n)
	}
	if v := float64Pools[class].Get(); v != nil {
		s := (*(v.(*[]float64)))[:n]
		clear(s)
		return s
	}
	return make([]float64, n, 1<<class)
}

// PutFloat64 returns a buffer obtained from GetFloat64 to the pool.
func PutFloat64(s []float64) {
	c := cap(s)
	if c == 0 || c&(c-1) != 0 {
		return
	}
	class := bits.Len(uint(c - 1))
	if class > maxPoolClass {
		return
	}
	s = s[:0]
	float64Pools[class].Put(&s)
}
