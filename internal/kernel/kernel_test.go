package kernel_test

import (
	"math"
	"testing"

	"partree/internal/criteria"
	"partree/internal/kernel"
)

// lcg is a tiny deterministic generator so the tests need no imports
// beyond the packages under test.
type lcg uint64

func (r *lcg) next() uint64 {
	*r = *r*6364136223846793005 + 1442695040888963407
	return uint64(*r)
}

func (r *lcg) intn(n int) int       { return int(r.next() % uint64(n)) }
func (r *lcg) float() float64       { return float64(r.next()>>11) / float64(1<<53) }
func (r *lcg) class(c int) int32    { return int32(r.intn(c)) }
func (r *lcg) value(m int) int32    { return int32(r.intn(m)) }
func (r *lcg) cont(lo, hi float64) float64 { return lo + (hi-lo)*r.float() }

// buildSpec synthesizes n rows under a schema of two categorical and two
// continuous attributes.
func buildSpec(n int, seed uint64) (*kernel.Spec, []int32) {
	r := lcg(seed)
	const classes = 3
	class := make([]int32, n)
	cat0 := make([]int32, n)
	cat1 := make([]int32, n)
	cont0 := make([]float64, n)
	cont1 := make([]float64, n)
	for i := 0; i < n; i++ {
		class[i] = r.class(classes)
		cat0[i] = r.value(7)
		cat1[i] = r.value(23)
		cont0[i] = r.cont(-5, 5)
		cont1[i] = r.cont(0, 1)
	}
	edges := func(lo, hi float64, bins int) []float64 {
		out := make([]float64, bins-1)
		w := (hi - lo) / float64(bins)
		for i := range out {
			out[i] = lo + w*float64(i+1)
		}
		return out
	}
	sp := &kernel.Spec{
		Classes: classes,
		Class:   class,
		Attrs: []kernel.AttrColumn{
			{Cat: cat0, Bins: 7},
			{Cat: cat1, Bins: 23},
			{Cont: cont0, Bins: 16, Edges: edges(-5, 5, 16)},
			{Cont: cont1, Bins: 8, Edges: edges(0, 1, 8)},
		},
	}
	idx := make([]int32, n)
	for i := range idx {
		idx[i] = int32(i)
	}
	return sp, idx
}

// forceParallel lowers the gate so even tiny inputs take the worker path,
// restoring the previous settings on cleanup.
func forceParallel(t *testing.T, workers int) {
	t.Helper()
	oldT, oldW := kernel.ParallelThreshold, kernel.MaxWorkers
	kernel.ParallelThreshold = 1
	kernel.MaxWorkers = workers
	t.Cleanup(func() {
		kernel.ParallelThreshold = oldT
		kernel.MaxWorkers = oldW
	})
}

func TestSpecValidateAndStatsLen(t *testing.T) {
	sp, _ := buildSpec(10, 1)
	if err := sp.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	want := 3 + (7+23+16+8)*3
	if got := sp.StatsLen(); got != want {
		t.Fatalf("StatsLen = %d, want %d", got, want)
	}
	bad := &kernel.Spec{Classes: 3, Attrs: []kernel.AttrColumn{{Bins: 2}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("spec with neither Cat nor Cont accepted")
	}
}

// TestTabulateParallelMatchesSerial is the kernel's differential identity:
// the worker path must produce bit-identical counts and charge identical
// modeled ops, for several row counts (including ones that do not divide
// evenly among workers) and on top of pre-existing counts.
func TestTabulateParallelMatchesSerial(t *testing.T) {
	for _, n := range []int{1, 2, 37, 1000, 4097, 30000} {
		sp, idx := buildSpec(n, uint64(n))
		statsLen := sp.StatsLen()

		serial := make([]int64, statsLen)
		opsSerial := kernel.TabulateInto(serial, idx, sp)

		forceParallel(t, 4)
		parallel := make([]int64, statsLen)
		opsParallel := kernel.TabulateInto(parallel, idx, sp)

		if opsSerial != opsParallel {
			t.Fatalf("n=%d: modeled ops drifted: serial %d, parallel %d", n, opsSerial, opsParallel)
		}
		for i := range serial {
			if serial[i] != parallel[i] {
				t.Fatalf("n=%d: counts differ at %d: serial %d, parallel %d", n, i, serial[i], parallel[i])
			}
		}

		// Accumulation on top of prior counts must also match.
		kernel.TabulateInto(parallel, idx, sp)
		kernel.TabulateInto(serial, idx, sp)
		for i := range serial {
			if serial[i] != parallel[i] {
				t.Fatalf("n=%d: accumulated counts differ at %d: serial %d, parallel %d",
					n, i, serial[i], parallel[i])
			}
		}
	}
}

func TestTabulateCatParallelMatchesSerial(t *testing.T) {
	const n, m, c = 12345, 11, 4
	r := lcg(99)
	values := make([]int32, n)
	classes := make([]int32, n)
	idx := make([]int32, n)
	for i := 0; i < n; i++ {
		values[i] = r.value(m)
		classes[i] = r.class(c)
		idx[i] = int32(i)
	}
	serial := make([]int64, m*c)
	kernel.TabulateCat(serial, values, classes, idx, c)

	forceParallel(t, 3)
	parallel := make([]int64, m*c)
	kernel.TabulateCat(parallel, values, classes, idx, c)
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("counts differ at %d: serial %d, parallel %d", i, serial[i], parallel[i])
		}
	}
}

func TestPoolReturnsZeroedBuffers(t *testing.T) {
	for _, n := range []int{1, 3, 64, 65, 100000} {
		s := kernel.GetInt64(n)
		if len(s) != n {
			t.Fatalf("GetInt64(%d) returned len %d", n, len(s))
		}
		for i := range s {
			s[i] = int64(i) + 1
		}
		kernel.PutInt64(s)
		s2 := kernel.GetInt64(n)
		if len(s2) != n {
			t.Fatalf("recycled GetInt64(%d) returned len %d", n, len(s2))
		}
		for i, v := range s2 {
			if v != 0 {
				t.Fatalf("recycled buffer (n=%d) not zeroed at %d: %d", n, i, v)
			}
		}
		kernel.PutInt64(s2)
	}
	// Foreign (non-power-of-two-capacity) buffers are dropped, not filed.
	kernel.PutInt64(make([]int64, 3, 3))
	kernel.PutInt64(nil)
}

// referenceScan is the pre-kernel BestContinuousSplit loop, kept verbatim
// as the oracle for the scanner's differential test.
func referenceScan(values []float64, classes []int32, numClasses int, crit criteria.Criterion) (float64, float64, bool) {
	n := len(values)
	if n < 2 {
		return 0, 0, false
	}
	total := make([]int64, numClasses)
	for _, c := range classes {
		total[c]++
	}
	left := make([]int64, numClasses)
	right := append([]int64(nil), total...)
	bestT, bestS, found := 0.0, math.Inf(1), false
	ft := float64(n)
	for i := 0; i < n-1; i++ {
		c := classes[i]
		left[c]++
		right[c]--
		if values[i] == values[i+1] {
			continue
		}
		ln := int64(i + 1)
		rn := int64(n - i - 1)
		s := float64(ln)/ft*crit.Impurity(left, ln) + float64(rn)/ft*crit.Impurity(right, rn)
		if s < bestS {
			bestT, bestS, found = values[i], s, true
		}
	}
	return bestT, bestS, found
}

func sortedCase(n int, seed uint64, distinct int) ([]float64, []int32, []int64) {
	r := lcg(seed)
	values := make([]float64, n)
	classes := make([]int32, n)
	dist := make([]int64, 3)
	for i := 0; i < n; i++ {
		values[i] = float64(r.intn(distinct)) // duplicates guaranteed
		classes[i] = r.class(3)
		dist[classes[i]]++
	}
	// insertion sort by value (classes ride along); ties keep feed order,
	// which the scanner must be insensitive to.
	for i := 1; i < n; i++ {
		for j := i; j > 0 && values[j] < values[j-1]; j-- {
			values[j], values[j-1] = values[j-1], values[j]
			classes[j], classes[j-1] = classes[j-1], classes[j]
		}
	}
	return values, classes, dist
}

// TestScanSortedMatchesReference compares the scanner against the
// pre-kernel loop bit for bit (threshold, score, and found flag).
func TestScanSortedMatchesReference(t *testing.T) {
	for _, crit := range []criteria.Criterion{criteria.Entropy, criteria.Gini} {
		for _, n := range []int{2, 3, 10, 257, 4000} {
			for _, distinct := range []int{1, 2, 5, 40} {
				values, classes, dist := sortedCase(n, uint64(n*distinct+1), distinct)
				wantT, wantS, wantOK := referenceScan(values, classes, 3, crit)
				gotT, gotS, gotOK := kernel.ScanSorted(values, classes, dist, crit)
				if wantOK != gotOK || wantT != gotT || wantS != gotS {
					t.Fatalf("crit=%v n=%d distinct=%d: scanner (%v,%v,%v) != reference (%v,%v,%v)",
						crit, n, distinct, gotT, gotS, gotOK, wantT, wantS, wantOK)
				}
			}
		}
	}
}

// TestContScannerSeededSections splits a sorted stream into contiguous
// sections scanned by separate seeded scanners (ScalParC's shape: each
// section starts from the class counts before it and closes on the first
// value of the next non-empty section) and asserts the sectioned best
// equals the full-scan best.
func TestContScannerSeededSections(t *testing.T) {
	values, classes, dist := sortedCase(1000, 7, 13)
	total := int64(len(values))
	fullT, fullS, fullOK := kernel.ScanSorted(values, classes, dist, criteria.Entropy)

	for _, parts := range []int{2, 3, 7} {
		bestT, bestS, found := 0.0, math.Inf(1), false
		per := len(values) / parts
		for p := 0; p < parts; p++ {
			lo := p * per
			hi := lo + per
			if p == parts-1 {
				hi = len(values)
			}
			prefix := make([]int64, 3)
			for i := 0; i < lo; i++ {
				prefix[classes[i]]++
			}
			var sc kernel.ContScanner
			sc.Reset(dist, total, criteria.Entropy)
			sc.Seed(prefix)
			for i := lo; i < hi; i++ {
				sc.Add(values[i], classes[i])
			}
			sc.Finish(0, false)
			if hi < len(values) {
				sc.Finish(values[hi], true)
			}
			if th, s, ok := sc.Best(); ok && (s < bestS || (s == bestS && th < bestT)) {
				bestT, bestS, found = th, s, true
			}
		}
		if found != fullOK || bestT != fullT || bestS != fullS {
			t.Fatalf("parts=%d: sectioned best (%v,%v,%v) != full scan (%v,%v,%v)",
				parts, bestT, bestS, found, fullT, fullS, fullOK)
		}
	}
}

// TestContScannerReuse asserts Reset gives a clean scan after a previous
// one (the SLIQ/SPRINT usage pattern: one scanner per leaf, reused across
// attributes).
func TestContScannerReuse(t *testing.T) {
	var sc kernel.ContScanner
	v1, c1, d1 := sortedCase(300, 21, 9)
	sc.Reset(d1, int64(len(v1)), criteria.Gini)
	for i := range v1 {
		sc.Add(v1[i], c1[i])
	}
	v2, c2, d2 := sortedCase(500, 22, 4)
	sc.Reset(d2, int64(len(v2)), criteria.Gini)
	for i := range v2 {
		sc.Add(v2[i], c2[i])
	}
	wantT, wantS, wantOK := kernel.ScanSorted(v2, c2, d2, criteria.Gini)
	gotT, gotS, gotOK := sc.Best()
	if wantOK != gotOK || wantT != gotT || wantS != gotS {
		t.Fatalf("reused scanner (%v,%v,%v) != fresh scan (%v,%v,%v)", gotT, gotS, gotOK, wantT, wantS, wantOK)
	}
}
