package kernel

import "math"

// Impurity scores a class-count vector whose sum is total; lower is purer.
// criteria.Criterion satisfies it, so the scanners below run any impurity
// measure without kernel importing the criteria layer.
type Impurity interface {
	Impurity(counts []int64, total int64) float64
}

// ContScanner is the sorted continuous-split kernel as an incremental
// state machine: feed it (value, class) pairs in ascending value order and
// it tracks the binary threshold "value ≤ t" with the lowest expected
// impurity, evaluating a candidate exactly at each boundary between
// distinct values. It is the one scan loop behind C4.5's per-node search
// (criteria.BestContinuousSplit), SPRINT's attribute-list scan, SLIQ's
// interleaved class-list scan, and ScalParC's per-section scan — the
// incremental form is what lets SLIQ advance many nodes' scans from one
// global list, and Seed is what lets ScalParC start a rank's section from
// the class counts of the sections before it.
//
// Determinism: a candidate wins only with a strictly smaller score, so
// among equal scores the first (lowest) threshold is kept — the tie-break
// every formulation shares. The score expression is evaluated in the same
// shape everywhere, so equal inputs give bit-identical floats.
type ContScanner struct {
	imp   Impurity
	dist  []int64 // parent class totals (aliased, read-only)
	total int64

	below  []int64
	above  []int64 // scratch for candidate evaluation
	belowN int64
	last   float64
	seen   bool

	bestScore  float64
	bestThresh float64
	found      bool
}

// Reset prepares the scanner for one (node, attribute) scan: dist is the
// node's full class distribution (summing to total) and imp the impurity
// measure. The scanner's buffers are reused across Resets, so a
// long-lived scanner allocates only on its first use.
func (s *ContScanner) Reset(dist []int64, total int64, imp Impurity) {
	s.imp = imp
	s.dist = dist
	s.total = total
	if cap(s.below) < len(dist) {
		s.below = make([]int64, len(dist))
		s.above = make([]int64, len(dist))
	} else {
		s.below = s.below[:len(dist)]
		s.above = s.above[:len(dist)]
		clear(s.below)
	}
	s.belowN = 0
	s.seen = false
	s.bestScore = math.Inf(1)
	s.bestThresh = 0
	s.found = false
}

// Seed adds pre-scanned class counts below every value this scanner will
// see — ScalParC's prefix: the counts of all preceding ranks' sections.
func (s *ContScanner) Seed(counts []int64) {
	for c, n := range counts {
		s.below[c] += n
		s.belowN += n
	}
}

// Add feeds the next pair in ascending value order. A boundary between the
// previous value and v evaluates the candidate threshold at the previous
// value before v's counts are admitted.
func (s *ContScanner) Add(v float64, class int32) {
	if s.seen && v != s.last {
		s.eval()
	}
	s.below[class]++
	s.belowN++
	s.last = v
	s.seen = true
}

// AddRun feeds a run of aligned (value, class) pairs in ascending value
// order — the chunk-fed form of Add, used when a sorted scan is driven
// from decoded column chunks rather than element-wise.
func (s *ContScanner) AddRun(values []float64, classes []int32) {
	for i, v := range values {
		s.Add(v, classes[i])
	}
}

// Finish closes the scan when the values after the scanned range are known
// externally (ScalParC's next non-empty section): if the following value
// next differs from the last fed value, the final boundary is evaluated.
// Scans whose last value is the global maximum (or standalone full scans)
// simply skip Finish — the last value cannot carry a "≤" test.
func (s *ContScanner) Finish(next float64, hasNext bool) {
	if s.seen && hasNext && next != s.last {
		s.eval()
	}
}

// eval scores the cut "value ≤ last" on the running counts. The skip of
// empty sides mirrors every pre-kernel scan: belowN==0 cannot happen after
// an Add, and belowN==total would put every case left.
func (s *ContScanner) eval() {
	if s.belowN == 0 || s.belowN >= s.total {
		return
	}
	for c := range s.above {
		s.above[c] = s.dist[c] - s.below[c]
	}
	ln, rn := s.belowN, s.total-s.belowN
	ft := float64(s.total)
	score := float64(ln)/ft*s.imp.Impurity(s.below, ln) +
		float64(rn)/ft*s.imp.Impurity(s.above, rn)
	if score < s.bestScore {
		s.bestScore = score
		s.bestThresh = s.last
		s.found = true
	}
}

// Best returns the winning threshold and its expected impurity; ok=false
// when no boundary separated the data.
func (s *ContScanner) Best() (thresh, score float64, ok bool) {
	return s.bestThresh, s.bestScore, s.found
}

// ScanSorted runs a complete scan over already-sorted values with aligned
// classes and the node's class distribution dist (summing to
// len(values)). It is the non-incremental convenience form used by
// criteria.BestContinuousSplit.
func ScanSorted(values []float64, classes []int32, dist []int64, imp Impurity) (thresh, score float64, ok bool) {
	var s ContScanner
	s.Reset(dist, int64(len(values)), imp)
	for i, v := range values {
		s.Add(v, classes[i])
	}
	return s.Best()
}
