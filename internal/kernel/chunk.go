package kernel

// Chunk-fed tabulation: the entry point of the out-of-core builders,
// which stream fixed-size horizontal chunks of the training set instead
// of indexing whole resident columns. A Spec built over one chunk's
// columns (row ids 0..rows-1) plus a per-row slot assignment replaces
// the per-node row-index vectors of the in-RAM path: slot[i] names which
// frontier node's statistics block row i belongs to, -1 marks settled
// rows.
//
// Identity with the in-RAM path is the usual merge argument: each row
// contributes the same +1s to the same node's histogram cells whether it
// arrives via an index vector or a (chunk, slot) pair, and int64 sums
// are order-independent. Modeled cost is charged by the caller from
// per-node row counts — one op per record-attribute touch plus the
// per-node table-upkeep term — so a chunked tabulation charges exactly
// what the equivalent TabulateInto calls would.

// TabulateAssigned tabulates every chunk row with a non-negative slot
// into its slot's statistics block: blocks[s*stride : s*stride+stride]
// accumulates the class distribution and per-attribute class histograms
// of the rows with slot[i] == s, laid out per Spec. sp's columns must be
// the chunk's columns, indexed 0..len(slot)-1; stride must be ≥
// sp.StatsLen(). Returns the number of rows tabulated.
func TabulateAssigned(blocks []int64, stride int, slot []int32, sp *Spec) int64 {
	c := sp.Classes
	class := sp.Class
	var rows int64
	for i, s := range slot {
		if s < 0 {
			continue
		}
		blocks[int(s)*stride+int(class[i])]++
		rows++
	}
	off := c
	for _, a := range sp.Attrs {
		if a.Cat != nil {
			col := a.Cat
			for i, s := range slot {
				if s < 0 {
					continue
				}
				blocks[int(s)*stride+off+int(col[i])*c+int(class[i])]++
			}
		} else {
			col := a.Cont
			edges := a.Edges
			for i, s := range slot {
				if s < 0 {
					continue
				}
				b := BinOf(edges, col[i])
				blocks[int(s)*stride+off+b*c+int(class[i])]++
			}
		}
		off += a.Bins * c
	}
	return rows
}
