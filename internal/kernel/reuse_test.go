package kernel

import (
	"testing"
)

func TestSparseWorthwhile(t *testing.T) {
	cases := []struct {
		nnz, n    int
		threshold float64
		want      bool
	}{
		{0, 100, 0.5, true},    // empty block: 0 pairs beat 800 bytes
		{50, 100, 0.5, true},   // at threshold, 600 < 800
		{51, 100, 0.5, false},  // over threshold
		{100, 100, 1.0, false}, // pairs would be larger: 1200 > 800
		{66, 100, 1.0, true},   // 792 < 800
		{67, 100, 1.0, false},  // 804 > 800
		{10, 100, 0, false},    // threshold 0 disables
		{0, 0, 0.5, false},     // empty vector: nothing to encode
	}
	for _, c := range cases {
		if got := SparseWorthwhile(c.nnz, c.n, c.threshold); got != c.want {
			t.Errorf("SparseWorthwhile(%d, %d, %g) = %v, want %v", c.nnz, c.n, c.threshold, got, c.want)
		}
	}
}

func TestCountNonzero(t *testing.T) {
	if got := CountNonzero([]int64{0, 1, 0, -2, 3, 0}); got != 3 {
		t.Fatalf("CountNonzero = %d, want 3", got)
	}
	if got := CountNonzero(nil); got != 0 {
		t.Fatalf("CountNonzero(nil) = %d, want 0", got)
	}
}

func TestOptionsGate(t *testing.T) {
	if (Options{}).Enabled() {
		t.Fatal("zero Options must be disabled")
	}
	if !(Options{Subtraction: true}).Enabled() || !(Options{SparseThreshold: 0.5}).Enabled() {
		t.Fatal("either flag alone must enable the layer")
	}
	r := ReuseAll()
	if !r.Subtraction || r.SparseThreshold != DefaultSparseThreshold {
		t.Fatalf("ReuseAll = %+v", r)
	}
}

// TestDeriveExact pins the subtraction identity on the exact shapes the
// frontier uses: parent block = Σ children blocks ⇒ DeriveFrom + Subtract
// reconstructs the withheld child bit-for-bit.
func TestDeriveExact(t *testing.T) {
	parent := []int64{9, 4, 0, 7, 3, 1}
	a := []int64{4, 1, 0, 2, 3, 0}
	b := []int64{2, 3, 0, 1, 0, 1}
	// c = parent - a - b
	want := []int64{3, 0, 0, 4, 0, 0}
	dst := make([]int64, len(parent))
	ops := DeriveFrom(dst, parent)
	ops += Subtract(dst, a)
	ops += Subtract(dst, b)
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("derived[%d] = %d, want %d", i, dst[i], want[i])
		}
	}
	if ops != 3*int64(len(parent)) {
		t.Fatalf("modeled ops = %d, want %d", ops, 3*len(parent))
	}
}

func TestReuseCacheStoreLookupReset(t *testing.T) {
	rc := NewReuseCache()
	parent := []int64{5, 6, 7}
	if ops := rc.Store(parent, []int64{10, 11}); ops != 3 {
		t.Fatalf("Store ops = %d, want 3", ops)
	}
	parent[0] = 99 // the cache must hold a copy
	f, ok := rc.Lookup(10)
	if !ok {
		t.Fatal("Lookup(10) missed")
	}
	if f.Parent[0] != 5 || len(f.Kids) != 2 || f.Kids[0] != 10 || f.Kids[1] != 11 {
		t.Fatalf("Lookup = %+v", f)
	}
	if _, ok := rc.Lookup(11); ok {
		t.Fatal("Lookup keyed by non-first kid must miss")
	}
	if rc.Len() != 1 {
		t.Fatalf("Len = %d", rc.Len())
	}
	rc.Reset()
	if rc.Len() != 0 {
		t.Fatal("Reset did not empty the cache")
	}
	if _, ok := rc.Lookup(10); ok {
		t.Fatal("Lookup after Reset must miss")
	}
}

func TestReuseCacheNilSafe(t *testing.T) {
	var rc *ReuseCache
	if _, ok := rc.Lookup(1); ok {
		t.Fatal("nil cache Lookup must miss")
	}
	if rc.Len() != 0 {
		t.Fatal("nil cache Len must be 0")
	}
	rc.Reset() // must not panic
}

// TestReuseSteadyStateAllocs is the allocation gate for the reuse path: a
// warmed Store/Lookup/Derive/Reset cycle — the per-family work the frontier
// does for every cached node — must not allocate. Pooled parent copies and
// a retained map keep the steady state allocation-free.
func TestReuseSteadyStateAllocs(t *testing.T) {
	const fam = 8
	parent := make([]int64, 165)
	sib := make([]int64, 165)
	dst := make([]int64, 165)
	rc := NewReuseCache()
	id := int64(0)
	kids := make([]int64, 2)
	cycle := func() {
		for i := 0; i < fam; i++ {
			kids[0], kids[1] = id, id+1
			rc.Store(parent, kids)
			id += 2
		}
		for k := id - 2*fam; k < id; k += 2 {
			if f, ok := rc.Lookup(k); ok {
				DeriveFrom(dst, f.Parent)
				Subtract(dst, sib)
			}
		}
		rc.Reset()
	}
	// Warm the pools and the map.
	for i := 0; i < 4; i++ {
		cycle()
	}
	if avg := testing.AllocsPerRun(100, cycle); avg > 0 {
		t.Fatalf("reuse steady state allocates %.2f times per %d-family cycle; want 0", avg, fam)
	}
}
