package kernel_test

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"

	"partree/internal/kernel"
)

// benchRows is the issue's target node size: the intra-rank parallel
// tabulate path must pay off on a ≥1M-row node.
const benchRows = 1 << 20

// kernelBenchResult is one measured configuration of the tabulate kernel;
// the collected set is serialized to BENCH_kernel.json (see
// EXPERIMENTS.md, "Kernel microbenchmark") so the repo's perf trajectory
// has a recorded baseline.
type kernelBenchResult struct {
	RowsPerSec  float64 `json:"rows_per_sec"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

type kernelBenchArtifact struct {
	Benchmark         string                      `json:"benchmark"`
	Rows              int                         `json:"rows"`
	Classes           int                         `json:"classes"`
	CategoricalAttrs  int                         `json:"categorical_attrs"`
	ContinuousAttrs   int                         `json:"continuous_attrs"`
	StatsLen          int                         `json:"stats_len"`
	GoMaxProcs        int                         `json:"gomaxprocs"`
	ParallelThreshold int                         `json:"parallel_threshold"`
	Paths             map[string]kernelBenchResult `json:"paths"`
	SpeedupParallel   float64                     `json:"speedup_parallel_vs_serial"`
}

// BenchmarkKernelTabulate measures the statistics kernel on a 1M-row node
// in both execution modes. Run with -benchmem to see the allocation story:
// the steady-state path (pooled buffers, prebuilt spec) is zero-alloc in
// serial mode and only pays the bounded fork/merge bookkeeping in
// parallel mode. After the sub-benchmarks run, the measurements are
// written to BENCH_kernel.json (override the path with BENCH_KERNEL_JSON).
//
// The acceptance target — parallel ≥2× serial — needs GOMAXPROCS≥4; on
// fewer cores the artifact still records both paths so the trajectory is
// comparable across machines.
func BenchmarkKernelTabulate(b *testing.B) {
	sp, idx := buildSpec(benchRows, 2024)
	statsLen := sp.StatsLen()
	results := map[string]kernelBenchResult{}

	run := func(name string, threshold int) {
		b.Run(name, func(b *testing.B) {
			oldT := kernel.ParallelThreshold
			kernel.ParallelThreshold = threshold
			defer func() { kernel.ParallelThreshold = oldT }()
			flat := kernel.GetInt64(statsLen)
			defer kernel.PutInt64(flat)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				clear(flat)
				kernel.TabulateInto(flat, idx, sp)
			}
			b.StopTimer()
			nsPerOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
			allocs := testing.AllocsPerRun(3, func() {
				clear(flat)
				kernel.TabulateInto(flat, idx, sp)
			})
			rate := float64(benchRows) / (nsPerOp / 1e9)
			b.ReportMetric(rate, "rows/sec")
			results[name] = kernelBenchResult{RowsPerSec: rate, NsPerOp: nsPerOp, AllocsPerOp: allocs}
		})
	}
	run("serial", benchRows+1) // gate above the node size: always serial
	run("parallel", 1)         // gate below: always the worker path

	art := kernelBenchArtifact{
		Benchmark:         "BenchmarkKernelTabulate",
		Rows:              benchRows,
		Classes:           sp.Classes,
		CategoricalAttrs:  2,
		ContinuousAttrs:   2,
		StatsLen:          statsLen,
		GoMaxProcs:        runtime.GOMAXPROCS(0),
		ParallelThreshold: kernel.ParallelThreshold,
		Paths:             results,
	}
	if s, ok := results["serial"]; ok {
		if p, ok := results["parallel"]; ok && p.NsPerOp > 0 {
			art.SpeedupParallel = s.NsPerOp / p.NsPerOp
		}
	}
	path := os.Getenv("BENCH_KERNEL_JSON")
	if path == "" {
		path = "BENCH_kernel.json"
	}
	buf, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		b.Fatalf("marshal artifact: %v", err)
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		b.Logf("could not write %s: %v", path, err)
	}
}

// BenchmarkKernelTabulateCat isolates the single-histogram kernel
// (criteria.HistFor's engine) at per-node sizes; with pooled buffers the
// steady-state loop is allocation-free.
func BenchmarkKernelTabulateCat(b *testing.B) {
	const n, m, c = 100000, 20, 2
	r := lcg(5)
	values := make([]int32, n)
	classes := make([]int32, n)
	idx := make([]int32, n)
	for i := 0; i < n; i++ {
		values[i] = r.value(m)
		classes[i] = r.class(c)
		idx[i] = int32(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		counts := kernel.GetInt64(m * c)
		kernel.TabulateCat(counts, values, classes, idx, c)
		kernel.PutInt64(counts)
	}
}
