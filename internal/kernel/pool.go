package kernel

import (
	"math/bits"
	"sync"
)

// Buffer pooling. Every hot loop of tree construction wants a flat []int64
// scratch vector — a node's statistics block, a histogram, a per-worker
// partial — whose size repeats endlessly across nodes and levels. The pool
// hands those out zeroed and recycles them, so the steady-state build path
// allocates nothing per node.
//
// Buffers are binned by power-of-two capacity: GetInt64 rounds the
// allocation up to the next power of two, so a recycled buffer of class k
// always has capacity 2^k and can serve any request with
// 2^(k-1) < n ≤ 2^k. Non-power-of-two capacities handed to PutInt64
// (possible only for buffers the pool did not create) are dropped rather
// than filed under the wrong class.

// maxPoolClass bounds the pooled capacity at 2^26 int64s (512 MiB); larger
// buffers are allocated directly and never pooled.
const maxPoolClass = 26

var int64Pools [maxPoolClass + 1]sync.Pool

// GetInt64 returns a zeroed []int64 of length n backed by the pool. The
// caller owns it until PutInt64.
func GetInt64(n int) []int64 {
	if n == 0 {
		return nil
	}
	class := bits.Len(uint(n - 1)) // ceil(log2 n)
	if class > maxPoolClass {
		return make([]int64, n)
	}
	if v := int64Pools[class].Get(); v != nil {
		s := (*(v.(*[]int64)))[:n]
		clear(s)
		return s
	}
	return make([]int64, n, 1<<class)
}

// PutInt64 recycles a buffer obtained from GetInt64. The caller must not
// touch the slice (or any alias of it) afterwards.
func PutInt64(s []int64) {
	c := cap(s)
	if c == 0 || c&(c-1) != 0 {
		return // not one of ours; let the GC have it
	}
	class := bits.Len(uint(c - 1))
	if class > maxPoolClass {
		return
	}
	s = s[:0]
	int64Pools[class].Put(&s)
}
