// Package kernel owns the two hot inner loops every formulation in the
// repo bottoms out in — categorical class-histogram tabulation and the
// sorted continuous-split scan — behind a mergeable flat-[]int64
// statistics API with pooled, zero-allocation buffers and an intra-rank
// data-parallel tabulate path.
//
// Layering: kernel sits below everything and imports nothing from the
// repo. criteria delegates its histogram construction and sorted-scan
// search here; tree, core, sliq, sprint, scalparc and vertical reach the
// kernels either directly (flat statistics blocks) or through criteria
// (Hist scoring, ContScanner state machines). Impurity measures are passed
// in through the Impurity interface, which criteria.Criterion satisfies.
//
// Merge semantics: every kernel output is a vector of int64 counts, and a
// partition of the input rows maps to a plain element-wise sum of the
// per-partition outputs. Integer addition is associative and commutative
// and cannot lose precision, so per-worker partials within a rank, and
// per-rank partials across the machine (mp.Allreduce with mp.Sum), reduce
// to bit-identical totals regardless of partition shape or merge order.
// That single property is what makes the intra-rank parallel path, the
// paper's global reductions, and the serial reference all interchangeable.
//
// Modeled-cost invariant: TabulateInto returns the modeled operation count
// of the *algorithm* — one op per record-attribute touch plus one per
// histogram cell (the C·A_d·M "initialization and update of the class
// histogram tables" term of the paper's Equation 1) — computed from the
// input sizes, never from the host execution strategy. The serial and
// parallel paths therefore charge identical ops and the per-phase
// Breakdown numbers cannot drift when the threshold or worker count
// changes.
package kernel

import (
	"fmt"
	"runtime"
	"sync"
)

// ParallelThreshold is the minimum number of rows for which TabulateInto
// (and TabulateCat) uses the data-parallel path; smaller nodes stay serial
// — the fork/merge overhead of the frontier's many small nodes would
// otherwise dominate. Tests force the parallel path by lowering it.
// Set it only at startup / test setup: it is read concurrently by builds.
var ParallelThreshold = 1 << 16

// MaxWorkers bounds the intra-rank worker set; 0 means GOMAXPROCS, capped
// at 16. Like ParallelThreshold, set it only at startup.
var MaxWorkers = 0

// minParallelChunk is the smallest per-worker row range worth forking for.
const minParallelChunk = 8192

// workersFor resolves the worker count for n rows.
func workersFor(n int) int {
	if n < ParallelThreshold {
		return 1
	}
	w := MaxWorkers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
		if w > 16 {
			w = 16
		}
	}
	if max := n / minParallelChunk; w > max {
		w = max
	}
	if w < 1 {
		w = 1
	}
	return w
}

// AttrColumn describes one attribute's column for tabulation: exactly one
// of Cat or Cont is set. Bins is the histogram row count (the categorical
// cardinality, or the number of micro bins); Edges are the Bins-1
// ascending micro-bin boundaries of a continuous column.
type AttrColumn struct {
	Cat   []int32
	Cont  []float64
	Bins  int
	Edges []float64
}

// Spec describes the flattened statistics layout of one tree node: the
// class-distribution vector (Classes counts) followed by one Bins×Classes
// class-histogram block per attribute. It is the unit of the synchronous
// formulation's global reduction, and is immutable once built — one Spec
// serves a whole build and is safe for concurrent use.
type Spec struct {
	Classes int
	Class   []int32 // class column, indexed by row id
	Attrs   []AttrColumn
}

// StatsLen returns the flattened vector length.
func (sp *Spec) StatsLen() int {
	n := sp.Classes
	for _, a := range sp.Attrs {
		n += a.Bins * sp.Classes
	}
	return n
}

// TabulateInto tabulates the class distribution and per-attribute class
// histograms of the rows idx into flat (length ≥ StatsLen), accumulating
// on top of existing counts. Large row sets are chunked across a bounded
// worker set with pooled per-worker partials merged at the end; the counts
// are bit-identical to the serial path (see the package comment on merge
// semantics). Returns the modeled operation count, which is identical on
// both paths by construction.
func TabulateInto(flat []int64, idx []int32, sp *Spec) int64 {
	if nw := workersFor(len(idx)); nw > 1 {
		tabulateParallel(flat, idx, sp, nw)
	} else {
		tabulateRange(flat, idx, sp)
	}
	// Modeled cost: the class scan, the histogram-table upkeep (one op per
	// cell, paid whether or not rows land there — Equation 1's C·A_d·M
	// term), and one op per record-attribute touch. A function of the
	// input sizes only, never of the worker count.
	return int64(len(idx)) + int64(len(flat)) + int64(len(sp.Attrs))*int64(len(idx))
}

// tabulateRange is the serial kernel over one row range.
func tabulateRange(flat []int64, idx []int32, sp *Spec) {
	c := sp.Classes
	class := sp.Class
	for _, i := range idx {
		flat[class[i]]++
	}
	off := c
	for _, a := range sp.Attrs {
		if a.Cat != nil {
			col := a.Cat
			for _, i := range idx {
				flat[off+int(col[i])*c+int(class[i])]++
			}
		} else {
			col := a.Cont
			edges := a.Edges
			for _, i := range idx {
				b := BinOf(edges, col[i])
				flat[off+b*c+int(class[i])]++
			}
		}
		off += a.Bins * c
	}
}

// tabulateParallel chunks idx contiguously across nw workers, each
// tabulating into a pooled zeroed partial, then sums the partials into
// flat. Accumulation semantics match tabulateRange exactly because the
// output is a pure element-wise sum over rows.
func tabulateParallel(flat []int64, idx []int32, sp *Spec, nw int) {
	n := sp.StatsLen()
	chunk := (len(idx) + nw - 1) / nw
	partials := make([][]int64, 0, nw)
	var wg sync.WaitGroup
	for lo := 0; lo < len(idx); lo += chunk {
		hi := lo + chunk
		if hi > len(idx) {
			hi = len(idx)
		}
		p := GetInt64(n)
		partials = append(partials, p)
		wg.Add(1)
		go func(dst []int64, rows []int32) {
			defer wg.Done()
			tabulateRange(dst, rows, sp)
		}(p, idx[lo:hi])
	}
	wg.Wait()
	for _, p := range partials {
		for i, v := range p {
			flat[i] += v
		}
		PutInt64(p)
	}
}

// TabulateCat tabulates one categorical class histogram: counts[v*c + cl]
// accumulates the rows i of idx with values[i]==v, classes[i]==cl. This is
// the kernel behind criteria.HistFor/HistInto. Large row sets take the
// same bounded-worker parallel path as TabulateInto.
func TabulateCat(counts []int64, values []int32, classes []int32, idx []int32, c int) {
	nw := workersFor(len(idx))
	if nw <= 1 {
		tabulateCatRange(counts, values, classes, idx, c)
		return
	}
	chunk := (len(idx) + nw - 1) / nw
	partials := make([][]int64, 0, nw)
	var wg sync.WaitGroup
	for lo := 0; lo < len(idx); lo += chunk {
		hi := lo + chunk
		if hi > len(idx) {
			hi = len(idx)
		}
		p := GetInt64(len(counts))
		partials = append(partials, p)
		wg.Add(1)
		go func(dst []int64, rows []int32) {
			defer wg.Done()
			tabulateCatRange(dst, values, classes, rows, c)
		}(p, idx[lo:hi])
	}
	wg.Wait()
	for _, p := range partials {
		for i, v := range p {
			counts[i] += v
		}
		PutInt64(p)
	}
}

func tabulateCatRange(counts []int64, values []int32, classes []int32, idx []int32, c int) {
	for _, i := range idx {
		counts[int(values[i])*c+int(classes[i])]++
	}
}

// BinOf locates the bin of v among ascending boundary edges with the
// half-open convention shared by every module that bins continuous
// values: bin i is (edges[i-1], edges[i]], bin 0 is (-inf, edges[0]] and
// bin len(edges) is (edges[len-1], +inf). criteria.BinOf delegates here,
// so tree routing, per-node discretization and histogram collection all
// count and route a boundary value identically.
func BinOf(edges []float64, v float64) int {
	lo, hi := 0, len(edges)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= edges[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Validate reports a descriptive error for malformed specs; the builders
// construct specs programmatically, so this is a debugging aid, not a hot
// path.
func (sp *Spec) Validate() error {
	if sp.Classes <= 0 {
		return fmt.Errorf("kernel: spec has %d classes", sp.Classes)
	}
	for a, col := range sp.Attrs {
		if (col.Cat == nil) == (col.Cont == nil) {
			return fmt.Errorf("kernel: attr %d must set exactly one of Cat/Cont", a)
		}
		if col.Bins <= 0 {
			return fmt.Errorf("kernel: attr %d has %d bins", a, col.Bins)
		}
		if col.Cont != nil && len(col.Edges) != col.Bins-1 {
			return fmt.Errorf("kernel: attr %d has %d edges for %d bins", a, len(col.Edges), col.Bins)
		}
	}
	return nil
}
