package kernel

import (
	"math"
	"math/rand"
	"testing"
)

// TestVoteTopKTieBreak pins the deterministic tie-break: on equal gains
// the lower attribute index must be nominated — the rule every rank
// relies on for bit-identical elections.
func TestVoteTopKTieBreak(t *testing.T) {
	out := make([]int32, 2)

	// Four attributes, all with the same gain: the two lowest indices win.
	m := VoteTopK([]float64{0.5, 0.5, 0.5, 0.5}, 2, 0, out)
	if m != 2 || out[0] != 0 || out[1] != 1 {
		t.Fatalf("all-tied gains nominated %v (m=%d); want [0 1]", out, m)
	}

	// A strictly greater late gain evicts the weakest incumbent; among
	// tied incumbents the higher index goes first.
	m = VoteTopK([]float64{0.3, 0.3, 0.3, 0.9}, 2, 0, out)
	if m != 2 || out[0] != 0 || out[1] != 3 {
		t.Fatalf("eviction nominated %v (m=%d); want [0 3]", out, m)
	}

	// An equal late gain never evicts.
	out3 := make([]int32, 3)
	m = VoteTopK([]float64{0.3, 0.3, 0.3, 0.3, 0.3}, 3, 0, out3)
	if m != 3 || out3[0] != 0 || out3[1] != 1 || out3[2] != 2 {
		t.Fatalf("tied stream nominated %v (m=%d); want [0 1 2]", out3, m)
	}
}

// TestVoteTopKSentinels: NaN, -Inf, and gains at or below minGain are
// never nominated, and unused fixed-size slots read -1.
func TestVoteTopKSentinels(t *testing.T) {
	gains := []float64{math.NaN(), math.Inf(-1), 0.0, 0.2, 0.1}
	out := make([]int32, 4)
	m := VoteTopK(gains, 4, 0, out)
	if m != 2 {
		t.Fatalf("nominated %d attrs; want 2 (NaN/-Inf/0 excluded at minGain=0)", m)
	}
	if out[0] != 3 || out[1] != 4 {
		t.Fatalf("ballot %v; want [3 4 -1 -1]", out)
	}
	for i := m; i < 4; i++ {
		if out[i] != -1 {
			t.Fatalf("pad slot %d holds %d; want -1", i, out[i])
		}
	}
	if m := VoteTopK(gains, 0, 0, nil); m != 0 {
		t.Fatalf("k=0 nominated %d", m)
	}
}

// TestVoteTopKMatchesSort cross-checks the eviction scan against a
// straightforward sort-based reference on random gains.
func TestVoteTopKMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(40)
		k := 1 + rng.Intn(8)
		gains := make([]float64, n)
		for i := range gains {
			gains[i] = float64(rng.Intn(10)) / 10 // many ties on purpose
		}
		out := make([]int32, k)
		m := VoteTopK(gains, k, 0, out)

		// Reference: indices with gain > 0, ordered by (gain desc, idx asc),
		// first k, emitted ascending.
		var ref []int32
		for a := range gains {
			if gains[a] > 0 {
				ref = append(ref, int32(a))
			}
		}
		for i := 1; i < len(ref); i++ {
			for j := i; j > 0; j-- {
				a, b := ref[j-1], ref[j]
				if gains[b] > gains[a] || (gains[b] == gains[a] && b < a) {
					ref[j-1], ref[j] = b, a
				}
			}
		}
		if len(ref) > k {
			ref = ref[:k]
		}
		for i := 1; i < len(ref); i++ {
			for j := i; j > 0 && ref[j] < ref[j-1]; j-- {
				ref[j], ref[j-1] = ref[j-1], ref[j]
			}
		}
		if m != len(ref) {
			t.Fatalf("trial %d: m=%d want %d (gains %v k=%d)", trial, m, len(ref), gains, k)
		}
		for i := 0; i < m; i++ {
			if out[i] != ref[i] {
				t.Fatalf("trial %d: ballot %v want %v (gains %v k=%d)", trial, out[:m], ref, gains, k)
			}
		}
	}
}

// TestElectCandidatesPermutationInvariance: the election is a pure
// function of the multiset of ballots — any shuffling of the
// concatenated ballot slots yields the same winners, which is what makes
// the distributed election independent of rank arrival order.
func TestElectCandidatesPermutationInvariance(t *testing.T) {
	ballots := []int32{3, 7, -1, 3, 5, 7, 5, 3, 1, -1, -1, 9}
	const numAttrs, elect = 12, 4
	want := make([]int32, elect)
	wn := ElectCandidates(ballots, numAttrs, elect, want)

	rng := rand.New(rand.NewSource(9))
	got := make([]int32, elect)
	for trial := 0; trial < 50; trial++ {
		sh := append([]int32(nil), ballots...)
		rng.Shuffle(len(sh), func(i, j int) { sh[i], sh[j] = sh[j], sh[i] })
		gn := ElectCandidates(sh, numAttrs, elect, got)
		if gn != wn {
			t.Fatalf("shuffle %d elected %d attrs; want %d", trial, gn, wn)
		}
		for i := 0; i < wn; i++ {
			if got[i] != want[i] {
				t.Fatalf("shuffle %d elected %v; want %v", trial, got[:gn], want[:wn])
			}
		}
	}
}

// TestElectCandidatesTieBreak: equal vote counts resolve by ascending
// attribute index, zero-vote attributes are never elected, and the
// winner list is ascending.
func TestElectCandidatesTieBreak(t *testing.T) {
	// attrs 2, 5, 8 each get exactly one vote; budget 2 → the two lowest.
	out := make([]int32, 2)
	n := ElectCandidates([]int32{8, 5, 2, -1}, 10, 2, out)
	if n != 2 || out[0] != 2 || out[1] != 5 {
		t.Fatalf("elected %v (n=%d); want [2 5]", out, n)
	}
	// Vote counts dominate the tie-break: attr 9 with two votes beats them.
	n = ElectCandidates([]int32{8, 5, 9, 2, 9, -1}, 10, 2, out)
	if n != 2 || out[0] != 2 || out[1] != 9 {
		t.Fatalf("elected %v (n=%d); want [2 9]", out, n)
	}
	// All-empty ballots elect nothing.
	if n = ElectCandidates([]int32{-1, -1, -1}, 10, 2, out); n != 0 {
		t.Fatalf("empty ballots elected %d attrs", n)
	}
}

// TestVoteHotPathZeroAlloc: with pooled scratch, one nominate+elect
// round allocates nothing in steady state — the per-chunk hot path of
// every voted builder.
func TestVoteHotPathZeroAlloc(t *testing.T) {
	const numAttrs, k, elect = 256, 8, 16
	gains := GetFloat64(numAttrs)
	for i := range gains {
		gains[i] = float64((i*37)%101) / 100
	}
	ballot := GetInt32(k)
	elected := GetInt32(elect)

	avg := testing.AllocsPerRun(200, func() {
		m := VoteTopK(gains, k, 0, ballot)
		if m != k {
			t.Fatalf("nominated %d; want %d", m, k)
		}
		if n := ElectCandidates(ballot, numAttrs, elect, elected); n != k {
			t.Fatalf("elected %d; want %d", n, k)
		}
	})
	if avg != 0 {
		t.Fatalf("vote hot path allocates %.1f objects per round; want 0", avg)
	}
	PutInt32(elected)
	PutInt32(ballot)
	PutFloat64(gains)
}
