package kernel

import "math/bits"

// Statistics reuse. The synchronous formulation's cost is dominated deep in
// the tree by the per-level histogram volume C·A_d·M·2^L: every frontier
// node tabulates a full statistics block and the reduction ships all of
// them. Two standard remedies (Meng et al., "A Communication-Efficient
// Parallel Algorithm for Decision Tree") are implemented here and gated by
// Options:
//
//   - Sibling subtraction: a node's post-reduction block is the exact
//     element-wise sum of its kept children's blocks (children partition the
//     parent's rows globally, the spec is fixed per build, and the counts
//     are int64 — no precision or ordering concerns). Caching the parent's
//     block for one level therefore lets the next level tabulate all
//     children but one and derive the last as parent − Σ(tabulated
//     siblings), skipping its data pass and removing its block from the
//     reduction payload entirely.
//
//   - Sparse encoding: deep frontier blocks are mostly zeros (a node with a
//     handful of rows touches a handful of histogram cells), so a reduction
//     message can ship (index, count) pairs instead of the dense vector.
//     The choice is made per message from the actual density, so it never
//     needs cross-rank agreement.
//
// Both transforms are exact: the reduced totals, and therefore every split
// decision, are bit-identical to the disabled path. Only the modeled costs
// (fewer tabulate ops, smaller reduction payloads, plus explicit charges
// for the subtraction arithmetic) differ — that difference is the point.

// Options gates the statistics-reuse layer. The zero value disables
// everything, which keeps the default build path bit-identical — in trees,
// modeled costs, and wire traffic — to a build predating this layer.
type Options struct {
	// Subtraction enables the one-level parent-block cache and sibling
	// derivation.
	Subtraction bool
	// SparseThreshold enables adaptive sparse reduction encoding when > 0:
	// a message is sparse-encoded when its nonzero fraction is at or below
	// the threshold and the pair encoding is actually smaller. 0 disables
	// (every reduction takes the plain dense collective, bit-identical in
	// accounting to mp.Allreduce).
	SparseThreshold float64
}

// Enabled reports whether any part of the reuse layer is on.
func (o Options) Enabled() bool { return o.Subtraction || o.SparseThreshold > 0 }

// DefaultSparseThreshold is the density at which the sparse pair encoding
// (SparsePairBytes per nonzero) starts winning clearly over the dense
// encoding (DenseElemBytes per element): 12·nnz < 8·n ⇔ density < 2/3, so
// 0.5 leaves a comfortable margin.
const DefaultSparseThreshold = 0.5

// ReuseAll returns the fully-enabled configuration used by the benchmarks
// and the -reuse CLI flags.
func ReuseAll() Options {
	return Options{Subtraction: true, SparseThreshold: DefaultSparseThreshold}
}

// Wire sizes of the two reduction encodings: a dense element is one int64
// count; a sparse pair is an int32 index plus an int64 count.
const (
	DenseElemBytes  = 8
	SparsePairBytes = 12
)

// CountNonzero returns the number of nonzero elements of x.
func CountNonzero(x []int64) int {
	nnz := 0
	for _, v := range x {
		if v != 0 {
			nnz++
		}
	}
	return nnz
}

// SparseWorthwhile reports whether a block with nnz nonzeros out of n
// elements should be sparse-encoded under the given density threshold.
func SparseWorthwhile(nnz, n int, threshold float64) bool {
	return threshold > 0 && n > 0 &&
		float64(nnz) <= threshold*float64(n) &&
		SparsePairBytes*nnz < DenseElemBytes*n
}

// Family is one cached expansion: the parent's post-reduction statistics
// block and the node IDs of its kept children, in frontier order. Both
// slices are pool-owned by the cache; callers must not retain them past the
// next Reset.
type Family struct {
	Parent []int64
	Kids   []int64
}

// ReuseCache holds the post-reduction statistics blocks of one level's
// expanded nodes, keyed by the node ID of each family's first kept child —
// the position the family starts at in the next level's frontier. It is
// deliberately one level deep: a block is the parent of exactly the next
// frontier, and after that level expands the grandparent blocks can derive
// nothing further (the subtraction identity only relates a node to its
// direct children), so holding them would only pin memory.
//
// The cache is rank-local state derived deterministically from global
// (post-reduction) data, so every rank holds identical caches without any
// exchange. It must be dropped whenever the frontier the keys refer to is
// reshaped under the keys' feet: PTC processor-subset shuffles, hybrid
// repartitions, and checkpoint rollbacks all start from a nil cache.
type ReuseCache struct {
	fams map[int64]Family
	// free holds recycled buffers binned by power-of-two capacity, like
	// the package pool but with headers stored by value: the per-level
	// Reset→Store cycle of a long build must not allocate per family.
	free [maxPoolClass + 1][][]int64
}

// NewReuseCache returns an empty cache.
func NewReuseCache() *ReuseCache {
	return &ReuseCache{fams: make(map[int64]Family)}
}

func (rc *ReuseCache) get(n int) []int64 {
	class := bits.Len(uint(n - 1))
	if class <= maxPoolClass {
		if fl := rc.free[class]; len(fl) > 0 {
			s := fl[len(fl)-1][:n]
			rc.free[class] = fl[:len(fl)-1]
			clear(s)
			return s
		}
	}
	return GetInt64(n)
}

func (rc *ReuseCache) put(s []int64) {
	c := cap(s)
	if c == 0 || c&(c-1) != 0 {
		return
	}
	class := bits.Len(uint(c - 1))
	if class > maxPoolClass {
		return
	}
	rc.free[class] = append(rc.free[class], s[:0])
}

// Store records parent's post-reduction block (copied into pooled storage)
// for the family of children kidIDs. Returns the modeled op count of the
// copy.
func (rc *ReuseCache) Store(parent []int64, kidIDs []int64) int64 {
	p := rc.get(len(parent))
	copy(p, parent)
	k := rc.get(len(kidIDs))
	copy(k, kidIDs)
	rc.fams[kidIDs[0]] = Family{Parent: p, Kids: k}
	return int64(len(parent))
}

// Lookup returns the family whose first kept child has node ID firstKid.
// Safe on a nil cache.
func (rc *ReuseCache) Lookup(firstKid int64) (Family, bool) {
	if rc == nil {
		return Family{}, false
	}
	f, ok := rc.fams[firstKid]
	return f, ok
}

// Len returns the number of cached families.
func (rc *ReuseCache) Len() int {
	if rc == nil {
		return 0
	}
	return len(rc.fams)
}

// Reset recycles all cached storage onto the cache's freelist and empties
// the family map. Both are retained, so a pair of caches alternated across
// levels reaches a steady state that allocates nothing per family.
func (rc *ReuseCache) Reset() {
	if rc == nil {
		return
	}
	for k, f := range rc.fams {
		rc.put(f.Parent)
		rc.put(f.Kids)
		delete(rc.fams, k)
	}
}

// DeriveFrom starts a sibling derivation: dst = parent. Returns the modeled
// op count. Follow with one Subtract per tabulated sibling.
func DeriveFrom(dst, parent []int64) int64 {
	copy(dst, parent)
	return int64(len(parent))
}

// Subtract removes one tabulated sibling's block from a derivation in
// progress: dst -= sib, element-wise. Returns the modeled op count.
func Subtract(dst, sib []int64) int64 {
	for i, v := range sib {
		dst[i] -= v
	}
	return int64(len(sib))
}
