// Package discretize converts continuous attributes to discrete ones, in
// the two ways the paper uses:
//
//  1. Preprocessing: equal-width (or equal-frequency) binning applied once
//     to the whole training set — the paper's Figure 6/7 setting, with the
//     exact interval counts of §5 (salary 13, commission 14, age 6, hvalue
//     11, hyears 10, loan 20).
//  2. Per-node clustering, as in the SPEC classifier [23] the paper uses
//     for the Figure 8/9 experiments: at every node each continuous
//     attribute is discretized by a 1-D clustering of its values at that
//     node. Our NodeBinner realizes this with a fine fixed micro-histogram
//     (integer class counts, so the parallel reduction is exact and
//     order-independent) followed by a deterministic weighted 1-D k-means
//     over the micro-bin centers. Every processor runs the k-means on the
//     identical reduced histogram and obtains the identical bin edges —
//     the property the tree-identity invariant rests on.
package discretize

import (
	"fmt"
	"math"

	"partree/internal/criteria"
	"partree/internal/dataset"
)

// EqualWidthEdges returns the bins-1 interior boundaries of an equal-width
// binning of [lo, hi].
func EqualWidthEdges(lo, hi float64, bins int) []float64 {
	if bins < 2 {
		return nil
	}
	edges := make([]float64, bins-1)
	w := (hi - lo) / float64(bins)
	for i := range edges {
		edges[i] = lo + w*float64(i+1)
	}
	return edges
}

// EqualFrequencyEdges returns up to bins-1 boundaries placing roughly
// equal numbers of the given sorted values into each bin (duplicate
// boundaries are collapsed). Used by the quantile-discretization ablation.
func EqualFrequencyEdges(sorted []float64, bins int) []float64 {
	if bins < 2 || len(sorted) == 0 {
		return nil
	}
	var edges []float64
	for i := 1; i < bins; i++ {
		q := sorted[(len(sorted)-1)*i/bins]
		if len(edges) == 0 || q > edges[len(edges)-1] {
			edges = append(edges, q)
		}
	}
	return edges
}

// Recoder maps records under a fixed edge set, one at a time: each
// continuous attribute listed in the edges is replaced by a categorical
// attribute whose values are the bins defined by the shared half-open
// convention of criteria.BinOf; other attributes pass through. It is the
// streaming form of Apply, for paths where no whole dataset is ever
// resident (the out-of-core generator).
type Recoder struct {
	in, out *dataset.Schema
	edges   map[int][]float64
}

// NewRecoder builds a recoder for the given input schema and interior
// bin edges per (continuous) attribute index.
func NewRecoder(s *dataset.Schema, edges map[int][]float64) *Recoder {
	out := s.Clone()
	for a, e := range edges {
		if out.Attrs[a].Kind != dataset.Continuous {
			panic(fmt.Sprintf("discretize: attribute %d (%s) is not continuous", a, out.Attrs[a].Name))
		}
		values := make([]string, len(e)+1)
		for b := range values {
			switch {
			case len(e) == 0:
				values[b] = "(-inf,+inf)"
			case b == 0:
				values[b] = fmt.Sprintf("(-inf,%g]", e[0])
			case b == len(e):
				values[b] = fmt.Sprintf("(%g,+inf)", e[b-1])
			default:
				values[b] = fmt.Sprintf("(%g,%g]", e[b-1], e[b])
			}
		}
		out.Attrs[a] = dataset.Attribute{Name: out.Attrs[a].Name, Kind: dataset.Categorical, Values: values}
	}
	return &Recoder{in: s, out: out, edges: edges}
}

// UniformPaperRecoder builds a recoder with fixed equal-width bin counts
// over fixed value ranges (bin edges independent of the sample, so every
// processor recodes identically).
func UniformPaperRecoder(s *dataset.Schema, bins map[int]int, ranges map[int][2]float64) *Recoder {
	edges := make(map[int][]float64, len(bins))
	for a, b := range bins {
		r := ranges[a]
		edges[a] = EqualWidthEdges(r[0], r[1], b)
	}
	return NewRecoder(s, edges)
}

// Schema returns the recoded output schema.
func (r *Recoder) Schema() *dataset.Schema { return r.out }

// Recode maps one record of the input schema into dst (a record of the
// output schema).
func (r *Recoder) Recode(src dataset.Record, dst *dataset.Record) {
	for a, attr := range r.in.Attrs {
		if e, ok := r.edges[a]; ok {
			dst.Cat[a] = int32(criteria.BinOf(e, src.Cont[a]))
		} else if attr.Kind == dataset.Categorical {
			dst.Cat[a] = src.Cat[a]
		} else {
			dst.Cont[a] = src.Cont[a]
		}
	}
	dst.Class = src.Class
	dst.RID = src.RID
}

// Apply rewrites the dataset under the given edge map. Attributes not in
// the map are left untouched. Returns the recoded dataset with its new
// schema; the input is not modified.
func Apply(d *dataset.Dataset, edges map[int][]float64) *dataset.Dataset {
	rc := NewRecoder(d.Schema, edges)
	out := dataset.New(rc.Schema(), d.Len())
	rec := dataset.NewRecord(rc.Schema())
	src := dataset.NewRecord(d.Schema)
	for i := 0; i < d.Len(); i++ {
		d.RowInto(i, &src)
		rc.Recode(src, &rec)
		out.Append(rec)
	}
	return out
}

// UniformPaper discretizes a Quest dataset with fixed equal-width bin
// counts over fixed value ranges (bin edges independent of the sample, so
// every processor recodes identically).
func UniformPaper(d *dataset.Dataset, bins map[int]int, ranges map[int][2]float64) *dataset.Dataset {
	edges := make(map[int][]float64, len(bins))
	for a, b := range bins {
		r := ranges[a]
		edges[a] = EqualWidthEdges(r[0], r[1], b)
	}
	return Apply(d, edges)
}

// Method selects how a NodeBinner turns a node's micro-histogram into
// bins.
type Method int

const (
	// KMeans is the SPEC-style clustering discretization the paper uses
	// for its Figure 8/9 experiments (deterministic weighted 1-D k-means).
	KMeans Method = iota
	// Quantile places bin boundaries at the weighted K-quantiles of the
	// node's distribution — the per-node quantile discretization of
	// Alsabti, Ranka & Singh that §3.4 cites as the other at-every-node
	// approach. Same communication pattern, different boundary rule.
	Quantile
)

// String names the method.
func (m Method) String() string {
	if m == Quantile {
		return "quantile"
	}
	return "kmeans"
}

// NodeBinner performs per-node discretization of continuous attributes
// from fixed micro-histograms.
type NodeBinner struct {
	// MicroBins is the resolution of the fixed histogram each processor
	// builds per (node, continuous attribute); its class-count matrix is
	// what the synchronous reduction exchanges.
	MicroBins int
	// K is the number of clusters (final bins) per node.
	K int
	// Ranges[a] is the global [min, max] of continuous attribute a,
	// established once before building (a single min/max allreduce).
	Ranges [][2]float64
	// Method selects the boundary rule (default KMeans).
	Method Method
}

// MicroEdges returns the MicroBins-1 fixed boundaries for attribute a.
func (nb *NodeBinner) MicroEdges(a int) []float64 {
	r := nb.Ranges[a]
	return EqualWidthEdges(r[0], r[1], nb.MicroBins)
}

// MicroCenters returns the representative value of each micro bin (bin
// midpoints; the two unbounded outer bins use the range endpoints).
func (nb *NodeBinner) MicroCenters(a int) []float64 {
	r := nb.Ranges[a]
	w := (r[1] - r[0]) / float64(nb.MicroBins)
	centers := make([]float64, nb.MicroBins)
	for i := range centers {
		centers[i] = r[0] + w*(float64(i)+0.5)
	}
	return centers
}

// MicroHist tabulates the class distribution of rows idx over the micro
// bins of continuous attribute a.
func (nb *NodeBinner) MicroHist(d *dataset.Dataset, idx []int32, a, numClasses int) *criteria.Hist {
	edges := nb.MicroEdges(a)
	h := criteria.NewHist(nb.MicroBins, numClasses)
	col := d.Cont[a]
	for _, i := range idx {
		h.Add(int32(criteria.BinOf(edges, col[i])), d.Class[i])
	}
	return h
}

// kmeansIterations bounds the Lloyd iterations; with ≤ a few hundred
// weighted points, convergence is fast and a fixed bound keeps the cost
// model deterministic.
const kmeansIterations = 12

// Edges clusters the (already globally reduced) micro-histogram of
// attribute a into at most K bins and returns the resulting bin
// boundaries, snapped to micro-bin edges so that routing and counting
// agree exactly. It also returns the micro-bin → cluster assignment used
// to aggregate the histogram. Deterministic: identical input counts give
// identical edges on every processor.
func (nb *NodeBinner) Edges(micro *criteria.Hist, a int) ([]float64, []int) {
	centers := nb.MicroCenters(a)
	weights := make([]int64, micro.M)
	var total int64
	occupied := 0
	for b := 0; b < micro.M; b++ {
		weights[b] = micro.ValueTotal(b)
		total += weights[b]
		if weights[b] > 0 {
			occupied++
		}
	}
	assign := make([]int, micro.M)
	if total == 0 || occupied <= 1 {
		return nil, assign // single bin
	}
	k := nb.K
	if occupied < k {
		k = occupied
	}
	if nb.Method == Quantile {
		return nb.quantileEdges(weights, total, k, a, assign)
	}
	centroids := initialCentroids(centers, weights, total, k)
	for it := 0; it < kmeansIterations; it++ {
		assignClusters(assign, centers, centroids)
		if !updateCentroids(centroids, assign, centers, weights) {
			break
		}
	}
	assignClusters(assign, centers, centroids)
	normalizeAssignment(assign)
	// Boundaries at assignment changes, snapped to micro edges.
	microEdges := nb.MicroEdges(a)
	var edges []float64
	for b := 0; b+1 < micro.M; b++ {
		if assign[b+1] != assign[b] {
			edges = append(edges, microEdges[b])
		}
	}
	return edges, assign
}

// quantileEdges places the bin boundaries after the micro bins where the
// cumulative weight crosses each j·total/k quantile (boundaries snapped
// to micro edges, duplicates collapsed). Deterministic on identical
// counts, like the k-means path.
func (nb *NodeBinner) quantileEdges(weights []int64, total int64, k int, a int, assign []int) ([]float64, []int) {
	microEdges := nb.MicroEdges(a)
	var cum int64
	nextQ := 1
	var edges []float64
	cur := 0
	for b := range weights {
		assign[b] = cur
		cum += weights[b]
		for nextQ < k && cum >= total*int64(nextQ)/int64(k) {
			nextQ++
			if b+1 < len(weights) && remainingWeight(weights, b+1) > 0 {
				edges = append(edges, microEdges[b])
				cur++
				break
			}
		}
	}
	normalizeAssignment(assign)
	return edges, assign
}

// remainingWeight reports whether any records sit at or after micro bin b.
func remainingWeight(weights []int64, b int) int64 {
	var s int64
	for ; b < len(weights); b++ {
		s += weights[b]
	}
	return s
}

// initialCentroids seeds k centroids at the weighted quantiles of the
// micro distribution.
func initialCentroids(centers []float64, weights []int64, total int64, k int) []float64 {
	centroids := make([]float64, k)
	var cum int64
	b := 0
	for j := 0; j < k; j++ {
		target := int64(math.Ceil(float64(total) * (float64(j) + 0.5) / float64(k)))
		for b < len(centers)-1 && cum+weights[b] < target {
			cum += weights[b]
			b++
		}
		centroids[j] = centers[b]
	}
	return centroids
}

// assignClusters maps each micro bin to its nearest centroid (ties to the
// lower centroid index). In 1-D with sorted centroids the assignment is
// monotone non-decreasing in the bin index.
func assignClusters(assign []int, centers []float64, centroids []float64) {
	j := 0
	for b := range centers {
		for j+1 < len(centroids) &&
			math.Abs(centroids[j+1]-centers[b]) < math.Abs(centroids[j]-centers[b]) {
			j++
		}
		assign[b] = j
	}
}

// updateCentroids recomputes each centroid as the weighted mean of its
// bins; empty clusters keep their position. Returns whether any centroid
// moved.
func updateCentroids(centroids []float64, assign []int, centers []float64, weights []int64) bool {
	k := len(centroids)
	sums := make([]float64, k)
	counts := make([]int64, k)
	for b, j := range assign {
		sums[j] += centers[b] * float64(weights[b])
		counts[j] += weights[b]
	}
	moved := false
	for j := 0; j < k; j++ {
		if counts[j] > 0 {
			nc := sums[j] / float64(counts[j])
			if nc != centroids[j] {
				centroids[j] = nc
				moved = true
			}
		}
	}
	return moved
}

// normalizeAssignment renumbers the (monotone non-decreasing) cluster ids
// to consecutive 0..m-1 in left-to-right order; clusters that received no
// micro bins disappear.
func normalizeAssignment(assign []int) {
	if len(assign) == 0 {
		return
	}
	next := 0
	prevRaw := assign[0]
	assign[0] = 0
	for b := 1; b < len(assign); b++ {
		raw := assign[b]
		if raw != prevRaw {
			next++
			prevRaw = raw
		}
		assign[b] = next
	}
}

// Aggregate folds a micro histogram into the clustered bins.
func Aggregate(micro *criteria.Hist, assign []int) *criteria.Hist {
	k := 0
	for _, j := range assign {
		if j+1 > k {
			k = j + 1
		}
	}
	if k == 0 {
		k = 1
	}
	out := criteria.NewHist(k, micro.C)
	for b := 0; b < micro.M; b++ {
		row := micro.Row(b)
		dst := out.Row(assign[b])
		for c, n := range row {
			dst[c] += n
		}
	}
	return out
}
