package discretize

import (
	"math/rand/v2"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"partree/internal/criteria"
	"partree/internal/dataset"
	"partree/internal/quest"
)

func TestEqualWidthEdges(t *testing.T) {
	edges := EqualWidthEdges(0, 100, 4)
	if !reflect.DeepEqual(edges, []float64{25, 50, 75}) {
		t.Fatalf("edges %v", edges)
	}
	if EqualWidthEdges(0, 1, 1) != nil {
		t.Fatal("single bin needs no edges")
	}
	// Paper bins: salary 13 equal intervals over [20k, 150k].
	edges = EqualWidthEdges(20000, 150000, 13)
	if len(edges) != 12 {
		t.Fatalf("13 bins need 12 edges, got %d", len(edges))
	}
	if edges[2] != 50000 || edges[7] != 100000 {
		t.Fatalf("paper salary bin boundaries wrong: %v", edges)
	}
	for i := 1; i < len(edges); i++ {
		if edges[i] <= edges[i-1] {
			t.Fatal("edges not strictly increasing")
		}
	}
}

func TestEqualFrequencyEdges(t *testing.T) {
	sorted := []float64{1, 1, 1, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	edges := EqualFrequencyEdges(sorted, 4)
	if len(edges) == 0 || len(edges) > 3 {
		t.Fatalf("edges %v", edges)
	}
	for i := 1; i < len(edges); i++ {
		if edges[i] <= edges[i-1] {
			t.Fatalf("duplicate or descending edges %v", edges)
		}
	}
	if EqualFrequencyEdges(nil, 3) != nil {
		t.Fatal("empty input must yield no edges")
	}
}

func TestApplyRecodesConsistently(t *testing.T) {
	d, err := quest.Generate(quest.Config{Function: 2, Seed: 3}, 500)
	if err != nil {
		t.Fatal(err)
	}
	out := UniformPaper(d, quest.PaperBins(), quest.Ranges())
	if err := out.Schema.Validate(); err != nil {
		t.Fatal(err)
	}
	if out.Schema.NumContinuous() != 0 {
		t.Fatal("continuous attributes remain after discretization")
	}
	if out.Len() != d.Len() {
		t.Fatal("row count changed")
	}
	// Every recoded value equals BinOf of the raw value over the same edges.
	bins := quest.PaperBins()
	ranges := quest.Ranges()
	for a, b := range bins {
		edges := EqualWidthEdges(ranges[a][0], ranges[a][1], b)
		if out.Schema.Attrs[a].Cardinality() != b {
			t.Fatalf("attr %d has %d values, want %d", a, out.Schema.Attrs[a].Cardinality(), b)
		}
		for i := 0; i < d.Len(); i++ {
			if int(out.Cat[a][i]) != criteria.BinOf(edges, d.Cont[a][i]) {
				t.Fatalf("attr %d row %d recoded inconsistently", a, i)
			}
		}
	}
	// Untouched columns are preserved.
	for i := 0; i < d.Len(); i++ {
		if out.Cat[quest.Car][i] != d.Cat[quest.Car][i] || out.Class[i] != d.Class[i] || out.RID[i] != d.RID[i] {
			t.Fatal("categorical column, class or rid corrupted")
		}
	}
}

func testBinner() *NodeBinner {
	return &NodeBinner{MicroBins: 16, K: 4, Ranges: [][2]float64{{0, 160}}}
}

func TestMicroHistAndEdges(t *testing.T) {
	nb := testBinner()
	s := &dataset.Schema{
		Attrs:   []dataset.Attribute{{Name: "v", Kind: dataset.Continuous}},
		Classes: []string{"a", "b"},
	}
	d := dataset.New(s, 0)
	rec := dataset.NewRecord(s)
	// Two well-separated clumps: around 20 and around 140.
	for i := 0; i < 50; i++ {
		rec.Cont[0] = 15 + float64(i%10)
		rec.Class = 0
		rec.RID = int64(i)
		d.Append(rec)
		rec.Cont[0] = 135 + float64(i%10)
		rec.Class = 1
		rec.RID = int64(100 + i)
		d.Append(rec)
	}
	micro := nb.MicroHist(d, d.AllIndex(), 0, 2)
	if micro.Total() != 100 {
		t.Fatalf("micro total %d", micro.Total())
	}
	edges, assign := nb.Edges(micro, 0)
	if len(edges) == 0 {
		t.Fatal("no edges for clearly separable data")
	}
	// Some edge must separate the clumps (between 25 and 135).
	sep := false
	for _, e := range edges {
		if e > 25 && e < 135 {
			sep = true
		}
	}
	if !sep {
		t.Fatalf("no separating edge in %v", edges)
	}
	// Assignment must be monotone non-decreasing and dense from 0.
	prev := 0
	for b, a := range assign {
		if a < prev || a > prev+1 {
			t.Fatalf("assignment not monotone/dense at bin %d: %v", b, assign)
		}
		prev = a
	}
	agg := Aggregate(micro, assign)
	if agg.Total() != micro.Total() {
		t.Fatal("aggregation lost counts")
	}
	if agg.M != len(edges)+1 {
		t.Fatalf("aggregated bins %d vs %d edges", agg.M, len(edges))
	}
}

func TestEdgesDegenerateCases(t *testing.T) {
	nb := testBinner()
	empty := criteria.NewHist(nb.MicroBins, 2)
	edges, assign := nb.Edges(empty, 0)
	if edges != nil {
		t.Fatal("edges for empty histogram")
	}
	if len(assign) != nb.MicroBins {
		t.Fatal("assignment length wrong")
	}
	single := criteria.NewHist(nb.MicroBins, 2)
	for i := 0; i < 10; i++ {
		single.Add(5, int32(i%2))
	}
	if e, _ := nb.Edges(single, 0); e != nil {
		t.Fatal("edges for single-bin histogram")
	}
}

func TestEdgesDeterministic(t *testing.T) {
	nb := testBinner()
	rng := rand.New(rand.NewPCG(11, 3))
	h := criteria.NewHist(nb.MicroBins, 2)
	for i := 0; i < 500; i++ {
		h.Add(int32(rng.IntN(nb.MicroBins)), int32(rng.IntN(2)))
	}
	e1, a1 := nb.Edges(h, 0)
	e2, a2 := nb.Edges(h, 0)
	if !reflect.DeepEqual(e1, e2) || !reflect.DeepEqual(a1, a2) {
		t.Fatal("Edges is not deterministic on identical input")
	}
}

func TestEdgesRespectKProperty(t *testing.T) {
	f := func(seed uint64, kRaw uint8) bool {
		k := 2 + int(kRaw)%6
		nb := &NodeBinner{MicroBins: 24, K: k, Ranges: [][2]float64{{-10, 50}}}
		rng := rand.New(rand.NewPCG(seed, 1))
		h := criteria.NewHist(nb.MicroBins, 3)
		n := rng.IntN(300)
		for i := 0; i < n; i++ {
			h.Add(int32(rng.IntN(nb.MicroBins)), int32(rng.IntN(3)))
		}
		edges, assign := nb.Edges(h, 0)
		if len(edges) > k-1 {
			return false
		}
		// Edges must be a subset of the micro edges and strictly ascending.
		micro := nb.MicroEdges(0)
		for i, e := range edges {
			if i > 0 && e <= edges[i-1] {
				return false
			}
			found := false
			for _, me := range micro {
				if me == e {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		// Aggregate conserves mass.
		return Aggregate(h, assign).Total() == h.Total()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestBinOfAgreesWithRecode(t *testing.T) {
	// The half-open convention must agree between Apply and criteria.BinOf
	// even exactly on boundaries.
	s := &dataset.Schema{
		Attrs:   []dataset.Attribute{{Name: "v", Kind: dataset.Continuous}},
		Classes: []string{"a"},
	}
	d := dataset.New(s, 0)
	rec := dataset.NewRecord(s)
	values := []float64{0, 25, 25.0001, 50, 74.9999, 75, 100}
	for i, v := range values {
		rec.Cont[0] = v
		rec.RID = int64(i)
		d.Append(rec)
	}
	edges := EqualWidthEdges(0, 100, 4)
	out := Apply(d, map[int][]float64{0: edges})
	for i, v := range values {
		if int(out.Cat[0][i]) != criteria.BinOf(edges, v) {
			t.Fatalf("value %v recoded to %d, BinOf says %d", v, out.Cat[0][i], criteria.BinOf(edges, v))
		}
	}
}

func TestEqualFrequencyMonotoneProperty(t *testing.T) {
	f := func(raw []float64, binsRaw uint8) bool {
		bins := 2 + int(binsRaw)%10
		vals := make([]float64, 0, len(raw))
		for _, v := range raw {
			if v == v { // drop NaN
				vals = append(vals, v)
			}
		}
		sort.Float64s(vals)
		edges := EqualFrequencyEdges(vals, bins)
		if len(edges) > bins-1 {
			return false
		}
		for i := 1; i < len(edges); i++ {
			if edges[i] <= edges[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantileEdges(t *testing.T) {
	nb := &NodeBinner{MicroBins: 16, K: 4, Ranges: [][2]float64{{0, 160}}, Method: Quantile}
	h := criteria.NewHist(16, 2)
	// Uniform mass: 10 records per micro bin.
	for b := 0; b < 16; b++ {
		for i := 0; i < 10; i++ {
			h.Add(int32(b), int32(i%2))
		}
	}
	edges, assign := nb.Edges(h, 0)
	if len(edges) != 3 {
		t.Fatalf("uniform mass with K=4 should give 3 edges, got %v", edges)
	}
	// Quartile boundaries of a uniform distribution on [0,160): 40, 80, 120.
	want := []float64{40, 80, 120}
	for i, e := range edges {
		if e != want[i] {
			t.Fatalf("edges %v, want %v", edges, want)
		}
	}
	agg := Aggregate(h, assign)
	if agg.Total() != h.Total() || agg.M != 4 {
		t.Fatalf("aggregation wrong: M=%d total=%d", agg.M, agg.Total())
	}
	// Each quartile bin must hold a quarter of the mass.
	for v := 0; v < 4; v++ {
		if agg.ValueTotal(v) != 40 {
			t.Fatalf("bin %d holds %d records, want 40", v, agg.ValueTotal(v))
		}
	}
}

func TestQuantileEdgesSkewedMass(t *testing.T) {
	nb := &NodeBinner{MicroBins: 16, K: 4, Ranges: [][2]float64{{0, 160}}, Method: Quantile}
	h := criteria.NewHist(16, 2)
	// All mass in the first two micro bins plus a tail.
	for i := 0; i < 100; i++ {
		h.Add(0, 0)
		h.Add(1, 1)
	}
	h.Add(15, 0)
	edges, assign := nb.Edges(h, 0)
	if len(edges) == 0 {
		t.Fatal("no edges for separable skewed mass")
	}
	for i := 1; i < len(edges); i++ {
		if edges[i] <= edges[i-1] {
			t.Fatalf("edges not ascending: %v", edges)
		}
	}
	if Aggregate(h, assign).Total() != h.Total() {
		t.Fatal("mass lost")
	}
}

func TestQuantileDeterministic(t *testing.T) {
	nb := &NodeBinner{MicroBins: 24, K: 5, Ranges: [][2]float64{{-1, 1}}, Method: Quantile}
	rng := rand.New(rand.NewPCG(9, 9))
	h := criteria.NewHist(24, 3)
	for i := 0; i < 400; i++ {
		h.Add(int32(rng.IntN(24)), int32(rng.IntN(3)))
	}
	e1, a1 := nb.Edges(h, 0)
	e2, a2 := nb.Edges(h, 0)
	if !reflect.DeepEqual(e1, e2) || !reflect.DeepEqual(a1, a2) {
		t.Fatal("quantile edges not deterministic")
	}
}
