package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"partree/internal/dataset"
	"partree/internal/quest"
	"partree/internal/serve"
	"partree/internal/tree"
)

// modelJSON trains a small tree on function-2 data and serializes it.
func modelJSON(t *testing.T, seed uint64) []byte {
	t.Helper()
	d, err := quest.Generate(quest.Config{Function: 2, Seed: seed}, 2000)
	if err != nil {
		t.Fatal(err)
	}
	tr := tree.BuildHunt(d, tree.Options{Binary: true, MaxDepth: 8})
	var buf bytes.Buffer
	if err := tree.WriteJSON(&buf, tr); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// recordsJSON renders rows of d as the request's record objects.
func recordsJSON(d *dataset.Dataset, lo, hi int) []map[string]interface{} {
	out := make([]map[string]interface{}, 0, hi-lo)
	for i := lo; i < hi; i++ {
		rec := make(map[string]interface{}, d.Schema.NumAttrs())
		for a, attr := range d.Schema.Attrs {
			if attr.Kind == dataset.Categorical {
				rec[attr.Name] = attr.Values[d.Cat[a][i]]
			} else {
				rec[attr.Name] = d.Cont[a][i]
			}
		}
		out = append(out, rec)
	}
	return out
}

func predictBody(t *testing.T, model string, records []map[string]interface{}) *bytes.Reader {
	t.Helper()
	b, err := json.Marshal(map[string]interface{}{"model": model, "records": records})
	if err != nil {
		t.Fatal(err)
	}
	return bytes.NewReader(b)
}

type predictReply struct {
	Model      string   `json:"model"`
	Generation int      `json:"generation"`
	N          int      `json:"n"`
	Labels     []string `json:"labels"`
	ClassIDs   []int32  `json:"class_ids"`
}

func newTestServer(t *testing.T) (*serve.Server, *httptest.Server, *dataset.Dataset) {
	t.Helper()
	srv := serve.New(serve.Config{MaxBatch: 500, Workers: 4})
	t.Cleanup(srv.Close)
	if _, err := srv.Registry().Load("quest", bytes.NewReader(modelJSON(t, 1))); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	d, err := quest.Generate(quest.Config{Function: 2, Seed: 99}, 600)
	if err != nil {
		t.Fatal(err)
	}
	return srv, ts, d
}

func TestPredictEndpoint(t *testing.T) {
	srv, ts, d := newTestServer(t)
	resp, err := http.Post(ts.URL+"/v1/predict", "application/json",
		predictBody(t, "quest", recordsJSON(d, 0, 100)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var pr predictReply
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	if pr.N != 100 || len(pr.Labels) != 100 || len(pr.ClassIDs) != 100 {
		t.Fatalf("malformed reply: %+v", pr)
	}
	// Predictions must match the registered model evaluated directly.
	e := srv.Registry().Get("quest")
	for i := 0; i < 100; i++ {
		rec := d.Row(i)
		if want := e.Model.PredictRecord(&rec); pr.ClassIDs[i] != want {
			t.Fatalf("record %d: server predicts %d, model %d", i, pr.ClassIDs[i], want)
		}
		if pr.Labels[i] != e.Model.Schema.Classes[pr.ClassIDs[i]] {
			t.Fatalf("record %d: label %q does not match class id %d", i, pr.Labels[i], pr.ClassIDs[i])
		}
	}
}

func TestPredictGuards(t *testing.T) {
	_, ts, d := newTestServer(t)
	post := func(body io.Reader) *http.Response {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/predict", "application/json", body)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}
	if resp := post(strings.NewReader("{not json")); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage body: status %d", resp.StatusCode)
	}
	if resp := post(predictBody(t, "nope", recordsJSON(d, 0, 1))); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown model: status %d", resp.StatusCode)
	}
	if resp := post(predictBody(t, "quest", recordsJSON(d, 0, 501))); resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized batch: status %d", resp.StatusCode)
	}
	if resp := post(predictBody(t, "quest", nil)); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty batch: status %d", resp.StatusCode)
	}
	bad := recordsJSON(d, 0, 1)
	delete(bad[0], "salary")
	if resp := post(predictBody(t, "quest", bad)); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing attribute: status %d", resp.StatusCode)
	}
	bad = recordsJSON(d, 0, 1)
	bad[0]["car"] = "made-up-make"
	if resp := post(predictBody(t, "quest", bad)); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown categorical value: status %d", resp.StatusCode)
	}
	bad = recordsJSON(d, 0, 1)
	bad[0]["salary"] = "a string"
	if resp := post(predictBody(t, "quest", bad)); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("non-numeric continuous value: status %d", resp.StatusCode)
	}
}

func TestHealthzMetricsAndListing(t *testing.T) {
	_, ts, d := newTestServer(t)
	if resp, err := http.Post(ts.URL+"/v1/predict", "application/json",
		predictBody(t, "quest", recordsJSON(d, 0, 10))); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status string `json:"status"`
		Models int    `json:"models"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health.Status != "ok" || health.Models != 1 {
		t.Fatalf("healthz: %+v", health)
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"dtserve_http_requests_total",
		"dtserve_pool_rows_total 10",
		`dtserve_model_rows_total{model="quest"} 10`,
		`dtserve_model_generation{model="quest"} 1`,
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("metrics missing %q:\n%s", want, metrics)
		}
	}

	resp, err = http.Get(ts.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	var listing struct {
		Models []map[string]interface{} `json:"models"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(listing.Models) != 1 || listing.Models[0]["name"] != "quest" {
		t.Fatalf("listing: %+v", listing)
	}
}

// TestConcurrentPredictDuringHotSwap is the acceptance scenario: clients
// hammer POST /v1/predict while the model is hot-swapped repeatedly.
// Every request must succeed against a consistent model generation; run
// under -race this also proves the registry/engine synchronization.
func TestConcurrentPredictDuringHotSwap(t *testing.T) {
	_, ts, d := newTestServer(t)
	m1, m2 := modelJSON(t, 1), modelJSON(t, 2)
	records := recordsJSON(d, 0, 200)

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	maxGen := 1 + 6 // initial load + swaps below
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 15; iter++ {
				resp, err := http.Post(ts.URL+"/v1/predict", "application/json",
					predictBody(t, "quest", records))
				if err != nil {
					errs <- err
					return
				}
				var pr predictReply
				err = json.NewDecoder(resp.Body).Decode(&pr)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				if resp.StatusCode != http.StatusOK || pr.N != len(records) {
					errs <- fmt.Errorf("status %d, n %d", resp.StatusCode, pr.N)
					return
				}
				if pr.Generation < 1 || pr.Generation > maxGen {
					errs <- fmt.Errorf("impossible generation %d", pr.Generation)
					return
				}
			}
		}()
	}
	// Hot-swap the model back and forth while the clients run.
	client := &http.Client{}
	for i := 0; i < 6; i++ {
		body := m1
		if i%2 == 0 {
			body = m2
		}
		req, err := http.NewRequest(http.MethodPut, ts.URL+"/v1/models/quest", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("swap %d: status %d", i, resp.StatusCode)
		}
		time.Sleep(5 * time.Millisecond)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestLoadModelRejectsHostileFiles: the registry must surface ReadJSON's
// validation errors, not register a broken model.
func TestLoadModelRejectsHostileFiles(t *testing.T) {
	_, ts, _ := newTestServer(t)
	for name, body := range map[string]string{
		"garbage":      "ceci n'est pas un modèle",
		"wrong-format": `{"format": "something-else", "version": 1}`,
	} {
		req, err := http.NewRequest(http.MethodPut, ts.URL+"/v1/models/evil", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	var listing struct {
		Models []map[string]interface{} `json:"models"`
	}
	json.NewDecoder(resp.Body).Decode(&listing)
	resp.Body.Close()
	if len(listing.Models) != 1 {
		t.Fatalf("hostile load registered a model: %+v", listing)
	}
}

// TestGracefulShutdown starts a real listener, puts a request in flight,
// cancels the serve context mid-request, and requires both that the
// in-flight request completes successfully and that Serve returns only
// after the drain.
func TestGracefulShutdown(t *testing.T) {
	srv := serve.New(serve.Config{Workers: 2, ShutdownGrace: 5 * time.Second})
	defer srv.Close()
	if _, err := srv.Registry().Load("quest", bytes.NewReader(modelJSON(t, 1))); err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ctx, l) }()
	url := "http://" + l.Addr().String()

	// A large batch keeps the request in flight across the cancel below.
	d, err := quest.Generate(quest.Config{Function: 2, Seed: 5}, 40000)
	if err != nil {
		t.Fatal(err)
	}
	body := predictBody(t, "quest", recordsJSON(d, 0, d.Len()))
	type result struct {
		status int
		n      int
		err    error
	}
	resc := make(chan result, 1)
	go func() {
		resp, err := http.Post(url+"/v1/predict", "application/json", body)
		if err != nil {
			resc <- result{err: err}
			return
		}
		var pr predictReply
		err = json.NewDecoder(resp.Body).Decode(&pr)
		resp.Body.Close()
		resc <- result{status: resp.StatusCode, n: pr.N, err: err}
	}()

	time.Sleep(20 * time.Millisecond) // let the request get in flight
	cancel()

	r := <-resc
	if r.err != nil {
		t.Fatalf("in-flight request dropped during shutdown: %v", r.err)
	}
	if r.status != http.StatusOK || r.n != d.Len() {
		t.Fatalf("in-flight request: status %d, n %d (want 200, %d)", r.status, r.n, d.Len())
	}
	if err := <-served; err != nil {
		t.Fatalf("Serve returned error: %v", err)
	}
	// The listener is closed: new requests must be refused, not hang.
	if _, err := http.Get(url + "/healthz"); err == nil {
		t.Fatal("server still accepting connections after shutdown")
	}
}
