package serve_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"partree/internal/serve"
)

// TestChecksumSidecarRoundtrip: a file verifies against the sidecar its
// writer produced; one flipped byte in the file is rejected with the
// typed mismatch error; a file with no sidecar verifies trivially.
func TestChecksumSidecarRoundtrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.json")
	body := modelJSON(t, 3)
	if err := os.WriteFile(path, body, 0o644); err != nil {
		t.Fatal(err)
	}

	verified, err := serve.VerifyFileChecksum(path)
	if err != nil || verified {
		t.Fatalf("no sidecar: VerifyFileChecksum = (%v, %v), want (false, nil)", verified, err)
	}

	if err := serve.WriteChecksumFile(path); err != nil {
		t.Fatal(err)
	}
	verified, err = serve.VerifyFileChecksum(path)
	if err != nil || !verified {
		t.Fatalf("fresh sidecar: VerifyFileChecksum = (%v, %v), want (true, nil)", verified, err)
	}

	// Rot one byte of the model after the sidecar was written.
	body[len(body)/2] ^= 0x01
	if err := os.WriteFile(path, body, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := serve.VerifyFileChecksum(path); !errors.Is(err, serve.ErrChecksumMismatch) {
		t.Fatalf("corrupt file passed verification: err = %v", err)
	}

	// A garbled sidecar is a mismatch too, not a silent pass.
	if err := os.WriteFile(path+serve.ChecksumSuffix, []byte("not-a-digest\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := serve.VerifyFileChecksum(path); !errors.Is(err, serve.ErrChecksumMismatch) {
		t.Fatalf("garbled sidecar passed verification: err = %v", err)
	}
}

// TestDegradedStateSurfaced: a degraded mark flips /healthz to "degraded"
// and shows up in /metrics without taking the server down; a later
// successful load of the name clears it.
func TestDegradedStateSurfaced(t *testing.T) {
	srv := serve.New(serve.Config{Workers: 2})
	t.Cleanup(srv.Close)
	srv.Registry().SetDegraded("grove", "model file checksum mismatch")
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hz struct {
		Status   string            `json:"status"`
		Degraded map[string]string `json:"degraded"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded healthz status = %d, want 200 (alive, not failing the probe)", resp.StatusCode)
	}
	if hz.Status != "degraded" || !strings.Contains(hz.Degraded["grove"], "checksum") {
		t.Fatalf("healthz = %+v, want degraded with the grove reason", hz)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(string(mb), "dtserve_models_degraded 1") ||
		!strings.Contains(string(mb), `dtserve_model_degraded{model="grove"} 1`) {
		t.Fatalf("metrics missing degraded gauges:\n%s", mb)
	}

	// Repairing the model (a successful load under the name) clears the mark.
	if _, err := srv.Registry().Load("grove", bytes.NewReader(modelJSON(t, 4))); err != nil {
		t.Fatal(err)
	}
	if deg := srv.Registry().Degraded(); len(deg) != 0 {
		t.Fatalf("successful load left degraded marks: %v", deg)
	}
	resp2, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hz2 struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&hz2); err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if hz2.Status != "ok" {
		t.Fatalf("healthz after repair = %q, want ok", hz2.Status)
	}
}
