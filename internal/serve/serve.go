// Package serve is the model-serving layer: a named registry of compiled
// decision trees with atomic hot-swap, and an HTTP JSON API over the
// batched prediction engine. It turns the repository from a
// training-only reproduction into the north-star serving system — load a
// tree-JSON model trained by cmd/dtree, POST record batches at it, swap
// in a retrained model under live traffic without dropping a request.
//
// Endpoints (cmd/dtserve wires them to a listener):
//
//	POST /v1/predict          {"model": name, "records": [{attr: value, ...}]}
//	PUT  /v1/models/{name}    body = tree-JSON model file; load or hot-swap
//	GET  /v1/models           registry listing
//	GET  /healthz             liveness + model count
//	GET  /metrics             registry and engine counters, Prometheus text format
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"partree/internal/dataset"
	"partree/internal/flat"
	"partree/internal/predict"
	"partree/internal/tree"
)

// Entry is one registered model: the compiled table plus the engine
// serving it. Entries are immutable after registration; a hot-swap
// replaces the whole entry, so in-flight requests holding the old one
// finish against a consistent model.
type Entry struct {
	Name       string
	Model      *flat.Model
	Engine     *predict.Engine
	Generation int // 1 on first load, +1 per swap
	LoadedAt   time.Time
}

// Registry maps model names to entries. All methods are safe for
// concurrent use; Get is a read-lock lookup so predictions scale across
// clients while swaps are rare writers.
type Registry struct {
	pool   *predict.Pool
	mu     sync.RWMutex
	models map[string]*Entry
}

// NewRegistry returns an empty registry whose engines run on pool.
func NewRegistry(pool *predict.Pool) *Registry {
	return &Registry{pool: pool, models: make(map[string]*Entry)}
}

// Load parses a tree-JSON model from r, compiles it, and registers (or
// atomically replaces) it under name. The swap is the single map write;
// requests observe either the old entry or the new one, never a mix.
func (g *Registry) Load(name string, r io.Reader) (*Entry, error) {
	if name == "" {
		return nil, fmt.Errorf("serve: empty model name")
	}
	t, err := tree.ReadJSON(r)
	if err != nil {
		return nil, fmt.Errorf("serve: loading model %q: %w", name, err)
	}
	m, err := flat.Compile(t)
	if err != nil {
		return nil, fmt.Errorf("serve: compiling model %q: %w", name, err)
	}
	e := &Entry{
		Name:     name,
		Model:    m,
		Engine:   predict.NewEngine(g.pool, m),
		LoadedAt: time.Now(),
	}
	g.mu.Lock()
	if old := g.models[name]; old != nil {
		e.Generation = old.Generation + 1
	} else {
		e.Generation = 1
	}
	g.models[name] = e
	g.mu.Unlock()
	return e, nil
}

// Get returns the current entry for name, or nil.
func (g *Registry) Get(name string) *Entry {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.models[name]
}

// List returns the entries sorted by name.
func (g *Registry) List() []*Entry {
	g.mu.RLock()
	out := make([]*Entry, 0, len(g.models))
	for _, e := range g.models {
		out = append(out, e)
	}
	g.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Len returns the number of registered models.
func (g *Registry) Len() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.models)
}

// Config bounds the server's resource use.
type Config struct {
	// MaxBatch rejects predict requests with more records (413). 0 means
	// the default of 100000.
	MaxBatch int
	// RequestTimeout bounds handling of one request (503 on expiry).
	// 0 means the default of 30s.
	RequestTimeout time.Duration
	// ShutdownGrace bounds the drain of in-flight requests after the
	// serve context is canceled. 0 means the default of 10s.
	ShutdownGrace time.Duration
	// Workers sizes the prediction pool; <= 0 means GOMAXPROCS.
	Workers int
}

func (c Config) withDefaults() Config {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 100000
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.ShutdownGrace <= 0 {
		c.ShutdownGrace = 10 * time.Second
	}
	return c
}

// Server owns the registry, the prediction pool, and the HTTP handlers.
type Server struct {
	cfg      Config
	pool     *predict.Pool
	registry *Registry
	start    time.Time

	requests atomic.Int64
	errors   atomic.Int64
}

// New returns a server with an empty registry.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	pool := predict.NewPool(cfg.Workers)
	return &Server{
		cfg:      cfg,
		pool:     pool,
		registry: NewRegistry(pool),
		start:    time.Now(),
	}
}

// Registry exposes the model registry (cmd/dtserve preloads models into
// it; tests drive hot-swaps through it).
func (s *Server) Registry() *Registry { return s.registry }

// Close stops the prediction pool. Call only after the HTTP server has
// fully shut down (no predict request may be in flight).
func (s *Server) Close() { s.pool.Close() }

// Handler returns the routed HTTP handler with the request timeout
// applied to the API routes. /healthz and /metrics bypass the timeout
// wrapper so probes stay cheap.
func (s *Server) Handler() http.Handler {
	api := http.NewServeMux()
	api.HandleFunc("POST /v1/predict", s.handlePredict)
	api.HandleFunc("PUT /v1/models/{name}", s.handleLoadModel)
	api.HandleFunc("GET /v1/models", s.handleListModels)

	root := http.NewServeMux()
	root.HandleFunc("GET /healthz", s.handleHealthz)
	root.HandleFunc("GET /metrics", s.handleMetrics)
	root.Handle("/v1/", http.TimeoutHandler(s.counted(api), s.cfg.RequestTimeout, "request timed out\n"))
	return root
}

// counted wraps h with the request/error counters.
func (s *Server) counted(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.requests.Add(1)
		sw := &statusWriter{ResponseWriter: w}
		h.ServeHTTP(sw, r)
		if sw.status >= 400 {
			s.errors.Add(1)
		}
	})
}

type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

// Serve runs the HTTP server on l until ctx is canceled, then drains
// in-flight requests (bounded by ShutdownGrace) before returning. The
// prediction pool stays open; call Close afterwards.
func (s *Server) Serve(ctx context.Context, l net.Listener) error {
	hs := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       s.cfg.RequestTimeout + 5*time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(l) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	sctx, cancel := context.WithTimeout(context.Background(), s.cfg.ShutdownGrace)
	defer cancel()
	return hs.Shutdown(sctx)
}

// ListenAndServe binds addr and calls Serve.
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ctx, l)
}

// predictRequest is the POST /v1/predict body.
type predictRequest struct {
	Model   string                   `json:"model"`
	Records []map[string]interface{} `json:"records"`
}

// predictResponse is the POST /v1/predict reply: per-record class labels
// and ids, in request order.
type predictResponse struct {
	Model      string   `json:"model"`
	Generation int      `json:"generation"`
	N          int      `json:"n"`
	Labels     []string `json:"labels"`
	ClassIDs   []int32  `json:"class_ids"`
	LatencyMS  float64  `json:"latency_ms"`
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	var req predictRequest
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if req.Model == "" {
		httpError(w, http.StatusBadRequest, "missing \"model\"")
		return
	}
	if len(req.Records) == 0 {
		httpError(w, http.StatusBadRequest, "empty \"records\"")
		return
	}
	if len(req.Records) > s.cfg.MaxBatch {
		httpError(w, http.StatusRequestEntityTooLarge,
			"batch of %d records exceeds the limit of %d", len(req.Records), s.cfg.MaxBatch)
		return
	}
	e := s.registry.Get(req.Model)
	if e == nil {
		httpError(w, http.StatusNotFound, "model %q not loaded", req.Model)
		return
	}
	start := time.Now()
	batch, err := decodeRecords(e.Model.Schema, req.Records)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	out := make([]int32, batch.Len())
	if err := e.Engine.PredictBatch(batch, out); err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	resp := predictResponse{
		Model:      e.Name,
		Generation: e.Generation,
		N:          batch.Len(),
		ClassIDs:   out,
		Labels:     make([]string, batch.Len()),
		LatencyMS:  float64(time.Since(start).Nanoseconds()) / 1e6,
	}
	for i, c := range out {
		resp.Labels[i] = e.Model.Schema.Classes[c]
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleLoadModel(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	e, err := s.registry.Load(name, r.Body)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, modelInfo(e))
}

func (s *Server) handleListModels(w http.ResponseWriter, r *http.Request) {
	entries := s.registry.List()
	out := make([]map[string]interface{}, 0, len(entries))
	for _, e := range entries {
		out = append(out, modelInfo(e))
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{"models": out})
}

func modelInfo(e *Entry) map[string]interface{} {
	st := e.Engine.Stats()
	return map[string]interface{}{
		"name":       e.Name,
		"generation": e.Generation,
		"loaded_at":  e.LoadedAt.UTC().Format(time.RFC3339Nano),
		"nodes":      e.Model.Len(),
		"leaves":     e.Model.Leaves(),
		"classes":    e.Model.Schema.Classes,
		"batches":    st.Batches,
		"rows":       st.Rows,
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"status":     "ok",
		"models":     s.registry.Len(),
		"uptime_sec": time.Since(s.start).Seconds(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var b strings.Builder
	ps := s.pool.Stats()
	fmt.Fprintf(&b, "dtserve_uptime_seconds %g\n", time.Since(s.start).Seconds())
	fmt.Fprintf(&b, "dtserve_http_requests_total %d\n", s.requests.Load())
	fmt.Fprintf(&b, "dtserve_http_errors_total %d\n", s.errors.Load())
	fmt.Fprintf(&b, "dtserve_models %d\n", s.registry.Len())
	fmt.Fprintf(&b, "dtserve_pool_workers %d\n", s.pool.Workers())
	fmt.Fprintf(&b, "dtserve_pool_batches_total %d\n", ps.Batches)
	fmt.Fprintf(&b, "dtserve_pool_rows_total %d\n", ps.Rows)
	fmt.Fprintf(&b, "dtserve_pool_busy_seconds_total %g\n", float64(ps.BusyNS)/1e9)
	for _, e := range s.registry.List() {
		st := e.Engine.Stats()
		fmt.Fprintf(&b, "dtserve_model_generation{model=%q} %d\n", e.Name, e.Generation)
		fmt.Fprintf(&b, "dtserve_model_nodes{model=%q} %d\n", e.Name, e.Model.Len())
		fmt.Fprintf(&b, "dtserve_model_batches_total{model=%q} %d\n", e.Name, st.Batches)
		fmt.Fprintf(&b, "dtserve_model_rows_total{model=%q} %d\n", e.Name, st.Rows)
		fmt.Fprintf(&b, "dtserve_model_wall_seconds_total{model=%q} %g\n", e.Name, float64(st.WallNS)/1e9)
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	io.WriteString(w, b.String())
}

// decodeRecords converts JSON records (attribute name → value) into a
// columnar batch under the model's schema. Categorical values may be
// given by name (string) or by integer code; continuous values must be
// numbers. Every schema attribute must be present.
func decodeRecords(s *dataset.Schema, records []map[string]interface{}) (*dataset.Dataset, error) {
	d := dataset.New(s, len(records))
	rec := dataset.NewRecord(s)
	for ri, raw := range records {
		for a, attr := range s.Attrs {
			v, ok := raw[attr.Name]
			if !ok {
				return nil, fmt.Errorf("record %d: missing attribute %q", ri, attr.Name)
			}
			if attr.Kind == dataset.Categorical {
				code, err := categoricalCode(attr, v)
				if err != nil {
					return nil, fmt.Errorf("record %d: attribute %q: %w", ri, attr.Name, err)
				}
				rec.Cat[a] = code
			} else {
				f, ok := v.(float64)
				if !ok {
					return nil, fmt.Errorf("record %d: attribute %q: want a number, got %T", ri, attr.Name, v)
				}
				rec.Cont[a] = f
			}
		}
		rec.RID = int64(ri)
		d.Append(rec)
	}
	return d, nil
}

func categoricalCode(attr dataset.Attribute, v interface{}) (int32, error) {
	switch x := v.(type) {
	case string:
		code := attr.ValueIndex(x)
		if code < 0 {
			return 0, fmt.Errorf("unknown value %q", x)
		}
		return int32(code), nil
	case float64:
		code := int(x)
		if float64(code) != x || code < 0 || code >= attr.Cardinality() {
			return 0, fmt.Errorf("value code %v out of range 0..%d", x, attr.Cardinality()-1)
		}
		return int32(code), nil
	default:
		return 0, fmt.Errorf("want a value name or code, got %T", v)
	}
}

func httpError(w http.ResponseWriter, status int, format string, args ...interface{}) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}
