// Package serve is the model-serving layer: a named registry of compiled
// models with atomic hot-swap, and an HTTP JSON API over the batched
// prediction engine. It turns the repository from a training-only
// reproduction into the north-star serving system — load a tree-JSON
// model trained by cmd/dtree or a forest-JSON ensemble, POST record
// batches at it, swap in a retrained model under live traffic without
// dropping a request. Uploaded bodies are routed on their "format" field:
// tree files compile to a *flat.Model, forest files to the fused
// *forest.Fused layout, and both serve through the same engine.
//
// Endpoints (cmd/dtserve wires them to a listener):
//
//	POST /v1/predict          {"model": name, "records": [{attr: value, ...}]}
//	PUT  /v1/models/{name}    body = tree-JSON or forest-JSON model file; load or hot-swap
//	GET  /v1/models           registry listing
//	GET  /healthz             liveness + model count
//	GET  /metrics             registry and engine counters plus predict
//	                          latency quantiles, Prometheus text format
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"partree/internal/dataset"
	"partree/internal/flat"
	"partree/internal/forest"
	"partree/internal/predict"
	"partree/internal/tree"
)

// ErrBusy reports a model load rejected because another load for the same
// name is already in flight. Loads are serialized per name so that two
// concurrent swaps cannot interleave parse/compile work and race on the
// generation counter; callers should retry after a short backoff (the HTTP
// handler does this automatically).
var ErrBusy = errors.New("serve: a load for this model is already in flight")

// ErrBreakerOpen reports a model load rejected because the model's circuit
// breaker is open after repeated load failures. The last successfully
// loaded generation keeps serving; match with errors.Is and retry after
// the cooldown.
var ErrBreakerOpen = errors.New("serve: model load circuit breaker is open")

// BreakerOpenError carries the remaining cooldown of an open breaker.
// It matches ErrBreakerOpen under errors.Is.
type BreakerOpenError struct {
	Name       string
	RetryAfter time.Duration
}

func (e *BreakerOpenError) Error() string {
	return fmt.Sprintf("serve: model %q: load circuit breaker open for another %s", e.Name, e.RetryAfter.Round(time.Millisecond))
}

func (e *BreakerOpenError) Is(target error) bool { return target == ErrBreakerOpen }

// ErrDrainTimeout reports that graceful shutdown could not drain every
// in-flight request within the drain window and remaining connections were
// force-closed. The server is fully stopped when Serve returns this.
var ErrDrainTimeout = errors.New("serve: shutdown drain timed out; remaining connections force-closed")

// Entry is one registered model: the compiled form plus the engine
// serving it. Exactly one of Model (a single tree) and Forest (a fused
// ensemble) is non-nil. Entries are immutable after registration; a
// hot-swap replaces the whole entry, so in-flight requests holding the
// old one finish against a consistent model.
type Entry struct {
	Name       string
	Model      *flat.Model   // single compiled tree, or nil
	Forest     *forest.Fused // fused forest, or nil
	Engine     *predict.Engine
	Generation int // 1 on first load, +1 per swap
	LoadedAt   time.Time
}

// Kind returns "tree" or "forest".
func (e *Entry) Kind() string {
	if e.Forest != nil {
		return "forest"
	}
	return "tree"
}

// Schema returns the schema the entry routes on.
func (e *Entry) Schema() *dataset.Schema {
	if e.Forest != nil {
		return e.Forest.Schema
	}
	return e.Model.Schema
}

// Trees returns the member count (1 for a single tree).
func (e *Entry) Trees() int {
	if e.Forest != nil {
		return e.Forest.Trees()
	}
	return 1
}

// Nodes returns the total compiled node count.
func (e *Entry) Nodes() int {
	if e.Forest != nil {
		return e.Forest.Nodes()
	}
	return e.Model.Len()
}

// Leaves returns the total compiled leaf count.
func (e *Entry) Leaves() int {
	if e.Forest != nil {
		return e.Forest.Leaves()
	}
	return e.Model.Leaves()
}

// breaker tracks consecutive load failures for one model name. While
// openUntil is in the future, loads for the name are rejected immediately;
// once it passes, the next load runs as a half-open probe (the per-name
// load serialization guarantees only one probe at a time). A successful
// load deletes the breaker; a failed probe re-opens it for another
// cooldown.
type breaker struct {
	fails     int
	openUntil time.Time
}

// RegistryStats are cumulative counters over the registry's lifetime.
type RegistryStats struct {
	Loads        int64 // successful loads and hot-swaps
	LoadFailures int64 // loads rejected by parse/compile errors
	BusyRejects  int64 // loads rejected with ErrBusy
	BreakerTrips int64 // times a breaker (re-)opened
}

// Registry maps model names to entries. All methods are safe for
// concurrent use; Get is a read-lock lookup so predictions scale across
// clients while swaps are rare writers. Loads are serialized per name and
// guarded by a per-name circuit breaker: a corrupt hot-swap never
// replaces the entry (the last good generation keeps serving), and after
// BreakerThreshold consecutive failures further loads fail fast with
// ErrBreakerOpen until the cooldown admits a half-open probe.
type Registry struct {
	pool *predict.Pool

	// BreakerThreshold consecutive load failures open a model's breaker;
	// 0 means the default of 3. BreakerCooldown is how long an open
	// breaker rejects loads before admitting a probe; 0 means the default
	// of 5s. Set both before serving traffic.
	BreakerThreshold int
	BreakerCooldown  time.Duration

	mu       sync.RWMutex
	models   map[string]*Entry
	loading  map[string]bool
	breakers map[string]*breaker
	degraded map[string]string
	stats    RegistryStats
}

// NewRegistry returns an empty registry whose engines run on pool.
func NewRegistry(pool *predict.Pool) *Registry {
	return &Registry{
		pool:     pool,
		models:   make(map[string]*Entry),
		loading:  make(map[string]bool),
		breakers: make(map[string]*breaker),
		degraded: make(map[string]string),
	}
}

// SetDegraded records that name could not be (re)loaded from its source —
// e.g. the model file failed its checksum at boot — while the server keeps
// running. The mark is advisory: whatever entry is currently registered
// (possibly none) keeps serving, /healthz reports status "degraded", and a
// later successful Load of the name clears it.
func (g *Registry) SetDegraded(name, reason string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.degraded[name] = reason
}

// Degraded returns a copy of the degraded-model marks (name → reason).
func (g *Registry) Degraded() map[string]string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make(map[string]string, len(g.degraded))
	for k, v := range g.degraded {
		out[k] = v
	}
	return out
}

func (g *Registry) threshold() int {
	if g.BreakerThreshold > 0 {
		return g.BreakerThreshold
	}
	return 3
}

func (g *Registry) cooldown() time.Duration {
	if g.BreakerCooldown > 0 {
		return g.BreakerCooldown
	}
	return 5 * time.Second
}

// Stats returns a snapshot of the registry's counters.
func (g *Registry) Stats() RegistryStats {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.stats
}

// Load parses a tree-JSON or forest-JSON model from r (dispatching on the
// document's "format" field), compiles it, and registers (or atomically
// replaces) it under name. The swap is the single map write;
// requests observe either the old entry or the new one, never a mix.
// Returns ErrBusy if another load for name is in flight and ErrBreakerOpen
// (a *BreakerOpenError) if the name's circuit breaker is open. On any
// error the previously registered entry, if one exists, keeps serving.
func (g *Registry) Load(name string, r io.Reader) (*Entry, error) {
	if name == "" {
		return nil, fmt.Errorf("serve: empty model name")
	}
	if err := g.beginLoad(name); err != nil {
		return nil, err
	}
	e, err := g.compile(name, r)
	g.endLoad(name, e, err)
	return e, err
}

// beginLoad claims the per-name load slot, or reports why it cannot run.
func (g *Registry) beginLoad(name string) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.loading[name] {
		g.stats.BusyRejects++
		return fmt.Errorf("serve: model %q: %w", name, ErrBusy)
	}
	if b := g.breakers[name]; b != nil && b.fails >= g.threshold() {
		if rem := time.Until(b.openUntil); rem > 0 {
			return &BreakerOpenError{Name: name, RetryAfter: rem}
		}
		// Cooldown over: this load runs as the half-open probe.
	}
	g.loading[name] = true
	return nil
}

// compile does the expensive parse+compile work outside the registry
// lock. The body is buffered once to sniff its "format" envelope field,
// then handed to the matching hardened reader.
func (g *Registry) compile(name string, r io.Reader) (*Entry, error) {
	body, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("serve: reading model %q: %w", name, err)
	}
	var env struct {
		Format string `json:"format"`
	}
	// A sniff failure falls through with Format "" — the tree reader then
	// reports the malformed document with its own diagnostics.
	_ = json.Unmarshal(body, &env)
	if env.Format == forest.ModelFormat {
		fr, err := forest.ReadJSON(bytes.NewReader(body))
		if err != nil {
			return nil, fmt.Errorf("serve: loading model %q: %w", name, err)
		}
		fz, err := forest.Compile(fr)
		if err != nil {
			return nil, fmt.Errorf("serve: compiling model %q: %w", name, err)
		}
		return &Entry{
			Name:     name,
			Forest:   fz,
			Engine:   predict.NewBatchEngine(g.pool, fz, fz.Schema),
			LoadedAt: time.Now(),
		}, nil
	}
	t, err := tree.ReadJSON(bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("serve: loading model %q: %w", name, err)
	}
	m, err := flat.Compile(t)
	if err != nil {
		return nil, fmt.Errorf("serve: compiling model %q: %w", name, err)
	}
	return &Entry{
		Name:     name,
		Model:    m,
		Engine:   predict.NewEngine(g.pool, m),
		LoadedAt: time.Now(),
	}, nil
}

// endLoad releases the per-name slot and either swaps the entry in (and
// closes the breaker) or records the failure (tripping the breaker once
// the threshold is reached; a failed half-open probe re-opens it).
func (g *Registry) endLoad(name string, e *Entry, err error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	delete(g.loading, name)
	if err != nil {
		g.stats.LoadFailures++
		b := g.breakers[name]
		if b == nil {
			b = &breaker{}
			g.breakers[name] = b
		}
		b.fails++
		if b.fails >= g.threshold() {
			b.openUntil = time.Now().Add(g.cooldown())
			g.stats.BreakerTrips++
		}
		return
	}
	delete(g.breakers, name)
	delete(g.degraded, name)
	g.stats.Loads++
	if old := g.models[name]; old != nil {
		e.Generation = old.Generation + 1
	} else {
		e.Generation = 1
	}
	g.models[name] = e
}

// Get returns the current entry for name, or nil.
func (g *Registry) Get(name string) *Entry {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.models[name]
}

// List returns the entries sorted by name.
func (g *Registry) List() []*Entry {
	g.mu.RLock()
	out := make([]*Entry, 0, len(g.models))
	for _, e := range g.models {
		out = append(out, e)
	}
	g.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Len returns the number of registered models.
func (g *Registry) Len() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.models)
}

// Config bounds the server's resource use.
type Config struct {
	// MaxBatch rejects predict requests with more records (413). 0 means
	// the default of 100000.
	MaxBatch int
	// RequestTimeout bounds handling of one request (503 on expiry).
	// 0 means the default of 30s.
	RequestTimeout time.Duration
	// ShutdownGrace bounds the drain of in-flight requests after the
	// serve context is canceled; connections still open when it expires
	// are force-closed and Serve returns ErrDrainTimeout. 0 means the
	// default of 10s.
	ShutdownGrace time.Duration
	// Workers sizes the prediction pool; <= 0 means GOMAXPROCS.
	Workers int
	// MaxInflight bounds concurrently handled /v1/ requests; excess
	// requests are shed immediately with 429 and a Retry-After header
	// instead of queueing behind a saturated pool. 0 means the default of
	// 256; negative disables shedding.
	MaxInflight int
	// BreakerThreshold consecutive model-load failures open that model's
	// circuit breaker. 0 means the default of 3.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker rejects loads with 503
	// before admitting a half-open probe. 0 means the default of 5s.
	BreakerCooldown time.Duration
}

func (c Config) withDefaults() Config {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 100000
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.ShutdownGrace <= 0 {
		c.ShutdownGrace = 10 * time.Second
	}
	if c.MaxInflight == 0 {
		c.MaxInflight = 256
	}
	return c
}

// Server owns the registry, the prediction pool, and the HTTP handlers.
type Server struct {
	cfg      Config
	pool     *predict.Pool
	registry *Registry
	start    time.Time

	requests atomic.Int64
	errors   atomic.Int64
	sheds    atomic.Int64
	latency  *Hist // end-to-end /v1/predict handling latency
}

// New returns a server with an empty registry.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	pool := predict.NewPool(cfg.Workers)
	reg := NewRegistry(pool)
	reg.BreakerThreshold = cfg.BreakerThreshold
	reg.BreakerCooldown = cfg.BreakerCooldown
	return &Server{
		cfg:      cfg,
		pool:     pool,
		registry: reg,
		start:    time.Now(),
		latency:  NewHist(),
	}
}

// Latency exposes the predict latency histogram (cmd/dtserve prints a
// summary on shutdown; tests read quantiles directly).
func (s *Server) Latency() *Hist { return s.latency }

// Sheds returns the number of requests rejected by the concurrency
// limiter.
func (s *Server) Sheds() int64 { return s.sheds.Load() }

// Registry exposes the model registry (cmd/dtserve preloads models into
// it; tests drive hot-swaps through it).
func (s *Server) Registry() *Registry { return s.registry }

// Close stops the prediction pool. Call only after the HTTP server has
// fully shut down (no predict request may be in flight).
func (s *Server) Close() { s.pool.Close() }

// Handler returns the routed HTTP handler. The API routes are wrapped,
// outermost first, in the concurrency limiter (shedding excess load with
// 429 before it queues) and the request timeout. /healthz and /metrics
// bypass both wrappers so probes stay cheap even when the server sheds.
func (s *Server) Handler() http.Handler {
	api := http.NewServeMux()
	api.HandleFunc("POST /v1/predict", s.handlePredict)
	api.HandleFunc("PUT /v1/models/{name}", s.handleLoadModel)
	api.HandleFunc("GET /v1/models", s.handleListModels)

	root := http.NewServeMux()
	root.HandleFunc("GET /healthz", s.handleHealthz)
	root.HandleFunc("GET /metrics", s.handleMetrics)
	root.Handle("/v1/", s.limited(http.TimeoutHandler(s.counted(api), s.cfg.RequestTimeout, "request timed out\n")))
	return root
}

// limited admits at most MaxInflight concurrent requests into h; the rest
// are shed with 429 + Retry-After so a burst degrades to fast rejections
// instead of a growing queue of requests that will time out anyway.
func (s *Server) limited(h http.Handler) http.Handler {
	if s.cfg.MaxInflight < 0 {
		return h
	}
	sem := make(chan struct{}, s.cfg.MaxInflight)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case sem <- struct{}{}:
			defer func() { <-sem }()
			h.ServeHTTP(w, r)
		default:
			s.sheds.Add(1)
			s.requests.Add(1)
			s.errors.Add(1)
			w.Header().Set("Retry-After", "1")
			httpError(w, http.StatusTooManyRequests,
				"server at capacity (%d requests in flight)", s.cfg.MaxInflight)
		}
	})
}

// counted wraps h with the request/error counters.
func (s *Server) counted(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.requests.Add(1)
		sw := &statusWriter{ResponseWriter: w}
		h.ServeHTTP(sw, r)
		if sw.status >= 400 {
			s.errors.Add(1)
		}
	})
}

type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

// Serve runs the HTTP server on l until ctx is canceled, then drains
// in-flight requests (bounded by ShutdownGrace) before returning. If the
// drain window expires with requests still in flight, the remaining
// connections are force-closed and Serve returns ErrDrainTimeout — the
// server never hangs past ShutdownGrace on a stuck client. The prediction
// pool stays open; call Close afterwards.
func (s *Server) Serve(ctx context.Context, l net.Listener) error {
	hs := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       s.cfg.RequestTimeout + 5*time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(l) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	sctx, cancel := context.WithTimeout(context.Background(), s.cfg.ShutdownGrace)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		hs.Close()
		if errors.Is(err, context.DeadlineExceeded) {
			return ErrDrainTimeout
		}
		return err
	}
	return nil
}

// ListenAndServe binds addr and calls Serve.
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ctx, l)
}

// predictRequest is the POST /v1/predict body.
type predictRequest struct {
	Model   string                   `json:"model"`
	Records []map[string]interface{} `json:"records"`
}

// predictResponse is the POST /v1/predict reply: per-record class labels
// and ids, in request order.
type predictResponse struct {
	Model      string   `json:"model"`
	Generation int      `json:"generation"`
	N          int      `json:"n"`
	Labels     []string `json:"labels"`
	ClassIDs   []int32  `json:"class_ids"`
	LatencyMS  float64  `json:"latency_ms"`
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	var req predictRequest
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if req.Model == "" {
		httpError(w, http.StatusBadRequest, "missing \"model\"")
		return
	}
	if len(req.Records) == 0 {
		httpError(w, http.StatusBadRequest, "empty \"records\"")
		return
	}
	if len(req.Records) > s.cfg.MaxBatch {
		httpError(w, http.StatusRequestEntityTooLarge,
			"batch of %d records exceeds the limit of %d", len(req.Records), s.cfg.MaxBatch)
		return
	}
	e := s.registry.Get(req.Model)
	if e == nil {
		httpError(w, http.StatusNotFound, "model %q not loaded", req.Model)
		return
	}
	start := time.Now()
	batch, err := decodeRecords(e.Schema(), req.Records)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	out := make([]int32, batch.Len())
	if err := e.Engine.PredictBatch(batch, out); err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	ms := float64(time.Since(start).Nanoseconds()) / 1e6
	s.latency.Observe(ms)
	resp := predictResponse{
		Model:      e.Name,
		Generation: e.Generation,
		N:          batch.Len(),
		ClassIDs:   out,
		Labels:     make([]string, batch.Len()),
		LatencyMS:  ms,
	}
	for i, c := range out {
		resp.Labels[i] = e.Schema().Classes[c]
	}
	writeJSON(w, http.StatusOK, resp)
}

// loadRetries and loadBackoff shape the handler-side retry of ErrBusy:
// up to loadRetries extra attempts, sleeping loadBackoff·2^i plus full
// jitter between attempts (≈ 300ms worst case in total).
const loadRetries = 5
const loadBackoff = 5 * time.Millisecond

func (s *Server) handleLoadModel(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	// Buffer the body so a retried load can re-read it.
	body, err := io.ReadAll(r.Body)
	if err != nil {
		httpError(w, http.StatusBadRequest, "reading model body: %v", err)
		return
	}
	var e *Entry
	delay := loadBackoff
	for attempt := 0; ; attempt++ {
		e, err = s.registry.Load(name, bytes.NewReader(body))
		if !errors.Is(err, ErrBusy) || attempt == loadRetries {
			break
		}
		time.Sleep(delay + time.Duration(rand.Int63n(int64(delay))))
		delay *= 2
	}
	switch {
	case err == nil:
		writeJSON(w, http.StatusOK, modelInfo(e))
	case errors.Is(err, ErrBusy):
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusServiceUnavailable, "%v", err)
	case errors.Is(err, ErrBreakerOpen):
		var boe *BreakerOpenError
		if errors.As(err, &boe) {
			w.Header().Set("Retry-After", fmt.Sprintf("%d", int(math.Ceil(boe.RetryAfter.Seconds()))))
		}
		httpError(w, http.StatusServiceUnavailable, "%v", err)
	default:
		httpError(w, http.StatusBadRequest, "%v", err)
	}
}

func (s *Server) handleListModels(w http.ResponseWriter, r *http.Request) {
	entries := s.registry.List()
	out := make([]map[string]interface{}, 0, len(entries))
	for _, e := range entries {
		out = append(out, modelInfo(e))
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{"models": out})
}

func modelInfo(e *Entry) map[string]interface{} {
	st := e.Engine.Stats()
	return map[string]interface{}{
		"name":       e.Name,
		"kind":       e.Kind(),
		"generation": e.Generation,
		"loaded_at":  e.LoadedAt.UTC().Format(time.RFC3339Nano),
		"trees":      e.Trees(),
		"nodes":      e.Nodes(),
		"leaves":     e.Leaves(),
		"classes":    e.Schema().Classes,
		"batches":    st.Batches,
		"rows":       st.Rows,
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	body := map[string]interface{}{
		"status":     "ok",
		"models":     s.registry.Len(),
		"uptime_sec": time.Since(s.start).Seconds(),
	}
	// A degraded model (checksum failure at preload, say) does not fail the
	// probe — the process is alive and the remaining models serve — but the
	// state is visible so operators notice the skipped model.
	if deg := s.registry.Degraded(); len(deg) > 0 {
		body["status"] = "degraded"
		body["degraded"] = deg
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var b strings.Builder
	ps := s.pool.Stats()
	fmt.Fprintf(&b, "dtserve_uptime_seconds %g\n", time.Since(s.start).Seconds())
	fmt.Fprintf(&b, "dtserve_http_requests_total %d\n", s.requests.Load())
	fmt.Fprintf(&b, "dtserve_http_errors_total %d\n", s.errors.Load())
	fmt.Fprintf(&b, "dtserve_http_shed_total %d\n", s.sheds.Load())
	fmt.Fprintf(&b, "dtserve_models %d\n", s.registry.Len())
	rs := s.registry.Stats()
	fmt.Fprintf(&b, "dtserve_model_loads_total %d\n", rs.Loads)
	fmt.Fprintf(&b, "dtserve_model_load_failures_total %d\n", rs.LoadFailures)
	fmt.Fprintf(&b, "dtserve_model_load_busy_total %d\n", rs.BusyRejects)
	fmt.Fprintf(&b, "dtserve_breaker_trips_total %d\n", rs.BreakerTrips)
	deg := s.registry.Degraded()
	fmt.Fprintf(&b, "dtserve_models_degraded %d\n", len(deg))
	for _, name := range sortedKeys(deg) {
		fmt.Fprintf(&b, "dtserve_model_degraded{model=%q} 1\n", name)
	}
	fmt.Fprintf(&b, "dtserve_pool_workers %d\n", s.pool.Workers())
	fmt.Fprintf(&b, "dtserve_pool_batches_total %d\n", ps.Batches)
	fmt.Fprintf(&b, "dtserve_pool_rows_total %d\n", ps.Rows)
	fmt.Fprintf(&b, "dtserve_pool_busy_seconds_total %g\n", float64(ps.BusyNS)/1e9)
	for _, q := range []struct {
		label string
		q     float64
	}{{"0.5", 0.5}, {"0.95", 0.95}, {"0.99", 0.99}} {
		fmt.Fprintf(&b, "dtserve_predict_latency_ms{quantile=%q} %g\n", q.label, s.latency.Quantile(q.q))
	}
	fmt.Fprintf(&b, "dtserve_predict_latency_ms_count %d\n", s.latency.Count())
	fmt.Fprintf(&b, "dtserve_predict_latency_ms_sum %g\n", s.latency.SumMS())
	for _, e := range s.registry.List() {
		st := e.Engine.Stats()
		fmt.Fprintf(&b, "dtserve_model_generation{model=%q} %d\n", e.Name, e.Generation)
		fmt.Fprintf(&b, "dtserve_model_kind{model=%q,kind=%q} 1\n", e.Name, e.Kind())
		fmt.Fprintf(&b, "dtserve_model_trees{model=%q} %d\n", e.Name, e.Trees())
		fmt.Fprintf(&b, "dtserve_model_nodes{model=%q} %d\n", e.Name, e.Nodes())
		fmt.Fprintf(&b, "dtserve_model_batches_total{model=%q} %d\n", e.Name, st.Batches)
		fmt.Fprintf(&b, "dtserve_model_rows_total{model=%q} %d\n", e.Name, st.Rows)
		fmt.Fprintf(&b, "dtserve_model_wall_seconds_total{model=%q} %g\n", e.Name, float64(st.WallNS)/1e9)
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	io.WriteString(w, b.String())
}

// decodeRecords converts JSON records (attribute name → value) into a
// columnar batch under the model's schema. Categorical values may be
// given by name (string) or by integer code; continuous values must be
// numbers. Every schema attribute must be present.
func decodeRecords(s *dataset.Schema, records []map[string]interface{}) (*dataset.Dataset, error) {
	d := dataset.New(s, len(records))
	rec := dataset.NewRecord(s)
	for ri, raw := range records {
		for a, attr := range s.Attrs {
			v, ok := raw[attr.Name]
			if !ok {
				return nil, fmt.Errorf("record %d: missing attribute %q", ri, attr.Name)
			}
			if attr.Kind == dataset.Categorical {
				code, err := categoricalCode(attr, v)
				if err != nil {
					return nil, fmt.Errorf("record %d: attribute %q: %w", ri, attr.Name, err)
				}
				rec.Cat[a] = code
			} else {
				f, ok := v.(float64)
				if !ok {
					return nil, fmt.Errorf("record %d: attribute %q: want a number, got %T", ri, attr.Name, v)
				}
				rec.Cont[a] = f
			}
		}
		rec.RID = int64(ri)
		d.Append(rec)
	}
	return d, nil
}

func categoricalCode(attr dataset.Attribute, v interface{}) (int32, error) {
	switch x := v.(type) {
	case string:
		code := attr.ValueIndex(x)
		if code < 0 {
			return 0, fmt.Errorf("unknown value %q", x)
		}
		return int32(code), nil
	case float64:
		code := int(x)
		if float64(code) != x || code < 0 || code >= attr.Cardinality() {
			return 0, fmt.Errorf("value code %v out of range 0..%d", x, attr.Cardinality()-1)
		}
		return int32(code), nil
	default:
		return 0, fmt.Errorf("want a value name or code, got %T", v)
	}
}

func sortedKeys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func httpError(w http.ResponseWriter, status int, format string, args ...interface{}) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}
