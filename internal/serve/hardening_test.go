package serve_test

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"partree/internal/serve"
)

// putModel PUTs body as model `name` and returns the response (closed).
func putModel(t *testing.T, client *http.Client, url, name string, body io.Reader) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPut, url+"/v1/models/"+name, body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp
}

// TestLoadShedUnderOverload: with a single in-flight slot, a stalled
// request makes the server shed the next one with 429 + Retry-After
// instead of queueing it, and the shed shows up in /metrics. Once the
// slot frees, requests are admitted again.
func TestLoadShedUnderOverload(t *testing.T) {
	srv := serve.New(serve.Config{Workers: 2, MaxInflight: 1})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	model := modelJSON(t, 1)

	// Occupy the only slot with a PUT whose body never finishes arriving;
	// the handler blocks buffering it inside the limiter.
	pr, pw := io.Pipe()
	slow := make(chan *http.Response, 1)
	go func() {
		req, _ := http.NewRequest(http.MethodPut, ts.URL+"/v1/models/quest", pr)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			slow <- nil
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		slow <- resp
	}()
	if _, err := pw.Write(model[:1]); err != nil {
		t.Fatal(err)
	}

	// The stalled PUT holds the slot (poll out the connection-setup race):
	// every /v1/ request must now be shed with 429 and a Retry-After hint.
	deadline := time.Now().Add(5 * time.Second)
	var resp *http.Response
	for {
		var err error
		resp, err = http.Get(ts.URL + "/v1/models")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never shed load: last status %d", resp.StatusCode)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("shed response missing Retry-After header")
	}
	if srv.Sheds() == 0 {
		t.Error("shed counter not incremented")
	}

	// /healthz bypasses the limiter: probes must succeed while shedding.
	if hr, err := http.Get(ts.URL + "/healthz"); err != nil || hr.StatusCode != http.StatusOK {
		t.Fatalf("healthz during overload: %v status %d", err, hr.StatusCode)
	} else {
		io.Copy(io.Discard, hr.Body)
		hr.Body.Close()
	}
	mr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(mr.Body)
	mr.Body.Close()
	if !strings.Contains(string(metrics), "dtserve_http_shed_total") {
		t.Errorf("metrics missing shed counter:\n%s", metrics)
	}

	// Free the slot: the stalled PUT completes and service resumes.
	if _, err := pw.Write(model[1:]); err != nil {
		t.Fatal(err)
	}
	pw.Close()
	if r := <-slow; r == nil || r.StatusCode != http.StatusOK {
		t.Fatalf("stalled PUT did not complete cleanly: %+v", r)
	}
	if resp, err := http.Get(ts.URL + "/v1/models"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("service did not resume after slot freed: %v status %d", err, resp.StatusCode)
	} else {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
}

// TestSwapBusyRetry: loads are serialized per model name. While a slow
// load holds the name, a direct Load returns ErrBusy, but the HTTP
// handler's backoff+jitter retry rides out the contention and the swap
// succeeds once the slow load releases the name.
func TestSwapBusyRetry(t *testing.T) {
	srv := serve.New(serve.Config{Workers: 2})
	defer srv.Close()
	reg := srv.Registry()
	if _, err := reg.Load("quest", bytes.NewReader(modelJSON(t, 1))); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Hold the name's load slot: Load blocks parsing a body that stalls.
	pr, pw := io.Pipe()
	slowDone := make(chan error, 1)
	go func() {
		_, err := reg.Load("quest", pr)
		slowDone <- err
	}()
	model := modelJSON(t, 2)
	if _, err := pw.Write(model[:1]); err != nil {
		t.Fatal(err)
	}

	// Direct load: immediate typed rejection.
	if _, err := reg.Load("quest", bytes.NewReader(model)); !errors.Is(err, serve.ErrBusy) {
		t.Fatalf("concurrent direct load: got %v, want ErrBusy", err)
	}
	// A load for a different name is not blocked by quest's slot.
	if _, err := reg.Load("other", bytes.NewReader(modelJSON(t, 1))); err != nil {
		t.Fatalf("unrelated name blocked by busy quest: %v", err)
	}

	// HTTP swap: the handler retries past the contention window. The
	// retry schedule guarantees at least ~150ms of attempts, so releasing
	// the slow load after 100ms always lands inside it.
	httpDone := make(chan *http.Response, 1)
	go func() {
		httpDone <- putModel(t, http.DefaultClient, ts.URL, "quest", bytes.NewReader(model))
	}()
	time.Sleep(100 * time.Millisecond)
	if _, err := pw.Write(model[1:]); err != nil {
		t.Fatal(err)
	}
	pw.Close()
	if err := <-slowDone; err != nil {
		t.Fatalf("slow load failed: %v", err)
	}
	if resp := <-httpDone; resp.StatusCode != http.StatusOK {
		t.Fatalf("retried swap: status %d, want 200", resp.StatusCode)
	}
	if st := reg.Stats(); st.BusyRejects == 0 {
		t.Errorf("no busy rejects recorded: %+v", st)
	}
	// Both swaps landed: initial load + slow load + retried HTTP load.
	if gen := reg.Get("quest").Generation; gen != 3 {
		t.Errorf("generation = %d, want 3", gen)
	}
}

// TestBreakerOpensAndRecovers: three consecutive corrupt swaps open the
// model's circuit breaker — further swaps fail fast with 503 while the
// last good generation keeps answering predictions — and after the
// cooldown a half-open probe with a good model closes it again. A failed
// probe re-opens the breaker for another cooldown.
func TestBreakerOpensAndRecovers(t *testing.T) {
	srv := serve.New(serve.Config{
		Workers:          2,
		BreakerThreshold: 3,
		BreakerCooldown:  300 * time.Millisecond,
	})
	defer srv.Close()
	reg := srv.Registry()
	if _, err := reg.Load("quest", bytes.NewReader(modelJSON(t, 1))); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	good := modelJSON(t, 2)

	// Three corrupt swaps: each rejected with 400, the entry untouched.
	for i := 0; i < 3; i++ {
		if resp := putModel(t, http.DefaultClient, ts.URL, "quest", strings.NewReader("corrupt")); resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("corrupt swap %d: status %d, want 400", i, resp.StatusCode)
		}
	}
	if st := reg.Stats(); st.BreakerTrips != 1 || st.LoadFailures != 3 {
		t.Fatalf("stats after tripping: %+v", st)
	}

	// Breaker open: even a good swap fails fast with 503 + Retry-After...
	resp := putModel(t, http.DefaultClient, ts.URL, "quest", bytes.NewReader(good))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("swap with open breaker: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("breaker rejection missing Retry-After header")
	}
	// ...but the last good model keeps serving.
	e := reg.Get("quest")
	if e == nil || e.Generation != 1 {
		t.Fatalf("last good entry lost: %+v", e)
	}

	// After the cooldown the next good swap runs as the half-open probe
	// and closes the breaker.
	time.Sleep(350 * time.Millisecond)
	if resp := putModel(t, http.DefaultClient, ts.URL, "quest", bytes.NewReader(good)); resp.StatusCode != http.StatusOK {
		t.Fatalf("probe swap after cooldown: status %d, want 200", resp.StatusCode)
	}
	if gen := reg.Get("quest").Generation; gen != 2 {
		t.Fatalf("generation = %d, want 2 after successful probe", gen)
	}

	// Trip it again, let the cooldown pass, and fail the probe: the
	// breaker re-opens immediately (no need for threshold-many failures).
	for i := 0; i < 3; i++ {
		putModel(t, http.DefaultClient, ts.URL, "quest", strings.NewReader("corrupt"))
	}
	time.Sleep(350 * time.Millisecond)
	if resp := putModel(t, http.DefaultClient, ts.URL, "quest", strings.NewReader("still corrupt")); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("failed probe: status %d, want 400", resp.StatusCode)
	}
	if resp := putModel(t, http.DefaultClient, ts.URL, "quest", bytes.NewReader(good)); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("swap after failed probe: status %d, want 503 (breaker re-opened)", resp.StatusCode)
	}
	if trips := reg.Stats().BreakerTrips; trips < 3 {
		t.Errorf("breaker trips = %d, want >= 3 (initial, re-trip, failed probe)", trips)
	}
}

// TestDrainTimeoutForceClose: a client that never finishes its request
// cannot hold shutdown hostage — after the drain window the server
// force-closes the connection and Serve returns ErrDrainTimeout. A raw
// TCP client makes the cut-off observable (http.Client would sit on its
// own body pipe instead of surfacing the close).
func TestDrainTimeoutForceClose(t *testing.T) {
	srv := serve.New(serve.Config{Workers: 1, ShutdownGrace: 150 * time.Millisecond})
	defer srv.Close()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ctx, l) }()

	// Park a chunked PUT whose body never finishes arriving.
	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("PUT /v1/models/stuck HTTP/1.1\r\nHost: x\r\nTransfer-Encoding: chunked\r\n\r\n1\r\n{\r\n")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // let the request reach the handler
	cancel()

	select {
	case err := <-served:
		if !errors.Is(err, serve.ErrDrainTimeout) {
			t.Fatalf("Serve returned %v, want ErrDrainTimeout", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve hung past the drain window")
	}
	// The parked connection was cut off rather than left hanging: reads
	// must hit EOF/reset, not the deadline.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 256)
	for {
		_, rerr := conn.Read(buf)
		if rerr == nil {
			continue // drain any partial response bytes
		}
		if ne, ok := rerr.(net.Error); ok && ne.Timeout() {
			t.Fatal("connection still open 5s after force-close")
		}
		break
	}
}
