package serve_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"partree/internal/forest"
	"partree/internal/quest"
	"partree/internal/serve"
	"partree/internal/tree"
)

// forestJSON trains a small bagged forest and serializes it.
func forestJSON(t *testing.T, trees int) []byte {
	t.Helper()
	d, err := quest.Generate(quest.Config{Function: 2, Seed: 4}, 1500)
	if err != nil {
		t.Fatal(err)
	}
	f, err := forest.Train(d, forest.Config{
		Trees:     trees,
		Seed:      17,
		Bootstrap: true,
		Tree:      tree.Options{Binary: true, MaxDepth: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := forest.WriteJSON(&buf, f); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestServeForestModel: a forest file loads through the same registry
// path as a tree, serves /v1/predict with fused-vote answers, and reports
// its shape in the listing and metrics.
func TestServeForestModel(t *testing.T) {
	srv := serve.New(serve.Config{MaxBatch: 500, Workers: 2})
	t.Cleanup(srv.Close)
	if _, err := srv.Registry().Load("grove", bytes.NewReader(forestJSON(t, 5))); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	e := srv.Registry().Get("grove")
	if e.Kind() != "forest" || e.Trees() != 5 || e.Forest == nil || e.Model != nil {
		t.Fatalf("forest entry malformed: kind=%s trees=%d", e.Kind(), e.Trees())
	}

	d, err := quest.Generate(quest.Config{Function: 2, Seed: 31}, 300)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/predict", "application/json",
		predictBody(t, "grove", recordsJSON(d, 0, 200)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var pr predictReply
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	if pr.N != 200 {
		t.Fatalf("n = %d", pr.N)
	}
	// Server answers must equal the fused forest evaluated directly on the
	// same rows (decode round trip: records went name->value->name).
	for i := 0; i < 200; i++ {
		if want := e.Forest.Predict(d, i); pr.ClassIDs[i] != want {
			t.Fatalf("record %d: server predicts %d, fused forest %d", i, pr.ClassIDs[i], want)
		}
	}

	// Hot-swap the forest for a bigger one under the same name.
	req, err := http.NewRequest(http.MethodPut, ts.URL+"/v1/models/grove", bytes.NewReader(forestJSON(t, 7)))
	if err != nil {
		t.Fatal(err)
	}
	sresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if sresp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(sresp.Body)
		t.Fatalf("swap status %d: %s", sresp.StatusCode, body)
	}
	e2 := srv.Registry().Get("grove")
	if e2.Generation != 2 || e2.Trees() != 7 {
		t.Fatalf("swap did not take: gen=%d trees=%d", e2.Generation, e2.Trees())
	}

	// Metrics expose the latency histogram and the per-model forest shape.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	metrics, _ := io.ReadAll(mresp.Body)
	for _, want := range []string{
		`dtserve_predict_latency_ms{quantile="0.5"}`,
		`dtserve_predict_latency_ms{quantile="0.99"}`,
		"dtserve_predict_latency_ms_count 1",
		`dtserve_model_kind{model="grove",kind="forest"} 1`,
		`dtserve_model_trees{model="grove"} 7`,
	} {
		if !strings.Contains(string(metrics), want) {
			t.Fatalf("metrics missing %q:\n%s", want, metrics)
		}
	}
}

// TestLoadRejectsCorruptForest: a hostile forest body never replaces a
// serving entry.
func TestLoadRejectsCorruptForest(t *testing.T) {
	srv := serve.New(serve.Config{Workers: 1})
	t.Cleanup(srv.Close)
	if _, err := srv.Registry().Load("grove", bytes.NewReader(forestJSON(t, 3))); err != nil {
		t.Fatal(err)
	}
	bad := []byte(`{"format":"partree-decision-forest","version":1,"vote":"weighted","weights":[-1,1],"members":[{},{}]}`)
	if _, err := srv.Registry().Load("grove", bytes.NewReader(bad)); err == nil {
		t.Fatal("corrupt forest accepted")
	}
	if e := srv.Registry().Get("grove"); e == nil || e.Generation != 1 || e.Trees() != 3 {
		t.Fatal("corrupt load disturbed the serving entry")
	}
}
