package serve

import (
	"math"
	"sync"
	"testing"
)

// TestHistQuantileMath pins the quantile estimator: observations placed
// in known buckets must interpolate to the exact values the layout
// implies.
func TestHistQuantileMath(t *testing.T) {
	h := NewHist()
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram p50 = %v, want 0", got)
	}

	// 100 observations of exactly 1ms all land in one bucket; every
	// quantile must fall inside that bucket's bounds.
	for i := 0; i < 100; i++ {
		h.Observe(1.0)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if got, want := h.SumMS(), 100.0; math.Abs(got-want) > 1e-9 {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	lower, upper := bucketBoundsFor(h, 1.0)
	for _, q := range []float64{0.01, 0.5, 0.95, 0.99, 1} {
		got := h.Quantile(q)
		if got < lower || got > upper {
			t.Fatalf("q%.2f = %v outside the 1ms bucket [%v, %v]", q, got, lower, upper)
		}
	}

	// Interpolation inside one bucket is linear in q: p25 sits at 1/4 of
	// the bucket span, p75 at 3/4.
	span := upper - lower
	if got, want := h.Quantile(0.25), lower+span*0.25; math.Abs(got-want) > 1e-9 {
		t.Fatalf("p25 = %v, want %v", got, want)
	}
	if got, want := h.Quantile(0.75), lower+span*0.75; math.Abs(got-want) > 1e-9 {
		t.Fatalf("p75 = %v, want %v", got, want)
	}
}

// TestHistQuantileTwoBuckets: with 90 fast and 10 slow observations, p50
// reads from the fast bucket and p99 from the slow one.
func TestHistQuantileTwoBuckets(t *testing.T) {
	h := NewHist()
	for i := 0; i < 90; i++ {
		h.Observe(0.2)
	}
	for i := 0; i < 10; i++ {
		h.Observe(150)
	}
	fastLo, fastHi := bucketBoundsFor(h, 0.2)
	slowLo, slowHi := bucketBoundsFor(h, 150)
	if p50 := h.Quantile(0.5); p50 < fastLo || p50 > fastHi {
		t.Fatalf("p50 = %v outside fast bucket [%v, %v]", p50, fastLo, fastHi)
	}
	if p99 := h.Quantile(0.99); p99 < slowLo || p99 > slowHi {
		t.Fatalf("p99 = %v outside slow bucket [%v, %v]", p99, slowLo, slowHi)
	}
	if p50, p95 := h.Quantile(0.5), h.Quantile(0.95); p95 < p50 {
		t.Fatalf("quantiles not monotone: p50=%v p95=%v", p50, p95)
	}
}

// TestHistOverflowAndClamp: observations beyond the last bound land in
// the overflow bucket and quantiles clamp to histMax; negatives clamp to
// zero.
func TestHistOverflowAndClamp(t *testing.T) {
	h := NewHist()
	h.Observe(1e9)
	if got := h.Quantile(1); got != histMax {
		t.Fatalf("overflow quantile = %v, want %v", got, histMax)
	}
	h2 := NewHist()
	h2.Observe(-5)
	if h2.Count() != 1 {
		t.Fatal("negative observation dropped")
	}
	if got := h2.Quantile(1); got < 0 || got > histMin {
		t.Fatalf("clamped-negative quantile = %v, want within bucket 0", got)
	}
}

// TestHistConcurrentObserve: racing observers lose nothing (run under
// -race in CI).
func TestHistConcurrentObserve(t *testing.T) {
	h := NewHist()
	var wg sync.WaitGroup
	const goroutines, per = 8, 500
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(g+1) * 0.3)
			}
		}(g)
	}
	wg.Wait()
	if got := h.Count(); got != goroutines*per {
		t.Fatalf("count = %d, want %d", got, goroutines*per)
	}
}

// bucketBoundsFor returns the [lower, upper] bounds of the bucket an
// observation of ms lands in.
func bucketBoundsFor(h *Hist, ms float64) (float64, float64) {
	for i, b := range h.bounds {
		if b >= ms {
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			return lo, b
		}
	}
	return h.bounds[len(h.bounds)-1], histMax
}
