package serve

import (
	"sync/atomic"
)

// Hist is a bounded, lock-free latency histogram: geometrically spaced
// millisecond buckets from histMin up to histMax (growth factor
// histGrowth), one overflow bucket, and always-on count/sum counters. A
// mean hides tail latency entirely — the serving SLO story needs p95/p99
// — and a fixed bucket layout keeps Observe to one binary search plus two
// atomic adds, cheap enough to run on every request. Quantiles are read
// by linear interpolation inside the covering bucket, so the error is
// bounded by the bucket's relative width (≈ histGrowth - 1, i.e. ~30%),
// deterministic, and pinned by the unit test.
type Hist struct {
	bounds []float64      // ascending bucket upper bounds, milliseconds
	counts []atomic.Int64 // len(bounds)+1; last bucket is overflow
	count  atomic.Int64
	sumUS  atomic.Int64 // observed total, microseconds
}

const (
	histMin    = 0.05    // ms: lowest upper bound; anything faster lands in bucket 0
	histMax    = 60000.0 // ms: highest finite upper bound (the request timeout ceiling)
	histGrowth = 1.3
)

// NewHist returns a histogram with the fixed serving bucket layout
// (about 55 buckets spanning 50µs .. 60s).
func NewHist() *Hist {
	var bounds []float64
	for b := histMin; b < histMax; b *= histGrowth {
		bounds = append(bounds, b)
	}
	bounds = append(bounds, histMax)
	return &Hist{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records one latency in milliseconds.
func (h *Hist) Observe(ms float64) {
	if ms < 0 {
		ms = 0
	}
	// Binary search for the first bound >= ms.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] >= ms {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	h.counts[lo].Add(1)
	h.count.Add(1)
	h.sumUS.Add(int64(ms * 1000))
}

// Count returns the number of observations.
func (h *Hist) Count() int64 { return h.count.Load() }

// SumMS returns the sum of all observed latencies in milliseconds
// (microsecond granularity).
func (h *Hist) SumMS() float64 { return float64(h.sumUS.Load()) / 1000 }

// Quantile returns the q-quantile (0 < q <= 1) in milliseconds, linearly
// interpolated inside the covering bucket, or 0 with no observations.
// Concurrent Observe calls may skew a snapshot by the in-flight
// observations; the estimate is monotone in q for any fixed snapshot.
func (h *Hist) Quantile(q float64) float64 {
	total := h.count.Load()
	if total <= 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(total)
	cum := int64(0)
	for i := range h.counts {
		n := h.counts[i].Load()
		if n == 0 {
			continue
		}
		if float64(cum+n) >= target {
			lower := 0.0
			if i > 0 {
				lower = h.bounds[i-1]
			}
			upper := histMax
			if i < len(h.bounds) {
				upper = h.bounds[i]
			}
			// Position of the target inside this bucket's count mass.
			frac := (target - float64(cum)) / float64(n)
			if frac < 0 {
				frac = 0
			}
			return lower + (upper-lower)*frac
		}
		cum += n
	}
	return histMax
}
