package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// ChecksumSuffix is appended to a model file's path to name its checksum
// sidecar (sha256sum text format: "HEX  NAME\n"). dtree -save writes the
// sidecar next to the model; dtserve verifies it before preloading.
const ChecksumSuffix = ".sha256"

// ErrChecksumMismatch reports a model file whose contents do not hash to
// the digest recorded in its sidecar — the file rotted or was truncated
// after training. Match with errors.Is.
var ErrChecksumMismatch = errors.New("serve: model file checksum mismatch")

// ChecksumFile returns the lowercase hex SHA-256 of the file's contents.
func ChecksumFile(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "", fmt.Errorf("hashing %s: %w", path, err)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// WriteChecksumFile writes path's SHA-256 sidecar (path + ChecksumSuffix)
// in sha256sum format so it is also verifiable with standard tooling.
func WriteChecksumFile(path string) error {
	sum, err := ChecksumFile(path)
	if err != nil {
		return err
	}
	line := fmt.Sprintf("%s  %s\n", sum, filepath.Base(path))
	return os.WriteFile(path+ChecksumSuffix, []byte(line), 0o644)
}

// VerifyFileChecksum checks path against its sidecar. It returns
// (true, nil) when the sidecar exists and matches, (false, nil) when no
// sidecar exists (nothing to verify — models written before sidecars were
// introduced stay loadable), and an error wrapping ErrChecksumMismatch on
// a mismatch or an unreadable/garbled sidecar.
func VerifyFileChecksum(path string) (bool, error) {
	raw, err := os.ReadFile(path + ChecksumSuffix)
	if errors.Is(err, os.ErrNotExist) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	fields := strings.Fields(string(raw))
	if len(fields) == 0 {
		return false, fmt.Errorf("%w: sidecar %s is empty", ErrChecksumMismatch, path+ChecksumSuffix)
	}
	want := strings.ToLower(fields[0])
	if len(want) != hex.EncodedLen(sha256.Size) {
		return false, fmt.Errorf("%w: sidecar %s holds %q, not a SHA-256 digest",
			ErrChecksumMismatch, path+ChecksumSuffix, want)
	}
	got, err := ChecksumFile(path)
	if err != nil {
		return false, err
	}
	if got != want {
		return false, fmt.Errorf("%w: %s hashes to %s, sidecar records %s", ErrChecksumMismatch, path, got, want)
	}
	return true, nil
}
