// Package flat compiles a pointer-linked *tree.Tree into a contiguous
// struct-of-arrays node table for cache-friendly batched inference. The
// training-side representation (internal/tree) optimizes for growth —
// children hang off heap pointers, empty partitions are nil, and Case 3
// of Hunt's method (classify an empty branch with the nearest ancestor's
// majority class) is resolved by re-walking ancestors at classification
// time. The compiled form optimizes for serving: every node is a fixed
// set of scalar slots in parallel slices, children of one node are
// contiguous (one child base + offset instead of a pointer load), nil
// children become synthesized leaves, and the Case-3 fallback class is
// pre-resolved into every node so routing never looks back up the tree.
//
// The contract, checked by the differential tests, is bit-identical
// agreement with the pointer tree: for every dataset row,
// Model.Predict(d, i) == Tree.ClassifyRow(d, i).
package flat

import (
	"fmt"

	"partree/internal/criteria"
	"partree/internal/dataset"
	"partree/internal/tree"
)

// Model is the compiled struct-of-arrays form of one decision tree. All
// per-node slices share indexing: node i's split kind is Kind[i], its
// children (if any) are the NumChild[i] consecutive nodes starting at
// ChildBase[i], and Class[i] is the class to predict if classification
// stops at node i — the node's own majority class when it saw training
// cases, otherwise the pre-resolved nearest-ancestor fallback.
type Model struct {
	Schema *dataset.Schema

	Kind      []tree.SplitKind
	Attr      []int32   // attribute tested (internal nodes)
	Thresh    []float64 // ContBinary threshold
	Mask      []uint64  // CatBinary / binary ContBinned left-subset mask
	ChildBase []int32   // index of first child; children are contiguous
	NumChild  []int32   // 0 for leaves
	Class     []int32   // fallback-resolved prediction class

	// ContBinned bin boundaries, concatenated; node i's edges are
	// Edges[EdgeBase[i] : EdgeBase[i]+EdgeLen[i]].
	EdgeBase []int32
	EdgeLen  []int32
	Edges    []float64
}

// Len returns the number of compiled nodes (synthesized leaves included).
func (m *Model) Len() int { return len(m.Kind) }

// Leaves returns the number of leaf slots in the compiled table.
func (m *Model) Leaves() int {
	n := 0
	for _, k := range m.Kind {
		if k == tree.Leaf {
			n++
		}
	}
	return n
}

// compileNode pairs a source pointer node with the fallback class in
// force when the walk reaches it (the class Tree.Classify would return if
// routing stopped there).
type compileNode struct {
	src      *tree.Node
	fallback int32
}

// Compile flattens t into a Model. Nil children (empty partitions, Case 3
// of Hunt's method) are materialized as leaves carrying the parent's
// effective class; every node's Class slot is the fully resolved
// prediction so Predict never consults ancestors.
func Compile(t *tree.Tree) (*Model, error) {
	if t == nil || t.Root == nil {
		return nil, fmt.Errorf("flat: nil tree")
	}
	if t.Schema == nil {
		return nil, fmt.Errorf("flat: tree has no schema")
	}
	m := &Model{Schema: t.Schema}

	// Breadth-first layout: a node's children are appended as one
	// contiguous run, so sibling lookups are a base + offset.
	queue := []compileNode{{src: t.Root, fallback: t.Root.Class}}
	emit := func(cn compileNode) error {
		n := cn.src
		eff := cn.fallback
		if n != nil && n.N > 0 {
			eff = n.Class
		}
		if n == nil || n.IsLeaf() {
			m.Kind = append(m.Kind, tree.Leaf)
			m.Attr = append(m.Attr, -1)
			m.Thresh = append(m.Thresh, 0)
			m.Mask = append(m.Mask, 0)
			m.ChildBase = append(m.ChildBase, -1)
			m.NumChild = append(m.NumChild, 0)
			m.Class = append(m.Class, eff)
			m.EdgeBase = append(m.EdgeBase, 0)
			m.EdgeLen = append(m.EdgeLen, 0)
			return nil
		}
		if n.Attr < 0 || n.Attr >= t.Schema.NumAttrs() {
			return fmt.Errorf("flat: node attribute %d out of schema range", n.Attr)
		}
		if k := n.NumChildren(); k != len(n.Children) {
			return fmt.Errorf("flat: %v node has %d children, kind implies %d", n.Kind, len(n.Children), k)
		}
		m.Kind = append(m.Kind, n.Kind)
		m.Attr = append(m.Attr, int32(n.Attr))
		m.Thresh = append(m.Thresh, n.Thresh)
		m.Mask = append(m.Mask, n.Mask)
		m.ChildBase = append(m.ChildBase, 0) // patched when children are queued
		m.NumChild = append(m.NumChild, int32(len(n.Children)))
		m.Class = append(m.Class, eff)
		m.EdgeBase = append(m.EdgeBase, int32(len(m.Edges)))
		m.EdgeLen = append(m.EdgeLen, int32(len(n.Edges)))
		m.Edges = append(m.Edges, n.Edges...)
		return nil
	}

	next := 0 // index of the next compiled node to expand
	if err := emit(queue[0]); err != nil {
		return nil, err
	}
	for len(queue) > 0 {
		cn := queue[0]
		queue = queue[1:]
		i := next
		next++
		if m.Kind[i] == tree.Leaf {
			continue
		}
		eff := m.Class[i]
		m.ChildBase[i] = int32(m.Len())
		for _, c := range cn.src.Children {
			child := compileNode{src: c, fallback: eff}
			if err := emit(child); err != nil {
				return nil, err
			}
			queue = append(queue, child)
		}
	}
	return m, nil
}

// route computes the child offset of node i for a raw attribute value,
// mirroring tree.Node.routeValue bit for bit — including the defined Go
// semantics of an over-wide shift (a category or bin index ≥ 64 never
// matches a mask, so it routes to child 1), which the pointer walk also
// exhibits and which split-construction and ReadJSON validation now make
// unreachable for well-formed models.
func (m *Model) route(i int32, cat int32, cont float64) int32 {
	switch m.Kind[i] {
	case tree.CatMultiway:
		return cat
	case tree.CatBinary:
		if cat >= 0 && cat < 64 && m.Mask[i]&(1<<uint(cat)) != 0 {
			return 0
		}
		return 1
	case tree.ContBinary:
		if cont <= m.Thresh[i] {
			return 0
		}
		return 1
	case tree.ContBinned:
		edges := m.Edges[m.EdgeBase[i] : m.EdgeBase[i]+m.EdgeLen[i]]
		b := criteria.BinOf(edges, cont)
		if m.Mask[i] != 0 {
			if b < 64 && m.Mask[i]&(1<<uint(b)) != 0 {
				return 0
			}
			return 1
		}
		return int32(b)
	default:
		panic("flat: routing on a leaf")
	}
}

// Predict classifies row of d (which must share the model's schema
// layout) by walking the flat table. Out-of-range child indexes predict
// the current node's resolved class, exactly as the pointer walk does.
//
// The walk is hand-specialized per split kind: the split kind statically
// determines which column family (Cat/Cont) is read — no per-node nil
// probe as in the pointer walk — and binary kinds need no child-range
// check at all (the compiler laid out exactly two children). Only
// CatMultiway can route out of range.
func (m *Model) Predict(d *dataset.Dataset, row int) int32 {
	i := int32(0)
	for {
		switch m.Kind[i] {
		case tree.Leaf:
			return m.Class[i]
		case tree.ContBinary:
			var c int32
			if d.Cont[m.Attr[i]][row] > m.Thresh[i] {
				c = 1
			}
			i = m.ChildBase[i] + c
		case tree.CatBinary:
			v := d.Cat[m.Attr[i]][row]
			c := int32(1)
			if uint32(v) < 64 && m.Mask[i]&(1<<uint32(v)) != 0 {
				c = 0
			}
			i = m.ChildBase[i] + c
		case tree.CatMultiway:
			c := d.Cat[m.Attr[i]][row]
			if uint32(c) >= uint32(m.NumChild[i]) {
				return m.Class[i]
			}
			i = m.ChildBase[i] + c
		default: // ContBinned
			edges := m.Edges[m.EdgeBase[i] : m.EdgeBase[i]+m.EdgeLen[i]]
			b := criteria.BinOf(edges, d.Cont[m.Attr[i]][row])
			if mask := m.Mask[i]; mask != 0 {
				c := int32(1)
				if b < 64 && mask&(1<<uint(b)) != 0 {
					c = 0
				}
				i = m.ChildBase[i] + c
			} else {
				i = m.ChildBase[i] + int32(b) // b ≤ len(edges) < NumChild by construction
			}
		}
	}
}

// PredictRecord classifies a single record.
func (m *Model) PredictRecord(r *dataset.Record) int32 {
	i := int32(0)
	for m.Kind[i] != tree.Leaf {
		a := m.Attr[i]
		c := m.route(i, r.Cat[a], r.Cont[a])
		if c < 0 || c >= m.NumChild[i] {
			return m.Class[i]
		}
		i = m.ChildBase[i] + c
	}
	return m.Class[i]
}

// PredictInto classifies rows [lo, hi) of d into out[lo:hi]. This is the
// shard unit of the parallel prediction engine.
func (m *Model) PredictInto(d *dataset.Dataset, out []int32, lo, hi int) {
	for i := lo; i < hi; i++ {
		out[i] = m.Predict(d, i)
	}
}

// Accuracy returns the fraction of rows of d the compiled model
// classifies correctly (the flat counterpart of Tree.Accuracy).
func (m *Model) Accuracy(d *dataset.Dataset) float64 {
	if d.Len() == 0 {
		return 0
	}
	ok := 0
	for i := 0; i < d.Len(); i++ {
		if m.Predict(d, i) == d.Class[i] {
			ok++
		}
	}
	return float64(ok) / float64(d.Len())
}
