package flat_test

import (
	"testing"

	"partree/internal/core"
	"partree/internal/dataset"
	"partree/internal/flat"
	"partree/internal/mp"
	"partree/internal/quest"
	"partree/internal/scalparc"
	"partree/internal/sliq"
	"partree/internal/sprint"
	"partree/internal/tree"
)

// genData returns a function-2 Quest sample split into train/test halves.
func genData(t *testing.T, n int, seed uint64) (train, test *dataset.Dataset) {
	t.Helper()
	d, err := quest.Generate(quest.Config{Function: 2, Seed: seed}, n)
	if err != nil {
		t.Fatal(err)
	}
	cut := n * 3 / 4
	return d.Slice(0, cut), d.Slice(cut, n)
}

// buildScalparc grows the SPRINT-family tree on a modeled 2-processor
// machine (the serial algorithm set includes it because it exercises the
// hash-split path; both modes grow the identical tree).
func buildScalparc(train *dataset.Dataset, o tree.Options) *tree.Tree {
	const p = 2
	w := mp.NewWorld(p, mp.SP2())
	blocks := train.BlockPartition(p)
	trees := make([]*tree.Tree, p)
	w.Run(func(c *mp.Comm) {
		trees[c.Rank()] = scalparc.Build(c, blocks[c.Rank()],
			scalparc.Options{Tree: o, Mode: scalparc.DistributedHash}).Tree
	})
	return trees[0]
}

// TestCompileDifferential is the compiled-path contract: for trees grown
// by all four serial algorithms (hunt, sliq, sprint, scalparc) the flat
// model predicts bit-identically to the pointer tree on every row of
// generated function-2 data — train and held-out rows alike.
func TestCompileDifferential(t *testing.T) {
	train, test := genData(t, 4000, 42)
	o := tree.Options{Binary: true, MaxDepth: 12}
	builders := []struct {
		name  string
		build func(*dataset.Dataset, tree.Options) *tree.Tree
	}{
		{"hunt", tree.BuildHunt},
		{"sliq", sliq.Build},
		{"sprint", sprint.Build},
		{"scalparc", buildScalparc},
	}
	for _, b := range builders {
		t.Run(b.name, func(t *testing.T) {
			tr := b.build(train, o)
			m, err := flat.Compile(tr)
			if err != nil {
				t.Fatal(err)
			}
			assertIdentical(t, tr, m, train)
			assertIdentical(t, tr, m, test)
		})
	}
}

// TestCompileMultiwayAndBinned covers the remaining split kinds: classic
// multiway categorical tests (Binary: false) and the breadth-first
// builder's per-node binned continuous tests.
func TestCompileMultiwayAndBinned(t *testing.T) {
	train, test := genData(t, 3000, 7)
	t.Run("multiway", func(t *testing.T) {
		tr := tree.BuildHunt(train, tree.Options{Binary: false, MaxDepth: 10})
		m, err := flat.Compile(tr)
		if err != nil {
			t.Fatal(err)
		}
		assertIdentical(t, tr, m, train)
		assertIdentical(t, tr, m, test)
	})
	t.Run("binned", func(t *testing.T) {
		o := core.Options{Tree: tree.Options{Binary: true, MaxDepth: 10}}
		tr := tree.BuildBFS(train, o.SerialOptions(train))
		m, err := flat.Compile(tr)
		if err != nil {
			t.Fatal(err)
		}
		assertIdentical(t, tr, m, train)
		assertIdentical(t, tr, m, test)
	})
}

func assertIdentical(t *testing.T, tr *tree.Tree, m *flat.Model, d *dataset.Dataset) {
	t.Helper()
	rec := dataset.NewRecord(d.Schema)
	for i := 0; i < d.Len(); i++ {
		want := tr.ClassifyRow(d, i)
		if got := m.Predict(d, i); got != want {
			t.Fatalf("row %d: flat predicts %d, pointer tree %d", i, got, want)
		}
		d.RowInto(i, &rec)
		if got := m.PredictRecord(&rec); got != want {
			t.Fatalf("row %d: flat record path predicts %d, pointer tree %d", i, got, want)
		}
	}
	if ta, fa := tr.Accuracy(d), m.Accuracy(d); ta != fa {
		t.Fatalf("accuracy diverges: pointer %v, flat %v", ta, fa)
	}
}

// TestCompileFallbacks exercises the pre-resolved Case-3 machinery on a
// hand-built tree: nil children, an empty (N = 0) internal node in the
// middle of a path, and an out-of-range multiway branch must all predict
// exactly what the pointer walk predicts.
func TestCompileFallbacks(t *testing.T) {
	s := &dataset.Schema{
		Attrs: []dataset.Attribute{
			{Name: "color", Kind: dataset.Categorical, Values: []string{"r", "g", "b"}},
			{Name: "x", Kind: dataset.Continuous},
		},
		Classes: []string{"no", "yes"},
	}
	// root: multiway on color. Child r: leaf with data (class 1).
	// Child g: nil (Case 3 → root's class 0). Child b: empty internal
	// node (N=0) splitting on x whose left child is a leaf with data
	// (class 1) and right child an empty leaf (falls back past the empty
	// internal node to the root's class 0).
	leafR := &tree.Node{Kind: tree.Leaf, Class: 1, N: 5, Dist: []int64{1, 4}, Depth: 1}
	leafBL := &tree.Node{Kind: tree.Leaf, Class: 1, N: 2, Dist: []int64{0, 2}, Depth: 2}
	leafBR := &tree.Node{Kind: tree.Leaf, Class: 1, N: 0, Dist: []int64{0, 0}, Depth: 2}
	emptyB := &tree.Node{
		Kind: tree.ContBinary, Attr: 1, Thresh: 10, Class: 1, N: 0,
		Dist: []int64{0, 0}, Depth: 1, Children: []*tree.Node{leafBL, leafBR},
	}
	root := &tree.Node{
		Kind: tree.CatMultiway, Attr: 0, Class: 0, N: 9,
		Dist: []int64{5, 4}, Children: []*tree.Node{leafR, nil, emptyB},
	}
	tr := &tree.Tree{Schema: s, Root: root}
	m, err := flat.Compile(tr)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		color int32
		x     float64
	}{
		{0, 0},  // leaf with data
		{1, 0},  // nil child → root fallback
		{2, 5},  // through empty internal to a leaf with data
		{2, 20}, // empty leaf under empty internal → root fallback
	}
	for _, c := range cases {
		r := dataset.Record{Cat: []int32{c.color, 0}, Cont: []float64{0, c.x}}
		want := tr.Classify(&r)
		if got := m.PredictRecord(&r); got != want {
			t.Errorf("color=%d x=%g: flat %d, pointer %d", c.color, c.x, got, want)
		}
	}
}

// TestCompileRejectsMalformed checks the compiler's own validation.
func TestCompileRejectsMalformed(t *testing.T) {
	if _, err := flat.Compile(nil); err == nil {
		t.Error("Compile(nil) succeeded")
	}
	if _, err := flat.Compile(&tree.Tree{}); err == nil {
		t.Error("Compile of rootless tree succeeded")
	}
	s := &dataset.Schema{
		Attrs:   []dataset.Attribute{{Name: "x", Kind: dataset.Continuous}},
		Classes: []string{"a", "b"},
	}
	bad := &tree.Tree{Schema: s, Root: &tree.Node{
		Kind: tree.ContBinary, Attr: 5, Children: []*tree.Node{nil, nil},
	}}
	if _, err := flat.Compile(bad); err == nil {
		t.Error("Compile with out-of-range attribute succeeded")
	}
}

// TestCompileLayout pins the structural invariants the engine relies on:
// breadth-first order, contiguous children, and synthesized leaves for
// nil pointers.
func TestCompileLayout(t *testing.T) {
	train, _ := genData(t, 1500, 11)
	tr := tree.BuildHunt(train, tree.Options{Binary: true, MaxDepth: 8})
	m, err := flat.Compile(tr)
	if err != nil {
		t.Fatal(err)
	}
	st := tr.Stats()
	if m.Len() < st.Nodes {
		t.Fatalf("flat table has %d nodes, pointer tree %d", m.Len(), st.Nodes)
	}
	for i := 0; i < m.Len(); i++ {
		if m.Kind[i] == tree.Leaf {
			if m.NumChild[i] != 0 {
				t.Fatalf("leaf %d has %d children", i, m.NumChild[i])
			}
			continue
		}
		if m.NumChild[i] <= 0 {
			t.Fatalf("internal node %d has no children", i)
		}
		if m.ChildBase[i] <= int32(i) || int(m.ChildBase[i]+m.NumChild[i]) > m.Len() {
			t.Fatalf("node %d children [%d, %d) out of table bounds (len %d)",
				i, m.ChildBase[i], m.ChildBase[i]+m.NumChild[i], m.Len())
		}
	}
}
