package sprint

import (
	"fmt"
	"testing"

	"partree/internal/criteria"
	"partree/internal/dataset"
	"partree/internal/kernel"
	"partree/internal/quest"
	"partree/internal/tree"
)

// TestSprintMatchesHunt: SPRINT's pre-sorted attribute lists plus
// hash-table splitting must grow exactly the tree of the per-node-sorting
// C4.5-style builder, across criteria, split arities and functions.
func TestSprintMatchesHunt(t *testing.T) {
	for _, fn := range []int{1, 2, 6, 7, 10} {
		d, err := quest.Generate(quest.Config{Function: fn, Seed: uint64(fn) * 17}, 1200)
		if err != nil {
			t.Fatal(err)
		}
		for _, binary := range []bool{true, false} {
			for _, crit := range []criteria.Criterion{criteria.Entropy, criteria.Gini} {
				t.Run(fmt.Sprintf("fn%d/binary=%v/%v", fn, binary, crit), func(t *testing.T) {
					o := tree.Options{Binary: binary, Criterion: crit, MaxDepth: 8}
					want := tree.BuildHunt(d, o)
					got := Build(d, o)
					if diff := tree.Diff(want, got); diff != "" {
						t.Fatalf("SPRINT differs from Hunt: %s", diff)
					}
				})
			}
		}
	}
}

func TestSprintWeather(t *testing.T) {
	w := dataset.Weather()
	o := tree.Options{Criterion: criteria.Entropy}
	want := tree.BuildHunt(w, o)
	got := Build(w, o)
	if diff := tree.Diff(want, got); diff != "" {
		t.Fatalf("weather tree differs: %s", diff)
	}
	if acc := got.Accuracy(w); acc != 1 {
		t.Fatalf("accuracy %v", acc)
	}
}

func TestSprintListsStaySorted(t *testing.T) {
	// White-box: after an expansion, children's continuous lists must
	// remain sorted without re-sorting — the point of the algorithm's
	// hash-table splitting phase.
	d, err := quest.Generate(quest.Config{Function: 2, Seed: 5}, 400)
	if err != nil {
		t.Fatal(err)
	}
	s := d.Schema
	o := tree.Options{Binary: true}.WithDefaults()
	root := &tree.Node{Kind: tree.Leaf, Dist: make([]int64, s.NumClasses())}
	lists := make([][]entry, s.NumAttrs())
	for a, attr := range s.Attrs {
		list := make([]entry, d.Len())
		for i := range list {
			v := 0.0
			if attr.Kind == dataset.Continuous {
				v = d.Cont[a][i]
			} else {
				v = float64(d.Cat[a][i])
			}
			list[i] = entry{value: v, rid: d.RID[i], class: d.Class[i]}
		}
		if attr.Kind == dataset.Continuous {
			sortEntries(list)
		}
		lists[a] = list
	}
	children := expand(nodeLists{node: root, lists: lists}, s, o, tree.NewIDGen(1))
	if len(children) == 0 {
		t.Fatal("root did not split")
	}
	for _, child := range children {
		for a, attr := range s.Attrs {
			if attr.Kind != dataset.Continuous {
				continue
			}
			list := child.lists[a]
			for i := 1; i < len(list); i++ {
				if list[i].value < list[i-1].value {
					t.Fatalf("child list for %q lost sorted order at %d", attr.Name, i)
				}
			}
		}
	}
}

func TestSprintPureNode(t *testing.T) {
	s := &dataset.Schema{
		Attrs:   []dataset.Attribute{{Name: "v", Kind: dataset.Continuous}},
		Classes: []string{"only", "other"},
	}
	d := dataset.New(s, 5)
	rec := dataset.NewRecord(s)
	for i := 0; i < 5; i++ {
		rec.Cont[0] = float64(i)
		rec.Class = 0
		rec.RID = int64(i)
		d.Append(rec)
	}
	tr := Build(d, tree.Options{})
	if !tr.Root.IsLeaf() || tr.Root.Class != 0 {
		t.Fatalf("pure data must yield a single leaf, got %+v", tr.Root)
	}
}

func TestSprintEmptyDataset(t *testing.T) {
	s := quest.Schema()
	d := dataset.New(s, 0)
	tr := Build(d, tree.Options{})
	if !tr.Root.IsLeaf() || tr.Root.N != 0 {
		t.Fatalf("empty data must yield an empty leaf, got %+v", tr.Root)
	}
}

func TestScanContinuousMatchesCriteria(t *testing.T) {
	d, err := quest.Generate(quest.Config{Function: 7, Seed: 23}, 300)
	if err != nil {
		t.Fatal(err)
	}
	// Build the sorted list for loan and compare the scan against
	// criteria.BestContinuousSplit on the same ordering.
	tr := Build(d, tree.Options{Binary: true, MaxDepth: 1})
	_ = tr
	list := make([]entry, d.Len())
	for i := range list {
		list[i] = entry{value: d.Cont[quest.Loan][i], rid: d.RID[i], class: d.Class[i]}
	}
	sortEntries(list)
	values := make([]float64, len(list))
	classes := make([]int32, len(list))
	for i, e := range list {
		values[i] = e.value
		classes[i] = e.class
	}
	dist := make([]int64, 2)
	for _, e := range list {
		dist[e.class]++
	}
	var sc kernel.ContScanner
	sc.Reset(dist, int64(len(list)), criteria.Gini)
	for _, e := range list {
		sc.Add(e.value, e.class)
	}
	gotThresh, gotScore, gotOK := sc.Best()
	want, wantOK := criteria.BestContinuousSplit(values, classes, 2, criteria.Gini)
	if gotOK != wantOK || gotThresh != want.Thresh || gotScore != want.Score {
		t.Fatalf("scan (%v, %v, %v) vs criteria (%v, %v)", gotThresh, gotScore, gotOK, want, wantOK)
	}
}

func sortEntries(list []entry) {
	for i := 1; i < len(list); i++ {
		for j := i; j > 0 && (list[j].value < list[j-1].value ||
			(list[j].value == list[j-1].value && list[j].rid < list[j-1].rid)); j-- {
			list[j], list[j-1] = list[j-1], list[j]
		}
	}
}
