// Package sprint implements the serial SPRINT classifier of Shafer,
// Agrawal & Mehta (VLDB 1996), the related-work baseline §2.1–2.2 of the
// paper builds on: continuous attributes are pre-sorted exactly once into
// attribute lists of (value, record id, class) entries; the best binary
// split of a node is found in one scan of each sorted list (no per-node
// re-sorting, unlike C4.5); and after a split every attribute list is
// partitioned among the children by probing a hash table from record id to
// child, which preserves the sorted order.
//
// Given the same criterion and options it grows exactly the tree of
// tree.BuildHunt — the equivalence is asserted by the test suite — while
// trading the O(n log n) per-node sorts for one up-front sort plus an
// O(n) hash-probe partition per level, the efficiency argument of the
// SLIQ/SPRINT line of work.
package sprint

import (
	"sort"

	"partree/internal/criteria"
	"partree/internal/dataset"
	"partree/internal/kernel"
	"partree/internal/tree"
)

// entry is one attribute-list element.
type entry struct {
	value float64 // continuous value, or categorical code
	rid   int64
	class int32
}

// nodeLists holds one node's attribute lists, index-aligned with the
// schema (continuous lists stay sorted; categorical lists are in arrival
// order, which is irrelevant for histograms).
type nodeLists struct {
	node  *tree.Node
	lists [][]entry
}

// Build grows a decision tree with the SPRINT algorithm. Continuous
// attributes get native binary threshold tests; categorical attributes get
// binary subset tests when o.Binary is set, multiway tests otherwise.
func Build(d *dataset.Dataset, o tree.Options) *tree.Tree {
	// Pre-sorting step: one list per attribute in row order (continuous
	// lists are sorted by grow).
	rootLists := make([][]entry, d.Schema.NumAttrs())
	for a, attr := range d.Schema.Attrs {
		list := make([]entry, d.Len())
		if attr.Kind == dataset.Continuous {
			col := d.Cont[a]
			for i := range list {
				list[i] = entry{value: col[i], rid: d.RID[i], class: d.Class[i]}
			}
		} else {
			col := d.Cat[a]
			for i := range list {
				list[i] = entry{value: float64(col[i]), rid: d.RID[i], class: d.Class[i]}
			}
		}
		rootLists[a] = list
	}
	return grow(d.Schema, rootLists, o)
}

// BuildTable grows a SPRINT tree from a chunked table. SPRINT's only
// whole-column access is the one-time pre-sorting pass, streamed here
// chunk by chunk; the attribute lists it builds are SPRINT's own resident
// working set, exactly as Build's. Bit-identical to Build on the same
// rows: entries arrive in the same row order and the (value, rid)
// comparator is a total order (rids are unique).
func BuildTable(t dataset.Table, o tree.Options) (*tree.Tree, error) {
	s := t.Schema()
	rootLists := make([][]entry, s.NumAttrs())
	for a := range s.Attrs {
		rootLists[a] = make([]entry, t.Len())
	}
	var ch dataset.Chunk
	for k := 0; k < t.NumChunks(); k++ {
		if _, err := t.ReadChunk(k, &ch); err != nil {
			return nil, err
		}
		for a := range s.Attrs {
			list := rootLists[a][ch.Lo:ch.Hi]
			if ch.Cont[a] != nil {
				for i, v := range ch.Cont[a] {
					list[i] = entry{value: v, rid: ch.RID[i], class: ch.Class[i]}
				}
			} else {
				for i, code := range ch.Cat[a] {
					list[i] = entry{value: float64(code), rid: ch.RID[i], class: ch.Class[i]}
				}
			}
		}
	}
	return grow(s, rootLists, o), nil
}

// grow is the SPRINT queue loop shared by the in-RAM and chunk-fed entry
// points: continuous root lists are sorted by (value, rid), then nodes
// expand in breadth-first order.
func grow(s *dataset.Schema, rootLists [][]entry, o tree.Options) *tree.Tree {
	o = o.WithDefaults()
	root := &tree.Node{Kind: tree.Leaf, Dist: make([]int64, s.NumClasses())}
	ids := tree.NewIDGen(1)
	for a, attr := range s.Attrs {
		if attr.Kind != dataset.Continuous {
			continue
		}
		list := rootLists[a]
		sort.Slice(list, func(x, y int) bool {
			if list[x].value != list[y].value {
				return list[x].value < list[y].value
			}
			return list[x].rid < list[y].rid
		})
	}

	queue := []nodeLists{{node: root, lists: rootLists}}
	for len(queue) > 0 {
		nl := queue[0]
		queue = queue[1:]
		queue = append(queue, expand(nl, s, o, ids)...)
	}
	return &tree.Tree{Schema: s, Root: root}
}

// expand decides one node from its attribute lists and, if it splits,
// partitions the lists among the children via the rid hash table.
func expand(nl nodeLists, s *dataset.Schema, o tree.Options, ids *tree.IDGen) []nodeLists {
	n := nl.node
	c := s.NumClasses()

	// Class distribution from any one list (all lists hold the same rids).
	dist := make([]int64, c)
	for _, e := range nl.lists[0] {
		dist[e.class]++
	}
	n.Dist = dist
	n.N = int64(len(nl.lists[0]))
	if n.N > 0 {
		n.Class = tree.MajorityClass(dist)
	}
	if n.N < int64(o.MinSplit) || (o.MaxDepth > 0 && n.Depth >= o.MaxDepth) {
		return nil
	}
	parent := o.Criterion.Impurity(dist, n.N)
	if parent == 0 {
		return nil
	}

	// One scan per attribute list to find the best test. The kernel
	// scanner is shared across attributes, so the per-node scan is
	// allocation-free apart from its first use.
	bestGain := o.MinGain
	bestAttr := -1
	var bestKind tree.SplitKind
	var bestThresh float64
	var bestMask uint64
	var sc kernel.ContScanner
	for a, attr := range s.Attrs {
		if attr.Kind == dataset.Continuous {
			sc.Reset(dist, n.N, o.Criterion)
			for _, e := range nl.lists[a] {
				sc.Add(e.value, e.class)
			}
			thresh, score, ok := sc.Best()
			if !ok {
				continue
			}
			if gain := parent - score; gain > bestGain {
				bestGain, bestAttr, bestKind, bestThresh = gain, a, tree.ContBinary, thresh
				bestMask = 0
			}
		} else {
			h := criteria.GetHist(attr.Cardinality(), c)
			for _, e := range nl.lists[a] {
				h.Add(int32(e.value), e.class)
			}
			mask, score, ok := criteria.ScoreHist(h, o.Criterion, o.Binary)
			criteria.PutHist(h)
			if !ok {
				continue
			}
			kind := tree.CatMultiway
			if o.Binary {
				kind = tree.CatBinary
			}
			if gain := parent - score; gain > bestGain {
				bestGain, bestAttr, bestKind, bestMask = gain, a, kind, mask
				bestThresh = 0
			}
		}
	}
	if bestAttr < 0 {
		return nil
	}

	// Attach the split.
	n.Kind = bestKind
	n.Attr = bestAttr
	n.Thresh = bestThresh
	n.Mask = bestMask
	numChildren := 2
	if bestKind == tree.CatMultiway {
		numChildren = s.Attrs[bestAttr].Cardinality()
	}
	n.Children = make([]*tree.Node, numChildren)
	for i := range n.Children {
		n.Children[i] = &tree.Node{
			ID:    ids.Next(),
			Kind:  tree.Leaf,
			Class: n.Class,
			Depth: n.Depth + 1,
			Dist:  make([]int64, c),
		}
	}

	// The SPRINT splitting phase: route the winning attribute's list
	// through the test, recording rid → child in the hash table, then
	// partition every list by probing it. Order within each child is
	// preserved, so continuous lists remain sorted with no re-sort.
	hash := make(map[int64]int32, len(nl.lists[bestAttr]))
	for _, e := range nl.lists[bestAttr] {
		hash[e.rid] = int32(route(n, e.value))
	}
	childLists := make([][][]entry, numChildren)
	for ci := range childLists {
		childLists[ci] = make([][]entry, s.NumAttrs())
	}
	for a := range s.Attrs {
		for _, e := range nl.lists[a] {
			ci := hash[e.rid]
			childLists[ci][a] = append(childLists[ci][a], e)
		}
	}
	var out []nodeLists
	for ci := range childLists {
		if len(childLists[ci][0]) > 0 {
			out = append(out, nodeLists{node: n.Children[ci], lists: childLists[ci]})
		}
	}
	return out
}

// route applies the node's test to one raw attribute value.
func route(n *tree.Node, value float64) int {
	switch n.Kind {
	case tree.ContBinary:
		if value <= n.Thresh {
			return 0
		}
		return 1
	case tree.CatBinary:
		if n.Mask&(1<<uint(int32(value))) != 0 {
			return 0
		}
		return 1
	case tree.CatMultiway:
		return int(int32(value))
	default:
		panic("sprint: routing through a leaf")
	}
}
