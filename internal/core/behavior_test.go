package core

import (
	"testing"

	"partree/internal/mp"
	"partree/internal/tree"
)

// The behavioral tests guard the modeled-performance claims behind the
// paper's figures: they assert orderings of modeled runtimes, not absolute
// values, so they are robust to cost-parameter tweaks that preserve the
// regime.

// TestHybridBeatsBothAtScale: Figure 6's headline — at 16 processors the
// hybrid formulation is the fastest of the three.
func TestHybridBeatsBothAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("modeled-performance test skipped in -short mode")
	}
	d := genDiscrete(t, 40000, 2, 1998)
	o := Options{Tree: tree.Options{Binary: true}}
	times := map[string]float64{}
	for _, f := range formulations {
		w := mp.NewWorld(16, mp.SP2())
		blocks := d.BlockPartition(16)
		w.Run(func(c *mp.Comm) {
			f.build(c, blocks[c.Rank()], o)
		})
		times[f.name] = w.MaxClock()
	}
	if !(times["hybrid"] < times["sync"] && times["hybrid"] < times["partitioned"]) {
		t.Fatalf("hybrid is not fastest at P=16: %v", times)
	}
}

// TestSyncEfficiencyDegrades: the synchronous approach's efficiency must
// fall substantially as processors grow (the paper's Figure 6 story for
// sync: fine at 2, poor at 16).
func TestSyncEfficiencyDegrades(t *testing.T) {
	if testing.Short() {
		t.Skip("modeled-performance test skipped in -short mode")
	}
	d := genDiscrete(t, 30000, 2, 77)
	o := Options{Tree: tree.Options{Binary: true}}
	runAt := func(p int) float64 {
		w := mp.NewWorld(p, mp.SP2())
		blocks := d.BlockPartition(p)
		w.Run(func(c *mp.Comm) { BuildSync(c, blocks[c.Rank()], o) })
		return w.MaxClock()
	}
	t1 := runAt(1)
	e2 := t1 / (2 * runAt(2))
	e16 := t1 / (16 * runAt(16))
	if e2 < 0.75 {
		t.Errorf("sync efficiency at P=2 is %.2f, expected decent (>0.75)", e2)
	}
	if e16 > 0.6*e2 {
		t.Errorf("sync efficiency barely degrades: e2=%.2f e16=%.2f", e2, e16)
	}
}

// TestSplitRatioUShape: Figure 7 — the hybrid's runtime is minimized near
// the proposed ratio 1.0; both very eager (0.25) and very late (4.0)
// splitting must be no better.
func TestSplitRatioUShape(t *testing.T) {
	if testing.Short() {
		t.Skip("modeled-performance test skipped in -short mode")
	}
	d := genDiscrete(t, 25000, 2, 1998)
	runAt := func(ratio float64) float64 {
		o := Options{Tree: tree.Options{Binary: true}, SplitRatio: ratio}
		w := mp.NewWorld(8, mp.SP2())
		blocks := d.BlockPartition(8)
		w.Run(func(c *mp.Comm) { BuildHybrid(c, blocks[c.Rank()], o) })
		return w.MaxClock()
	}
	tEager, tOne, tLate := runAt(0.25), runAt(1.0), runAt(4.0)
	if tOne > tEager {
		t.Errorf("ratio 1.0 (%.4f) slower than eager 0.25 (%.4f)", tOne, tEager)
	}
	if tOne > tLate {
		t.Errorf("ratio 1.0 (%.4f) slower than late 4.0 (%.4f)", tOne, tLate)
	}
}

// TestSyncMovesNoRecords: the synchronous formulation's defining property
// — it never ships training records, only histograms — so its traffic is
// identical whether records are skewed or balanced, and far below the
// dataset size × log P that a shuffle would cost.
func TestSyncNeverShuffles(t *testing.T) {
	d := genDiscrete(t, 4000, 2, 3)
	o := Options{Tree: tree.Options{Binary: true}}
	w := mp.NewWorld(4, mp.SP2())
	blocks := d.BlockPartition(4)
	w.Run(func(c *mp.Comm) { BuildSync(c, blocks[c.Rank()], o) })
	// With record payloads the byte volume would include RecordBytes-sized
	// frames; histogram reductions are 8-byte-int vectors whose total we
	// can bound: every message in sync is a reduction slice, so bytes must
	// be a multiple of 8.
	if w.Traffic().Bytes%8 != 0 {
		t.Fatal("sync moved non-histogram payloads")
	}
}

// TestPartitionedReachesSerialPhase: after enough splits every processor
// works alone; from then on no further messages are sent until assembly.
// We verify the partitioned build's message count is far below the
// synchronous build's on a deep tree (which keeps reducing forever).
func TestPartitionedFewerMessagesThanSync(t *testing.T) {
	d := genDiscrete(t, 8000, 2, 9)
	o := Options{Tree: tree.Options{Binary: true}}
	msgs := map[string]int64{}
	for _, f := range formulations[:2] { // sync, partitioned
		w := mp.NewWorld(8, mp.SP2())
		blocks := d.BlockPartition(8)
		w.Run(func(c *mp.Comm) { f.build(c, blocks[c.Rank()], o) })
		msgs[f.name] = w.Traffic().Msgs
	}
	if msgs["partitioned"] >= msgs["sync"] {
		t.Fatalf("partitioned sent %d messages vs sync %d — expected far fewer",
			msgs["partitioned"], msgs["sync"])
	}
}

// TestHybridSyncEveryNodesInvariance: the buffer size changes costs, not
// results.
func TestSyncEveryNodesInvariance(t *testing.T) {
	d := genDiscrete(t, 5000, 2, 21)
	var ref *tree.Tree
	for _, buf := range []int{1, 7, 100} {
		o := Options{Tree: tree.Options{Binary: true}, SyncEveryNodes: buf}
		got, _ := runParallel(t, BuildSync, d, 4, o)
		if ref == nil {
			ref = got
		} else if diff := tree.Diff(ref, got); diff != "" {
			t.Fatalf("buffer %d changed the tree: %s", buf, diff)
		}
	}
}

// TestParallelDeterminism: two identical parallel runs give identical
// trees AND identical modeled clocks.
func TestParallelDeterminism(t *testing.T) {
	d := genDiscrete(t, 6000, 2, 5)
	o := Options{Tree: tree.Options{Binary: true}}
	type outcome struct {
		clock float64
		nodes int
	}
	run := func(build buildFn) outcome {
		w := mp.NewWorld(8, mp.SP2())
		blocks := d.BlockPartition(8)
		trees := make([]*tree.Tree, 8)
		w.Run(func(c *mp.Comm) { trees[c.Rank()] = build(c, blocks[c.Rank()], o) })
		return outcome{clock: w.MaxClock(), nodes: trees[0].Stats().Nodes}
	}
	for _, f := range formulations {
		a, b := run(f.build), run(f.build)
		if a != b {
			t.Fatalf("%s is not deterministic: %+v vs %+v", f.name, a, b)
		}
	}
}

// TestMoreProcessorsThanRecords: degenerate but legal — some ranks own no
// records at all; the build must still terminate with the right tree.
func TestMoreProcessorsThanRecords(t *testing.T) {
	d := genDiscrete(t, 6, 2, 99)
	o := Options{Tree: tree.Options{Binary: true}}
	want := tree.BuildBFS(d, o.SerialOptions(d))
	for _, f := range formulations {
		got, _ := runParallel(t, f.build, d, 8, o)
		if diff := tree.Diff(want, got); diff != "" {
			t.Fatalf("%s with empty ranks differs: %s", f.name, diff)
		}
	}
}

// TestSingleRecord: a one-record training set is a single leaf everywhere.
func TestSingleRecord(t *testing.T) {
	d := genDiscrete(t, 1, 2, 7)
	o := Options{Tree: tree.Options{Binary: true}}
	for _, f := range formulations {
		got, _ := runParallel(t, f.build, d, 4, o)
		if !got.Root.IsLeaf() || got.Root.N != 1 {
			t.Fatalf("%s: single record gave %+v", f.name, got.Root)
		}
	}
}

// TestMaxDepthParallel: the depth cap holds identically in parallel.
func TestMaxDepthParallel(t *testing.T) {
	d := genDiscrete(t, 3000, 2, 31)
	o := Options{Tree: tree.Options{Binary: true, MaxDepth: 4}}
	want := tree.BuildBFS(d, o.SerialOptions(d))
	for _, f := range formulations {
		got, _ := runParallel(t, f.build, d, 4, o)
		if diff := tree.Diff(want, got); diff != "" {
			t.Fatalf("%s: %s", f.name, diff)
		}
		if st := got.Stats(); st.MaxDepth > 4 {
			t.Fatalf("%s: depth %d exceeds cap", f.name, st.MaxDepth)
		}
	}
}
