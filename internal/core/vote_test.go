package core

import (
	"encoding/binary"
	"fmt"
	"strings"
	"testing"

	"partree/internal/dataset"
	"partree/internal/kernel"
	"partree/internal/quest"
	"partree/internal/tree"
)

// genWide produces a raw Quest dataset widened to attrs attributes: the
// nine paper attributes (which alone determine the class) plus synthetic
// noise extras — the substrate on which voting must concentrate the
// reduction on the informative attributes.
func genWide(t testing.TB, n, attrs int, seed uint64) *dataset.Dataset {
	t.Helper()
	d, err := quest.Generate(quest.Config{Function: 2, Seed: seed, Attrs: attrs}, n)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	return d
}

func wideOptions() Options {
	return Options{Tree: tree.Options{Binary: true, MaxDepth: 8},
		SyncEveryNodes: 8, MicroBins: 32, NodeBins: 6}
}

// TestVotedExactAtLargeK pins the exactness boundary: with K at least
// the attribute count the voted gate short-circuits to the exact code
// path, so every formulation must produce not just the same tree but
// the same modeled clock and the same per-phase × per-collective
// breakdown table, on discrete and continuous data, at non-power-of-two
// processor counts included.
func TestVotedExactAtLargeK(t *testing.T) {
	type datum struct {
		name string
		d    *dataset.Dataset
		o    Options
	}
	data := []datum{
		{"discrete", genDiscrete(t, 1500, 2, 42),
			Options{Tree: tree.Options{Binary: true}, SyncEveryNodes: 8}},
		{"continuous", genContinuous(t, 1200, 2, 7),
			Options{Tree: tree.Options{Binary: true}, SyncEveryNodes: 8, MicroBins: 32, NodeBins: 6}},
	}
	for _, dt := range data {
		nA := dt.d.Schema.NumAttrs()
		for _, f := range formulations {
			for _, p := range []int{1, 3, 6} {
				t.Run(fmt.Sprintf("%s/%s/p%d", dt.name, f.name, p), func(t *testing.T) {
					exact, ew := runParallel(t, f.build, dt.d, p, dt.o)
					vo := dt.o
					vo.Tree.Vote = kernel.VoteOptions{K: nA}
					voted, vw := runParallel(t, f.build, dt.d, p, vo)
					if diff := tree.Diff(exact, voted); diff != "" {
						t.Fatalf("K=numAttrs tree differs from exact: %s", diff)
					}
					if ec, vc := ew.MaxClock(), vw.MaxClock(); ec != vc {
						t.Fatalf("modeled clock %.9f != exact %.9f", vc, ec)
					}
					if et, vt := ew.Breakdown().Table(), vw.Breakdown().Table(); et != vt {
						t.Fatalf("breakdown differs from exact:\n--- exact ---\n%s\n--- voted ---\n%s", et, vt)
					}
				})
			}
		}
	}
}

// TestVotedReducesTraffic: on a wide schema an active vote (K well below
// the attribute count) must strictly cut the modeled communication
// volume of every formulation while still growing a non-trivial tree,
// and its breakdown must carry the two vote phases.
func TestVotedReducesTraffic(t *testing.T) {
	d := genWide(t, 2000, 64, 17)
	o := wideOptions()
	for _, f := range formulations {
		t.Run(f.name, func(t *testing.T) {
			_, ew := runParallel(t, f.build, d, 4, o)
			vo := o
			vo.Tree.Vote = kernel.VoteOptions{K: 4}
			voted, vw := runParallel(t, f.build, d, 4, vo)
			eb, vb := ew.Traffic().Bytes, vw.Traffic().Bytes
			if vb >= eb {
				t.Fatalf("voted build moved %d bytes, exact %d — no reduction", vb, eb)
			}
			if st := voted.Stats(); st.Nodes < 3 {
				t.Fatalf("voted tree degenerate: %+v", st)
			}
			tbl := vw.Breakdown().Table()
			for _, phase := range []string{PhaseVoteBallot, PhaseVoteHist} {
				if !strings.Contains(tbl, phase) {
					t.Fatalf("voted breakdown lacks phase %q:\n%s", phase, tbl)
				}
			}
		})
	}
}

// TestVotedSubtractionInvariance: the voted synchronous path composes
// with sibling subtraction — elections are a pure function of globally
// identical data, deliberately independent of the rank-local reuse
// cache, so the tree must be bit-identical with the reuse layer on and
// off, and subtraction must still save bytes under voting.
func TestVotedSubtractionInvariance(t *testing.T) {
	d := genWide(t, 2000, 32, 23)
	base := wideOptions()
	base.Tree.Vote = kernel.VoteOptions{K: 3}
	for _, p := range []int{3, 4} {
		t.Run(fmt.Sprintf("p%d", p), func(t *testing.T) {
			plain, pw := runParallel(t, BuildSync, d, p, base)
			so := base
			so.Tree.Reuse = kernel.Options{Subtraction: true}
			sub, sw := runParallel(t, BuildSync, d, p, so)
			if diff := tree.Diff(plain, sub); diff != "" {
				t.Fatalf("voted tree changed under subtraction: %s", diff)
			}
			if pb, sb := pw.Traffic().Bytes, sw.Traffic().Bytes; sb >= pb {
				t.Fatalf("subtraction under voting saved nothing: %d vs %d bytes", sb, pb)
			}
		})
	}
}

// TestVotedSerialMatchesParallelK: a single rank is a one-voter
// electorate whose top-k always contains its own argmax, but the
// candidate *budget* still clips the usable set; what the exactness
// boundary guarantees is K ≥ numAttrs (TestVotedExactAtLargeK) and
// P = 1 (here): a serial voted build short-circuits and equals serial
// exact bit-for-bit even with a tiny K.
func TestVotedSerialMatchesParallelK(t *testing.T) {
	d := genWide(t, 1500, 32, 31)
	o := wideOptions()
	for _, f := range formulations {
		t.Run(f.name, func(t *testing.T) {
			exact, _ := runParallel(t, f.build, d, 1, o)
			vo := o
			vo.Tree.Vote = kernel.VoteOptions{K: 2}
			voted, _ := runParallel(t, f.build, d, 1, vo)
			if diff := tree.Diff(exact, voted); diff != "" {
				t.Fatalf("serial voted tree differs from serial exact: %s", diff)
			}
		})
	}
}

// TestVotedResumeAfterHalt: a voted build killed wholesale mid-level
// must resume from the durable cut to the exact tree the fault-free
// voted run grows — the election families ride in the PTLV v2
// checkpoint section, so a resumed level elects identically.
func TestVotedResumeAfterHalt(t *testing.T) {
	d := genWide(t, 1500, 32, 29)
	o := wideOptions()
	o.Tree.Vote = kernel.VoteOptions{K: 3}
	const p = 4
	want, _ := runParallel(t, BuildSync, d, p, o)
	for _, n := range []int{1, 4, 8} {
		t.Run(fmt.Sprintf("sync/halt-op%d", n), func(t *testing.T) {
			dir := t.TempDir()
			crashProcess(t, BuildSync, d, p, o, dir, n)
			trees, _, stats := resumeProcess(t, BuildSync, d, p, o, dir)
			requireAllEqual(t, want, trees)
			if stats.Restores == 0 {
				t.Fatalf("voted resume restored nothing: %+v", stats)
			}
		})
	}
	// The restart-from-root builders re-run their deterministic voted
	// schedule from the init cut.
	t.Run("hybrid/halt-op4", func(t *testing.T) {
		wantH, _ := runParallel(t, BuildHybrid, d, p, o)
		dir := t.TempDir()
		crashProcess(t, BuildHybrid, d, p, o, dir, 4)
		trees, _, _ := resumeProcess(t, BuildHybrid, d, p, o, dir)
		requireAllEqual(t, wantH, trees)
	})
}

// TestLevelCkptVoteRoundTrip pins the PTLV v2 codec: vote families
// (including nil vs empty parent sets, which the sentinel must keep
// distinct) survive a round trip, and a version-1 payload — one without
// the trailing vote section — still decodes, yielding nil vote state.
func TestLevelCkptVoteRoundTrip(t *testing.T) {
	d := genDiscrete(t, 200, 2, 3)
	o := Options{Tree: tree.Options{Binary: true}}
	built := tree.BuildBFS(d, o.SerialOptions(d))
	ranges := [][2]float64{{0, 1}, {-2.5, 7.25}}
	vs := &voteState{fams: []voteFam{
		{lo: 0, n: 2, root: true},
		{lo: 2, n: 3, pAttrs: []int32{1, 4, 7}},
		{lo: 5, n: 1, pAttrs: []int32{}},
	}}

	buf := encodeLevelCkpt(d, built.Root, nil, 3, 41, ranges, vs)
	lk, err := decodeLevelCkpt(buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if lk.level != 3 || lk.idsNext != 41 || len(lk.ranges) != 2 {
		t.Fatalf("header fields lost: %+v", lk)
	}
	if lk.vote == nil || len(lk.vote.fams) != len(vs.fams) {
		t.Fatalf("vote section lost: %+v", lk.vote)
	}
	for i, f := range lk.vote.fams {
		w := vs.fams[i]
		if f.lo != w.lo || f.n != w.n || f.root != w.root {
			t.Fatalf("fam %d: got %+v want %+v", i, f, w)
		}
		if (f.pAttrs == nil) != (w.pAttrs == nil) {
			t.Fatalf("fam %d: nil-ness of pAttrs not preserved: got %v want %v", i, f.pAttrs, w.pAttrs)
		}
		if len(f.pAttrs) != len(w.pAttrs) {
			t.Fatalf("fam %d: pAttrs %v want %v", i, f.pAttrs, w.pAttrs)
		}
		for j := range f.pAttrs {
			if f.pAttrs[j] != w.pAttrs[j] {
				t.Fatalf("fam %d: pAttrs %v want %v", i, f.pAttrs, w.pAttrs)
			}
		}
	}

	// nil vote state encodes an empty family section and decodes to nil.
	buf0 := encodeLevelCkpt(d, built.Root, nil, 2, 11, nil, nil)
	if lk0, err := decodeLevelCkpt(buf0); err != nil || lk0.vote != nil {
		t.Fatalf("nil vote state: err=%v vote=%+v", err, lk0.vote)
	}

	// A v1 payload is buf0 without its (empty) vote section, version
	// patched back to 1 — the pre-vote layout byte for byte.
	v1 := append([]byte(nil), buf0[:len(buf0)-4]...)
	binary.LittleEndian.PutUint32(v1[len(levelCkptMagic):], 1)
	lk1, err := decodeLevelCkpt(v1)
	if err != nil {
		t.Fatalf("v1 decode: %v", err)
	}
	if lk1.vote != nil {
		t.Fatalf("v1 cut decoded vote state: %+v", lk1.vote)
	}
	if lk1.level != 2 || lk1.idsNext != 11 {
		t.Fatalf("v1 header fields lost: %+v", lk1)
	}

	// A v1 payload carrying a vote section must be rejected as trailing
	// bytes — the section is a v2 construct.
	bad := append([]byte(nil), buf...)
	binary.LittleEndian.PutUint32(bad[len(levelCkptMagic):], 1)
	if _, err := decodeLevelCkpt(bad); err == nil {
		t.Fatal("v1 payload with trailing vote section decoded without error")
	}
}
