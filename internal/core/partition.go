package core

import (
	"partree/internal/dataset"
	"partree/internal/kernel"
	"partree/internal/mp"
	"partree/internal/tree"
)

// BuildPartitioned runs the Partitioned Tree Construction Approach
// (§3.2). The processor group cooperatively expands one node at a time
// (starting from the root, with the same reduction as the synchronous
// approach); after each expansion the group and the training records are
// partitioned across the successor nodes:
//
//   - Case 1 (more successors than processors): the successors are grouped
//     into |P| node groups with roughly equal training cases, records are
//     shuffled so each processor holds exactly its group's records, and
//     each processor grows its subtrees with the sequential algorithm;
//   - Case 2 (otherwise): each successor gets a processor subset
//     proportional to its training cases (at least one), records are
//     shuffled and evenly balanced within each subset, and the subsets
//     recurse independently.
//
// The complete tree is assembled on rank 0 and replicated to every rank.
func BuildPartitioned(c *mp.Comm, local *dataset.Dataset, o Options) *tree.Tree {
	o = o.WithDefaults()
	if o.FT != nil && o.FT.Store != nil && c.Size() > 1 {
		out := RunRestartable(c, local, o.FT, func(c *mp.Comm, d *dataset.Dataset) any {
			return buildPartitionedOnce(c, d, o)
		})
		return out.(*tree.Tree)
	}
	return buildPartitionedOnce(c, local, o)
}

// buildPartitionedOnce is one (restartable) construction attempt.
func buildPartitionedOnce(c *mp.Comm, local *dataset.Dataset, o Options) *tree.Tree {
	setupBinner(c, local, &o)
	root := newRoot(local.Schema)
	ids := tree.NewIDGen(1)
	ptcExpand(c, local, tree.FrontierItem{Node: root, Idx: local.AllIndex()}, o, ids)
	root = bcastTree(c, root)
	return &tree.Tree{Schema: local.Schema, Root: root}
}

// ptcExpand expands the single node it within the processor group c.
// Invariant: when it returns, comm rank 0 holds the complete subtree
// rooted at it.Node.
func ptcExpand(c *mp.Comm, d *dataset.Dataset, it tree.FrontierItem, o Options, ids *tree.IDGen) {
	if c.Size() == 1 {
		c.BeginPhase(PhaseSequential)
		ops, wops := tree.GrowFrontierBFS(d, []tree.FrontierItem{it}, o.Tree, ids)
		c.Compute(float64(ops))
		chargeWordOps(c, wops)
		c.EndPhase()
		return
	}

	// Step 1: the group expands the node cooperatively (§3.1 method).
	s := d.Schema
	statsLen := tree.StatsLen(s, o.Tree)
	flat := kernel.GetInt64(statsLen)
	c.BeginPhase(PhaseStatistics)
	c.Compute(float64(tree.ComputeStatsInto(flat, d, it.Idx, o.Tree)))
	c.EndPhase()
	if o.Tree.Vote.Active(len(s.Attrs)) {
		// Voted reduction: nominate from the local statistics already in
		// flat, elect ≤2k candidates, reduce only their blocks (vote.go).
		voteReduceNode(c, flat, s, o)
	} else {
		c.BeginPhase(PhaseReduction)
		// Sibling subtraction does not apply here — after the expansion the
		// children move to disjoint processor subsets, so no rank sees a whole
		// family again — but the sparse encoding of the single-node reduction
		// still pays near the leaves of deep Case 2 recursions.
		mp.AllreduceSum(c, flat, o.Tree.Reuse.SparseThreshold)
		c.EndPhase()
	}
	c.BeginPhase(PhaseStatistics)
	var routeOps int64
	children := tree.ExpandNode(it, tree.DecodeStats(flat, s, o.Tree), d, o.Tree, ids, &routeOps)
	c.Compute(float64(routeOps))
	c.EndPhase()
	kernel.PutInt64(flat) // stats fully consumed by ExpandNode; recycle before recursing
	if len(children) == 0 {
		return // leaf: nothing to partition
	}

	// Step 2: partition successors and processors.
	p := c.Size()
	weights := make([]int64, len(children))
	keys := make([]int, len(children))
	rows := make(map[int][]int32, len(children))
	for ki, ch := range children {
		weights[ki] = ch.GlobalN
		keys[ki] = ki
		rows[ki] = ch.Idx
	}

	if len(children) > p {
		// Case 1: group the successor nodes, one group per processor.
		group := balanceGroups(weights, p)
		targets := make(map[int][]int, len(children))
		for ki := range children {
			targets[ki] = []int{group[ki]}
		}
		newD, perKey := redistribute(c, d, keys, rows, targets)
		var mine []tree.FrontierItem
		for ki, ch := range children {
			if group[ki] == c.Rank() {
				mine = append(mine, tree.FrontierItem{Node: ch.Node, Idx: perKey[ki], GlobalN: ch.GlobalN})
			}
		}
		c.BeginPhase(PhaseSequential)
		ops, wops := tree.GrowFrontierBFS(newD, mine, o.Tree, ids)
		c.Compute(float64(ops))
		chargeWordOps(c, wops)
		c.EndPhase()

		// Assembly: every rank ships its completed subtrees to rank 0.
		if c.Rank() == 0 {
			for r := 1; r < p; r++ {
				ks, roots := recvSubtrees(c, r)
				for i, k := range ks {
					graft(children[k].Node, roots[i])
				}
			}
		} else {
			var ks []int
			var roots []*tree.Node
			for ki, ch := range children {
				if group[ki] == c.Rank() {
					ks = append(ks, ki)
					roots = append(roots, ch.Node)
				}
			}
			sendSubtrees(c, 0, ks, roots)
		}
		return
	}

	// Case 2: processor subsets proportional to the successors' cases.
	procs := proportionalProcs(weights, p)
	starts := make([]int, len(children)+1)
	for ki, n := range procs {
		starts[ki+1] = starts[ki] + n
	}
	targets := make(map[int][]int, len(children))
	for ki := range children {
		sub := make([]int, procs[ki])
		for j := range sub {
			sub[j] = starts[ki] + j
		}
		targets[ki] = sub
	}
	myKi := 0
	for ki := range children {
		if c.Rank() >= starts[ki] && c.Rank() < starts[ki+1] {
			myKi = ki
			break
		}
	}
	newD, perKey := redistribute(c, d, keys, rows, targets)
	c.BeginPhase(PhaseLoadBalance)
	sub := c.Split(myKi, c.Rank())
	c.EndPhase()
	child := children[myKi]
	ptcExpand(sub, newD, tree.FrontierItem{Node: child.Node, Idx: perKey[myKi], GlobalN: child.GlobalN}, o, ids)

	// Assembly: each subset leader forwards its completed child subtree to
	// rank 0 of this group (the subset of child 0 is led by rank 0 itself).
	if c.Rank() == 0 {
		for ki := 1; ki < len(children); ki++ {
			ks, roots := recvSubtrees(c, starts[ki])
			for i, k := range ks {
				graft(children[k].Node, roots[i])
			}
		}
	} else if c.Rank() == starts[myKi] {
		sendSubtrees(c, 0, []int{myKi}, []*tree.Node{child.Node})
	}
}
