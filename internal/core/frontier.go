package core

import (
	"math/bits"

	"partree/internal/dataset"
	"partree/internal/kernel"
	"partree/internal/mp"
	"partree/internal/tree"
)

// levelCache carries the sibling-subtraction state of a synchronous build
// across levels: rd holds the previous level's post-reduction parent
// blocks, wr collects this level's. The pair swaps at each level boundary
// so the steady state allocates nothing per family. A nil *levelCache
// disables subtraction. The cache is rank-local state computed from global
// (post-reduction) data, so every rank holds an identical cache with no
// exchange; it must be dropped whenever the frontier its keys refer to is
// reshaped — hybrid repartitions and checkpoint rollbacks call drop.
type levelCache struct {
	rd, wr *kernel.ReuseCache
}

func newLevelCache() *levelCache {
	return &levelCache{rd: kernel.NewReuseCache(), wr: kernel.NewReuseCache()}
}

// advance crosses a level boundary: the blocks just written become
// readable and the stale read side is recycled for writing.
func (lc *levelCache) advance() {
	lc.rd.Reset()
	lc.rd, lc.wr = lc.wr, lc.rd
}

// drop invalidates everything the cache holds.
func (lc *levelCache) drop() {
	lc.rd.Reset()
	lc.wr.Reset()
}

// chargeWordOps advances the clock by ops units of t_op — the modeled
// cost of pure in-memory word arithmetic (sibling derivation, cache
// stores), which is the same operation class as a reduction's element-wise
// combine and must not be charged at the disk-scan-amortizing t_c.
func chargeWordOps(c *mp.Comm, ops int64) {
	if ops > 0 {
		c.AdvanceClock(float64(ops) * c.Machine().TOp)
	}
}

// famAligned reports whether the cached family's children are exactly the
// frontier items starting at rest[0], in order — in particular, whether
// the whole family fits inside the current flush chunk. The Store rule
// below only caches families that will land in one chunk, so a Lookup hit
// always aligns; the check keeps a stale cache loudly unusable.
func famAligned(rest []tree.FrontierItem, kids []int64) bool {
	if len(kids) > len(rest) {
		return false
	}
	for i, id := range kids {
		if rest[i].Node.ID != id {
			return false
		}
	}
	return true
}

// famPlan is one planned sibling derivation within a flush chunk: the
// family occupies chunk[j:j+k], member der (chunk index) is derived from
// parent instead of being tabulated and reduced.
type famPlan struct {
	j, k, der int
	parent    []int64
}

// expandLevelSync expands one breadth-first level of the frontier
// synchronously across the ranks of c — the inner loop of both the
// synchronous formulation and the hybrid's synchronous phase. The
// frontier's statistics are flushed in chunks of at most SyncEveryNodes
// nodes: each flush tabulates the local statistics of the chunk, runs one
// global sum-reduction and lets every rank take the identical split
// decisions. Returns the next frontier (same order on every rank) and the
// modeled communication cost of this level's reductions, the Σ(Comm Cost)
// the hybrid's splitting criterion accumulates: per flush,
// Comm.AllreduceCostEstimate of the dense reduction volume — under the
// default collective configuration exactly (t_s + t_w·bytes)·⌈log₂P⌉,
// Equation 2 of the paper, and the configured algorithm's closed-form
// cost otherwise, so the split trigger tracks the network the build
// actually runs on.
//
// With a levelCache (sibling subtraction), each flush tabulates and
// reduces only the packed blocks of non-derived nodes; every family whose
// parent block is cached derives its largest child locally after the
// reduction as parent − Σ(tabulated siblings). The derivation plan is a
// pure function of globally identical data (node IDs, GlobalN), so every
// rank packs the same payload and the hybrid's commCost — modeled on the
// dense size of the packed payload — stays identical across ranks. The
// sparse threshold additionally lets the reduction ship near-empty blocks
// as (index, count) pairs. Both transforms are exact: the next frontier is
// bit-identical to the disabled path.
//
// With Vote active (0 < K < A_d) and more than one rank, the level runs
// the two-round voted protocol instead (expandLevelVoted, vote.go) and
// threads its vote-family state vs between levels; otherwise vs is
// ignored, the returned state is nil, and this body — including every
// modeled charge — is executed verbatim, which is what makes k ≥ A_d
// (and P = 1) voted runs bit-identical to exact by construction.
func expandLevelSync(c *mp.Comm, d *dataset.Dataset, frontier []tree.FrontierItem, o Options, ids *tree.IDGen, lc *levelCache, vs *voteState) ([]tree.FrontierItem, float64, *voteState) {
	s := d.Schema
	if o.Tree.Vote.Active(len(s.Attrs)) && c.Size() > 1 {
		return expandLevelVoted(c, d, frontier, o, ids, lc, vs)
	}
	statsLen := tree.StatsLen(s, o.Tree)
	spec := tree.NewStatsSpec(d, o.Tree)

	var next []tree.FrontierItem
	var kidIDs []int64
	commCost := 0.0
	for lo := 0; lo < len(frontier); lo += o.SyncEveryNodes {
		hi := lo + o.SyncEveryNodes
		if hi > len(frontier) {
			hi = len(frontier)
		}
		chunk := frontier[lo:hi]

		// Plan the chunk: slot[j] ≥ 0 places chunk[j]'s block in the packed
		// reduce payload; slot[j] = -(fi+1) derives it from fams[fi].
		slot := make([]int, len(chunk))
		var fams []famPlan
		nTab := 0
		if lc != nil {
			j := 0
			for j < len(chunk) {
				fam, ok := lc.rd.Lookup(chunk[j].Node.ID)
				if !ok || !famAligned(chunk[j:], fam.Kids) {
					slot[j] = nTab
					nTab++
					j++
					continue
				}
				k := len(fam.Kids)
				der := j
				for i := j + 1; i < j+k; i++ {
					if chunk[i].GlobalN > chunk[der].GlobalN {
						der = i
					}
				}
				fi := len(fams)
				for i := j; i < j+k; i++ {
					if i == der {
						slot[i] = -(fi + 1)
					} else {
						slot[i] = nTab
						nTab++
					}
				}
				fams = append(fams, famPlan{j: j, k: k, der: der, parent: fam.Parent})
				j += k
			}
		} else {
			for j := range chunk {
				slot[j] = j
			}
			nTab = len(chunk)
		}

		red := kernel.GetInt64(nTab * statsLen)
		c.BeginPhase(PhaseStatistics)
		var ops int64
		for j, it := range chunk {
			if sl := slot[j]; sl >= 0 {
				ops += kernel.TabulateInto(red[sl*statsLen:(sl+1)*statsLen], it.Idx, spec)
			}
		}
		c.Compute(float64(ops))
		c.EndPhase()
		if c.Size() > 1 && len(red) > 0 {
			c.BeginPhase(PhaseReduction)
			mp.AllreduceSum(c, red, o.Tree.Reuse.SparseThreshold)
			c.EndPhase()
			commCost += c.AllreduceCostEstimate(8 * len(red))
		}

		// Derive the withheld family members from their cached parents, then
		// expand the chunk in frontier order.
		der := kernel.GetInt64(len(fams) * statsLen)
		blockOf := func(j int) []int64 {
			if sl := slot[j]; sl >= 0 {
				return red[sl*statsLen : (sl+1)*statsLen]
			}
			fi := -slot[j] - 1
			return der[fi*statsLen : (fi+1)*statsLen]
		}
		c.BeginPhase(PhaseStatistics)
		// Derivation and cache stores are pure in-memory arithmetic on
		// histogram words — the same operation class as the reduction's
		// element-wise combine — so they are charged at t_op, not at t_c
		// (which amortizes the level's disk scan that derivation avoids).
		var derOps int64
		var routeOps int64
		for fi, fp := range fams {
			dst := der[fi*statsLen : (fi+1)*statsLen]
			derOps += kernel.DeriveFrom(dst, fp.parent)
			for i := fp.j; i < fp.j+fp.k; i++ {
				if i != fp.der {
					derOps += kernel.Subtract(dst, blockOf(i))
				}
			}
		}
		for j, it := range chunk {
			blk := blockOf(j)
			kids := tree.ExpandNode(it, tree.DecodeStats(blk, s, o.Tree), d, o.Tree, ids, &routeOps)
			if lc != nil && len(kids) > 0 {
				// Cache the parent block only when the whole family will land
				// in one flush chunk of the next level: a family straddling a
				// flush boundary cannot be derived (its siblings reduce in
				// different flushes), so storing it would only go stale.
				start := len(next)
				end := start + len(kids)
				if start/o.SyncEveryNodes == (end-1)/o.SyncEveryNodes {
					kidIDs = kidIDs[:0]
					for _, kd := range kids {
						kidIDs = append(kidIDs, kd.Node.ID)
					}
					derOps += lc.wr.Store(blk, kidIDs)
				}
			}
			next = append(next, kids...)
		}
		c.Compute(float64(routeOps))
		chargeWordOps(c, derOps)
		c.EndPhase()
		kernel.PutInt64(red)
		kernel.PutInt64(der)
	}
	if lc != nil {
		lc.advance()
	}
	return next, commCost, nil
}

// frontierGlobalN sums the global tuple counts of the frontier (set by
// ExpandNode from the reduced statistics — no extra communication).
func frontierGlobalN(frontier []tree.FrontierItem) int64 {
	var n int64
	for _, it := range frontier {
		n += it.GlobalN
	}
	return n
}

func ceilLog2(p int) int {
	if p <= 1 {
		return 0
	}
	return bits.Len(uint(p - 1))
}

// balanceGroups assigns items with the given weights to ngroups groups so
// group totals are roughly equal: items are taken in descending weight
// (ties by index) and placed on the currently lightest group (ties by
// group index), and every group is guaranteed at least one item when
// len(weights) ≥ ngroups. Deterministic. Returns group of each item.
// This is both the frontier split of the hybrid (ngroups=2) and the node
// grouping of the partitioned formulation's Case 1.
func balanceGroups(weights []int64, ngroups int) []int {
	n := len(weights)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	// insertion sort by descending weight, ties by ascending index — n is
	// small (frontier nodes), determinism matters more than asymptotics.
	for i := 1; i < n; i++ {
		for j := i; j > 0; j-- {
			a, b := order[j-1], order[j]
			if weights[b] > weights[a] || (weights[b] == weights[a] && b < a) {
				order[j-1], order[j] = b, a
			} else {
				break
			}
		}
	}
	group := make([]int, n)
	load := make([]int64, ngroups)
	// Emptiness is tracked explicitly rather than inferred from load==0: a
	// group holding only zero-weight items is occupied but still the
	// lightest, and must keep attracting items instead of being penalized
	// with a phantom unit of load.
	used := make([]bool, ngroups)
	filled := 0
	for pos, i := range order {
		remaining := n - pos
		// Force-fill empty groups when exactly enough items remain.
		g := -1
		if ngroups-filled >= remaining {
			for j := 0; j < ngroups; j++ {
				if !used[j] {
					g = j
					break
				}
			}
		}
		if g < 0 {
			g = lightest(load)
		}
		if !used[g] {
			used[g] = true
			filled++
		}
		group[i] = g
		load[g] += weights[i]
	}
	return group
}

func lightest(load []int64) int {
	g := 0
	for i := 1; i < len(load); i++ {
		if load[i] < load[g] {
			g = i
		}
	}
	return g
}

// proportionalProcs divides p processors among items proportionally to
// their weights, at least one each (requires len(weights) ≤ p). Largest-
// remainder rounding, deterministic ties by index. This is Case 2 of the
// partitioned formulation: "processors assigned to a node proportional to
// the number of training cases".
func proportionalProcs(weights []int64, p int) []int {
	n := len(weights)
	if n > p {
		panic("core: proportionalProcs needs len(weights) <= p")
	}
	var total int64
	for _, w := range weights {
		total += w
	}
	out := make([]int, n)
	rem := make([]float64, n)
	assigned := 0
	for i, w := range weights {
		share := 1.0
		if total > 0 {
			share = float64(w) / float64(total) * float64(p)
		}
		out[i] = int(share)
		if out[i] < 1 {
			out[i] = 1
		}
		rem[i] = share - float64(out[i])
		assigned += out[i]
	}
	// Adjust to exactly p: remove from the smallest-remainder items first
	// (never below 1), then add to the largest-remainder items.
	for assigned > p {
		best, bestRem := -1, 2.0
		for i := 0; i < n; i++ {
			if out[i] > 1 && rem[i] < bestRem {
				best, bestRem = i, rem[i]
			}
		}
		if best < 0 {
			panic("core: proportionalProcs cannot reduce below one proc per item")
		}
		out[best]--
		rem[best]++
		assigned--
	}
	for assigned < p {
		best, bestRem := 0, -2.0
		for i := 0; i < n; i++ {
			if rem[i] > bestRem {
				best, bestRem = i, rem[i]
			}
		}
		out[best]++
		rem[best]--
		assigned++
	}
	return out
}
