package core

import (
	"math/bits"

	"partree/internal/dataset"
	"partree/internal/kernel"
	"partree/internal/mp"
	"partree/internal/tree"
)

// expandLevelSync expands one breadth-first level of the frontier
// synchronously across the ranks of c — the inner loop of both the
// synchronous formulation and the hybrid's synchronous phase. The
// frontier's statistics are flushed in chunks of at most SyncEveryNodes
// nodes: each flush tabulates the local statistics of the chunk, runs one
// global sum-reduction and lets every rank take the identical split
// decisions. Returns the next frontier (same order on every rank) and the
// modeled communication cost of this level's reductions, the Σ(Comm Cost)
// the hybrid's splitting criterion accumulates: per flush,
// (t_s + t_w·bytes)·⌈log₂P⌉, Equation 2 of the paper.
func expandLevelSync(c *mp.Comm, d *dataset.Dataset, frontier []tree.FrontierItem, o Options, ids *tree.IDGen) ([]tree.FrontierItem, float64) {
	s := d.Schema
	statsLen := tree.StatsLen(s, o.Tree)
	spec := tree.NewStatsSpec(d, o.Tree)
	logP := float64(ceilLog2(c.Size()))
	m := c.Machine()

	var next []tree.FrontierItem
	commCost := 0.0
	for lo := 0; lo < len(frontier); lo += o.SyncEveryNodes {
		hi := lo + o.SyncEveryNodes
		if hi > len(frontier) {
			hi = len(frontier)
		}
		chunk := frontier[lo:hi]
		flat := kernel.GetInt64(len(chunk) * statsLen)
		c.BeginPhase(PhaseStatistics)
		var ops int64
		for j, it := range chunk {
			ops += kernel.TabulateInto(flat[j*statsLen:(j+1)*statsLen], it.Idx, spec)
		}
		c.Compute(float64(ops))
		c.EndPhase()
		if c.Size() > 1 {
			c.BeginPhase(PhaseReduction)
			mp.Allreduce(c, flat, mp.Sum)
			c.EndPhase()
			commCost += m.SendCost(8*len(flat)) * logP
		}
		c.BeginPhase(PhaseStatistics)
		var routeOps int64
		for j, it := range chunk {
			stats := tree.DecodeStats(flat[j*statsLen:(j+1)*statsLen], s, o.Tree)
			next = append(next, tree.ExpandNode(it, stats, d, o.Tree, ids, &routeOps)...)
		}
		c.Compute(float64(routeOps))
		c.EndPhase()
		kernel.PutInt64(flat)
	}
	return next, commCost
}

// frontierGlobalN sums the global tuple counts of the frontier (set by
// ExpandNode from the reduced statistics — no extra communication).
func frontierGlobalN(frontier []tree.FrontierItem) int64 {
	var n int64
	for _, it := range frontier {
		n += it.GlobalN
	}
	return n
}

func ceilLog2(p int) int {
	if p <= 1 {
		return 0
	}
	return bits.Len(uint(p - 1))
}

// balanceGroups assigns items with the given weights to ngroups groups so
// group totals are roughly equal: items are taken in descending weight
// (ties by index) and placed on the currently lightest group (ties by
// group index), and every group is guaranteed at least one item when
// len(weights) ≥ ngroups. Deterministic. Returns group of each item.
// This is both the frontier split of the hybrid (ngroups=2) and the node
// grouping of the partitioned formulation's Case 1.
func balanceGroups(weights []int64, ngroups int) []int {
	n := len(weights)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	// insertion sort by descending weight, ties by ascending index — n is
	// small (frontier nodes), determinism matters more than asymptotics.
	for i := 1; i < n; i++ {
		for j := i; j > 0; j-- {
			a, b := order[j-1], order[j]
			if weights[b] > weights[a] || (weights[b] == weights[a] && b < a) {
				order[j-1], order[j] = b, a
			} else {
				break
			}
		}
	}
	group := make([]int, n)
	load := make([]int64, ngroups)
	// Emptiness is tracked explicitly rather than inferred from load==0: a
	// group holding only zero-weight items is occupied but still the
	// lightest, and must keep attracting items instead of being penalized
	// with a phantom unit of load.
	used := make([]bool, ngroups)
	filled := 0
	for pos, i := range order {
		remaining := n - pos
		// Force-fill empty groups when exactly enough items remain.
		g := -1
		if ngroups-filled >= remaining {
			for j := 0; j < ngroups; j++ {
				if !used[j] {
					g = j
					break
				}
			}
		}
		if g < 0 {
			g = lightest(load)
		}
		if !used[g] {
			used[g] = true
			filled++
		}
		group[i] = g
		load[g] += weights[i]
	}
	return group
}

func lightest(load []int64) int {
	g := 0
	for i := 1; i < len(load); i++ {
		if load[i] < load[g] {
			g = i
		}
	}
	return g
}

// proportionalProcs divides p processors among items proportionally to
// their weights, at least one each (requires len(weights) ≤ p). Largest-
// remainder rounding, deterministic ties by index. This is Case 2 of the
// partitioned formulation: "processors assigned to a node proportional to
// the number of training cases".
func proportionalProcs(weights []int64, p int) []int {
	n := len(weights)
	if n > p {
		panic("core: proportionalProcs needs len(weights) <= p")
	}
	var total int64
	for _, w := range weights {
		total += w
	}
	out := make([]int, n)
	rem := make([]float64, n)
	assigned := 0
	for i, w := range weights {
		share := 1.0
		if total > 0 {
			share = float64(w) / float64(total) * float64(p)
		}
		out[i] = int(share)
		if out[i] < 1 {
			out[i] = 1
		}
		rem[i] = share - float64(out[i])
		assigned += out[i]
	}
	// Adjust to exactly p: remove from the smallest-remainder items first
	// (never below 1), then add to the largest-remainder items.
	for assigned > p {
		best, bestRem := -1, 2.0
		for i := 0; i < n; i++ {
			if out[i] > 1 && rem[i] < bestRem {
				best, bestRem = i, rem[i]
			}
		}
		if best < 0 {
			panic("core: proportionalProcs cannot reduce below one proc per item")
		}
		out[best]--
		rem[best]++
		assigned--
	}
	for assigned < p {
		best, bestRem := 0, -2.0
		for i := 0; i < n; i++ {
			if rem[i] > bestRem {
				best, bestRem = i, rem[i]
			}
		}
		out[best]++
		rem[best]--
		assigned++
	}
	return out
}
