package core

import (
	"math"

	"partree/internal/dataset"
	"partree/internal/kernel"
	"partree/internal/mp"
	"partree/internal/tree"
)

// voteFam is the unit of candidate election in voted split selection:
// the children of one split node, recorded as a contiguous span of the
// next frontier (members are frontier[lo : lo+n]). The family shares
// one elected candidate set per flush chunk, which is what lets voting
// compose with sibling subtraction — all tabulated members reduce the
// same attribute blocks, so the withheld member can still be derived as
// parent − Σ(siblings) on the intersection with the parent's set.
//
// pAttrs is the parent's own usable attribute set (ascending, nil =
// unrestricted): the derived member's statistics are only exact on
// S_elected ∩ pAttrs, and a group that elects nothing inherits pAttrs.
// Families are a pure function of globally identical data (frontier
// order, GlobalN), deliberately independent of the rank-local reuse
// cache, so elections are identical across cache hits and misses,
// Reuse on/off, and checkpoint restores; they therefore join the
// level-boundary checkpoint cut (see resume.go's PTLV v2 section).
type voteFam struct {
	lo, n  int
	root   bool    // no recorded parent: all members nominate, none derives
	pAttrs []int32 // parent's usable attribute set; nil = unrestricted
}

// voteState threads the vote families across level boundaries.
type voteState struct {
	fams []voteFam
}

// famsCovering returns vote families covering a frontier of n items:
// the threaded families when they describe exactly this frontier, else
// parentless singletons (level 0, post-hybrid-split reshapes, or a
// resume without vote state — every node nominates from itself).
func famsCovering(vs *voteState, n int) []voteFam {
	if vs != nil {
		covered := 0
		for _, f := range vs.fams {
			covered += f.n
		}
		if covered == n {
			return vs.fams
		}
	}
	fams := make([]voteFam, n)
	for i := range fams {
		fams[i] = voteFam{lo: i, n: 1, root: true}
	}
	return fams
}

// derVote returns the frontier index of the member withheld from
// nomination — the same member the voted reduction derives (smallest
// GlobalN, ties by lowest index) — or -1 for root families. Excluding
// it unconditionally keeps elections identical whether or not its
// local tabulation exists (cache hit, miss, Reuse off, post-restore).
//
// The exact path derives the *largest* child, which saves the most
// tabulation compute. Under voting the choice is an accuracy decision
// instead: the withheld member is the one node whose usable attribute
// set is clipped to S_elected ∩ pAttrs and whose local gains never
// reach a ballot, and those restrictions chain down the withheld
// lineage. Pinning them to the smallest child starves only the least-
// populated subtree — the dominant subtrees elect fresh, unrestricted
// candidate sets at every level.
func (f voteFam) derVote(frontier []tree.FrontierItem) int {
	if f.root || f.n == 0 {
		return -1
	}
	dv := f.lo
	for i := f.lo + 1; i < f.lo+f.n; i++ {
		if frontier[i].GlobalN < frontier[dv].GlobalN {
			dv = i
		}
	}
	return dv
}

// intersectAttrs intersects two ascending attribute sets. nil means
// unrestricted and is the identity.
func intersectAttrs(a, b []int32) []int32 {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	out := make([]int32, 0, min(len(a), len(b)))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// setSpanLen is the packed length of the attribute blocks in set.
func setSpanLen(set []int32, spans [][2]int, statsLen, classes int) int {
	if set == nil {
		return statsLen - classes
	}
	n := 0
	for _, a := range set {
		n += spans[a][1] - spans[a][0]
	}
	return n
}

// packSpans copies the attribute blocks in set (ascending; nil = all)
// from a full statistics block into dst, returning the words written.
func packSpans(dst, blk []int64, spans [][2]int, set []int32) int {
	off := 0
	if set == nil {
		for _, sp := range spans {
			off += copy(dst[off:], blk[sp[0]:sp[1]])
		}
		return off
	}
	for _, a := range set {
		sp := spans[a]
		off += copy(dst[off:], blk[sp[0]:sp[1]])
	}
	return off
}

// scatterSpans is the inverse of packSpans: it distributes src into the
// attribute blocks in set of a full (otherwise zero) statistics block.
func scatterSpans(blk, src []int64, spans [][2]int, set []int32) int {
	off := 0
	if set == nil {
		for _, sp := range spans {
			off += copy(blk[sp[0]:sp[1]], src[off:])
		}
		return off
	}
	for _, a := range set {
		sp := spans[a]
		off += copy(blk[sp[0]:sp[1]], src[off:])
	}
	return off
}

// maskBlock zeroes every attribute block NOT in the ascending set
// (nil = unrestricted, no-op), returning the words cleared. Masked
// attributes present all-zero histograms, which ChooseSplit already
// treats as unsplittable, so no scorer changes are needed.
func maskBlock(blk []int64, spans [][2]int, set []int32) int64 {
	if set == nil {
		return 0
	}
	var ops int64
	j := 0
	for a, sp := range spans {
		for j < len(set) && int(set[j]) < a {
			j++
		}
		if j < len(set) && int(set[j]) == a {
			continue
		}
		clear(blk[sp[0]:sp[1]])
		ops += int64(sp[1] - sp[0])
	}
	return ops
}

// voteGroup is one election within a flush chunk: the intersection of
// a vote family with the chunk (chunk-relative members [j0, j1)). A
// family straddling a flush boundary elects per chunk — chunking is
// globally identical, so so are the groups.
type voteGroup struct {
	j0, j1 int
	dv     int // chunk-relative withheld member, -1 if outside this chunk
	fam    int
	sel    []int32 // elected candidate set; nil = unrestricted
}

// voteReduceNode runs the two-round protocol for one cooperatively
// expanded node (the partitioned formulation's step 1). flat holds the
// node's local statistics on entry and its globally reduced,
// zero-masked statistics on return. No derivation happens here — the
// children move to disjoint processor subsets afterwards — so there is
// no parent-set bookkeeping: a node that elects nothing falls back to
// the full exact reduction.
func voteReduceNode(c *mp.Comm, flat []int64, s *dataset.Schema, o Options) {
	statsLen := len(flat)
	classes := s.NumClasses()
	spans := tree.AttrSpans(s, o.Tree)
	numAttrs := len(s.Attrs)
	k := o.Tree.Vote.K
	elect := o.Tree.Vote.Candidates()

	c.BeginPhase(PhaseVoteBallot)
	gains := kernel.GetFloat64(numAttrs)
	tree.AttrGains(tree.DecodeStats(flat, s, o.Tree), s, o.Tree, gains)
	chargeWordOps(c, int64(statsLen))
	ballots := kernel.GetInt32(k)
	scores := kernel.GetFloat64(k)
	m := kernel.VoteTopK(gains, k, o.Tree.MinGain, ballots)
	for i := 0; i < m; i++ {
		scores[i] = gains[ballots[i]]
	}
	elected := kernel.GetInt32(elect)
	counts := kernel.GetInt32(1)
	mp.VoteElect(c, ballots, scores, 1, k, elect, numAttrs, elected, counts)
	var sel []int32
	if n := int(counts[0]); n > 0 {
		sel = append([]int32(nil), elected[:n]...)
	}
	kernel.PutInt32(elected)
	kernel.PutInt32(counts)
	kernel.PutInt32(ballots)
	kernel.PutFloat64(scores)
	kernel.PutFloat64(gains)
	c.EndPhase()

	c.BeginPhase(PhaseVoteHist)
	packLen := classes + setSpanLen(sel, spans, statsLen, classes)
	red := kernel.GetInt64(packLen)
	copy(red[:classes], flat[:classes])
	packSpans(red[classes:], flat, spans, sel)
	mp.AllreduceSum(c, red, o.Tree.Reuse.SparseThreshold)
	clear(flat)
	copy(flat[:classes], red[:classes])
	scatterSpans(flat, red[classes:], spans, sel)
	chargeWordOps(c, int64(2*packLen))
	c.EndPhase()
	kernel.PutInt64(red)
}

// expandLevelVoted is the voted twin of expandLevelSync's exact body.
// Per flush chunk it runs the two-round PV-Tree protocol: (1) tabulate
// local statistics exactly as the exact path does; (2) PhaseVoteBallot —
// each election group scores all attributes on local rows (the
// nomination-eligible members' max gain per attribute), nominates its
// top-k, and mp.VoteElect picks the ≤2k globally most-nominated
// candidates; (3) PhaseVoteHist — only the candidates' histogram
// blocks (plus every node's class distribution, which leaf decisions
// and GlobalN need exactly) are packed, sum-reduced with the same
// sparse adaptive encoding, and scattered back into full-size blocks,
// zero elsewhere; (4) sibling derivation, expansion and next-level
// family recording. The reduction volume per node is C + |S|·M·C with
// |S| ≤ 2k — independent of the attribute count.
//
// The withheld (derivable) member's statistics are masked to
// S_elected ∩ pAttrs whether they were derived or directly reduced:
// derivation is only exact where both parent and siblings are exact,
// and masking identically in both cases makes the tree invariant to
// Reuse on/off, cache hits, and checkpoint restores.
func expandLevelVoted(c *mp.Comm, d *dataset.Dataset, frontier []tree.FrontierItem, o Options, ids *tree.IDGen, lc *levelCache, vs *voteState) ([]tree.FrontierItem, float64, *voteState) {
	s := d.Schema
	statsLen := tree.StatsLen(s, o.Tree)
	classes := s.NumClasses()
	spec := tree.NewStatsSpec(d, o.Tree)
	spans := tree.AttrSpans(s, o.Tree)
	numAttrs := len(s.Attrs)
	k := o.Tree.Vote.K
	elect := o.Tree.Vote.Candidates()
	fams := famsCovering(vs, len(frontier))

	var next []tree.FrontierItem
	var kidIDs []int64
	nvs := &voteState{}
	commCost := 0.0
	fiStart := 0
	for lo := 0; lo < len(frontier); lo += o.SyncEveryNodes {
		hi := min(lo+o.SyncEveryNodes, len(frontier))
		chunk := frontier[lo:hi]

		// Plan the chunk as the exact path does, except that the derived
		// member is the *smallest* child: slot[j] ≥ 0 places chunk[j]'s
		// block in the packed payload; slot[j] = -(fi+1) derives it from
		// plans[fi]. The der pick (smallest GlobalN, ties earliest)
		// matches voteFam.derVote by construction — see derVote for why
		// voting inverts the exact path's largest-child rule.
		slot := make([]int, len(chunk))
		var plans []famPlan
		nTab := 0
		if lc != nil {
			j := 0
			for j < len(chunk) {
				fam, ok := lc.rd.Lookup(chunk[j].Node.ID)
				if !ok || !famAligned(chunk[j:], fam.Kids) {
					slot[j] = nTab
					nTab++
					j++
					continue
				}
				kk := len(fam.Kids)
				der := j
				for i := j + 1; i < j+kk; i++ {
					if chunk[i].GlobalN < chunk[der].GlobalN {
						der = i
					}
				}
				fi := len(plans)
				for i := j; i < j+kk; i++ {
					if i == der {
						slot[i] = -(fi + 1)
					} else {
						slot[i] = nTab
						nTab++
					}
				}
				plans = append(plans, famPlan{j: j, k: kk, der: der, parent: fam.Parent})
				j += kk
			}
		} else {
			for j := range chunk {
				slot[j] = j
			}
			nTab = len(chunk)
		}

		// Election groups: vote families ∩ chunk, in frontier order.
		var groups []voteGroup
		for fi := fiStart; fi < len(fams) && fams[fi].lo < hi; fi++ {
			f := fams[fi]
			g := voteGroup{j0: max(f.lo, lo) - lo, j1: min(f.lo+f.n, hi) - lo, dv: -1, fam: fi}
			if dv := f.derVote(frontier); dv >= lo && dv < hi {
				g.dv = dv - lo
			}
			groups = append(groups, g)
			if f.lo+f.n <= hi {
				fiStart = fi + 1
			}
		}

		// (1) Local tabulation — identical work and phase to the exact path.
		loc := kernel.GetInt64(nTab * statsLen)
		c.BeginPhase(PhaseStatistics)
		var ops int64
		for j, it := range chunk {
			if sl := slot[j]; sl >= 0 {
				ops += kernel.TabulateInto(loc[sl*statsLen:(sl+1)*statsLen], it.Idx, spec)
			}
		}
		c.Compute(float64(ops))
		c.EndPhase()

		// (2) Round 1: nomination and election.
		c.BeginPhase(PhaseVoteBallot)
		nG := len(groups)
		ballots := kernel.GetInt32(nG * k)
		scores := kernel.GetFloat64(nG * k)
		gains := kernel.GetFloat64(numAttrs)
		mg := kernel.GetFloat64(numAttrs)
		var scoreOps int64
		for gi := range groups {
			g := &groups[gi]
			for i := range gains {
				gains[i] = math.Inf(-1)
			}
			for j := g.j0; j < g.j1; j++ {
				if j == g.dv {
					continue
				}
				sl := slot[j]
				if sl < 0 {
					continue // only the withheld member is ever derived
				}
				st := tree.DecodeStats(loc[sl*statsLen:(sl+1)*statsLen], s, o.Tree)
				tree.AttrGains(st, s, o.Tree, mg)
				for a, gv := range mg {
					if gv > gains[a] {
						gains[a] = gv
					}
				}
				scoreOps += int64(statsLen)
			}
			bal := ballots[gi*k : (gi+1)*k]
			m := kernel.VoteTopK(gains, k, o.Tree.MinGain, bal)
			for i := 0; i < k; i++ {
				if i < m {
					scores[gi*k+i] = gains[bal[i]]
				} else {
					scores[gi*k+i] = 0
				}
			}
		}
		chargeWordOps(c, scoreOps)
		elected := kernel.GetInt32(nG * elect)
		counts := kernel.GetInt32(nG)
		mp.VoteElect(c, ballots, scores, nG, k, elect, numAttrs, elected, counts)
		if c.Size() > 1 {
			// Ballot-exchange stand-in for the hybrid trigger: 12 modeled
			// bytes per (attr, score) slot through the collective estimate.
			commCost += c.AllreduceCostEstimate(12 * nG * k)
		}
		for gi := range groups {
			g := &groups[gi]
			if n := int(counts[gi]); n > 0 {
				g.sel = append([]int32(nil), elected[gi*elect:gi*elect+n]...)
			} else {
				// Nothing elected (no eligible nominators, or no local gain
				// anywhere): inherit the parent's candidate set.
				g.sel = fams[g.fam].pAttrs
			}
		}
		kernel.PutInt32(elected)
		kernel.PutInt32(counts)
		kernel.PutInt32(ballots)
		kernel.PutFloat64(scores)
		kernel.PutFloat64(gains)
		kernel.PutFloat64(mg)
		c.EndPhase()

		// Usable attribute set per chunk member: the group's elected set,
		// intersected with the parent's for the withheld member.
		usable := make([][]int32, len(chunk))
		for _, g := range groups {
			for j := g.j0; j < g.j1; j++ {
				if j == g.dv && !fams[g.fam].root {
					usable[j] = intersectAttrs(g.sel, fams[g.fam].pAttrs)
				} else {
					usable[j] = g.sel
				}
			}
		}

		// (3) Round 2: pack [dist + elected blocks] per tabulated slot,
		// reduce, scatter into full-size zero-masked blocks.
		packLen := 0
		for j := range chunk {
			if slot[j] >= 0 {
				packLen += classes + setSpanLen(usable[j], spans, statsLen, classes)
			}
		}
		red := kernel.GetInt64(packLen)
		full := kernel.GetInt64(len(chunk) * statsLen)
		c.BeginPhase(PhaseVoteHist)
		var packOps int64
		off := 0
		for j := range chunk {
			sl := slot[j]
			if sl < 0 {
				continue
			}
			blk := loc[sl*statsLen : (sl+1)*statsLen]
			off += copy(red[off:off+classes], blk[:classes])
			off += packSpans(red[off:], blk, spans, usable[j])
		}
		packOps += int64(off)
		if c.Size() > 1 && len(red) > 0 {
			mp.AllreduceSum(c, red, o.Tree.Reuse.SparseThreshold)
			commCost += c.AllreduceCostEstimate(8 * len(red))
		}
		off = 0
		for j := range chunk {
			sl := slot[j]
			if sl < 0 {
				continue
			}
			blk := full[j*statsLen : (j+1)*statsLen]
			off += copy(blk[:classes], red[off:off+classes])
			off += scatterSpans(blk, red[off:], spans, usable[j])
		}
		packOps += int64(off)
		chargeWordOps(c, packOps)
		c.EndPhase()
		kernel.PutInt64(red)

		// (4) Derive withheld members, expand, record next-level families.
		c.BeginPhase(PhaseStatistics)
		var derOps, routeOps int64
		for _, fp := range plans {
			dst := full[fp.der*statsLen : (fp.der+1)*statsLen]
			derOps += kernel.DeriveFrom(dst, fp.parent)
			for i := fp.j; i < fp.j+fp.k; i++ {
				if i != fp.der {
					derOps += kernel.Subtract(dst, full[i*statsLen:(i+1)*statsLen])
				}
			}
			derOps += maskBlock(dst, spans, usable[fp.der])
		}
		for j, it := range chunk {
			blk := full[j*statsLen : (j+1)*statsLen]
			kids := tree.ExpandNode(it, tree.DecodeStats(blk, s, o.Tree), d, o.Tree, ids, &routeOps)
			if len(kids) > 0 {
				start := len(next)
				if lc != nil {
					end := start + len(kids)
					if start/o.SyncEveryNodes == (end-1)/o.SyncEveryNodes {
						kidIDs = kidIDs[:0]
						for _, kd := range kids {
							kidIDs = append(kidIDs, kd.Node.ID)
						}
						derOps += lc.wr.Store(blk, kidIDs)
					}
				}
				nvs.fams = append(nvs.fams, voteFam{lo: start, n: len(kids), pAttrs: usable[j]})
			}
			next = append(next, kids...)
		}
		c.Compute(float64(routeOps))
		chargeWordOps(c, derOps)
		c.EndPhase()
		kernel.PutInt64(loc)
		kernel.PutInt64(full)
	}
	if lc != nil {
		lc.advance()
	}
	return next, commCost, nvs
}
