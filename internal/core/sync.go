package core

import (
	"partree/internal/dataset"
	"partree/internal/mp"
	"partree/internal/tree"
)

// BuildSync runs the Synchronous Tree Construction Approach (§3.1): the
// classification tree is grown breadth-first and all processors cooperate
// on every node of every level, exchanging class-distribution statistics
// through global reductions (flushed every SyncEveryNodes frontier nodes).
// Training records never move; every processor finishes with its own
// identical replica of the whole tree, which is returned.
//
// local is this rank's block of the training set (N/P records). The
// returned tree is structurally equal to tree.BuildBFS on the union of all
// blocks.
//
// Modeled charges are attributed to the PhaseStatistics/PhaseReduction
// accounting phases by expandLevelSync (and PhaseReduction by the binner
// setup); read the breakdown back with (*mp.World).Breakdown.
func BuildSync(c *mp.Comm, local *dataset.Dataset, o Options) *tree.Tree {
	o = o.WithDefaults()
	if o.FT != nil && o.FT.Store != nil && c.Size() > 1 {
		return buildSyncFT(c, local, o)
	}
	setupBinner(c, local, &o)
	root := newRoot(local.Schema)
	ids := tree.NewIDGen(1)
	frontier := []tree.FrontierItem{{Node: root, Idx: local.AllIndex()}}
	var lc *levelCache
	if o.Tree.Reuse.Subtraction {
		lc = newLevelCache()
	}
	var vs *voteState
	for len(frontier) > 0 {
		frontier, _, vs = expandLevelSync(c, local, frontier, o, ids, lc, vs)
	}
	return &tree.Tree{Schema: local.Schema, Root: root}
}
