package core

import (
	"fmt"

	"partree/internal/dataset"
	"partree/internal/fault"
	"partree/internal/mp"
	"partree/internal/tree"
)

// This file implements checkpoint/recovery for the three formulations.
//
// The synchronous approach recovers in place: every rank checkpoints its
// frontier row ownership at each level boundary, and on a detected
// failure the survivors shrink to a new communicator, roll back to the
// last globally committed level, adopt the lost ranks' rows, and re-run
// the level. The retried expansion is bit-identical to a fault-free run
// because (a) split decisions are pure functions of globally *summed*
// statistics, which adoption preserves record-for-record, (b)
// tree.ExpandNode fully overwrites a node on re-expansion, and (c) the
// node-id generator is rolled back alongside the frontier.
//
// The partitioned and hybrid approaches (and scalparc, via
// RunRestartable) instead restart from the root: their deeply nested
// communicator/recursion state is not worth checkpointing, and the tree
// they grow is independent of both the processor count and the placement
// of records — only the global record multiset matters — so a restart on
// the shrunken survivor group grows the identical tree. Each rank
// checkpoints its whole local block at the attempt's root partition
// boundary (before the first message-passing operation, so the cut is
// always committed by the time a failure can be detected), and recovery
// restores exactly that cut: each survivor its own block, plus the
// blocks of the lost ranks it inherits. The restart's first record
// shuffle then redistributes the adopted records across the survivor
// group through the ordinary moving path.
//
// Mid-build (per-branch) shuffle boundaries are deliberately NOT used as
// restart cuts, for two reasons established the hard way:
//
//   - a shuffled dataset contains only the records still owned by live
//     frontier nodes — rows retired into leaves at earlier levels are
//     dropped, so the union of post-shuffle blocks underestimates the
//     training set and a root restart from it grows a different tree;
//   - branch shuffles commit per participant *group*, and group-local
//     commits do not compose into a consistent global snapshot: a rank
//     can complete its exchanges of a parent shuffle (records already
//     moved!) and advance into a committed subgroup boundary while a
//     sibling dies before saving the parent cut, leaving restores that
//     double-count the moved records on one side and lose them on the
//     other.
//
// Checkpoint saves are free in modeled time (stable storage off the
// critical path); only recovery itself is charged, under PhaseRecovery,
// so the overhead is directly readable in the breakdown.

// protect runs fn and returns the *fault.Error it panicked with, if any.
// Genuine panics and injected fault.Crashed values propagate — a crashing
// rank must die, not recover itself.
func protect(fn func()) (ferr *fault.Error) {
	defer func() {
		v := recover()
		if v == nil {
			return
		}
		if e, ok := fault.AsError(v); ok {
			ferr = e
			return
		}
		panic(v)
	}()
	fn()
	return nil
}

func worldRankOf(c *mp.Comm) int { return c.WorldRank(c.Rank()) }

// chargeRestore bills restored checkpoint bytes at the wire rate — the
// modeled cost of re-reading state from stable storage during recovery.
func chargeRestore(c *mp.Comm, bytes int) {
	c.AdvanceClock(float64(bytes) * c.Machine().TW)
}

// lostRanks returns the world ranks in old but not in cur, ascending —
// the ranks whose records the survivors must adopt.
func lostRanks(old, cur []int) []int {
	alive := make(map[int]bool, len(cur))
	for _, r := range cur {
		alive[r] = true
	}
	var lost []int
	for _, r := range old {
		if !alive[r] {
			lost = append(lost, r)
		}
	}
	return lost
}

// ---------------------------------------------------------------------------
// Synchronous formulation: level-boundary checkpoints, in-place recovery.

// levelSnap remembers one level boundary in memory: the frontier (whose
// Node pointers and row slices stay valid — records never move in the
// synchronous approach, recovery only appends), the id-generator position,
// and the checkpoint ID saved for it.
type levelSnap struct {
	frontier []tree.FrontierItem
	ids      int64
	ckptID   string
	level    int
	// vote is the voted path's family state entering this level. It is a
	// member of the checkpoint cut: elections exclude each family's
	// derivable member and constrain it to the parent's candidate set, so
	// re-running a level without the families would elect (and mask)
	// differently than the fault-free run did.
	vote *voteState
}

// encodeFrontier frames each frontier item's local rows, keyed by its
// frontier index, reusing the shuffle codec.
func encodeFrontier(d *dataset.Dataset, frontier []tree.FrontierItem) []byte {
	var buf []byte
	for i, it := range frontier {
		buf = appendFrame(buf, d, int64(i), it.Idx)
	}
	return buf
}

// binnerRanges returns the global attribute ranges currently installed in
// the build's per-node binner (nil before binner setup, i.e. at level 0).
func binnerRanges(o *Options) [][2]float64 {
	if o.Tree.Binner != nil {
		return o.Tree.Binner.Ranges
	}
	return nil
}

func saveLevelCkpt(st fault.Store, c *mp.Comm, d *dataset.Dataset, frontier []tree.FrontierItem,
	root *tree.Node, idsNext int64, ranges [][2]float64, level int, vs *voteState) string {
	id := fmt.Sprintf("level:%s:%d", c.ID(), level)
	var rows int
	for _, it := range frontier {
		rows += len(it.Idx)
	}
	data := encodeLevelCkpt(d, root, frontier, level, idsNext, ranges, vs)
	st.Save(&fault.Checkpoint{
		ID:           id,
		Rank:         worldRankOf(c),
		Participants: c.Ranks(),
		Meta:         fmt.Sprintf("level %d: %d items, %d rows", level, len(frontier), rows),
		Data:         data,
	})
	if diskBacked(st) {
		c.ChargeDisk(len(data))
	}
	return id
}

// buildSyncFT is BuildSync with level-boundary checkpointing and in-place
// recovery. The comm, dataset, frontier and history variables are only
// replaced when a recovery round fully succeeds, so a fault *during*
// recovery retries from unchanged state.
func buildSyncFT(c *mp.Comm, local *dataset.Dataset, o Options) *tree.Tree {
	ft := o.FT
	st := ft.Store
	root := newRoot(local.Schema)
	ids := tree.NewIDGen(1)
	d := local
	frontier := []tree.FrontierItem{{Node: root, Idx: d.AllIndex()}}
	level := 0
	var history []levelSnap
	retries := 0
	var lc *levelCache
	if o.Tree.Reuse.Subtraction {
		lc = newLevelCache()
	}
	var vs *voteState
	if ft.Resume {
		if rs, ok := resumeSync(c, st, local, &o); ok {
			c, root, ids, d, frontier, level = rs.c, rs.root, rs.ids, rs.d, rs.frontier, rs.level
			vs = rs.vote
		}
	}
	for len(frontier) > 0 {
		// Re-saved on every attempt: a post-recovery retry checkpoints the
		// adopted rows under the survivor comm's fresh (epoch-suffixed) ID.
		// CheckpointEvery thins the cadence to every k-th level; the first
		// level of an attempt is always saved so recovery (and resume) have
		// a cut belonging to the current attempt.
		if level%ft.ckptEvery() == 0 || len(history) == 0 {
			ckptID := saveLevelCkpt(st, c, d, frontier, root, ids.Snapshot(), binnerRanges(&o), level, vs)
			history = append(history, levelSnap{frontier: frontier, ids: ids.Snapshot(), ckptID: ckptID, level: level, vote: vs})
		}
		var next []tree.FrontierItem
		var nvs *voteState
		ferr := protect(func() {
			if level == 0 {
				// The binner's min/max reductions are part of the protected
				// region; re-running them on the survivor group yields the
				// same global ranges (adoption preserves the record multiset).
				setupBinner(c, d, &o)
			}
			next, _, nvs = expandLevelSync(c, d, frontier, o, ids, lc, vs)
		})
		if ferr == nil {
			frontier = next
			vs = nvs
			level++
			continue
		}
		for {
			retries++
			if retries > ft.maxRetries() {
				panic(ferr)
			}
			var nc *mp.Comm
			var nd *dataset.Dataset
			var nf []tree.FrontierItem
			var hi int
			rerr := protect(func() {
				nc, nd, nf, hi = recoverFrontier(c, st, d, history)
			})
			if rerr == nil {
				snap := history[hi]
				ids.Restore(snap.ids)
				c, d, frontier, level, history = nc, nd, nf, snap.level, history[:hi]
				// Vote families roll back with the frontier they describe;
				// the retried level then elects exactly what the aborted
				// attempt did (elections never read the reuse cache).
				vs = snap.vote
				// The reuse cache must not survive a restore: it describes the
				// failed attempt's next level (and may be partially written from
				// the aborted expansion), while the rolled-back frontier re-runs
				// an older level whose parents were never cached. Dropping it
				// costs one full tabulation level, which recovery already pays.
				if lc != nil {
					lc.drop()
				}
				break
			}
			ferr = rerr
		}
	}
	return &tree.Tree{Schema: local.Schema, Root: root}
}

// recoverFrontier runs one recovery round for the synchronous builder:
// regroup the survivors, agree on the last committed level, and adopt the
// lost ranks' rows. All message-passing happens before any state is
// built, so a nested fault aborts the round without side effects; the
// local restore that follows cannot fail. Returns the survivor comm, the
// (possibly extended) dataset, the restored frontier and the history
// index of the restored level.
func recoverFrontier(c *mp.Comm, st fault.Store, d *dataset.Dataset, history []levelSnap) (*mp.Comm, *dataset.Dataset, []tree.FrontierItem, int) {
	c.EnterRecovery()
	nc := c.ShrinkAlive()
	nc.BeginPhase(PhaseRecovery)
	defer nc.EndPhase()
	nc.Barrier() // every survivor is past its failed op and in this epoch
	nc.PurgeStale()

	// Local restore: the newest checkpoint every participant committed.
	me := worldRankOf(nc)
	eff := st.Effective(me)
	if eff == nil {
		panic("core: recovery with no committed checkpoint")
	}
	hi := -1
	for i := len(history) - 1; i >= 0; i-- {
		if history[i].ckptID == eff.ID {
			hi = i
			break
		}
	}
	if hi < 0 {
		panic(fmt.Sprintf("core: committed checkpoint %q not in this rank's history", eff.ID))
	}
	snap := history[hi]

	// Fresh frontier with copied row slices (history must stay pristine in
	// case a later fault rolls back here again).
	nf := make([]tree.FrontierItem, len(snap.frontier))
	for i, it := range snap.frontier {
		nf[i] = it
		nf[i].Idx = append([]int32(nil), it.Idx...)
	}

	// Adopt the lost ranks' rows: lost rank i goes to survivor i mod P',
	// every survivor computes the same assignment.
	nd := d
	lost := lostRanks(c.Ranks(), nc.Ranks())
	for i, lr := range lost {
		if nc.Ranks()[i%nc.Size()] != me {
			continue
		}
		lcp := st.Effective(lr)
		if lcp == nil || lcp.ID != eff.ID {
			panic(fmt.Sprintf("core: lost rank %d has no checkpoint for committed cut %q", lr, eff.ID))
		}
		if nd == d {
			nd = d.Slice(0, d.Len()) // copy-on-adopt: keep the caller's block intact
		}
		rows, err := levelCkptRows(lcp.Data)
		if err != nil {
			panic(fmt.Sprintf("core: restoring rank %d's checkpoint: %v", lr, err))
		}
		perKey := make(map[int][]int32, len(nf))
		if err := decodeFrames(nd, perKey, d.Schema, rows); err != nil {
			panic(fmt.Sprintf("core: restoring rank %d's checkpoint: %v", lr, err))
		}
		for j := range nf {
			nf[j].Idx = append(nf[j].Idx, perKey[j]...)
		}
		chargeRestore(nc, len(lcp.Data))
		chargeDiskRead(nc, st, len(lcp.Data))
	}
	return nc, nd, nf, hi
}

// ---------------------------------------------------------------------------
// Partitioned / hybrid / scalparc: restart-from-root recovery.

func saveInitCkpt(st fault.Store, c *mp.Comm, d *dataset.Dataset) {
	data := dataset.EncodeAll(nil, d)
	st.Save(&fault.Checkpoint{
		ID:           "init:" + c.ID(),
		Rank:         worldRankOf(c),
		Participants: c.Ranks(),
		Meta:         fmt.Sprintf("build start: %d rows", d.Len()),
		Data:         data,
	})
	if diskBacked(st) {
		c.ChargeDisk(len(data))
	}
}

// RunRestartable executes body(c, local) with restart-from-root fault
// tolerance: each attempt starts by checkpointing every rank's local
// block, and a detected failure shrinks to the survivor group, restores
// each rank's block from the last committed cut (adopting the lost
// ranks' blocks), and re-runs body from scratch on the new comm. body
// must grow a result that depends only on the *global multiset* of
// training records — true of all builders in this repository — so the
// restarted run is bit-identical. Exported for scalparc.BuildFT.
func RunRestartable(c *mp.Comm, local *dataset.Dataset, ft *FTOptions, body func(c *mp.Comm, local *dataset.Dataset) any) any {
	st := ft.Store
	d := local
	if ft.Resume {
		c, d = resumeRestart(c, st, d)
	}
	retries := 0
	for {
		saveInitCkpt(st, c, d)
		var out any
		ferr := protect(func() { out = body(c, d) })
		if ferr == nil {
			return out
		}
		for {
			retries++
			if retries > ft.maxRetries() {
				panic(ferr)
			}
			var nc *mp.Comm
			var nd *dataset.Dataset
			rerr := protect(func() { nc, nd = recoverRestart(c, st, d) })
			if rerr == nil {
				c, d = nc, nd
				break
			}
			ferr = rerr
		}
	}
}

// recoverRestart regroups the survivors and rebuilds this rank's local
// block from the failed attempt's root-partition cut — "init:<comm>",
// which every rank of the attempt saved before its first message-passing
// operation (a rank can only die *at* an operation, so the cut is always
// fully saved, hence committed, by the time a failure is detected). Each
// survivor restores its own block and the blocks of the lost ranks it
// inherits (lost rank i → survivor i mod P'), so the union is the full
// training multiset by construction.
func recoverRestart(c *mp.Comm, st fault.Store, d *dataset.Dataset) (*mp.Comm, *dataset.Dataset) {
	c.EnterRecovery()
	nc := c.ShrinkAlive()
	nc.BeginPhase(PhaseRecovery)
	defer nc.EndPhase()
	nc.Barrier()
	nc.PurgeStale()

	initID := "init:" + c.ID()
	me := worldRankOf(nc)
	eff := st.Get(me, initID)
	if eff == nil {
		panic(fmt.Sprintf("core: recovery without a committed %q checkpoint", initID))
	}
	nd := dataset.New(d.Schema, 0)
	if err := dataset.Decode(nd, d.Schema, eff.Data); err != nil {
		panic(fmt.Sprintf("core: restoring own checkpoint: %v", err))
	}
	chargeRestore(nc, len(eff.Data))
	chargeDiskRead(nc, st, len(eff.Data))
	lost := lostRanks(c.Ranks(), nc.Ranks())
	for i, lr := range lost {
		if nc.Ranks()[i%nc.Size()] != me {
			continue
		}
		lcp := st.Get(lr, initID)
		if lcp == nil {
			panic(fmt.Sprintf("core: lost rank %d has no %q checkpoint", lr, initID))
		}
		if err := dataset.Decode(nd, d.Schema, lcp.Data); err != nil {
			panic(fmt.Sprintf("core: restoring rank %d's checkpoint: %v", lr, err))
		}
		chargeRestore(nc, len(lcp.Data))
		chargeDiskRead(nc, st, len(lcp.Data))
	}
	return nc, nd
}
