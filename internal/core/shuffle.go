package core

import (
	"encoding/binary"
	"fmt"

	"partree/internal/dataset"
	"partree/internal/mp"
)

// redistribute is the record-shuffling primitive behind the partitioned
// formulation's Case 1/Case 2 data movement and the hybrid's moving +
// load-balancing phases. Each key identifies a frontier (or child) node;
// rows[k] are the caller's local rows belonging to key k, and targets[k]
// the ordered comm ranks that must end up holding key k's records, spread
// evenly.
//
// The global order of key k's records — concatenation over sender ranks of
// their local row order — is preserved: target j of |T| receives global
// positions [j·G/|T|, (j+1)·G/|T|). Every rank computes the same plan from
// one allgather of the per-rank key counts, so the outcome (and the
// modeled cost) is deterministic. Records travel through one personalized
// all-to-all exchange as length-framed binary blocks, so the t_w·bytes
// charge is exact.
//
// Returns a fresh local dataset holding every received record and, per
// key, the row indices of that key (in global order).
func redistribute(c *mp.Comm, d *dataset.Dataset, keys []int, rows map[int][]int32, targets map[int][]int) (*dataset.Dataset, map[int][]int32) {
	p := c.Size()

	// 1. Share per-(rank, key) counts. Planning is the load-balancing
	// phase: the count exchange is what lets every rank compute the same
	// balanced placement.
	c.BeginPhase(PhaseLoadBalance)
	myCounts := make([]int64, len(keys))
	for ki, k := range keys {
		myCounts[ki] = int64(len(rows[k]))
	}
	all := mp.Allgatherv(c, 1, myCounts) // [rank][key] flattened
	if len(all) != p*len(keys) {
		panic(fmt.Sprintf("core: redistribute count matrix %d != %d ranks × %d keys", len(all), p, len(keys)))
	}

	// 2. Build the send plan: frames (key, rows) per destination.
	send := make([][]byte, p)
	for ki, k := range keys {
		var total, prefix int64
		for r := 0; r < p; r++ {
			n := all[r*len(keys)+ki]
			if r < c.Rank() {
				prefix += n
			}
			total += n
		}
		t := targets[k]
		mine := rows[k]
		if len(mine) == 0 || total == 0 {
			continue
		}
		for j, dst := range t {
			tlo := total * int64(j) / int64(len(t))
			thi := total * int64(j+1) / int64(len(t))
			lo := max64(tlo, prefix) - prefix
			hi := min64(thi, prefix+int64(len(mine))) - prefix
			if lo >= hi {
				continue
			}
			send[dst] = appendFrame(send[dst], d, int64(k), mine[lo:hi])
		}
	}
	c.EndPhase()

	// 3. Exchange and decode in sender-rank order — the moving phase.
	c.BeginPhase(PhaseMoving)
	recv := mp.Alltoallv(c, 2, send)
	out := dataset.New(d.Schema, 0)
	perKey := make(map[int][]int32, len(keys))
	for src := 0; src < p; src++ {
		if err := decodeFrames(out, perKey, d.Schema, recv[src]); err != nil {
			panic(fmt.Sprintf("core: redistribute decoding from rank %d: %v", src, err))
		}
	}
	c.EndPhase()
	// Materialize every requested key, so a key with zero records (an
	// empty child node) yields an empty — never nil — row set downstream.
	for _, k := range keys {
		if _, ok := perKey[k]; !ok {
			perKey[k] = []int32{}
		}
	}
	return out, perKey
}

// appendFrame appends one (key, count, records...) frame.
func appendFrame(buf []byte, d *dataset.Dataset, key int64, idx []int32) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, uint64(key))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(idx)))
	return dataset.EncodeRows(buf, d, idx)
}

// decodeFrames parses a concatenation of frames, appending the records to
// out and recording their new row indices under their key.
func decodeFrames(out *dataset.Dataset, perKey map[int][]int32, s *dataset.Schema, buf []byte) error {
	rb := s.RecordBytes()
	for len(buf) > 0 {
		if len(buf) < 16 {
			return fmt.Errorf("truncated frame header (%d bytes)", len(buf))
		}
		key := int64(binary.LittleEndian.Uint64(buf))
		count := int64(binary.LittleEndian.Uint64(buf[8:]))
		buf = buf[16:]
		need := int(count) * rb
		if need < 0 || len(buf) < need {
			return fmt.Errorf("frame key %d wants %d bytes, have %d", key, need, len(buf))
		}
		start := out.Len()
		if err := dataset.Decode(out, s, buf[:need]); err != nil {
			return err
		}
		for i := start; i < out.Len(); i++ {
			perKey[int(key)] = append(perKey[int(key)], int32(i))
		}
		buf = buf[need:]
	}
	return nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
