package core

import (
	"fmt"
	"testing"
	"time"

	"partree/internal/dataset"
	"partree/internal/fault"
	"partree/internal/mp"
	"partree/internal/tree"
)

// haltPlan crashes every rank at its n-th collective boundary — the
// modeled equivalent of kill -9 on the whole process: in the lockstep
// collective schedule all ranks die at the same point and nothing
// in-process survives. Only the durable store does.
func haltPlan(p, n int) *fault.Plan {
	var fs []fault.Fault
	for r := 0; r < p; r++ {
		fs = append(fs, fault.CrashAt(r, fault.CollStart, n))
	}
	return fault.NewPlan(fs...)
}

// runWithStore runs one FT build attempt against an already-open store,
// with a watchdog. Ranks that die return nil trees.
func runWithStore(t testing.TB, build buildFn, d *dataset.Dataset, p int, o Options,
	st fault.Store, plan *fault.Plan) ([]*tree.Tree, *mp.World) {
	t.Helper()
	if o.FT == nil {
		o.FT = &FTOptions{}
	}
	o.FT.Store = st
	w := mp.NewWorld(p, mp.SP2())
	if plan != nil {
		w.SetFaultPlan(plan)
	}
	blocks := d.BlockPartition(p)
	trees := make([]*tree.Tree, p)
	done := make(chan struct{})
	var runErr any
	go func() {
		defer close(done)
		defer func() { runErr = recover() }()
		w.Run(func(c *mp.Comm) {
			trees[c.Rank()] = build(c, blocks[c.Rank()], o)
		})
	}()
	select {
	case <-done:
	case <-time.After(120 * time.Second):
		t.Fatal("resume run deadlocked (watchdog)")
	}
	if runErr != nil {
		t.Fatalf("resume run panicked: %v", runErr)
	}
	return trees, w
}

// crashProcess runs an FT build over a fresh DiskStore in dir and halts
// every rank at op n, asserting the whole "process" died with its
// checkpoints on disk.
func crashProcess(t *testing.T, build buildFn, d *dataset.Dataset, p int, o Options, dir string, n int) {
	t.Helper()
	st, err := fault.OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	trees, w := runWithStore(t, build, d, p, o, st, haltPlan(p, n))
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if len(w.DeadRanks()) != p {
		t.Fatalf("halt killed %v of %d ranks; want all", w.DeadRanks(), p)
	}
	for r, tr := range trees {
		if tr != nil {
			t.Fatalf("rank %d produced a tree despite the halt", r)
		}
	}
}

// resumeProcess reopens dir in a fresh world of p2 ranks and finishes the
// build with FT.Resume, returning the trees and the reopened store's
// stats (restores prove state came from disk, not a silent fresh start).
func resumeProcess(t *testing.T, build buildFn, d *dataset.Dataset, p2 int, o Options,
	dir string) ([]*tree.Tree, *mp.World, fault.StoreStats) {
	t.Helper()
	st, err := fault.OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if len(st.Notes()) != 0 {
		t.Fatalf("reopened store reports corruption: %v", st.Notes())
	}
	if o.FT == nil {
		o.FT = &FTOptions{}
	}
	o.FT.Resume = true
	trees, w := runWithStore(t, build, d, p2, o, st, nil)
	if len(w.DeadRanks()) != 0 {
		t.Fatalf("resume run killed ranks %v", w.DeadRanks())
	}
	return trees, w, st.Stats()
}

func requireAllEqual(t *testing.T, want *tree.Tree, trees []*tree.Tree) {
	t.Helper()
	for r, tr := range trees {
		if tr == nil {
			t.Fatalf("rank %d returned no tree", r)
		}
		if diff := tree.Diff(want, tr); diff != "" {
			t.Fatalf("rank %d: resumed tree differs from fault-free reference: %s", r, diff)
		}
	}
}

// TestResumeAfterHalt is the process-restart differential gate: for every
// formulation, kill the whole world mid-build (several depths), restart
// from the on-disk checkpoints in a fresh world of the same size, and
// require the finished tree to be bit-identical to the fault-free serial
// reference.
func TestResumeAfterHalt(t *testing.T) {
	d := genDiscrete(t, 1500, 2, 42)
	o := Options{Tree: tree.Options{Binary: true}, SyncEveryNodes: 8}
	want := tree.BuildBFS(d, o.SerialOptions(d))
	const p = 4
	// Halt depths are formulation-specific: every rank must still be in the
	// global lockstep phase at the chosen op. The partitioned build's rank 0
	// leaves that phase after a few collectives to work its own subtree, so
	// a later halt races with the others dying first — once they are dead,
	// rank 0's planned crash falls in the recovery epoch and never fires.
	halts := map[string][]int{
		"sync":        {1, 4, 8},
		"partitioned": {1, 2, 3},
		"hybrid":      {1, 4, 8},
	}
	for _, f := range formulations {
		for _, n := range halts[f.name] {
			t.Run(fmt.Sprintf("%s/halt-op%d", f.name, n), func(t *testing.T) {
				dir := t.TempDir()
				crashProcess(t, f.build, d, p, o, dir, n)
				trees, w, stats := resumeProcess(t, f.build, d, p, o, dir)
				requireAllEqual(t, want, trees)
				if stats.Restores == 0 {
					t.Fatalf("resume run restored nothing — it rebuilt from scratch: %+v", stats)
				}
				if tr := w.Traffic(); tr.DiskBytes == 0 {
					t.Fatal("durable run charged no bytes to the disk cost class")
				} else if tr.DiskTime != 0 {
					t.Fatalf("disk time %v charged under the default TD=0 machine", tr.DiskTime)
				}
			})
		}
	}
}

// TestResumeElastic: the crashed run had P ranks; the resumed one
// continues with fewer (P' < P), the lost ranks' records re-sharded onto
// survivors by the heir rule — and still finishes bit-identical, because
// the tree depends only on the global record multiset.
func TestResumeElastic(t *testing.T) {
	d := genDiscrete(t, 1500, 2, 43)
	o := Options{Tree: tree.Options{Binary: true}, SyncEveryNodes: 8}
	want := tree.BuildBFS(d, o.SerialOptions(d))
	const p = 4
	// Same lockstep constraint as TestResumeAfterHalt: the partitioned
	// formulation needs an early halt so all ranks are still in the global
	// phase when the crash fires.
	elasticHalt := map[string]int{"sync": 5, "partitioned": 3, "hybrid": 5}
	for _, f := range formulations {
		for _, p2 := range []int{3, 2} {
			t.Run(fmt.Sprintf("%s/P%d-to-P%d", f.name, p, p2), func(t *testing.T) {
				dir := t.TempDir()
				crashProcess(t, f.build, d, p, o, dir, elasticHalt[f.name])
				trees, _, stats := resumeProcess(t, f.build, d, p2, o, dir)
				requireAllEqual(t, want, trees)
				// Every new rank restores its own state and the survivors
				// additionally adopt the p-p2 lost ranks' rows.
				if stats.Restores == 0 {
					t.Fatalf("elastic resume restored nothing: %+v", stats)
				}
			})
		}
	}
}

// TestResumeContinuous repeats the restart gate on raw continuous
// attributes: a mid-build level cut must carry the global attribute
// ranges so the resumed binner derives identical per-node bin edges, and
// a level-0 cut must instead re-run the min/max reductions.
func TestResumeContinuous(t *testing.T) {
	d := genContinuous(t, 1000, 2, 19)
	o := Options{Tree: tree.Options{Binary: true}, SyncEveryNodes: 8, MicroBins: 32, NodeBins: 6}
	want := tree.BuildBFS(d, o.SerialOptions(d))
	const p = 4
	for _, n := range []int{1, 6} { // level-0 cut (pre-binner) and a mid-build cut
		t.Run(fmt.Sprintf("sync/halt-op%d", n), func(t *testing.T) {
			dir := t.TempDir()
			crashProcess(t, BuildSync, d, p, o, dir, n)
			trees, _, _ := resumeProcess(t, BuildSync, d, p, o, dir)
			requireAllEqual(t, want, trees)
		})
	}
}

// TestResumeAfterInRunRecovery is the layered-failure case: rank 0
// crashes mid-build, the survivors recover in place (epoch-suffixed
// communicator, re-sharded rows) and are then halted too. The restart
// must land on the *survivor* cut — whose participants are a strict
// subset of the new world — give the returning rank an empty block, and
// still finish bit-identical on all four ranks.
func TestResumeAfterInRunRecovery(t *testing.T) {
	d := genDiscrete(t, 1500, 2, 47)
	o := Options{Tree: tree.Options{Binary: true}, SyncEveryNodes: 8}
	want := tree.BuildBFS(d, o.SerialOptions(d))
	const p = 4
	dir := t.TempDir()
	st, err := fault.OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	plan := fault.NewPlan(
		fault.CrashAt(0, fault.CollStart, 3),
		fault.CrashAt(1, fault.CollStart, 14),
		fault.CrashAt(2, fault.CollStart, 14),
		fault.CrashAt(3, fault.CollStart, 14),
	)
	trees, w := runWithStore(t, BuildSync, d, p, o, st, plan)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if len(w.DeadRanks()) != p {
		t.Fatalf("staggered halt killed %v; want all %d ranks", w.DeadRanks(), p)
	}
	for _, tr := range trees {
		if tr != nil {
			t.Fatal("a rank produced a tree despite the halt")
		}
	}
	resumed, _, stats := resumeProcess(t, BuildSync, d, p, o, dir)
	requireAllEqual(t, want, resumed)
	if stats.Restores == 0 {
		t.Fatalf("resume after in-run recovery restored nothing: %+v", stats)
	}
}

// TestResumeCheckpointEvery: with a thinned checkpoint cadence the store
// holds fewer cuts, recovery and resume roll back up to k-1 levels and
// replay — trees stay bit-identical in both the in-run and the restart
// path, and the cadence provably reduces checkpoint volume.
func TestResumeCheckpointEvery(t *testing.T) {
	d := genDiscrete(t, 1500, 2, 53)
	o := Options{Tree: tree.Options{Binary: true}, SyncEveryNodes: 8}
	want := tree.BuildBFS(d, o.SerialOptions(d))
	const p = 4

	// Baseline volume at k=1 vs k=3 on a clean run.
	vol := func(k int) int64 {
		st := fault.NewStore()
		o := o
		o.FT = &FTOptions{CheckpointEvery: k}
		trees, _ := runWithStore(t, BuildSync, d, p, o, st, nil)
		requireAllEqual(t, want, trees)
		return st.Stats().Checkpoints
	}
	if v1, v3 := vol(1), vol(3); v3 >= v1 {
		t.Fatalf("CheckpointEvery=3 saved %d checkpoints, not fewer than %d at k=1", v3, v1)
	}

	// In-run recovery with rollback-and-replay across skipped levels.
	for _, n := range []int{3, 6, 9} {
		t.Run(fmt.Sprintf("in-run/op%d", n), func(t *testing.T) {
			st := fault.NewStore()
			ko := o
			ko.FT = &FTOptions{CheckpointEvery: 3}
			plan := fault.NewPlan(fault.CrashAt(1, fault.CollStart, n))
			trees, w := runWithStore(t, BuildSync, d, p, ko, st, plan)
			for r, tr := range trees {
				if tr == nil {
					if dead := w.DeadRanks(); len(dead) != 1 || dead[0] != r {
						t.Fatalf("rank %d has no tree but dead ranks are %v", r, dead)
					}
					continue
				}
				if diff := tree.Diff(want, tr); diff != "" {
					t.Fatalf("rank %d differs: %s", r, diff)
				}
			}
		})
	}

	// Restart resume from a thinned chain.
	t.Run("restart", func(t *testing.T) {
		ko := o
		ko.FT = &FTOptions{CheckpointEvery: 3}
		dir := t.TempDir()
		crashProcess(t, BuildSync, d, p, ko, dir, 8)
		k2 := ko
		k2.FT = &FTOptions{CheckpointEvery: 3}
		trees, _, _ := resumeProcess(t, BuildSync, d, p, k2, dir)
		requireAllEqual(t, want, trees)
	})
}

// TestResumeFreshStore: FT.Resume against an empty directory silently
// builds from scratch — the flag is safe to leave on for a first run.
func TestResumeFreshStore(t *testing.T) {
	d := genDiscrete(t, 1200, 2, 59)
	o := Options{Tree: tree.Options{Binary: true}, SyncEveryNodes: 8}
	want := tree.BuildBFS(d, o.SerialOptions(d))
	for _, f := range formulations {
		t.Run(f.name, func(t *testing.T) {
			trees, _, stats := resumeProcess(t, f.build, d, 4, o, t.TempDir())
			requireAllEqual(t, want, trees)
			if stats.Restores != 0 {
				t.Fatalf("fresh store restored checkpoints: %+v", stats)
			}
		})
	}
}

// TestResumeDiskRate: a machine with a non-zero disk rate puts the
// checkpoint bytes on the modeled clock — the durable run is slower than
// the same build under TD=0, and the traffic reports the disk seconds.
func TestResumeDiskRate(t *testing.T) {
	d := genDiscrete(t, 1200, 2, 61)
	o := Options{Tree: tree.Options{Binary: true}, SyncEveryNodes: 8}
	run := func(m mp.Machine) *mp.World {
		st, err := fault.OpenDiskStore(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		ro := o
		ro.FT = &FTOptions{Store: st}
		w := mp.NewWorld(4, m)
		blocks := d.BlockPartition(4)
		w.Run(func(c *mp.Comm) { BuildSync(c, blocks[c.Rank()], ro) })
		return w
	}
	base := run(mp.SP2())
	slow := run(mp.SP2().WithDiskRate(5e-8))
	bt, st := base.Traffic(), slow.Traffic()
	if bt.DiskBytes == 0 || bt.DiskBytes != st.DiskBytes {
		t.Fatalf("disk bytes %d vs %d: want equal and non-zero", bt.DiskBytes, st.DiskBytes)
	}
	if bt.DiskTime != 0 {
		t.Fatalf("TD=0 machine charged %.9f disk seconds", bt.DiskTime)
	}
	if st.DiskTime <= 0 {
		t.Fatal("TD>0 machine charged no disk seconds")
	}
	if slow.MaxClock() <= base.MaxClock() {
		t.Fatalf("disk-priced clock %.6f not above TD=0 clock %.6f", slow.MaxClock(), base.MaxClock())
	}
}
