package core

import (
	"math/rand/v2"
	"sort"
	"testing"

	"partree/internal/dataset"
	"partree/internal/mp"
)

func shuffleSchema() *dataset.Schema {
	return &dataset.Schema{
		Attrs: []dataset.Attribute{
			{Name: "k", Kind: dataset.Categorical, Values: []string{"0", "1", "2", "3"}},
			{Name: "v", Kind: dataset.Continuous},
		},
		Classes: []string{"a", "b"},
	}
}

// TestRedistributeConservesAndGroups drives the shuffle primitive with
// random local row sets and checks the invariants every use site depends
// on: (1) the multiset of record ids is conserved globally; (2) every
// record lands on a rank that is a target of its key; (3) per key, the
// per-target counts differ by at most one (even distribution); (4) the
// arrival order is the global (sender rank, local order) order.
func TestRedistributeConservesAndGroups(t *testing.T) {
	s := shuffleSchema()
	for _, p := range []int{2, 3, 4, 7, 8} {
		for trial := 0; trial < 3; trial++ {
			rng := rand.New(rand.NewPCG(uint64(p), uint64(trial)))
			keys := []int{0, 1, 2, 3}
			targets := map[int][]int{}
			for _, k := range keys {
				// Random non-empty target subset.
				var tg []int
				for r := 0; r < p; r++ {
					if rng.IntN(2) == 0 {
						tg = append(tg, r)
					}
				}
				if len(tg) == 0 {
					tg = []int{rng.IntN(p)}
				}
				targets[k] = tg
			}

			// Build per-rank local datasets with random keyed rows.
			locals := make([]*dataset.Dataset, p)
			var allRIDs []int64
			ridToKey := map[int64]int{}
			var rid int64
			for r := 0; r < p; r++ {
				d := dataset.New(s, 0)
				rec := dataset.NewRecord(s)
				n := rng.IntN(30)
				for i := 0; i < n; i++ {
					k := keys[rng.IntN(len(keys))]
					rec.Cat[0] = int32(k)
					rec.Cont[1] = rng.Float64()
					rec.Class = int32(rng.IntN(2))
					rec.RID = rid
					ridToKey[rid] = k
					allRIDs = append(allRIDs, rid)
					rid++
					d.Append(rec)
				}
				locals[r] = d
			}

			outData := make([]*dataset.Dataset, p)
			outKeys := make([]map[int][]int32, p)
			w := mp.NewWorld(p, mp.SP2())
			w.Run(func(c *mp.Comm) {
				d := locals[c.Rank()]
				rows := map[int][]int32{}
				for i := 0; i < d.Len(); i++ {
					k := int(d.Cat[0][i])
					rows[k] = append(rows[k], int32(i))
				}
				nd, perKey := redistribute(c, d, keys, rows, targets)
				outData[c.Rank()] = nd
				outKeys[c.Rank()] = perKey
			})

			// (1) conservation.
			var gotRIDs []int64
			for r := 0; r < p; r++ {
				gotRIDs = append(gotRIDs, outData[r].RID...)
			}
			sort.Slice(gotRIDs, func(a, b int) bool { return gotRIDs[a] < gotRIDs[b] })
			sort.Slice(allRIDs, func(a, b int) bool { return allRIDs[a] < allRIDs[b] })
			if len(gotRIDs) != len(allRIDs) {
				t.Fatalf("p=%d trial=%d: %d records after shuffle, want %d", p, trial, len(gotRIDs), len(allRIDs))
			}
			for i := range gotRIDs {
				if gotRIDs[i] != allRIDs[i] {
					t.Fatalf("p=%d trial=%d: record multiset changed", p, trial)
				}
			}

			// (2) placement and (3) evenness.
			for _, k := range keys {
				counts := map[int]int{}
				for r := 0; r < p; r++ {
					n := len(outKeys[r][k])
					if n == 0 {
						continue
					}
					counts[r] = n
					ok := false
					for _, tg := range targets[k] {
						if tg == r {
							ok = true
						}
					}
					if !ok {
						t.Fatalf("p=%d trial=%d: key %d landed on non-target rank %d", p, trial, k, r)
					}
					// Rows under this key must actually have the key.
					for _, i := range outKeys[r][k] {
						if int(outData[r].Cat[0][i]) != k {
							t.Fatalf("p=%d trial=%d: mis-keyed row", p, trial)
						}
					}
				}
				var total, mn, mx int
				mn = 1 << 30
				for _, tg := range targets[k] {
					n := counts[tg]
					total += n
					if n < mn {
						mn = n
					}
					if n > mx {
						mx = n
					}
				}
				if total > 0 && mx-mn > 1 {
					t.Fatalf("p=%d trial=%d key=%d: uneven distribution %v over targets %v", p, trial, k, counts, targets[k])
				}
			}

			// (4) global order preserved per key: concatenating targets in
			// order must give ascending RIDs (we assigned RIDs in global
			// generation order per rank, and ranks in order).
			for _, k := range keys {
				var seq []int64
				for _, tg := range targets[k] {
					for _, i := range outKeys[tg][k] {
						seq = append(seq, outData[tg].RID[i])
					}
				}
				for i := 1; i < len(seq); i++ {
					if seq[i] <= seq[i-1] {
						t.Fatalf("p=%d trial=%d key=%d: order not preserved: %v", p, trial, k, seq)
					}
				}
			}
		}
	}
}

// TestRedistributeDeterministicClocks: the shuffle's modeled cost must be
// identical across runs.
func TestRedistributeDeterministicClocks(t *testing.T) {
	s := shuffleSchema()
	run := func() []float64 {
		const p = 4
		w := mp.NewWorld(p, mp.SP2())
		w.Run(func(c *mp.Comm) {
			d := dataset.New(s, 0)
			rec := dataset.NewRecord(s)
			for i := 0; i < 20; i++ {
				rec.Cat[0] = int32((i + c.Rank()) % 2)
				rec.RID = int64(c.Rank()*100 + i)
				d.Append(rec)
			}
			rows := map[int][]int32{}
			for i := 0; i < d.Len(); i++ {
				rows[int(d.Cat[0][i])] = append(rows[int(d.Cat[0][i])], int32(i))
			}
			redistribute(c, d, []int{0, 1}, rows, map[int][]int{0: {0, 1}, 1: {2, 3}})
		})
		out := make([]float64, p)
		for r := range out {
			out[r] = w.Clock(r)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("clock %d differs across runs: %v vs %v", i, a, b)
		}
	}
}

// TestRedistributeEmptyKey is the regression for the missing-entry bug:
// a requested key with zero records anywhere (an empty child after a
// split) produced no perKey entry at all, so downstream FrontierItems
// were built with a nil Idx indistinguishable from "key not assigned
// here". Every requested key must get a (possibly empty) row list on
// every rank.
func TestRedistributeEmptyKey(t *testing.T) {
	s := shuffleSchema()
	for _, p := range []int{2, 3, 4} {
		keys := []int{0, 1, 2, 3}
		targets := map[int][]int{0: {0}, 1: {p - 1}, 2: {0, p - 1}, 3: {0}}
		outKeys := make([]map[int][]int32, p)
		w := mp.NewWorld(p, mp.SP2())
		w.Run(func(c *mp.Comm) {
			// Keys 2 and 3 have zero records globally.
			d := dataset.New(s, 0)
			rec := dataset.NewRecord(s)
			for i := 0; i < 5; i++ {
				rec.Cat[0] = int32(i % 2)
				rec.RID = int64(c.Rank()*100 + i)
				d.Append(rec)
			}
			rows := map[int][]int32{}
			for i := 0; i < d.Len(); i++ {
				rows[int(d.Cat[0][i])] = append(rows[int(d.Cat[0][i])], int32(i))
			}
			_, perKey := redistribute(c, d, keys, rows, targets)
			outKeys[c.Rank()] = perKey
		})
		for r := 0; r < p; r++ {
			for _, k := range keys {
				rows, ok := outKeys[r][k]
				if !ok {
					t.Fatalf("p=%d rank %d: requested key %d has no perKey entry", p, r, k)
				}
				if rows == nil {
					t.Fatalf("p=%d rank %d: key %d entry is nil, want empty slice", p, r, k)
				}
			}
			if n := len(outKeys[r][2]); n != 0 {
				t.Fatalf("p=%d rank %d: globally-empty key 2 has %d rows", p, r, n)
			}
			if n := len(outKeys[r][3]); n != 0 {
				t.Fatalf("p=%d rank %d: globally-empty key 3 has %d rows", p, r, n)
			}
		}
	}
}
