package core

import (
	"partree/internal/dataset"
	"partree/internal/mp"
	"partree/internal/tree"
)

// BuildHybrid runs the hybrid formulation (§3.3). A processor partition
// grows its frontier with the synchronous approach, accumulating the
// modeled cost of its statistics reductions; once
//
//	Σ(communication cost) ≥ SplitRatio · (moving cost + load balancing cost)
//
// — the paper's criterion with its proposed optimum SplitRatio = 1 — the
// partition splits in two, the frontier nodes are divided between the
// halves with balanced training-case totals, the records move to their
// half and are load-balanced within it, and the halves continue
// asynchronously. A partition reduced to one processor finishes its
// subtrees with the sequential algorithm. The complete tree is assembled
// on rank 0 and replicated to every rank.
//
// Unlike the paper's hypercube description, the partition size need not be
// a power of two: the moving and load-balancing phases are realized by one
// order-preserving balanced all-to-all exchange with the same 4(N/P)·t_w
// cost bound (see DESIGN.md §2).
func BuildHybrid(c *mp.Comm, local *dataset.Dataset, o Options) *tree.Tree {
	o = o.WithDefaults()
	if o.FT != nil && o.FT.Store != nil && c.Size() > 1 {
		out := RunRestartable(c, local, o.FT, func(c *mp.Comm, d *dataset.Dataset) any {
			return buildHybridOnce(c, d, o)
		})
		return out.(*tree.Tree)
	}
	return buildHybridOnce(c, local, o)
}

// buildHybridOnce is one (restartable) construction attempt.
func buildHybridOnce(c *mp.Comm, local *dataset.Dataset, o Options) *tree.Tree {
	setupBinner(c, local, &o)
	root := newRoot(local.Schema)
	ids := tree.NewIDGen(1)
	hybridGrow(c, local, []tree.FrontierItem{{Node: root, Idx: local.AllIndex()}}, o, ids)
	root = bcastTree(c, root)
	return &tree.Tree{Schema: local.Schema, Root: root}
}

// hybridGrow expands every node of the frontier to completion within the
// partition c. Invariant: when it returns, partition rank 0 holds the
// complete subtrees of all frontier items passed in.
func hybridGrow(c *mp.Comm, d *dataset.Dataset, frontier []tree.FrontierItem, o Options, ids *tree.IDGen) {
	if c.Size() == 1 {
		c.BeginPhase(PhaseSequential)
		ops, wops := tree.GrowFrontierBFS(d, frontier, o.Tree, ids)
		c.Compute(float64(ops))
		chargeWordOps(c, wops)
		c.EndPhase()
		return
	}
	recBytes := float64(d.Schema.RecordBytes())
	tw := c.Machine().TW
	commAccum := 0.0
	// The reuse cache is local to this partition's synchronous stretch: a
	// split reshapes the frontier (each half keeps a filtered subset, in new
	// positions), so the cache is dropped at the split and each recursive
	// invocation starts its own.
	var lc *levelCache
	if o.Tree.Reuse.Subtraction {
		lc = newLevelCache()
	}
	// Vote families are positional (spans of this partition's frontier), so
	// like the reuse cache they are local to one synchronous stretch: the
	// split filters and reorders the frontier, and each recursive
	// invocation restarts from parentless singleton families.
	var vs *voteState
	for len(frontier) > 0 {
		next, cost, nvs := expandLevelSync(c, d, frontier, o, ids, lc, vs)
		commAccum += cost
		frontier = next
		vs = nvs
		if len(frontier) < 2 {
			continue // nothing to partition yet
		}
		// Splitting criterion (§3.3 / §4.2): compare the accumulated
		// reduction cost against the modeled cost of one moving phase plus
		// one load-balancing phase, each ≤ 2·(N/P)·t_w (Equations 3, 4).
		nf := frontierGlobalN(frontier)
		moveCost := 2 * float64(nf) / float64(c.Size()) * tw * recBytes
		lbCost := moveCost
		if commAccum < o.SplitRatio*(moveCost+lbCost) {
			continue
		}
		if lc != nil {
			lc.drop()
		}

		// Split: divide frontier nodes into two halves with balanced
		// training-case totals, move records, and recurse asynchronously.
		weights := make([]int64, len(frontier))
		keys := make([]int, len(frontier))
		rows := make(map[int][]int32, len(frontier))
		for ki, it := range frontier {
			weights[ki] = it.GlobalN
			keys[ki] = ki
			rows[ki] = it.Idx
		}
		group := balanceGroups(weights, 2)
		half := c.Size() / 2
		groupRanks := [2][]int{}
		for r := 0; r < c.Size(); r++ {
			g := 0
			if r >= half {
				g = 1
			}
			groupRanks[g] = append(groupRanks[g], r)
		}
		targets := make(map[int][]int, len(frontier))
		for ki := range frontier {
			targets[ki] = groupRanks[group[ki]]
		}
		newD, perKey := redistribute(c, d, keys, rows, targets)

		myGroup := 0
		if c.Rank() >= half {
			myGroup = 1
		}
		c.BeginPhase(PhaseLoadBalance)
		sub := c.Split(myGroup, c.Rank())
		c.EndPhase()
		var mine []tree.FrontierItem
		for ki, it := range frontier {
			if group[ki] == myGroup {
				mine = append(mine, tree.FrontierItem{Node: it.Node, Idx: perKey[ki], GlobalN: it.GlobalN})
			}
		}
		hybridGrow(sub, newD, mine, o, ids)

		// Assembly: the upper half's leader (partition rank `half`) ships
		// its completed subtrees to this partition's rank 0.
		if c.Rank() == 0 {
			ks, roots := recvSubtrees(c, half)
			for i, k := range ks {
				graft(frontier[k].Node, roots[i])
			}
		} else if c.Rank() == half {
			var ks []int
			var roots []*tree.Node
			for ki, it := range frontier {
				if group[ki] == 1 {
					ks = append(ks, ki)
					roots = append(roots, it.Node)
				}
			}
			sendSubtrees(c, 0, ks, roots)
		}
		return
	}
	// The frontier emptied while still synchronous: the whole subtree is
	// replicated on every rank of the partition, rank 0 included.
}
