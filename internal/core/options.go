// Package core implements the paper's contribution: the three parallel
// formulations of decision-tree construction over the mp message-passing
// substrate —
//
//   - BuildSync: the Synchronous Tree Construction Approach (§3.1) —
//     breadth-first, all processors cooperate on every frontier node,
//     class-distribution statistics are globally reduced per buffer flush,
//     no training data ever moves;
//   - BuildPartitioned: the Partitioned Tree Construction Approach (§3.2) —
//     processor groups split across children after every expansion
//     (Case 1/Case 2), training records are shuffled to their group, single
//     processors run the sequential algorithm;
//   - BuildHybrid: the hybrid (§3.3) — synchronous within a partition
//     until the accumulated communication cost reaches SplitRatio × (moving
//     cost + load-balancing cost), then the partition and its frontier are
//     split in two and the halves proceed asynchronously.
//
// All three produce a tree structurally identical to the serial
// breadth-first reference (tree.BuildBFS) — the central invariant of the
// test suite — because every split decision is a pure function of globally
// reduced integer statistics.
package core

import (
	"math"

	"partree/internal/dataset"
	"partree/internal/discretize"
	"partree/internal/fault"
	"partree/internal/mp"
	"partree/internal/tree"
)

// Phase labels the builders push onto the mp accounting stack
// (Comm.BeginPhase/EndPhase) so every modeled charge is attributed to the
// algorithmic phase it belongs to. The per-phase × per-collective
// breakdown is read back with World.Breakdown after a run.
const (
	// PhaseStatistics: local class-distribution tabulation and record
	// routing into successor nodes (the compute side of an expansion).
	PhaseStatistics = "statistics"
	// PhaseReduction: global reductions of statistics (including the
	// setup min/max reductions of the attribute ranges).
	PhaseReduction = "reduction"
	// PhaseMoving: the personalized all-to-all record exchange of the
	// partitioned/hybrid shuffles.
	PhaseMoving = "moving"
	// PhaseLoadBalance: shuffle planning (count allgather) and processor
	// regrouping (comm splits).
	PhaseLoadBalance = "load-balance"
	// PhaseAssembly: shipping and replicating completed subtrees.
	PhaseAssembly = "assembly"
	// PhaseSequential: the sequential tail a lone processor runs on its
	// subtrees.
	PhaseSequential = "sequential-tail"
	// PhaseRecovery: the survivor-group regrouping, checkpoint restore and
	// record re-adoption after a detected rank failure (ft.go). Absent from
	// fault-free runs, so the recovery overhead is directly readable in the
	// breakdown.
	PhaseRecovery = "recovery"
	// PhaseVoteBallot: round 1 of voted split selection — local nomination
	// scoring plus the fixed-size ballot exchange (the "vote" collective).
	PhaseVoteBallot = "vote-ballot"
	// PhaseVoteHist: round 2 of voted split selection — the packed
	// reduction of the elected candidates' histograms. Kept distinct from
	// PhaseReduction (and from PhaseVoteBallot) so -stats can never
	// conflate voted reduction traffic with the exact path's.
	PhaseVoteHist = "vote-hist"
)

// Options configures a parallel build.
type Options struct {
	// Tree holds the induction parameters shared with the serial builders.
	// Tree.Binner is set internally from the global attribute ranges; any
	// caller-provided binner is replaced.
	Tree tree.Options

	// SyncEveryNodes caps how many frontier nodes' statistics fit the
	// communication buffer; a reduction is flushed after each group of this
	// many nodes, reproducing the paper's "synchronization after every 100
	// nodes". Default 100.
	SyncEveryNodes int

	// MicroBins is the fixed histogram resolution used for per-node
	// discretization of continuous attributes (default 64).
	MicroBins int
	// NodeBins is the number of clusters (bins) the per-node discretizer
	// produces (default 8).
	NodeBins int
	// Binning selects the per-node discretization rule: KMeans (SPEC-style
	// clustering, the paper's Figure 8/9 setting, default) or Quantile
	// (per-node weighted quantiles, the §3.4 alternative).
	Binning discretize.Method

	// SplitRatio is the hybrid trigger threshold: a partition splits when
	// Σ(communication cost) ≥ SplitRatio × (moving + load-balancing cost).
	// The paper proposes 1.0 as optimal; Figure 7 sweeps this value.
	// Default 1.0. Ignored by the other formulations.
	SplitRatio float64

	// FT, when non-nil, makes the build fault tolerant: state is
	// checkpointed at recovery boundaries (level boundaries for the
	// synchronous formulation, partition/shuffle boundaries for the
	// partitioned and hybrid ones) and a detected rank failure triggers
	// recovery instead of propagating (ft.go). nil — the default — builds
	// exactly as before, with zero checkpointing.
	FT *FTOptions
}

// FTOptions configures fault-tolerant construction.
type FTOptions struct {
	// Store receives the boundary checkpoints and serves restores. One
	// store per build; required. fault.NewStore() survives rank crashes
	// within the process; fault.OpenDiskStore survives the process.
	Store fault.Store
	// MaxRetries bounds how many recovery rounds a build attempts before
	// giving up and propagating the fault (covers nested faults during
	// recovery itself). Default 8.
	MaxRetries int
	// CheckpointEvery saves a synchronous-formulation level checkpoint at
	// every k-th level boundary (default 1 = every level). Larger
	// intervals trade checkpoint volume against rollback distance:
	// recovery replays up to k-1 uncheckpointed levels. Ignored by the
	// restart-from-root builders, which have a single init cut per
	// attempt.
	CheckpointEvery int
	// Resume, with a durable store reopened from a previous process's
	// checkpoint directory, restores the last committed cut before
	// building: the synchronous formulation continues from its last level
	// boundary, the restart-from-root builders from their init cut. Ranks
	// of the dead process that are missing from the new world (an elastic
	// P′ < P resume) are re-sharded onto survivors by the heir rule
	// (lost rank i → survivor i mod P′). When the store holds no
	// committed cut the build silently starts fresh.
	Resume bool
}

func (ft *FTOptions) maxRetries() int {
	if ft.MaxRetries > 0 {
		return ft.MaxRetries
	}
	return 8
}

func (ft *FTOptions) ckptEvery() int {
	if ft.CheckpointEvery > 0 {
		return ft.CheckpointEvery
	}
	return 1
}

// diskBacked reports whether the store is durable — in which case
// checkpoint traffic is charged to the modeled disk cost class.
func diskBacked(st fault.Store) bool {
	ds, ok := st.(interface{ Durable() bool })
	return ok && ds.Durable()
}

// WithDefaults fills unset fields.
func (o Options) WithDefaults() Options {
	o.Tree = o.Tree.WithDefaults()
	if o.SyncEveryNodes == 0 {
		o.SyncEveryNodes = 100
	}
	if o.MicroBins == 0 {
		o.MicroBins = 64
	}
	if o.NodeBins == 0 {
		o.NodeBins = 8
	}
	if o.SplitRatio == 0 {
		o.SplitRatio = 1.0
	}
	return o
}

// SerialOptions returns the tree.Options a serial reference build must use
// to match a parallel build of d under o: the same induction parameters
// and a per-node binner over the dataset's global attribute ranges.
func (o Options) SerialOptions(d *dataset.Dataset) tree.Options {
	o = o.WithDefaults()
	to := o.Tree
	if d.Schema.NumContinuous() > 0 {
		to.Binner = &discretize.NodeBinner{
			MicroBins: o.MicroBins,
			K:         o.NodeBins,
			Ranges:    rangesOf(d),
			Method:    o.Binning,
		}
	}
	return to
}

// rangesOf computes per-attribute [min, max] over a dataset (continuous
// attributes only; others get sentinel values).
func rangesOf(d *dataset.Dataset) [][2]float64 {
	r := emptyRanges(d.Schema)
	for a := range d.Schema.Attrs {
		col := d.Cont[a]
		if col == nil {
			continue
		}
		for _, v := range col {
			if v < r[a][0] {
				r[a][0] = v
			}
			if v > r[a][1] {
				r[a][1] = v
			}
		}
	}
	return r
}

func emptyRanges(s *dataset.Schema) [][2]float64 {
	r := make([][2]float64, s.NumAttrs())
	for a := range r {
		r[a] = [2]float64{math.MaxFloat64, -math.MaxFloat64}
	}
	return r
}

// setupBinner establishes the global attribute ranges with a pair of
// min/max allreduces and installs the per-node binner, so every processor
// derives identical per-node bin edges. No-op for all-categorical schemas.
func setupBinner(c *mp.Comm, d *dataset.Dataset, o *Options) {
	if d.Schema.NumContinuous() == 0 {
		return
	}
	c.BeginPhase(PhaseReduction)
	defer c.EndPhase()
	local := rangesOf(d)
	mins := make([]float64, len(local))
	maxs := make([]float64, len(local))
	for a, r := range local {
		mins[a], maxs[a] = r[0], r[1]
	}
	mp.Allreduce(c, mins, mp.Min)
	mp.Allreduce(c, maxs, mp.Max)
	ranges := make([][2]float64, len(local))
	for a := range ranges {
		ranges[a] = [2]float64{mins[a], maxs[a]}
	}
	o.Tree.Binner = &discretize.NodeBinner{MicroBins: o.MicroBins, K: o.NodeBins, Ranges: ranges, Method: o.Binning}
}
