package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"

	"partree/internal/dataset"
	"partree/internal/discretize"
	"partree/internal/fault"
	"partree/internal/mp"
	"partree/internal/tree"
)

// This file implements process-restart resume: rebuilding a build's state
// from a durable checkpoint store after the whole process died (kill -9
// mid-build), including the elastic case where the new world has fewer
// ranks than the one that crashed (P′ < P).
//
// The synchronous formulation resumes from the last committed *level*
// cut: its durable checkpoint is self-contained — the partial tree above
// the frontier, the frontier items (node identity, global count, path
// from the root), the id-generator position, the global attribute ranges,
// and the rank's frontier rows — so a fresh process reconstructs the
// exact mid-build state and continues expanding. The restart-from-root
// builders resume from their init cut, which is simply every rank's local
// block.
//
// Two rules make resume correct:
//
//   - The cut is chosen by Store.EffectiveCut — the globally newest
//     committed checkpoint — not per-rank Effective. The final cut's
//     participants can be a strict subset of the new world (the crashed
//     run had itself shrunk to survivors, or the resume is elastic), and
//     ranks outside the participant list must NOT restore an older cut of
//     their own: their records already live inside some participant's
//     checkpoint. Such ranks resume with an empty block, which is
//     harmless — every builder's result depends only on the global record
//     multiset.
//   - The resumed attempt runs on a *rebased* communicator
//     ("w~1", "w~2", ... per resume generation), so the boundary IDs it
//     saves never collide with IDs the previous incarnation left on
//     disk. Without the rebase, the commit rule could confuse a stale
//     pre-crash copy of an ID with the current attempt's saves.

// Typed errors of the level-checkpoint codec.
var (
	errLevelCkpt = errors.New("core: malformed level checkpoint")
)

const levelCkptMagic = "PTLV"

// levelCkpt is the decoded form of a synchronous level checkpoint.
type levelCkpt struct {
	level   int
	idsNext int64
	ranges  [][2]float64 // global attribute ranges (empty before binner setup)
	treeJS  []byte       // partial tree above the frontier, tree-JSON
	items   []levelItem
	rows    []byte     // this rank's frontier rows, frame-coded per item index
	vote    *voteState // vote families entering the level (version ≥ 2; nil in v1 cuts)
}

type levelItem struct {
	id      int64   // frontier node id (drives reuse planning + id determinism)
	globalN int64   // global record count at the node
	path    []int32 // child indices from the root to the node
}

// encodeLevelCkpt serializes the globally shared header (identical on
// every rank: partial tree, items, ids, ranges, vote families) followed
// by this rank's frontier rows. Version 2 appends the voted path's
// family section after the rows; version-1 cuts (pre-vote stores) are
// still decodable and yield nil vote state.
func encodeLevelCkpt(d *dataset.Dataset, root *tree.Node, frontier []tree.FrontierItem,
	level int, idsNext int64, ranges [][2]float64, vs *voteState) []byte {
	var tj bytes.Buffer
	if err := tree.WriteJSON(&tj, &tree.Tree{Schema: d.Schema, Root: root}); err != nil {
		panic(fmt.Sprintf("core: encoding level checkpoint tree: %v", err))
	}
	paths := frontierPaths(root, frontier)

	buf := []byte(levelCkptMagic)
	buf = binary.LittleEndian.AppendUint32(buf, 2) // version
	buf = binary.LittleEndian.AppendUint32(buf, uint32(level))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(idsNext))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(ranges)))
	for _, r := range ranges {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(r[0]))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(r[1]))
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(tj.Len()))
	buf = append(buf, tj.Bytes()...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(frontier)))
	for i, it := range frontier {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(it.Node.ID))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(it.GlobalN))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(paths[i])))
		for _, p := range paths[i] {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(p))
		}
	}
	rows := encodeFrontier(d, frontier)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(rows)))
	buf = append(buf, rows...)
	// Version 2: vote families (ballots' election state is a cut member —
	// without it a resumed voted level would elect differently than the
	// crashed run). A sentinel attr count distinguishes a nil (unrestricted)
	// parent set from an empty one.
	var fams []voteFam
	if vs != nil {
		fams = vs.fams
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(fams)))
	for _, f := range fams {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(f.lo))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(f.n))
		var flags uint32
		if f.root {
			flags |= 1
		}
		buf = binary.LittleEndian.AppendUint32(buf, flags)
		if f.pAttrs == nil {
			buf = binary.LittleEndian.AppendUint32(buf, voteAttrsNil)
			continue
		}
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(f.pAttrs)))
		for _, a := range f.pAttrs {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(a))
		}
	}
	return buf
}

// voteAttrsNil marks a nil (unrestricted) parent attribute set in the
// version-2 vote-family section.
const voteAttrsNil = ^uint32(0)

// decodeLevelCkpt parses a full level checkpoint; all violations are
// typed errors (the payload is CRC-verified by the durable store, so a
// failure here means an encoder bug or a hand-tampered store).
func decodeLevelCkpt(data []byte) (*levelCkpt, error) {
	cur := ckptCursor{b: data}
	if string(cur.bytes(4)) != levelCkptMagic {
		return nil, fmt.Errorf("%w: bad magic", errLevelCkpt)
	}
	version := cur.u32()
	if cur.err == nil && version != 1 && version != 2 {
		return nil, fmt.Errorf("%w: version %d", errLevelCkpt, version)
	}
	lk := &levelCkpt{}
	lk.level = int(cur.u32())
	lk.idsNext = int64(cur.u64())
	nr := int(cur.u32())
	if cur.err == nil && nr > 1<<20 {
		return nil, fmt.Errorf("%w: %d ranges", errLevelCkpt, nr)
	}
	for i := 0; i < nr && cur.err == nil; i++ {
		lk.ranges = append(lk.ranges, [2]float64{
			math.Float64frombits(cur.u64()), math.Float64frombits(cur.u64())})
	}
	lk.treeJS = cur.bytes(int(cur.u32()))
	ni := int(cur.u32())
	if cur.err == nil && ni > 1<<24 {
		return nil, fmt.Errorf("%w: %d frontier items", errLevelCkpt, ni)
	}
	for i := 0; i < ni && cur.err == nil; i++ {
		it := levelItem{id: int64(cur.u64()), globalN: int64(cur.u64())}
		np := int(cur.u32())
		if cur.err == nil && np > tree.MaxModelDepth {
			return nil, fmt.Errorf("%w: path of %d steps", errLevelCkpt, np)
		}
		for j := 0; j < np && cur.err == nil; j++ {
			it.path = append(it.path, int32(cur.u32()))
		}
		lk.items = append(lk.items, it)
	}
	lk.rows = cur.bytes(int(cur.u32()))
	if version >= 2 {
		nf := int(cur.u32())
		if cur.err == nil && nf > 1<<24 {
			return nil, fmt.Errorf("%w: %d vote families", errLevelCkpt, nf)
		}
		if cur.err == nil && nf > 0 {
			lk.vote = &voteState{fams: make([]voteFam, 0, nf)}
		}
		for i := 0; i < nf && cur.err == nil; i++ {
			f := voteFam{lo: int(cur.u32()), n: int(cur.u32())}
			f.root = cur.u32()&1 != 0
			na := cur.u32()
			if na != voteAttrsNil {
				if cur.err == nil && na > 1<<20 {
					return nil, fmt.Errorf("%w: %d vote attrs", errLevelCkpt, na)
				}
				f.pAttrs = make([]int32, 0, na)
				for j := uint32(0); j < na && cur.err == nil; j++ {
					f.pAttrs = append(f.pAttrs, int32(cur.u32()))
				}
			}
			if cur.err == nil {
				lk.vote.fams = append(lk.vote.fams, f)
			}
		}
	}
	if cur.err != nil {
		return nil, cur.err
	}
	if cur.off != len(data) {
		return nil, fmt.Errorf("%w: %d trailing bytes", errLevelCkpt, len(data)-cur.off)
	}
	return lk, nil
}

// levelCkptRows returns just the rows section — the fast path for in-run
// recovery, which shares the partial tree in memory and only needs the
// lost rank's frontier rows.
func levelCkptRows(data []byte) ([]byte, error) {
	lk, err := decodeLevelCkpt(data)
	if err != nil {
		return nil, err
	}
	return lk.rows, nil
}

// ckptCursor is a bounds-checked little-endian reader over a level
// checkpoint; the first violation latches err.
type ckptCursor struct {
	b   []byte
	off int
	err error
}

func (c *ckptCursor) u32() uint32 {
	if c.err != nil {
		return 0
	}
	if c.off+4 > len(c.b) {
		c.err = fmt.Errorf("%w: truncated at offset %d", errLevelCkpt, c.off)
		return 0
	}
	v := binary.LittleEndian.Uint32(c.b[c.off:])
	c.off += 4
	return v
}

func (c *ckptCursor) u64() uint64 {
	if c.err != nil {
		return 0
	}
	if c.off+8 > len(c.b) {
		c.err = fmt.Errorf("%w: truncated at offset %d", errLevelCkpt, c.off)
		return 0
	}
	v := binary.LittleEndian.Uint64(c.b[c.off:])
	c.off += 8
	return v
}

func (c *ckptCursor) bytes(n int) []byte {
	if c.err != nil {
		return nil
	}
	if n < 0 || c.off+n > len(c.b) {
		c.err = fmt.Errorf("%w: %d-byte field at offset %d overruns payload", errLevelCkpt, n, c.off)
		return nil
	}
	v := c.b[c.off : c.off+n]
	c.off += n
	return v
}

// frontierPaths returns, for each frontier item, the child-index path
// from the root to its node. Frontier nodes are leaves of the partial
// tree, so a DFS identifies them by pointer.
func frontierPaths(root *tree.Node, frontier []tree.FrontierItem) [][]int32 {
	want := make(map[*tree.Node]int, len(frontier))
	for i, it := range frontier {
		want[it.Node] = i
	}
	out := make([][]int32, len(frontier))
	found := 0
	var cur []int32
	var walk func(n *tree.Node)
	walk = func(n *tree.Node) {
		if n == nil || found == len(want) {
			return
		}
		if i, ok := want[n]; ok {
			out[i] = append([]int32(nil), cur...)
			found++
			return
		}
		for ci, ch := range n.Children {
			cur = append(cur, int32(ci))
			walk(ch)
			cur = cur[:len(cur)-1]
		}
	}
	walk(root)
	if found != len(want) {
		panic("core: frontier node not reachable from root")
	}
	return out
}

// nodeAtPath walks a decoded tree along a child-index path.
func nodeAtPath(root *tree.Node, path []int32) (*tree.Node, error) {
	n := root
	for _, p := range path {
		if n == nil || int(p) < 0 || int(p) >= len(n.Children) {
			return nil, fmt.Errorf("%w: frontier path leaves the tree", errLevelCkpt)
		}
		n = n.Children[p]
	}
	if n == nil {
		return nil, fmt.Errorf("%w: frontier path ends at an empty child", errLevelCkpt)
	}
	return n, nil
}

// resumeGen extracts the resume generation from a checkpoint ID's
// communicator segment: "level:w~2:5" → 2, "init:w" → 0. Recovery-epoch
// suffixes ("!e") are ignored.
func resumeGen(id string) int {
	s := id
	if i := strings.IndexByte(s, ':'); i >= 0 {
		s = s[i+1:] // strip the "level"/"init" prefix
	}
	if i := strings.IndexByte(s, ':'); i >= 0 {
		s = s[:i] // keep the communicator segment
	}
	if i := strings.IndexByte(s, '!'); i >= 0 {
		s = s[:i]
	}
	i := strings.LastIndexByte(s, '~')
	if i < 0 {
		return 0
	}
	n, err := strconv.Atoi(s[i+1:])
	if err != nil {
		return 0
	}
	return n
}

// chargeDiskRead records checkpoint bytes read back from a durable store
// against the disk cost class (free under an in-memory store).
func chargeDiskRead(c *mp.Comm, st fault.Store, bytes int) {
	if diskBacked(st) {
		c.ChargeDisk(bytes)
	}
}

// syncResume is the reconstructed mid-build state of a synchronous
// resume.
type syncResume struct {
	c        *mp.Comm
	root     *tree.Node
	ids      *tree.IDGen
	d        *dataset.Dataset
	frontier []tree.FrontierItem
	level    int
	vote     *voteState
}

// resumeSync restores the last committed level cut from the store: the
// shared header (partial tree, frontier identity, ids, ranges) from the
// cut's canonical checkpoint, this rank's rows from its own copy (absent
// when the rank was not a participant — its records live in a
// participant's checkpoint), and the rows of participants missing from
// the new world via the heir rule. Purely local — no message passing —
// so resume needs no fault protection of its own. Returns false when the
// store holds no committed level cut.
func resumeSync(c *mp.Comm, st fault.Store, local *dataset.Dataset, o *Options) (*syncResume, bool) {
	cut := st.EffectiveCut()
	if cut == nil || !strings.HasPrefix(cut.ID, "level:") {
		return nil, false
	}
	nc := c.Rebase(resumeGen(cut.ID) + 1)
	nc.BeginPhase(PhaseRecovery)
	defer nc.EndPhase()

	lk, err := decodeLevelCkpt(cut.Data)
	if err != nil {
		panic(fmt.Sprintf("core: resume: %v", err))
	}
	pt, err := tree.ReadJSON(bytes.NewReader(lk.treeJS))
	if err != nil {
		panic(fmt.Sprintf("core: resume: partial tree: %v", err))
	}
	root := pt.Root
	frontier := make([]tree.FrontierItem, len(lk.items))
	for i, it := range lk.items {
		n, err := nodeAtPath(root, it.path)
		if err != nil {
			panic(fmt.Sprintf("core: resume: %v", err))
		}
		n.ID = it.id
		frontier[i] = tree.FrontierItem{Node: n, GlobalN: it.globalN}
	}

	d := dataset.New(local.Schema, 0)
	me := worldRankOf(nc)
	adopt := func(cp *fault.Checkpoint) {
		own, err := decodeLevelCkpt(cp.Data)
		if err != nil {
			panic(fmt.Sprintf("core: resume: rank %d rows: %v", cp.Rank, err))
		}
		perKey := make(map[int][]int32, len(frontier))
		if err := decodeFrames(d, perKey, local.Schema, own.rows); err != nil {
			panic(fmt.Sprintf("core: resume: rank %d rows: %v", cp.Rank, err))
		}
		for j := range frontier {
			frontier[j].Idx = append(frontier[j].Idx, perKey[j]...)
		}
		chargeRestore(nc, len(cp.Data))
		chargeDiskRead(nc, st, len(cp.Data))
	}
	if my := st.Get(me, cut.ID); my != nil {
		adopt(my)
	}
	lost := lostRanks(cut.Participants, nc.Ranks())
	for i, lr := range lost {
		if nc.Ranks()[i%nc.Size()] != me {
			continue
		}
		lcp := st.Get(lr, cut.ID)
		if lcp == nil {
			panic(fmt.Sprintf("core: resume: lost rank %d missing from committed cut %q", lr, cut.ID))
		}
		adopt(lcp)
	}

	if len(lk.ranges) > 0 {
		o.Tree.Binner = &discretize.NodeBinner{
			MicroBins: o.MicroBins, K: o.NodeBins, Ranges: lk.ranges, Method: o.Binning}
	}
	return &syncResume{
		c: nc, root: root, ids: tree.NewIDGen(lk.idsNext),
		d: d, frontier: frontier, level: lk.level, vote: lk.vote,
	}, true
}

// resumeRestart restores the init cut for the restart-from-root
// builders: this rank's whole local block (empty when the rank was not a
// participant of the final cut) plus the blocks of participants missing
// from the new world, on a rebased communicator. Returns the original
// comm and block when the store holds no committed init cut.
func resumeRestart(c *mp.Comm, st fault.Store, local *dataset.Dataset) (*mp.Comm, *dataset.Dataset) {
	cut := st.EffectiveCut()
	if cut == nil || !strings.HasPrefix(cut.ID, "init:") {
		return c, local
	}
	nc := c.Rebase(resumeGen(cut.ID) + 1)
	nc.BeginPhase(PhaseRecovery)
	defer nc.EndPhase()

	nd := dataset.New(local.Schema, 0)
	me := worldRankOf(nc)
	if my := st.Get(me, cut.ID); my != nil {
		if err := dataset.Decode(nd, local.Schema, my.Data); err != nil {
			panic(fmt.Sprintf("core: resume: own block: %v", err))
		}
		chargeRestore(nc, len(my.Data))
		chargeDiskRead(nc, st, len(my.Data))
	}
	lost := lostRanks(cut.Participants, nc.Ranks())
	for i, lr := range lost {
		if nc.Ranks()[i%nc.Size()] != me {
			continue
		}
		lcp := st.Get(lr, cut.ID)
		if lcp == nil {
			panic(fmt.Sprintf("core: resume: lost rank %d missing from committed cut %q", lr, cut.ID))
		}
		if err := dataset.Decode(nd, local.Schema, lcp.Data); err != nil {
			panic(fmt.Sprintf("core: resume: rank %d block: %v", lr, err))
		}
		chargeRestore(nc, len(lcp.Data))
		chargeDiskRead(nc, st, len(lcp.Data))
	}
	return nc, nd
}
