package core

import (
	"fmt"
	"testing"

	"partree/internal/dataset"
	"partree/internal/discretize"
	"partree/internal/mp"
	"partree/internal/quest"
	"partree/internal/tree"
)

// genDiscrete produces a Quest dataset with the paper's uniform
// discretization (all attributes categorical afterwards).
func genDiscrete(t testing.TB, n int, fn int, seed uint64) *dataset.Dataset {
	t.Helper()
	d, err := quest.Generate(quest.Config{Function: fn, Seed: seed}, n)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	return discretize.UniformPaper(d, quest.PaperBins(), quest.Ranges())
}

// genContinuous produces a raw Quest dataset (6 continuous attributes).
func genContinuous(t testing.TB, n int, fn int, seed uint64) *dataset.Dataset {
	t.Helper()
	d, err := quest.Generate(quest.Config{Function: fn, Seed: seed}, n)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	return d
}

type buildFn func(c *mp.Comm, local *dataset.Dataset, o Options) *tree.Tree

var formulations = []struct {
	name  string
	build buildFn
}{
	{"sync", BuildSync},
	{"partitioned", BuildPartitioned},
	{"hybrid", BuildHybrid},
}

// runParallel block-partitions d over p ranks, runs the formulation and
// returns rank 0's tree plus the world for cost inspection.
func runParallel(t testing.TB, build buildFn, d *dataset.Dataset, p int, o Options) (*tree.Tree, *mp.World) {
	t.Helper()
	w := mp.NewWorld(p, mp.SP2())
	blocks := d.BlockPartition(p)
	trees := make([]*tree.Tree, p)
	w.Run(func(c *mp.Comm) {
		trees[c.Rank()] = build(c, blocks[c.Rank()], o)
	})
	for r := 1; r < p; r++ {
		if diff := tree.Diff(trees[0], trees[r]); diff != "" {
			t.Fatalf("rank %d tree differs from rank 0: %s", r, diff)
		}
	}
	return trees[0], w
}

// TestParallelMatchesSerialDiscrete is the paper's core correctness
// property: all three formulations produce the tree the serial algorithm
// produces, for every processor count, on discretized (all-categorical)
// data with binary splits — the exact Figure 6 configuration.
func TestParallelMatchesSerialDiscrete(t *testing.T) {
	for _, fn := range []int{1, 2, 7} {
		d := genDiscrete(t, 3000, fn, 42)
		for _, binary := range []bool{true, false} {
			o := Options{Tree: tree.Options{Binary: binary}, SyncEveryNodes: 8}
			want := tree.BuildBFS(d, o.SerialOptions(d))
			for _, f := range formulations {
				for _, p := range []int{1, 2, 3, 4, 8} {
					name := fmt.Sprintf("fn%d/binary=%v/%s/p%d", fn, binary, f.name, p)
					t.Run(name, func(t *testing.T) {
						got, _ := runParallel(t, f.build, d, p, o)
						if diff := tree.Diff(want, got); diff != "" {
							t.Fatalf("parallel tree differs from serial: %s", diff)
						}
					})
				}
			}
		}
	}
}

// TestParallelMatchesSerialContinuous checks the identity with raw
// continuous attributes handled by per-node clustering discretization (the
// Figure 8 configuration).
func TestParallelMatchesSerialContinuous(t *testing.T) {
	d := genContinuous(t, 2000, 2, 7)
	o := Options{Tree: tree.Options{Binary: true}, SyncEveryNodes: 16, MicroBins: 32, NodeBins: 6}
	want := tree.BuildBFS(d, o.SerialOptions(d))
	for _, f := range formulations {
		for _, p := range []int{1, 2, 4, 6, 8} {
			t.Run(fmt.Sprintf("%s/p%d", f.name, p), func(t *testing.T) {
				got, _ := runParallel(t, f.build, d, p, o)
				if diff := tree.Diff(want, got); diff != "" {
					t.Fatalf("parallel tree differs from serial: %s", diff)
				}
			})
		}
	}
}

// TestHybridRatioIdentity: the hybrid must produce the same tree for any
// splitting ratio — the ratio only changes when data moves, never what is
// computed.
func TestHybridRatioIdentity(t *testing.T) {
	d := genDiscrete(t, 2000, 2, 11)
	base := Options{Tree: tree.Options{Binary: true}, SyncEveryNodes: 8}
	want := tree.BuildBFS(d, base.SerialOptions(d))
	for _, ratio := range []float64{0.25, 0.5, 1, 2, 4} {
		o := base
		o.SplitRatio = ratio
		got, _ := runParallel(t, BuildHybrid, d, 8, o)
		if diff := tree.Diff(want, got); diff != "" {
			t.Fatalf("ratio %g: tree differs: %s", ratio, diff)
		}
	}
}

// TestParallelMatchesSerialQuantile checks the identity under the §3.4
// quantile per-node discretization alternative.
func TestParallelMatchesSerialQuantile(t *testing.T) {
	d := genContinuous(t, 1500, 7, 19)
	o := Options{
		Tree:      tree.Options{Binary: true},
		MicroBins: 32, NodeBins: 6,
		Binning: discretize.Quantile,
	}
	want := tree.BuildBFS(d, o.SerialOptions(d))
	for _, f := range formulations {
		for _, p := range []int{2, 4, 8} {
			t.Run(fmt.Sprintf("%s/p%d", f.name, p), func(t *testing.T) {
				got, _ := runParallel(t, f.build, d, p, o)
				if diff := tree.Diff(want, got); diff != "" {
					t.Fatalf("parallel tree differs from serial: %s", diff)
				}
			})
		}
	}
	// Sanity: the quantile tree differs from the k-means tree (the methods
	// are genuinely different rules), but both classify well.
	kopts := o
	kopts.Binning = discretize.KMeans
	ktree := tree.BuildBFS(d, kopts.SerialOptions(d))
	if want.Accuracy(d) < 0.9 || ktree.Accuracy(d) < 0.9 {
		t.Fatalf("training accuracy too low: quantile %.3f kmeans %.3f",
			want.Accuracy(d), ktree.Accuracy(d))
	}
}
