package core

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestCeilLog2(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 16: 4, 128: 7}
	for p, want := range cases {
		if got := ceilLog2(p); got != want {
			t.Errorf("ceilLog2(%d) = %d, want %d", p, got, want)
		}
	}
}

func TestBalanceGroupsBasic(t *testing.T) {
	weights := []int64{10, 9, 2, 1}
	g := balanceGroups(weights, 2)
	load := map[int]int64{}
	for i, w := range weights {
		load[g[i]] += w
	}
	if load[0] == 0 || load[1] == 0 {
		t.Fatalf("empty group: %v", g)
	}
	if diff := load[0] - load[1]; diff > 2 && diff < -2 {
		t.Fatalf("imbalanced: %v", load)
	}
	// LPT on {10,9,2,1}: 10|9 → 10|11 → 12|11: groups {10,2} {9,1}.
	if g[0] == g[1] {
		t.Fatalf("two heaviest items share a group: %v", g)
	}
}

func TestBalanceGroupsProperties(t *testing.T) {
	f := func(raw []uint16, gRaw uint8) bool {
		ngroups := 2 + int(gRaw)%6
		if len(raw) == 0 {
			return true
		}
		weights := make([]int64, len(raw))
		var total int64
		for i, v := range raw {
			weights[i] = int64(v % 500)
			total += weights[i]
		}
		g := balanceGroups(weights, ngroups)
		if len(g) != len(weights) {
			return false
		}
		occupied := map[int]bool{}
		load := make([]int64, ngroups)
		var maxW int64
		for i, gi := range g {
			if gi < 0 || gi >= ngroups {
				return false
			}
			occupied[gi] = true
			load[gi] += weights[i]
			if weights[i] > maxW {
				maxW = weights[i]
			}
		}
		// Every group occupied when there are enough items.
		if len(weights) >= ngroups && len(occupied) != ngroups {
			return false
		}
		// LPT guarantee: max load ≤ average + max item weight.
		avg := total / int64(ngroups)
		for _, l := range load {
			if l > avg+maxW+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBalanceGroupsDeterministic(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	weights := make([]int64, 40)
	for i := range weights {
		weights[i] = int64(rng.IntN(100))
	}
	a := balanceGroups(weights, 4)
	b := balanceGroups(weights, 4)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("balanceGroups is not deterministic")
		}
	}
}

func TestProportionalProcs(t *testing.T) {
	cases := []struct {
		weights []int64
		p       int
	}{
		{[]int64{50, 50}, 8},
		{[]int64{90, 10}, 8},
		{[]int64{1, 1, 1}, 3},
		{[]int64{100, 1, 1}, 5},
		{[]int64{0, 0}, 4},
		{[]int64{7}, 16},
	}
	for _, tc := range cases {
		got := proportionalProcs(tc.weights, tc.p)
		sum := 0
		for i, n := range got {
			if n < 1 {
				t.Fatalf("weights %v p=%d: item %d got %d procs", tc.weights, tc.p, i, n)
			}
			sum += n
		}
		if sum != tc.p {
			t.Fatalf("weights %v p=%d: assigned %d procs", tc.weights, tc.p, sum)
		}
	}
	// Rough proportionality: 90/10 over 8 procs → 7/1.
	got := proportionalProcs([]int64{90, 10}, 8)
	if got[0] != 7 || got[1] != 1 {
		t.Fatalf("90/10 split gave %v, want [7 1]", got)
	}
}

func TestProportionalProcsProperty(t *testing.T) {
	f := func(raw []uint16, extra uint8) bool {
		if len(raw) == 0 || len(raw) > 32 {
			return true
		}
		weights := make([]int64, len(raw))
		for i, v := range raw {
			weights[i] = int64(v % 1000)
		}
		p := len(weights) + int(extra)%20
		got := proportionalProcs(weights, p)
		sum := 0
		for _, n := range got {
			if n < 1 {
				return false
			}
			sum += n
		}
		return sum == p
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestBalanceGroupsZeroWeights is the regression for the phantom-load
// bug: the old code patched load==0 to 1 after placing an item, so a
// group holding only zero-weight items looked as loaded as a group with
// real work, and further zero-weight items were pushed onto loaded
// groups. Zero-weight items must cluster on the genuinely lightest group.
func TestBalanceGroupsZeroWeights(t *testing.T) {
	// {0,0,1} over 2 groups: the two empty frontier nodes must share a
	// group, leaving the loaded node alone (old code grouped an empty node
	// with the loaded one).
	g := balanceGroups([]int64{0, 0, 1}, 2)
	if g[0] != g[1] {
		t.Fatalf("zero-weight items split across groups: %v", g)
	}
	if g[0] == g[2] {
		t.Fatalf("zero-weight item grouped with the loaded item: %v", g)
	}

	// All-zero weights still spread over the groups (occupancy guarantee
	// must not collapse onto group 0).
	g = balanceGroups([]int64{0, 0, 0, 0}, 4)
	seen := map[int]bool{}
	for _, gi := range g {
		seen[gi] = true
	}
	if len(seen) != 4 {
		t.Fatalf("all-zero weights left groups empty: %v", g)
	}
}

// TestBalanceGroupsZeroWeightOccupancy: with more items than groups and
// mostly zero weights, every group must end up occupied and the loads of
// the positive-weight items must still be spread LPT-style.
func TestBalanceGroupsZeroWeightOccupancy(t *testing.T) {
	g := balanceGroups([]int64{0, 0, 0, 0, 5}, 3)
	seen := map[int]bool{}
	for _, gi := range g {
		seen[gi] = true
	}
	if len(seen) != 3 {
		t.Fatalf("group left empty: %v", g)
	}
	// The heavy item must sit alone among the positive loads: no
	// zero-weight group should have been preferred over another because of
	// phantom load.
	heavy := g[4]
	for i := 0; i < 4; i++ {
		if g[i] == heavy {
			t.Fatalf("zero-weight item %d placed with the heavy item despite free groups: %v", i, g)
		}
	}

	// Two heavies, many zeros, 2 groups: heavies must be separated and the
	// zeros must all go to the lighter side.
	g = balanceGroups([]int64{7, 0, 0, 9}, 2)
	if g[0] == g[3] {
		t.Fatalf("both heavy items in one group: %v", g)
	}
	if g[1] != g[0] || g[2] != g[0] {
		t.Fatalf("zero-weight items not on the lighter (7) side: %v", g)
	}
}
