package core

import (
	"fmt"

	"partree/internal/dataset"
	"partree/internal/discretize"
	"partree/internal/kernel"
	"partree/internal/mp"
	"partree/internal/tree"
)

// Out-of-core synchronous construction: BuildSync re-expressed over the
// chunked Table interface. Each rank holds a section view of a shared
// column store instead of a resident block; per-row state shrinks to one
// int32 slot. The modeled charge sequence replicates expandLevelSync
// exactly — per flush of SyncEveryNodes nodes, a PhaseStatistics Compute
// of the tabulation ops (from pre-reduction local row counts), the
// PhaseReduction AllreduceSum of the flush's packed blocks, and a
// PhaseStatistics Compute of the routing ops of the nodes that split —
// so with the default TD = 0 the modeled clocks and breakdowns are
// bit-identical to the in-RAM build; encoded chunk reads are additionally
// charged to the disk cost class (ChargeDisk) and appear as DiskBytes /
// DiskTime next to the historic columns.

// rangesOfTable streams the per-attribute [min, max] of a table's
// continuous columns, returning the encoded bytes read.
func rangesOfTable(t dataset.Table) ([][2]float64, int64, error) {
	s := t.Schema()
	r := emptyRanges(s)
	var ch dataset.Chunk
	var bytes int64
	for k := 0; k < t.NumChunks(); k++ {
		nb, err := t.ReadChunk(k, &ch)
		if err != nil {
			return nil, bytes, err
		}
		bytes += nb
		for a := range s.Attrs {
			col := ch.Cont[a]
			if col == nil {
				continue
			}
			for _, v := range col {
				if v < r[a][0] {
					r[a][0] = v
				}
				if v > r[a][1] {
					r[a][1] = v
				}
			}
		}
	}
	return r, bytes, nil
}

// SerialOptionsTable is SerialOptions over a chunked table: the induction
// parameters a serial reference build must use to match a parallel build
// of the table's rows, with the binner ranges computed in one streaming
// pass.
func (o Options) SerialOptionsTable(t dataset.Table) (tree.Options, error) {
	o = o.WithDefaults()
	to := o.Tree
	if t.Schema().NumContinuous() > 0 {
		ranges, _, err := rangesOfTable(t)
		if err != nil {
			return to, err
		}
		to.Binner = &discretize.NodeBinner{
			MicroBins: o.MicroBins,
			K:         o.NodeBins,
			Ranges:    ranges,
			Method:    o.Binning,
		}
	}
	return to, nil
}

// setupBinnerTable is setupBinner over a chunked table: the same pair of
// min/max allreduces under PhaseReduction, with the local ranges scan
// streamed and its read volume charged to the disk class.
func setupBinnerTable(c *mp.Comm, t dataset.Table, o *Options) error {
	if t.Schema().NumContinuous() == 0 {
		return nil
	}
	c.BeginPhase(PhaseReduction)
	defer c.EndPhase()
	local, nb, err := rangesOfTable(t)
	if err != nil {
		return err
	}
	c.ChargeDisk(int(nb))
	mins := make([]float64, len(local))
	maxs := make([]float64, len(local))
	for a, r := range local {
		mins[a], maxs[a] = r[0], r[1]
	}
	mp.Allreduce(c, mins, mp.Min)
	mp.Allreduce(c, maxs, mp.Max)
	ranges := make([][2]float64, len(local))
	for a := range ranges {
		ranges[a] = [2]float64{mins[a], maxs[a]}
	}
	o.Tree.Binner = &discretize.NodeBinner{MicroBins: o.MicroBins, K: o.NodeBins, Ranges: ranges, Method: o.Binning}
	return nil
}

// MaterializeCharged reads an entire table into RAM, charging the
// encoded read volume to the modeled disk cost class. This is the
// out-of-core entry point of the formulations whose working set is
// inherently resident — the record-shuffling partitioned/hybrid builders
// and the attribute-list algorithms — where streaming the build itself
// would buy nothing: their input pass is chunk-framed and honestly
// charged, everything after runs on the materialized block as before.
func MaterializeCharged(c *mp.Comm, t dataset.Table) (*dataset.Dataset, error) {
	d, nb, err := dataset.Materialize(t)
	if err != nil {
		return nil, err
	}
	c.ChargeDisk(int(nb))
	return d, nil
}

// BuildSyncOOC runs the synchronous formulation over a chunked table
// with bounded resident memory (the slot vector, 4 bytes per local row).
// local is this rank's section of the training set — typically
// dataset.SectionOf(store, dataset.BlockBounds(n, p, rank)), which sees
// exactly the rows BuildSync's rank gets from BlockPartition. The
// returned tree, and (at TD = 0) the modeled clock and breakdown, are
// bit-identical to BuildSync on the materialized block; chunk reads are
// charged to the disk cost class under the phase that consumed them.
//
// Fault tolerance and sibling subtraction are not supported out-of-core
// (their caches and checkpoint cuts assume resident row-index vectors);
// requesting either is an error — materialize the block and use
// BuildSync instead.
func BuildSyncOOC(c *mp.Comm, local dataset.Table, o Options) (*tree.Tree, error) {
	o = o.WithDefaults()
	if o.FT != nil && o.FT.Store != nil {
		return nil, fmt.Errorf("core: BuildSyncOOC does not support fault tolerance; materialize the block and use BuildSync")
	}
	if o.Tree.Reuse.Subtraction {
		return nil, fmt.Errorf("core: BuildSyncOOC does not support sibling subtraction; materialize the block and use BuildSync")
	}
	if o.Tree.Vote.K > 0 {
		return nil, fmt.Errorf("core: BuildSyncOOC does not support voted split selection; materialize the block and use BuildSync")
	}
	if err := setupBinnerTable(c, local, &o); err != nil {
		return nil, err
	}
	s := local.Schema()
	root := newRoot(s)
	ids := tree.NewIDGen(1)
	frontier := []tree.FrontierItem{{Node: root}}
	slot := make([]int32, local.Len())
	statsLen := tree.StatsLen(s, o.Tree)
	spec := tree.NewChunkSpec(s, o.Tree)
	attrs := int64(len(s.Attrs))
	var ch dataset.Chunk
	var blocks []int64
	for len(frontier) > 0 {
		nf := len(frontier)
		need := nf * statsLen
		if cap(blocks) < need {
			blocks = make([]int64, need)
		}
		blocks = blocks[:need]
		clear(blocks)

		// Statistics pass: one stream over the chunks tabulates every
		// frontier node's local block. The Compute charges are issued
		// per flush below, from the per-node row counts, so the clock
		// sequence matches the in-RAM build's flush-by-flush tabulation.
		c.BeginPhase(PhaseStatistics)
		for k := 0; k < local.NumChunks(); k++ {
			nb, err := local.ReadChunk(k, &ch)
			if err != nil {
				c.EndPhase()
				return nil, err
			}
			c.ChargeDisk(int(nb))
			tree.BindChunk(spec, &ch)
			kernel.TabulateAssigned(blocks, statsLen, slot[ch.Lo:ch.Hi], spec)
		}
		c.EndPhase()

		// Local (pre-reduction) rows per node — the len(Idx) of the
		// in-RAM path, which its tabulation and routing ops are billed by.
		localRows := make([]int64, nf)
		for j := 0; j < nf; j++ {
			var n int64
			for _, v := range blocks[j*statsLen : j*statsLen+s.NumClasses()] {
				n += v
			}
			localRows[j] = n
		}

		var next []tree.FrontierItem
		childSlots := make([][]int32, nf)
		for lo := 0; lo < nf; lo += o.SyncEveryNodes {
			hi := lo + o.SyncEveryNodes
			if hi > nf {
				hi = nf
			}
			c.BeginPhase(PhaseStatistics)
			var ops int64
			for j := lo; j < hi; j++ {
				ops += localRows[j]*(1+attrs) + int64(statsLen)
			}
			c.Compute(float64(ops))
			c.EndPhase()
			red := blocks[lo*statsLen : hi*statsLen]
			if c.Size() > 1 && len(red) > 0 {
				c.BeginPhase(PhaseReduction)
				mp.AllreduceSum(c, red, o.Tree.Reuse.SparseThreshold)
				c.EndPhase()
			}
			c.BeginPhase(PhaseStatistics)
			var routeOps int64
			for j := lo; j < hi; j++ {
				blk := blocks[j*statsLen : (j+1)*statsLen]
				kids, cs, split := tree.ExpandNodeOOC(frontier[j], tree.DecodeStats(blk, s, o.Tree), s, o.Tree, ids)
				if !split {
					continue
				}
				routeOps += localRows[j]
				base := int32(len(next))
				for ci := range cs {
					if cs[ci] >= 0 {
						cs[ci] += base
					}
				}
				childSlots[j] = cs
				next = append(next, kids...)
			}
			c.Compute(float64(routeOps))
			c.EndPhase()
		}

		// Routing pass: advance every live row's slot through its node's
		// split. The routing ops were already charged above (they are the
		// in-RAM PartitionRows charges); this pass only adds disk reads.
		if len(next) > 0 {
			c.BeginPhase(PhaseStatistics)
			for k := 0; k < local.NumChunks(); k++ {
				nb, err := local.ReadChunk(k, &ch)
				if err != nil {
					c.EndPhase()
					return nil, err
				}
				c.ChargeDisk(int(nb))
				tree.RerouteChunk(frontier, childSlots, &ch, slot[ch.Lo:ch.Hi])
			}
			c.EndPhase()
		}
		frontier = next
	}
	return &tree.Tree{Schema: s, Root: root}, nil
}
