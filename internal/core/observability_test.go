package core

import (
	"math"
	"reflect"
	"testing"

	"partree/internal/dataset"
	"partree/internal/mp"
	"partree/internal/tree"
)

// runObserved runs one formulation with or without event tracing and
// returns everything the determinism invariant covers: the per-rank
// trees, the per-rank clocks and traffic, and the world itself.
func runObserved(t *testing.T, build buildFn, d *dataset.Dataset, p int, o Options, trace bool) ([]*tree.Tree, []float64, []mp.Traffic, *mp.World) {
	t.Helper()
	w := mp.NewWorld(p, mp.SP2())
	if trace {
		w.EnableTrace()
	}
	blocks := d.BlockPartition(p)
	trees := make([]*tree.Tree, p)
	w.Run(func(c *mp.Comm) {
		trees[c.Rank()] = build(c, blocks[c.Rank()], o)
	})
	clocks := make([]float64, p)
	traffic := make([]mp.Traffic, p)
	for r := 0; r < p; r++ {
		clocks[r] = w.Clock(r)
		traffic[r] = w.RankTraffic(r)
	}
	return trees, clocks, traffic, w
}

// TestObservabilityInvariance is the central invariant of the
// observability layer applied to the full builders: for all three
// formulations, enabling tracing changes neither the built tree nor the
// modeled clocks nor any rank's traffic — the breakdown and timeline are
// pure observation.
func TestObservabilityInvariance(t *testing.T) {
	d := genDiscrete(t, 2500, 2, 42)
	o := Options{Tree: tree.Options{Binary: true}, SyncEveryNodes: 8}
	for _, f := range formulations {
		for _, p := range []int{2, 4, 8} {
			t.Run(f.name, func(t *testing.T) {
				offTrees, offClocks, offTraffic, offW := runObserved(t, f.build, d, p, o, false)
				onTrees, onClocks, onTraffic, onW := runObserved(t, f.build, d, p, o, true)
				for r := 0; r < p; r++ {
					if diff := tree.Diff(offTrees[r], onTrees[r]); diff != "" {
						t.Fatalf("p=%d rank %d: tracing changed the tree: %s", p, r, diff)
					}
				}
				if !reflect.DeepEqual(offClocks, onClocks) {
					t.Fatalf("p=%d: tracing changed modeled clocks:\n  off %v\n  on  %v", p, offClocks, onClocks)
				}
				if offW.MaxClock() != onW.MaxClock() {
					t.Fatalf("p=%d: tracing changed MaxClock: %v vs %v", p, offW.MaxClock(), onW.MaxClock())
				}
				if !reflect.DeepEqual(offTraffic, onTraffic) {
					t.Fatalf("p=%d: tracing changed per-rank traffic:\n  off %+v\n  on  %+v", p, offTraffic, onTraffic)
				}
				if len(offW.Events()) != 0 {
					t.Fatalf("p=%d: untraced run recorded events", p)
				}
				if p > 1 && len(onW.Events()) == 0 {
					t.Fatalf("p=%d: traced run recorded no events", p)
				}
			})
		}
	}
}

// TestBreakdownAccountsForAllCost: the per-phase × per-collective cells
// of a real build must sum to the aggregate traffic counters — no
// modeled cost escapes attribution, for any formulation.
func TestBreakdownAccountsForAllCost(t *testing.T) {
	d := genDiscrete(t, 2500, 2, 42)
	o := Options{Tree: tree.Options{Binary: true}, SyncEveryNodes: 8}
	for _, f := range formulations {
		t.Run(f.name, func(t *testing.T) {
			_, _, _, w := runObserved(t, f.build, d, 8, o, false)
			tr := w.Traffic()
			total := w.Breakdown().Total()
			if total.Msgs != tr.Msgs || total.Bytes != tr.Bytes {
				t.Fatalf("breakdown msgs/bytes %d/%d, traffic %d/%d", total.Msgs, total.Bytes, tr.Msgs, tr.Bytes)
			}
			if math.Abs(total.CommTime-tr.CommTime) > 1e-9*(1+tr.CommTime) {
				t.Fatalf("breakdown comm %.12f, traffic %.12f", total.CommTime, tr.CommTime)
			}
			if math.Abs(total.CompTime-tr.CompTime) > 1e-9*(1+tr.CompTime) {
				t.Fatalf("breakdown comp %.12f, traffic %.12f", total.CompTime, tr.CompTime)
			}
		})
	}
}

// TestBreakdownPhases: each formulation attributes its cost to the
// phases the paper describes for it.
func TestBreakdownPhases(t *testing.T) {
	d := genDiscrete(t, 2500, 2, 42)
	o := Options{Tree: tree.Options{Binary: true}, SyncEveryNodes: 8}
	for _, f := range formulations {
		t.Run(f.name, func(t *testing.T) {
			_, _, _, w := runObserved(t, f.build, d, 8, o, false)
			b := w.Breakdown()
			if got := b.Phase(PhaseStatistics).CompTime; got <= 0 {
				t.Errorf("no computation attributed to %q: %v", PhaseStatistics, got)
			}
			if got := b.Phase(PhaseReduction).CommTime; got <= 0 {
				t.Errorf("no communication attributed to %q: %v", PhaseReduction, got)
			}
			if f.name != "sync" {
				// The data-partitioning formulations move records and
				// reassemble subtrees; the synchronous one never does.
				if got := b.Phase(PhaseAssembly).CommTime; got <= 0 {
					t.Errorf("no communication attributed to %q: %v", PhaseAssembly, got)
				}
				if got := b.Phase(PhaseMoving).Bytes + b.Phase(PhaseLoadBalance).Bytes; got <= 0 {
					t.Errorf("no bytes attributed to %q/%q", PhaseMoving, PhaseLoadBalance)
				}
				if got := b.Phase(PhaseSequential).CompTime; got <= 0 {
					t.Errorf("no computation attributed to %q: %v", PhaseSequential, got)
				}
			}
		})
	}
}

// TestExperimentTraceDeterminism: two traced experiment-level runs
// produce byte-identical event timelines (the JSONL export is
// reproducible), and the timelines of the three formulations are
// distinguishable from one another.
func TestExperimentTraceDeterminism(t *testing.T) {
	d := genDiscrete(t, 1500, 2, 7)
	o := Options{Tree: tree.Options{Binary: true}, SyncEveryNodes: 8}
	sigs := map[string]int{}
	for _, f := range formulations {
		_, _, _, w1 := runObserved(t, f.build, d, 4, o, true)
		_, _, _, w2 := runObserved(t, f.build, d, 4, o, true)
		if !reflect.DeepEqual(w1.Events(), w2.Events()) {
			t.Fatalf("%s: traced timelines differ across identical runs", f.name)
		}
		sigs[f.name] = len(w1.Events())
	}
	if sigs["sync"] == sigs["partitioned"] && sigs["partitioned"] == sigs["hybrid"] {
		t.Logf("note: all formulations produced %d events (coincidence, not an error)", sigs["sync"])
	}
}
