package core

import (
	"fmt"

	"partree/internal/dataset"
	"partree/internal/mp"
	"partree/internal/tree"
)

// tagAssemble carries subtree hand-offs during tree assembly.
const tagAssemble = 7

// subtreeMsg ships completed subtrees keyed by their position in the
// frontier both sides share. The modeled wire size is the sum of the
// subtree sizes (tree.SubtreeBytes); the tree is asymptotically
// independent of N (paper §4.1 assumption), so this cost is a lower-order
// term, but it is accounted anyway.
type subtreeMsg struct {
	Keys  []int
	Roots []*tree.Node
}

func sendSubtrees(c *mp.Comm, dst int, keys []int, roots []*tree.Node) {
	c.BeginPhase(PhaseAssembly)
	defer c.EndPhase()
	bytes := 0
	for _, r := range roots {
		bytes += tree.SubtreeBytes(r)
	}
	c.Send(dst, tagAssemble, subtreeMsg{Keys: keys, Roots: roots}, bytes)
}

func recvSubtrees(c *mp.Comm, src int) ([]int, []*tree.Node) {
	c.BeginPhase(PhaseAssembly)
	defer c.EndPhase()
	msg := c.Recv(src, tagAssemble)
	sm, ok := msg.Payload.(subtreeMsg)
	if !ok {
		panic(fmt.Sprintf("core: expected subtreeMsg from rank %d, got %T", src, msg.Payload))
	}
	return sm.Keys, sm.Roots
}

// graft replaces the placeholder's content with the completed subtree
// built by another processor group. Structural fields are copied wholesale;
// the placeholder object keeps its identity so ancestors' child pointers
// stay valid.
func graft(placeholder, built *tree.Node) { *placeholder = *built }

// newRoot allocates the root placeholder every formulation starts from.
func newRoot(s *dataset.Schema) *tree.Node {
	return &tree.Node{Kind: tree.Leaf, Dist: make([]int64, s.NumClasses())}
}

// bcastTree replicates the completed tree from comm rank 0 to every rank;
// each rank returns the same immutable structure.
func bcastTree(c *mp.Comm, root *tree.Node) *tree.Node {
	c.BeginPhase(PhaseAssembly)
	defer c.EndPhase()
	var payload any
	if c.Rank() == 0 {
		payload = root
	}
	out := mp.BcastValue(c, payload, tree.SubtreeBytes(root), 0)
	return out.(*tree.Node)
}
