package core

import (
	"fmt"
	"testing"
	"time"

	"partree/internal/dataset"
	"partree/internal/fault"
	"partree/internal/mp"
	"partree/internal/tree"
)

// runRecovery runs a fault-tolerant build under an injected fault plan and
// returns the per-rank trees (nil for ranks that died), the world and the
// checkpoint store. A wall-clock watchdog turns any residual deadlock into
// a test failure instead of a hung suite.
func runRecovery(t testing.TB, build buildFn, d *dataset.Dataset, p int, o Options,
	plan *fault.Plan, recvTimeout time.Duration) ([]*tree.Tree, *mp.World, fault.Store) {
	t.Helper()
	st := fault.NewStore()
	o.FT = &FTOptions{Store: st}
	w := mp.NewWorld(p, mp.SP2())
	w.SetFaultPlan(plan)
	if recvTimeout > 0 {
		w.SetRecvTimeout(recvTimeout)
	}
	blocks := d.BlockPartition(p)
	trees := make([]*tree.Tree, p)
	done := make(chan struct{})
	var runErr any
	go func() {
		defer close(done)
		defer func() { runErr = recover() }()
		w.Run(func(c *mp.Comm) {
			trees[c.Rank()] = build(c, blocks[c.Rank()], o)
		})
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("recovery run deadlocked (watchdog)")
	}
	if runErr != nil {
		t.Fatalf("recovery run panicked: %v", runErr)
	}
	return trees, w, st
}

// checkSurvivors asserts every surviving rank's tree is bit-identical to
// the fault-free reference and every nil tree belongs to a dead rank.
func checkSurvivors(t *testing.T, want *tree.Tree, trees []*tree.Tree, w *mp.World) {
	t.Helper()
	dead := map[int]bool{}
	for _, r := range w.DeadRanks() {
		dead[r] = true
	}
	for r, tr := range trees {
		if tr == nil {
			if !dead[r] {
				t.Fatalf("rank %d returned no tree but is not dead", r)
			}
			continue
		}
		if dead[r] {
			t.Fatalf("rank %d is dead but returned a tree", r)
		}
		if diff := tree.Diff(want, tr); diff != "" {
			t.Fatalf("rank %d: recovered tree differs from fault-free reference: %s", r, diff)
		}
	}
}

// TestRecoveryCrashMatrix is the central robustness property: for every
// formulation, a seeded crash of any single rank at any collective
// boundary is detected (no deadlock), recovered from the last committed
// checkpoint, and the survivors finish with a tree bit-identical to the
// fault-free (serial-reference) run. The op sweep walks the crash point
// through the build, covering every level boundary of the function-2 tree;
// crash points past the end of the build simply never fire and degrade to
// a plain fault-free check.
func TestRecoveryCrashMatrix(t *testing.T) {
	d := genDiscrete(t, 1500, 2, 42)
	o := Options{Tree: tree.Options{Binary: true}, SyncEveryNodes: 8}
	want := tree.BuildBFS(d, o.SerialOptions(d))
	const p = 4
	for _, f := range formulations {
		fired, recovered := 0, 0
		for n := 1; n <= 12; n++ {
			rank := n % p
			t.Run(fmt.Sprintf("%s/crash-r%d-op%d", f.name, rank, n), func(t *testing.T) {
				plan := fault.NewPlan(fault.CrashAt(rank, fault.CollStart, n))
				trees, w, st := runRecovery(t, f.build, d, p, o, plan, 0)
				checkSurvivors(t, want, trees, w)
				deadRanks := w.DeadRanks()
				if len(deadRanks) == 0 {
					return // crash point past the end of this build
				}
				fired++
				if len(deadRanks) != 1 || deadRanks[0] != rank {
					t.Fatalf("dead ranks = %v, want [%d]", deadRanks, rank)
				}
				stats := st.Stats()
				if stats.Checkpoints == 0 || stats.Bytes == 0 {
					t.Fatalf("no checkpoints taken: %+v", stats)
				}
				// A crash at the very tail of the build (e.g. a leaf receiver
				// of the final broadcast) may leave no survivor depending on
				// the dead rank — then no recovery round is needed. When one
				// ran, it must have restored from the store.
				if rec := w.Breakdown().Phase(PhaseRecovery); rec.Calls > 0 {
					recovered++
					if stats.Restores == 0 {
						t.Fatalf("recovery round ran without restoring a checkpoint: %+v", stats)
					}
				}
			})
		}
		if fired < 6 {
			t.Fatalf("%s: only %d of 12 crash points fired — sweep not covering the build", f.name, fired)
		}
		if recovered < 4 {
			t.Fatalf("%s: only %d of %d fired crashes exercised a recovery round", f.name, recovered, fired)
		}
	}
}

// TestRecoveryDropMatrix: a silently dropped message surfaces as a receive
// timeout, triggers a full-strength recovery round (no rank died, so the
// group shrinks to itself), and the build still finishes with the
// reference tree on every rank.
func TestRecoveryDropMatrix(t *testing.T) {
	d := genDiscrete(t, 1200, 2, 7)
	o := Options{Tree: tree.Options{Binary: true}, SyncEveryNodes: 8}
	want := tree.BuildBFS(d, o.SerialOptions(d))
	const p = 4
	for _, f := range formulations {
		fired := 0
		for n := 1; n <= 6; n++ {
			rank := n % p
			t.Run(fmt.Sprintf("%s/drop-r%d-send%d", f.name, rank, n), func(t *testing.T) {
				plan := fault.NewPlan(fault.DropAt(rank, n, fault.AnyTag))
				trees, w, st := runRecovery(t, f.build, d, p, o, plan, 250*time.Millisecond)
				checkSurvivors(t, want, trees, w)
				if len(w.DeadRanks()) != 0 {
					t.Fatalf("drop fault killed ranks %v; want none dead", w.DeadRanks())
				}
				for _, ev := range w.Faults() {
					if ev.Kind == fault.Drop {
						fired++
						if st.Stats().Restores == 0 {
							t.Fatalf("drop detected but no checkpoint restored: %+v", st.Stats())
						}
						break
					}
				}
			})
		}
		if fired < 3 {
			t.Fatalf("%s: only %d of 6 drop points fired", f.name, fired)
		}
	}
}

// TestRecoveryStraggler: an injected delay only advances the modeled
// clock — no recovery round, no dead ranks, identical tree, and the run
// is measurably slower than the clean one.
func TestRecoveryStraggler(t *testing.T) {
	d := genDiscrete(t, 1200, 2, 11)
	o := Options{Tree: tree.Options{Binary: true}, SyncEveryNodes: 8}
	want := tree.BuildBFS(d, o.SerialOptions(d))
	const p = 4
	for _, f := range formulations {
		t.Run(f.name, func(t *testing.T) {
			clean, cw := runParallel(t, f.build, d, p, o)
			if diff := tree.Diff(want, clean); diff != "" {
				t.Fatalf("clean run differs from serial: %s", diff)
			}
			plan := fault.NewPlan(fault.DelayAt(1, fault.CollStart, 2, 0.5))
			trees, w, _ := runRecovery(t, f.build, d, p, o, plan, 0)
			checkSurvivors(t, want, trees, w)
			if len(w.DeadRanks()) != 0 {
				t.Fatalf("delay fault killed ranks %v", w.DeadRanks())
			}
			if len(w.Faults()) != 1 {
				t.Fatalf("faults = %v, want one delay event", w.Faults())
			}
			if w.MaxClock() < cw.MaxClock()+0.5-1e-9 {
				t.Fatalf("straggler run clock %.3f not ≥ clean %.3f + 0.5",
					w.MaxClock(), cw.MaxClock())
			}
		})
	}
}

// TestRecoveryCrashContinuous repeats the crash check on raw continuous
// attributes, where level-0 recovery must also re-run the binner's global
// min/max reductions on the survivor group.
func TestRecoveryCrashContinuous(t *testing.T) {
	d := genContinuous(t, 1000, 2, 19)
	o := Options{Tree: tree.Options{Binary: true}, SyncEveryNodes: 8, MicroBins: 32, NodeBins: 6}
	want := tree.BuildBFS(d, o.SerialOptions(d))
	const p = 4
	for _, f := range formulations {
		for _, n := range []int{1, 3, 6} {
			t.Run(fmt.Sprintf("%s/op%d", f.name, n), func(t *testing.T) {
				plan := fault.NewPlan(fault.CrashAt(2, fault.CollStart, n))
				trees, w, _ := runRecovery(t, f.build, d, p, o, plan, 0)
				checkSurvivors(t, want, trees, w)
			})
		}
	}
}

// TestRecoveryNoFaultOverheadFree: with FT enabled but no fault injected,
// checkpoints are taken but nothing is restored and no recovery phase
// appears — the overhead of the mechanism is checkpoint bytes only.
func TestRecoveryNoFaultOverheadFree(t *testing.T) {
	d := genDiscrete(t, 1200, 2, 23)
	o := Options{Tree: tree.Options{Binary: true}, SyncEveryNodes: 8}
	want := tree.BuildBFS(d, o.SerialOptions(d))
	for _, f := range formulations {
		t.Run(f.name, func(t *testing.T) {
			trees, w, st := runRecovery(t, f.build, d, 4, o, nil, 0)
			checkSurvivors(t, want, trees, w)
			stats := st.Stats()
			if stats.Checkpoints == 0 {
				t.Fatal("FT build took no checkpoints")
			}
			if stats.Restores != 0 {
				t.Fatalf("fault-free build restored checkpoints: %+v", stats)
			}
			if rec := w.Breakdown().Phase(PhaseRecovery); rec.Calls != 0 || rec.CommTime != 0 {
				t.Fatalf("fault-free build charged the recovery phase: %+v", rec)
			}
		})
	}
}

// TestRecoveryTwoCrashes: two distinct ranks crashing at different points
// trigger two recovery rounds; the two survivors still finish with the
// reference tree.
func TestRecoveryTwoCrashes(t *testing.T) {
	d := genDiscrete(t, 1200, 2, 29)
	o := Options{Tree: tree.Options{Binary: true}, SyncEveryNodes: 8}
	want := tree.BuildBFS(d, o.SerialOptions(d))
	for _, f := range formulations {
		t.Run(f.name, func(t *testing.T) {
			plan := fault.NewPlan(
				fault.CrashAt(1, fault.CollStart, 2),
				fault.CrashAt(3, fault.CollStart, 5),
			)
			trees, w, st := runRecovery(t, f.build, d, 4, o, plan, 0)
			checkSurvivors(t, want, trees, w)
			if len(w.DeadRanks()) == 0 {
				t.Fatal("no crash fired")
			}
			if st.Stats().Restores == 0 {
				t.Fatal("no checkpoint restored")
			}
		})
	}
}

// TestFTDisabledUnchanged: a nil FT option must leave the builders on
// their original zero-checkpoint path (guard against accidental coupling).
func TestFTDisabledUnchanged(t *testing.T) {
	d := genDiscrete(t, 1000, 2, 31)
	o := Options{Tree: tree.Options{Binary: true}, SyncEveryNodes: 8}
	want := tree.BuildBFS(d, o.SerialOptions(d))
	for _, f := range formulations {
		got, _ := runParallel(t, f.build, d, 4, o)
		if diff := tree.Diff(want, got); diff != "" {
			t.Fatalf("%s: non-FT build differs: %s", f.name, diff)
		}
	}
}
