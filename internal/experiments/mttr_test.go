package experiments

import (
	"strings"
	"testing"
)

// TestRunMTTRSweep: every row of a small sweep — in-place, restart and
// elastic at two checkpoint intervals — hands back the baseline tree
// bit-identically, and the costs are internally consistent (durable bytes
// written, read back on resume, and a positive MTTR).
func TestRunMTTRSweep(t *testing.T) {
	for _, form := range []Formulation{Sync, Partitioned, Hybrid} {
		t.Run(string(form), func(t *testing.T) {
			rows, err := RunMTTR(MTTRSpec{
				Formulation: form,
				Records:     3000,
				Intervals:   []int{1, 3},
				ResumeProcs: []int{4, 2},
				HaltOp:      3,
			})
			if err != nil {
				t.Fatal(err)
			}
			modes := map[string]int{}
			for _, r := range rows {
				modes[r.Mode]++
				if !r.TreeEqual {
					t.Fatalf("%s/%s interval %d P'=%d: recovered tree differs from baseline",
						r.Formulation, r.Mode, r.Interval, r.ResumeProcs)
				}
				if r.BaselineSec <= 0 || r.CleanSec < r.BaselineSec {
					t.Fatalf("inconsistent clocks in %+v", r)
				}
				if r.DiskWrittenMB <= 0 {
					t.Fatalf("no durable bytes written: %+v", r)
				}
				if r.Mode != "in-place" {
					if r.MTTRSec <= 0 {
						t.Fatalf("resumed run has no modeled cost: %+v", r)
					}
					if r.DiskReadMB <= 0 {
						t.Fatalf("resume read nothing back from disk: %+v", r)
					}
				}
			}
			if modes["in-place"] != 2 || modes["restart"] != 2 || modes["elastic"] != 2 {
				t.Fatalf("mode coverage = %v, want 2 of each", modes)
			}
		})
	}
}

// TestRecoveryBenchMarshal: the artifact renders as indented JSON with
// the row fields the README table is generated from.
func TestRecoveryBenchMarshal(t *testing.T) {
	var a RecoveryBench
	a.Records = 100
	a.Rows = []MTTRRow{{Formulation: "sync", Mode: "elastic", Interval: 2, ResumeProcs: 3}}
	b, err := a.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{`"mttr_sec"`, `"overhead_pct"`, `"resume_procs"`, `"tree_equal"`} {
		if !strings.Contains(string(b), field) {
			t.Fatalf("artifact JSON missing %s:\n%s", field, b)
		}
	}
}
