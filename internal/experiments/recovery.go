package experiments

import (
	"partree/internal/core"
	"partree/internal/discretize"
	"partree/internal/fault"
	"partree/internal/mp"
	"partree/internal/quest"
	"partree/internal/tree"
)

// RecoverySpec describes one fault-tolerance overhead measurement: the
// same workload is trained three times on the modeled machine — without
// fault tolerance, with checkpointing but no fault, and with a seeded
// crash of CrashRank at its CrashOp-th collective boundary — so the cost
// of the mechanism and the cost of an actual recovery can be read off
// separately.
type RecoverySpec struct {
	Formulation Formulation
	Records     int
	Function    int    // Quest classification function (paper: 2)
	Seed        uint64 // generator seed
	Procs       int
	CrashRank   int // rank killed in the faulted run
	CrashOp     int // ordinal of the collective boundary at which it dies
	Machine     mp.Machine
	Options     core.Options
}

func (s RecoverySpec) withDefaults() RecoverySpec {
	if s.Function == 0 {
		s.Function = 2
	}
	if s.Seed == 0 {
		s.Seed = 1998
	}
	if s.Procs == 0 {
		s.Procs = 4
	}
	if s.CrashOp == 0 {
		s.CrashOp = 3
	}
	if s.Machine == (mp.Machine{}) {
		s.Machine = mp.SP2()
	}
	s.Options.Tree.Binary = true
	s.Options = s.Options.WithDefaults()
	return s
}

// RecoveryResult reports the three runs of one RecoverySpec.
type RecoveryResult struct {
	Spec RecoverySpec
	// BaselineSeconds is the modeled time with fault tolerance disabled.
	BaselineSeconds float64
	// CleanSeconds is the modeled time with checkpointing on but no fault
	// — the steady-state overhead of the mechanism.
	CleanSeconds float64
	// FaultSeconds is the modeled time of the crashed-and-recovered run.
	FaultSeconds float64
	// Checkpoint traffic of the faulted run.
	Checkpoints  int64
	CheckpointMB float64
	Restores     int64
	RestoredMB   float64
	DeadRanks    []int
	// Recovery is the faulted run's PhaseRecovery breakdown row: the
	// modeled cost of regrouping the survivors, restoring checkpoints and
	// redistributing the lost rank's records.
	Recovery mp.CellStats
	// TreeEqual reports whether the survivors' tree is bit-identical to
	// the fault-free baseline tree.
	TreeEqual bool
}

// RunRecovery executes the three runs of spec and diffs the recovered
// tree against the no-fault-tolerance baseline.
func RunRecovery(spec RecoverySpec) RecoveryResult {
	spec = spec.withDefaults()
	res := RecoveryResult{Spec: spec}

	baseTree, baseW, _ := recoveryRun(spec, nil, nil)
	res.BaselineSeconds = baseW.MaxClock()

	cleanStore := fault.NewStore()
	_, cleanW, _ := recoveryRun(spec, cleanStore, nil)
	res.CleanSeconds = cleanW.MaxClock()

	faultStore := fault.NewStore()
	plan := fault.NewPlan(fault.CrashAt(spec.CrashRank, fault.CollStart, spec.CrashOp))
	faultTree, faultW, _ := recoveryRun(spec, faultStore, plan)
	res.FaultSeconds = faultW.MaxClock()
	st := faultStore.Stats()
	res.Checkpoints = st.Checkpoints
	res.CheckpointMB = float64(st.Bytes) / 1e6
	res.Restores = st.Restores
	res.RestoredMB = float64(st.RestoredB) / 1e6
	res.DeadRanks = faultW.DeadRanks()
	res.Recovery = faultW.Breakdown().Phase(core.PhaseRecovery)
	res.TreeEqual = faultTree != nil && tree.Diff(baseTree, faultTree) == ""
	return res
}

// recoveryRun trains once with the given store (nil disables fault
// tolerance) and plan (nil injects nothing), returning the first
// surviving rank's tree.
func recoveryRun(spec RecoverySpec, st fault.Store, plan *fault.Plan) (*tree.Tree, *mp.World, []*tree.Tree) {
	o := spec.Options
	if st != nil {
		o.FT = &core.FTOptions{Store: st}
	}
	build := spec.Formulation.Builder()
	w := mp.NewWorld(spec.Procs, spec.Machine)
	if plan != nil {
		w.SetFaultPlan(plan)
	}
	trees := make([]*tree.Tree, spec.Procs)
	w.Run(func(c *mp.Comm) {
		lo := c.Rank() * spec.Records / spec.Procs
		hi := (c.Rank() + 1) * spec.Records / spec.Procs
		local, err := quest.GenerateBlock(quest.Config{Function: spec.Function, Seed: spec.Seed}, lo, hi)
		if err != nil {
			panic(err)
		}
		local = discretize.UniformPaper(local, quest.PaperBins(), quest.Ranges())
		trees[c.Rank()] = build(c, local, o)
	})
	var first *tree.Tree
	for _, t := range trees {
		if t != nil {
			first = t
			break
		}
	}
	return first, w, trees
}
