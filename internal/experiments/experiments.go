// Package experiments regenerates every figure of the paper's evaluation
// (§5) on the modeled machine: Figure 6 (speedup of the three
// formulations), Figure 7 (splitting-criterion ratio sweep), Figure 8
// (hybrid speedup across dataset sizes and up to 128 processors), Figure 9
// (scaleup with fixed per-processor load), plus the Table 1–3 golden data
// and an isoefficiency check of §4.3.
//
// All runtimes are modeled seconds on the configured Machine (SP-2-like by
// default): the in-process goroutine scheduling of the host plays no role,
// so the series are deterministic. Dataset sizes default to laptop-scale
// fractions of the paper's 0.8M/1.6M records and can be scaled up; the
// qualitative shapes (who wins, where curves bend) are preserved because
// they depend on the communication-to-computation ratio, not on absolute N
// (see EXPERIMENTS.md).
package experiments

import (
	"fmt"

	"partree/internal/core"
	"partree/internal/dataset"
	"partree/internal/discretize"
	"partree/internal/mp"
	"partree/internal/quest"
	"partree/internal/tree"
)

// Formulation names one of the paper's three parallel algorithms.
type Formulation string

// The three formulations of §3.
const (
	Sync        Formulation = "sync"
	Partitioned Formulation = "partitioned"
	Hybrid      Formulation = "hybrid"
)

// Builder returns the core entry point of the formulation.
func (f Formulation) Builder() func(*mp.Comm, *dataset.Dataset, core.Options) *tree.Tree {
	switch f {
	case Sync:
		return core.BuildSync
	case Partitioned:
		return core.BuildPartitioned
	case Hybrid:
		return core.BuildHybrid
	default:
		panic(fmt.Sprintf("experiments: unknown formulation %q", f))
	}
}

// Spec describes one parallel training run.
type Spec struct {
	Formulation Formulation
	Records     int
	Function    int    // Quest classification function (paper: 2)
	Seed        uint64 // generator seed
	Procs       int
	// Continuous selects the Figure 8/9 configuration: raw continuous
	// attributes discretized per node by clustering. False selects the
	// Figure 6/7 configuration: the paper's uniform preprocessing
	// discretization.
	Continuous bool
	// Attrs widens the generated schema to this many attributes (the nine
	// paper attributes plus synthetic noise extras — quest.SchemaN). 0
	// keeps the original schema. The substrate of the voted-split sweep.
	Attrs int
	Machine    mp.Machine
	// Topology names the modeled interconnect (mp.NewTopology; "" =
	// hypercube). Only distinguishable when HopLatency > 0.
	Topology string
	// HopLatency is the per-hop routing latency t_h installed into the
	// machine (Machine.TH). Zero keeps the Equation 2 cut-through model.
	HopLatency float64
	// Coll selects the collective algorithms (mp.ParseCollSpec syntax,
	// e.g. "auto" or "allreduce=ring"). "" keeps the historic defaults.
	Coll    string
	Options core.Options
	// Trace records the per-rank event timeline (Result.Events). The
	// per-phase breakdown is always collected; tracing never changes the
	// modeled clocks or the built tree.
	Trace bool
}

// withDefaults normalizes a spec.
func (s Spec) withDefaults() Spec {
	if s.Function == 0 {
		s.Function = 2
	}
	if s.Seed == 0 {
		s.Seed = 1998
	}
	if s.Procs == 0 {
		s.Procs = 1
	}
	if s.Machine == (mp.Machine{}) {
		s.Machine = mp.SP2()
	}
	s.Options.Tree.Binary = true // the paper uses binary splitting throughout
	s.Options = s.Options.WithDefaults()
	return s
}

// Result is the outcome of one run.
type Result struct {
	Spec           Spec
	ModeledSeconds float64
	Traffic        mp.Traffic
	Tree           tree.Stats
	// Breakdown is the per-phase × per-collective modeled accounting
	// summed over ranks; its totals equal Traffic's comm/comp times.
	Breakdown mp.Breakdown
	// Encoding is the per-phase adaptive reduction-encoding activity
	// (dense/sparse flush and message counts, bytes saved), summed over
	// ranks. Empty unless the run enables a sparse threshold
	// (Spec.Options.Tree.Reuse.SparseThreshold > 0).
	Encoding map[string]mp.EncodingStats
	// Events is the merged event timeline (only when Spec.Trace).
	Events []mp.TraceEvent
}

// Run executes one parallel training run: each rank generates its own
// block of the Quest stream (exactly what the serial generator would
// produce), optionally applies the paper's uniform discretization, builds
// the tree with the requested formulation, and reports the modeled
// parallel runtime (max rank clock).
func Run(spec Spec) Result {
	res, _ := runTree(spec)
	return res
}

// runTree is Run, additionally returning the built (replicated) tree —
// the voted-split sweep needs it for holdout accuracy and exact-vs-voted
// comparison.
func runTree(spec Spec) (Result, *tree.Tree) {
	spec = spec.withDefaults()
	if spec.HopLatency != 0 {
		spec.Machine = spec.Machine.WithHopLatency(spec.HopLatency)
	}
	w := mp.NewWorld(spec.Procs, spec.Machine)
	if spec.Topology != "" {
		topo, err := mp.NewTopology(spec.Topology, spec.Procs)
		if err != nil {
			panic(err)
		}
		w.SetTopology(topo)
	}
	if spec.Coll != "" {
		cfg, err := mp.ParseCollSpec(spec.Coll)
		if err != nil {
			panic(err)
		}
		w.SetCollConfig(cfg)
	}
	if spec.Trace {
		w.EnableTrace()
	}
	build := spec.Formulation.Builder()
	trees := make([]*tree.Tree, spec.Procs)
	w.Run(func(c *mp.Comm) {
		lo := c.Rank() * spec.Records / spec.Procs
		hi := (c.Rank() + 1) * spec.Records / spec.Procs
		local, err := quest.GenerateBlock(quest.Config{Function: spec.Function, Seed: spec.Seed, Attrs: spec.Attrs}, lo, hi)
		if err != nil {
			panic(err)
		}
		if !spec.Continuous {
			local = discretize.UniformPaper(local, quest.PaperBins(), quest.Ranges())
		}
		trees[c.Rank()] = build(c, local, spec.Options)
	})
	res := Result{
		Spec:           spec,
		ModeledSeconds: w.MaxClock(),
		Traffic:        w.Traffic(),
		Tree:           trees[0].Stats(),
		Breakdown:      w.Breakdown(),
		Encoding:       w.EncodingByPhase(),
	}
	if spec.Trace {
		res.Events = w.Events()
	}
	return res, trees[0]
}

// SpeedupPoint is one point of a speedup curve.
type SpeedupPoint struct {
	P       int
	Seconds float64
	Speedup float64
}

// SpeedupSeries measures the modeled runtime of the formulation at each
// processor count and derives speedups against its own P=1 run (which has
// zero communication, i.e. the serial algorithm).
func SpeedupSeries(spec Spec, procs []int) []SpeedupPoint {
	out := make([]SpeedupPoint, 0, len(procs))
	var t1 float64
	s1 := spec
	s1.Procs = 1
	t1 = Run(s1).ModeledSeconds
	for _, p := range procs {
		sp := spec
		sp.Procs = p
		secs := t1
		if p != 1 {
			secs = Run(sp).ModeledSeconds
		}
		out = append(out, SpeedupPoint{P: p, Seconds: secs, Speedup: t1 / secs})
	}
	return out
}

// Fig6 reproduces Figure 6: speedup of the three formulations on the
// function-2 dataset with uniform discretization, for the given dataset
// sizes (paper: 0.8M and 1.6M) and processor counts (paper: 1..16).
func Fig6(records []int, procs []int, base Spec) map[int]map[Formulation][]SpeedupPoint {
	out := make(map[int]map[Formulation][]SpeedupPoint, len(records))
	for _, n := range records {
		out[n] = make(map[Formulation][]SpeedupPoint, 3)
		for _, f := range []Formulation{Sync, Partitioned, Hybrid} {
			spec := base
			spec.Formulation, spec.Records, spec.Continuous = f, n, false
			out[n][f] = SpeedupSeries(spec, procs)
		}
	}
	return out
}

// RatioPoint is one point of the Figure 7 sweep.
type RatioPoint struct {
	Ratio   float64
	Seconds float64
}

// Fig7 reproduces Figure 7: the hybrid's modeled runtime as the splitting
// criterion's trigger ratio varies (paper: minimum near ratio 1.0).
func Fig7(records, procs int, ratios []float64, base Spec) []RatioPoint {
	out := make([]RatioPoint, 0, len(ratios))
	for _, r := range ratios {
		spec := base
		spec.Formulation, spec.Records, spec.Procs, spec.Continuous = Hybrid, records, procs, false
		spec.Options.SplitRatio = r
		res := Run(spec)
		out = append(out, RatioPoint{Ratio: r, Seconds: res.ModeledSeconds})
	}
	return out
}

// Fig8 reproduces Figure 8: hybrid speedup with raw continuous attributes
// and per-node clustering discretization, one series per dataset size,
// processor counts up to 128.
func Fig8(records []int, procs []int, base Spec) map[int][]SpeedupPoint {
	out := make(map[int][]SpeedupPoint, len(records))
	for _, n := range records {
		spec := base
		spec.Formulation, spec.Records, spec.Continuous = Hybrid, n, true
		out[n] = SpeedupSeries(spec, procs)
	}
	return out
}

// ScaleupPoint is one point of the Figure 9 curve.
type ScaleupPoint struct {
	P       int
	Records int
	Seconds float64
}

// Fig9 reproduces Figure 9: runtime with a fixed number of examples per
// processor (paper: 50,000) as the processor count grows — ideally a
// horizontal line, with the θ(P log P) isoefficiency responsible for the
// residual slope.
func Fig9(perProc int, procs []int, base Spec) []ScaleupPoint {
	out := make([]ScaleupPoint, 0, len(procs))
	for _, p := range procs {
		spec := base
		spec.Formulation, spec.Records, spec.Procs, spec.Continuous = Hybrid, perProc*p, p, true
		res := Run(spec)
		out = append(out, ScaleupPoint{P: p, Records: perProc * p, Seconds: res.ModeledSeconds})
	}
	return out
}

// EfficiencyAt returns parallel efficiency T1/(P·TP) for the hybrid on n
// records and p processors — the §4.3 isoefficiency check grows n as
// θ(P log P) and expects this to hold roughly constant.
func EfficiencyAt(n, p int, base Spec) float64 {
	s1 := base
	s1.Formulation, s1.Records, s1.Procs = Hybrid, n, 1
	sp := base
	sp.Formulation, sp.Records, sp.Procs = Hybrid, n, p
	t1 := Run(s1).ModeledSeconds
	tp := Run(sp).ModeledSeconds
	return t1 / (float64(p) * tp)
}

// SamplingPoint is one point of the windowing/sampling motivation
// experiment.
type SamplingPoint struct {
	Fraction float64
	TrainN   int
	TestAcc  float64
}

// Sampling reproduces the argument of the paper's introduction (refs
// [24, 5–7]): training a tree on a sample of the data does not reach the
// accuracy of training on all of it — which is why scalable parallel
// induction matters. A perturbed function-2 dataset (imperfectly
// learnable, like real data) is split into train/test; trees are trained
// on growing fractions of the training part and evaluated on the same
// held-out records.
func Sampling(records int, fractions []float64, seed uint64) []SamplingPoint {
	cfg := quest.Config{Function: 2, Seed: seed, Perturbation: 0.15}
	full, err := quest.Generate(cfg, records)
	if err != nil {
		panic(err)
	}
	cut := records * 3 / 4
	train, test := full.Slice(0, cut), full.Slice(cut, records)
	out := make([]SamplingPoint, 0, len(fractions))
	for _, f := range fractions {
		n := int(float64(train.Len()) * f)
		if n < 2 {
			n = 2
		}
		sub := train.Slice(0, n)
		t := tree.BuildHunt(sub, tree.Options{Binary: true})
		tree.Prune(t, tree.DefaultPruneZ)
		out = append(out, SamplingPoint{Fraction: f, TrainN: n, TestAcc: t.Accuracy(test)})
	}
	return out
}
