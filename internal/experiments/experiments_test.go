package experiments

import (
	"testing"
)

func TestRunSmokeAllFormulations(t *testing.T) {
	for _, f := range []Formulation{Sync, Partitioned, Hybrid} {
		res := Run(Spec{Formulation: f, Records: 2000, Procs: 4})
		if res.ModeledSeconds <= 0 {
			t.Errorf("%s: non-positive modeled time", f)
		}
		if res.Tree.Nodes == 0 {
			t.Errorf("%s: empty tree", f)
		}
		if res.Traffic.Msgs == 0 {
			t.Errorf("%s: no traffic at P=4", f)
		}
	}
}

func TestRunContinuousConfiguration(t *testing.T) {
	res := Run(Spec{Formulation: Hybrid, Records: 2000, Procs: 4, Continuous: true})
	if res.Tree.Nodes == 0 || res.ModeledSeconds <= 0 {
		t.Fatalf("continuous run degenerate: %+v", res)
	}
}

func TestRunDeterministic(t *testing.T) {
	spec := Spec{Formulation: Hybrid, Records: 3000, Procs: 8}
	a, b := Run(spec), Run(spec)
	if a.ModeledSeconds != b.ModeledSeconds || a.Tree != b.Tree || a.Traffic != b.Traffic {
		t.Fatalf("runs differ: %+v vs %+v", a, b)
	}
}

func TestSpeedupSeriesBaseline(t *testing.T) {
	spec := Spec{Formulation: Sync, Records: 2000}
	pts := SpeedupSeries(spec, []int{1, 2, 4})
	if len(pts) != 3 {
		t.Fatalf("%d points", len(pts))
	}
	if pts[0].P != 1 || pts[0].Speedup != 1.0 {
		t.Fatalf("P=1 speedup %v, want exactly 1.0", pts[0].Speedup)
	}
	for _, pt := range pts {
		if pt.Seconds <= 0 || pt.Speedup <= 0 {
			t.Fatalf("degenerate point %+v", pt)
		}
	}
}

func TestFig7SweepShape(t *testing.T) {
	pts := Fig7(2000, 4, []float64{0.5, 1, 2}, Spec{})
	if len(pts) != 3 {
		t.Fatalf("%d points", len(pts))
	}
	for i, pt := range pts {
		if pt.Seconds <= 0 {
			t.Fatalf("point %d degenerate: %+v", i, pt)
		}
	}
}

func TestFig9PointsAndGrowth(t *testing.T) {
	pts := Fig9(500, []int{1, 2, 4}, Spec{})
	if len(pts) != 3 {
		t.Fatalf("%d points", len(pts))
	}
	for i, pt := range pts {
		if pt.Records != 500*pt.P {
			t.Fatalf("point %d: %d records for P=%d", i, pt.Records, pt.P)
		}
	}
}

func TestEfficiencyAtBounds(t *testing.T) {
	e := EfficiencyAt(4000, 4, Spec{})
	if e <= 0 || e > 1.2 {
		t.Fatalf("efficiency %v out of plausible range", e)
	}
}

func TestBuilderPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown formulation accepted")
		}
	}()
	Formulation("bogus").Builder()
}

// TestSamplingMotivation: the introduction's claim — small samples lose
// test accuracy relative to the full training set.
func TestSamplingMotivation(t *testing.T) {
	pts := Sampling(12000, []float64{0.02, 0.1, 1.0}, 2024)
	if len(pts) != 3 {
		t.Fatalf("%d points", len(pts))
	}
	small, full := pts[0].TestAcc, pts[2].TestAcc
	if full < small+0.01 {
		t.Fatalf("full training (%.4f) not better than a 2%% sample (%.4f)", full, small)
	}
	for _, pt := range pts {
		if pt.TestAcc < 0.5 || pt.TestAcc > 1 {
			t.Fatalf("degenerate accuracy %+v", pt)
		}
	}
}
