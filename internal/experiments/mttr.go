package experiments

import (
	"encoding/json"
	"fmt"
	"os"

	"partree/internal/core"
	"partree/internal/discretize"
	"partree/internal/fault"
	"partree/internal/mp"
	"partree/internal/quest"
	"partree/internal/tree"
)

// MTTR sweep: how long does it take to get the tree back after a fault,
// as a function of the checkpoint interval and of how much of the machine
// comes back? Three recovery modes are priced on the modeled machine with
// durable (disk-backed, TD-priced) checkpoints:
//
//   - in-place: one rank dies, the survivors regroup inside the same run
//     and finish. MTTR is the extra modeled time the crash added over the
//     fault-free checkpointing run.
//   - restart: every rank dies (kill -9 of the whole process); a fresh
//     process of the same size resumes from the last committed durable
//     cut. MTTR is the resumed process's modeled seconds — its clock
//     starts at zero, so this is rollback replay plus the remaining build.
//   - elastic: like restart, but the new process has P' < P ranks; lost
//     ranks' checkpoints are adopted by their heirs (rank i mod P').
//
// Every mode must hand back a tree bit-identical to the fault-free run;
// the sweep records that check alongside the costs so the artifact is a
// correctness witness too.

// MTTRSpec configures one sweep. The zero value of most fields picks the
// defaults of the committed BENCH_recovery.json artifact.
type MTTRSpec struct {
	Formulation Formulation
	Records     int
	Function    int    // Quest classification function (paper: 2)
	Seed        uint64 // generator seed
	Procs       int    // ranks of the original (crashed) process
	HaltOp      int    // collective boundary at which ranks die
	Intervals   []int  // checkpoint-every values (levels between durable cuts)
	ResumeProcs []int  // P' of the resumed process; == Procs is restart, < is elastic
	Machine     mp.Machine
	Options     core.Options
}

func (s MTTRSpec) withDefaults() MTTRSpec {
	if s.Function == 0 {
		s.Function = 2
	}
	if s.Seed == 0 {
		s.Seed = 1998
	}
	if s.Procs == 0 {
		s.Procs = 4
	}
	if s.HaltOp == 0 {
		s.HaltOp = 5
	}
	if len(s.Intervals) == 0 {
		s.Intervals = []int{1, 2, 4}
	}
	if len(s.ResumeProcs) == 0 {
		s.ResumeProcs = []int{s.Procs, s.Procs - 1, s.Procs / 2}
	}
	if s.Machine == (mp.Machine{}) {
		// Price durable checkpoint bytes at 20 MB/s so the interval
		// tradeoff (steady-state write cost vs. rollback distance) is
		// visible at artifact scale.
		s.Machine = mp.SP2().WithDiskRate(5e-8)
	}
	s.Options.Tree.Binary = true
	s.Options = s.Options.WithDefaults()
	return s
}

// MTTRRow is one (formulation, interval, mode, P') point.
type MTTRRow struct {
	Formulation string `json:"formulation"`
	Interval    int    `json:"interval"` // checkpoint every k levels
	Mode        string `json:"mode"`     // in-place | restart | elastic
	HaltOp      int    `json:"halt_op"`  // collective boundary where ranks died
	Procs       int    `json:"procs"`
	ResumeProcs int    `json:"resume_procs"`
	// BaselineSec is the modeled time with fault tolerance off;
	// CleanSec the fault-free run with durable checkpointing at this
	// interval (their gap is the steady-state overhead, also given as
	// OverheadPct).
	BaselineSec float64 `json:"baseline_sec"`
	CleanSec    float64 `json:"clean_sec"`
	OverheadPct float64 `json:"overhead_pct"`
	// MTTRSec per the mode definitions above.
	MTTRSec       float64 `json:"mttr_sec"`
	CheckpointMB  float64 `json:"checkpoint_mb"`
	RestoredMB    float64 `json:"restored_mb"`
	DiskWrittenMB float64 `json:"disk_written_mb"` // bytes the halted process persisted
	DiskReadMB    float64 `json:"disk_read_mb"`    // bytes the resumed process read back
	TreeEqual     bool    `json:"tree_equal"`
}

// RecoveryBench is the committed BENCH_recovery.json artifact.
type RecoveryBench struct {
	Machine struct {
		TS, TW, TC, TOp, TD float64
	} `json:"machine"`
	Records  int       `json:"records"`
	Function int       `json:"function"`
	Seed     uint64    `json:"seed"`
	Procs    int       `json:"procs"`
	Rows     []MTTRRow `json:"rows"`
}

// MarshalIndent renders the artifact as the committed JSON.
func (a RecoveryBench) MarshalIndent() ([]byte, error) {
	return json.MarshalIndent(a, "", "  ")
}

// RunMTTR executes the sweep for one formulation and appends its rows to
// the artifact. Durable stores live in throwaway temp directories; every
// resumed tree is diffed against the fault-free baseline.
func RunMTTR(spec MTTRSpec) ([]MTTRRow, error) {
	spec = spec.withDefaults()

	baseTree, baseW, _ := mttrRun(spec, spec.Procs, nil, 0, false, nil)
	if baseTree == nil {
		return nil, fmt.Errorf("experiments: baseline run of %s produced no tree", spec.Formulation)
	}
	baseSec := baseW.MaxClock()

	var rows []MTTRRow
	for _, k := range spec.Intervals {
		// Fault-free run with durable checkpointing at interval k: the
		// steady-state cost of the mechanism.
		cleanDir, err := os.MkdirTemp("", "partree-mttr-*")
		if err != nil {
			return nil, err
		}
		cleanStore, err := fault.OpenDiskStore(cleanDir)
		if err != nil {
			return nil, err
		}
		cleanTree, cleanW, _ := mttrRun(spec, spec.Procs, cleanStore, k, false, nil)
		cleanStore.Close()
		os.RemoveAll(cleanDir)
		if cleanTree == nil {
			return nil, fmt.Errorf("experiments: clean FT run of %s produced no tree", spec.Formulation)
		}
		cleanSec := cleanW.MaxClock()
		base := MTTRRow{
			Formulation: string(spec.Formulation),
			Interval:    k,
			HaltOp:      spec.HaltOp,
			Procs:       spec.Procs,
			BaselineSec: baseSec,
			CleanSec:    cleanSec,
			OverheadPct: 100 * (cleanSec - baseSec) / baseSec,
		}

		// In-place: one rank dies, survivors regroup inside the run.
		{
			dir, err := os.MkdirTemp("", "partree-mttr-*")
			if err != nil {
				return nil, err
			}
			st, err := fault.OpenDiskStore(dir)
			if err != nil {
				return nil, err
			}
			plan := fault.NewPlan(fault.CrashAt(1%spec.Procs, fault.CollStart, spec.HaltOp))
			ft, fw, _ := mttrRun(spec, spec.Procs, st, k, false, plan)
			stats := st.Stats()
			io := st.DiskIO()
			st.Close()
			os.RemoveAll(dir)
			row := base
			row.Mode = "in-place"
			row.ResumeProcs = spec.Procs - 1
			row.MTTRSec = fw.MaxClock() - cleanSec
			row.CheckpointMB = float64(stats.Bytes) / 1e6
			row.RestoredMB = float64(stats.RestoredB) / 1e6
			row.DiskWrittenMB = float64(io.WrittenB) / 1e6
			row.TreeEqual = ft != nil && tree.Diff(baseTree, ft) == ""
			rows = append(rows, row)
		}

		// Restart and elastic: the whole process dies at the halt op; a
		// fresh process of P' ranks resumes from the durable cut.
		for _, p2 := range spec.ResumeProcs {
			if p2 < 1 || p2 > spec.Procs {
				continue
			}
			dir, err := os.MkdirTemp("", "partree-mttr-*")
			if err != nil {
				return nil, err
			}
			st, err := fault.OpenDiskStore(dir)
			if err != nil {
				return nil, err
			}
			var fs []fault.Fault
			for r := 0; r < spec.Procs; r++ {
				fs = append(fs, fault.CrashAt(r, fault.CollStart, spec.HaltOp))
			}
			_, hw, _ := mttrRun(spec, spec.Procs, st, k, false, fault.NewPlan(fs...))
			halted := st.Stats()
			haltedIO := st.DiskIO()
			st.Close()
			if len(hw.DeadRanks()) != spec.Procs {
				os.RemoveAll(dir)
				return nil, fmt.Errorf("experiments: halt at op %d killed %d of %d ranks of %s — move HaltOp earlier",
					spec.HaltOp, len(hw.DeadRanks()), spec.Procs, spec.Formulation)
			}

			rst, err := fault.OpenDiskStore(dir)
			if err != nil {
				os.RemoveAll(dir)
				return nil, err
			}
			rt, rw, _ := mttrRun(spec, p2, rst, k, true, nil)
			resumed := rst.Stats()
			resumedIO := rst.DiskIO()
			rst.Close()
			os.RemoveAll(dir)

			row := base
			row.Mode = "restart"
			if p2 < spec.Procs {
				row.Mode = "elastic"
			}
			row.ResumeProcs = p2
			row.MTTRSec = rw.MaxClock()
			row.CheckpointMB = float64(halted.Bytes) / 1e6
			row.RestoredMB = float64(resumed.RestoredB) / 1e6
			row.DiskWrittenMB = float64(haltedIO.WrittenB) / 1e6
			row.DiskReadMB = float64(resumedIO.ReadB) / 1e6
			row.TreeEqual = rt != nil && tree.Diff(baseTree, rt) == ""
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// mttrRun is one training process of the sweep: procs ranks over the
// spec's workload, an optional durable store (nil disables fault
// tolerance), and an optional fault plan. It returns the first surviving
// rank's tree.
func mttrRun(spec MTTRSpec, procs int, st fault.Store, ckptEvery int, resume bool, plan *fault.Plan) (*tree.Tree, *mp.World, []*tree.Tree) {
	o := spec.Options
	if st != nil {
		o.FT = &core.FTOptions{Store: st, CheckpointEvery: ckptEvery, Resume: resume}
	}
	build := spec.Formulation.Builder()
	w := mp.NewWorld(procs, spec.Machine)
	if plan != nil {
		w.SetFaultPlan(plan)
	}
	trees := make([]*tree.Tree, procs)
	w.Run(func(c *mp.Comm) {
		lo := c.Rank() * spec.Records / procs
		hi := (c.Rank() + 1) * spec.Records / procs
		local, err := quest.GenerateBlock(quest.Config{Function: spec.Function, Seed: spec.Seed}, lo, hi)
		if err != nil {
			panic(err)
		}
		local = discretize.UniformPaper(local, quest.PaperBins(), quest.Ranges())
		trees[c.Rank()] = build(c, local, o)
	})
	var first *tree.Tree
	for _, t := range trees {
		if t != nil {
			first = t
			break
		}
	}
	return first, w, trees
}
