package experiments

import (
	"encoding/json"
	"math"

	"partree/internal/mp"
)

// Isoefficiency sweep of the communication substrate (§4.3 of the paper,
// extended to non-hypercube fabrics). The synchronous formulation's
// per-level cost is one global sum-reduction of the frontier's statistics
// plus the local tabulation scan; the paper shows the hypercube allreduce
// keeps parallel efficiency constant when the problem grows as
// N = θ(P·log P). This sweep prices that per-level balance analytically
// with mp.ModelAllreduce — exact per-rank clock recurrences, so modeled
// ranks into the thousands cost microseconds instead of millions of real
// messages — across topologies and collective algorithms, holding
// N = n0·P·log₂P. On the hypercube the communication-to-computation
// ratio stays flat (θ(P log P) is the right isoefficiency function);
// on hop-priced rings and tori the recursive-doubling partners are no
// longer neighbours, the ratio grows with P, and the level where it
// crosses 1.0 — the hybrid's split trigger — marks where the paper's
// scaling argument breaks off-hypercube.

// IsoCommRow is one (topology, algorithm, P) point of the sweep.
type IsoCommRow struct {
	Topology string `json:"topology"`
	Algo     string `json:"algo"`     // configured selection
	Resolved string `json:"resolved"` // algorithm that actually runs at this P
	P        int    `json:"p"`
	Records  int    `json:"records"` // N = n0·P·log₂P
	// AllreduceSec is the modeled wall-clock of one per-level reduction
	// of StatsElems int64 elements (mp.ModelAllreduce).
	AllreduceSec float64 `json:"allreduce_sec"`
	// CompSec is the modeled per-level tabulation time per rank:
	// (N/P)·attrs·t_c.
	CompSec float64 `json:"comp_sec"`
	// Efficiency is CompSec/(CompSec+AllreduceSec).
	Efficiency float64 `json:"efficiency"`
	// CommRatio is AllreduceSec/CompSec — the communication-to-computation
	// ratio the hybrid's splitting criterion compares against 1.0.
	CommRatio float64 `json:"comm_ratio"`
}

// IsoComm is the committed BENCH_comm.json artifact.
type IsoComm struct {
	Machine struct {
		TS, TW, TC, TOp, TH float64
	} `json:"machine"`
	BaseRecords    int          `json:"base_records"` // n0: records per rank at P=2
	StatsElems     int          `json:"stats_elems"`  // int64 elements per per-level reduction
	AttrsPerRecord int          `json:"attrs_per_record"`
	Topologies     []string     `json:"topologies"`
	Algos          []string     `json:"algos"`
	Rows           []IsoCommRow `json:"rows"`
}

// IsoCommDefaults returns the sweep configuration of the committed
// artifact: SP-2-like parameters with a 10 µs per-hop latency (the knob
// that makes fabrics distinguishable), 500 base records per rank, and a
// 4096-element (32 KB dense) statistics reduction per level — a frontier
// flush of a few dozen nodes.
func IsoCommDefaults() (m mp.Machine, n0, statsElems, attrs int) {
	return mp.SP2().WithHopLatency(10e-6), 500, 4096, 7
}

// IsoCommSweep prices the per-level balance for every topology × algo ×
// P ≤ maxP (P doubling from 2).
func IsoCommSweep(maxP int, m mp.Machine, n0, statsElems, attrs int, topologies []string, algos []mp.Algo) IsoComm {
	art := IsoComm{BaseRecords: n0, StatsElems: statsElems, AttrsPerRecord: attrs}
	art.Machine.TS, art.Machine.TW, art.Machine.TC, art.Machine.TOp, art.Machine.TH =
		m.TS, m.TW, m.TC, m.TOp, m.TH
	art.Topologies = topologies
	for _, a := range algos {
		art.Algos = append(art.Algos, string(a))
	}
	for _, topoName := range topologies {
		for _, algo := range algos {
			for p := 2; p <= maxP; p *= 2 {
				topo, err := mp.NewTopology(topoName, p)
				if err != nil {
					panic(err)
				}
				logP := math.Log2(float64(p))
				records := int(float64(n0) * float64(p) * logP)
				resolved := mp.ResolveAllreduceAlgo(algo, p, 8*statsElems, m)
				allr := mp.ModelAllreduce(resolved, topo, p, statsElems, m)
				comp := float64(records) / float64(p) * float64(attrs) * m.TC
				art.Rows = append(art.Rows, IsoCommRow{
					Topology:     topoName,
					Algo:         string(algo),
					Resolved:     string(resolved),
					P:            p,
					Records:      records,
					AllreduceSec: allr,
					CompSec:      comp,
					Efficiency:   comp / (comp + allr),
					CommRatio:    allr / comp,
				})
			}
		}
	}
	return art
}

// MarshalIndent renders the artifact as the committed JSON.
func (a IsoComm) MarshalIndent() ([]byte, error) {
	return json.MarshalIndent(a, "", "  ")
}
