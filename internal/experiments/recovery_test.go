package experiments

import "testing"

// TestRunRecovery locks the recovery-overhead experiment's contract: the
// seeded crash kills exactly the requested rank, checkpoints are taken
// and restored, and the survivors' tree is bit-identical to the
// fault-tolerance-free baseline.
func TestRunRecovery(t *testing.T) {
	for _, f := range []Formulation{Sync, Partitioned, Hybrid} {
		t.Run(string(f), func(t *testing.T) {
			res := RunRecovery(RecoverySpec{
				Formulation: f, Records: 2000, Procs: 4, CrashRank: 2, CrashOp: 4,
			})
			if len(res.DeadRanks) != 1 || res.DeadRanks[0] != 2 {
				t.Fatalf("dead ranks = %v, want [2]", res.DeadRanks)
			}
			if res.Checkpoints == 0 || res.CheckpointMB == 0 {
				t.Fatalf("no checkpoint traffic: %+v", res)
			}
			if res.Restores == 0 {
				t.Fatalf("crash recovered without restoring a checkpoint: %+v", res)
			}
			if !res.TreeEqual {
				t.Fatal("recovered tree differs from the baseline")
			}
			if res.FaultSeconds <= res.BaselineSeconds {
				t.Errorf("faulted run (%.3fs) not slower than baseline (%.3fs)",
					res.FaultSeconds, res.BaselineSeconds)
			}
		})
	}
}
