package experiments

import (
	"partree/internal/dataset"
	"partree/internal/discretize"
	"partree/internal/quest"
	"partree/internal/tree"
)

// VotePoint is one cell of the voted-split accuracy-vs-communication
// sweep: one (attribute count, k) configuration measured against the
// exact build of the same data.
type VotePoint struct {
	Attrs   int
	K       int // 0 = exact
	Procs   int
	Seconds float64 // modeled parallel runtime
	MB      float64 // total modeled message volume
	Nodes   int
	Depth   int
	TestAcc float64
	// Identical reports tree equality with the exact (K = 0) build of the
	// same configuration. Guaranteed when K ≥ Attrs; otherwise it records
	// whether the approximation happened to change the tree.
	Identical bool
}

// VoteSweep measures the voted-split-selection tradeoff: for each
// attribute count and each k, the modeled communication volume and the
// holdout accuracy of the voted build against the exact build of the
// same configuration. The exact (K = 0) run leads each attribute count's
// rows as the reference. The test set is the next testRecords rows of
// the same Quest stream — disjoint from every rank's training block,
// identically distributed.
func VoteSweep(base Spec, attrs, ks []int, testRecords int) []VotePoint {
	var out []VotePoint
	for _, a := range attrs {
		spec := base
		spec.Attrs = a
		spec.Options.Tree.Vote.K = 0
		sd := spec.withDefaults()
		test, err := quest.GenerateBlock(
			quest.Config{Function: sd.Function, Seed: sd.Seed, Attrs: a},
			sd.Records, sd.Records+testRecords)
		if err != nil {
			panic(err)
		}
		if !sd.Continuous {
			test = discretize.UniformPaper(test, quest.PaperBins(), quest.Ranges())
		}
		exactRes, exactTree := runTree(spec)
		out = append(out, votePoint(exactRes, exactTree, exactTree, a, 0, test))
		for _, k := range ks {
			vs := spec
			vs.Options.Tree.Vote.K = k
			res, t := runTree(vs)
			out = append(out, votePoint(res, t, exactTree, a, k, test))
		}
	}
	return out
}

func votePoint(res Result, t, exact *tree.Tree, attrs, k int, test *dataset.Dataset) VotePoint {
	st := t.Stats()
	return VotePoint{
		Attrs:     attrs,
		K:         k,
		Procs:     res.Spec.Procs,
		Seconds:   res.ModeledSeconds,
		MB:        float64(res.Traffic.Bytes) / 1e6,
		Nodes:     st.Nodes,
		Depth:     st.MaxDepth,
		TestAcc:   t.Accuracy(test),
		Identical: tree.Equal(t, exact),
	}
}

// VoteIdentity verifies the exactness boundary of voted split selection
// on one configuration: a build whose K is at least the attribute count
// must match the exact build bit-for-bit — same tree, same modeled
// clock, and the same per-phase × per-collective breakdown (the voted
// gate short-circuits to the exact code path, so not a single modeled
// charge may differ). Returns both results and whether they matched.
func VoteIdentity(base Spec) (exact, voted Result, same bool) {
	nA := base.Attrs
	if nA < quest.NumBaseAttrs {
		nA = quest.NumBaseAttrs
	}
	e := base
	e.Options.Tree.Vote.K = 0
	v := base
	v.Options.Tree.Vote.K = nA
	eRes, eTree := runTree(e)
	vRes, vTree := runTree(v)
	same = tree.Equal(eTree, vTree) &&
		eRes.ModeledSeconds == vRes.ModeledSeconds &&
		eRes.Breakdown.Table() == vRes.Breakdown.Table()
	return eRes, vRes, same
}
