package tree

import (
	"math/rand/v2"
	"testing"

	"partree/internal/criteria"
	"partree/internal/dataset"
	"partree/internal/discretize"
)

// TestHuntWeatherGolden asserts the exact structure of Figure 1(c): the
// root splits on Outlook; the sunny branch splits on Humidity into pure
// Play/Don't-Play leaves; overcast is a pure Play leaf; rain splits on
// Windy.
func TestHuntWeatherGolden(t *testing.T) {
	w := dataset.Weather()
	tr := BuildHunt(w, Options{Criterion: criteria.Entropy})
	root := tr.Root
	if root.Kind != CatMultiway || w.Schema.Attrs[root.Attr].Name != "Outlook" {
		t.Fatalf("root is %v on %q, want multiway on Outlook", root.Kind, w.Schema.Attrs[root.Attr].Name)
	}
	if len(root.Children) != 3 {
		t.Fatalf("root has %d children", len(root.Children))
	}
	sunny, overcast, rain := root.Children[0], root.Children[1], root.Children[2]

	if sunny.Kind != ContBinary || w.Schema.Attrs[sunny.Attr].Name != "Humidity" {
		t.Fatalf("sunny branch splits %v on %q, want Humidity",
			sunny.Kind, w.Schema.Attrs[sunny.Attr].Name)
	}
	// ≤70 → 2 pure Play cases; >70 → 3 pure Don't Play cases.
	if sunny.Thresh != 70 {
		t.Errorf("sunny humidity threshold %g, want 70 (the best binary cut)", sunny.Thresh)
	}
	left, right := sunny.Children[0], sunny.Children[1]
	if !left.IsLeaf() || left.Class != 0 || left.N != 2 {
		t.Errorf("sunny/low-humidity leaf wrong: %+v", left)
	}
	if !right.IsLeaf() || right.Class != 1 || right.N != 3 {
		t.Errorf("sunny/high-humidity leaf wrong: %+v", right)
	}

	if !overcast.IsLeaf() || overcast.Class != 0 || overcast.N != 4 {
		t.Fatalf("overcast leaf wrong: %+v", overcast)
	}

	if rain.Kind != CatMultiway || w.Schema.Attrs[rain.Attr].Name != "Windy" {
		t.Fatalf("rain branch splits on %q, want Windy", w.Schema.Attrs[rain.Attr].Name)
	}
	calm, windy := rain.Children[0], rain.Children[1]
	if !calm.IsLeaf() || calm.Class != 0 || calm.N != 3 {
		t.Errorf("rain/calm leaf wrong: %+v", calm)
	}
	if !windy.IsLeaf() || windy.Class != 1 || windy.N != 2 {
		t.Errorf("rain/windy leaf wrong: %+v", windy)
	}

	if acc := tr.Accuracy(w); acc != 1.0 {
		t.Errorf("training accuracy %v, want 1.0", acc)
	}
	st := tr.Stats()
	if st.Nodes != 8 || st.Leaves != 5 || st.MaxDepth != 2 {
		t.Errorf("stats %+v, want 8 nodes / 5 leaves / depth 2", st)
	}
}

// TestCase3EmptyChildClassification: a record routed to a child that never
// received training cases is classified with the parent's majority class,
// Case 3 of Hunt's method.
func TestCase3EmptyChildClassification(t *testing.T) {
	s := &dataset.Schema{
		Attrs: []dataset.Attribute{
			{Name: "x", Kind: dataset.Categorical, Values: []string{"a", "b", "c"}},
			{Name: "y", Kind: dataset.Categorical, Values: []string{"u", "v"}},
		},
		Classes: []string{"0", "1"},
	}
	d := dataset.New(s, 8)
	rec := dataset.NewRecord(s)
	// Value "c" of x never occurs; x=a → class 0 (3 cases), x=b → class 1 (2 cases).
	for i := 0; i < 3; i++ {
		rec.Cat[0], rec.Cat[1], rec.Class, rec.RID = 0, int32(i%2), 0, int64(i)
		d.Append(rec)
	}
	for i := 0; i < 2; i++ {
		rec.Cat[0], rec.Cat[1], rec.Class, rec.RID = 1, int32(i%2), 1, int64(3+i)
		d.Append(rec)
	}
	tr := BuildHunt(d, Options{})
	if tr.Root.Kind != CatMultiway || tr.Root.Attr != 0 {
		t.Fatalf("expected multiway root on x, got %v on attr %d", tr.Root.Kind, tr.Root.Attr)
	}
	rec.Cat[0] = 2 // the never-seen value
	if got := tr.Classify(&rec); got != 0 {
		t.Fatalf("empty child classified %d, want parent majority 0", got)
	}
}

func TestBFSMatchesHuntOnCategorical(t *testing.T) {
	// On all-categorical data the breadth-first builder and the
	// depth-first Hunt builder make identical decisions at every node.
	d := randomCategorical(77, 800)
	for _, binary := range []bool{false, true} {
		for _, crit := range []criteria.Criterion{criteria.Entropy, criteria.Gini} {
			o := Options{Binary: binary, Criterion: crit}
			a := BuildHunt(d, o)
			b := BuildBFS(d, o)
			if diff := Diff(a, b); diff != "" {
				t.Fatalf("binary=%v crit=%v: %s", binary, crit, diff)
			}
		}
	}
}

func randomCategorical(seed uint64, n int) *dataset.Dataset {
	s := &dataset.Schema{
		Attrs: []dataset.Attribute{
			{Name: "a", Kind: dataset.Categorical, Values: []string{"0", "1", "2", "3"}},
			{Name: "b", Kind: dataset.Categorical, Values: []string{"0", "1", "2"}},
			{Name: "c", Kind: dataset.Categorical, Values: []string{"0", "1", "2", "3", "4"}},
			{Name: "d", Kind: dataset.Categorical, Values: []string{"0", "1"}},
		},
		Classes: []string{"x", "y", "z"},
	}
	rng := rand.New(rand.NewPCG(seed, 1))
	d := dataset.New(s, n)
	rec := dataset.NewRecord(s)
	for i := 0; i < n; i++ {
		for a, attr := range s.Attrs {
			rec.Cat[a] = int32(rng.IntN(attr.Cardinality()))
		}
		// Structured label with noise so trees are non-trivial.
		rec.Class = (rec.Cat[0] + rec.Cat[1]) % 3
		if rng.IntN(10) == 0 {
			rec.Class = int32(rng.IntN(3))
		}
		rec.RID = int64(i)
		d.Append(rec)
	}
	return d
}

func TestGlobalChildCountsMatchPartition(t *testing.T) {
	d := randomCategorical(5, 400)
	o := Options{Binary: true}.WithDefaults()
	flat := make([]int64, StatsLen(d.Schema, o))
	ComputeStatsInto(flat, d, d.AllIndex(), o)
	stats := DecodeStats(flat, d.Schema, o)
	sp, ok := ChooseSplit(stats, d.Schema, o, 0)
	if !ok {
		t.Fatal("no split at root of structured data")
	}
	n := &Node{Kind: Leaf, Dist: make([]int64, 3)}
	sp.Apply(n, d.Schema, NewIDGen(1).Next)
	parts, _ := PartitionRows(n, d, d.AllIndex())
	counts := GlobalChildCounts(sp, stats, d.Schema, o)
	if len(parts) != len(counts) {
		t.Fatalf("%d parts vs %d counts", len(parts), len(counts))
	}
	for ci := range parts {
		if int64(len(parts[ci])) != counts[ci] {
			t.Fatalf("child %d: derived count %d, actual rows %d", ci, counts[ci], len(parts[ci]))
		}
	}
}

func TestMaxDepthAndMinSplit(t *testing.T) {
	d := randomCategorical(9, 500)
	tr := BuildBFS(d, Options{MaxDepth: 2})
	if st := tr.Stats(); st.MaxDepth > 2 {
		t.Fatalf("depth %d exceeds MaxDepth 2", st.MaxDepth)
	}
	tr = BuildBFS(d, Options{MinSplit: 100})
	var walk func(n *Node)
	walk = func(n *Node) {
		if !n.IsLeaf() && n.N < 100 {
			t.Fatalf("node with %d < 100 cases was split", n.N)
		}
		for _, c := range n.Children {
			if c != nil {
				walk(c)
			}
		}
	}
	walk(tr.Root)
}

func TestMajorityClassTieBreak(t *testing.T) {
	if MajorityClass([]int64{3, 3, 1}) != 0 {
		t.Fatal("tie must resolve to the lowest class index")
	}
	if MajorityClass([]int64{0, 5, 5}) != 1 {
		t.Fatal("tie must resolve to the lowest class index")
	}
}

func TestEqualAndDiff(t *testing.T) {
	d := randomCategorical(21, 300)
	a := BuildBFS(d, Options{Binary: true})
	b := BuildBFS(d, Options{Binary: true})
	if !Equal(a, b) || Diff(a, b) != "" {
		t.Fatal("identical builds compare unequal")
	}
	b.Root.Children[0].Class ^= 1
	if Equal(a, b) || Diff(a, b) == "" {
		t.Fatal("mutation not detected")
	}
}

func TestPruneRemovesNoiseSplits(t *testing.T) {
	// Labels depend only on attribute a; everything else the tree learns
	// is noise and should be pruned away.
	s := &dataset.Schema{
		Attrs: []dataset.Attribute{
			{Name: "signal", Kind: dataset.Categorical, Values: []string{"0", "1"}},
			{Name: "noise1", Kind: dataset.Categorical, Values: []string{"0", "1", "2", "3", "4", "5"}},
			{Name: "noise2", Kind: dataset.Categorical, Values: []string{"0", "1", "2", "3"}},
		},
		Classes: []string{"neg", "pos"},
	}
	rng := rand.New(rand.NewPCG(31, 7))
	train := dataset.New(s, 2000)
	test := dataset.New(s, 1000)
	rec := dataset.NewRecord(s)
	fill := func(d *dataset.Dataset, n int, base int64) {
		for i := 0; i < n; i++ {
			rec.Cat[0] = int32(rng.IntN(2))
			rec.Cat[1] = int32(rng.IntN(6))
			rec.Cat[2] = int32(rng.IntN(4))
			rec.Class = rec.Cat[0]
			if rng.IntN(5) == 0 { // 20% label noise
				rec.Class ^= 1
			}
			rec.RID = base + int64(i)
			d.Append(rec)
		}
	}
	fill(train, 2000, 0)
	fill(test, 1000, 10000)

	tr := BuildBFS(train, Options{Binary: true})
	before := tr.Stats()
	accBefore := tr.Accuracy(test)
	removed := Prune(tr, DefaultPruneZ)
	after := tr.Stats()
	accAfter := tr.Accuracy(test)
	if removed == 0 {
		t.Fatal("pruning removed nothing from a noise-overfitted tree")
	}
	if after.Nodes >= before.Nodes {
		t.Fatalf("node count did not shrink: %d -> %d", before.Nodes, after.Nodes)
	}
	if accAfter < accBefore-0.02 {
		t.Fatalf("pruning hurt test accuracy: %.4f -> %.4f", accBefore, accAfter)
	}
	// The pruned tree must still open with the signal split.
	if tr.Root.IsLeaf() || tr.Root.Attr != 0 {
		t.Fatalf("root after pruning: %+v", tr.Root)
	}
}

func TestSubtreeBytes(t *testing.T) {
	w := dataset.Weather()
	tr := BuildHunt(w, Options{})
	if SubtreeBytes(tr.Root) <= 0 {
		t.Fatal("subtree bytes must be positive")
	}
	if SubtreeBytes(nil) != 0 {
		t.Fatal("nil subtree must be 0 bytes")
	}
	leaf := &Node{Kind: Leaf, Dist: make([]int64, 2)}
	if SubtreeBytes(tr.Root) <= SubtreeBytes(leaf) {
		t.Fatal("tree must outweigh single leaf")
	}
}

func TestTreeStringRendering(t *testing.T) {
	w := dataset.Weather()
	tr := BuildHunt(w, Options{})
	out := tr.String()
	for _, want := range []string{"Outlook", "Humidity", "Windy", "Play"} {
		if !contains(out, want) {
			t.Errorf("rendering missing %q:\n%s", want, out)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestContBinnedRouting(t *testing.T) {
	n := &Node{
		Kind:  ContBinned,
		Attr:  0,
		Edges: []float64{10, 20},
	}
	n.Children = make([]*Node, 3)
	if got := n.routeValue(0, 5); got != 0 {
		t.Errorf("5 -> bin %d", got)
	}
	if got := n.routeValue(0, 10); got != 0 {
		t.Errorf("10 -> bin %d (boundary goes left)", got)
	}
	if got := n.routeValue(0, 15); got != 1 {
		t.Errorf("15 -> bin %d", got)
	}
	if got := n.routeValue(0, 25); got != 2 {
		t.Errorf("25 -> bin %d", got)
	}
	n.Mask = 0b101 // bins 0 and 2 left
	n.Children = make([]*Node, 2)
	if n.routeValue(0, 5) != 0 || n.routeValue(0, 15) != 1 || n.routeValue(0, 25) != 0 {
		t.Error("masked binned routing wrong")
	}
}

func TestBFSWithBinnerOnContinuous(t *testing.T) {
	// Smoke test: BFS building with per-node k-means discretization on a
	// learnable continuous problem reaches high training accuracy.
	s := &dataset.Schema{
		Attrs:   []dataset.Attribute{{Name: "v", Kind: dataset.Continuous}},
		Classes: []string{"lo", "hi"},
	}
	rng := rand.New(rand.NewPCG(8, 8))
	d := dataset.New(s, 1000)
	rec := dataset.NewRecord(s)
	for i := 0; i < 1000; i++ {
		rec.Cont[0] = rng.Float64() * 100
		rec.Class = 0
		if rec.Cont[0] > 50 {
			rec.Class = 1
		}
		rec.RID = int64(i)
		d.Append(rec)
	}
	o := Options{
		Binary: true,
		Binner: &discretize.NodeBinner{MicroBins: 32, K: 4, Ranges: [][2]float64{{0, 100}}},
	}
	tr := BuildBFS(d, o)
	if acc := tr.Accuracy(d); acc < 0.97 {
		t.Fatalf("accuracy %v on a trivially learnable boundary", acc)
	}
}

func TestStatsLenPanicsWithoutBinner(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for continuous schema without binner")
		}
	}()
	s := &dataset.Schema{
		Attrs:   []dataset.Attribute{{Name: "v", Kind: dataset.Continuous}},
		Classes: []string{"a", "b"},
	}
	StatsLen(s, Options{}.WithDefaults())
}
