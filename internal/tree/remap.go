package tree

import (
	"fmt"

	"partree/internal/dataset"
)

// RemapAttrs rewrites every split's attribute index through perm and
// attaches the target schema: a node testing attribute a afterwards tests
// perm[a]. This is the inverse of random-subspace projection — a forest
// member is grown on a dataset.Project view whose attribute i is the full
// schema's attrs[i], and remapping makes the finished tree routable on
// full-schema data. Every perm entry must name a target attribute of the
// same kind as the source position, so the remapped tests stay
// well-formed; the tree is modified in place.
func (t *Tree) RemapAttrs(perm []int, target *dataset.Schema) error {
	if len(perm) != t.Schema.NumAttrs() {
		return fmt.Errorf("tree: remap of %d attributes with %d entries", t.Schema.NumAttrs(), len(perm))
	}
	for a, p := range perm {
		if p < 0 || p >= target.NumAttrs() {
			return fmt.Errorf("tree: remap entry %d -> %d out of target range", a, p)
		}
		if t.Schema.Attrs[a].Kind != target.Attrs[p].Kind {
			return fmt.Errorf("tree: remap entry %d (%s) changes attribute kind", a, t.Schema.Attrs[a].Name)
		}
	}
	var walk func(n *Node) error
	walk = func(n *Node) error {
		if n == nil || n.IsLeaf() {
			return nil
		}
		if n.Attr < 0 || n.Attr >= len(perm) {
			return fmt.Errorf("tree: node attribute %d outside the projected schema", n.Attr)
		}
		n.Attr = perm[n.Attr]
		for _, c := range n.Children {
			if err := walk(c); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.Root); err != nil {
		return err
	}
	t.Schema = target
	return nil
}
