package tree

import (
	"bytes"
	"strings"
	"testing"

	"partree/internal/dataset"
)

func TestJSONRoundtrip(t *testing.T) {
	w := dataset.Weather()
	for _, binary := range []bool{false, true} {
		orig := BuildHunt(w, Options{Binary: binary})
		var buf bytes.Buffer
		if err := WriteJSON(&buf, orig); err != nil {
			t.Fatal(err)
		}
		got, err := ReadJSON(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if diff := Diff(orig, got); diff != "" {
			t.Fatalf("binary=%v roundtrip changed the tree: %s", binary, diff)
		}
		if got.Accuracy(w) != orig.Accuracy(w) {
			t.Fatal("reloaded tree classifies differently")
		}
	}
}

func TestJSONRoundtripBinned(t *testing.T) {
	d := randomCategorical(42, 300)
	orig := BuildBFS(d, Options{Binary: true})
	var buf bytes.Buffer
	if err := WriteJSON(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if diff := Diff(orig, got); diff != "" {
		t.Fatalf("roundtrip changed the tree: %s", diff)
	}
}

func TestReadJSONRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"not json":     "{",
		"wrong format": `{"format":"something-else","version":1}`,
		"bad version":  `{"format":"partree-decision-tree","version":99}`,
		"no root": `{"format":"partree-decision-tree","version":1,
			"schema":{"attrs":[{"name":"a","kind":"categorical","values":["x","y"]}],"classes":["c0","c1"]}}`,
		"bad kind": `{"format":"partree-decision-tree","version":1,
			"schema":{"attrs":[{"name":"a","kind":"categorical","values":["x","y"]}],"classes":["c0","c1"]},
			"root":{"kind":"bogus","class":0,"n":1}}`,
		"child count": `{"format":"partree-decision-tree","version":1,
			"schema":{"attrs":[{"name":"a","kind":"categorical","values":["x","y"]}],"classes":["c0","c1"]},
			"root":{"kind":"cat-multiway","attr":0,"class":0,"n":2,
				"children":[{"kind":"leaf","class":0,"n":1}]}}`,
		"kind mismatch": `{"format":"partree-decision-tree","version":1,
			"schema":{"attrs":[{"name":"a","kind":"categorical","values":["x","y"]}],"classes":["c0","c1"]},
			"root":{"kind":"cont-binary","attr":0,"thresh":1,"class":0,"n":2,
				"children":[{"kind":"leaf","class":0,"n":1},{"kind":"leaf","class":1,"n":1}]}}`,
	}
	for name, in := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := ReadJSON(strings.NewReader(in)); err == nil {
				t.Fatal("malformed model accepted")
			}
		})
	}
}

func TestRulesWeather(t *testing.T) {
	w := dataset.Weather()
	tr := BuildHunt(w, Options{})
	rules := tr.Rules()
	if len(rules) != 5 {
		t.Fatalf("%d rules, want 5 (the 5 leaves of Figure 1)", len(rules))
	}
	// Support ordering and totals.
	var n int64
	for i, r := range rules {
		n += r.N
		if i > 0 && r.N > rules[i-1].N {
			t.Fatal("rules not ordered by support")
		}
		if r.Confidence != 1.0 {
			t.Fatalf("pure leaves must have confidence 1: %+v", r)
		}
	}
	if n != 14 {
		t.Fatalf("rule supports sum to %d, want 14", n)
	}
	// The overcast rule must be present verbatim.
	found := false
	for _, r := range rules {
		if r.String() == "IF Outlook = overcast THEN Play (n=4, conf=1.00)" {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing overcast rule; got:\n%v", rules)
	}
}

func TestImportance(t *testing.T) {
	w := dataset.Weather()
	tr := BuildHunt(w, Options{})
	imp := tr.Importance()
	sum := 0.0
	for _, v := range imp {
		sum += v
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("importance sums to %v", sum)
	}
	// Outlook is the root on all 14 cases: it must dominate.
	if imp[0] <= imp[1] || imp[0] <= imp[2] || imp[0] <= imp[3] {
		t.Fatalf("Outlook not dominant: %v", imp)
	}
	// Temperature is never used.
	if imp[1] != 0 {
		t.Fatalf("unused attribute has non-zero importance: %v", imp)
	}
}
