package tree

import (
	"fmt"

	"partree/internal/criteria"
	"partree/internal/dataset"
	"partree/internal/discretize"
	"partree/internal/kernel"
)

// Options configures tree induction. The zero value is not usable; call
// WithDefaults.
type Options struct {
	// Criterion is the impurity measure (default Entropy, as in C4.5).
	Criterion criteria.Criterion
	// Binary requests binary splits for categorical (and per-node binned
	// continuous) attributes, the setting of the paper's experiments.
	// False gives classic multiway C4.5 splits.
	Binary bool
	// MaxDepth limits tree depth (root = 0); 0 means unlimited.
	MaxDepth int
	// MinSplit is the minimum number of records required to attempt a
	// split (default 2: grow to purity, as the paper's initial tree does).
	MinSplit int
	// MinGain is the minimum impurity gain for a split to be accepted
	// (default 1e-9, i.e. any strictly positive gain).
	MinGain float64
	// Binner enables per-node discretization of continuous attributes
	// (required by the breadth-first and parallel builders whenever the
	// schema has continuous attributes).
	Binner *discretize.NodeBinner
	// Reuse gates the statistics-reuse layer (sibling subtraction and
	// sparse reduction encoding). The zero value disables it, keeping the
	// build path bit-identical to a build predating the layer; enabling it
	// changes modeled costs and wire traffic but never the tree.
	Reuse kernel.Options
	// Vote gates voting-based (two-round top-k) split selection in the
	// parallel builders: ranks nominate their top-K attributes from local
	// statistics and only the ≤2K elected candidates' histograms are
	// reduced in full. The zero value (and any K ≥ the attribute count)
	// keeps the exact path, bit-identical trees and breakdowns included;
	// small K trades a bounded accuracy epsilon for reduction volume
	// independent of the attribute count.
	Vote kernel.VoteOptions
}

// WithDefaults fills unset fields with their defaults.
func (o Options) WithDefaults() Options {
	if o.MinSplit == 0 {
		o.MinSplit = 2
	}
	if o.MinGain == 0 {
		o.MinGain = 1e-9
	}
	return o
}

// StatsLen returns the length of the flattened int64 statistics vector of
// one frontier node under the schema and options: the class distribution
// followed by one class-histogram block per attribute (cardinality×C for
// categorical, MicroBins×C for continuous). This is the unit of the
// synchronous formulation's global reduction.
func StatsLen(s *dataset.Schema, o Options) int {
	c := s.NumClasses()
	n := c
	for _, a := range s.Attrs {
		if a.Kind == dataset.Categorical {
			n += a.Cardinality() * c
		} else {
			if o.Binner == nil {
				panic(fmt.Sprintf("tree: schema has continuous attribute %q but Options.Binner is nil", a.Name))
			}
			n += o.Binner.MicroBins * c
		}
	}
	return n
}

// NewStatsSpec builds the kernel tabulation spec of the dataset under the
// options: the column, bin-count and micro-edge description the statistics
// kernel consumes. The spec is immutable and safe for concurrent use;
// builders construct it once per build (or per level) and reuse it across
// every node, so the per-node hot path does no schema walking and no edge
// recomputation.
func NewStatsSpec(d *dataset.Dataset, o Options) *kernel.Spec {
	s := d.Schema
	sp := &kernel.Spec{
		Classes: s.NumClasses(),
		Class:   d.Class,
		Attrs:   make([]kernel.AttrColumn, len(s.Attrs)),
	}
	for a, attr := range s.Attrs {
		if attr.Kind == dataset.Categorical {
			sp.Attrs[a] = kernel.AttrColumn{Cat: d.Cat[a], Bins: attr.Cardinality()}
		} else {
			if o.Binner == nil {
				panic(fmt.Sprintf("tree: schema has continuous attribute %q but Options.Binner is nil", attr.Name))
			}
			sp.Attrs[a] = kernel.AttrColumn{
				Cont:  d.Cont[a],
				Bins:  o.Binner.MicroBins,
				Edges: o.Binner.MicroEdges(a),
			}
		}
	}
	return sp
}

// ComputeStatsInto tabulates the class distribution and per-attribute
// histograms of the rows idx into the flattened vector flat (length
// StatsLen), accumulating on top of existing counts, through the shared
// statistics kernel (which parallelizes large nodes across a bounded
// intra-rank worker set). Returns the modeled operation count: one op per
// record-attribute touch (the per-level data scan) plus one op per
// histogram-table cell (the "initialization and update of all the class
// histogram tables" term of the paper's Equation 1, C·A_d·M per node —
// every cooperating processor pays it for every frontier node whether or
// not it holds that node's records, which is exactly why the synchronous
// formulation degrades on bushy levels). Callers expanding many nodes
// should build a NewStatsSpec once and call kernel.TabulateInto directly.
func ComputeStatsInto(flat []int64, d *dataset.Dataset, idx []int32, o Options) int64 {
	return kernel.TabulateInto(flat, idx, NewStatsSpec(d, o))
}

// NodeStats is the decoded view of one node's flattened statistics. Hists
// alias the flat buffer (no copies).
type NodeStats struct {
	Dist  []int64
	Hists []*criteria.Hist // per attribute; micro-histogram for continuous
}

// DecodeStats wraps a flattened statistics vector (as produced by
// ComputeStatsInto, possibly after reduction) in a NodeStats view.
func DecodeStats(flat []int64, s *dataset.Schema, o Options) *NodeStats {
	c := s.NumClasses()
	ns := &NodeStats{Dist: flat[:c], Hists: make([]*criteria.Hist, len(s.Attrs))}
	off := c
	for a, attr := range s.Attrs {
		m := attr.Cardinality()
		if attr.Kind == dataset.Continuous {
			m = o.Binner.MicroBins
		}
		ns.Hists[a] = &criteria.Hist{M: m, C: c, Counts: flat[off : off+m*c]}
		off += m * c
	}
	return ns
}

// Split is a chosen node test, produced by ChooseSplit and applied
// identically by every processor.
type Split struct {
	Attr  int
	Kind  SplitKind
	Mask  uint64
	Edges []float64
	Gain  float64
}

// NumChildren returns the branching factor of the split given the schema.
func (sp Split) NumChildren(s *dataset.Schema) int {
	switch sp.Kind {
	case CatBinary:
		return 2
	case CatMultiway:
		return s.Attrs[sp.Attr].Cardinality()
	case ContBinned:
		if sp.Mask != 0 {
			return 2
		}
		return len(sp.Edges) + 1
	default:
		panic(fmt.Sprintf("tree: NumChildren on %v split", sp.Kind))
	}
}

// ChooseSplit evaluates every attribute on the (global) node statistics
// and returns the best split, or ok=false when the node must become a
// leaf (pure, too small, at max depth, or no attribute achieves MinGain).
// The decision is a pure function of (stats, depth, options) — every
// processor holding the same reduced statistics reaches the same decision,
// with ties broken by ascending attribute index.
func ChooseSplit(stats *NodeStats, s *dataset.Schema, o Options, depth int) (Split, bool) {
	var n int64
	for _, v := range stats.Dist {
		n += v
	}
	if n < int64(o.MinSplit) || (o.MaxDepth > 0 && depth >= o.MaxDepth) {
		return Split{}, false
	}
	parent := o.Criterion.Impurity(stats.Dist, n)
	if parent == 0 {
		return Split{}, false // pure node, Case 1 of Hunt's method
	}
	best := Split{Gain: o.MinGain}
	found := false
	for a, attr := range s.Attrs {
		h := stats.Hists[a]
		var cand Split
		var score float64
		var valid bool
		if attr.Kind == dataset.Categorical {
			cand.Attr, cand.Kind = a, CatMultiway
			if o.Binary {
				cand.Kind = CatBinary
			}
			cand.Mask, score, valid = criteria.ScoreHist(h, o.Criterion, o.Binary)
		} else {
			edges, assign := o.Binner.Edges(h, a)
			if len(edges) == 0 {
				continue // attribute constant at this node
			}
			agg := discretize.Aggregate(h, assign)
			cand.Attr, cand.Kind, cand.Edges = a, ContBinned, edges
			cand.Mask, score, valid = criteria.ScoreHist(agg, o.Criterion, o.Binary)
		}
		if !valid {
			continue
		}
		gain := parent - score
		if gain > best.Gain {
			cand.Gain = gain
			best = cand
			found = true
		}
	}
	return best, found
}

// Apply attaches the split to node n and creates its children as
// placeholder nodes (filled in by the builder when their statistics
// arrive). Children start as leaves carrying the parent's majority class
// so that empty partitions classify per Case 3.
func (sp Split) Apply(n *Node, s *dataset.Schema, nextID func() int64) {
	n.Kind = sp.Kind
	n.Attr = sp.Attr
	n.Mask = sp.Mask
	n.Edges = sp.Edges
	k := sp.NumChildren(s)
	n.Children = make([]*Node, k)
	for i := range n.Children {
		n.Children[i] = &Node{
			ID:    nextID(),
			Kind:  Leaf,
			Class: n.Class,
			Depth: n.Depth + 1,
			Dist:  make([]int64, s.NumClasses()),
		}
	}
}

// PartitionRows distributes the rows idx of node n among its children
// according to the attached split, returning one index slice per child.
// Order within each child preserves the input order. The returned op
// count (one test per row) feeds the modeled computation cost.
func PartitionRows(n *Node, d *dataset.Dataset, idx []int32) ([][]int32, int64) {
	k := len(n.Children)
	parts := make([][]int32, k)
	for _, i := range idx {
		c := n.RouteRow(d, int(i))
		parts[c] = append(parts[c], i)
	}
	return parts, int64(len(idx))
}
