package tree_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"partree/internal/dataset"
	"partree/internal/flat"
	"partree/internal/tree"
)

// weatherModelJSON serializes a tree trained on the weather table — the
// fuzz corpus's well-formed seed.
func weatherModelJSON(tb testing.TB, binary bool) []byte {
	tb.Helper()
	w := dataset.Weather()
	t := tree.BuildHunt(w, tree.Options{Binary: binary})
	var buf bytes.Buffer
	if err := tree.WriteJSON(&buf, t); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzReadJSON feeds arbitrary bytes to the model loader. The server
// loads operator-supplied model files through this path, so the
// invariant is: ReadJSON either returns a descriptive error or a tree
// that is fully usable — classifiable, re-encodable, and compilable to
// the flat serving form — without panicking.
func FuzzReadJSON(f *testing.F) {
	valid := weatherModelJSON(f, true)
	f.Add(valid)
	f.Add(weatherModelJSON(f, false))
	f.Add(valid[:len(valid)/2]) // truncated JSON
	f.Add([]byte(`{"format":"partree-decision-tree","version":1}`))
	f.Add([]byte(`{"format":"partree-decision-tree","version":1,` +
		`"schema":{"attrs":[{"name":"x","kind":"continuous"}],"classes":["a","b"]},` +
		`"root":{"kind":"leaf","class":0,"n":1,"dist":[1,0]}}`))
	// Hostile shapes the hardened decoder must reject: a mask with bits
	// beyond the attribute's cardinality, and a wrong child count.
	f.Add([]byte(strings.Replace(string(valid), `"mask": 1`, `"mask": 255`, 1)))
	f.Add([]byte(`{"format":"partree-decision-tree","version":1,` +
		`"schema":{"attrs":[{"name":"x","kind":"continuous"}],"classes":["a","b"]},` +
		`"root":{"kind":"cont-binary","attr":0,"thresh":1,"class":0,"n":2,"dist":[1,1],` +
		`"children":[{"kind":"leaf","class":0,"n":1,"dist":[1,0]}]}}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := tree.ReadJSON(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Whatever loaded must be safe to use end to end.
		_ = tr.Stats()
		rec := dataset.NewRecord(tr.Schema)
		_ = tr.Classify(&rec)
		var buf bytes.Buffer
		if err := tree.WriteJSON(&buf, tr); err != nil {
			t.Fatalf("re-encoding a loaded model failed: %v", err)
		}
		m, err := flat.Compile(tr)
		if err != nil {
			t.Fatalf("compiling a loaded model failed: %v", err)
		}
		if got, want := m.PredictRecord(&rec), tr.Classify(&rec); got != want {
			t.Fatalf("flat predicts %d, pointer tree %d", got, want)
		}
	})
}

// mutateModel decodes the valid weather model, applies f, and re-encodes.
func mutateModel(t *testing.T, f func(m map[string]interface{})) []byte {
	t.Helper()
	var m map[string]interface{}
	if err := json.Unmarshal(weatherModelJSON(t, true), &m); err != nil {
		t.Fatal(err)
	}
	f(m)
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestReadJSONRejectsHostileModels pins the hardened validation paths
// with targeted malformed files and asserts descriptive errors.
func TestReadJSONRejectsHostileModels(t *testing.T) {
	// A standalone one-continuous-attribute model whose root chain is
	// deeper than MaxModelDepth.
	deepModel := func() []byte {
		node := map[string]interface{}{"kind": "leaf", "class": 0, "n": 0}
		for i := 0; i < tree.MaxModelDepth+2; i++ {
			node = map[string]interface{}{
				"kind": "cont-binary", "attr": 0, "thresh": 1.0,
				"class": 0, "n": 1, "dist": []int64{1, 0},
				"children": []interface{}{node, map[string]interface{}{"kind": "leaf", "class": 0, "n": 0}},
			}
		}
		body, err := json.Marshal(map[string]interface{}{
			"format": "partree-decision-tree", "version": 1,
			"schema": map[string]interface{}{
				"attrs":   []interface{}{map[string]interface{}{"name": "x", "kind": "continuous"}},
				"classes": []interface{}{"a", "b"},
			},
			"root": node,
		})
		if err != nil {
			t.Fatal(err)
		}
		return body
	}
	cases := []struct {
		name    string
		body    []byte
		wantErr string
	}{
		{
			"absurd depth",
			deepModel(),
			"deeper than",
		},
		{
			"class out of range",
			mutateModel(t, func(m map[string]interface{}) {
				m["root"].(map[string]interface{})["class"] = 99
			}),
			"class 99 out of range",
		},
		{
			"negative case count",
			mutateModel(t, func(m map[string]interface{}) {
				m["root"].(map[string]interface{})["n"] = -4
			}),
			"negative case count",
		},
		{
			"dist wrong arity",
			mutateModel(t, func(m map[string]interface{}) {
				m["root"].(map[string]interface{})["dist"] = []int64{1, 2, 3}
			}),
			"distribution has 3 classes",
		},
		{
			"kind/child mismatch",
			mutateModel(t, func(m map[string]interface{}) {
				root := m["root"].(map[string]interface{})
				root["children"] = root["children"].([]interface{})[:1]
			}),
			"children, want",
		},
		{
			"unknown kind",
			mutateModel(t, func(m map[string]interface{}) {
				m["root"].(map[string]interface{})["kind"] = "quantum"
			}),
			"unknown node kind",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := tree.ReadJSON(bytes.NewReader(tc.body))
			if err == nil {
				t.Fatal("hostile model accepted")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// TestReadJSONRejectsWideMasks covers the mask-overflow satellite: a
// cat-binary test on a 70-value attribute (index ≥ 64 would shift past
// the mask) and a mask with bits beyond the cardinality must both load
// as errors, not silently misroute.
func TestReadJSONRejectsWideMasks(t *testing.T) {
	values := make([]string, 70)
	children := make([]interface{}, 0, 2)
	for i := range values {
		values[i] = "v" + string(rune('A'+i%26)) + string(rune('0'+i/26))
	}
	for i := 0; i < 2; i++ {
		children = append(children, map[string]interface{}{"kind": "leaf", "class": 0, "n": 0})
	}
	wide := map[string]interface{}{
		"format":  "partree-decision-tree",
		"version": 1,
		"schema": map[string]interface{}{
			"attrs":   []interface{}{map[string]interface{}{"name": "wide", "kind": "categorical", "values": values}},
			"classes": []interface{}{"a", "b"},
		},
		"root": map[string]interface{}{
			"kind": "cat-binary", "attr": 0, "mask": 5,
			"class": 0, "n": 2, "dist": []int64{1, 1}, "children": children,
		},
	}
	body, err := json.Marshal(wide)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tree.ReadJSON(bytes.NewReader(body)); err == nil ||
		!strings.Contains(err.Error(), "mask can hold") {
		t.Fatalf("70-value cat-binary accepted: %v", err)
	}

	// A legal 3-value attribute whose mask sets bits far beyond the
	// cardinality: silently those values would all route left or right
	// depending on nothing in the schema, so the loader must refuse.
	wide["schema"].(map[string]interface{})["attrs"] = []interface{}{
		map[string]interface{}{"name": "narrow", "kind": "categorical", "values": []interface{}{"a", "b", "c"}},
	}
	wide["root"].(map[string]interface{})["mask"] = float64(1 << 40)
	body, err = json.Marshal(wide)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tree.ReadJSON(bytes.NewReader(body)); err == nil ||
		!strings.Contains(err.Error(), "bits beyond") {
		t.Fatalf("mask with out-of-range bits accepted: %v", err)
	}
}
