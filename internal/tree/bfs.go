package tree

import (
	"partree/internal/criteria"
	"partree/internal/dataset"
	"partree/internal/kernel"
)

// FrontierItem pairs a tree node awaiting expansion with the (local) rows
// that reached it. GlobalN is the node's global training-case count,
// derived from the reduced statistics of its parent's expansion (equal to
// len(Idx) in the serial setting); the hybrid's splitting criterion and
// the partitioned formulation's load balancing read it without extra
// communication.
type FrontierItem struct {
	Node    *Node
	Idx     []int32
	GlobalN int64
}

// IDGen hands out deterministic node ids.
type IDGen struct{ next int64 }

// NewIDGen starts a generator at the given first id.
func NewIDGen(first int64) *IDGen { return &IDGen{next: first} }

// Next returns the next id.
func (g *IDGen) Next() int64 { v := g.next; g.next++; return v }

// Snapshot returns the generator's position, for rollback by the
// fault-tolerant builders.
func (g *IDGen) Snapshot() int64 { return g.next }

// Restore rewinds the generator to a Snapshot, so a retried expansion
// hands out the same ids as the failed attempt.
func (g *IDGen) Restore(v int64) { g.next = v }

// BuildBFS grows a complete tree breadth-first on a single processor. It
// uses exactly the statistics, split decisions and routing the parallel
// formulations use, so it is the reference every parallel result is
// compared against — and the "sequential algorithm" a lone processor of
// the partitioned formulation runs. Schemas with continuous attributes
// require o.Binner.
func BuildBFS(d *dataset.Dataset, o Options) *Tree {
	o = o.WithDefaults()
	root := &Node{ID: 0, Kind: Leaf, Dist: make([]int64, d.Schema.NumClasses())}
	ids := NewIDGen(1)
	GrowFrontierBFS(d, []FrontierItem{{Node: root, Idx: d.AllIndex()}}, o, ids)
	return &Tree{Schema: d.Schema, Root: root}
}

// GrowFrontierBFS expands every frontier node to completion, level by
// level, in the order given (the deterministic frontier order shared by
// all builders). The nodes are mutated in place. Returns the modeled
// record-attribute operations performed (t_c class: every tabulation or
// routing touch amortizes the record scan) and, separately, the pure
// in-memory word-arithmetic operations (t_op class: sibling derivation
// and cache stores — the same operation class as a reduction's combine),
// for cost accounting by callers that track a clock.
//
// With o.Reuse.Subtraction set, each expanded node's statistics block is
// cached for one level and at the next level every family tabulates all
// children but its largest, deriving that one exactly as parent − Σ
// siblings — the trees are bit-identical either way (see kernel's reuse
// documentation); only the modeled op counts change.
func GrowFrontierBFS(d *dataset.Dataset, frontier []FrontierItem, o Options, ids *IDGen) (scanOps, wordOps int64) {
	o = o.WithDefaults()
	s := d.Schema
	statsLen := StatsLen(s, o)
	spec := NewStatsSpec(d, o)
	if o.Reuse.Subtraction {
		return growFrontierReuse(d, frontier, o, ids, statsLen, spec)
	}
	flat := kernel.GetInt64(statsLen)
	defer kernel.PutInt64(flat)
	var totalOps int64
	for len(frontier) > 0 {
		var next []FrontierItem
		for _, it := range frontier {
			clear(flat)
			totalOps += kernel.TabulateInto(flat, it.Idx, spec)
			stats := DecodeStats(flat, s, o)
			next = append(next, ExpandNode(it, stats, d, o, ids, &totalOps)...)
		}
		frontier = next
	}
	return totalOps, 0
}

// familyAligned reports whether the cached family's children are exactly
// the frontier items starting at items[0], in order. By construction
// (ExpandNode appends a family's kept children consecutively, and the
// serial walk never reorders) this always holds for a Lookup hit; the
// check keeps a stale cache loudly unusable rather than silently wrong.
func familyAligned(items []FrontierItem, kids []int64) bool {
	if len(kids) > len(items) {
		return false
	}
	for i, id := range kids {
		if items[i].Node.ID != id {
			return false
		}
	}
	return true
}

// growFrontierReuse is the sibling-subtraction variant of the serial
// level loop: one read cache holds the previous level's parent blocks,
// one write cache collects this level's, and the pair swaps at each level
// boundary so the steady state allocates nothing per family.
func growFrontierReuse(d *dataset.Dataset, frontier []FrontierItem, o Options, ids *IDGen, statsLen int, spec *kernel.Spec) (scanOps, wordOps int64) {
	s := d.Schema
	rc, nrc := kernel.NewReuseCache(), kernel.NewReuseCache()
	var scratch []int64 // per-family statistics blocks, grown on demand
	var kidIDs []int64
	var totalOps, derOps int64
	store := func(cache *kernel.ReuseCache, block []int64, kids []FrontierItem) {
		kidIDs = kidIDs[:0]
		for _, kd := range kids {
			kidIDs = append(kidIDs, kd.Node.ID)
		}
		derOps += cache.Store(block, kidIDs)
	}
	for len(frontier) > 0 {
		var next []FrontierItem
		j := 0
		for j < len(frontier) {
			fam, ok := rc.Lookup(frontier[j].Node.ID)
			if !ok || !familyAligned(frontier[j:], fam.Kids) {
				// No cached parent: tabulate the node in full.
				if cap(scratch) < statsLen {
					scratch = make([]int64, statsLen)
				}
				blk := scratch[:statsLen]
				clear(blk)
				totalOps += kernel.TabulateInto(blk, frontier[j].Idx, spec)
				kids := ExpandNode(frontier[j], DecodeStats(blk, s, o), d, o, ids, &totalOps)
				if len(kids) > 0 {
					store(nrc, blk, kids)
				}
				next = append(next, kids...)
				j++
				continue
			}
			k := len(fam.Kids)
			if cap(scratch) < k*statsLen {
				scratch = make([]int64, k*statsLen)
			}
			blocks := scratch[:k*statsLen]
			clear(blocks)
			// Derive the largest child (ties: first), tabulate the rest.
			der := 0
			for i := 1; i < k; i++ {
				if frontier[j+i].GlobalN > frontier[j+der].GlobalN {
					der = i
				}
			}
			dst := blocks[der*statsLen : (der+1)*statsLen]
			derOps += kernel.DeriveFrom(dst, fam.Parent)
			for i := 0; i < k; i++ {
				if i == der {
					continue
				}
				blk := blocks[i*statsLen : (i+1)*statsLen]
				totalOps += kernel.TabulateInto(blk, frontier[j+i].Idx, spec)
				derOps += kernel.Subtract(dst, blk)
			}
			for i := 0; i < k; i++ {
				blk := blocks[i*statsLen : (i+1)*statsLen]
				kids := ExpandNode(frontier[j+i], DecodeStats(blk, s, o), d, o, ids, &totalOps)
				if len(kids) > 0 {
					store(nrc, blk, kids)
				}
				next = append(next, kids...)
			}
			j += k
		}
		frontier = next
		rc.Reset()
		rc, nrc = nrc, rc
	}
	return totalOps, derOps
}

// ExpandNode finalizes one frontier node from its (global) statistics:
// records the node's distribution, chooses a split, creates children and
// partitions the local rows. It returns, as new frontier items, every
// child that is non-empty *globally* — in the parallel formulations a
// child can hold zero local rows on some processor yet must still take
// part in the next reduction there, so the filter uses the global child
// counts derived from the reduced statistics, which every processor
// computes identically. Globally empty children remain Case 3 leaves.
// ops accumulates modeled work. This is the single decision path shared
// verbatim by the serial builder and every parallel formulation.
func ExpandNode(it FrontierItem, stats *NodeStats, d *dataset.Dataset, o Options, ids *IDGen, ops *int64) []FrontierItem {
	out, childSlot, split := ExpandNodeOOC(it, stats, d.Schema, o, ids)
	if !split {
		return nil
	}
	parts, routeOps := PartitionRows(it.Node, d, it.Idx)
	*ops += routeOps
	for ci, part := range parts {
		if sl := childSlot[ci]; sl >= 0 {
			out[sl].Idx = part
		}
	}
	return out
}

// GlobalChildCounts derives, from the node's reduced statistics, how many
// training cases each child of the split receives globally. Every
// processor computes the same answer from the same statistics.
func GlobalChildCounts(sp Split, stats *NodeStats, s *dataset.Schema, o Options) []int64 {
	h := stats.Hists[sp.Attr]
	switch sp.Kind {
	case CatMultiway:
		out := make([]int64, h.M)
		for v := 0; v < h.M; v++ {
			out[v] = h.ValueTotal(v)
		}
		return out
	case CatBinary:
		out := make([]int64, 2)
		for v := 0; v < h.M; v++ {
			if sp.Mask&(1<<uint(v)) != 0 {
				out[0] += h.ValueTotal(v)
			} else {
				out[1] += h.ValueTotal(v)
			}
		}
		return out
	case ContBinned:
		centers := o.Binner.MicroCenters(sp.Attr)
		binTotals := make([]int64, len(sp.Edges)+1)
		for b := 0; b < h.M; b++ {
			binTotals[criteria.BinOf(sp.Edges, centers[b])] += h.ValueTotal(b)
		}
		if sp.Mask == 0 {
			return binTotals
		}
		out := make([]int64, 2)
		for b, n := range binTotals {
			if sp.Mask&(1<<uint(b)) != 0 {
				out[0] += n
			} else {
				out[1] += n
			}
		}
		return out
	default:
		panic("tree: GlobalChildCounts on a leaf split")
	}
}
