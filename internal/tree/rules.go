package tree

import (
	"fmt"
	"sort"
	"strings"
)

// Rule is one root-to-leaf path rendered as a conjunctive classification
// rule — the form domain users of the paper's motivating applications
// (target marketing, fraud detection) actually deploy.
type Rule struct {
	Conditions []string
	Class      string
	N          int64   // training cases reaching the leaf
	Confidence float64 // majority share at the leaf
}

// String renders "IF a AND b THEN class (n=…, conf=…)".
func (r Rule) String() string {
	cond := strings.Join(r.Conditions, " AND ")
	if cond == "" {
		cond = "TRUE"
	}
	return fmt.Sprintf("IF %s THEN %s (n=%d, conf=%.2f)", cond, r.Class, r.N, r.Confidence)
}

// Rules extracts every non-empty leaf as a rule, ordered by descending
// support.
func (t *Tree) Rules() []Rule {
	var out []Rule
	var walk func(n *Node, conds []string)
	walk = func(n *Node, conds []string) {
		if n == nil || n.N == 0 {
			return
		}
		if n.IsLeaf() {
			conf := 0.0
			if n.N > 0 {
				var best int64
				for _, v := range n.Dist {
					if v > best {
						best = v
					}
				}
				conf = float64(best) / float64(n.N)
			}
			out = append(out, Rule{
				Conditions: append([]string(nil), conds...),
				Class:      t.Schema.Classes[n.Class],
				N:          n.N,
				Confidence: conf,
			})
			return
		}
		for ci, c := range n.Children {
			walk(c, append(conds, t.condition(n, ci)))
		}
	}
	walk(t.Root, nil)
	sort.SliceStable(out, func(a, b int) bool { return out[a].N > out[b].N })
	return out
}

// condition renders the branch test of child ci of node n.
func (t *Tree) condition(n *Node, ci int) string {
	attr := t.Schema.Attrs[n.Attr]
	switch n.Kind {
	case CatMultiway:
		return fmt.Sprintf("%s = %s", attr.Name, attr.Values[ci])
	case CatBinary:
		var in []string
		for v := 0; v < attr.Cardinality(); v++ {
			left := n.Mask&(1<<uint(v)) != 0
			if (ci == 0) == left {
				in = append(in, attr.Values[v])
			}
		}
		return fmt.Sprintf("%s in {%s}", attr.Name, strings.Join(in, ","))
	case ContBinary:
		if ci == 0 {
			return fmt.Sprintf("%s <= %g", attr.Name, n.Thresh)
		}
		return fmt.Sprintf("%s > %g", attr.Name, n.Thresh)
	case ContBinned:
		if n.Mask != 0 {
			var in []string
			for b := 0; b <= len(n.Edges); b++ {
				left := n.Mask&(1<<uint(b)) != 0
				if (ci == 0) == left {
					in = append(in, binName(n.Edges, b))
				}
			}
			return fmt.Sprintf("%s in %s", attr.Name, strings.Join(in, "∪"))
		}
		return fmt.Sprintf("%s in %s", attr.Name, binName(n.Edges, ci))
	default:
		return "?"
	}
}

func binName(edges []float64, b int) string {
	switch {
	case len(edges) == 0:
		return "(-inf,+inf)"
	case b == 0:
		return fmt.Sprintf("(-inf,%g]", edges[0])
	case b == len(edges):
		return fmt.Sprintf("(%g,+inf)", edges[b-1])
	default:
		return fmt.Sprintf("(%g,%g]", edges[b-1], edges[b])
	}
}

// Importance scores each attribute by the total training cases routed
// through nodes testing it, normalized to sum to 1 — a simple split-based
// feature importance. Attributes never used score 0.
func (t *Tree) Importance() []float64 {
	imp := make([]float64, t.Schema.NumAttrs())
	var total float64
	var walk func(n *Node)
	walk = func(n *Node) {
		if n == nil || n.IsLeaf() {
			return
		}
		imp[n.Attr] += float64(n.N)
		total += float64(n.N)
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(t.Root)
	if total > 0 {
		for i := range imp {
			imp[i] /= total
		}
	}
	return imp
}
