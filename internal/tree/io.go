package tree

import (
	"encoding/json"
	"fmt"
	"io"

	"partree/internal/dataset"
)

// The JSON model format persists a trained tree together with its schema,
// so a classifier trained by cmd/dtree (or any builder) can be reloaded
// and applied later. The format is versioned and validated on load.

// modelFile is the on-disk envelope.
type modelFile struct {
	Format  string         `json:"format"`
	Version int            `json:"version"`
	Schema  jsonSchema     `json:"schema"`
	Root    *jsonNode      `json:"root"`
	Stats   map[string]int `json:"stats,omitempty"`
}

type jsonSchema struct {
	Attrs   []jsonAttr `json:"attrs"`
	Classes []string   `json:"classes"`
}

type jsonAttr struct {
	Name   string   `json:"name"`
	Kind   string   `json:"kind"`
	Values []string `json:"values,omitempty"`
}

type jsonNode struct {
	Kind     string      `json:"kind"`
	Attr     int         `json:"attr,omitempty"`
	Thresh   float64     `json:"thresh,omitempty"`
	Mask     uint64      `json:"mask,omitempty"`
	Edges    []float64   `json:"edges,omitempty"`
	Class    int32       `json:"class"`
	N        int64       `json:"n"`
	Dist     []int64     `json:"dist,omitempty"`
	Children []*jsonNode `json:"children,omitempty"`
}

const (
	modelFormat  = "partree-decision-tree"
	modelVersion = 1
)

// WriteJSON serializes the tree (with schema) to w.
func WriteJSON(w io.Writer, t *Tree) error {
	mf := modelFile{
		Format:  modelFormat,
		Version: modelVersion,
		Schema:  encodeSchema(t.Schema),
		Root:    encodeNode(t.Root),
	}
	st := t.Stats()
	mf.Stats = map[string]int{"nodes": st.Nodes, "leaves": st.Leaves, "depth": st.MaxDepth}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(mf)
}

// ReadJSON loads a tree written by WriteJSON, validating the format and
// every node against the schema.
func ReadJSON(r io.Reader) (*Tree, error) {
	var mf modelFile
	if err := json.NewDecoder(r).Decode(&mf); err != nil {
		return nil, fmt.Errorf("tree: decoding model: %w", err)
	}
	if mf.Format != modelFormat {
		return nil, fmt.Errorf("tree: not a decision-tree model (format %q)", mf.Format)
	}
	if mf.Version != modelVersion {
		return nil, fmt.Errorf("tree: unsupported model version %d", mf.Version)
	}
	s, err := decodeSchema(mf.Schema)
	if err != nil {
		return nil, err
	}
	root, err := decodeNode(mf.Root, s, 0)
	if err != nil {
		return nil, err
	}
	if root == nil {
		return nil, fmt.Errorf("tree: model has no root")
	}
	return &Tree{Schema: s, Root: root}, nil
}

func encodeSchema(s *dataset.Schema) jsonSchema {
	out := jsonSchema{Classes: s.Classes}
	for _, a := range s.Attrs {
		ja := jsonAttr{Name: a.Name, Kind: a.Kind.String(), Values: a.Values}
		out.Attrs = append(out.Attrs, ja)
	}
	return out
}

func decodeSchema(js jsonSchema) (*dataset.Schema, error) {
	s := &dataset.Schema{Classes: js.Classes}
	for _, ja := range js.Attrs {
		var kind dataset.Kind
		switch ja.Kind {
		case "categorical":
			kind = dataset.Categorical
		case "continuous":
			kind = dataset.Continuous
		default:
			return nil, fmt.Errorf("tree: unknown attribute kind %q", ja.Kind)
		}
		s.Attrs = append(s.Attrs, dataset.Attribute{Name: ja.Name, Kind: kind, Values: ja.Values})
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

var kindNames = map[string]SplitKind{
	"leaf":         Leaf,
	"cat-multiway": CatMultiway,
	"cat-binary":   CatBinary,
	"cont-binary":  ContBinary,
	"cont-binned":  ContBinned,
}

func encodeNode(n *Node) *jsonNode {
	if n == nil {
		return nil
	}
	jn := &jsonNode{
		Kind:   n.Kind.String(),
		Class:  n.Class,
		N:      n.N,
		Dist:   n.Dist,
		Attr:   n.Attr,
		Thresh: n.Thresh,
		Mask:   n.Mask,
		Edges:  n.Edges,
	}
	for _, c := range n.Children {
		jn.Children = append(jn.Children, encodeNode(c))
	}
	return jn
}

// MaxModelDepth bounds the node depth ReadJSON accepts. No legitimate
// tree approaches it (depth is at most the training-set size), and the
// cap keeps a hostile model file from driving the decoder — and every
// later recursive walk — into unbounded recursion.
const MaxModelDepth = 512

func decodeNode(jn *jsonNode, s *dataset.Schema, depth int) (*Node, error) {
	if jn == nil {
		return nil, nil
	}
	if depth > MaxModelDepth {
		return nil, fmt.Errorf("tree: model deeper than %d levels", MaxModelDepth)
	}
	kind, ok := kindNames[jn.Kind]
	if !ok {
		return nil, fmt.Errorf("tree: unknown node kind %q", jn.Kind)
	}
	n := &Node{
		Kind:   kind,
		Attr:   jn.Attr,
		Thresh: jn.Thresh,
		Mask:   jn.Mask,
		Edges:  jn.Edges,
		Class:  jn.Class,
		N:      jn.N,
		Dist:   jn.Dist,
		Depth:  depth,
	}
	if n.Dist == nil {
		n.Dist = make([]int64, s.NumClasses())
	}
	if len(n.Dist) != s.NumClasses() {
		return nil, fmt.Errorf("tree: node distribution has %d classes, schema has %d",
			len(n.Dist), s.NumClasses())
	}
	for c, v := range n.Dist {
		if v < 0 {
			return nil, fmt.Errorf("tree: negative count %d for class %d", v, c)
		}
	}
	if n.N < 0 {
		return nil, fmt.Errorf("tree: negative case count %d", n.N)
	}
	if int(n.Class) >= s.NumClasses() || n.Class < 0 {
		return nil, fmt.Errorf("tree: node class %d out of range", n.Class)
	}
	if kind != Leaf {
		if n.Attr < 0 || n.Attr >= s.NumAttrs() {
			return nil, fmt.Errorf("tree: node attribute %d out of range", n.Attr)
		}
		attr := s.Attrs[n.Attr]
		switch kind {
		case CatMultiway, CatBinary:
			if attr.Kind != dataset.Categorical {
				return nil, fmt.Errorf("tree: categorical test on continuous attribute %q", attr.Name)
			}
		case ContBinary, ContBinned:
			if attr.Kind != dataset.Continuous {
				return nil, fmt.Errorf("tree: continuous test on categorical attribute %q", attr.Name)
			}
		}
		for i := 1; i < len(n.Edges); i++ {
			if !(n.Edges[i-1] < n.Edges[i]) {
				return nil, fmt.Errorf("tree: bin edges of node on %q not strictly ascending", attr.Name)
			}
		}
		// A subset mask addresses at most 64 values; reject tests whose
		// value range exceeds the mask width (they would silently route
		// every high value to child 1) and masks with bits beyond it.
		switch kind {
		case CatBinary:
			if attr.Cardinality() > MaxMaskValues {
				return nil, fmt.Errorf("tree: cat-binary test on %q with %d values exceeds the %d a mask can hold",
					attr.Name, attr.Cardinality(), MaxMaskValues)
			}
			if err := checkMaskRange(n.Mask, attr.Cardinality(), attr.Name); err != nil {
				return nil, err
			}
		case ContBinned:
			if n.Mask != 0 {
				bins := len(n.Edges) + 1
				if bins > MaxMaskValues {
					return nil, fmt.Errorf("tree: binary cont-binned test on %q with %d bins exceeds the %d a mask can hold",
						attr.Name, bins, MaxMaskValues)
				}
				if err := checkMaskRange(n.Mask, bins, attr.Name); err != nil {
					return nil, err
				}
			}
		}
		want := 0
		switch kind {
		case CatMultiway:
			want = attr.Cardinality()
		case CatBinary, ContBinary:
			want = 2
		case ContBinned:
			want = len(n.Edges) + 1
			if n.Mask != 0 {
				want = 2
			}
		}
		if len(jn.Children) != want {
			return nil, fmt.Errorf("tree: %s node on %q has %d children, want %d",
				jn.Kind, attr.Name, len(jn.Children), want)
		}
		for _, jc := range jn.Children {
			c, err := decodeNode(jc, s, depth+1)
			if err != nil {
				return nil, err
			}
			n.Children = append(n.Children, c)
		}
	} else if len(jn.Children) != 0 {
		return nil, fmt.Errorf("tree: leaf with children")
	}
	return n, nil
}

// checkMaskRange rejects a subset mask with bits set at or above the
// value range m of its test.
func checkMaskRange(mask uint64, m int, attrName string) error {
	if m < MaxMaskValues && mask>>uint(m) != 0 {
		return fmt.Errorf("tree: subset mask %#x on %q has bits beyond its %d values", mask, attrName, m)
	}
	return nil
}
