package tree

import (
	"fmt"

	"partree/internal/dataset"
	"partree/internal/kernel"
)

// Out-of-core breadth-first induction: the levelwise builder re-expressed
// over the chunked Table interface. Instead of per-node row-index vectors
// (which are Θ(N) resident), the builder keeps one int32 slot per row —
// which frontier node the row currently sits at, -1 once settled — and
// makes two sequential passes over the chunks per level: one to tabulate
// every frontier node's statistics, one to advance each row's slot
// through its node's freshly chosen split. Statistics, split decisions
// and routing are the exact functions of the in-RAM path, so the tree is
// bit-identical to BuildBFS on the same rows; only the access pattern
// (and the resident footprint, 4 bytes per row) changes.

// NewChunkSpec builds a kernel tabulation spec template for chunk-fed
// tabulation: bin counts and micro edges are resolved from the schema
// and binner once, column slices are bound per chunk with BindChunk.
func NewChunkSpec(s *dataset.Schema, o Options) *kernel.Spec {
	sp := &kernel.Spec{
		Classes: s.NumClasses(),
		Attrs:   make([]kernel.AttrColumn, len(s.Attrs)),
	}
	for a, attr := range s.Attrs {
		if attr.Kind == dataset.Categorical {
			sp.Attrs[a] = kernel.AttrColumn{Bins: attr.Cardinality()}
		} else {
			if o.Binner == nil {
				panic(fmt.Sprintf("tree: schema has continuous attribute %q but Options.Binner is nil", attr.Name))
			}
			sp.Attrs[a] = kernel.AttrColumn{Bins: o.Binner.MicroBins, Edges: o.Binner.MicroEdges(a)}
		}
	}
	return sp
}

// BindChunk points the spec's columns at one decoded chunk, so spec row
// ids are chunk-local (0..Rows-1).
func BindChunk(sp *kernel.Spec, ch *dataset.Chunk) {
	sp.Class = ch.Class
	for a := range sp.Attrs {
		sp.Attrs[a].Cat = ch.Cat[a]
		sp.Attrs[a].Cont = ch.Cont[a]
	}
}

// ExpandNodeOOC finalizes one frontier node from its (global) statistics
// without routing any rows: the node's distribution is recorded, a split
// chosen and applied, and the globally non-empty children returned as
// frontier items (Idx nil) exactly as ExpandNode would keep them.
// childSlot maps each child index of the split to its position in the
// returned items, or -1 for a globally empty child — the routing table
// the caller's streaming pass (or ExpandNode's PartitionRows) uses to
// advance rows. split is false when the node became a leaf.
func ExpandNodeOOC(it FrontierItem, stats *NodeStats, s *dataset.Schema, o Options, ids *IDGen) (kids []FrontierItem, childSlot []int32, split bool) {
	n := it.Node
	n.Dist = append(n.Dist[:0], stats.Dist...)
	n.N = 0
	for _, v := range n.Dist {
		n.N += v
	}
	if n.N > 0 {
		n.Class = MajorityClass(n.Dist)
	}
	sp, ok := ChooseSplit(stats, s, o, n.Depth)
	if !ok {
		n.Kind = Leaf
		n.Children = nil
		return nil, nil, false
	}
	sp.Apply(n, s, ids.Next)
	global := GlobalChildCounts(sp, stats, s, o)
	childSlot = make([]int32, len(n.Children))
	for ci := range n.Children {
		if global[ci] > 0 {
			childSlot[ci] = int32(len(kids))
			kids = append(kids, FrontierItem{Node: n.Children[ci], GlobalN: global[ci]})
		} else {
			childSlot[ci] = -1
		}
	}
	return kids, childSlot, true
}

// BuildBFSOOC grows a tree breadth-first over a chunked table with
// bounded resident memory: the only per-row state is the slot vector.
// The result is bit-identical to BuildBFS over the same rows (gated by
// the differential tests). o.Reuse is ignored — sibling subtraction is a
// cost-model transform of the in-RAM path and never changes the tree.
func BuildBFSOOC(t dataset.Table, o Options) (*Tree, error) {
	o = o.WithDefaults()
	s := t.Schema()
	statsLen := StatsLen(s, o)
	root := &Node{ID: 0, Kind: Leaf, Dist: make([]int64, s.NumClasses())}
	ids := NewIDGen(1)
	frontier := []FrontierItem{{Node: root}}
	slot := make([]int32, t.Len())
	spec := NewChunkSpec(s, o)
	var ch dataset.Chunk
	var blocks []int64
	for len(frontier) > 0 {
		need := len(frontier) * statsLen
		if cap(blocks) < need {
			blocks = make([]int64, need)
		}
		blocks = blocks[:need]
		clear(blocks)
		for k := 0; k < t.NumChunks(); k++ {
			if _, err := t.ReadChunk(k, &ch); err != nil {
				return nil, err
			}
			BindChunk(spec, &ch)
			kernel.TabulateAssigned(blocks, statsLen, slot[ch.Lo:ch.Hi], spec)
		}
		next, childSlots := expandFrontierOOC(frontier, blocks, statsLen, s, o, ids)
		if len(next) > 0 {
			for k := 0; k < t.NumChunks(); k++ {
				if _, err := t.ReadChunk(k, &ch); err != nil {
					return nil, err
				}
				RerouteChunk(frontier, childSlots, &ch, slot[ch.Lo:ch.Hi])
			}
		}
		frontier = next
	}
	return &Tree{Schema: s, Root: root}, nil
}

// expandFrontierOOC expands every frontier node from its tabulated block
// and returns the next frontier plus, per current slot, the child→slot
// routing table (nil for nodes that became leaves). Shared by the serial
// and the synchronous-parallel out-of-core builders.
func expandFrontierOOC(frontier []FrontierItem, blocks []int64, statsLen int, s *dataset.Schema, o Options, ids *IDGen) ([]FrontierItem, [][]int32) {
	var next []FrontierItem
	childSlots := make([][]int32, len(frontier))
	for j, it := range frontier {
		blk := blocks[j*statsLen : (j+1)*statsLen]
		kids, cs, split := ExpandNodeOOC(it, DecodeStats(blk, s, o), s, o, ids)
		if !split {
			continue
		}
		base := int32(len(next))
		for ci := range cs {
			if cs[ci] >= 0 {
				cs[ci] += base
			}
		}
		childSlots[j] = cs
		next = append(next, kids...)
	}
	return next, childSlots
}

// RerouteChunk advances the slot of every live row of one chunk through
// its node's split: rows at leaf nodes settle (-1), rows at split nodes
// move to the child's next-level slot. sl is the chunk's window of the
// slot vector.
func RerouteChunk(frontier []FrontierItem, childSlots [][]int32, ch *dataset.Chunk, sl []int32) {
	for i, sv := range sl {
		if sv < 0 {
			continue
		}
		cs := childSlots[sv]
		if cs == nil {
			sl[i] = -1
			continue
		}
		sl[i] = cs[frontier[sv].Node.RouteChunkRow(ch, i)]
	}
}

// RouteChunkRow returns the child index that row i of a decoded chunk
// follows — the chunk-fed twin of RouteRow.
func (n *Node) RouteChunkRow(ch *dataset.Chunk, i int) int {
	if ch.Cat[n.Attr] != nil {
		return n.routeValue(ch.Cat[n.Attr][i], 0)
	}
	return n.routeValue(0, ch.Cont[n.Attr][i])
}

// ClassifyChunkRow classifies row i of a decoded chunk, mirroring
// ClassifyRow's Case 3 handling.
func (t *Tree) ClassifyChunkRow(ch *dataset.Chunk, i int) int32 {
	n := t.Root
	class := n.Class
	for n != nil && !n.IsLeaf() {
		if n.N > 0 {
			class = n.Class
		}
		c := n.RouteChunkRow(ch, i)
		if c < 0 || c >= len(n.Children) {
			return class
		}
		n = n.Children[c]
	}
	if n != nil && n.N > 0 {
		class = n.Class
	}
	return class
}

// AccuracyTable returns the fraction of the table's rows the tree
// classifies correctly, streaming chunk by chunk — the bounded-RAM twin
// of Accuracy.
func (t *Tree) AccuracyTable(tab dataset.Table) (float64, error) {
	if tab.Len() == 0 {
		return 0, nil
	}
	ok := 0
	var ch dataset.Chunk
	for k := 0; k < tab.NumChunks(); k++ {
		if _, err := tab.ReadChunk(k, &ch); err != nil {
			return 0, err
		}
		for i := 0; i < ch.Rows(); i++ {
			if t.ClassifyChunkRow(&ch, i) == ch.Class[i] {
				ok++
			}
		}
	}
	return float64(ok) / float64(tab.Len()), nil
}
