package tree

import "math"

// Pruning is outside the paper's scope (§2.1 notes it costs <1% of the
// initial tree build, which is why only tree growth is parallelized), but
// a usable classifier library needs it, so the C4.5-style pessimistic
// error pruner ships as an extension. No experiment depends on it.

// DefaultPruneZ is the normal deviate for C4.5's default 25% confidence
// factor.
const DefaultPruneZ = 0.6744897501960817

// Prune replaces, bottom-up and in place, every subtree whose pessimistic
// error estimate is no better than that of a single leaf with the parent's
// majority class — C4.5's subtree replacement with the upper confidence
// bound of the binomial error at normal deviate z (use DefaultPruneZ for
// the classic CF=25%). Returns the number of internal nodes removed.
func Prune(t *Tree, z float64) int {
	pruned := 0
	var walk func(n *Node) float64 // returns estimated subtree errors
	walk = func(n *Node) float64 {
		if n == nil || n.N == 0 {
			return 0
		}
		leafErr := pessimisticErrors(n.N, leafErrors(n), z)
		if n.IsLeaf() {
			return leafErr
		}
		subtreeErr := 0.0
		for _, c := range n.Children {
			subtreeErr += walk(c)
		}
		if leafErr <= subtreeErr+1e-9 {
			pruned += countInternal(n)
			n.Kind = Leaf
			n.Children = nil
			n.Thresh, n.Mask, n.Edges = 0, 0, nil
			return leafErr
		}
		return subtreeErr
	}
	walk(t.Root)
	return pruned
}

// leafErrors returns the training misclassifications if the node were a
// leaf labelled with its majority class.
func leafErrors(n *Node) int64 {
	var best int64
	for _, v := range n.Dist {
		if v > best {
			best = v
		}
	}
	return n.N - best
}

// countInternal counts the internal nodes of a subtree (the quantity
// removed when it collapses to a leaf).
func countInternal(n *Node) int {
	if n == nil || n.IsLeaf() {
		return 0
	}
	c := 1
	for _, ch := range n.Children {
		c += countInternal(ch)
	}
	return c
}

// pessimisticErrors is C4.5's estimate: n times the upper confidence
// bound of the observed error rate e/n at normal deviate z.
func pessimisticErrors(n, e int64, z float64) float64 {
	if n == 0 {
		return 0
	}
	fn := float64(n)
	f := float64(e) / fn
	z2 := z * z
	bound := (f + z2/(2*fn) + z*math.Sqrt(f/fn-f*f/fn+z2/(4*fn*fn))) / (1 + z2/fn)
	return bound * fn
}
