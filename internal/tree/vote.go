package tree

import (
	"math"

	"partree/internal/criteria"
	"partree/internal/dataset"
	"partree/internal/discretize"
)

// AttrGains scores every attribute of one node's statistics
// independently — the same per-attribute evaluation ChooseSplit runs,
// but keeping all gains instead of only the argmax — and writes the
// impurity gain of attribute a into gains[a]. Attributes with no valid
// split (constant at the node, or a degenerate histogram) get -Inf, as
// does everything when the node is empty or pure. This is the round-1
// nomination scorer of voted split selection: it runs on LOCAL
// statistics, so no MinSplit/MaxDepth leaf checks apply here — those
// remain global decisions made by ChooseSplit on the reduced
// statistics.
func AttrGains(stats *NodeStats, s *dataset.Schema, o Options, gains []float64) {
	for i := range gains {
		gains[i] = math.Inf(-1)
	}
	var n int64
	for _, v := range stats.Dist {
		n += v
	}
	if n == 0 {
		return
	}
	parent := o.Criterion.Impurity(stats.Dist, n)
	if parent == 0 {
		return
	}
	for a, attr := range s.Attrs {
		h := stats.Hists[a]
		var score float64
		var valid bool
		if attr.Kind == dataset.Categorical {
			_, score, valid = criteria.ScoreHist(h, o.Criterion, o.Binary)
		} else {
			edges, assign := o.Binner.Edges(h, a)
			if len(edges) == 0 {
				continue
			}
			agg := discretize.Aggregate(h, assign)
			_, score, valid = criteria.ScoreHist(agg, o.Criterion, o.Binary)
		}
		if !valid {
			continue
		}
		gains[a] = parent - score
	}
}

// AttrSpans returns, per attribute, the [start, end) span of its
// histogram block inside a flattened statistics vector (the DecodeStats
// layout: C distribution cells, then one block per attribute in schema
// order). Voted reductions use the spans to pack only elected
// attributes' blocks and to zero-mask non-elected ones.
func AttrSpans(s *dataset.Schema, o Options) [][2]int {
	c := s.NumClasses()
	spans := make([][2]int, len(s.Attrs))
	off := c
	for a, attr := range s.Attrs {
		m := attr.Cardinality()
		if attr.Kind == dataset.Continuous {
			m = o.Binner.MicroBins
		}
		spans[a] = [2]int{off, off + m*c}
		off += m * c
	}
	return spans
}
