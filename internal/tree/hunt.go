package tree

import (
	"partree/internal/criteria"
	"partree/internal/dataset"
)

// BuildHunt grows a tree depth-first with Hunt's method exactly as §2.1
// describes the C4.5 baseline: at every node each categorical attribute is
// evaluated from its class-distribution table (Table 2) and each
// continuous attribute by sorting the node's cases and scanning every
// distinct binary cut (Table 3). Continuous attributes produce native
// "value ≤ t" tests, with no discretization. It is the golden-reference
// implementation for Figure 1 and the accuracy baseline of the examples;
// the parallel formulations instead parallelize the breadth-first builder,
// as the paper does.
func BuildHunt(d *dataset.Dataset, o Options) *Tree {
	o = o.WithDefaults()
	root := &Node{ID: 0, Kind: Leaf, Dist: make([]int64, d.Schema.NumClasses())}
	ids := NewIDGen(1)
	huntExpand(d, FrontierItem{Node: root, Idx: d.AllIndex()}, o, ids)
	return &Tree{Schema: d.Schema, Root: root}
}

func huntExpand(d *dataset.Dataset, it FrontierItem, o Options, ids *IDGen) {
	n := it.Node
	s := d.Schema
	// Case 1 / leaf checks.
	dist := make([]int64, s.NumClasses())
	for _, i := range it.Idx {
		dist[d.Class[i]]++
	}
	n.Dist = dist
	n.N = int64(len(it.Idx))
	if n.N > 0 {
		n.Class = MajorityClass(dist)
	}
	if n.N < int64(o.MinSplit) || (o.MaxDepth > 0 && n.Depth >= o.MaxDepth) {
		return
	}
	parent := o.Criterion.Impurity(dist, n.N)
	if parent == 0 {
		return
	}

	// Case 2: choose the attribute test with the best gain (ties broken by
	// ascending attribute index, as everywhere else).
	best := Split{Gain: o.MinGain}
	var bestThresh float64
	found := false
	for a, attr := range s.Attrs {
		var cand Split
		var candThresh float64
		var score float64
		var valid bool
		if attr.Kind == dataset.Categorical {
			h := criteria.GetHist(attr.Cardinality(), s.NumClasses())
			criteria.HistInto(h, d.Cat[a], d.Class, it.Idx)
			cand.Attr = a
			if o.Binary {
				cand.Kind = CatBinary
			} else {
				cand.Kind = CatMultiway
			}
			cand.Mask, score, valid = criteria.ScoreHist(h, o.Criterion, o.Binary)
			criteria.PutHist(h)
		} else {
			values := make([]float64, len(it.Idx))
			classes := make([]int32, len(it.Idx))
			for j, i := range it.Idx {
				values[j] = d.Cont[a][i]
				classes[j] = d.Class[i]
			}
			criteria.SortPairs(values, classes)
			cs, ok := criteria.BestContinuousSplit(values, classes, s.NumClasses(), o.Criterion)
			if !ok {
				continue
			}
			cand = Split{Attr: a, Kind: ContBinary}
			candThresh = cs.Thresh
			score, valid = cs.Score, true
		}
		if !valid {
			continue
		}
		gain := parent - score
		if gain > best.Gain {
			cand.Gain = gain
			best = cand
			bestThresh = candThresh
			found = true
		}
	}
	if !found {
		return
	}
	// Attach the chosen test and recurse depth-first.
	n.Kind = best.Kind
	n.Attr = best.Attr
	n.Mask = best.Mask
	if best.Kind == ContBinary {
		n.Thresh = bestThresh
		n.Children = make([]*Node, 2)
	} else {
		n.Children = make([]*Node, best.NumChildren(s))
	}
	for i := range n.Children {
		n.Children[i] = &Node{
			ID:    ids.Next(),
			Kind:  Leaf,
			Class: n.Class,
			Depth: n.Depth + 1,
			Dist:  make([]int64, s.NumClasses()),
		}
	}
	parts, _ := PartitionRows(n, d, it.Idx)
	for ci, part := range parts {
		if len(part) > 0 {
			huntExpand(d, FrontierItem{Node: n.Children[ci], Idx: part}, o, ids)
		}
	}
}
