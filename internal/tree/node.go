// Package tree implements the classification-tree model and the serial
// induction algorithms: Hunt's method grown depth-first with native
// continuous-attribute handling (the C4.5 baseline of §2.1) and the
// breadth-first level-synchronous builder that is the P=1 reference — and
// shared split-selection core — for every parallel formulation in
// internal/core.
package tree

import (
	"fmt"
	"math/bits"
	"strings"

	"partree/internal/criteria"
	"partree/internal/dataset"
)

// SplitKind enumerates the test attached to an internal node.
type SplitKind uint8

const (
	// Leaf nodes carry only a class label.
	Leaf SplitKind = iota
	// CatMultiway: one child per categorical value (classic C4.5).
	CatMultiway
	// CatBinary: binary test "value ∈ subset" on a categorical attribute;
	// Mask bit v set means value v routes to child 0.
	CatBinary
	// ContBinary: binary test "value ≤ Thresh" on a continuous attribute.
	ContBinary
	// ContBinned: a continuous attribute discretized at this node into
	// len(Edges)+1 bins (per-node clustering, the SPEC approach referenced
	// by the paper). With a zero Mask it is multiway over bins; with a
	// non-zero Mask it is the binary test "bin ∈ subset".
	ContBinned
)

// String names the split kind.
func (k SplitKind) String() string {
	switch k {
	case Leaf:
		return "leaf"
	case CatMultiway:
		return "cat-multiway"
	case CatBinary:
		return "cat-binary"
	case ContBinary:
		return "cont-binary"
	case ContBinned:
		return "cont-binned"
	default:
		return fmt.Sprintf("SplitKind(%d)", uint8(k))
	}
}

// Node is one decision-tree node. Leaves have Kind == Leaf and no
// children; internal nodes carry the test parameters for their kind. A nil
// or zero-count child corresponds to Case 3 of Hunt's method: records
// routed there are classified with the parent's majority class.
type Node struct {
	ID     int64 // deterministic breadth-first id (0 = root)
	Kind   SplitKind
	Attr   int       // attribute tested (internal nodes)
	Thresh float64   // ContBinary threshold
	Mask   uint64    // CatBinary / binary ContBinned left-subset mask
	Edges  []float64 // ContBinned bin boundaries (ascending)

	Children []*Node
	Class    int32   // majority class of the training cases at this node
	N        int64   // training cases at this node
	Dist     []int64 // class distribution at this node
	Depth    int
}

// IsLeaf reports whether the node is a leaf.
func (n *Node) IsLeaf() bool { return n.Kind == Leaf }

// NumChildren returns the branching factor implied by the split kind.
func (n *Node) NumChildren() int {
	switch n.Kind {
	case Leaf:
		return 0
	case CatBinary, ContBinary:
		return 2
	case ContBinned:
		if n.Mask != 0 {
			return 2
		}
		return len(n.Edges) + 1
	case CatMultiway:
		return len(n.Children)
	default:
		panic("tree: unknown split kind")
	}
}

// binOf locates the ContBinned bin of v; bins follow the shared half-open
// convention of criteria.BinOf: (-inf, e0], (e0, e1], ..., (ek-1, +inf).
func binOf(edges []float64, v float64) int { return criteria.BinOf(edges, v) }

// MaxMaskValues is the largest cardinality (categorical values, or bins
// of a binary ContBinned test) a subset mask can represent. Split
// construction never emits a masked test above it and ReadJSON rejects
// models that carry one: an index ≥ 64 would shift past the mask width
// and silently route to child 1.
const MaxMaskValues = 64

// maskHas reports whether mask routes index v to child 0, treating any
// index outside the representable 0..63 range as not in the subset.
func maskHas(mask uint64, v int) bool {
	return v >= 0 && v < MaxMaskValues && mask&(1<<uint(v)) != 0
}

// routeValue computes the child index for a raw attribute value
// (categorical code in cat, continuous value in cont; only the one
// matching the split kind is read).
func (n *Node) routeValue(cat int32, cont float64) int {
	switch n.Kind {
	case CatMultiway:
		return int(cat)
	case CatBinary:
		if maskHas(n.Mask, int(cat)) {
			return 0
		}
		return 1
	case ContBinary:
		if cont <= n.Thresh {
			return 0
		}
		return 1
	case ContBinned:
		b := binOf(n.Edges, cont)
		if n.Mask != 0 {
			if maskHas(n.Mask, b) {
				return 0
			}
			return 1
		}
		return b
	default:
		panic("tree: routing on a leaf")
	}
}

// RouteRow returns the child index that row i of d follows.
func (n *Node) RouteRow(d *dataset.Dataset, i int) int {
	if d.Cat[n.Attr] != nil {
		return n.routeValue(d.Cat[n.Attr][i], 0)
	}
	return n.routeValue(0, d.Cont[n.Attr][i])
}

// RouteRecord returns the child index that a record follows.
func (n *Node) RouteRecord(r *dataset.Record) int {
	return n.routeValue(r.Cat[n.Attr], r.Cont[n.Attr])
}

// Tree pairs a root node with its schema.
type Tree struct {
	Schema *dataset.Schema
	Root   *Node
}

// Classify returns the predicted class of a record: the record is routed
// from the root to a leaf; empty children (Case 3 of Hunt's method)
// predict the most frequent class of the nearest ancestor with data.
func (t *Tree) Classify(r *dataset.Record) int32 {
	n := t.Root
	class := n.Class
	for n != nil && !n.IsLeaf() {
		if n.N > 0 {
			class = n.Class
		}
		c := n.RouteRecord(r)
		if c < 0 || c >= len(n.Children) {
			return class
		}
		n = n.Children[c]
	}
	if n != nil && n.N > 0 {
		class = n.Class
	}
	return class
}

// ClassifyRow classifies row i of a dataset (which must share the schema).
func (t *Tree) ClassifyRow(d *dataset.Dataset, i int) int32 {
	n := t.Root
	class := n.Class
	for n != nil && !n.IsLeaf() {
		if n.N > 0 {
			class = n.Class
		}
		c := n.RouteRow(d, i)
		if c < 0 || c >= len(n.Children) {
			return class
		}
		n = n.Children[c]
	}
	if n != nil && n.N > 0 {
		class = n.Class
	}
	return class
}

// Accuracy returns the fraction of rows of d the tree classifies
// correctly.
func (t *Tree) Accuracy(d *dataset.Dataset) float64 {
	if d.Len() == 0 {
		return 0
	}
	ok := 0
	for i := 0; i < d.Len(); i++ {
		if t.ClassifyRow(d, i) == d.Class[i] {
			ok++
		}
	}
	return float64(ok) / float64(d.Len())
}

// Stats summarizes a tree's shape.
type Stats struct {
	Nodes    int
	Leaves   int
	MaxDepth int
}

// Stats computes node/leaf counts and depth.
func (t *Tree) Stats() Stats {
	var s Stats
	var walk func(n *Node)
	walk = func(n *Node) {
		if n == nil {
			return
		}
		s.Nodes++
		if n.Depth > s.MaxDepth {
			s.MaxDepth = n.Depth
		}
		if n.IsLeaf() {
			s.Leaves++
			return
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(t.Root)
	return s
}

// LevelWidths returns, per depth, how many nodes carried training cases —
// the frontier widths the breadth-first builders processed level by
// level. This is the workload profile the analytic cost model
// (internal/model) consumes.
func (t *Tree) LevelWidths() []int {
	var widths []int
	var walk func(n *Node)
	walk = func(n *Node) {
		if n == nil || n.N == 0 {
			return
		}
		for len(widths) <= n.Depth {
			widths = append(widths, 0)
		}
		widths[n.Depth]++
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(t.Root)
	return widths
}

// LevelRecords returns, per depth, how many training cases sat at the
// frontier nodes of that depth — the per-level scan volume of the
// breadth-first builders, consumed by the analytic model alongside
// LevelWidths.
func (t *Tree) LevelRecords() []int {
	var recs []int
	var walk func(n *Node)
	walk = func(n *Node) {
		if n == nil || n.N == 0 {
			return
		}
		for len(recs) <= n.Depth {
			recs = append(recs, 0)
		}
		recs[n.Depth] += int(n.N)
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(t.Root)
	return recs
}

// Equal reports whether two trees are structurally identical: same kinds,
// attributes, test parameters, distributions and children. This is the
// invariant checked between the serial builder and every parallel
// formulation.
func Equal(a, b *Tree) bool { return nodeEqual(a.Root, b.Root) }

func nodeEqual(a, b *Node) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Kind != b.Kind || a.N != b.N || a.Class != b.Class || a.Depth != b.Depth {
		return false
	}
	if len(a.Dist) != len(b.Dist) {
		return false
	}
	for i := range a.Dist {
		if a.Dist[i] != b.Dist[i] {
			return false
		}
	}
	if a.Kind == Leaf {
		return true
	}
	if a.Attr != b.Attr || a.Thresh != b.Thresh || a.Mask != b.Mask {
		return false
	}
	if len(a.Edges) != len(b.Edges) || len(a.Children) != len(b.Children) {
		return false
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			return false
		}
	}
	for i := range a.Children {
		if !nodeEqual(a.Children[i], b.Children[i]) {
			return false
		}
	}
	return true
}

// Diff returns a short description of the first structural difference
// between two trees, or "" when they are equal. Used by tests to produce
// actionable failures.
func Diff(a, b *Tree) string { return nodeDiff(a.Root, b.Root, "root") }

func nodeDiff(a, b *Node, path string) string {
	switch {
	case a == nil && b == nil:
		return ""
	case a == nil || b == nil:
		return fmt.Sprintf("%s: one side nil", path)
	case a.Kind != b.Kind:
		return fmt.Sprintf("%s: kind %v vs %v", path, a.Kind, b.Kind)
	case a.N != b.N:
		return fmt.Sprintf("%s: N %d vs %d", path, a.N, b.N)
	case a.Class != b.Class:
		return fmt.Sprintf("%s: class %d vs %d", path, a.Class, b.Class)
	}
	if a.Kind != Leaf {
		if a.Attr != b.Attr {
			return fmt.Sprintf("%s: attr %d vs %d", path, a.Attr, b.Attr)
		}
		if a.Thresh != b.Thresh || a.Mask != b.Mask {
			return fmt.Sprintf("%s: test params differ (thresh %g vs %g, mask %x vs %x)", path, a.Thresh, b.Thresh, a.Mask, b.Mask)
		}
		if len(a.Children) != len(b.Children) {
			return fmt.Sprintf("%s: %d vs %d children", path, len(a.Children), len(b.Children))
		}
		for i := range a.Children {
			if d := nodeDiff(a.Children[i], b.Children[i], fmt.Sprintf("%s.%d", path, i)); d != "" {
				return d
			}
		}
	}
	return ""
}

// String renders the tree in indented form for debugging and the examples.
func (t *Tree) String() string {
	var b strings.Builder
	t.write(&b, t.Root, 0)
	return b.String()
}

func (t *Tree) write(b *strings.Builder, n *Node, depth int) {
	if n == nil {
		fmt.Fprintf(b, "%s<empty>\n", strings.Repeat("  ", depth))
		return
	}
	ind := strings.Repeat("  ", depth)
	if n.IsLeaf() {
		fmt.Fprintf(b, "%sleaf class=%s n=%d\n", ind, t.Schema.Classes[n.Class], n.N)
		return
	}
	attr := t.Schema.Attrs[n.Attr]
	switch n.Kind {
	case CatMultiway:
		fmt.Fprintf(b, "%ssplit %s (multiway, n=%d)\n", ind, attr.Name, n.N)
		for v, c := range n.Children {
			fmt.Fprintf(b, "%s= %s:\n", strings.Repeat("  ", depth+1), attr.Values[v])
			t.write(b, c, depth+2)
		}
	case CatBinary:
		var left []string
		for v := 0; v < attr.Cardinality(); v++ {
			if n.Mask&(1<<uint(v)) != 0 {
				left = append(left, attr.Values[v])
			}
		}
		fmt.Fprintf(b, "%ssplit %s in {%s}? (n=%d)\n", ind, attr.Name, strings.Join(left, ","), n.N)
		t.write(b, n.Children[0], depth+1)
		t.write(b, n.Children[1], depth+1)
	case ContBinary:
		fmt.Fprintf(b, "%ssplit %s <= %g? (n=%d)\n", ind, attr.Name, n.Thresh, n.N)
		t.write(b, n.Children[0], depth+1)
		t.write(b, n.Children[1], depth+1)
	case ContBinned:
		fmt.Fprintf(b, "%ssplit %s binned %v mask=%s (n=%d)\n", ind, attr.Name, n.Edges, maskString(n.Mask, len(n.Edges)+1), n.N)
		for _, c := range n.Children {
			t.write(b, c, depth+1)
		}
	}
}

func maskString(mask uint64, m int) string {
	if mask == 0 {
		return "-"
	}
	var b strings.Builder
	for v := 0; v < m; v++ {
		if mask&(1<<uint(v)) != 0 {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}

// SubtreeBytes estimates the wire size of a subtree when shipped between
// processors during tree assembly: a fixed header per node plus its edge
// list and class distribution.
func SubtreeBytes(n *Node) int {
	if n == nil {
		return 0
	}
	b := 40 + 8*len(n.Edges) + 8*len(n.Dist)
	for _, c := range n.Children {
		b += SubtreeBytes(c)
	}
	return b
}

// MajorityClass returns the smallest class index achieving the maximum
// count (the deterministic tie-break used everywhere).
func MajorityClass(dist []int64) int32 {
	best, bestN := 0, int64(-1)
	for c, n := range dist {
		if n > bestN {
			best, bestN = c, n
		}
	}
	return int32(best)
}

// maskBits counts the set bits of a mask (used in validation).
func maskBits(m uint64) int { return bits.OnesCount64(m) }
