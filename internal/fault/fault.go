// Package fault is the fault-tolerance vocabulary shared by the mp
// runtime and the core builders: deterministic seeded fault plans
// (crash / delay / drop / duplicate), the typed errors a bounded-wait
// receive surfaces instead of hanging, the panic value that kills an
// injected-crash rank, and the checkpoint store the recovery protocols
// restore from.
//
// The package deliberately depends on nothing but the standard library so
// both internal/mp (which injects) and internal/core (which recovers) can
// import it without a cycle.
package fault

import (
	"errors"
	"fmt"
	"math/rand"
)

// Kind classifies a fault.
type Kind uint8

// The injectable fault kinds.
const (
	// Crash kills the rank at the trigger point: the rank panics with a
	// Crashed value and never executes another operation.
	Crash Kind = iota + 1
	// Delay advances the rank's modeled clock by Fault.Delay seconds at
	// the trigger point — a straggler.
	Delay
	// Drop silently discards one message the rank sends (the sender still
	// pays the modeled wire cost; the receiver never sees it).
	Drop
	// Duplicate delivers one sent message twice. The runtime's
	// at-most-once sequence filter must suppress the copy.
	Duplicate
	// TornWrite truncates one durable checkpoint write mid-frame (as a
	// power loss would): only a prefix of the frame reaches the chain
	// file and the manifest never acknowledges it. Interpreted by
	// DiskStore (N counts the rank's Save calls); the mp runtime
	// ignores it.
	TornWrite
	// BitFlip corrupts one durable checkpoint frame after a successful
	// write by flipping a single bit on disk. The CRC32C frame checksum
	// must detect it at reload. Interpreted by DiskStore; the mp
	// runtime ignores it.
	BitFlip
)

func (k Kind) String() string {
	switch k {
	case Crash:
		return "crash"
	case Delay:
		return "delay"
	case Drop:
		return "drop"
	case Duplicate:
		return "duplicate"
	case TornWrite:
		return "torn-write"
	case BitFlip:
		return "bit-flip"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Point selects where in a rank's operation stream a Crash or Delay
// fault triggers. Drop/Duplicate always trigger on sends.
type Point uint8

// The trigger points. The "operation stream" of a rank is the ordered
// sequence of its Send, Recv and outermost-collective-start calls.
const (
	// AnyOp matches every operation.
	AnyOp Point = iota
	// CollStart matches the start of an outermost collective
	// (allreduce, bcast, gather, all-to-all, barrier, ...). Collective
	// starts are the level/partition boundaries of the builders, which
	// makes this the natural unit for boundary-sweeping fault matrices.
	CollStart
	// SendOp matches point-to-point or collective-internal sends.
	SendOp
	// RecvOp matches receives (the fault fires before blocking).
	RecvOp
)

func (p Point) String() string {
	switch p {
	case AnyOp:
		return "any-op"
	case CollStart:
		return "coll-start"
	case SendOp:
		return "send"
	case RecvOp:
		return "recv"
	default:
		return fmt.Sprintf("point(%d)", uint8(p))
	}
}

// AnyTag matches every message tag in Drop/Duplicate faults.
const AnyTag = int(-1) << 30

// Fault is one planned fault: on rank Rank, at the N-th operation
// matching (Point, Tag), inject Kind.
type Fault struct {
	Kind  Kind
	Rank  int
	Point Point   // trigger point for Crash/Delay (sends only for Drop/Duplicate)
	N     int     // 1-based index of the matching operation that triggers
	Tag   int     // message tag filter for Drop/Duplicate (AnyTag = all)
	Delay float64 // modeled seconds added (Delay kind only)
	Bit   int     // bit offset within the written frame to flip (BitFlip only)
}

func (f Fault) String() string {
	switch f.Kind {
	case Delay:
		return fmt.Sprintf("delay rank %d by %gs at %s #%d", f.Rank, f.Delay, f.Point, f.N)
	case Drop, Duplicate:
		tag := "any tag"
		if f.Tag != AnyTag {
			tag = fmt.Sprintf("tag %d", f.Tag)
		}
		return fmt.Sprintf("%s rank %d's send #%d (%s)", f.Kind, f.Rank, f.N, tag)
	case TornWrite:
		return fmt.Sprintf("torn-write of rank %d's checkpoint save #%d", f.Rank, f.N)
	case BitFlip:
		return fmt.Sprintf("bit-flip (bit %d) of rank %d's checkpoint save #%d", f.Bit, f.Rank, f.N)
	default:
		return fmt.Sprintf("%s rank %d at %s #%d", f.Kind, f.Rank, f.Point, f.N)
	}
}

// Plan is a deterministic set of faults armed on a world before Run.
// The same plan on the same program always fires at the same operations.
type Plan struct {
	Faults []Fault
}

// NewPlan bundles faults into a plan.
func NewPlan(fs ...Fault) *Plan { return &Plan{Faults: fs} }

// CrashAt plans a crash of rank at its n-th operation matching p.
func CrashAt(rank int, p Point, n int) Fault {
	return Fault{Kind: Crash, Rank: rank, Point: p, N: n, Tag: AnyTag}
}

// DelayAt plans a straggler: rank's modeled clock jumps by seconds at its
// n-th operation matching p.
func DelayAt(rank int, p Point, n int, seconds float64) Fault {
	return Fault{Kind: Delay, Rank: rank, Point: p, N: n, Tag: AnyTag, Delay: seconds}
}

// DropAt plans the loss of rank's n-th sent message matching tag
// (AnyTag matches all).
func DropAt(rank, n, tag int) Fault {
	return Fault{Kind: Drop, Rank: rank, Point: SendOp, N: n, Tag: tag}
}

// DuplicateAt plans the duplication of rank's n-th sent message matching
// tag (AnyTag matches all).
func DuplicateAt(rank, n, tag int) Fault {
	return Fault{Kind: Duplicate, Rank: rank, Point: SendOp, N: n, Tag: tag}
}

// TornWriteAt plans the mid-frame truncation of rank's n-th durable
// checkpoint save (DiskStore only).
func TornWriteAt(rank, n int) Fault {
	return Fault{Kind: TornWrite, Rank: rank, N: n, Tag: AnyTag}
}

// BitFlipAt plans a single-bit on-disk corruption of rank's n-th durable
// checkpoint save, flipping the given bit offset within the written
// frame (DiskStore only).
func BitFlipAt(rank, n, bit int) Fault {
	return Fault{Kind: BitFlip, Rank: rank, N: n, Tag: AnyTag, Bit: bit}
}

// DiskFault reports whether the kind is interpreted by the durable
// checkpoint store rather than the message-passing runtime.
func (k Kind) DiskFault() bool { return k == TornWrite || k == BitFlip }

// Random derives a reproducible single-fault plan from a seed: one fault
// of a random kind on a random rank (of ranks), triggering within the
// first maxOp matching operations. The same seed always yields the same
// plan.
func Random(seed uint64, ranks, maxOp int) *Plan {
	if ranks < 1 || maxOp < 1 {
		panic("fault: Random needs ranks >= 1 and maxOp >= 1")
	}
	rng := rand.New(rand.NewSource(int64(seed)))
	rank := rng.Intn(ranks)
	n := 1 + rng.Intn(maxOp)
	switch rng.Intn(4) {
	case 0:
		return NewPlan(CrashAt(rank, CollStart, n))
	case 1:
		return NewPlan(DelayAt(rank, AnyOp, n, 0.5+rng.Float64()))
	case 2:
		return NewPlan(DropAt(rank, n, AnyTag))
	default:
		return NewPlan(DuplicateAt(rank, n, AnyTag))
	}
}

// Event records one fired fault: which fault, where in the rank's
// operation stream, and the rank's modeled clock at that moment.
type Event struct {
	Kind  Kind    `json:"kind"`
	Rank  int     `json:"rank"`
	Op    int64   `json:"op"`    // 1-based index in the rank's operation stream
	Tag   int     `json:"tag"`   // tag of the operation the fault fired on
	Clock float64 `json:"clock"` // rank's modeled clock when it fired
}

func (e Event) String() string {
	return fmt.Sprintf("%s on rank %d at op %d (clock %.6fs)", e.Kind, e.Rank, e.Op, e.Clock)
}

// Sentinel errors a bounded-wait receive fails with; wrap-checked via
// errors.Is on the *Error the runtime raises.
var (
	// ErrRankDead: the expected sender crashed (or finished) and the
	// message can never arrive.
	ErrRankDead = errors.New("rank dead")
	// ErrTimeout: the receive's real-time bound expired with no message.
	ErrTimeout = errors.New("receive timeout")
	// ErrAborted: a peer entered recovery; this rank must abandon the
	// current operation and join the recovery epoch.
	ErrAborted = errors.New("aborted for recovery")
)

// Error is the typed failure a bounded-wait receive raises (as a panic,
// matching the substrate's panic-on-protocol-error convention) instead of
// hanging. Builders recover it at protected boundaries and run recovery.
type Error struct {
	Op     string // operation that failed, e.g. "recv"
	Waiter int    // world rank that was waiting
	Rank   int    // world rank waited on (-1 when not attributable)
	Comm   string // communicator identity
	Tag    int
	Cause  string // how the waited-on rank ended, when known
	Err    error  // ErrRankDead, ErrTimeout or ErrAborted
}

func (e *Error) Error() string {
	s := fmt.Sprintf("fault: %s on comm %q tag %d: rank %d waiting", e.Op, e.Comm, e.Tag, e.Waiter)
	if e.Rank >= 0 {
		s += fmt.Sprintf(" on rank %d", e.Rank)
	}
	s += ": " + e.Err.Error()
	if e.Cause != "" {
		s += " (" + e.Cause + ")"
	}
	return s
}

func (e *Error) Unwrap() error { return e.Err }

// AsError reports whether a recovered panic value is a fault error.
func AsError(v any) (*Error, bool) {
	e, ok := v.(*Error)
	return e, ok
}

// Crashed is the panic value that kills a rank under an injected Crash
// fault. The runtime recognizes it as expected (recorded, not re-raised);
// recovery code must re-panic it so the dying rank actually dies.
type Crashed struct{ Rank int }

func (c Crashed) String() string { return fmt.Sprintf("injected crash of rank %d", c.Rank) }
