package fault

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func ckpt(id string, rank int, parts []int, data string) *Checkpoint {
	return &Checkpoint{ID: id, Rank: rank, Participants: parts, Meta: "m:" + id, Data: []byte(data)}
}

// TestDiskStoreRestartRoundtrip is the durable commit rule across a full
// process restart: everything a MemStore would answer in-process, a
// reopened DiskStore answers identically from disk — including the
// partially saved newest cut being skipped.
func TestDiskStoreRestartRoundtrip(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	parts := []int{0, 1}
	s.Save(ckpt("init:w", 0, parts, "block0"))
	s.Save(ckpt("init:w", 1, parts, "block1"))
	s.Save(ckpt("level:w:1", 0, parts, "rows0"))
	s.Save(ckpt("level:w:1", 1, parts, "rows1"))
	// The crash cut: only rank 0 saved level 2 — not committed.
	s.Save(ckpt("level:w:2", 0, parts, "rows0b"))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// "Process restart": reopen from disk only.
	r, err := OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if notes := r.Notes(); len(notes) != 0 {
		t.Fatalf("clean store reopened with notes: %v", notes)
	}
	if got := r.Latest(0); got == nil || got.ID != "level:w:2" {
		t.Fatalf("Latest(0) = %v, want the uncommitted level:w:2", got)
	}
	if got := r.Effective(0); got == nil || got.ID != "level:w:1" {
		t.Fatalf("Effective(0) = %v, want the committed level:w:1", got)
	}
	cut := r.EffectiveCut()
	if cut == nil || cut.ID != "level:w:1" || cut.Rank != 0 {
		t.Fatalf("EffectiveCut = %v, want level:w:1 canonical rank 0", cut)
	}
	got := r.Get(1, "level:w:1")
	if got == nil || string(got.Data) != "rows1" || got.Meta != "m:level:w:1" {
		t.Fatalf("Get(1, level:w:1) = %v, want rows1 with metadata", got)
	}
	if n := r.CountPrefix(0, "level:"); n != 2 {
		t.Fatalf("CountPrefix(0, level:) = %d, want 2", n)
	}
	// The reopened store keeps appending where the old one stopped.
	r.Save(ckpt("level:w:2", 1, parts, "rows1b"))
	if cut := r.EffectiveCut(); cut == nil || cut.ID != "level:w:2" {
		t.Fatalf("after completing the cut, EffectiveCut = %v, want level:w:2", cut)
	}
}

// TestDiskStoreTornWrite: an injected torn write leaves a partial
// unacknowledged frame; on reload it never happened, and the next save of
// the same process overwrites the torn tail without corrupting the chain.
func TestDiskStoreTornWrite(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.SetFaultPlan(NewPlan(TornWriteAt(0, 2)))
	parts := []int{0}
	s.Save(ckpt("a", 0, parts, "one"))
	s.Save(ckpt("b", 0, parts, "two")) // torn: half the frame, no manifest ack
	if io := s.DiskIO(); io.TornWrites != 1 {
		t.Fatalf("TornWrites = %d, want 1", io.TornWrites)
	}
	s.Save(ckpt("c", 0, parts, "three")) // overwrites the torn tail
	s.Close()

	r, err := OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := r.Get(0, "b"); got != nil {
		t.Fatalf("torn frame resurfaced after reload: %v", got)
	}
	if got := r.Latest(0); got == nil || got.ID != "c" || string(got.Data) != "three" {
		t.Fatalf("Latest(0) = %v, want c/three (append after torn tail)", got)
	}
	if notes := r.Notes(); len(notes) != 0 {
		t.Fatalf("torn write must be invisible, got notes %v", notes)
	}
}

// TestDiskStoreTornWriteMidProcess: before the process dies, its own
// in-memory mirror still answers for the torn save (the writer saw Save
// return); only the restart discovers the frame is gone. This mirrors
// what a real buffered write loses at power-off.
func TestDiskStoreTornWriteMidProcess(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.SetFaultPlan(NewPlan(TornWriteAt(0, 1)))
	s.Save(ckpt("a", 0, []int{0}, "one"))
	if got := s.Get(0, "a"); got == nil {
		t.Fatal("the running process must still see its torn save")
	}
}

// TestDiskStoreBitFlip: an acknowledged frame whose payload rots on disk
// fails its CRC at reload; the chain is truncated at the last good frame
// with a note, and later appends land on the good prefix.
func TestDiskStoreBitFlip(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.SetFaultPlan(NewPlan(BitFlipAt(0, 2, 37)))
	parts := []int{0}
	s.Save(ckpt("a", 0, parts, "one"))
	s.Save(ckpt("b", 0, parts, "two")) // acknowledged, then flipped on disk
	s.Save(ckpt("c", 0, parts, "three"))
	if io := s.DiskIO(); io.BitFlips != 1 {
		t.Fatalf("BitFlips = %d, want 1", io.BitFlips)
	}
	s.Close()

	r, err := OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	notes := r.Notes()
	if len(notes) != 1 || !strings.Contains(notes[0], "rank 0 chain") {
		t.Fatalf("want one corruption note for rank 0, got %v", notes)
	}
	if io := r.DiskIO(); io.CorruptFrames != 1 {
		t.Fatalf("CorruptFrames = %d, want 1", io.CorruptFrames)
	}
	// Chain truncated at the corrupt frame: "c" (saved after it) is gone too.
	if got := r.Latest(0); got == nil || got.ID != "a" {
		t.Fatalf("Latest(0) = %v, want the pre-corruption frame a", got)
	}
	// New appends extend the good prefix and survive another reload.
	r.Save(ckpt("d", 0, parts, "four"))
	r.Close()
	r2, err := OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if got := r2.Latest(0); got == nil || got.ID != "d" {
		t.Fatalf("after re-append, Latest(0) = %v, want d", got)
	}
	if notes := r2.Notes(); len(notes) != 0 {
		t.Fatalf("re-marked chain must reload clean, got notes %v", notes)
	}
}

// TestDiskStorePlanSplit: one plan feeds both the substrate and the store;
// each side arms only its own kinds.
func TestDiskStorePlanSplit(t *testing.T) {
	s, err := OpenDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	plan := NewPlan(
		CrashAt(1, CollStart, 3),
		TornWriteAt(0, 1),
		DropAt(2, 1, AnyTag),
	)
	s.SetFaultPlan(plan)
	if len(s.armed) != 1 || s.armed[0].f.Kind != TornWrite {
		t.Fatalf("store armed %d faults, want just the TornWrite", len(s.armed))
	}
	if !TornWrite.DiskFault() || !BitFlip.DiskFault() || Crash.DiskFault() || Drop.DiskFault() {
		t.Fatal("DiskFault kind classification is wrong")
	}
}

// TestDiskStoreBadManifest: a directory whose manifest is not a
// checkpoint manifest is rejected with a typed error, not a fresh store
// silently shadowing the data.
func TestDiskStoreBadManifest(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, manifestName), []byte(`{"format":"something-else"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDiskStore(dir); err == nil {
		t.Fatal("OpenDiskStore accepted a foreign manifest")
	}
}
