package fault

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// On-disk layout of a DiskStore directory:
//
//	chain-<rank>.ckpt   append-only frame chain, one file per world rank
//	MANIFEST.json       atomically replaced after every acknowledged save
//
// Each frame is length-prefixed and CRC32C-framed:
//
//	magic   [4]byte  "PTCK"
//	len     uint32   payload length (little-endian)
//	crc     uint32   CRC32C (Castagnoli) of the payload
//	payload []byte   seq u64 | idLen u32 | id | rank u32 | nPart u32 |
//	                 part u32 × nPart | metaLen u32 | meta | dataLen u32 | data
//
// The manifest records, per chain, how many bytes and frames have been
// durably acknowledged: a write that tore mid-frame (power loss, injected
// TornWrite) leaves bytes past the manifest mark, which reload ignores —
// the frame simply never happened, and the commit rule falls back to the
// previous consistent cut. A frame the manifest acknowledges but whose
// CRC no longer matches (bit rot, injected BitFlip) truncates that rank's
// chain at the last good frame on reload, with the corruption recorded in
// Notes; again the commit rule lands on the newest cut that survives.

const (
	frameMagic     = "PTCK"
	frameHdrLen    = 12      // magic + len + crc
	maxFramePay    = 1 << 30 // sanity bound on a single payload
	maxFrameParts  = 1 << 20 // sanity bound on participant count
	manifestName   = "MANIFEST.json"
	manifestFormat = "partree-checkpoint-manifest"
)

// Typed decode errors. The frame/manifest decoders return these (wrapped
// with position context) on hostile or truncated input — never a panic.
var (
	ErrBadMagic    = errors.New("checkpoint frame: bad magic")
	ErrTruncated   = errors.New("checkpoint frame: truncated")
	ErrFrameSize   = errors.New("checkpoint frame: implausible length")
	ErrChecksum    = errors.New("checkpoint frame: CRC32C mismatch")
	ErrBadFrame    = errors.New("checkpoint frame: malformed payload")
	ErrBadManifest = errors.New("checkpoint manifest: malformed")
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// manifest is the JSON chain index. Chains is keyed by decimal rank.
type manifest struct {
	Format  string                `json:"format"`
	Version int                   `json:"version"`
	Seq     int64                 `json:"seq"`
	Chains  map[string]*chainMark `json:"chains"`
}

type chainMark struct {
	Bytes  int64 `json:"bytes"`
	Frames int64 `json:"frames"`
}

// DiskStats summarizes durable I/O separately from the logical
// StoreStats: bytes that actually crossed the disk boundary, plus what
// the corruption injectors and the reload scrubber saw.
type DiskStats struct {
	WrittenB      int64 // frame + manifest bytes written
	ReadB         int64 // frame bytes read back at Open
	Syncs         int64 // fsync calls
	TornWrites    int64 // injected torn writes
	BitFlips      int64 // injected bit flips
	CorruptFrames int64 // frames rejected at reload (CRC/decode failures)
}

// DiskStore is the durable Store: per-rank CRC32C-framed chain files plus
// an atomically replaced manifest, surviving a hard process crash. All
// methods are safe for concurrent use. Queries are served from an
// in-memory mirror that is rebuilt from disk by OpenDiskStore.
type DiskStore struct {
	mu     sync.Mutex
	dir    string
	mem    *MemStore
	man    manifest
	files  map[int]*os.File
	armed  []*armedDiskFault
	saves  map[int]int
	dstats DiskStats
	notes  []string
}

type armedDiskFault struct {
	f     Fault
	fired bool
}

// OpenDiskStore opens (creating if absent) a durable checkpoint store in
// dir. Existing chains are reloaded up to their manifest marks; frames
// that fail their CRC or decode truncate that rank's chain at the last
// good frame, recorded in Notes. A malformed manifest is a hard error —
// the directory is not a checkpoint store.
func OpenDiskStore(dir string) (*DiskStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("fault: open disk store: %w", err)
	}
	s := &DiskStore{
		dir:   dir,
		mem:   NewStore(),
		man:   manifest{Format: manifestFormat, Version: 1, Chains: make(map[string]*chainMark)},
		files: make(map[int]*os.File),
		saves: make(map[int]int),
	}
	raw, err := os.ReadFile(filepath.Join(dir, manifestName))
	if errors.Is(err, os.ErrNotExist) {
		return s, nil
	}
	if err != nil {
		return nil, fmt.Errorf("fault: open disk store: %w", err)
	}
	man, err := decodeManifest(raw)
	if err != nil {
		return nil, err
	}
	s.man = *man
	var all []*Checkpoint
	maxSeq := man.Seq
	for key, mark := range man.Chains {
		var rank int
		if _, err := fmt.Sscanf(key, "%d", &rank); err != nil || rank < 0 {
			return nil, fmt.Errorf("%w: chain key %q", ErrBadManifest, key)
		}
		raw, err := os.ReadFile(s.chainPath(rank))
		if err != nil && !errors.Is(err, os.ErrNotExist) {
			return nil, fmt.Errorf("fault: open disk store: %w", err)
		}
		if int64(len(raw)) > mark.Bytes {
			raw = raw[:mark.Bytes] // unacknowledged (torn) tail: never happened
		}
		cps, n, derr := decodeChain(raw)
		s.dstats.ReadB += n
		if derr != nil {
			s.dstats.CorruptFrames++
			s.notes = append(s.notes,
				fmt.Sprintf("rank %d chain: frame %d at offset %d rejected: %v (chain truncated there)",
					rank, len(cps), n, derr))
			// The on-disk tail past the corrupt frame is unusable: re-mark
			// the chain at the good prefix so future appends land there.
			s.man.Chains[key] = &chainMark{Bytes: n, Frames: int64(len(cps))}
		}
		for _, cp := range cps {
			if cp.seq > maxSeq {
				maxSeq = cp.seq
			}
		}
		all = append(all, cps...)
	}
	// Rebuild the mirror in global save order; restore-time reads must not
	// count as saves, so the chains are populated directly.
	sort.Slice(all, func(i, j int) bool { return all[i].seq < all[j].seq })
	for _, cp := range all {
		s.mem.chains[cp.Rank] = append(s.mem.chains[cp.Rank], cp)
		s.mem.log = append(s.mem.log, cp)
	}
	s.mem.seq = maxSeq
	s.man.Seq = maxSeq
	return s, nil
}

// Dir returns the store's directory.
func (s *DiskStore) Dir() string { return s.dir }

// Durable marks this store as backed by stable storage; the builders use
// it to decide whether checkpoint traffic is charged to the disk cost
// class.
func (s *DiskStore) Durable() bool { return true }

// Notes returns human-readable corruption findings from reload.
func (s *DiskStore) Notes() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.notes...)
}

// DiskIO returns cumulative durable-I/O statistics.
func (s *DiskStore) DiskIO() DiskStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dstats
}

// SetFaultPlan arms the plan's disk faults (TornWrite, BitFlip) on this
// store; kinds the message-passing runtime owns are ignored so one plan
// can be handed to both. Fault.N counts the rank's Save calls, 1-based.
func (s *DiskStore) SetFaultPlan(plan *Plan) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.armed = nil
	if plan == nil {
		return
	}
	for _, f := range plan.Faults {
		if !f.Kind.DiskFault() {
			continue
		}
		if f.N < 1 {
			panic(fmt.Sprintf("fault: disk fault needs N >= 1: %v", f))
		}
		if f.Rank < 0 {
			panic(fmt.Sprintf("fault: disk fault needs Rank >= 0: %v", f))
		}
		s.armed = append(s.armed, &armedDiskFault{f: f})
	}
}

// Close closes the chain files. The store must not be used afterwards.
func (s *DiskStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	for _, f := range s.files {
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
	}
	s.files = make(map[int]*os.File)
	return first
}

// Save appends cp to its rank's durable chain: frame write + fsync, then
// an atomic manifest replace acknowledging it. An armed TornWrite leaves
// a partial unacknowledged frame instead; an armed BitFlip corrupts the
// frame on disk after acknowledging it. The in-memory mirror always
// records the save — the running process saw it succeed; only a restart
// discovers what the disk really holds. I/O errors panic: a build cannot
// meaningfully continue when its stable store is gone.
func (s *DiskStore) Save(cp *Checkpoint) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.saves[cp.Rank]++
	af := s.matchDiskFault(cp.Rank)
	s.mem.Save(cp) // assigns cp.seq
	frame := encodeFrame(cp)
	f := s.chainFile(cp.Rank)
	key := fmt.Sprintf("%d", cp.Rank)
	mark := s.man.Chains[key]
	if mark == nil {
		mark = &chainMark{}
		s.man.Chains[key] = mark
	}
	// A previous torn write may have left unacknowledged bytes; the next
	// append overwrites from the acknowledged mark.
	if af != nil && af.f.Kind == TornWrite {
		n := len(frame) / 2
		s.mustWrite(f, frame[:n], mark.Bytes)
		s.mustSync(f)
		s.dstats.WrittenB += int64(n)
		s.dstats.TornWrites++
		return // manifest untouched: the frame was never acknowledged
	}
	s.mustWrite(f, frame, mark.Bytes)
	if af != nil && af.f.Kind == BitFlip {
		// Flip a bit inside the payload region so the CRC must catch it.
		off := frameHdrLen + (af.f.Bit/8)%(len(frame)-frameHdrLen)
		var b [1]byte
		if _, err := f.ReadAt(b[:], mark.Bytes+int64(off)); err != nil {
			panic(fmt.Sprintf("fault: disk store read-back %s: %v", s.chainPath(cp.Rank), err))
		}
		b[0] ^= 1 << (af.f.Bit % 8)
		s.mustWrite(f, b[:], mark.Bytes+int64(off))
		s.dstats.BitFlips++
	}
	s.mustSync(f)
	s.dstats.WrittenB += int64(len(frame))
	mark.Bytes += int64(len(frame))
	mark.Frames++
	s.man.Seq = cp.seq
	s.writeManifestLocked()
}

func (s *DiskStore) matchDiskFault(rank int) *armedDiskFault {
	for _, af := range s.armed {
		if !af.fired && af.f.Rank == rank && af.f.N == s.saves[rank] {
			af.fired = true
			return af
		}
	}
	return nil
}

func (s *DiskStore) chainPath(rank int) string {
	return filepath.Join(s.dir, fmt.Sprintf("chain-%d.ckpt", rank))
}

func (s *DiskStore) chainFile(rank int) *os.File {
	if f, ok := s.files[rank]; ok {
		return f
	}
	f, err := os.OpenFile(s.chainPath(rank), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		panic(fmt.Sprintf("fault: disk store open %s: %v", s.chainPath(rank), err))
	}
	s.files[rank] = f
	return f
}

func (s *DiskStore) mustWrite(f *os.File, b []byte, off int64) {
	if _, err := f.WriteAt(b, off); err != nil {
		panic(fmt.Sprintf("fault: disk store write %s: %v", f.Name(), err))
	}
}

func (s *DiskStore) mustSync(f *os.File) {
	if err := f.Sync(); err != nil {
		panic(fmt.Sprintf("fault: disk store fsync %s: %v", f.Name(), err))
	}
	s.dstats.Syncs++
}

// writeManifestLocked atomically replaces the manifest: temp file, fsync,
// rename, directory fsync.
func (s *DiskStore) writeManifestLocked() {
	data, err := json.Marshal(&s.man)
	if err != nil {
		panic(fmt.Sprintf("fault: disk store manifest encode: %v", err))
	}
	data = append(data, '\n')
	tmp := filepath.Join(s.dir, manifestName+".tmp")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		panic(fmt.Sprintf("fault: disk store manifest: %v", err))
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		panic(fmt.Sprintf("fault: disk store manifest write: %v", err))
	}
	s.mustSync(f)
	if err := f.Close(); err != nil {
		panic(fmt.Sprintf("fault: disk store manifest close: %v", err))
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, manifestName)); err != nil {
		panic(fmt.Sprintf("fault: disk store manifest rename: %v", err))
	}
	s.dstats.WrittenB += int64(len(data))
	if d, err := os.Open(s.dir); err == nil {
		d.Sync() // best-effort: not all filesystems support directory fsync
		d.Close()
	}
}

// The query side delegates to the reloaded/live mirror.

func (s *DiskStore) Latest(rank int) *Checkpoint       { return s.mem.Latest(rank) }
func (s *DiskStore) Effective(rank int) *Checkpoint    { return s.mem.Effective(rank) }
func (s *DiskStore) EffectiveCut() *Checkpoint         { return s.mem.EffectiveCut() }
func (s *DiskStore) Get(rank int, id string) *Checkpoint { return s.mem.Get(rank, id) }
func (s *DiskStore) CountPrefix(rank int, prefix string) int {
	return s.mem.CountPrefix(rank, prefix)
}
func (s *DiskStore) Stats() StoreStats { return s.mem.Stats() }

func (s *DiskStore) String() string {
	st := s.Stats()
	d := s.DiskIO()
	return fmt.Sprintf("%s; disk %.2f MB written, %.2f MB reloaded, %d fsyncs",
		st, float64(d.WrittenB)/1e6, float64(d.ReadB)/1e6, d.Syncs)
}

// --- frame and manifest codecs ---

// encodeFrame serializes one checkpoint as a CRC32C frame.
func encodeFrame(cp *Checkpoint) []byte {
	pay := make([]byte, 0, 8+4+len(cp.ID)+4+4+4*len(cp.Participants)+4+len(cp.Meta)+4+len(cp.Data))
	pay = binary.LittleEndian.AppendUint64(pay, uint64(cp.seq))
	pay = binary.LittleEndian.AppendUint32(pay, uint32(len(cp.ID)))
	pay = append(pay, cp.ID...)
	pay = binary.LittleEndian.AppendUint32(pay, uint32(cp.Rank))
	pay = binary.LittleEndian.AppendUint32(pay, uint32(len(cp.Participants)))
	for _, p := range cp.Participants {
		pay = binary.LittleEndian.AppendUint32(pay, uint32(p))
	}
	pay = binary.LittleEndian.AppendUint32(pay, uint32(len(cp.Meta)))
	pay = append(pay, cp.Meta...)
	pay = binary.LittleEndian.AppendUint32(pay, uint32(len(cp.Data)))
	pay = append(pay, cp.Data...)

	frame := make([]byte, 0, frameHdrLen+len(pay))
	frame = append(frame, frameMagic...)
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(pay)))
	frame = binary.LittleEndian.AppendUint32(frame, crc32.Checksum(pay, castagnoli))
	frame = append(frame, pay...)
	return frame
}

// decodeFrame decodes one frame from the front of b, returning the
// checkpoint and the frame's total size. All failures are typed errors.
func decodeFrame(b []byte) (*Checkpoint, int, error) {
	if len(b) < frameHdrLen {
		return nil, 0, ErrTruncated
	}
	if string(b[:4]) != frameMagic {
		return nil, 0, ErrBadMagic
	}
	payLen := binary.LittleEndian.Uint32(b[4:8])
	if payLen > maxFramePay {
		return nil, 0, fmt.Errorf("%w: payload %d bytes", ErrFrameSize, payLen)
	}
	if len(b) < frameHdrLen+int(payLen) {
		return nil, 0, ErrTruncated
	}
	pay := b[frameHdrLen : frameHdrLen+int(payLen)]
	if crc32.Checksum(pay, castagnoli) != binary.LittleEndian.Uint32(b[8:12]) {
		return nil, 0, ErrChecksum
	}
	cp, err := decodePayload(pay)
	if err != nil {
		return nil, 0, err
	}
	return cp, frameHdrLen + int(payLen), nil
}

// decodePayload decodes a CRC-verified payload; structural violations
// return ErrBadFrame (the CRC passed, so this only fires on encoder bugs
// or adversarial input with a matching checksum).
func decodePayload(pay []byte) (*Checkpoint, error) {
	cur := payloadCursor{b: pay}
	seq := cur.u64()
	id := cur.bytes(int(cur.u32()))
	rank := cur.u32()
	nPart := cur.u32()
	if cur.err == nil && nPart > maxFrameParts {
		return nil, fmt.Errorf("%w: %d participants", ErrBadFrame, nPart)
	}
	var parts []int
	for i := uint32(0); cur.err == nil && i < nPart; i++ {
		parts = append(parts, int(cur.u32()))
	}
	meta := cur.bytes(int(cur.u32()))
	data := cur.bytes(int(cur.u32()))
	if cur.err != nil {
		return nil, cur.err
	}
	if len(cur.b) != cur.off {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadFrame, len(cur.b)-cur.off)
	}
	return &Checkpoint{
		ID:           string(id),
		Rank:         int(rank),
		Participants: parts,
		Meta:         string(meta),
		Data:         append([]byte(nil), data...),
		seq:          int64(seq),
	}, nil
}

// payloadCursor is a bounds-checked little-endian reader; the first
// violation latches err and subsequent reads return zero values.
type payloadCursor struct {
	b   []byte
	off int
	err error
}

func (c *payloadCursor) u32() uint32 {
	if c.err != nil {
		return 0
	}
	if c.off+4 > len(c.b) {
		c.err = fmt.Errorf("%w: truncated field at offset %d", ErrBadFrame, c.off)
		return 0
	}
	v := binary.LittleEndian.Uint32(c.b[c.off:])
	c.off += 4
	return v
}

func (c *payloadCursor) u64() uint64 {
	if c.err != nil {
		return 0
	}
	if c.off+8 > len(c.b) {
		c.err = fmt.Errorf("%w: truncated field at offset %d", ErrBadFrame, c.off)
		return 0
	}
	v := binary.LittleEndian.Uint64(c.b[c.off:])
	c.off += 8
	return v
}

func (c *payloadCursor) bytes(n int) []byte {
	if c.err != nil {
		return nil
	}
	if n < 0 || c.off+n > len(c.b) {
		c.err = fmt.Errorf("%w: %d-byte field at offset %d overruns payload", ErrBadFrame, n, c.off)
		return nil
	}
	v := c.b[c.off : c.off+n]
	c.off += n
	return v
}

// decodeChain decodes consecutive frames from b, returning the decoded
// checkpoints, the byte length of the good prefix, and the error that
// stopped the scan (nil when the whole buffer decodes).
func decodeChain(b []byte) ([]*Checkpoint, int64, error) {
	var cps []*Checkpoint
	off := 0
	for off < len(b) {
		cp, n, err := decodeFrame(b[off:])
		if err != nil {
			return cps, int64(off), err
		}
		cps = append(cps, cp)
		off += n
	}
	return cps, int64(off), nil
}

// decodeManifest parses and validates the manifest JSON.
func decodeManifest(raw []byte) (*manifest, error) {
	var m manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadManifest, err)
	}
	if m.Format != manifestFormat {
		return nil, fmt.Errorf("%w: format %q", ErrBadManifest, m.Format)
	}
	if m.Version != 1 {
		return nil, fmt.Errorf("%w: version %d", ErrBadManifest, m.Version)
	}
	if m.Chains == nil {
		m.Chains = make(map[string]*chainMark)
	}
	for key, mark := range m.Chains {
		if mark == nil || mark.Bytes < 0 || mark.Frames < 0 {
			return nil, fmt.Errorf("%w: chain %q mark", ErrBadManifest, key)
		}
	}
	return &m, nil
}
