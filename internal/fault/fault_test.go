package fault

import (
	"errors"
	"reflect"
	"testing"
)

func TestRandomPlanDeterministic(t *testing.T) {
	for seed := uint64(1); seed < 50; seed++ {
		a := Random(seed, 8, 100)
		b := Random(seed, 8, 100)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: plans differ: %+v vs %+v", seed, a, b)
		}
		f := a.Faults[0]
		if f.Rank < 0 || f.Rank >= 8 {
			t.Fatalf("seed %d: rank %d out of range", seed, f.Rank)
		}
		if f.N < 1 || f.N > 100 {
			t.Fatalf("seed %d: trigger %d out of range", seed, f.N)
		}
	}
}

func TestErrorWrapping(t *testing.T) {
	e := &Error{Op: "recv", Waiter: 0, Rank: 2, Comm: "w", Tag: 5, Err: ErrRankDead, Cause: "injected crash"}
	if !errors.Is(e, ErrRankDead) {
		t.Fatal("errors.Is(ErrRankDead) = false")
	}
	if errors.Is(e, ErrTimeout) {
		t.Fatal("errors.Is(ErrTimeout) = true")
	}
	if got, ok := AsError(any(e)); !ok || got != e {
		t.Fatal("AsError failed on *Error")
	}
	if _, ok := AsError("boom"); ok {
		t.Fatal("AsError matched a plain panic value")
	}
	want := `fault: recv on comm "w" tag 5: rank 0 waiting on rank 2: rank dead (injected crash)`
	if e.Error() != want {
		t.Fatalf("Error() = %q, want %q", e.Error(), want)
	}
}

// TestStoreCommitRule: a checkpoint becomes effective only once every
// participant saved the same ID, so a crash mid-boundary rolls everyone
// back to the previous consistent cut.
func TestStoreCommitRule(t *testing.T) {
	s := NewStore()
	parts := []int{0, 1, 2}
	for _, r := range parts {
		s.Save(&Checkpoint{ID: "level:w:0", Rank: r, Participants: parts, Data: []byte{byte(r)}})
	}
	// Partial second boundary: only ranks 0 and 1 saved before the crash.
	for _, r := range parts[:2] {
		s.Save(&Checkpoint{ID: "level:w:1", Rank: r, Participants: parts, Data: []byte{10 + byte(r)}})
	}
	for _, r := range parts[:2] {
		cp := s.Effective(r)
		if cp == nil || cp.ID != "level:w:0" {
			t.Fatalf("rank %d effective = %v, want the committed level 0", r, cp)
		}
	}
	if cp := s.Latest(0); cp == nil || cp.ID != "level:w:1" {
		t.Fatalf("Latest(0) = %v, want the partial level 1", cp)
	}
	// Rank 2 completes the boundary: level 1 commits for everyone.
	s.Save(&Checkpoint{ID: "level:w:1", Rank: 2, Participants: parts, Data: []byte{12}})
	for _, r := range parts {
		cp := s.Effective(r)
		if cp == nil || cp.ID != "level:w:1" {
			t.Fatalf("rank %d effective after completion = %v, want level 1", r, cp)
		}
	}
	if got := s.CountPrefix(0, "level:w:"); got != 2 {
		t.Fatalf("CountPrefix = %d, want 2", got)
	}
	st := s.Stats()
	if st.Checkpoints != 6 || st.Restores == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestEffectiveNilWithoutCommit(t *testing.T) {
	s := NewStore()
	s.Save(&Checkpoint{ID: "init:w:0", Rank: 0, Participants: []int{0, 1}})
	if cp := s.Effective(0); cp != nil {
		t.Fatalf("effective = %v, want nil (rank 1 never saved)", cp)
	}
	if cp := s.Effective(5); cp != nil {
		t.Fatalf("effective of unknown rank = %v, want nil", cp)
	}
}
