package fault

import (
	"bytes"
	"testing"
)

// FuzzReadCheckpoint feeds hostile bytes to every decoder a reopened
// DiskStore runs untrusted input through — frame, chain and manifest —
// and asserts the contract the recovery path depends on: decoding never
// panics, failures are typed errors, and anything a decoder accepts
// re-encodes to the identical frame (so a reloaded chain cannot drift).
func FuzzReadCheckpoint(f *testing.F) {
	good := encodeFrame(&Checkpoint{
		ID:           "level:w:3",
		Rank:         2,
		Participants: []int{0, 1, 2, 3},
		Meta:         "level 3: 4 items, 1000 rows",
		Data:         []byte("payload-bytes"),
		seq:          7,
	})
	f.Add(good)
	f.Add(append(append([]byte{}, good...), good...)) // two-frame chain
	f.Add(good[:len(good)/2])                         // torn frame
	f.Add([]byte("PTCK"))                             // header cut short
	f.Add([]byte("NOPE1234567890"))                   // bad magic
	f.Add([]byte(`{"format":"partree-checkpoint-manifest","version":1,"chains":{"0":{"bytes":12,"frames":1}}}`))
	f.Add([]byte{})
	corrupt := append([]byte{}, good...)
	corrupt[len(corrupt)-1] ^= 0x40 // payload bit flip: CRC must catch it
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, b []byte) {
		cp, n, err := decodeFrame(b)
		if err == nil {
			if cp == nil || n <= 0 || n > len(b) {
				t.Fatalf("decodeFrame accepted %d bytes with cp=%v n=%d", len(b), cp, n)
			}
			if re := encodeFrame(cp); !bytes.Equal(re, b[:n]) {
				t.Fatalf("round-trip drift: decoded frame re-encodes to %d bytes != input %d", len(re), n)
			}
		} else if cp != nil {
			t.Fatal("decodeFrame returned both a checkpoint and an error")
		}

		cps, good, err := decodeChain(b)
		if int(good) > len(b) {
			t.Fatalf("decodeChain good prefix %d exceeds input %d", good, len(b))
		}
		if err == nil && int(good) != len(b) {
			t.Fatalf("decodeChain reported success but consumed %d of %d bytes", good, len(b))
		}
		for _, cp := range cps {
			if cp == nil {
				t.Fatal("decodeChain returned a nil checkpoint")
			}
		}

		if m, err := decodeManifest(b); err == nil {
			for key, mark := range m.Chains {
				if mark == nil || mark.Bytes < 0 || mark.Frames < 0 {
					t.Fatalf("decodeManifest accepted invalid mark %v for %q", mark, key)
				}
			}
		}
	})
}
