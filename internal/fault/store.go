package fault

import (
	"fmt"
	"strings"
	"sync"
)

// Checkpoint is one rank's saved state at a recovery boundary. The
// builders encode whatever they need into Data (record frames for a
// synchronous level, a whole local dataset for a partition boundary);
// the store never interprets it.
//
// Checkpoints form a globally consistent cut through the commit rule: a
// checkpoint ID is *committed* once every listed participant has saved a
// checkpoint with that ID. Because every builder saves its boundary
// checkpoint before performing any message-passing operation of the
// protected region, a crash inside the region can only leave the newest
// ID partially saved — Effective skips it and lands on the last
// consistent cut.
type Checkpoint struct {
	ID           string // shared by all participants of one boundary
	Rank         int    // world rank that saved it
	Participants []int  // world ranks that must save this ID for it to commit
	Meta         string // human-readable description (level, row counts, ...)
	Data         []byte

	// seq is the store-assigned global save order, used to find the
	// newest committed cut across all chains (EffectiveCut). Durable
	// stores persist it so the order survives a process restart.
	seq int64
}

// StoreStats summarizes checkpoint traffic for overhead reporting.
type StoreStats struct {
	Checkpoints int64 // checkpoints saved
	Bytes       int64 // total payload bytes saved
	Restores    int64 // Effective lookups that returned a checkpoint
	RestoredB   int64 // payload bytes handed back by those lookups
}

// Store is the checkpoint API the recovery protocols run against. One
// store is shared by every rank of a run; implementations must be safe
// for concurrent use. NewStore returns the in-memory implementation;
// OpenDiskStore the durable one.
type Store interface {
	// Save appends cp to its rank's chain.
	Save(cp *Checkpoint)
	// Latest returns the newest checkpoint of rank, committed or not
	// (nil if the rank never saved).
	Latest(rank int) *Checkpoint
	// Effective returns the newest *committed* checkpoint of rank — the
	// rank's entry in the last globally consistent cut — or nil if none
	// is committed yet.
	Effective(rank int) *Checkpoint
	// EffectiveCut returns the newest committed checkpoint across all
	// chains — the canonical copy saved by the cut's lowest-numbered
	// participant — or nil. Process-restart resume uses it so ranks
	// that were not participants of the final cut (they died before it,
	// or are joining fresh) still agree on which cut to restore.
	EffectiveCut() *Checkpoint
	// Get returns rank's newest checkpoint with the given ID, provided
	// it is committed. Newest-wins: a resumed attempt re-saves boundary
	// IDs its previous incarnation already used, and the re-save is the
	// consistent one. Counts toward restore statistics when found.
	Get(rank int, id string) *Checkpoint
	// CountPrefix returns how many checkpoints of rank have an ID
	// starting with prefix.
	CountPrefix(rank int, prefix string) int
	// Stats returns cumulative checkpoint traffic.
	Stats() StoreStats
	// String summarizes the store for overhead reports.
	String() string
}

// MemStore holds per-rank checkpoint chains in process memory — fast,
// but gone on a process crash. All methods are safe for concurrent use.
type MemStore struct {
	mu     sync.Mutex
	chains map[int][]*Checkpoint
	log    []*Checkpoint // all saves in global order (EffectiveCut scan)
	seq    int64
	stats  StoreStats
}

// NewStore returns an empty in-memory checkpoint store.
func NewStore() *MemStore {
	return &MemStore{chains: make(map[int][]*Checkpoint)}
}

// Save appends cp to its rank's chain.
func (s *MemStore) Save(cp *Checkpoint) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	cp.seq = s.seq
	s.chains[cp.Rank] = append(s.chains[cp.Rank], cp)
	s.log = append(s.log, cp)
	s.stats.Checkpoints++
	s.stats.Bytes += int64(len(cp.Data))
}

// Latest returns the newest checkpoint of rank, committed or not (nil if
// the rank never saved).
func (s *MemStore) Latest(rank int) *Checkpoint {
	s.mu.Lock()
	defer s.mu.Unlock()
	ch := s.chains[rank]
	if len(ch) == 0 {
		return nil
	}
	return ch[len(ch)-1]
}

// Effective returns the newest *committed* checkpoint of rank — the
// rank's entry in the last globally consistent cut — or nil if none is
// committed yet.
func (s *MemStore) Effective(rank int) *Checkpoint {
	s.mu.Lock()
	defer s.mu.Unlock()
	ch := s.chains[rank]
	for i := len(ch) - 1; i >= 0; i-- {
		if s.committedLocked(ch[i]) {
			s.stats.Restores++
			s.stats.RestoredB += int64(len(ch[i].Data))
			return ch[i]
		}
	}
	return nil
}

// EffectiveCut returns the newest committed checkpoint across all chains.
// Scanning the global save log backward and returning the first committed
// entry is sound: a rank saves boundary k+1 only after boundary k, so
// every save of a later cut appears after that rank's save of any earlier
// cut, and the first committed entry found going backward belongs to the
// newest committed cut. The canonical copy returned is the one saved by
// the cut's lowest-numbered participant (deterministic across callers).
func (s *MemStore) EffectiveCut() *Checkpoint {
	s.mu.Lock()
	defer s.mu.Unlock()
	return effectiveCutLocked(s.log, s.chains, &s.stats)
}

func effectiveCutLocked(log []*Checkpoint, chains map[int][]*Checkpoint, stats *StoreStats) *Checkpoint {
	committed := func(cp *Checkpoint) bool {
		for _, r := range cp.Participants {
			found := false
			for _, c := range chains[r] {
				if c.ID == cp.ID {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	for i := len(log) - 1; i >= 0; i-- {
		cp := log[i]
		if !committed(cp) {
			continue
		}
		canon := cp.Rank
		for _, r := range cp.Participants {
			if r < canon {
				canon = r
			}
		}
		ch := chains[canon]
		for j := len(ch) - 1; j >= 0; j-- {
			if ch[j].ID == cp.ID {
				stats.Restores++
				stats.RestoredB += int64(len(ch[j].Data))
				return ch[j]
			}
		}
		return cp
	}
	return nil
}

// Get returns rank's newest checkpoint with the given ID, provided it is
// committed — the lookup restores a *specific* boundary, so an
// uncommitted (partially saved) ID is as absent as a never-saved one.
// The scan is backward (newest wins) because a resumed attempt re-saves
// boundary IDs a previous incarnation already wrote; the newest copy is
// the one belonging to the current consistent cut. Counts toward restore
// statistics when found.
func (s *MemStore) Get(rank int, id string) *Checkpoint {
	s.mu.Lock()
	defer s.mu.Unlock()
	ch := s.chains[rank]
	for i := len(ch) - 1; i >= 0; i-- {
		if ch[i].ID == id {
			if !s.committedLocked(ch[i]) {
				return nil
			}
			s.stats.Restores++
			s.stats.RestoredB += int64(len(ch[i].Data))
			return ch[i]
		}
	}
	return nil
}

// committedLocked: every participant's chain contains the ID.
func (s *MemStore) committedLocked(cp *Checkpoint) bool {
	for _, r := range cp.Participants {
		found := false
		for _, c := range s.chains[r] {
			if c.ID == cp.ID {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// CountPrefix returns how many checkpoints of rank have an ID starting
// with prefix. Builders use it to derive the deterministic sequence
// number of the next boundary on a communicator.
func (s *MemStore) CountPrefix(rank int, prefix string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, c := range s.chains[rank] {
		if strings.HasPrefix(c.ID, prefix) {
			n++
		}
	}
	return n
}

// Stats returns cumulative checkpoint traffic.
func (s *MemStore) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// String summarizes the store for overhead reports.
func (s *MemStore) String() string {
	return s.Stats().String()
}

func (st StoreStats) String() string {
	return fmt.Sprintf("%d checkpoints, %.2f MB saved, %d restores (%.2f MB)",
		st.Checkpoints, float64(st.Bytes)/1e6, st.Restores, float64(st.RestoredB)/1e6)
}
