package fault

import (
	"fmt"
	"strings"
	"sync"
)

// Checkpoint is one rank's saved state at a recovery boundary. The
// builders encode whatever they need into Data (record frames for a
// synchronous level, a whole local dataset for a partition boundary);
// the store never interprets it.
//
// Checkpoints form a globally consistent cut through the commit rule: a
// checkpoint ID is *committed* once every listed participant has saved a
// checkpoint with that ID. Because every builder saves its boundary
// checkpoint before performing any message-passing operation of the
// protected region, a crash inside the region can only leave the newest
// ID partially saved — Effective skips it and lands on the last
// consistent cut.
type Checkpoint struct {
	ID           string // shared by all participants of one boundary
	Rank         int    // world rank that saved it
	Participants []int  // world ranks that must save this ID for it to commit
	Meta         string // human-readable description (level, row counts, ...)
	Data         []byte
}

// StoreStats summarizes checkpoint traffic for overhead reporting.
type StoreStats struct {
	Checkpoints int64 // checkpoints saved
	Bytes       int64 // total payload bytes saved
	Restores    int64 // Effective lookups that returned a checkpoint
	RestoredB   int64 // payload bytes handed back by those lookups
}

// Store holds per-rank checkpoint chains. One store is shared by every
// rank of a run; all methods are safe for concurrent use.
type Store struct {
	mu     sync.Mutex
	chains map[int][]*Checkpoint
	stats  StoreStats
}

// NewStore returns an empty checkpoint store.
func NewStore() *Store {
	return &Store{chains: make(map[int][]*Checkpoint)}
}

// Save appends cp to its rank's chain.
func (s *Store) Save(cp *Checkpoint) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.chains[cp.Rank] = append(s.chains[cp.Rank], cp)
	s.stats.Checkpoints++
	s.stats.Bytes += int64(len(cp.Data))
}

// Latest returns the newest checkpoint of rank, committed or not (nil if
// the rank never saved).
func (s *Store) Latest(rank int) *Checkpoint {
	s.mu.Lock()
	defer s.mu.Unlock()
	ch := s.chains[rank]
	if len(ch) == 0 {
		return nil
	}
	return ch[len(ch)-1]
}

// Effective returns the newest *committed* checkpoint of rank — the
// rank's entry in the last globally consistent cut — or nil if none is
// committed yet.
func (s *Store) Effective(rank int) *Checkpoint {
	s.mu.Lock()
	defer s.mu.Unlock()
	ch := s.chains[rank]
	for i := len(ch) - 1; i >= 0; i-- {
		if s.committedLocked(ch[i]) {
			s.stats.Restores++
			s.stats.RestoredB += int64(len(ch[i].Data))
			return ch[i]
		}
	}
	return nil
}

// Get returns rank's checkpoint with the given ID, provided it is
// committed — the lookup restores a *specific* boundary, so an
// uncommitted (partially saved) ID is as absent as a never-saved one.
// Counts toward restore statistics when found.
func (s *Store) Get(rank int, id string) *Checkpoint {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, c := range s.chains[rank] {
		if c.ID == id {
			if !s.committedLocked(c) {
				return nil
			}
			s.stats.Restores++
			s.stats.RestoredB += int64(len(c.Data))
			return c
		}
	}
	return nil
}

// committedLocked: every participant's chain contains the ID.
func (s *Store) committedLocked(cp *Checkpoint) bool {
	for _, r := range cp.Participants {
		found := false
		for _, c := range s.chains[r] {
			if c.ID == cp.ID {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// CountPrefix returns how many checkpoints of rank have an ID starting
// with prefix. Builders use it to derive the deterministic sequence
// number of the next boundary on a communicator.
func (s *Store) CountPrefix(rank int, prefix string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, c := range s.chains[rank] {
		if strings.HasPrefix(c.ID, prefix) {
			n++
		}
	}
	return n
}

// Stats returns cumulative checkpoint traffic.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// String summarizes the store for overhead reports.
func (s *Store) String() string {
	st := s.Stats()
	return fmt.Sprintf("%d checkpoints, %.2f MB saved, %d restores (%.2f MB)",
		st.Checkpoints, float64(st.Bytes)/1e6, st.Restores, float64(st.RestoredB)/1e6)
}
