// Scaling: the paper's scaleup experiment (Figure 9) as a library user
// would run it — keep the per-processor load fixed and grow the machine;
// a scalable algorithm's runtime should stay nearly flat. The residual
// slope is the θ(P log P) isoefficiency of §4.3.
package main

import (
	"fmt"
	"log"

	"partree/internal/core"
	"partree/internal/mp"
	"partree/internal/quest"
	"partree/internal/tree"
)

const perProcessor = 8000

func main() {
	fmt.Printf("hybrid formulation, %d records per processor, per-node clustering\n\n", perProcessor)
	fmt.Printf("%6s %10s %14s %10s\n", "procs", "records", "modeled sec", "vs P=1")
	var base float64
	for _, p := range []int{1, 2, 4, 8, 16, 32} {
		n := perProcessor * p
		world := mp.NewWorld(p, mp.SP2())
		opts := core.Options{Tree: tree.Options{Binary: true}}
		world.Run(func(c *mp.Comm) {
			lo := c.Rank() * n / p
			hi := (c.Rank() + 1) * n / p
			local, err := quest.GenerateBlock(quest.Config{Function: 2, Seed: 5}, lo, hi)
			if err != nil {
				log.Fatal(err)
			}
			core.BuildHybrid(c, local, opts)
		})
		secs := world.MaxClock()
		if p == 1 {
			base = secs
		}
		fmt.Printf("%6d %10d %14.3f %9.2fx\n", p, n, secs, secs/base)
	}
	fmt.Println("\nan ideal scaleup curve is flat at 1.00x; θ(P log P) isoefficiency")
	fmt.Println("predicts the slow growth observed here (paper, Figure 9).")
}
