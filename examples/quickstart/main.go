// Quickstart: generate a synthetic training set, build a decision tree
// serially, then build it again with the paper's hybrid parallel
// formulation on a modeled 8-processor machine, and check that both trees
// are identical — the library's central guarantee.
package main

import (
	"fmt"
	"log"

	"partree/internal/core"
	"partree/internal/dataset"
	"partree/internal/discretize"
	"partree/internal/mp"
	"partree/internal/quest"
	"partree/internal/tree"
)

func main() {
	// 1. Generate 20,000 records of the SLIQ function-2 dataset and apply
	// the paper's uniform discretization.
	raw, err := quest.Generate(quest.Config{Function: 2, Seed: 7}, 20000)
	if err != nil {
		log.Fatal(err)
	}
	data := discretize.UniformPaper(raw, quest.PaperBins(), quest.Ranges())

	// 2. Serial reference: the breadth-first builder.
	opts := core.Options{Tree: tree.Options{Binary: true}}
	serial := tree.BuildBFS(data, opts.SerialOptions(data))
	st := serial.Stats()
	fmt.Printf("serial tree: %d nodes, %d leaves, depth %d, accuracy %.4f\n",
		st.Nodes, st.Leaves, st.MaxDepth, serial.Accuracy(data))

	// 3. Parallel: 8 modeled processors, each holding 1/8 of the records.
	t1 := buildHybrid(data, 1, opts, nil)
	var parallel *tree.Tree
	tp := buildHybrid(data, 8, opts, &parallel)
	fmt.Printf("hybrid: modeled %.3fs serial, %.3fs on 8 processors (speedup %.2f)\n", t1, tp, t1/tp)

	// 4. The parallel tree is identical to the serial one.
	if tree.Equal(serial, parallel) {
		fmt.Println("parallel tree is identical to the serial tree: OK")
	} else {
		log.Fatal("TREES DIFFER: ", tree.Diff(serial, parallel))
	}
}

// buildHybrid trains on a modeled machine with p processors and returns
// the modeled runtime, storing rank 0's tree in out when non-nil.
func buildHybrid(data *dataset.Dataset, p int, opts core.Options, out **tree.Tree) float64 {
	world := mp.NewWorld(p, mp.SP2())
	blocks := data.BlockPartition(p)
	trees := make([]*tree.Tree, p)
	world.Run(func(c *mp.Comm) {
		trees[c.Rank()] = core.BuildHybrid(c, blocks[c.Rank()], opts)
	})
	if out != nil {
		*out = trees[0]
	}
	return world.MaxClock()
}
